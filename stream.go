package jportal

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"jportal/internal/bytecode"
	"jportal/internal/conc"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/meta"
	"jportal/internal/metrics"
	"jportal/internal/profile"
	"jportal/internal/source"
	"jportal/internal/trace"
	"jportal/internal/vm"
)

// Session is the incremental form of Analyze: trace chunks, sideband
// records and watermarks are fed as they become available, Drain advances
// the analysis over everything that is final under the current watermarks,
// and Close completes it. The resulting Analysis is byte-identical to the
// batch call for every chunking, watermark schedule and worker count —
// streaming changes when work happens, never what it computes.
//
// Memory stays bounded by the stages: the stitcher holds only windows that
// are not yet globally safe to emit (PeakBufferedItems reports the high
// water mark), and each thread's analyzer reconstructs its decoded
// segments in waves capped by PipelineConfig.MaxPendingSegments. Hole
// recovery alone waits for Close: §5's recoverer matches holes against
// every segment of the thread, so recovering earlier would change fills.
type Session struct {
	prog      *bytecode.Program
	snap      *meta.Snapshot
	pipe      *core.Pipeline
	st        *trace.StreamStitcher
	ncores    int
	analyzers []*core.ThreadAnalyzer
	peak      int
	closed    bool
	result    *Analysis
	// pl is the ring-connected stage machinery when cfg.Pipelined is set
	// (pipeline_session.go); nil for the synchronous session. With pl
	// non-nil, session methods must all be called from one goroutine (the
	// input ring is single-producer) — which both RunWithSink and the
	// archive replay already guarantee.
	pl *pipelinedSession
	// ledger is the session's quarantine record (DESIGN.md §10): every
	// hardened stage reports what it excluded and why, and Close folds the
	// totals into the Analysis's DegradationReport.
	ledger *fault.Ledger
	// hbEmitted and hbSegments are watchdog heartbeats (DESIGN.md §11):
	// thread deltas applied and segments reconstructed so far. Atomics so a
	// supervisor goroutine can sample them while the session works; the
	// session itself only updates them after a fan-out returns.
	hbEmitted  atomic.Uint64
	hbSegments atomic.Uint64
}

// OpenSession starts an incremental analysis over ncores per-core trace
// streams, decoding against snap (which may still be growing: the online
// phase exports method metadata before the trace bytes that reference it).
func OpenSession(prog *bytecode.Program, snap *meta.Snapshot, ncores int, cfg core.PipelineConfig) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, errors.New("jportal: session needs a metadata snapshot")
	}
	if ncores <= 0 {
		return nil, fmt.Errorf("jportal: session needs at least one core, got %d", ncores)
	}
	snap.Seal()
	pipe := core.NewPipeline(prog, cfg)
	s := &Session{
		prog:   prog,
		snap:   snap,
		pipe:   pipe,
		st:     trace.NewStreamStitcher(ncores, pipe.Source().Traits()),
		ncores: ncores,
		ledger: fault.NewLedger(metrics.Default),
	}
	s.st.SetLedger(s.ledger)
	if cfg.EffectivePipelined() {
		s.pl = newPipelinedSession(s)
	}
	return s, nil
}

// Ledger exposes the session's quarantine ledger (read it after Close for
// a consistent view).
func (s *Session) Ledger() *fault.Ledger { return s.ledger }

// AddSideband delivers scheduler switch records in the order the VM
// recorded them.
func (s *Session) AddSideband(recs []vm.SwitchRecord) {
	if s.pl != nil {
		if len(recs) == 0 || s.closed {
			return
		}
		s.pl.in.Push(pipeMsg{kind: pkSideband, recs: append([]vm.SwitchRecord(nil), recs...)}, nil)
		return
	}
	s.st.AddSideband(recs)
}

// Watermark declares that every switch record for core with TSC < w has
// been delivered (watermarks only move forward).
func (s *Session) Watermark(core int, w uint64) {
	if s.pl != nil {
		if s.closed {
			return
		}
		s.pl.in.Push(pipeMsg{kind: pkWatermark, core: core, mark: w}, nil)
		return
	}
	s.st.Watermark(core, w)
}

// AddBlobs delivers compiled-method metadata (BlobSink). The synchronous
// session shares the VM's live snapshot, so a blob already present —
// pointer-identical at its entry address — is skipped, which makes the
// delivery idempotent when RunWithSink re-offers the export-log suffix.
// The pipelined session instead broadcasts the blobs to every worker's
// snapshot replica in-band: ring order guarantees each worker sees a blob
// before any trace chunk that references it (§3.2 dump-before-use).
func (s *Session) AddBlobs(blobs []*meta.CompiledMethod) error {
	if s.closed {
		return errors.New("jportal: AddBlobs on closed session")
	}
	if s.pl != nil {
		if len(blobs) == 0 {
			return nil
		}
		s.pl.in.Push(pipeMsg{kind: pkBlobs, blobs: append([]*meta.CompiledMethod(nil), blobs...)}, nil)
		return nil
	}
	for _, b := range blobs {
		if b == nil || s.snap.Compiled[b.EntryAddr()] == b {
			continue
		}
		s.snap.Export(b)
	}
	return nil
}

// Feed delivers one chunk of a core's exported trace, in export order.
// The pipelined session copies the items before enqueueing, so the caller
// may reuse its buffer immediately (the archive reader does).
func (s *Session) Feed(core int, items []source.Item) error {
	if s.closed {
		return errors.New("jportal: Feed on closed session")
	}
	if s.pl != nil {
		if core < 0 || core >= s.ncores {
			return fmt.Errorf("jportal: chunk for core %d, session has %d cores", core, s.ncores)
		}
		s.pl.in.Push(pipeMsg{kind: pkChunk, core: core, items: append([]source.Item(nil), items...)}, nil)
		return nil
	}
	if err := s.st.Feed(core, items); err != nil {
		return err
	}
	if n := s.st.BufferedItems(); n > s.peak {
		s.peak = n
	}
	return nil
}

// Drain advances the analysis over every scheduling window that is final
// under the current watermarks: finalized per-thread deltas are stitched
// out and pushed through the per-thread analyzers (decode, tokenize, and
// reconstruction waves).
func (s *Session) Drain() error {
	return s.DrainContext(context.Background())
}

// DrainContext is Drain with deadline propagation: once ctx is cancelled,
// stitched-out deltas are quarantined under the deadline reason instead of
// decoded, so a timed-out caller regains control without losing the
// session's structural validity.
func (s *Session) DrainContext(ctx context.Context) error {
	if s.closed {
		return errors.New("jportal: Drain on closed session")
	}
	if s.pl != nil {
		// Asynchronous: the stitcher drains and routes on its goroutine;
		// emitted deltas carry ctx so a later cancellation still
		// quarantines instead of decoding.
		s.pl.in.Push(pipeMsg{kind: pkDrain, ctx: ctx}, nil)
		return nil
	}
	s.apply(ctx, s.st.Drain())
	return nil
}

// apply feeds emitted thread deltas to their analyzers. Deltas are
// per-thread independent, so they fan out to the configured workers.
func (s *Session) apply(ctx context.Context, deltas []trace.ThreadStream) {
	if len(deltas) == 0 {
		return
	}
	// Seal before concurrent decode: BlobFor must not rebuild the sorted
	// address index from racing goroutines when the snapshot grew since
	// the last drain.
	s.snap.Seal()
	s.grow(s.st.NumThreads())
	conc.ParallelFor(s.pipe.Cfg.WorkerCount(), len(deltas), func(i int) {
		s.analyzers[deltas[i].Thread].FeedContext(ctx, deltas[i].Items)
	})
	s.hbEmitted.Add(uint64(len(deltas)))
	s.updateSegmentHeartbeat()
}

// updateSegmentHeartbeat republishes the total segments reconstructed so
// far. Called only after a fan-out returns, so reading each analyzer is
// race-free; the atomic store is what makes the sum safe for a sampling
// watchdog goroutine.
func (s *Session) updateSegmentHeartbeat() {
	var total uint64
	for _, a := range s.analyzers {
		total += a.SegmentsSeen()
	}
	s.hbSegments.Store(total)
}

// DeltasApplied returns the number of thread deltas pushed through the
// analyzers — a monotone watchdog heartbeat, safe to sample concurrently.
func (s *Session) DeltasApplied() uint64 { return s.hbEmitted.Load() }

// SegmentsReconstructed returns the total segments consumed by
// reconstruction waves — a monotone watchdog heartbeat, safe to sample
// concurrently.
func (s *Session) SegmentsReconstructed() uint64 { return s.hbSegments.Load() }

// grow ensures one analyzer per thread seen so far. In pipelined mode new
// analyzers bind to their worker's snapshot replica; callers must hold
// quiescence (checkpoint restore does).
func (s *Session) grow(nthreads int) {
	for t := len(s.analyzers); t < nthreads; t++ {
		var a *core.ThreadAnalyzer
		if s.pl != nil {
			a = s.pl.analyzer(t%s.pl.workers, t)
		} else {
			a = s.pipe.NewThreadAnalyzer(t, s.snap)
			a.SetLedger(s.ledger)
		}
		s.analyzers = append(s.analyzers, a)
	}
}

// BufferedItems returns the trace items currently buffered in the stitcher
// (fed but not yet emitted to an analyzer).
func (s *Session) BufferedItems() int {
	if s.pl != nil {
		return int(s.pl.buffered.Load())
	}
	return s.st.BufferedItems()
}

// PeakBufferedItems returns the high-water mark of BufferedItems over the
// session — the streaming pipeline's peak in-flight trace memory.
func (s *Session) PeakBufferedItems() int {
	if s.pl != nil {
		if pk := int(s.pl.peak.Load()); pk > s.peak {
			return pk
		}
	}
	return s.peak
}

// Close declares the input complete, runs the remaining decode,
// reconstruction and recovery, and returns the Analysis. Close is
// idempotent; after it, Feed and Drain fail.
func (s *Session) Close() (*Analysis, error) {
	return s.CloseContext(context.Background())
}

// CloseContext is Close under a deadline: a cancelled ctx makes the
// remaining reconstruction quarantine instead of compute and skips §5
// recovery, returning promptly with a partial Analysis whose Report is
// tagged TimedOut — never an error, never a hang (DESIGN.md §11).
func (s *Session) CloseContext(ctx context.Context) (*Analysis, error) {
	if s.closed {
		return s.result, nil
	}
	s.closed = true
	if s.pl != nil {
		// Final carve, emission and decode happen on the pipeline's own
		// goroutines; close joins them and merges the per-worker analyzers
		// into s.analyzers for the common finish below.
		s.pl.close(ctx)
	} else {
		s.apply(ctx, s.st.FinishWorkers(s.pipe.Cfg.Workers))
		s.grow(s.st.NumThreads())
	}
	threads := make([]*core.ThreadResult, len(s.analyzers))
	conc.ParallelFor(s.pipe.Cfg.WorkerCount(), len(s.analyzers), func(i int) {
		threads[i] = s.analyzers[i].FinishContext(ctx)
	})
	s.updateSegmentHeartbeat()
	s.result = &Analysis{Threads: threads, Pipeline: s.pipe}
	s.result.Report = s.degradationReport()
	for _, a := range s.analyzers {
		if a.TimedOut() {
			s.result.Report.TimedOut = true
			break
		}
	}
	return s.result, nil
}

// degradationReport folds the ledger and per-thread results into the
// per-run robustness summary.
func (s *Session) degradationReport() *fault.DegradationReport {
	rep := &fault.DegradationReport{Quarantined: s.ledger.Counts()}
	rep.QuarantinedItems, rep.QuarantinedBytes = s.ledger.Totals()
	for _, t := range s.result.Threads {
		rep.DecodedSteps += t.DecodedSteps
		rep.RecoveredSteps += t.RecoveredSteps
		for i, f := range t.Flows {
			if f == nil {
				continue
			}
			if f.Quarantined {
				rep.SegmentsQuarantined++
			} else {
				rep.SegmentsDecoded++
			}
			if i < len(t.Fills) && i+1 < len(t.Flows) {
				if t.Fills[i].Method != core.FillNone {
					rep.HolesFilled++
				} else if t.Flows[i+1].Seg.GapBefore != nil {
					rep.HolesUnfilled++
				}
			}
		}
	}
	// Fold coverage per thread instead of concatenating the whole
	// profile into one throwaway slice.
	cov := profile.NewCoverage(s.prog)
	for _, t := range s.result.Threads {
		cov.Add(t.Steps)
	}
	rep.Coverage = cov.Ratio()
	return rep
}

// TraceSink consumes the online phase's outputs incrementally: RunWithSink
// delivers sideband, watermarks and trace chunks through it as the
// collector drains. *Session implements TraceSink (live analysis); so does
// *StreamArchiveWriter (chunked archival).
type TraceSink interface {
	AddSideband(recs []vm.SwitchRecord)
	Watermark(core int, w uint64)
	Feed(core int, items []source.Item) error
	Drain() error
}

// BlobSink is optionally implemented by sinks that persist metadata (the
// live Session shares the VM's snapshot and does not need it): RunWithSink
// delivers each compiled method's blob before any trace chunk that can
// reference it, mirroring §3.2's dump-before-use ordering.
type BlobSink interface {
	AddBlobs(blobs []*meta.CompiledMethod) error
}

// RunWithSink is Run with streaming export: drained trace bytes leave the
// collector in chunks of cfg.SinkChunkItems through the sink instead of
// accumulating until the end. open is called once the VM exists — its
// snapshot is live and grows as methods are JITed — and must return the
// sink to use. The returned RunResult carries no Traces (they went through
// the sink); stats, sideband, snapshot and oracle are as in Run.
func RunWithSink(prog *bytecode.Program, threads []vm.ThreadSpec, cfg RunConfig,
	open func(prog *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error)) (*RunResult, error) {

	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DisableTracing {
		return nil, errors.New("jportal: RunWithSink needs tracing enabled")
	}
	if err := bytecode.Verify(prog); err != nil {
		return nil, err
	}
	if threads == nil {
		threads = []vm.ThreadSpec{{Method: prog.Entry}}
	}
	m := vm.New(prog, cfg.VM)
	src, err := source.Lookup(cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("jportal: %w", err)
	}
	col := src.NewCollector(cfg.PT, cfg.VM.Cores)
	m.Tracer = col
	var oracle *Oracle
	if cfg.CollectOracle {
		oracle = NewOracle(len(threads))
		m.Listener = oracle
	}

	sink, err := open(prog, m.Snapshot, cfg.VM.Cores)
	if err != nil {
		return nil, err
	}
	blobSink, _ := sink.(BlobSink)

	// The collector invokes the sink synchronously on the VM goroutine, so
	// reading the machine's sideband and snapshot here is race-free.
	var sinkErr error
	sbSent, blobsSent := 0, 0
	deliver := func() {
		if blobSink != nil {
			if log := m.Snapshot.ExportedBlobs(); len(log) > blobsSent {
				if err := blobSink.AddBlobs(log[blobsSent:]); err != nil {
					sinkErr = err
					return
				}
				blobsSent = len(log)
			}
		}
		if sb := m.Sideband(); len(sb) > sbSent {
			sink.AddSideband(sb[sbSent:])
			sbSent = len(sb)
		}
		for c, w := range m.SidebandWatermarks() {
			sink.Watermark(c, w)
		}
	}
	col.SetSink(cfg.SinkChunkItems, func(c int, items []source.Item) {
		if sinkErr != nil {
			return
		}
		deliver()
		if err := sink.Feed(c, items); err != nil {
			sinkErr = err
			return
		}
		sinkErr = sink.Drain()
	})

	stats, err := m.Run(threads)
	if err != nil {
		return nil, err
	}
	col.Finish(m.FinalTSC()) // flushes the ring residue through the sink
	if sinkErr == nil {
		deliver() // trailing sideband/blobs after the last chunk
	}
	if sinkErr == nil {
		sinkErr = sink.Drain()
	}
	if sinkErr != nil {
		return nil, fmt.Errorf("jportal: trace sink: %w", sinkErr)
	}
	return &RunResult{
		Stats:    stats,
		Sideband: m.Sideband(),
		Snapshot: m.Snapshot,
		Oracle:   oracle,
		SourceID: src.ID(),
		GenBytes: col.GeneratedBytes(),
	}, nil
}

// AnalyzeStreamed runs the online phase with a live analysis session as
// the sink: trace bytes are decoded, stitched and reconstructed as they
// drain, and whole per-core traces are never materialised. The returned
// Analysis equals Run + Analyze on the same program and configuration.
func AnalyzeStreamed(prog *bytecode.Program, threads []vm.ThreadSpec, rcfg RunConfig, pcfg core.PipelineConfig) (*RunResult, *Analysis, error) {
	if pcfg.Source == nil && rcfg.Source != "" {
		src, err := source.Lookup(rcfg.Source)
		if err != nil {
			return nil, nil, fmt.Errorf("jportal: %w", err)
		}
		pcfg.Source = src
	}
	var sess *Session
	run, err := RunWithSink(prog, threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
			var err error
			sess, err = OpenSession(p, snap, ncores, pcfg)
			return sess, err
		})
	if err != nil {
		return nil, nil, err
	}
	an, err := sess.Close()
	if err != nil {
		return nil, nil, err
	}
	return run, an, nil
}
