package jportal

// Fuzz target for the archive.meta header parser, the storage-layer
// sibling of the streamfmt fuzz targets: whatever bytes a damaged disk
// hands back, parseArchiveMeta must return a clean verdict — never panic,
// and never accept a header that violates its own invariants.

import (
	"strings"
	"testing"

	"jportal/internal/source"
)

func FuzzArchiveMeta(f *testing.F) {
	f.Add([]byte("jportal-run-archive\nversion: 2\nlayout: batch\n"))
	f.Add([]byte("jportal-run-archive\nversion: 2\nlayout: chunked\n"))
	f.Add([]byte("jportal-run-archive\nversion: 3\nlayout: chunked\nsource: etrace\n"))
	f.Add([]byte("jportal-run-archive\nversion: 99\nlayout: chunked\n"))
	f.Add([]byte("jportal-run-archive\nversion: -1\nlayout: batch\n"))
	f.Add([]byte("jportal-run-archive\nversion: x\nlayout: batch\n"))
	f.Add([]byte("jportal-run-archive\r\nversion: 2\r\nlayout: batch\r\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage"))
	f.Add([]byte("jportal-run-archive"))
	f.Add([]byte("jportal-run-archive\nversion: 3\nlayout: chunked\nsource: \n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		version, layout, srcID, err := parseArchiveMeta(raw)
		if err != nil {
			return
		}
		// Accepted headers must satisfy the invariants every reader
		// depends on; a violation here would become a misdecode later.
		if version < 1 || version > archiveVersion {
			t.Fatalf("accepted out-of-range version %d", version)
		}
		if layout != LayoutBatch && layout != LayoutChunked {
			t.Fatalf("accepted unknown layout %q", layout)
		}
		if srcID == "" {
			t.Fatal("accepted header resolved to an empty source ID")
		}
		if strings.ContainsAny(srcID, "\n\r") {
			t.Fatalf("source ID %q carries line breaks", srcID)
		}
		// The default source spelling must be canonical: a header with no
		// source key reads back as source.DefaultID, never "".
		if !strings.Contains(string(raw), "source") && srcID != source.DefaultID {
			t.Fatalf("sourceless header resolved to %q, want %q", srcID, source.DefaultID)
		}
	})
}
