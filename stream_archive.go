package jportal

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/iofault"
	"jportal/internal/meta"
	"jportal/internal/metrics"
	"jportal/internal/source"
	"jportal/internal/streamfmt"
	"jportal/internal/vm"
	"jportal/internal/watchdog"
)

// The chunked archive is the streaming counterpart of SaveRun: instead of
// four complete artefacts written after the run, everything goes into one
// append-only stream.jpt next to program.gob, in the order the online phase
// produced it. That makes the archive tail-followable — an offline analyzer
// (jportal stream -follow) can decode it while the collecting process is
// still appending — and it preserves §3.2's dump-before-use discipline on
// disk: a blob record always precedes the first chunk whose trace bytes
// reference it.
//
// The record format lives in internal/streamfmt (it is shared with the
// networked ingest layer, which relays the same records over TCP). A
// reader that hits the end of the file before a complete record sees
// ErrStreamPending rather than a decode error: the writer only ever
// flushes whole records, so a short tail means "not written yet", never
// corruption. Actual corruption — flipped bytes, truncated payloads, a
// seal whose checksum does not cover what was read — surfaces as an error
// wrapping streamfmt.ErrCorrupt.

// StreamFileName is the record stream inside a chunked archive directory.
const StreamFileName = "stream.jpt"

// ErrStreamPending is returned by StreamArchiveReader.Next when the archive
// ends mid-record or before a seal: the writer has not (yet) appended the
// next record. Followers wait and retry; one-shot readers treat it as a
// truncated archive.
var ErrStreamPending = errors.New("jportal: stream archive has no complete next record (still being written?)")

// StreamArchiveWriter appends a run's outputs to a chunked archive as they
// happen. It implements TraceSink and BlobSink, so it plugs directly into
// RunWithSink. Methods record the first error and turn later calls into
// no-ops; Drain and Seal report it.
type StreamArchiveWriter struct {
	f   iofault.File
	bw  *bufio.Writer
	enc *streamfmt.Encoder
	err error
}

// InitChunkedArchiveDir creates dir and writes the archive.meta header
// declaring the chunked layout. It is the first step of CreateStreamArchive,
// exported separately for the ingest server, which assembles the same
// archive from records relayed over the network.
func InitChunkedArchiveDir(dir string) error {
	return InitChunkedArchiveDirSource(dir, "")
}

// InitChunkedArchiveDirSource is InitChunkedArchiveDir for a run collected
// by the named trace source ("" = the default, Intel PT): the header
// records the source ID so readers decode the chunks with the right
// backend.
func InitChunkedArchiveDirSource(dir, srcID string) error {
	return InitChunkedArchiveDirFS(dir, srcID, iofault.OS)
}

// InitChunkedArchiveDirFS is InitChunkedArchiveDirSource with the header
// write routed through fsys, so a fault injector covering the archive
// directory also covers its creation.
func InitChunkedArchiveDirFS(dir, srcID string, fsys iofault.FS) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeArchiveMetaFS(fsys, dir, LayoutChunked, srcID)
}

// WriteArchiveProgram validates that programGob decodes to a well-formed
// program and writes it verbatim as dir's program.gob. The ingest server
// uses it to persist the program bytes a client relayed, byte-identical to
// the client's local archive.
func WriteArchiveProgram(dir string, programGob []byte) error {
	return WriteArchiveProgramFS(dir, programGob, iofault.OS)
}

// WriteArchiveProgramFS is WriteArchiveProgram with the write routed
// through fsys: the ingest server persists relayed program bytes on the
// same faultable path as the record stream, so an injected ENOSPC here is
// shed and retried like any other storage fault.
func WriteArchiveProgramFS(dir string, programGob []byte, fsys iofault.FS) error {
	var prog bytecode.Program
	if err := gob.NewDecoder(bytes.NewReader(programGob)).Decode(&prog); err != nil {
		return fmt.Errorf("jportal: program bytes do not decode: %w", err)
	}
	if err := bytecode.Verify(&prog); err != nil {
		return fmt.Errorf("jportal: relayed program invalid: %w", err)
	}
	return writeFileFS(fsys, filepath.Join(dir, "program.gob"), programGob)
}

// CreateStreamArchive creates dir as a chunked run archive: header,
// program, and a stream.jpt opened with the initial snapshot record (the
// template table and stubs exist before any thread runs; compiled methods
// arrive later as blob records).
func CreateStreamArchive(dir string, prog *bytecode.Program, snap *meta.Snapshot, ncores int) (*StreamArchiveWriter, error) {
	return CreateStreamArchiveSource(dir, prog, snap, ncores, "")
}

// CreateStreamArchiveSource is CreateStreamArchive for a run collected by
// the named trace source ("" = the default, Intel PT).
func CreateStreamArchiveSource(dir string, prog *bytecode.Program, snap *meta.Snapshot, ncores int, srcID string) (*StreamArchiveWriter, error) {
	return CreateStreamArchiveFS(dir, prog, snap, ncores, srcID, iofault.OS)
}

// CreateStreamArchiveFS is CreateStreamArchiveSource with every write —
// header, program, and the record stream itself — routed through fsys.
// Passing iofault.OS (what the non-FS constructors do) touches the real
// filesystem directly; passing an injector-scoped FS makes the whole local
// collection path draw from one deterministic fault stream, which is how
// jportal chaos -disk exercises the writer.
func CreateStreamArchiveFS(dir string, prog *bytecode.Program, snap *meta.Snapshot, ncores int, srcID string, fsys iofault.FS) (*StreamArchiveWriter, error) {
	if ncores <= 0 {
		return nil, fmt.Errorf("jportal: stream archive needs at least one core, got %d", ncores)
	}
	if fsys == nil {
		fsys = iofault.OS
	}
	if _, err := source.Lookup(srcID); err != nil {
		return nil, fmt.Errorf("jportal: %w", err)
	}
	if err := InitChunkedArchiveDirFS(dir, srcID, fsys); err != nil {
		return nil, err
	}
	if err := writeGobFS(fsys, filepath.Join(dir, "program.gob"), prog); err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, StreamFileName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &StreamArchiveWriter{f: f, bw: bufio.NewWriter(f)}
	w.enc, err = streamfmt.NewEncoder(w.bw, ncores)
	if err == nil {
		err = w.enc.Snapshot(snap)
	}
	if err == nil {
		err = w.flush()
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// AddBlobs appends one blob record per exported method (BlobSink).
func (w *StreamArchiveWriter) AddBlobs(blobs []*meta.CompiledMethod) error {
	if w.err != nil {
		return w.err
	}
	for _, c := range blobs {
		if err := w.enc.Blob(c); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// AddSideband appends one sideband record per switch record (TraceSink).
func (w *StreamArchiveWriter) AddSideband(recs []vm.SwitchRecord) {
	if w.err != nil {
		return
	}
	for i := range recs {
		if err := w.enc.Sideband(recs[i]); err != nil {
			w.err = err
			return
		}
	}
}

// Watermark appends a watermark record when it moves the core's mark
// forward (TraceSink).
func (w *StreamArchiveWriter) Watermark(core int, mark uint64) {
	if w.err != nil {
		return
	}
	if err := w.enc.Watermark(core, mark); err != nil {
		w.err = err
	}
}

// Feed appends one chunk record framing the items with source.AppendItem
// (TraceSink).
func (w *StreamArchiveWriter) Feed(core int, items []source.Item) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.Chunk(core, items); err != nil {
		w.err = fmt.Errorf("jportal: stream archive: %w", err)
	}
	return w.err
}

// flush pushes buffered whole records to the file so followers can see
// them.
func (w *StreamArchiveWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Drain flushes to disk (TraceSink): after it returns, a follower reads
// every record appended so far.
func (w *StreamArchiveWriter) Drain() error { return w.flush() }

// Seal appends the seal record — carrying the CRC-32 of the whole stream —
// flushes, and closes the file. The archive is complete: readers reach the
// seal (and verify the checksum) instead of ErrStreamPending, and LoadRun
// accepts the directory.
func (w *StreamArchiveWriter) Seal() error {
	if w.err == nil {
		w.err = w.enc.Seal()
		if w.err == nil {
			w.err = w.bw.Flush()
		}
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	return w.err
}

// StreamEventKind discriminates StreamEvent.
type StreamEventKind = streamfmt.Kind

// Stream event kinds, in record-tag order.
const (
	EvSnapshot  = streamfmt.KindSnapshot
	EvBlob      = streamfmt.KindBlob
	EvSideband  = streamfmt.KindSideband
	EvChunk     = streamfmt.KindChunk
	EvWatermark = streamfmt.KindWatermark
	EvSeal      = streamfmt.KindSeal
)

// StreamEvent is one decoded record of a chunked archive.
type StreamEvent = streamfmt.Record

// StreamArchiveReader reads a chunked archive record by record, including
// one that is still being written: Next returns ErrStreamPending at an
// incomplete tail (retry after the writer appends more) and io.EOF once the
// seal record has been consumed. The seal's checksum is verified against
// every byte read; a mismatch is reported as corruption, so a damaged or
// silently truncated archive cannot pass for a complete one.
type StreamArchiveReader struct {
	f      *os.File
	prog   *bytecode.Program
	ncores int
	buf    []byte // read-ahead not yet consumed
	off    int64  // file offset of the first byte past buf
	crc    uint32 // checksum of all consumed bytes (header + records, pre-seal)
	sealed bool
	// src is the trace source the archive header names; its traits
	// validate every decoded item.
	src source.Source
	// items is the chunk-record decode buffer, reused across Next calls:
	// a chunk event's Items alias it and are valid until the next Next.
	items []source.Item
}

// OpenStreamArchive opens dir (which must be a chunked-layout archive) and
// reads the fixed header. The initial snapshot record arrives as the first
// Next event.
func OpenStreamArchive(dir string) (*StreamArchiveReader, error) {
	_, layout, srcID, err := readArchiveMeta(dir)
	if err != nil {
		return nil, err
	}
	if layout != LayoutChunked {
		return nil, fmt.Errorf("jportal: %s is a %q archive, not a chunked stream", dir, layout)
	}
	src, err := source.Lookup(srcID)
	if err != nil {
		return nil, fmt.Errorf("jportal: %s: %w", dir, err)
	}
	var prog bytecode.Program
	if err := readGob(filepath.Join(dir, "program.gob"), &prog); err != nil {
		return nil, err
	}
	if err := bytecode.Verify(&prog); err != nil {
		return nil, fmt.Errorf("jportal: archived program invalid: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, StreamFileName))
	if err != nil {
		return nil, err
	}
	r := &StreamArchiveReader{f: f, src: src}
	if err := r.fill(streamfmt.HeaderLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("jportal: %s: truncated stream header", dir)
	}
	r.ncores, err = streamfmt.ParseHeader(r.buf)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jportal: %s: %w", dir, err)
	}
	r.consume(streamfmt.HeaderLen)
	r.prog = &prog
	return r, nil
}

// Program returns the archived program.
func (r *StreamArchiveReader) Program() *bytecode.Program { return r.prog }

// NumCores returns the stream's core count.
func (r *StreamArchiveReader) NumCores() int { return r.ncores }

// Source returns the trace source the archive was collected with.
func (r *StreamArchiveReader) Source() source.Source { return r.src }

// Close closes the underlying file.
func (r *StreamArchiveReader) Close() error { return r.f.Close() }

// fill grows the read-ahead to at least n bytes. ErrStreamPending means the
// file currently ends before byte n; nothing is consumed, so the caller can
// retry after the writer appends.
func (r *StreamArchiveReader) fill(n int) error {
	for len(r.buf) < n {
		chunk := make([]byte, max(4096, n-len(r.buf)))
		m, err := r.f.ReadAt(chunk, r.off)
		r.buf = append(r.buf, chunk[:m]...)
		r.off += int64(m)
		if err == io.EOF {
			if len(r.buf) < n {
				return ErrStreamPending
			}
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// consume folds n bytes into the running checksum and drops them from the
// front of the read-ahead.
func (r *StreamArchiveReader) consume(n int) {
	r.crc = crc32.Update(r.crc, crc32.IEEETable, r.buf[:n])
	r.buf = r.buf[:copy(r.buf, r.buf[n:])]
}

// Next decodes the next record. It returns ErrStreamPending at an
// incomplete (unsealed) tail, io.EOF after the seal, and an error wrapping
// streamfmt.ErrCorrupt for damaged streams — including a seal whose CRC
// does not match the bytes read before it. A chunk event's Items slice is
// only valid until the following Next call (the decode buffer is reused);
// consumers that keep items copy them, as Session.Feed does.
func (r *StreamArchiveReader) Next() (*StreamEvent, error) {
	if r.sealed {
		return nil, io.EOF
	}
	var n int
	for {
		var err error
		n, err = streamfmt.Scan(r.buf)
		if err == nil {
			break
		}
		if !errors.Is(err, streamfmt.ErrShort) {
			return nil, fmt.Errorf("jportal: stream archive: %w", err)
		}
		// Incomplete: the record needs at least one more byte than we have.
		if ferr := r.fill(len(r.buf) + 1); ferr != nil {
			return nil, ferr
		}
	}
	ev, _, err := streamfmt.DecodeInto(r.buf[:n], r.items, r.src.Traits())
	if err != nil {
		return nil, fmt.Errorf("jportal: stream archive: %w", err)
	}
	if ev.Kind == EvChunk {
		r.items = ev.Items
	}
	if ev.Kind == EvSeal {
		if ev.CRC != r.crc {
			return nil, fmt.Errorf("%w: seal CRC %#08x does not match stream contents (%#08x): archive damaged or truncated",
				streamfmt.ErrCorrupt, ev.CRC, r.crc)
		}
		r.sealed = true
	}
	r.consume(n)
	return &ev, nil
}

// AnalyzeStreamArchive replays a chunked archive through a streaming
// Session. With follow true it tails an archive still being written,
// sleeping poll between attempts until the seal arrives; otherwise an
// unsealed archive is an error. The result is byte-identical to batch
// Analyze over the same run.
func AnalyzeStreamArchive(dir string, cfg core.PipelineConfig, follow bool, poll time.Duration) (*bytecode.Program, *Analysis, error) {
	return AnalyzeStreamArchiveContext(context.Background(), dir, cfg, follow, poll)
}

// AnalyzeStreamArchiveContext is AnalyzeStreamArchive with cancellation:
// when ctx is cancelled mid-follow, the session is closed over everything
// consumed so far and the partial Analysis is returned alongside ctx's
// error — the caller can flush partial output (jportal stream -follow does,
// on SIGINT) while still seeing that the tail was never reached.
func AnalyzeStreamArchiveContext(ctx context.Context, dir string, cfg core.PipelineConfig, follow bool, poll time.Duration) (*bytecode.Program, *Analysis, error) {
	return AnalyzeStreamArchiveOpts(ctx, dir, cfg, StreamOptions{Follow: follow, Poll: poll})
}

// DefaultCheckpointEvery is how many chunk records pass between checkpoint
// writes when checkpointing is enabled without an explicit interval.
const DefaultCheckpointEvery = 64

// StreamOptions configures the resumable archive replay (DESIGN.md §11).
// The zero value reproduces the plain one-shot replay.
type StreamOptions struct {
	// Follow tails an archive still being written, sleeping Poll between
	// attempts until the seal arrives.
	Follow bool
	// Poll is the follow-mode retry interval (0 = 50ms).
	Poll time.Duration
	// CheckpointPath, when non-empty, enables crash-safe checkpointing:
	// session.ckpt is written there (atomically, CRC-sealed) at chunk
	// intervals, and deleted once the analysis completes.
	CheckpointPath string
	// CheckpointEvery is the chunk-record interval between checkpoint
	// writes (0 = DefaultCheckpointEvery).
	CheckpointEvery int
	// Resume restores from CheckpointPath before replaying, if a valid
	// checkpoint exists. A missing or corrupt/unreadable checkpoint falls
	// back to a full replay (the corrupt case is logged via Logf) — resume
	// never produces different output than an uninterrupted run, only less
	// recomputation.
	Resume bool
	// StallAfter, when positive, runs a watchdog supervisor over the
	// replay's progress heartbeats (records consumed, deltas applied,
	// segments reconstructed): a stall longer than this is reported to the
	// session ledger under the stall reason and counted on the
	// "watchdog_stalls" metric.
	StallAfter time.Duration
	// Logf receives resume, checkpoint and watchdog notices (nil = silent).
	Logf func(format string, args ...any)

	// stopAfterRecords is a test hook: abandon the replay (no Close, no
	// checkpoint deletion — as if the process died) after consuming this
	// many records. 0 = disabled.
	stopAfterRecords int
}

// errReplayAbandoned is the sentinel stopAfterRecords exits with.
var errReplayAbandoned = errors.New("jportal: replay abandoned by test hook")

func (o *StreamOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// AnalyzeStreamArchiveOpts replays a chunked archive through a streaming
// Session with the full resilience option set: follow mode, cancellation
// with partial results, crash-safe checkpointing, resume, and watchdog
// supervision. Output is byte-identical to the plain replay (and to batch
// Analyze) for every option combination — checkpointing and resume change
// when work happens, never what it computes.
func AnalyzeStreamArchiveOpts(ctx context.Context, dir string, cfg core.PipelineConfig, opts StreamOptions) (*bytecode.Program, *Analysis, error) {
	r, err := OpenStreamArchive(dir)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	if cfg.Source == nil {
		// Decode with the backend the archive was collected with.
		cfg.Source = r.Source()
	}
	if opts.Poll <= 0 {
		opts.Poll = 50 * time.Millisecond
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}

	// Resume: load the checkpoint up front so the replay loop knows which
	// prefix to skip. Missing file = fresh run; damaged file = fresh run
	// (the checkpoint is an optimisation, never a correctness dependency).
	var resume *SessionCheckpoint
	if opts.Resume && opts.CheckpointPath != "" {
		switch ck, err := ReadSessionCheckpoint(opts.CheckpointPath); {
		case err == nil:
			resume = ck
			opts.logf("resuming from checkpoint at record %d", ck.Records)
		case os.IsNotExist(err):
			// No checkpoint: a fresh run, or one that completed and cleaned up.
		default:
			opts.logf("checkpoint unusable, replaying from the start: %v", err)
		}
	}

	var sess *Session
	records := 0 // archive records fully applied
	chunks := 0  // chunk records among them (checkpoint cadence)
	// Error paths below return without closing the session; a pipelined
	// session owns goroutines, so release them (with a pre-cancelled
	// context: quarantine, don't compute) instead of leaking spinners.
	defer func() {
		if sess != nil && !sess.closed {
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			sess.CloseContext(cctx)
		}
	}()

	// Watchdog: sample the replay's heartbeats and report stalls. busy
	// distinguishes "working on a record" from "waiting for the writer" —
	// an idle follower is not a stall. The supervisor goroutine reaches the
	// session only through sessPtr (published once, atomically); the
	// heartbeats themselves are atomics by construction.
	var busy atomic.Bool
	var recordsHB atomic.Uint64
	var sessPtr atomic.Pointer[Session]
	if opts.StallAfter > 0 {
		dog := watchdog.New(opts.StallAfter/4, opts.StallAfter)
		dog.Register(watchdog.Probe{
			Name: "stream_replay",
			Progress: func() uint64 {
				n := recordsHB.Load()
				if s := sessPtr.Load(); s != nil {
					n += s.DeltasApplied() + s.SegmentsReconstructed()
				}
				return n
			},
			Active: busy.Load,
			OnStall: func(name string, progress uint64, stuck time.Duration) {
				metrics.Default.Add(metrics.CounterWatchdogStalls, 1)
				opts.logf("watchdog: %s stalled for %s at progress %d", name, stuck, progress)
				if s := sessPtr.Load(); s != nil {
					s.Ledger().Add(fault.Entry{
						Reason: fault.ReasonStall, Thread: -1, Core: -1,
						Detail: fmt.Sprintf("%s stalled for %s", name, stuck),
					})
				}
			},
		})
		dog.Start()
		defer dog.Stop()
	}

	checkpoint := func() {
		if opts.CheckpointPath == "" || sess == nil {
			return
		}
		ck, err := sess.ExportCheckpoint(records)
		if err == nil {
			err = WriteSessionCheckpoint(opts.CheckpointPath, ck)
		}
		if err != nil {
			// A failed checkpoint degrades resumability, not the analysis.
			opts.logf("checkpoint at record %d failed: %v", records, err)
			return
		}
		metrics.Default.Add(metrics.CounterCheckpointsWritten, 1)
	}

	partial := func(cause error) (*bytecode.Program, *Analysis, error) {
		if sess == nil {
			return nil, nil, cause
		}
		an, cerr := sess.CloseContext(ctx)
		if cerr != nil {
			return nil, nil, errors.Join(cause, cerr)
		}
		return r.Program(), an, cause
	}
	for {
		if opts.stopAfterRecords > 0 && records >= opts.stopAfterRecords {
			return nil, nil, errReplayAbandoned
		}
		ev, err := r.Next()
		if err == ErrStreamPending {
			if !opts.Follow {
				return nil, nil, fmt.Errorf("jportal: %s is unsealed (writer still running? use follow mode)", dir)
			}
			select {
			case <-ctx.Done():
				return partial(ctx.Err())
			case <-time.After(opts.Poll):
			}
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		busy.Store(true)
		// replayed marks records inside the resumed prefix: their analysis
		// effects live in the checkpoint, so only the deterministic
		// snapshot/blob replay (which rebuilds the metadata the checkpoint
		// references) is applied.
		replayed := resume != nil && records < resume.Records
		switch ev.Kind {
		case EvSnapshot:
			if sess != nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: %s: duplicate snapshot record", dir)
			}
			sess, err = OpenSession(r.Program(), ev.Snapshot, r.NumCores(), cfg)
			if err != nil {
				busy.Store(false)
				return nil, nil, err
			}
			sessPtr.Store(sess)
		case EvBlob:
			if sess == nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: %s: blob record before snapshot", dir)
			}
			if err := sess.AddBlobs([]*meta.CompiledMethod{ev.Blob}); err != nil {
				busy.Store(false)
				return nil, nil, err
			}
		case EvSideband:
			if sess == nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: %s: sideband record before snapshot", dir)
			}
			if !replayed {
				sess.AddSideband([]vm.SwitchRecord{ev.Rec})
			}
		case EvWatermark:
			if sess == nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: %s: watermark record before snapshot", dir)
			}
			if !replayed {
				sess.Watermark(ev.Core, ev.Mark)
			}
		case EvChunk:
			if sess == nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: %s: chunk record before snapshot", dir)
			}
			if !replayed {
				if err := sess.Feed(ev.Core, ev.Items); err != nil {
					busy.Store(false)
					return nil, nil, err
				}
				if err := sess.DrainContext(ctx); err != nil {
					busy.Store(false)
					return nil, nil, err
				}
				chunks++
			}
		case EvSeal:
			// loop exits via io.EOF on the next Next
		}
		records++
		recordsHB.Add(1)
		if resume != nil && records == resume.Records {
			// The prefix is replayed: the snapshot's export log now matches
			// the checkpointing run's, so the saved state can reattach.
			if err := sess.RestoreCheckpoint(resume); err != nil {
				busy.Store(false)
				return nil, nil, fmt.Errorf("jportal: resume at record %d: %w", records, err)
			}
			resume = nil
		} else if resume == nil && ev.Kind == EvChunk && !replayed && chunks%opts.CheckpointEvery == 0 {
			checkpoint()
		}
		busy.Store(false)
		if err := ctx.Err(); err != nil {
			return partial(err)
		}
	}
	if sess == nil {
		return nil, nil, fmt.Errorf("jportal: %s: stream has no snapshot record", dir)
	}
	if resume != nil {
		return nil, nil, fmt.Errorf("jportal: checkpoint covers %d records but the archive has only %d", resume.Records, records)
	}
	an, err := sess.CloseContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	if opts.CheckpointPath != "" {
		// The run is complete: a later -resume must start fresh, not replay
		// a stale mid-run state over a finished analysis.
		os.Remove(opts.CheckpointPath)
	}
	return r.Program(), an, nil
}

// loadChunkedRun materialises a sealed chunked archive as a batch
// RunResult, so every batch consumer (jportal decode, experiments) accepts
// either layout.
func loadChunkedRun(dir string, src source.Source) (*bytecode.Program, *RunResult, error) {
	r, err := OpenStreamArchive(dir)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	var snap *meta.Snapshot
	var sideband []vm.SwitchRecord
	items := make([][]source.Item, r.NumCores())
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err == ErrStreamPending {
			return nil, nil, fmt.Errorf("jportal: %s is an unsealed chunked archive; use jportal stream -follow", dir)
		}
		if err != nil {
			return nil, nil, err
		}
		switch ev.Kind {
		case EvSnapshot:
			snap = ev.Snapshot
		case EvBlob:
			if snap == nil {
				return nil, nil, fmt.Errorf("jportal: %s: blob record before snapshot", dir)
			}
			snap.Export(ev.Blob)
		case EvSideband:
			sideband = append(sideband, ev.Rec)
		case EvChunk:
			if ev.Core < 0 || ev.Core >= len(items) {
				return nil, nil, fmt.Errorf("jportal: %s: chunk for core %d of %d", dir, ev.Core, len(items))
			}
			items[ev.Core] = append(items[ev.Core], ev.Items...)
		}
	}
	if snap == nil {
		return nil, nil, fmt.Errorf("jportal: %s: stream has no snapshot record", dir)
	}
	traces := make([]source.CoreTrace, r.NumCores())
	for c := range traces {
		traces[c] = source.CoreTrace{Core: c, Items: items[c]}
	}
	return r.Program(), &RunResult{Traces: traces, Sideband: sideband, Snapshot: snap, SourceID: src.ID()}, nil
}
