package jportal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/vm"
)

// The chunked archive is the streaming counterpart of SaveRun: instead of
// four complete artefacts written after the run, everything goes into one
// append-only stream.jpt next to program.gob, in the order the online phase
// produced it. That makes the archive tail-followable — an offline analyzer
// (jportal stream -follow) can decode it while the collecting process is
// still appending — and it preserves §3.2's dump-before-use discipline on
// disk: a blob record always precedes the first chunk whose trace bytes
// reference it.
//
// stream.jpt layout: the magic, a u32 core count, then tagged records
// (lengths and integers little-endian):
//
//	0x01 snapshot   u32 len, WriteSnapshot bytes   (once, first record)
//	0x02 blob       u32 len, WriteBlob bytes       (incremental metadata)
//	0x03 sideband   u64 TSC, i32 core, i32 thread  (one switch record)
//	0x04 chunk      u32 core, u32 len, AppendItem-framed trace items
//	0x05 watermark  u32 core, u64 mark
//	0x06 seal       (no payload; input is complete)
//
// A reader that hits the end of the file before a complete record sees
// ErrStreamPending rather than a decode error: the writer only ever
// flushes whole records, so a short tail means "not written yet", never
// corruption.

var streamMagic = [8]byte{'J', 'P', 'S', 'T', 'R', 'M', '2', '\n'}

const (
	streamFile = "stream.jpt"

	recSnapshot  byte = 0x01
	recBlob      byte = 0x02
	recSideband  byte = 0x03
	recChunk     byte = 0x04
	recWatermark byte = 0x05
	recSeal      byte = 0x06
)

// ErrStreamPending is returned by StreamArchiveReader.Next when the archive
// ends mid-record or before a seal: the writer has not (yet) appended the
// next record. Followers wait and retry; one-shot readers treat it as a
// truncated archive.
var ErrStreamPending = errors.New("jportal: stream archive has no complete next record (still being written?)")

// StreamArchiveWriter appends a run's outputs to a chunked archive as they
// happen. It implements TraceSink and BlobSink, so it plugs directly into
// RunWithSink. Methods record the first error and turn later calls into
// no-ops; Drain and Seal report it.
type StreamArchiveWriter struct {
	f     *os.File
	bw    *bufio.Writer
	err   error
	marks []uint64 // last watermark written per core, to skip no-ops
	tmp   []byte
}

// CreateStreamArchive creates dir as a chunked run archive: header,
// program, and a stream.jpt opened with the initial snapshot record (the
// template table and stubs exist before any thread runs; compiled methods
// arrive later as blob records).
func CreateStreamArchive(dir string, prog *bytecode.Program, snap *meta.Snapshot, ncores int) (*StreamArchiveWriter, error) {
	if ncores <= 0 {
		return nil, fmt.Errorf("jportal: stream archive needs at least one core, got %d", ncores)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeArchiveMeta(dir, LayoutChunked); err != nil {
		return nil, err
	}
	if err := writeGob(filepath.Join(dir, "program.gob"), prog); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, streamFile))
	if err != nil {
		return nil, err
	}
	w := &StreamArchiveWriter{f: f, bw: bufio.NewWriter(f), marks: make([]uint64, ncores)}
	w.bw.Write(streamMagic[:])
	w.writeU32(uint32(ncores))
	var buf bytes.Buffer
	if err := meta.WriteSnapshot(&buf, snap); err != nil {
		f.Close()
		return nil, err
	}
	w.bw.WriteByte(recSnapshot)
	w.writeU32(uint32(buf.Len()))
	w.bw.Write(buf.Bytes())
	if err := w.flush(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *StreamArchiveWriter) writeU32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bw.Write(b[:])
}

func (w *StreamArchiveWriter) writeU64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bw.Write(b[:])
}

// AddBlobs appends one blob record per exported method (BlobSink).
func (w *StreamArchiveWriter) AddBlobs(blobs []*meta.CompiledMethod) error {
	if w.err != nil {
		return w.err
	}
	var buf bytes.Buffer
	for _, c := range blobs {
		buf.Reset()
		if err := meta.WriteBlob(&buf, c); err != nil {
			w.err = err
			return err
		}
		w.bw.WriteByte(recBlob)
		w.writeU32(uint32(buf.Len()))
		w.bw.Write(buf.Bytes())
	}
	return nil
}

// AddSideband appends one sideband record per switch record (TraceSink).
func (w *StreamArchiveWriter) AddSideband(recs []vm.SwitchRecord) {
	if w.err != nil {
		return
	}
	for i := range recs {
		w.bw.WriteByte(recSideband)
		w.writeU64(recs[i].TSC)
		w.writeU32(uint32(int32(recs[i].Core)))
		w.writeU32(uint32(int32(recs[i].Thread)))
	}
}

// Watermark appends a watermark record when it moves the core's mark
// forward (TraceSink).
func (w *StreamArchiveWriter) Watermark(core int, mark uint64) {
	if w.err != nil || core < 0 || core >= len(w.marks) || mark <= w.marks[core] {
		return
	}
	w.marks[core] = mark
	w.bw.WriteByte(recWatermark)
	w.writeU32(uint32(core))
	w.writeU64(mark)
}

// Feed appends one chunk record framing the items with pt.AppendItem
// (TraceSink).
func (w *StreamArchiveWriter) Feed(core int, items []pt.Item) error {
	if w.err != nil {
		return w.err
	}
	if core < 0 || core >= len(w.marks) {
		w.err = fmt.Errorf("jportal: stream archive chunk for core %d of %d", core, len(w.marks))
		return w.err
	}
	w.tmp = w.tmp[:0]
	for i := range items {
		w.tmp = pt.AppendItem(w.tmp, &items[i])
	}
	w.bw.WriteByte(recChunk)
	w.writeU32(uint32(core))
	w.writeU32(uint32(len(w.tmp)))
	w.bw.Write(w.tmp)
	return nil
}

// flush pushes buffered whole records to the file so followers can see
// them.
func (w *StreamArchiveWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Drain flushes to disk (TraceSink): after it returns, a follower reads
// every record appended so far.
func (w *StreamArchiveWriter) Drain() error { return w.flush() }

// Seal appends the seal record, flushes and closes the file. The archive is
// complete: readers reach the seal instead of ErrStreamPending, and LoadRun
// accepts the directory.
func (w *StreamArchiveWriter) Seal() error {
	if w.err == nil {
		w.bw.WriteByte(recSeal)
		w.flush()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	return w.err
}

// StreamEventKind discriminates StreamEvent.
type StreamEventKind int

const (
	EvSnapshot StreamEventKind = iota
	EvBlob
	EvSideband
	EvChunk
	EvWatermark
	EvSeal
)

// StreamEvent is one decoded record of a chunked archive.
type StreamEvent struct {
	Kind     StreamEventKind
	Snapshot *meta.Snapshot       // EvSnapshot
	Blob     *meta.CompiledMethod // EvBlob
	Rec      vm.SwitchRecord      // EvSideband
	Core     int                  // EvChunk, EvWatermark
	Items    []pt.Item            // EvChunk
	Mark     uint64               // EvWatermark
}

// StreamArchiveReader reads a chunked archive record by record, including
// one that is still being written: Next returns ErrStreamPending at an
// incomplete tail (retry after the writer appends more) and io.EOF once the
// seal record has been consumed.
type StreamArchiveReader struct {
	f      *os.File
	prog   *bytecode.Program
	ncores int
	buf    []byte // read-ahead not yet consumed
	off    int64  // file offset of the first byte past buf
	sealed bool
}

// OpenStreamArchive opens dir (which must be a chunked-layout archive) and
// reads the fixed header. The initial snapshot record arrives as the first
// Next event.
func OpenStreamArchive(dir string) (*StreamArchiveReader, error) {
	_, layout, err := readArchiveMeta(dir)
	if err != nil {
		return nil, err
	}
	if layout != LayoutChunked {
		return nil, fmt.Errorf("jportal: %s is a %q archive, not a chunked stream", dir, layout)
	}
	var prog bytecode.Program
	if err := readGob(filepath.Join(dir, "program.gob"), &prog); err != nil {
		return nil, err
	}
	if err := bytecode.Verify(&prog); err != nil {
		return nil, fmt.Errorf("jportal: archived program invalid: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, streamFile))
	if err != nil {
		return nil, err
	}
	r := &StreamArchiveReader{f: f, prog: &prog}
	hdr, err := r.need(12)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jportal: %s: truncated stream header", dir)
	}
	if [8]byte(hdr[:8]) != streamMagic {
		f.Close()
		return nil, fmt.Errorf("jportal: %s: bad stream magic %q", dir, hdr[:8])
	}
	r.ncores = int(binary.LittleEndian.Uint32(hdr[8:12]))
	if r.ncores <= 0 {
		f.Close()
		return nil, fmt.Errorf("jportal: %s: stream declares %d cores", dir, r.ncores)
	}
	r.consume(12)
	return r, nil
}

// Program returns the archived program.
func (r *StreamArchiveReader) Program() *bytecode.Program { return r.prog }

// NumCores returns the stream's core count.
func (r *StreamArchiveReader) NumCores() int { return r.ncores }

// Close closes the underlying file.
func (r *StreamArchiveReader) Close() error { return r.f.Close() }

// need returns at least n unconsumed bytes, reading more from the file if
// available. ErrStreamPending means the file currently ends before byte n;
// nothing is consumed, so the caller can retry after the writer appends.
func (r *StreamArchiveReader) need(n int) ([]byte, error) {
	for len(r.buf) < n {
		chunk := make([]byte, max(4096, n-len(r.buf)))
		m, err := r.f.ReadAt(chunk, r.off)
		r.buf = append(r.buf, chunk[:m]...)
		r.off += int64(m)
		if err == io.EOF {
			if len(r.buf) < n {
				return nil, ErrStreamPending
			}
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return r.buf[:n], nil
}

// consume drops n bytes from the front of the read-ahead.
func (r *StreamArchiveReader) consume(n int) {
	r.buf = r.buf[:copy(r.buf, r.buf[n:])]
}

// Next decodes the next record. It returns ErrStreamPending at an
// incomplete (unsealed) tail and io.EOF after the seal.
func (r *StreamArchiveReader) Next() (*StreamEvent, error) {
	if r.sealed {
		return nil, io.EOF
	}
	tag, err := r.need(1)
	if err != nil {
		return nil, err
	}
	switch tag[0] {
	case recSnapshot, recBlob:
		hdr, err := r.need(5)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(hdr[1:5]))
		body, err := r.need(5 + n)
		if err != nil {
			return nil, err
		}
		payload := body[5 : 5+n]
		var ev StreamEvent
		if tag[0] == recSnapshot {
			snap, err := meta.ReadSnapshot(bytes.NewReader(payload))
			if err != nil {
				return nil, err
			}
			ev = StreamEvent{Kind: EvSnapshot, Snapshot: snap}
		} else {
			blob, err := meta.ReadBlob(bytes.NewReader(payload))
			if err != nil {
				return nil, err
			}
			ev = StreamEvent{Kind: EvBlob, Blob: blob}
		}
		r.consume(5 + n)
		return &ev, nil
	case recSideband:
		body, err := r.need(17)
		if err != nil {
			return nil, err
		}
		ev := StreamEvent{Kind: EvSideband, Rec: vm.SwitchRecord{
			TSC:    binary.LittleEndian.Uint64(body[1:9]),
			Core:   int(int32(binary.LittleEndian.Uint32(body[9:13]))),
			Thread: int(int32(binary.LittleEndian.Uint32(body[13:17]))),
		}}
		r.consume(17)
		return &ev, nil
	case recChunk:
		hdr, err := r.need(9)
		if err != nil {
			return nil, err
		}
		core := int(binary.LittleEndian.Uint32(hdr[1:5]))
		n := int(binary.LittleEndian.Uint32(hdr[5:9]))
		body, err := r.need(9 + n)
		if err != nil {
			return nil, err
		}
		payload := body[9 : 9+n]
		var items []pt.Item
		for len(payload) > 0 {
			it, used, err := pt.DecodeItem(payload)
			if err != nil {
				return nil, fmt.Errorf("jportal: stream chunk for core %d: %w", core, err)
			}
			items = append(items, it)
			payload = payload[used:]
		}
		ev := StreamEvent{Kind: EvChunk, Core: core, Items: items}
		r.consume(9 + n)
		return &ev, nil
	case recWatermark:
		body, err := r.need(13)
		if err != nil {
			return nil, err
		}
		ev := StreamEvent{
			Kind: EvWatermark,
			Core: int(binary.LittleEndian.Uint32(body[1:5])),
			Mark: binary.LittleEndian.Uint64(body[5:13]),
		}
		r.consume(13)
		return &ev, nil
	case recSeal:
		r.consume(1)
		r.sealed = true
		return &StreamEvent{Kind: EvSeal}, nil
	}
	return nil, fmt.Errorf("jportal: stream archive: unknown record tag %#x", tag[0])
}

// AnalyzeStreamArchive replays a chunked archive through a streaming
// Session. With follow true it tails an archive still being written,
// sleeping poll between attempts until the seal arrives; otherwise an
// unsealed archive is an error. The result is byte-identical to batch
// Analyze over the same run.
func AnalyzeStreamArchive(dir string, cfg core.PipelineConfig, follow bool, poll time.Duration) (*bytecode.Program, *Analysis, error) {
	r, err := OpenStreamArchive(dir)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	var sess *Session
	for {
		ev, err := r.Next()
		if err == ErrStreamPending {
			if !follow {
				return nil, nil, fmt.Errorf("jportal: %s is unsealed (writer still running? use follow mode)", dir)
			}
			time.Sleep(poll)
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		switch ev.Kind {
		case EvSnapshot:
			if sess != nil {
				return nil, nil, fmt.Errorf("jportal: %s: duplicate snapshot record", dir)
			}
			sess, err = OpenSession(r.Program(), ev.Snapshot, r.NumCores(), cfg)
			if err != nil {
				return nil, nil, err
			}
		case EvBlob:
			if sess == nil {
				return nil, nil, fmt.Errorf("jportal: %s: blob record before snapshot", dir)
			}
			sess.snap.Export(ev.Blob)
		case EvSideband:
			if sess == nil {
				return nil, nil, fmt.Errorf("jportal: %s: sideband record before snapshot", dir)
			}
			sess.AddSideband([]vm.SwitchRecord{ev.Rec})
		case EvWatermark:
			if sess == nil {
				return nil, nil, fmt.Errorf("jportal: %s: watermark record before snapshot", dir)
			}
			sess.Watermark(ev.Core, ev.Mark)
		case EvChunk:
			if sess == nil {
				return nil, nil, fmt.Errorf("jportal: %s: chunk record before snapshot", dir)
			}
			if err := sess.Feed(ev.Core, ev.Items); err != nil {
				return nil, nil, err
			}
			if err := sess.Drain(); err != nil {
				return nil, nil, err
			}
		case EvSeal:
			// loop exits via io.EOF on the next Next
		}
	}
	if sess == nil {
		return nil, nil, fmt.Errorf("jportal: %s: stream has no snapshot record", dir)
	}
	an, err := sess.Close()
	if err != nil {
		return nil, nil, err
	}
	return r.Program(), an, nil
}

// loadChunkedRun materialises a sealed chunked archive as a batch
// RunResult, so every batch consumer (jportal decode, experiments) accepts
// either layout.
func loadChunkedRun(dir string) (*bytecode.Program, *RunResult, error) {
	r, err := OpenStreamArchive(dir)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	var snap *meta.Snapshot
	var sideband []vm.SwitchRecord
	items := make([][]pt.Item, r.NumCores())
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err == ErrStreamPending {
			return nil, nil, fmt.Errorf("jportal: %s is an unsealed chunked archive; use jportal stream -follow", dir)
		}
		if err != nil {
			return nil, nil, err
		}
		switch ev.Kind {
		case EvSnapshot:
			snap = ev.Snapshot
		case EvBlob:
			if snap == nil {
				return nil, nil, fmt.Errorf("jportal: %s: blob record before snapshot", dir)
			}
			snap.Export(ev.Blob)
		case EvSideband:
			sideband = append(sideband, ev.Rec)
		case EvChunk:
			if ev.Core < 0 || ev.Core >= len(items) {
				return nil, nil, fmt.Errorf("jportal: %s: chunk for core %d of %d", dir, ev.Core, len(items))
			}
			items[ev.Core] = append(items[ev.Core], ev.Items...)
		}
	}
	if snap == nil {
		return nil, nil, fmt.Errorf("jportal: %s: stream has no snapshot record", dir)
	}
	traces := make([]pt.CoreTrace, r.NumCores())
	for c := range traces {
		traces[c] = pt.CoreTrace{Core: c, Items: items[c]}
	}
	return r.Program(), &RunResult{Traces: traces, Sideband: sideband, Snapshot: snap}, nil
}
