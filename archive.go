package jportal

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"jportal/internal/bytecode"
	"jportal/internal/iofault"
	"jportal/internal/meta"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// A run archive is JPortal's deployment interface between the online and
// offline phases (paper §3): everything the offline decoder needs, written
// to a directory. Two layouts exist, declared by the archive.meta header:
//
// layout "batch" (SaveRun, after a completed run):
//
//	archive.meta    magic + format version + layout
//	program.gob     the bytecode program (source of the ICFG)
//	snapshot.bin    machine-code metadata (templates, JIT blobs, debug info)
//	sideband.gob    scheduler thread-switch records
//	trace.core<N>   one PT trace file per core
//
// layout "chunked" (CreateStreamArchive, appended to while the run is
// live): archive.meta, program.gob and stream.jpt — see stream_archive.go.
//
// Either way collection and analysis can run in different processes (or
// machines), exactly as the paper separates them. Archives written before
// the header existed (version 1) are read as layout "batch".

const (
	archiveMetaFile  = "archive.meta"
	archiveMagicLine = "jportal-run-archive"

	// archiveVersion is the newest header version this binary reads.
	// Version 2 added the header itself; version 3 added the source key.
	// Writers stamp the oldest version that can faithfully read the
	// archive (see writeArchiveMeta), so version-gating — not the reader's
	// tolerance for unknown keys — is what keeps a pre-source binary from
	// silently misdecoding a non-Intel-PT archive as PT packets.
	archiveVersion       = 3
	archiveVersionLegacy = 2

	// LayoutBatch and LayoutChunked are the archive layouts.
	LayoutBatch   = "batch"
	LayoutChunked = "chunked"
)

// writeArchiveMeta writes the version header declaring the layout and, for
// runs collected by a non-default trace source, the source ID. Default
// (Intel PT) archives are stamped with the legacy version and no source
// key, so they stay byte-identical to the ones written before sources
// existed (the golden test pins this) and remain readable by old
// binaries. Non-default archives are stamped with the current version:
// a pre-source binary has no Traits for the payload, so it must refuse
// via the version gate rather than misdecode the packets as PT.
func writeArchiveMeta(dir, layout, srcID string) error {
	return writeArchiveMetaFS(iofault.OS, dir, layout, srcID)
}

func writeArchiveMetaFS(fsys iofault.FS, dir, layout, srcID string) error {
	ver := archiveVersionLegacy
	if srcID != "" && srcID != source.DefaultID {
		ver = archiveVersion
	}
	body := fmt.Sprintf("%s\nversion: %d\nlayout: %s\n", archiveMagicLine, ver, layout)
	if srcID != "" && srcID != source.DefaultID {
		body += fmt.Sprintf("source: %s\n", srcID)
	}
	return writeFileFS(fsys, filepath.Join(dir, archiveMetaFile), []byte(body))
}

// writeFileFS is os.WriteFile routed through an iofault.FS, so the archive
// writers' small fixed artefacts (header, program, sideband) draw from the
// same fault streams as the record stream itself.
func writeFileFS(fsys iofault.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readArchiveMeta parses the header. A missing header with a program.gob
// present is a pre-versioning (v1) batch archive; anything else that lacks
// the header is not a run archive at all.
func readArchiveMeta(dir string) (version int, layout, srcID string, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, archiveMetaFile))
	if os.IsNotExist(err) {
		if _, serr := os.Stat(filepath.Join(dir, "program.gob")); serr != nil {
			return 0, "", "", fmt.Errorf("jportal: %s is not a run archive (no %s, no program.gob)", dir, archiveMetaFile)
		}
		return 1, LayoutBatch, source.DefaultID, nil
	}
	if err != nil {
		return 0, "", "", err
	}
	version, layout, srcID, err = parseArchiveMeta(raw)
	if err != nil {
		return 0, "", "", fmt.Errorf("jportal: %s: %w", dir, err)
	}
	return version, layout, srcID, nil
}

// parseArchiveMeta parses an archive.meta header body: the magic line, the
// version line, the layout, and (version 3+) the optional source key.
// Pure — no filesystem access — so the fuzz target can drive it directly.
func parseArchiveMeta(raw []byte) (version int, layout, srcID string, err error) {
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 || strings.TrimSpace(lines[0]) != archiveMagicLine {
		return 0, "", "", errors.New("malformed archive header")
	}
	version, layout, srcID = 0, "", source.DefaultID
	for _, ln := range lines[1:] {
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(k) {
		case "version":
			version, err = strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return 0, "", "", fmt.Errorf("bad archive version %q", strings.TrimSpace(v))
			}
		case "layout":
			layout = strings.TrimSpace(v)
		case "source":
			srcID = strings.TrimSpace(v)
			if srcID == "" {
				// Writers only stamp a source key for non-default
				// backends; an empty value is a damaged header, not a
				// spelling of the default.
				return 0, "", "", errors.New("archive header has an empty source key")
			}
		}
	}
	if version > archiveVersion {
		return 0, "", "", fmt.Errorf("archive version %d is newer than this binary supports (%d)",
			version, archiveVersion)
	}
	if version < 1 {
		return 0, "", "", errors.New("archive header missing a version")
	}
	if layout != LayoutBatch && layout != LayoutChunked {
		return 0, "", "", fmt.Errorf("unknown archive layout %q", layout)
	}
	return version, layout, srcID, nil
}

// ArchiveInfo describes a run archive's header: what the scrubber and the
// retention/compaction pass need to know before touching the payload.
type ArchiveInfo struct {
	Version int
	Layout  string // LayoutBatch or LayoutChunked
	Source  string // trace-source backend ID (source.DefaultID when unstamped)
}

// ReadArchiveInfo reads and validates dir's archive.meta header.
func ReadArchiveInfo(dir string) (ArchiveInfo, error) {
	version, layout, srcID, err := readArchiveMeta(dir)
	if err != nil {
		return ArchiveInfo{}, err
	}
	return ArchiveInfo{Version: version, Layout: layout, Source: srcID}, nil
}

// ArchiveSourceID reports the trace-source backend a run archive was
// collected by (source.DefaultID when the header carries no source key).
// The ingest layer uses it to route a pushed or handed-off session to the
// right decoder, and the fleet aggregation tier to analyze mixed-source
// archives with their own backends.
func ArchiveSourceID(dir string) (string, error) {
	_, _, srcID, err := readArchiveMeta(dir)
	return srcID, err
}

// SaveRun writes prog and the run's offline-relevant artefacts into dir
// (created if missing).
func SaveRun(dir string, prog *bytecode.Program, run *RunResult) error {
	if run.Traces == nil {
		return fmt.Errorf("jportal: run has no traces to save")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeArchiveMeta(dir, LayoutBatch, run.SourceID); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(dir, "program.gob"), prog); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "snapshot.bin"))
	if err != nil {
		return err
	}
	if err := meta.WriteSnapshot(sf, run.Snapshot); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(dir, "sideband.gob"), run.Sideband); err != nil {
		return err
	}
	for i := range run.Traces {
		tf, err := os.Create(filepath.Join(dir, fmt.Sprintf("trace.core%d", run.Traces[i].Core)))
		if err != nil {
			return err
		}
		if err := source.WriteTrace(tf, &run.Traces[i]); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadRun reads an archive written by SaveRun or a sealed chunked archive
// written by CreateStreamArchive (the header routes to the right reader).
// The returned RunResult carries traces, sideband and snapshot (no oracle
// and no runtime stats — those exist only in the collecting process).
func LoadRun(dir string) (*bytecode.Program, *RunResult, error) {
	_, layout, srcID, err := readArchiveMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	src, err := source.Lookup(srcID)
	if err != nil {
		return nil, nil, fmt.Errorf("jportal: %s: %w", dir, err)
	}
	if layout == LayoutChunked {
		return loadChunkedRun(dir, src)
	}
	var prog bytecode.Program
	if err := readGob(filepath.Join(dir, "program.gob"), &prog); err != nil {
		return nil, nil, err
	}
	if err := bytecode.Verify(&prog); err != nil {
		return nil, nil, fmt.Errorf("jportal: archived program invalid: %w", err)
	}
	sf, err := os.Open(filepath.Join(dir, "snapshot.bin"))
	if err != nil {
		return nil, nil, err
	}
	snap, err := meta.ReadSnapshot(sf)
	sf.Close()
	if err != nil {
		return nil, nil, err
	}
	var sideband []vm.SwitchRecord
	if err := readGob(filepath.Join(dir, "sideband.gob"), &sideband); err != nil {
		return nil, nil, err
	}
	matches, err := filepath.Glob(filepath.Join(dir, "trace.core*"))
	if err != nil {
		return nil, nil, err
	}
	if len(matches) == 0 {
		return nil, nil, fmt.Errorf("jportal: no trace files in %s", dir)
	}
	var traces []source.CoreTrace
	for _, name := range matches {
		tf, err := os.Open(name)
		if err != nil {
			return nil, nil, err
		}
		tr, err := source.ReadTrace(tf, src.Traits())
		tf.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("jportal: %s: %w", name, err)
		}
		traces = append(traces, *tr)
	}
	// Glob order is lexical (trace.core10 before trace.core2); the analysis
	// requires ascending core order, so sort numerically by the core id each
	// file recorded.
	sort.Slice(traces, func(i, j int) bool { return traces[i].Core < traces[j].Core })
	for i := 1; i < len(traces); i++ {
		if traces[i].Core == traces[i-1].Core {
			return nil, nil, fmt.Errorf("jportal: duplicate trace files for core %d in %s", traces[i].Core, dir)
		}
	}
	return &prog, &RunResult{Traces: traces, Sideband: sideband, Snapshot: snap, SourceID: src.ID()}, nil
}

func writeGob(path string, v any) error {
	return writeGobFS(iofault.OS, path, v)
}

func writeGobFS(fsys iofault.FS, path string, v any) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("jportal: encode %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("jportal: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}
