package jportal

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"jportal/internal/bytecode"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/vm"
)

// A run archive is JPortal's deployment interface between the online and
// offline phases (paper §3): everything the offline decoder needs, written
// to a directory —
//
//	program.gob     the bytecode program (source of the ICFG)
//	snapshot.bin    machine-code metadata (templates, JIT blobs, debug info)
//	sideband.gob    scheduler thread-switch records
//	trace.core<N>   one PT trace file per core
//
// so collection and analysis can run in different processes (or machines),
// exactly as the paper separates them.

// SaveRun writes prog and the run's offline-relevant artefacts into dir
// (created if missing).
func SaveRun(dir string, prog *bytecode.Program, run *RunResult) error {
	if run.Traces == nil {
		return fmt.Errorf("jportal: run has no traces to save")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(dir, "program.gob"), prog); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "snapshot.bin"))
	if err != nil {
		return err
	}
	if err := meta.WriteSnapshot(sf, run.Snapshot); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(dir, "sideband.gob"), run.Sideband); err != nil {
		return err
	}
	for i := range run.Traces {
		tf, err := os.Create(filepath.Join(dir, fmt.Sprintf("trace.core%d", run.Traces[i].Core)))
		if err != nil {
			return err
		}
		if err := pt.WriteTrace(tf, &run.Traces[i]); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadRun reads an archive written by SaveRun. The returned RunResult
// carries traces, sideband and snapshot (no oracle and no runtime stats —
// those exist only in the collecting process).
func LoadRun(dir string) (*bytecode.Program, *RunResult, error) {
	var prog bytecode.Program
	if err := readGob(filepath.Join(dir, "program.gob"), &prog); err != nil {
		return nil, nil, err
	}
	if err := bytecode.Verify(&prog); err != nil {
		return nil, nil, fmt.Errorf("jportal: archived program invalid: %w", err)
	}
	sf, err := os.Open(filepath.Join(dir, "snapshot.bin"))
	if err != nil {
		return nil, nil, err
	}
	snap, err := meta.ReadSnapshot(sf)
	sf.Close()
	if err != nil {
		return nil, nil, err
	}
	var sideband []vm.SwitchRecord
	if err := readGob(filepath.Join(dir, "sideband.gob"), &sideband); err != nil {
		return nil, nil, err
	}
	matches, err := filepath.Glob(filepath.Join(dir, "trace.core*"))
	if err != nil {
		return nil, nil, err
	}
	if len(matches) == 0 {
		return nil, nil, fmt.Errorf("jportal: no trace files in %s", dir)
	}
	var traces []pt.CoreTrace
	for _, name := range matches {
		tf, err := os.Open(name)
		if err != nil {
			return nil, nil, err
		}
		tr, err := pt.ReadTrace(tf)
		tf.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("jportal: %s: %w", name, err)
		}
		traces = append(traces, *tr)
	}
	return &prog, &RunResult{Traces: traces, Sideband: sideband, Snapshot: snap}, nil
}

func writeGob(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("jportal: encode %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("jportal: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}
