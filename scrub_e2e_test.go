package jportal_test

// End-to-end tests of the storage-durability loop (DESIGN.md §16): a real
// collected archive, a partial upload killed mid-push, a torn tail planted
// the way a crashed disk leaves one, then `scrub -repair` + a resumed push
// — and the final archive must come out byte-identical to the local one.

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jportal"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/scrub"
	"jportal/internal/streamfmt"
)

const scrubChunkBytes = 4096

// batchRecords replicates the push client's deterministic batching, so a
// partial upload followed by a resumed PushArchive (same MaxChunkBytes)
// reproduces the same frame sequence.
func batchRecords(t *testing.T, records []byte) [][]byte {
	t.Helper()
	var out [][]byte
	for off := 0; off < len(records); {
		end := off
		for end < len(records) {
			n, err := streamfmt.Scan(records[end:])
			if err != nil {
				t.Fatal(err)
			}
			if end > off && end+n-off > scrubChunkBytes {
				break
			}
			end += n
		}
		out = append(out, records[off:end])
		off = end
	}
	return out
}

func TestScrubRepairTornTailThenResume(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "fop", localDir)
	dataDir := t.TempDir()
	const id = "torn-session"

	stream, err := os.ReadFile(filepath.Join(localDir, jportal.StreamFileName))
	if err != nil {
		t.Fatal(err)
	}
	programGob, err := os.ReadFile(filepath.Join(localDir, "program.gob"))
	if err != nil {
		t.Fatal(err)
	}
	ncores, err := streamfmt.ParseHeader(stream)
	if err != nil {
		t.Fatal(err)
	}
	batches := batchRecords(t, stream[streamfmt.HeaderLen:])
	if len(batches) < 4 {
		t.Fatalf("archive too small to interrupt meaningfully: %d batches", len(batches))
	}

	// Phase 1: upload the program and the first half of the chunk batches,
	// then drop the connection without FIN — the shape a killed agent
	// leaves behind.
	srv1, addr1 := startManagedIngest(t, dataDir)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	p, err := client.Dial(ctx, client.Options{Addr: addr1, SessionID: id, MaxChunkBytes: scrubChunkBytes}, ncores)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(ingest.FrameProgram, programGob); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:len(batches)/2] {
		if _, err := p.Send(ingest.FrameChunk, b); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv1.Shutdown(shutCtx) // drains the queue; the frontier is durable
	shutCancel()

	sessDir := filepath.Join(dataDir, id)
	st, err := ingest.ReadSessionState(sessDir)
	if err != nil {
		t.Fatalf("no durable frontier after partial upload: %v", err)
	}
	if st.Sealed || st.Size <= streamfmt.HeaderLen {
		t.Fatalf("unexpected frontier after partial upload: %+v", st)
	}

	// Phase 2: plant the torn tail — a chunk record's first 6 bytes, the
	// way a torn write past the last fsync ends up on disk.
	f, err := os.OpenFile(filepath.Join(sessDir, jportal.StreamFileName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{streamfmt.TagChunk, 0, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 3: scrub-and-repair must classify the tear and truncate back
	// to the durable frontier, exactly as the server's own restore would.
	rep, err := scrub.Run(scrub.Config{DataDir: dataDir, Repair: true,
		Logf: func(format string, a ...any) { t.Logf("scrub: "+format, a...) }})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornRepaired != 1 {
		t.Fatalf("TornRepaired = %d\n%s", rep.TornRepaired, scrub.FormatReport(rep))
	}
	fi, err := os.Stat(filepath.Join(sessDir, jportal.StreamFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st.Size {
		t.Fatalf("repaired stream is %d bytes, want the %d-byte frontier", fi.Size(), st.Size)
	}

	// Phase 4: the agent comes back and re-pushes the whole archive; the
	// resume must skip past the repaired frontier and finish.
	_, addr2 := startManagedIngest(t, dataDir)
	stats, err := client.PushArchive(ctx, client.Options{
		Addr: addr2, SessionID: id, MaxChunkBytes: scrubChunkBytes,
	}, localDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumeSeq == 0 {
		t.Fatal("push restarted from scratch; expected a resume past the repaired frontier")
	}
	assertSameArchive(t, localDir, dataDir, id)
}

// TestScrubLeavesCompleteUploadUntouched: scrub-and-repair over a freshly
// ingested archive is a no-op, byte for byte.
func TestScrubLeavesCompleteUploadUntouched(t *testing.T) {
	localDir := filepath.Join(t.TempDir(), "local")
	collectArchive(t, "avrora", localDir)
	dataDir := t.TempDir()
	const id = "clean-session"

	_, addr := startIngestServer(t, ingest.Config{DataDir: dataDir})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := client.PushArchive(ctx, client.Options{Addr: addr, SessionID: id}, localDir); err != nil {
		t.Fatal(err)
	}

	rep, err := scrub.Run(scrub.Config{DataDir: dataDir, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean != 1 || rep.Damaged != 0 {
		t.Fatalf("clean=%d damaged=%d\n%s", rep.Clean, rep.Damaged, scrub.FormatReport(rep))
	}
	assertSameArchive(t, localDir, dataDir, id)
}

// startManagedIngest starts an ingest server the test shuts down itself
// (mid-test restarts), falling back to a Cleanup for the failure paths.
func startManagedIngest(t *testing.T, dataDir string) (*ingest.Server, string) {
	t.Helper()
	srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}
