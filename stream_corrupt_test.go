package jportal_test

// Property-style robustness tests of stream.jpt parsing: every truncation
// and every deterministic single-byte flip of a valid sealed archive must
// surface as an error — never a panic, and never a silently shortened
// analysis. The seal record's CRC-32 is what makes the "every flip"
// guarantee possible: damage that survives the structural checks cannot
// also match the checksum.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/streamfmt"
	"jportal/internal/workload"
)

// collectSmallArchive seals a small chunked archive to mutate.
func collectSmallArchive(t *testing.T, dir string) {
	t.Helper()
	s := workload.MustLoad("fop", 0.15)
	rcfg := jportal.DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64
	var w *jportal.StreamArchiveWriter
	_, err := jportal.RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			var err error
			w, err = jportal.CreateStreamArchive(dir, p, snap, ncores)
			return w, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}

// cloneArchive copies an archive directory, substituting stream for the
// stream.jpt contents (nil keeps the original).
func cloneArchive(t *testing.T, src, dst string, stream []byte) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == jportal.StreamFileName && stream != nil {
			data = stream
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func analyzeDir(dir string) (err error) {
	_, _, err = jportal.AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0)
	return err
}

func TestStreamArchiveCorruptionIsAlwaysAnError(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base")
	collectSmallArchive(t, base)
	stream, err := os.ReadFile(filepath.Join(base, jportal.StreamFileName))
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: an untouched clone analyzes fine.
	clean := filepath.Join(t.TempDir(), "clean")
	cloneArchive(t, base, clean, nil)
	if err := analyzeDir(clean); err != nil {
		t.Fatalf("clean clone failed: %v", err)
	}

	// Single-byte flips at deterministic pseudo-random positions across
	// the whole file (header, records, seal): each must yield an error.
	// The bit flipped also varies so tags, length fields and payload bits
	// are all hit.
	const flips = 48
	sawCorrupt := false
	for i := 0; i < flips; i++ {
		pos := int(uint64(i) * 2654435761 % uint64(len(stream)))
		mutated := append([]byte(nil), stream...)
		mutated[pos] ^= 1 << (i % 8)
		dir := filepath.Join(t.TempDir(), "flip")
		cloneArchive(t, base, dir, mutated)
		err := analyzeDir(dir)
		if err == nil {
			t.Fatalf("flip %d (byte %d, bit %d) analyzed without error", i, pos, i%8)
		}
		if errors.Is(err, streamfmt.ErrCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Error("no flip surfaced as streamfmt.ErrCorrupt (taxonomy lost?)")
	}

	// Truncations at interesting boundaries: all are "unsealed or damaged",
	// never success, never a panic.
	cuts := []int{0, 3, streamfmt.HeaderLen - 1, streamfmt.HeaderLen,
		streamfmt.HeaderLen + 1, len(stream) / 2, len(stream) - 6, len(stream) - 1}
	for _, cut := range cuts {
		dir := filepath.Join(t.TempDir(), "cut")
		cloneArchive(t, base, dir, stream[:cut])
		if err := analyzeDir(dir); err == nil {
			t.Fatalf("truncation to %d bytes analyzed without error", cut)
		}
	}

	// A damaged program.gob is an error too.
	dir := filepath.Join(t.TempDir(), "gob")
	cloneArchive(t, base, dir, nil)
	gob, err := os.ReadFile(filepath.Join(dir, "program.gob"))
	if err != nil {
		t.Fatal(err)
	}
	gob[len(gob)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "program.gob"), gob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := analyzeDir(dir); err == nil {
		t.Fatal("corrupt program.gob analyzed without error")
	}
}
