package jportal

// Tests for the robustness layer (DESIGN.md §11): crash-safe checkpointing
// with kill-and-resume byte-identity, corrupt-checkpoint fallback, deadline
// propagation yielding partial-but-valid analyses, and Session lifecycle
// edges.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// buildChunkedArchive runs a subject with the streaming sink into a sealed
// chunked archive. The tiny PT buffer forces data loss, so the §5 recovery
// path is part of everything the checkpoint must reproduce.
func buildChunkedArchive(t *testing.T, name string, scale workload.Scale, dir string) {
	t.Helper()
	s := workload.MustLoad(name, scale)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64
	var w *StreamArchiveWriter
	if _, err := RunWithSink(s.Program, s.Threads, rcfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
			var err error
			w, err = CreateStreamArchive(dir, p, snap, ncores)
			return w, err
		}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}

// countArchiveRecords scans a sealed archive and returns its record count.
func countArchiveRecords(t *testing.T, dir string) int {
	t.Helper()
	r, err := OpenStreamArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestKillAndResumeGoldenAllSubjects is the tentpole's acceptance check:
// for every workload subject, a replay killed mid-run (simulated process
// death: no Close, checkpoint left behind) and resumed from its checkpoint
// must produce an Analysis byte-identical to an uninterrupted replay —
// same steps, fills, flows, decode stats, and degradation report.
func TestKillAndResumeGoldenAllSubjects(t *testing.T) {
	for _, name := range workload.Names() {
		dir := filepath.Join(t.TempDir(), name)
		buildChunkedArchive(t, name, 0.25, dir)
		_, want, err := AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0)
		if err != nil {
			t.Fatalf("%s: uninterrupted replay: %v", name, err)
		}
		total := countArchiveRecords(t, dir)
		if total < 8 {
			t.Fatalf("%s: archive too small (%d records) to kill mid-run", name, total)
		}
		ckpt := filepath.Join(dir, CheckpointFileName)

		// First pass: checkpoint frequently and die halfway through.
		_, _, err = AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
			StreamOptions{CheckpointPath: ckpt, CheckpointEvery: 2, stopAfterRecords: total / 2})
		if !errors.Is(err, errReplayAbandoned) {
			t.Fatalf("%s: abandoned replay = %v", name, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("%s: no checkpoint survived the kill: %v", name, err)
		}

		// Second pass: resume from the checkpoint and finish.
		_, got, err := AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
			StreamOptions{CheckpointPath: ckpt, CheckpointEvery: 2, Resume: true})
		if err != nil {
			t.Fatalf("%s: resumed replay: %v", name, err)
		}
		equalAnalyses(t, name+"/kill-resume", want, got)
		if w, g := want.Report.String(), got.Report.String(); w != g {
			t.Errorf("%s: degradation reports diverge:\n--- uninterrupted\n%s\n--- resumed\n%s", name, w, g)
		}
		if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
			t.Errorf("%s: checkpoint not deleted after a completed run (err %v)", name, err)
		}
	}
}

// TestResumeWithCorruptCheckpointReplaysFresh: a damaged checkpoint must
// never poison the analysis — resume falls back to a full replay with the
// same output, and says so.
func TestResumeWithCorruptCheckpointReplaysFresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chunked")
	buildChunkedArchive(t, "fop", 0.2, dir)
	_, want, err := AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := countArchiveRecords(t, dir)
	ckpt := filepath.Join(dir, CheckpointFileName)
	_, _, err = AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
		StreamOptions{CheckpointPath: ckpt, CheckpointEvery: 2, stopAfterRecords: total / 2})
	if !errors.Is(err, errReplayAbandoned) {
		t.Fatalf("abandoned replay = %v", err)
	}

	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(ckpt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var notices []string
	_, got, err := AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
		StreamOptions{CheckpointPath: ckpt, Resume: true,
			Logf: func(format string, args ...any) { notices = append(notices, fmt.Sprintf(format, args...)) }})
	if err != nil {
		t.Fatalf("resume over a corrupt checkpoint: %v", err)
	}
	equalAnalyses(t, "corrupt-ckpt-fallback", want, got)
	found := false
	for _, n := range notices {
		if strings.Contains(n, "checkpoint unusable") {
			found = true
		}
	}
	if !found {
		t.Errorf("no fallback notice logged; got %q", notices)
	}
}

// TestResumePastArchiveEndIsAnError: a checkpoint claiming more records
// than the archive holds (wrong directory, truncated archive) must fail
// loudly, not silently produce a half-restored analysis.
func TestResumePastArchiveEndIsAnError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "chunked")
	buildChunkedArchive(t, "fop", 0.15, dir)
	total := countArchiveRecords(t, dir)
	ckpt := filepath.Join(dir, CheckpointFileName)
	_, _, err := AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
		StreamOptions{CheckpointPath: ckpt, CheckpointEvery: 2, stopAfterRecords: total / 2})
	if !errors.Is(err, errReplayAbandoned) {
		t.Fatalf("abandoned replay = %v", err)
	}
	ck, err := ReadSessionCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ck.Records = total + 1000
	if err := WriteSessionCheckpoint(ckpt, ck); err != nil {
		t.Fatal(err)
	}
	if _, _, err := AnalyzeStreamArchiveOpts(context.Background(), dir, core.DefaultPipelineConfig(),
		StreamOptions{CheckpointPath: ckpt, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint covers") {
		t.Fatalf("oversized checkpoint = %v, want a clear error", err)
	}
}

// openSubjectSession runs a subject and opens a Session over its traces.
func openSubjectSession(t *testing.T, name string, scale workload.Scale) (*Session, *RunResult, int) {
	t.Helper()
	s := workload.MustLoad(name, scale)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ncores := 1
	for i := range run.Traces {
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
	}
	cfg := core.DefaultPipelineConfig()
	cfg.MaxPendingSegments = 0 // unbounded waves: everything pends until Close
	sess, err := OpenSession(s.Program, run.Snapshot, ncores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sess, run, ncores
}

// TestDeadlineYieldsPartialAnalysis: cancelling the context before Close
// must return promptly with a structurally valid partial Analysis tagged
// TimedOut, the un-reconstructed remainder quarantined under the deadline
// reason — never a hang, never a panic, never an error.
func TestDeadlineYieldsPartialAnalysis(t *testing.T) {
	sess, run, ncores := openSubjectSession(t, "h2", 0.4)
	sess.AddSideband(run.Sideband)
	for c := 0; c < ncores; c++ {
		sess.Watermark(c, math.MaxUint64)
	}
	for i := range run.Traces {
		if err := sess.Feed(run.Traces[i].Core, run.Traces[i].Items); err != nil {
			t.Fatal(err)
		}
	}
	// A clean Drain decodes and tokenizes: with reconstruction deferred
	// (MaxPendingSegments = 0) every segment is still pending when the
	// cancelled Close arrives, so the deadline cuts at the segment level.
	if err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an, err := sess.CloseContext(ctx)
	if err != nil {
		t.Fatalf("CloseContext under a dead deadline: %v", err)
	}
	if an == nil || an.Report == nil {
		t.Fatal("no analysis returned")
	}
	if !an.Report.TimedOut {
		t.Error("Report.TimedOut = false after a cancelled Close")
	}
	if an.Report.SegmentsQuarantined == 0 {
		t.Error("nothing quarantined: the deadline seems not to have cut anything")
	}
	if an.Report.Quarantined["deadline"] == 0 {
		t.Errorf("no deadline-reason ledger entries: %v", an.Report.Quarantined)
	}
	if !strings.Contains(an.Report.String(), "timed out") {
		t.Errorf("report does not surface the timeout:\n%s", an.Report.String())
	}
	// The partial analysis must still be structurally sound: every flow
	// non-nil, steps extractable.
	for _, th := range an.Threads {
		for i, f := range th.Flows {
			if f == nil {
				t.Fatalf("thread %d flow %d is nil in a partial analysis", th.Thread, i)
			}
		}
	}
	_ = an.Steps()
}

// TestDeadlineMidDrainStillCompletes: a deadline hit during one Drain wave
// quarantines that wave only; the earlier clean wave keeps its decoded
// segments and a clean Close still returns a valid Analysis. Partial means
// partial, not poisoned. The waves are split by watermark — the first Drain
// may only emit scheduling windows finalized below the mid-run watermark.
func TestDeadlineMidDrainStillCompletes(t *testing.T) {
	s := workload.MustLoad("fop", 0.3)
	rcfg := DefaultRunConfig()
	rcfg.CollectOracle = false
	rcfg.PT.BufBytes = 16 << 10
	run, err := Run(s.Program, s.Threads, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	ncores := 1
	for i := range run.Traces {
		if n := run.Traces[i].Core + 1; n > ncores {
			ncores = n
		}
	}
	cfg := core.DefaultPipelineConfig()
	cfg.MaxPendingSegments = 1 // reconstruct eagerly, wave by wave
	sess, err := OpenSession(s.Program, run.Snapshot, ncores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess.AddSideband(run.Sideband)
	for i := range run.Traces {
		if err := sess.Feed(run.Traces[i].Core, run.Traces[i].Items); err != nil {
			t.Fatal(err)
		}
	}

	// First wave cleanly: watermark at the sideband midpoint finalizes the
	// early scheduling windows only.
	mid := run.Sideband[len(run.Sideband)/2].TSC
	for c := 0; c < ncores; c++ {
		sess.Watermark(c, mid)
	}
	if err := sess.Drain(); err != nil {
		t.Fatal(err)
	}
	decodedEarly := sess.DeltasApplied()

	// Second wave under a cancelled context: its deltas quarantine at the
	// feed level, but the session itself stays usable.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for c := 0; c < ncores; c++ {
		sess.Watermark(c, math.MaxUint64)
	}
	if err := sess.DrainContext(ctx); err != nil {
		t.Fatal(err)
	}
	an, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !an.Report.TimedOut {
		t.Error("TimedOut not set although one wave was cancelled")
	}
	if an.Report.Quarantined["deadline"] == 0 {
		t.Errorf("the cancelled wave left no deadline ledger entries: %v", an.Report.Quarantined)
	}
	if decodedEarly == 0 {
		t.Error("the clean first wave emitted no deltas")
	}
	if an.Report.SegmentsDecoded == 0 {
		t.Error("nothing decoded: the clean wave's segments should survive")
	}
	for _, th := range an.Threads {
		for i, f := range th.Flows {
			if f == nil {
				t.Fatalf("thread %d flow %d is nil", th.Thread, i)
			}
		}
	}
}

// TestSessionLifecycleEdges covers the remaining lifecycle satellite cases:
// double Close (idempotent, same result), Drain on an empty run, Close on a
// never-fed session, and Feed/Drain after Close (already covered in
// TestSessionValidation, re-checked here against the context variants).
func TestSessionLifecycleEdges(t *testing.T) {
	s := workload.MustLoad("fop", 0.1)
	snap := meta.NewSnapshot(meta.NewTemplateTable())

	// Empty run: Drain and Close on a session that never saw input.
	sess, err := OpenSession(s.Program, snap, 2, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Drain(); err != nil {
		t.Fatalf("Drain on an empty session: %v", err)
	}
	an, err := sess.Close()
	if err != nil {
		t.Fatalf("Close on an empty session: %v", err)
	}
	for _, th := range an.Threads {
		if len(th.Flows) != 0 {
			t.Errorf("empty run produced %d flows for thread %d", len(th.Flows), th.Thread)
		}
	}
	if n := len(an.Steps()); n != 0 {
		t.Errorf("empty run produced %d steps", n)
	}
	if an.Report == nil || an.Report.TimedOut {
		t.Error("empty run report missing or spuriously timed out")
	}

	// Double Close: idempotent, returns the same Analysis.
	an2, err := sess.Close()
	if err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if an2 != an {
		t.Error("second Close returned a different Analysis")
	}

	// Context variants after Close fail like the plain ones.
	if err := sess.DrainContext(context.Background()); err == nil {
		t.Error("DrainContext succeeded on a closed session")
	}
	if err := sess.Feed(0, nil); err == nil {
		t.Error("Feed succeeded on a closed session")
	}

	// Checkpointing a closed session is refused; so is restoring into one.
	if _, err := sess.ExportCheckpoint(1); err == nil {
		t.Error("ExportCheckpoint succeeded on a closed session")
	}
	if err := sess.RestoreCheckpoint(&SessionCheckpoint{NCores: 2}); err == nil {
		t.Error("RestoreCheckpoint succeeded on a closed session")
	}

	// Restoring into a session that already analysed input is refused.
	sess2, err := OpenSession(s.Program, meta.NewSnapshot(meta.NewTemplateTable()), 3, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.RestoreCheckpoint(&SessionCheckpoint{NCores: 2}); err == nil {
		t.Error("RestoreCheckpoint accepted a core-count mismatch")
	}
	if _, err := sess2.Close(); err != nil {
		t.Fatal(err)
	}
}
