package jportal_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§7) plus the ablations DESIGN.md calls out. Each BenchmarkX
// prints the corresponding rows once (the shape comparison against the
// paper lives in EXPERIMENTS.md) and reports headline numbers as custom
// benchmark metrics.
//
//	go test -bench=. -benchmem
//
// Per-table regeneration is also available interactively:
//
//	go run ./cmd/jportal exp table2

import (
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"jportal"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/core"
	"jportal/internal/experiments"
	"jportal/internal/metrics"
	"jportal/internal/pt"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

var benchOpts = experiments.Options{Scale: 1.0}

var printOnce sync.Map

func printedBefore(key string) bool {
	_, loaded := printOnce.LoadOrStore(key, true)
	return loaded
}

// ---- Table 1 ----

func BenchmarkTable1Subjects(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("table1") {
			experiments.PrintTable1(os.Stdout, rows)
		}
	}
}

// ---- Table 2 ----

func BenchmarkTable2Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("table2") {
			experiments.PrintTable2(os.Stdout, rows)
		}
		var jp, cf float64
		for _, r := range rows {
			jp += r.JPortal
			cf += r.CF
		}
		b.ReportMetric(jp/float64(len(rows)), "jportal-slowdown")
		b.ReportMetric(cf/float64(len(rows)), "cf-slowdown")
	}
}

// ---- Figure 7 ----

func BenchmarkFigure7Accuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("figure7") {
			experiments.PrintFigure7(os.Stdout, rows)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Overall
		}
		b.ReportMetric(100*sum/float64(len(rows)), "overall-accuracy-%")
	}
}

// ---- Table 3 ----

func BenchmarkTable3Breakdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("table3") {
			experiments.PrintTable3(os.Stdout, rows)
		}
		var pmd float64
		for _, r := range rows {
			pmd += r.PMD
		}
		b.ReportMetric(100*pmd/float64(len(rows)), "mean-pmd-%")
	}
}

// ---- Table 4 ----

func BenchmarkTable4HotMethods(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("table4") {
			experiments.PrintTable4(os.Stdout, rows)
		}
		var jp, xp float64
		for _, r := range rows {
			jp += float64(r.JPortal)
			xp += float64(r.Xprof)
		}
		b.ReportMetric(jp/float64(len(rows)), "jportal-top10-hits")
		b.ReportMetric(xp/float64(len(rows)), "xprof-top10-hits")
	}
}

// ---- Table 5 ----

func BenchmarkTable5DecodeCost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && !printedBefore("table5") {
			experiments.PrintTable5(os.Stdout, rows)
		}
		var ts, base float64
		for _, r := range rows {
			ts += float64(r.TS)
			base += float64(r.BaseTS)
		}
		b.ReportMetric(base/ts, "baseline-trace-size-ratio")
	}
}

// ---- Ablation A: Algorithm 1 vs Algorithm 2 (reconstruction search) ----

const ablationSrc = `
method Test.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}
method Test.main(0) {
    iconst 1
    iconst 7
    invokestatic Test.fun
    pop
    return
}
entry Test.main
`

func ablationTrace() []core.Token {
	mk := func(op bytecode.Opcode) core.Token {
		return core.Token{Op: op, Method: bytecode.NoMethod}
	}
	dir := func(op bytecode.Opcode, taken bool) core.Token {
		return core.Token{Op: op, Method: bytecode.NoMethod, HasDir: true, Taken: taken}
	}
	return []core.Token{
		mk(bytecode.ILOAD), dir(bytecode.IFEQ, true),
		mk(bytecode.ILOAD), mk(bytecode.ICONST), mk(bytecode.ISUB), mk(bytecode.ISTORE),
		mk(bytecode.ILOAD), mk(bytecode.ICONST), mk(bytecode.IREM),
		dir(bytecode.IFNE, true), mk(bytecode.ICONST), mk(bytecode.IRETURN),
	}
}

func BenchmarkAblationReconstruction(b *testing.B) {
	b.ReportAllocs()
	prog := bytecode.MustAssemble(ablationSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	toks := ablationTrace()
	b.Run("Alg1-EnumerateAndTest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := m.EnumerateAndTest(toks); !ok {
				b.Fatal("trace rejected")
			}
		}
	})
	b.Run("Alg2-AbstractionGuided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := m.AbstractionGuided(toks); !ok {
				b.Fatal("trace rejected")
			}
		}
	})
	b.Run("Batched-SubsetSim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
			if !r.Complete {
				b.Fatal("trace rejected")
			}
		}
	})
}

// ---- Ablation B: Algorithm 3 vs Algorithm 4 (recovery search) ----

func recoverySegments(b *testing.B) (*core.Matcher, []*core.SegmentFlow) {
	b.Helper()
	prog := bytecode.MustAssemble(ablationSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	mkRep := func(n int, start uint64) []core.Token {
		base := ablationTrace()
		var out []core.Token
		ts := start
		for i := 0; i < n; i++ {
			for _, tk := range base {
				tk.TSC = ts
				ts += 10
				out = append(out, tk)
			}
		}
		return out
	}
	var flows []*core.SegmentFlow
	flows = append(flows, m.ReconstructSegment(&core.Segment{Tokens: mkRep(20, 0)}))
	for i := 0; i < 6; i++ {
		seg := &core.Segment{
			Tokens:    mkRep(40, uint64(100_000*(i+1))),
			GapBefore: &core.GapInfo{Start: uint64(100_000*(i+1)) - 500, End: uint64(100_000 * (i + 1)), LostBytes: 400},
		}
		flows = append(flows, m.ReconstructSegment(seg))
	}
	return m, flows
}

func BenchmarkAblationRecovery(b *testing.B) {
	b.ReportAllocs()
	m, flows := recoverySegments(b)
	rec := core.NewRecoverer(m, flows, core.DefaultRecoveryConfig())
	b.Run("Alg4-TieredIndexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if best, tried, _ := rec.SearchTiered(0); best == 0 || tried == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("Alg3-NaiveScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := rec.SearchNaive(0); !ok {
				b.Fatal("no candidates")
			}
		}
	})
}

// ---- Ablation D: NFA (paper) vs PDA (extension) matching ----

func BenchmarkAblationNFAvsPDA(b *testing.B) {
	b.ReportAllocs()
	prog := bytecode.MustAssemble(ablationSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	var toks []core.Token
	// Interprocedural trace with calls/returns, repeated.
	inter := []core.Token{
		{Op: bytecode.ICONST, Method: bytecode.NoMethod},
		{Op: bytecode.ICONST, Method: bytecode.NoMethod},
		{Op: bytecode.INVOKESTATIC, Method: bytecode.NoMethod},
	}
	inter = append(inter, ablationTrace()...)
	inter = append(inter,
		core.Token{Op: bytecode.POP, Method: bytecode.NoMethod},
		core.Token{Op: bytecode.RETURN, Method: bytecode.NoMethod})
	for i := 0; i < 100; i++ {
		toks = append(toks, inter...)
	}
	b.Run("NFA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks[:len(inter)])
			if !r.Complete {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("PDA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := m.MatchFromContext(m.NodesWithOp(toks[0].Op), toks[:len(inter)])
			if !r.Complete {
				b.Fatal("rejected")
			}
		}
	})
}

// ---- Ablation C: recovery on/off accuracy ----

func BenchmarkAblationNoRecovery(b *testing.B) {
	b.ReportAllocs()
	s := workload.MustLoad("batik", 1.0)
	runCfg := jportal.DefaultRunConfig()
	runCfg.PT.BufBytes = 16 << 10
	run, err := jportal.Run(s.Program, s.Threads, runCfg)
	if err != nil {
		b.Fatal(err)
	}
	truth := run.Oracle.Keys(0)
	score := func(an *jportal.Analysis) float64 {
		var got []metrics.Key
		for _, st := range an.Threads[0].Steps {
			got = append(got, metrics.StepKey(int32(st.Method), st.PC))
		}
		return metrics.Similarity(got, truth, 4096)
	}
	b.Run("WithRecovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an, err := jportal.Analyze(s.Program, run, core.DefaultPipelineConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*score(an), "accuracy-%")
		}
	})
	b.Run("WithoutRecovery", func(b *testing.B) {
		pcfg := core.DefaultPipelineConfig()
		pcfg.Recovery.Disable = true
		for i := 0; i < b.N; i++ {
			an, err := jportal.Analyze(s.Program, run, pcfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*score(an), "accuracy-%")
		}
	})
}

// ---- Micro-benchmarks of the substrates ----

func BenchmarkVMThroughput(b *testing.B) {
	s := workload.MustLoad("sunflow", 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := vm.New(s.Program, vm.DefaultConfig())
		stats, err := m.Run(s.Threads)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(stats.ExecutedBytecodes))
	}
}

func BenchmarkPTCollection(b *testing.B) {
	b.ReportAllocs()
	s := workload.MustLoad("sunflow", 0.5)
	for i := 0; i < b.N; i++ {
		m := vm.New(s.Program, vm.DefaultConfig())
		col := pt.NewCollector(pt.DefaultConfig(), vm.DefaultConfig().Cores)
		m.Tracer = col
		if _, err := m.Run(s.Threads); err != nil {
			b.Fatal(err)
		}
		col.Finish(m.FinalTSC())
	}
}

func BenchmarkOfflineDecode(b *testing.B) {
	b.ReportAllocs()
	s := workload.MustLoad("h2", 0.5)
	run, err := jportal.Run(s.Program, s.Threads, jportal.DefaultRunConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := jportal.Analyze(s.Program, run, core.DefaultPipelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		var steps int
		for _, th := range an.Threads {
			steps += len(th.Steps)
		}
		b.SetBytes(int64(steps))
	}
}

// nfaLoopSrc is a loop program whose token trace is a genuine ICFG cycle:
// the matcher must carry one long run end to end.
const nfaLoopSrc = `
method B.loop(1) returns int {
    iconst 0
    istore 1
Lhead:
    iload 1
    iload 0
    if_icmpge Ldone
    iload 1
    iconst 3
    imul
    istore 1
    iinc 1 1
    goto Lhead
Ldone:
    iload 1
    ireturn
}
method B.main(0) {
    iconst 5
    invokestatic B.loop
    pop
    return
}
entry B.main
`

// nfaLoopTokens is nfaLoopSrc's loop body repeated 500 times.
func nfaLoopTokens() []core.Token {
	mk := func(op bytecode.Opcode) core.Token { return core.Token{Op: op, Method: bytecode.NoMethod} }
	iter := []core.Token{
		mk(bytecode.ILOAD), mk(bytecode.ILOAD),
		{Op: bytecode.IF_ICMPGE, Method: bytecode.NoMethod, HasDir: true, Taken: false},
		mk(bytecode.ILOAD), mk(bytecode.ICONST), mk(bytecode.IMUL), mk(bytecode.ISTORE),
		mk(bytecode.IINC), mk(bytecode.GOTO),
	}
	toks := []core.Token{mk(bytecode.ICONST), mk(bytecode.ISTORE)}
	for i := 0; i < 500; i++ {
		toks = append(toks, iter...)
	}
	return toks
}

func BenchmarkNFAMatch(b *testing.B) {
	prog := bytecode.MustAssemble(nfaLoopSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	toks := nfaLoopTokens()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.MatchFrom(m.NodesWithOp(toks[0].Op), toks)
		if !r.Complete {
			b.Fatalf("rejected at %d of %d", r.Matched, len(toks))
		}
		b.SetBytes(int64(len(toks)))
	}
}

// BenchmarkNFAMatchScratch is BenchmarkNFAMatch on a caller-held scratch:
// together with -benchmem on both, it shows what the per-worker scratch
// buys — steady-state matching allocates only the result path, not the
// per-layer frontier sets and dedup maps of the old implementation.
func BenchmarkNFAMatchScratch(b *testing.B) {
	prog := bytecode.MustAssemble(nfaLoopSrc)
	m := core.NewMatcher(cfg.BuildICFG(prog, cfg.DefaultOptions()))
	toks := nfaLoopTokens()
	starts := m.NodesWithOp(toks[0].Op)
	sc := m.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.MatchFromScratch(sc, starts, toks)
		if !r.Complete {
			b.Fatalf("rejected at %d of %d", r.Matched, len(toks))
		}
		b.SetBytes(int64(len(toks)))
	}
}

// BenchmarkAnalyzeParallel measures the offline pipeline's parallel
// speedup on a multi-thread (4-thread) lossy workload: the timed loop runs
// with Workers = GOMAXPROCS, a serial (Workers=1) pass of the same run is
// timed outside the loop, and the ratio is reported as speedup-vs-serial.
// On a single-core host the ratio hovers around 1.0 (the pool degrades to
// inline execution); on >=4 cores it tracks the thread-level fan-out. The
// outputs of both configurations are verified identical.
func BenchmarkAnalyzeParallel(b *testing.B) {
	s := workload.MustLoad("h2", 0.5)
	rcfg := jportal.DefaultRunConfig()
	rcfg.PT.BufBytes = 16 << 10 // paper-label 64MB: lossy, exercises recovery
	run, err := jportal.Run(s.Program, s.Threads, rcfg)
	if err != nil {
		b.Fatal(err)
	}

	serialCfg := core.DefaultPipelineConfig()
	serialCfg.Workers = 1
	parCfg := core.DefaultPipelineConfig() // Workers=0 -> GOMAXPROCS

	// Serial baseline (untimed by the harness, measured directly).
	t0 := time.Now()
	serialAn, err := jportal.Analyze(s.Program, run, serialCfg)
	if err != nil {
		b.Fatal(err)
	}
	serialTime := time.Since(t0)

	var last *jportal.Analysis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := jportal.Analyze(s.Program, run, parCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = an
	}
	b.StopTimer()

	perOp := b.Elapsed() / time.Duration(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(serialTime)/float64(perOp), "speedup-vs-serial")
	}

	// Determinism: parallel output must be byte-identical to serial.
	if len(last.Threads) != len(serialAn.Threads) {
		b.Fatalf("thread count diverges: %d vs %d", len(last.Threads), len(serialAn.Threads))
	}
	for i := range last.Threads {
		if !reflect.DeepEqual(last.Threads[i].Steps, serialAn.Threads[i].Steps) ||
			!reflect.DeepEqual(last.Threads[i].Fills, serialAn.Threads[i].Fills) ||
			last.Threads[i].Decode != serialAn.Threads[i].Decode {
			b.Fatalf("thread %d: parallel output diverges from serial", i)
		}
	}
}
