package jportal

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"jportal/internal/ckpt"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/trace"
)

// CheckpointFileName is the checkpoint written next to a chunked archive's
// stream.jpt by the resumable replay path.
const CheckpointFileName = "session.ckpt"

// SessionCheckpoint is a Session's complete resumable state at a record
// boundary of the chunked archive (DESIGN.md §11): stitcher frontiers,
// per-thread analyzer state, the quarantine ledger, and the archive cursor
// (how many records had been consumed). The metadata snapshot is NOT part
// of the checkpoint — resume rebuilds it by replaying the archive's
// snapshot and blob records, which is deterministic and keeps the
// checkpoint small.
type SessionCheckpoint struct {
	NCores  int
	Records int
	Peak    int

	Stitcher  trace.StitcherState
	Analyzers []core.ThreadAnalyzerState
	Ledger    fault.LedgerState
}

// ExportCheckpoint snapshots the session between drains. The session must
// be quiescent — no Feed/Drain in flight, not closed — which the archive
// replay loop guarantees by checkpointing only between records.
func (s *Session) ExportCheckpoint(records int) (*SessionCheckpoint, error) {
	if s.closed {
		return nil, errors.New("jportal: checkpoint of a closed session")
	}
	if s.pl != nil {
		// Drain the ring pipeline to a quiescent point, then export over
		// the same merged analyzer view the synchronous session holds.
		s.pl.quiesce()
		s.pl.merge()
		s.pl.syncPeak()
	}
	ck := &SessionCheckpoint{
		NCores:    s.ncores,
		Records:   records,
		Peak:      s.peak,
		Stitcher:  s.st.ExportState(),
		Analyzers: make([]core.ThreadAnalyzerState, len(s.analyzers)),
		Ledger:    s.ledger.ExportState(),
	}
	for i, a := range s.analyzers {
		ck.Analyzers[i] = a.ExportState()
	}
	return ck, nil
}

// RestoreCheckpoint rebuilds a freshly-opened session from a checkpoint.
// The session must have been opened with the same program and core count,
// over a snapshot rebuilt by replaying the archive prefix the checkpoint
// covers — the snapshot's export log must match the checkpointing run's,
// or decoder blob references will not resolve.
func (s *Session) RestoreCheckpoint(ck *SessionCheckpoint) error {
	if s.closed {
		return errors.New("jportal: restore into a closed session")
	}
	if len(s.analyzers) != 0 || s.peak != 0 {
		return errors.New("jportal: restore into a session that has already analysed input")
	}
	if ck.NCores != s.ncores {
		return fmt.Errorf("jportal: checkpoint has %d cores, session has %d", ck.NCores, s.ncores)
	}
	if s.pl != nil {
		// Quiesce first: the prefix's blob records must be applied to every
		// worker replica before analyzers restore against them, and the
		// stitcher must be idle before its state is replaced.
		s.pl.quiesce()
	}
	if err := s.st.RestoreState(ck.Stitcher); err != nil {
		return err
	}
	s.snap.Seal()
	s.grow(len(ck.Analyzers))
	for i := range ck.Analyzers {
		if err := s.analyzers[i].RestoreState(ck.Analyzers[i]); err != nil {
			return fmt.Errorf("jportal: restore thread %d: %w", i, err)
		}
	}
	s.ledger.RestoreState(ck.Ledger)
	s.peak = ck.Peak
	s.updateSegmentHeartbeat()
	return nil
}

// WriteSessionCheckpoint persists a checkpoint crash-atomically inside the
// sealed ckpt frame (gob payload, CRC-sealed envelope, temp+fsync+rename):
// a torn write leaves the previous checkpoint (or none) intact, never a
// partial file that parses.
func WriteSessionCheckpoint(path string, ck *SessionCheckpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return fmt.Errorf("jportal: encode checkpoint: %w", err)
	}
	return ckpt.WriteFile(path, buf.Bytes())
}

// ReadSessionCheckpoint loads and validates a checkpoint file. A missing
// file returns os.IsNotExist; a damaged one wraps ckpt.ErrCorrupt.
func ReadSessionCheckpoint(path string) (*SessionCheckpoint, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck := new(SessionCheckpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(ck); err != nil {
		return nil, fmt.Errorf("%w: gob: %v", ckpt.ErrCorrupt, err)
	}
	return ck, nil
}
