package jportal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/etrace"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// etraceRunConfig mirrors goldenRunConfig but selects the RISC-V E-Trace
// source and keeps the oracle for similarity checks: small buffers so the
// loss/recovery path is exercised on the second backend too.
func etraceRunConfig() RunConfig {
	rcfg := DefaultRunConfig()
	rcfg.Source = etrace.ID
	rcfg.PT.BufBytes = 16 << 10
	rcfg.SinkChunkItems = 64
	return rcfg
}

// TestETraceEndToEndAllSubjects runs every subject through the full
// pipeline on the E-Trace backend: collect, batch archive round-trip,
// chunked archive round-trip, and streamed analysis — the same suite the
// PT golden test covers, proving the neutral layers are ISA-agnostic.
func TestETraceEndToEndAllSubjects(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := workload.MustLoad(name, 0.2)
			rcfg := etraceRunConfig()
			run, err := Run(s.Program, s.Threads, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if run.SourceID != etrace.ID {
				t.Fatalf("SourceID = %q, want %q", run.SourceID, etrace.ID)
			}

			// Batch archive: the source ID must survive the round trip and
			// be declared in archive.meta.
			batchDir := filepath.Join(t.TempDir(), "batch")
			if err := SaveRun(batchDir, s.Program, run); err != nil {
				t.Fatal(err)
			}
			metaBytes, err := os.ReadFile(filepath.Join(batchDir, "archive.meta"))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(metaBytes), "source: "+etrace.ID+"\n") {
				t.Fatalf("archive.meta missing source line:\n%s", metaBytes)
			}
			prog2, run2, err := LoadRun(batchDir)
			if err != nil {
				t.Fatal(err)
			}
			if run2.SourceID != etrace.ID {
				t.Fatalf("loaded SourceID = %q, want %q", run2.SourceID, etrace.ID)
			}

			// Analysis of the reloaded run must route to the E-Trace decoder
			// (RunResult.Source) and reconstruct the control flow.
			an, err := Analyze(prog2, run2, core.DefaultPipelineConfig())
			if err != nil {
				t.Fatal(err)
			}
			if len(an.Threads) != len(s.Threads) {
				t.Fatalf("threads: got %d, want %d", len(an.Threads), len(s.Threads))
			}
			for tid := range an.Threads {
				sim := similarity(an, run.Oracle, tid)
				if sim < 0.5 {
					t.Errorf("thread %d similarity %.3f too low", tid, sim)
				}
			}

			// Chunked archive: stream out during the run, replay through the
			// streaming pipeline, and check the analysis agrees with batch.
			s2 := workload.MustLoad(name, 0.2)
			chunkDir := filepath.Join(t.TempDir(), "chunked")
			var w *StreamArchiveWriter
			runC, err := RunWithSink(s2.Program, s2.Threads, rcfg,
				func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (TraceSink, error) {
					var err error
					w, err = CreateStreamArchiveSource(chunkDir, p, snap, ncores, rcfg.Source)
					return w, err
				})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Seal(); err != nil {
				t.Fatal(err)
			}
			if runC.SourceID != etrace.ID {
				t.Fatalf("streamed SourceID = %q, want %q", runC.SourceID, etrace.ID)
			}
			_, anC, err := AnalyzeStreamArchive(chunkDir, core.DefaultPipelineConfig(), false, 0)
			if err != nil {
				t.Fatal(err)
			}
			for tid := range anC.Threads {
				sim := similarity(anC, runC.Oracle, tid)
				if sim < 0.5 {
					t.Errorf("streamed thread %d similarity %.3f too low", tid, sim)
				}
			}
		})
	}
}

// TestMixedSourceArchives saves one PT run and one E-Trace run of the same
// program side by side and checks LoadRun routes each archive to its own
// decoder: the PT archive.meta stays byte-compatible (no source line), the
// E-Trace one declares its source, and both analyses succeed.
func TestMixedSourceArchives(t *testing.T) {
	prog := bytecode.MustAssemble(fibSrc)

	ptCfg := DefaultRunConfig()
	ptCfg.VM.Cores = 1
	ptRun, err := Run(prog, nil, ptCfg)
	if err != nil {
		t.Fatal(err)
	}
	etCfg := DefaultRunConfig()
	etCfg.VM.Cores = 1
	etCfg.Source = etrace.ID
	etRun, err := Run(prog, nil, etCfg)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	ptDir := filepath.Join(root, "pt")
	etDir := filepath.Join(root, "etrace")
	if err := SaveRun(ptDir, prog, ptRun); err != nil {
		t.Fatal(err)
	}
	if err := SaveRun(etDir, prog, etRun); err != nil {
		t.Fatal(err)
	}

	ptMeta, err := os.ReadFile(filepath.Join(ptDir, "archive.meta"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(ptMeta), "source:") {
		t.Fatalf("PT archive.meta gained a source line (breaks byte identity):\n%s", ptMeta)
	}
	if !strings.Contains(string(ptMeta), "version: 2\n") {
		t.Fatalf("PT archive.meta must keep the legacy version stamp:\n%s", ptMeta)
	}
	etMeta, err := os.ReadFile(filepath.Join(etDir, "archive.meta"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(etMeta), "source: "+etrace.ID+"\n") {
		t.Fatalf("E-Trace archive.meta missing source line:\n%s", etMeta)
	}
	// A non-default source bumps the version stamp so pre-source binaries
	// refuse the archive instead of misdecoding its packets as PT.
	if !strings.Contains(string(etMeta), "version: 3\n") {
		t.Fatalf("E-Trace archive.meta must carry version 3 for old-binary gating:\n%s", etMeta)
	}

	for _, tc := range []struct {
		dir    string
		srcID  string
		oracle *Oracle
	}{
		{ptDir, "intel-pt", ptRun.Oracle},
		{etDir, etrace.ID, etRun.Oracle},
	} {
		p, run, err := LoadRun(tc.dir)
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		if run.SourceID != tc.srcID {
			t.Errorf("%s: SourceID = %q, want %q", tc.dir, run.SourceID, tc.srcID)
		}
		an, err := Analyze(p, run, core.DefaultPipelineConfig())
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		if sim := similarity(an, tc.oracle, 0); sim < 0.75 {
			t.Errorf("%s: similarity %.3f too low", tc.dir, sim)
		}
	}
}
