package jportal

import (
	"jportal/internal/bytecode"
	"jportal/internal/metrics"
)

// Oracle records the ground-truth bytecode execution stream per thread. It
// is a simulation-only affordance (real hardware has no oracle); the
// evaluation uses it the way the paper uses the instrumentation-based
// control-flow profile as ground truth (§7.2).
type Oracle struct {
	threads []oracleThread
}

type oracleThread struct {
	methods []bytecode.MethodID
	pcs     []int32
	tscs    []uint64
}

// NewOracle creates an oracle for n threads.
func NewOracle(n int) *Oracle {
	return &Oracle{threads: make([]oracleThread, n)}
}

// OnExec implements vm.BytecodeListener.
func (o *Oracle) OnExec(tid int, mid bytecode.MethodID, pc int32, core int, tsc uint64) {
	t := &o.threads[tid]
	t.methods = append(t.methods, mid)
	t.pcs = append(t.pcs, pc)
	t.tscs = append(t.tscs, tsc)
}

// NumThreads returns the thread count.
func (o *Oracle) NumThreads() int { return len(o.threads) }

// Len returns the number of recorded events for thread tid.
func (o *Oracle) Len(tid int) int { return len(o.threads[tid].methods) }

// Keys returns thread tid's step keys for similarity scoring.
func (o *Oracle) Keys(tid int) []metrics.Key {
	t := &o.threads[tid]
	out := make([]metrics.Key, len(t.methods))
	for i := range t.methods {
		out[i] = metrics.StepKey(int32(t.methods[i]), t.pcs[i])
	}
	return out
}

// TimedKeys returns thread tid's steps with timestamps.
func (o *Oracle) TimedKeys(tid int) []metrics.TimedKey {
	t := &o.threads[tid]
	out := make([]metrics.TimedKey, len(t.methods))
	for i := range t.methods {
		out[i] = metrics.TimedKey{
			Key: metrics.StepKey(int32(t.methods[i]), t.pcs[i]),
			TSC: t.tscs[i],
		}
	}
	return out
}

// MethodCounts returns, per method, the number of executed instructions
// (ground truth for hot-method ranking).
func (o *Oracle) MethodCounts(numMethods int) []int64 {
	counts := make([]int64, numMethods)
	for ti := range o.threads {
		for _, mid := range o.threads[ti].methods {
			counts[mid]++
		}
	}
	return counts
}
