package jportal

import (
	"context"
	"sync"
	"sync/atomic"

	"jportal/internal/core"
	"jportal/internal/meta"
	"jportal/internal/ring"
	"jportal/internal/source"
	"jportal/internal/trace"
	"jportal/internal/vm"
)

// The pipelined session (core.PipelineConfig.Pipelined, DESIGN.md §12)
// runs the Session's stages on their own goroutines connected by SPSC
// rings instead of executing them synchronously inside Feed/Drain:
//
//	caller ──in ring──▶ stitcher goroutine ──worker rings──▶ analyzer workers
//
// The caller's Feed/AddSideband/Watermark/Drain enqueue typed messages on
// the input ring and return immediately; the stitcher goroutine applies
// them to the StreamStitcher in arrival order — exactly the order the
// synchronous session would have — and routes emitted thread deltas to
// WorkerCount() analyzer workers, sharded thread→worker by thread index.
// Each thread's deltas therefore reach its analyzer in emission order
// through one FIFO ring, which is why the output is byte-identical to the
// synchronous session for every worker count and ring size.
//
// Metadata safety: in a live run the VM keeps exporting compiled-method
// blobs into its snapshot while workers decode, so workers never read the
// caller's snapshot. Instead each worker owns a replica (meta.Snapshot.
// Clone) and blob deliveries (Session.AddBlobs) are broadcast in-band
// through the rings: ring FIFO order guarantees a worker observes a blob
// before any chunk that references it, mirroring §3.2's dump-before-use
// discipline.
//
// Quiescence: checkpoint export and restore need the whole pipeline
// drained. quiesce() pushes a sync message that the stitcher forwards to
// every worker and acknowledges only after all of them have; the atomic
// ring cursors give the happens-before edges that make the session's
// state readable (and writable, until the next enqueue) from the caller's
// goroutine.

type pipeKind uint8

const (
	pkChunk pipeKind = iota
	pkSideband
	pkWatermark
	pkBlobs
	pkDrain
	pkSync
	pkClose
)

// pipeMsg is one input-ring message (caller → stitcher).
type pipeMsg struct {
	kind  pipeKind
	core  int
	mark  uint64
	items []source.Item
	recs  []vm.SwitchRecord
	blobs []*meta.CompiledMethod
	ctx   context.Context
	ack   chan struct{} // pkSync: closed once the whole pipeline is drained
}

type workKind uint8

const (
	wkDelta workKind = iota
	wkBlobs
	wkSync
)

// workMsg is one worker-ring message (stitcher → analyzer worker).
type workMsg struct {
	kind   workKind
	thread int
	items  []source.Item
	blobs  []*meta.CompiledMethod
	ctx    context.Context
	wg     *sync.WaitGroup // wkSync
}

// pipelinedSession is the goroutine/ring machinery attached to a Session
// when PipelineConfig.Pipelined is set.
type pipelinedSession struct {
	s       *Session
	workers int
	in      *ring.SPSC[pipeMsg]
	wrings  []*ring.SPSC[workMsg]
	// wsnap[w] is worker w's snapshot replica; only worker w touches it
	// (main may read at quiescence).
	wsnap []*meta.Snapshot
	// byThread[w][t] is thread t's analyzer (t%workers == w), created
	// lazily by worker w; main touches the table only at quiescence.
	byThread   [][]*core.ThreadAnalyzer
	stitchDone chan struct{}
	workDone   []chan struct{}
	// buffered/peak mirror the stitcher's BufferedItems for concurrent
	// readers; written only by the stitcher goroutine.
	buffered atomic.Int64
	peak     atomic.Int64
	joined   bool
}

func newPipelinedSession(s *Session) *pipelinedSession {
	w := s.pipe.Cfg.WorkerCount()
	n := s.pipe.Cfg.RingCapacity()
	p := &pipelinedSession{
		s:          s,
		workers:    w,
		in:         ring.New[pipeMsg](n),
		wrings:     make([]*ring.SPSC[workMsg], w),
		wsnap:      make([]*meta.Snapshot, w),
		byThread:   make([][]*core.ThreadAnalyzer, w),
		stitchDone: make(chan struct{}),
		workDone:   make([]chan struct{}, w),
	}
	for i := 0; i < w; i++ {
		p.wrings[i] = ring.New[workMsg](n)
		p.wsnap[i] = s.snap.Clone()
		p.workDone[i] = make(chan struct{})
	}
	go p.stitchLoop()
	for i := 0; i < w; i++ {
		go p.workLoop(i)
	}
	return p
}

// stitchLoop is the stitcher goroutine: it owns s.st between quiescence
// points, applying input messages in arrival order and routing emitted
// deltas to the worker rings.
func (p *pipelinedSession) stitchLoop() {
	defer close(p.stitchDone)
	s := p.s
	for {
		m, ok := p.in.Pop(nil)
		if !ok {
			// Input ring closed without pkClose: the session was abandoned.
			// Release the workers so nothing spins forever.
			for _, r := range p.wrings {
				r.Close()
			}
			return
		}
		switch m.kind {
		case pkChunk:
			s.st.Feed(m.core, m.items) // core range pre-validated by Session.Feed
			p.note()
		case pkSideband:
			s.st.AddSideband(m.recs)
		case pkWatermark:
			s.st.Watermark(m.core, m.mark)
		case pkBlobs:
			for _, r := range p.wrings {
				r.Push(workMsg{kind: wkBlobs, blobs: m.blobs}, nil)
			}
		case pkDrain:
			p.route(s.st.Drain(), m.ctx)
			p.note()
		case pkSync:
			var wg sync.WaitGroup
			wg.Add(len(p.wrings))
			for _, r := range p.wrings {
				r.Push(workMsg{kind: wkSync, wg: &wg}, nil)
			}
			wg.Wait()
			close(m.ack)
		case pkClose:
			p.route(s.st.FinishWorkers(s.pipe.Cfg.Workers), m.ctx)
			for _, r := range p.wrings {
				r.Close()
			}
			return
		}
	}
}

// note republishes the stitcher's in-flight item count for concurrent
// BufferedItems/PeakBufferedItems readers.
func (p *pipelinedSession) note() {
	n := int64(p.s.st.BufferedItems())
	p.buffered.Store(n)
	if n > p.peak.Load() {
		p.peak.Store(n)
	}
}

// route pushes emitted thread deltas to their workers. Delta item slices
// are freshly built by the stitcher's emit and never reused, so ownership
// transfers cleanly through the ring.
func (p *pipelinedSession) route(deltas []trace.ThreadStream, ctx context.Context) {
	for i := range deltas {
		d := deltas[i]
		p.wrings[d.Thread%p.workers].Push(
			workMsg{kind: wkDelta, thread: d.Thread, items: d.Items, ctx: ctx}, nil)
	}
}

// workLoop is analyzer worker w: it drains its ring, exporting broadcast
// blobs into its snapshot replica and feeding deltas to the analyzers it
// owns, until the ring closes.
func (p *pipelinedSession) workLoop(w int) {
	defer close(p.workDone[w])
	s := p.s
	for {
		m, ok := p.wrings[w].Pop(nil)
		if !ok {
			return
		}
		switch m.kind {
		case wkBlobs:
			for _, b := range m.blobs {
				p.wsnap[w].Export(b)
			}
		case wkDelta:
			a := p.analyzer(w, m.thread)
			before := a.SegmentsSeen()
			a.FeedContext(m.ctx, m.items)
			s.hbEmitted.Add(1)
			s.hbSegments.Add(a.SegmentsSeen() - before)
		case wkSync:
			m.wg.Done()
		}
	}
}

// analyzer returns thread's analyzer, creating it against worker w's
// snapshot replica on first use. Called by worker w, or by the caller's
// goroutine at quiescence (merge, checkpoint restore).
func (p *pipelinedSession) analyzer(w, thread int) *core.ThreadAnalyzer {
	for thread >= len(p.byThread[w]) {
		p.byThread[w] = append(p.byThread[w], nil)
	}
	if a := p.byThread[w][thread]; a != nil {
		return a
	}
	a := p.s.pipe.NewThreadAnalyzer(thread, p.wsnap[w])
	a.SetLedger(p.s.ledger)
	p.byThread[w][thread] = a
	return a
}

// quiesce blocks until every message enqueued so far has been fully
// processed by the stitcher and all workers. On return the session's
// stitcher state and analyzers are safe for the caller's goroutine to
// read and mutate, until the next enqueue.
func (p *pipelinedSession) quiesce() {
	ack := make(chan struct{})
	p.in.Push(pipeMsg{kind: pkSync, ack: ack}, nil)
	<-ack
}

// merge assembles s.analyzers — one per thread, in thread order — from
// the per-worker tables, creating empty analyzers for threads that had
// sideband but no trace (mirroring the synchronous grow). Safe only at
// quiescence or after close.
func (p *pipelinedSession) merge() {
	n := p.s.st.NumThreads()
	if len(p.s.analyzers) > n {
		n = len(p.s.analyzers)
	}
	as := make([]*core.ThreadAnalyzer, n)
	for t := 0; t < n; t++ {
		as[t] = p.analyzer(t%p.workers, t)
	}
	p.s.analyzers = as
}

// syncPeak folds the stitcher-maintained peak into the session's field.
func (p *pipelinedSession) syncPeak() {
	if pk := int(p.peak.Load()); pk > p.s.peak {
		p.s.peak = pk
	}
}

// close finishes the stitch (final carve + emission), drains the workers,
// joins every goroutine, and merges the per-worker analyzers into
// s.analyzers for the common finish path. Idempotent.
func (p *pipelinedSession) close(ctx context.Context) {
	if p.joined {
		return
	}
	p.joined = true
	p.in.Push(pipeMsg{kind: pkClose, ctx: ctx}, nil)
	p.in.Close()
	<-p.stitchDone
	for _, ch := range p.workDone {
		<-ch
	}
	p.merge()
	p.syncPeak()
}
