package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jportal"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/workload"
)

// cmdChaos runs the fault-injection matrix over one or more subjects and
// prints the coverage-vs-fault-rate table: how much of each program's
// bytecode the pipeline still attributes as the input gets more hostile.
// The run is fully deterministic for a fixed -seed, so two invocations
// with the same flags print byte-identical reports — that property is what
// the CI smoke checks.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scale := fs.Float64("scale", 0.25, "workload scale")
	seed := fs.Uint64("seed", 42, "fault-injection seed")
	subjects := fs.String("subjects", "fop,avrora,pmd", "comma-separated subject list")
	rates := fs.String("rates", "0,0.5,1,2", "comma-separated fault-rate multipliers")
	cores := fs.Int("cores", 0, "simulated cores (0 = default; fewer cores than threads forces migration)")
	workers := fs.Int("workers", 0, "offline-phase parallelism (0 = GOMAXPROCS)")
	fs.Parse(args)

	rateList, err := parseRates(*rates)
	if err != nil {
		return err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers

	for _, name := range strings.Split(*subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := workload.Load(name, workload.Scale(*scale))
		if err != nil {
			return err
		}
		rcfg := jportal.DefaultRunConfig()
		rcfg.CollectOracle = false
		if *cores > 0 {
			rcfg.VM.Cores = *cores
		}
		rows, err := jportal.ChaosTable(s.Program, s.Threads, rcfg, pcfg,
			fault.DefaultMatrix(*seed), rateList)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, jportal.FormatChaosTable(s.Name, *seed, rows))
		for _, r := range rows {
			if r.Coverage <= 0 {
				return fmt.Errorf("%s: coverage collapsed to %.4f at rate %.2f — degradation is not graceful",
					s.Name, r.Coverage, r.Rate)
			}
		}
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}
