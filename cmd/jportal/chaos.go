package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/fleet"
	"jportal/internal/meta"
	"jportal/internal/scrub"
	"jportal/internal/workload"
)

// cmdChaos runs the fault-injection matrix over one or more subjects and
// prints the coverage-vs-fault-rate table: how much of each program's
// bytecode the pipeline still attributes as the input gets more hostile.
// The run is fully deterministic for a fixed -seed, so two invocations
// with the same flags print byte-identical reports — that property is what
// the CI smoke checks.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scale := fs.Float64("scale", 0.25, "workload scale")
	seed := fs.Uint64("seed", 42, "fault-injection seed")
	subjects := fs.String("subjects", "fop,avrora,pmd", "comma-separated subject list")
	rates := fs.String("rates", "0,0.5,1,2", "comma-separated fault-rate multipliers")
	cores := fs.Int("cores", 0, "simulated cores (0 = default; fewer cores than threads forces migration)")
	workers := fs.Int("workers", 0, "offline-phase parallelism (0 = GOMAXPROCS)")
	fleetMode := fs.Bool("fleet", false, "inject network faults into an in-process ingest fleet instead of trace-decode faults")
	diskMode := fs.Bool("disk", false, "inject storage faults (ENOSPC, EIO, torn writes) under an in-process ingest server, then scrub and repair")
	sessions := fs.Int("sessions", 2, "sessions pushed per rate (-fleet/-disk)")
	src := fs.String("source", "", sourceFlagHelp()+" (-fleet/-disk)")
	fs.Parse(args)

	rateList, err := parseRates(*rates)
	if err != nil {
		return err
	}
	if *fleetMode && *diskMode {
		return fmt.Errorf("chaos: -fleet and -disk are mutually exclusive")
	}
	if *fleetMode {
		return chaosFleet(*subjects, *scale, *seed, *src, rateList, *sessions)
	}
	if *diskMode {
		return chaosDisk(*subjects, *scale, *seed, *src, rateList, *sessions)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers

	for _, name := range strings.Split(*subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := workload.Load(name, workload.Scale(*scale))
		if err != nil {
			return err
		}
		rcfg := jportal.DefaultRunConfig()
		rcfg.CollectOracle = false
		if *cores > 0 {
			rcfg.VM.Cores = *cores
		}
		rows, err := jportal.ChaosTable(s.Program, s.Threads, rcfg, pcfg,
			fault.DefaultMatrix(*seed), rateList)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, jportal.FormatChaosTable(s.Name, *seed, rows))
		for _, r := range rows {
			if r.Coverage <= 0 {
				return fmt.Errorf("%s: coverage collapsed to %.4f at rate %.2f — degradation is not graceful",
					s.Name, r.Coverage, r.Rate)
			}
		}
	}
	return nil
}

// chaosFleet is `jportal chaos -fleet`: collect a chunked archive per
// subject, then push it through an in-process fleet whose every network
// edge (coordinator control plane, ingest listeners, heartbeats, client
// dials) runs behind a seeded netfault injector, once per rate. The
// table reports outcome invariants only, so it is byte-identical per
// seed — the same property the decode-fault table gives CI.
func chaosFleet(subjects string, scale float64, seed uint64, src string, rates []float64, sessions int) error {
	for _, name := range strings.Split(subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		archive, subj, cleanup, err := collectChaosArchive(name, scale, src)
		if err != nil {
			return err
		}
		defer cleanup()

		rows, err := fleet.ChaosSweep(fleet.SweepConfig{
			ArchiveDir: archive,
			SourceID:   src,
			Seed:       seed,
			Rates:      rates,
			Sessions:   sessions,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, fleet.FormatSweep(subj, seed, rows))
		for _, r := range rows {
			if r.Identical != r.Sessions {
				return fmt.Errorf("%s: only %d/%d sessions archived byte-identical at rate %.2f — the fleet lost data",
					subj, r.Identical, r.Sessions, r.Rate)
			}
		}
	}
	return nil
}

// chaosDisk is `jportal chaos -disk`: collect a chunked archive per
// subject, push it through an ingest server whose storage runs behind a
// seeded iofault injector, plant a torn-tail victim and a corrupt sealed
// casualty, scrub-and-repair, resume the victim, and report outcome
// invariants only — byte-identical per seed, like the other two tables.
func chaosDisk(subjects string, scale float64, seed uint64, src string, rates []float64, sessions int) error {
	for _, name := range strings.Split(subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		archive, subj, cleanup, err := collectChaosArchive(name, scale, src)
		if err != nil {
			return err
		}
		defer cleanup()

		rows, err := scrub.DiskSweep(scrub.DiskSweepConfig{
			ArchiveDir: archive,
			SourceID:   src,
			Seed:       seed,
			Rates:      rates,
			Sessions:   sessions,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, scrub.FormatDiskSweep(subj, seed, rows))
		for _, r := range rows {
			// The durability invariant: an upload may fail honestly under
			// sustained injected faults, but a completed one must be
			// byte-identical — and with no faults, everything completes.
			if r.Corrupt > 0 {
				return fmt.Errorf("%s: %d archive(s) completed but are not byte-identical at rate %.2f — silent corruption",
					subj, r.Corrupt, r.Rate)
			}
			if r.Rate == 0 && (r.Completed != r.Sessions || r.Identical != r.Sessions) {
				return fmt.Errorf("%s: %d/%d completed, %d/%d identical with zero faults injected",
					subj, r.Completed, r.Sessions, r.Identical, r.Sessions)
			}
		}
	}
	return nil
}

// collectChaosArchive runs one subject and seals its chunked archive into
// a temp dir, returning the archive path and a cleanup func.
func collectChaosArchive(name string, scale float64, src string) (archive, subj string, cleanup func(), err error) {
	prog, threads, subj, err := loadTarget(name, scale)
	if err != nil {
		return "", "", nil, err
	}
	tmp, err := os.MkdirTemp("", "jportal-chaos-archive-")
	if err != nil {
		return "", "", nil, err
	}
	cleanup = func() { os.RemoveAll(tmp) }
	archive = filepath.Join(tmp, subj)
	cfg := jportal.DefaultRunConfig()
	cfg.CollectOracle = false
	cfg.Source = src
	var w *jportal.StreamArchiveWriter
	if _, err := jportal.RunWithSink(prog, threads, cfg,
		func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
			var err error
			w, err = jportal.CreateStreamArchiveSource(archive, p, snap, ncores, cfg.Source)
			return w, err
		}); err != nil {
		cleanup()
		return "", "", nil, err
	}
	if err := w.Seal(); err != nil {
		cleanup()
		return "", "", nil, err
	}
	return archive, subj, cleanup, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}
