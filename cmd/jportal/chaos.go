package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/fault"
	"jportal/internal/fleet"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// cmdChaos runs the fault-injection matrix over one or more subjects and
// prints the coverage-vs-fault-rate table: how much of each program's
// bytecode the pipeline still attributes as the input gets more hostile.
// The run is fully deterministic for a fixed -seed, so two invocations
// with the same flags print byte-identical reports — that property is what
// the CI smoke checks.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scale := fs.Float64("scale", 0.25, "workload scale")
	seed := fs.Uint64("seed", 42, "fault-injection seed")
	subjects := fs.String("subjects", "fop,avrora,pmd", "comma-separated subject list")
	rates := fs.String("rates", "0,0.5,1,2", "comma-separated fault-rate multipliers")
	cores := fs.Int("cores", 0, "simulated cores (0 = default; fewer cores than threads forces migration)")
	workers := fs.Int("workers", 0, "offline-phase parallelism (0 = GOMAXPROCS)")
	fleetMode := fs.Bool("fleet", false, "inject network faults into an in-process ingest fleet instead of trace-decode faults")
	sessions := fs.Int("sessions", 2, "sessions pushed per rate (-fleet)")
	src := fs.String("source", "", sourceFlagHelp()+" (-fleet)")
	fs.Parse(args)

	rateList, err := parseRates(*rates)
	if err != nil {
		return err
	}
	if *fleetMode {
		return chaosFleet(*subjects, *scale, *seed, *src, rateList, *sessions)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers

	for _, name := range strings.Split(*subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := workload.Load(name, workload.Scale(*scale))
		if err != nil {
			return err
		}
		rcfg := jportal.DefaultRunConfig()
		rcfg.CollectOracle = false
		if *cores > 0 {
			rcfg.VM.Cores = *cores
		}
		rows, err := jportal.ChaosTable(s.Program, s.Threads, rcfg, pcfg,
			fault.DefaultMatrix(*seed), rateList)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, jportal.FormatChaosTable(s.Name, *seed, rows))
		for _, r := range rows {
			if r.Coverage <= 0 {
				return fmt.Errorf("%s: coverage collapsed to %.4f at rate %.2f — degradation is not graceful",
					s.Name, r.Coverage, r.Rate)
			}
		}
	}
	return nil
}

// chaosFleet is `jportal chaos -fleet`: collect a chunked archive per
// subject, then push it through an in-process fleet whose every network
// edge (coordinator control plane, ingest listeners, heartbeats, client
// dials) runs behind a seeded netfault injector, once per rate. The
// table reports outcome invariants only, so it is byte-identical per
// seed — the same property the decode-fault table gives CI.
func chaosFleet(subjects string, scale float64, seed uint64, src string, rates []float64, sessions int) error {
	for _, name := range strings.Split(subjects, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prog, threads, subj, err := loadTarget(name, scale)
		if err != nil {
			return err
		}
		tmp, err := os.MkdirTemp("", "jportal-chaos-archive-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		archive := filepath.Join(tmp, subj)
		cfg := jportal.DefaultRunConfig()
		cfg.CollectOracle = false
		cfg.Source = src
		var w *jportal.StreamArchiveWriter
		if _, err := jportal.RunWithSink(prog, threads, cfg,
			func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
				var err error
				w, err = jportal.CreateStreamArchiveSource(archive, p, snap, ncores, cfg.Source)
				return w, err
			}); err != nil {
			return err
		}
		if err := w.Seal(); err != nil {
			return err
		}

		rows, err := fleet.ChaosSweep(fleet.SweepConfig{
			ArchiveDir: archive,
			SourceID:   src,
			Seed:       seed,
			Rates:      rates,
			Sessions:   sessions,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stdout, fleet.FormatSweep(subj, seed, rows))
		for _, r := range rows {
			if r.Identical != r.Sessions {
				return fmt.Errorf("%s: only %d/%d sessions archived byte-identical at rate %.2f — the fleet lost data",
					subj, r.Identical, r.Sessions, r.Rate)
			}
		}
	}
	return nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}
