// Command jportal is the command-line front end of the JPortal
// reproduction: run workloads under simulated PT tracing, decode and
// reconstruct their control flow, derive profiles, and regenerate the
// paper's tables and figures.
//
// Usage:
//
//	jportal subjects                      list the benchmark subjects
//	jportal run      <subject|file.jasm>  run with PT collection, print stats
//	jportal analyze  <subject|file.jasm>  run + offline reconstruction + accuracy
//	jportal report   <subject|file.jasm>  run + reconstruction + client profiles
//	jportal stream   <dir>                incremental analysis of a chunked archive
//	jportal serve                         networked trace-ingest server
//	jportal push     <dir>                upload a chunked archive to a server
//	jportal scrub                         verify/repair archives in a data dir
//	jportal disasm   <file.jasm>          assemble and disassemble a program
//	jportal chaos                         fault-injection coverage sweep
//	jportal exp      <table1|table2|table3|table4|table5|figure7|all>
//
// Flags (where applicable): -scale, -buf (paper-label MB), -top, -out,
// -workers (offline-phase worker count, 0 = GOMAXPROCS). collect takes
// -chunked to write the streaming archive layout as the run progresses;
// stream takes -follow to tail an archive a collector is still writing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"jportal"
	"jportal/internal/bench"
	"jportal/internal/bytecode"
	"jportal/internal/core"
	"jportal/internal/experiments"
	"jportal/internal/fleet"
	"jportal/internal/meta"
	"jportal/internal/metrics"
	"jportal/internal/profile"
	"jportal/internal/source"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "subjects":
		err = cmdSubjects(args)
	case "run":
		err = cmdRun(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "report":
		err = cmdReport(args)
	case "collect":
		err = cmdCollect(args)
	case "decode":
		err = cmdDecode(args)
	case "stream":
		err = cmdStream(args)
	case "serve":
		err = cmdServe(args)
	case "push":
		err = cmdPush(args)
	case "scrub":
		err = cmdScrub(args)
	case "coordinate":
		err = cmdCoordinate(args)
	case "fleet":
		err = cmdFleet(args)
	case "disasm":
		err = cmdDisasm(args)
	case "chaos":
		err = cmdChaos(args)
	case "bench":
		err = cmdBench(args)
	case "exp":
		err = cmdExp(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jportal: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jportal %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `jportal - control-flow tracing for JVM-like programs with simulated Intel PT

commands:
  subjects                     list benchmark subjects (Table 1)
  run     <subject|file.jasm>  run under PT collection and print statistics
  analyze <subject|file.jasm>  run, decode, reconstruct; print accuracy
  report  <subject|file.jasm>  run, reconstruct, print client profiles
  collect <subject|file.jasm>  online phase only: run and archive traces+metadata
                               (-chunked streams the archive as the run progresses)
  decode  <dir>                offline phase only: analyze a collected archive
  stream  <dir>                incremental analysis of a chunked archive
                               (-follow tails an archive still being written,
                                -poll sets the follow-mode poll interval,
                                -pipeline uses the ring-connected stages)
  serve                        trace-ingest server: agents push archives over TCP
                               (-listen, -http metrics sidecar, -data, -queue,
                                -policy block|nack, -drain shutdown budget;
                                -coordinator/-node/-advertise join a fleet)
  push    <dir>                upload a chunked archive to a jportal serve
                               (-addr list rotated on failure, -id session,
                                -retry-budget, resumable; -live runs a subject
                                and streams its records as they appear;
                                -addr may name coordinators or any fleet node)
  scrub                        verify every session archive in a data dir and
                               repair what fails: truncate torn tails to the
                               acknowledged frontier, re-fetch from -peers,
                               quarantine the rest (-data, -repair, -rate
                               pacing, -compact, -retain-age/-retain-bytes)
  coordinate                   fleet control plane: nodes register under
                               heartbeat leases, sessions consistent-hash onto
                               them, clients are redirected to their owner
                               (-listen handshakes, -http control, -lease TTL;
                                -data makes state durable and lets replicas
                                sharing it elect a leader, -leader-lease TTL)
  fleet   nodes|metrics|report query a coordinator (-coordinator URL list) or
                               aggregate the shared data dir (-data, -top)
                               into a fleet-wide coverage/hot-method report
  disasm  <file.jasm>          assemble and pretty-print a program
  chaos                        fault-injection sweep: coverage vs fault rate
                               (-subjects, -seed, -rates, -scale, -cores;
                                deterministic for a fixed seed; -fleet pushes
                                archives through a network-faulted ingest
                                fleet instead, -disk through storage-faulted
                                ingest plus scrub-and-repair, -sessions per
                                rate)
  bench                        hot-path performance snapshot: steady-state
                               kernels, streaming throughput, per-subject
                               wall-clock (-out BENCH_n.json, -pr, -quick,
                                -base baseline.json -tol 0.2 guard band)
  exp     <experiment>         regenerate a paper table/figure
                               (table1 table2 table3 table4 table5 figure7 paths all)

common flags: -scale F (workload size), -buf MB (paper-label buffer),
              -top N (hot-method count), -out FILE (write traces),
              -workers N (offline-phase parallelism, 0 = GOMAXPROCS),
              -source S (trace backend: intel-pt, riscv-etrace)
`)
}

// sourceFlagHelp builds the -source usage string from the registry, so new
// backends show up without touching the CLI.
func sourceFlagHelp() string {
	return fmt.Sprintf("trace source backend (%s; default %s)",
		strings.Join(source.Registered(), ", "), source.DefaultID)
}

// loadTarget resolves a subject name or a .jasm file into a program plus
// thread specs.
func loadTarget(name string, scale float64) (*bytecode.Program, []vm.ThreadSpec, string, error) {
	if strings.HasSuffix(name, ".jasm") {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, "", err
		}
		p, err := bytecode.Assemble(string(src))
		if err != nil {
			return nil, nil, "", err
		}
		return p, []vm.ThreadSpec{{Method: p.Entry}}, filepath.Base(name), nil
	}
	s, err := workload.Load(name, workload.Scale(scale))
	if err != nil {
		return nil, nil, "", err
	}
	return s.Program, s.Threads, s.Name, nil
}

func cmdSubjects(args []string) error {
	fs := flag.NewFlagSet("subjects", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	fs.Parse(args)
	rows, err := experiments.Table1(experiments.Options{Scale: workload.Scale(*scale)})
	if err != nil {
		return err
	}
	experiments.PrintTable1(os.Stdout, rows)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	buf := fs.Int("buf", 128, "paper-label buffer size (MB)")
	out := fs.String("out", "", "write per-core traces to FILE.core<N>")
	src := fs.String("source", "", sourceFlagHelp())
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need a subject or .jasm file")
	}
	prog, threads, name, err := loadTarget(fs.Arg(0), *scale)
	if err != nil {
		return err
	}
	cfg := jportal.DefaultRunConfig()
	cfg.PT.BufBytes = uint64(*buf) << (20 - experiments.BufScaleShift)
	cfg.Source = *src
	run, err := jportal.Run(prog, threads, cfg)
	if err != nil {
		return err
	}
	st := run.Stats
	fmt.Printf("%s: %d threads, %d bytecodes (%.1f%% interpreted), %d cycles\n",
		name, len(threads), st.ExecutedBytecodes,
		100*float64(st.InterpBytecodes)/float64(st.ExecutedBytecodes), st.Cycles)
	fmt.Printf("compilations=%d evictions=%d uncaught=%d\n",
		st.Compilations, st.Evictions, st.UncaughtThrows)
	var exported, lost uint64
	for _, tr := range run.Traces {
		exported += tr.Bytes()
		lost += tr.LostBytes()
	}
	fmt.Printf("trace: generated=%dKB exported=%dKB lost=%dKB (%.1f%%)\n",
		run.GenBytes/1024, exported/1024, lost/1024,
		100*float64(lost)/float64(run.GenBytes))
	if *out != "" {
		for _, tr := range run.Traces {
			f, err := os.Create(fmt.Sprintf("%s.core%d", *out, tr.Core))
			if err != nil {
				return err
			}
			if err := source.WriteTrace(f, &tr); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		fmt.Printf("traces written to %s.core*\n", *out)
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	buf := fs.Int("buf", 128, "paper-label buffer size (MB)")
	workers := fs.Int("workers", 0, "offline-phase workers (0 = GOMAXPROCS)")
	src := fs.String("source", "", sourceFlagHelp())
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need a subject or .jasm file")
	}
	prog, threads, name, err := loadTarget(fs.Arg(0), *scale)
	if err != nil {
		return err
	}
	cfg := jportal.DefaultRunConfig()
	cfg.PT.BufBytes = uint64(*buf) << (20 - experiments.BufScaleShift)
	cfg.Source = *src
	run, err := jportal.Run(prog, threads, cfg)
	if err != nil {
		return err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers
	an, err := jportal.Analyze(prog, run, pcfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: offline analysis of %d thread(s)\n", name, len(an.Threads))
	for _, th := range an.Threads {
		truth := run.Oracle.Keys(th.Thread)
		var got []metrics.Key
		for _, s := range th.Steps {
			got = append(got, metrics.StepKey(int32(s.Method), s.PC))
		}
		sim := metrics.Similarity(got, truth, 4096)
		fmt.Printf("  thread %d: segments=%d tokens=%d steps=%d (recovered %d) "+
			"similarity=%.1f%% decode=%.0fms recover=%.0fms\n",
			th.Thread, th.Decode.Segments, th.Decode.Tokens, len(th.Steps),
			th.RecoveredSteps, sim*100,
			float64(th.DecodeTime.Milliseconds()), float64(th.RecoverTime.Milliseconds()))
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	top := fs.Int("top", 10, "hot methods to list")
	workers := fs.Int("workers", 0, "offline-phase workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need a subject or .jasm file")
	}
	prog, threads, name, err := loadTarget(fs.Arg(0), *scale)
	if err != nil {
		return err
	}
	run, err := jportal.Run(prog, threads, jportal.DefaultRunConfig())
	if err != nil {
		return err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers
	an, err := jportal.Analyze(prog, run, pcfg)
	if err != nil {
		return err
	}
	steps := an.Steps()
	fmt.Printf("=== %s: control-flow profile (%d steps) ===\n", name, len(steps))

	cov := profile.ComputeCoverage(prog, steps)
	fmt.Printf("statement coverage: %.1f%% (%d/%d instructions, %d/%d methods)\n",
		cov.Ratio()*100, cov.CoveredInstrs, cov.TotalInstrs,
		cov.CoveredMethods, len(prog.Methods))

	fmt.Printf("hot methods (top %d by executed instructions):\n", *top)
	for i, mid := range profile.HotMethods(prog, steps, *top) {
		fmt.Printf("  %2d. %s\n", i+1, prog.Methods[mid].FullName())
	}

	edges := profile.EdgeProfile(prog, steps)
	n := 5
	if len(edges) < n {
		n = len(edges)
	}
	fmt.Printf("hottest control-flow edges:\n")
	for _, e := range edges[:n] {
		fmt.Printf("  %s @%d -> @%d  x%d\n",
			prog.Methods[e.Method].FullName(), e.From, e.To, e.Count)
	}

	tree := profile.CallTree(prog, steps)
	fmt.Printf("call tree: %d total calls, max depth %d\n", tree.TotalCalls(), tree.Depth())

	pp := profile.ComputePathProfile(prog, steps)
	paths := 0
	for _, c := range pp.Counts {
		paths += len(c)
	}
	fmt.Printf("path profile: %d distinct Ball-Larus paths across %d methods\n",
		paths, len(pp.Counts))
	return nil
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	buf := fs.Int("buf", 128, "paper-label buffer size (MB)")
	out := fs.String("out", "jportal-run", "archive directory")
	chunked := fs.Bool("chunked", false, "write the streaming (chunked) archive layout as the run progresses")
	chunk := fs.Int("chunk", 0, "chunked export granularity in trace items (0 = default)")
	src := fs.String("source", "", sourceFlagHelp())
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need a subject or .jasm file")
	}
	prog, threads, name, err := loadTarget(fs.Arg(0), *scale)
	if err != nil {
		return err
	}
	cfg := jportal.DefaultRunConfig()
	cfg.CollectOracle = false // the offline phase has no oracle in production
	cfg.PT.BufBytes = uint64(*buf) << (20 - experiments.BufScaleShift)
	cfg.Source = *src
	if *chunked {
		cfg.SinkChunkItems = *chunk
		var w *jportal.StreamArchiveWriter
		run, err := jportal.RunWithSink(prog, threads, cfg,
			func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
				var err error
				w, err = jportal.CreateStreamArchiveSource(*out, p, snap, ncores, cfg.Source)
				return w, err
			})
		if err != nil {
			return err
		}
		if err := w.Seal(); err != nil {
			return err
		}
		fmt.Printf("%s: chunked archive sealed (%dKB generated) at %s\n",
			name, run.GenBytes/1024, *out)
		return nil
	}
	run, err := jportal.Run(prog, threads, cfg)
	if err != nil {
		return err
	}
	if err := jportal.SaveRun(*out, prog, run); err != nil {
		return err
	}
	var exported, lost uint64
	for _, tr := range run.Traces {
		exported += tr.Bytes()
		lost += tr.LostBytes()
	}
	fmt.Printf("%s: archived %d cores (%dKB exported, %dKB lost) to %s\n",
		name, len(run.Traces), exported/1024, lost/1024, *out)
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	workers := fs.Int("workers", 0, "offline-phase workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need an archive directory")
	}
	prog, run, err := jportal.LoadRun(fs.Arg(0))
	if err != nil {
		return err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers
	an, err := jportal.Analyze(prog, run, pcfg)
	if err != nil {
		return err
	}
	for _, th := range an.Threads {
		fmt.Printf("thread %d: segments=%d tokens=%d steps=%d (recovered %d) "+
			"decode=%.0fms recover=%.0fms\n",
			th.Thread, th.Decode.Segments, th.Decode.Tokens, len(th.Steps),
			th.RecoveredSteps,
			float64(th.DecodeTime.Milliseconds()), float64(th.RecoverTime.Milliseconds()))
	}
	steps := an.Steps()
	cov := profile.ComputeCoverage(prog, steps)
	fmt.Printf("statement coverage: %.1f%%; hot methods:", cov.Ratio()*100)
	for _, mid := range profile.HotMethods(prog, steps, 5) {
		fmt.Printf(" %s", prog.Methods[mid].FullName())
	}
	fmt.Println()
	return nil
}

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	workers := fs.Int("workers", 0, "offline-phase workers (0 = GOMAXPROCS)")
	follow := fs.Bool("follow", false, "tail an archive a collector is still writing")
	poll := fs.Duration("poll", 50*time.Millisecond, "poll interval in follow mode")
	ckptEvery := fs.Int("ckpt-every", 0, "write a session checkpoint every N chunk records (0 = off unless -resume)")
	ckptPath := fs.String("ckpt", "", "checkpoint file path (default <dir>/session.ckpt when checkpointing)")
	resume := fs.Bool("resume", false, "resume from the checkpoint if one exists (implies checkpointing)")
	stall := fs.Duration("stall", 0, "watchdog stall window (0 = no watchdog)")
	pipeline := fs.Bool("pipeline", false, "ring-connected stage pipeline (DESIGN.md §12); output is identical")
	ringSize := fs.Int("ring", 0, "pipeline ring capacity (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need a chunked archive directory")
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Workers = *workers
	pcfg.Pipelined = *pipeline
	pcfg.RingSize = *ringSize
	opts := jportal.StreamOptions{
		Follow:          *follow,
		Poll:            *poll,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		StallAfter:      *stall,
		// Notices go to stderr so stdout (the analysis summary, diffed by
		// the CI golden smoke) is identical with and without a resume.
		Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, "stream: "+format+"\n", a...) },
	}
	if *ckptPath != "" {
		opts.CheckpointPath = *ckptPath
	} else if *resume || *ckptEvery > 0 {
		opts.CheckpointPath = filepath.Join(fs.Arg(0), jportal.CheckpointFileName)
	}
	// In follow mode a SIGINT stops the tail cleanly: the analysis of
	// everything read so far is flushed below instead of being discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	prog, an, err := jportal.AnalyzeStreamArchiveOpts(ctx, fs.Arg(0), pcfg, opts)
	interrupted := err != nil && errors.Is(err, context.Canceled) && an != nil
	if err != nil && !interrupted {
		return err
	}
	if interrupted {
		fmt.Println("stream: interrupted; partial analysis of the records read so far:")
	}
	for _, th := range an.Threads {
		fmt.Printf("thread %d: segments=%d tokens=%d steps=%d (recovered %d)\n",
			th.Thread, th.Decode.Segments, th.Decode.Tokens, len(th.Steps), th.RecoveredSteps)
	}
	steps := an.Steps()
	cov := profile.ComputeCoverage(prog, steps)
	fmt.Printf("statement coverage: %.1f%%; hot methods:", cov.Ratio()*100)
	for _, mid := range profile.HotMethods(prog, steps, 5) {
		fmt.Printf(" %s", prog.Methods[mid].FullName())
	}
	fmt.Println()
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("need a .jasm file")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	p, err := bytecode.Assemble(string(src))
	if err != nil {
		return err
	}
	fmt.Print(bytecode.Disassemble(p))
	return nil
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "workload scale")
	workers := fs.Int("workers", 0, "per-subject/offline-phase workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need an experiment name")
	}
	o := experiments.Options{Scale: workload.Scale(*scale), Workers: *workers}
	which := fs.Arg(0)
	runOne := func(name string) error {
		switch name {
		case "table1":
			rows, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			experiments.PrintTable1(os.Stdout, rows)
		case "table2":
			rows, err := experiments.Table2(o)
			if err != nil {
				return err
			}
			experiments.PrintTable2(os.Stdout, rows)
		case "table3":
			rows, err := experiments.Table3(o)
			if err != nil {
				return err
			}
			experiments.PrintTable3(os.Stdout, rows)
		case "table4":
			rows, err := experiments.Table4(o)
			if err != nil {
				return err
			}
			experiments.PrintTable4(os.Stdout, rows)
		case "table5":
			rows, err := experiments.Table5(o)
			if err != nil {
				return err
			}
			experiments.PrintTable5(os.Stdout, rows)
		case "figure7":
			rows, err := experiments.Figure7(o)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(os.Stdout, rows)
		case "paths":
			rows, err := experiments.PathAccuracy(o)
			if err != nil {
				return err
			}
			experiments.PrintPathAccuracy(os.Stdout, rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if which == "all" {
		for _, name := range []string{"table1", "table2", "figure7", "table3", "table4", "table5", "paths"} {
			if err := runOne(name); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return runOne(which)
}

// cmdBench measures the hot-path kernels and (full mode) the end-to-end
// streaming throughput, writing a BENCH_<n>.json snapshot (DESIGN.md §12).
// With -base it also enforces the allocation guard band against a
// committed snapshot, so CI catches steady-state allocation regressions.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	pr := fs.Int("pr", 0, "PR number stamped into the snapshot")
	out := fs.String("out", "", "write the snapshot JSON to FILE")
	quick := fs.Bool("quick", false, "kernels only (same inputs, comparable allocs/op)")
	scale := fs.Float64("scale", 1.0, "streaming subject scale")
	workers := fs.Int("workers", 8, "streaming replay worker count")
	reps := fs.Int("reps", 3, "wall-clock repetitions (minimum is recorded)")
	base := fs.String("base", "", "baseline snapshot to guard against")
	tol := fs.Float64("tol", 0.2, "guard-band tolerance on allocs/op")
	fs.Parse(args)

	rep, err := jportal.RunBenchSuite(jportal.BenchOptions{
		PR: *pr, Quick: *quick, Scale: *scale, Workers: *workers, Reps: *reps,
	})
	if err != nil {
		return err
	}
	if !*quick {
		// Sharded-ingest throughput: the same sessions through a
		// coordinator onto 1 node (baseline) and onto 2. Full mode only, so
		// `bench -quick` guard runs stay comparable with old snapshots.
		rep.Fleet, err = fleet.BenchIngest("h2", *scale, []int{1, 2}, 4, *reps)
		if err != nil {
			return err
		}
	}
	for _, k := range rep.Kernels {
		fmt.Printf("kernel %-18s %12.0f ns/op %8.0f B/op %6.0f allocs/op",
			k.Name, k.NsPerOp, k.BytesPerOp, k.AllocsPerOp)
		if k.UnitsPerSec > 0 {
			fmt.Printf("  %10.2fM units/s", k.UnitsPerSec/1e6)
		}
		fmt.Println()
	}
	for _, s := range rep.Streaming {
		fmt.Printf("stream  %s x%.2g workers=%d pipelined=%-5v %8.1f ms  %6.2f MB/s  %8.2fM bytecodes/s\n",
			s.Subject, s.Scale, s.Workers, s.Pipelined, s.WallMs, s.TraceMBPerSec, s.BytecodesPerSec/1e6)
	}
	for _, s := range rep.Subjects {
		fmt.Printf("subject %-12s x%.2g %10.1f ms\n", s.Name, s.Scale, s.WallMs)
	}
	for _, f := range rep.Fleet {
		fmt.Printf("fleet   %d node(s) %d sessions %10.1f ms  %6.2f MB/s\n",
			f.Nodes, f.Sessions, f.WallMs, f.TraceMBPerSec)
	}
	if *out != "" {
		if err := bench.Write(*out, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *base != "" {
		baseRep, err := bench.Load(*base)
		if err != nil {
			return err
		}
		if bad := bench.Guard(baseRep, rep, *tol); len(bad) > 0 {
			for _, v := range bad {
				fmt.Fprintln(os.Stderr, v)
			}
			return fmt.Errorf("%d guard-band violation(s) vs %s", len(bad), *base)
		}
		fmt.Printf("guard band ok vs %s (tol %.0f%%)\n", *base, *tol*100)
	}
	return nil
}
