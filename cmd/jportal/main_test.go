package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadTargetSubjectAndFile(t *testing.T) {
	prog, threads, name, err := loadTarget("fop", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fop" || len(threads) == 0 || len(prog.Methods) == 0 {
		t.Fatalf("subject load: %s %d %d", name, len(threads), len(prog.Methods))
	}
	prog, threads, name, err = loadTarget("testdata/fib.jasm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fib.jasm" || len(threads) != 1 || prog.MethodByName("Fib.fib") == nil {
		t.Fatalf("jasm load: %s", name)
	}
	if _, _, _, err := loadTarget("not-a-subject", 1); err == nil {
		t.Fatal("unknown subject accepted")
	}
	if _, _, _, err := loadTarget("missing.jasm", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCommandsSmoke(t *testing.T) {
	// The commands print to stdout; we only assert they succeed.
	if err := cmdSubjects([]string{"-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-scale", "0.2", "testdata/fib.jasm"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze([]string{"-scale", "0.2", "testdata/fib.jasm"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReport([]string{"-scale", "0.2", "-top", "3", "testdata/fib.jasm"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDisasm([]string{"testdata/fib.jasm"}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectDecodeRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "arch")
	if err := cmdCollect([]string{"-scale", "0.2", "-out", dir, "luindex"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecode([]string{dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestExpErrors(t *testing.T) {
	if err := cmdExp([]string{"not-an-experiment"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := cmdRun([]string{}); err == nil {
		t.Fatal("missing target accepted")
	}
}
