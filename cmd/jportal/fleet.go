// The fleet commands: `jportal coordinate` runs the control plane a
// multi-node ingest fleet registers with, and `jportal fleet` queries a
// running coordinator (nodes, merged metrics) or aggregates the shared
// data directory into one fleet-level report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"jportal/internal/fleet"
)

func cmdCoordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "ingest handshake address (clients HELLO here and get redirected)")
	httpAddr := fs.String("http", "127.0.0.1:7072", "control-plane address (/register, /heartbeat, /nodes, /metrics)")
	lease := fs.Duration("lease", 10*time.Second, "membership lease TTL; nodes heartbeat at a third of this")
	data := fs.String("data", "", "durable state directory: membership survives restarts, and replicas sharing it elect a leader (standby failover)")
	name := fs.String("name", "", "coordinator instance name in the leadership lease (default: host-pid)")
	leaderLease := fs.Duration("leader-lease", 2*time.Second, "leadership lease TTL for replicas sharing -data")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("coordinate takes no positional arguments")
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "coordinate: "+format+"\n", a...)
	}
	var election *fleet.Election
	if *data != "" {
		id := *name
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "coordinator"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		var err error
		election, err = fleet.StartElection(fleet.ElectionConfig{
			Dir:  *data,
			ID:   id,
			TTL:  *leaderLease,
			Logf: logf,
		})
		if err != nil {
			return err
		}
		defer election.Close()
	}
	c := fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL: *lease,
		StateDir: *data,
		Election: election,
		Logf:     logf,
	})
	defer c.Close()

	hln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: c.Handler()}
	go httpSrv.Serve(hln)
	defer httpSrv.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("jportal coordinate: ingest handshakes on %s, control plane on http://%s (lease %s)\n",
		ln.Addr(), hln.Addr(), *lease)

	serveErr := make(chan error, 1)
	go func() { serveErr <- c.ServeIngest(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("jportal coordinate: %v, shutting down\n", s)
		// Hand leadership off before dying so a standby takes over within
		// one campaign tick instead of waiting out the lease.
		if election != nil {
			election.Resign()
		}
		ln.Close()
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}

func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:7072", "coordinator control-plane URL(s), comma-separated; tried in order (nodes, metrics)")
	data := fs.String("data", "ingest-data", "shared fleet data directory (report)")
	top := fs.Int("top", 10, "hot methods to rank (report)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: jportal fleet [flags] nodes|metrics|report")
	}
	switch sub := fs.Arg(0); sub {
	case "nodes":
		return anyCoordinator(splitList(*coordinator), fleetNodes)
	case "metrics":
		return anyCoordinator(splitList(*coordinator), fleetMetrics)
	case "report":
		agg, err := fleet.Aggregate(*data, *top)
		if err != nil {
			return err
		}
		fmt.Print(agg.Format())
		return nil
	default:
		return fmt.Errorf("unknown fleet subcommand %q (want nodes, metrics or report)", sub)
	}
}

// anyCoordinator runs fn against each coordinator URL until one answers —
// querying a fleet with standby coordinators should not require knowing
// which replica currently leads.
func anyCoordinator(urls []string, fn func(string) error) error {
	if len(urls) == 0 {
		return fmt.Errorf("no coordinator URL given")
	}
	var lastErr error
	for _, u := range urls {
		if lastErr = fn(u); lastErr == nil {
			return nil
		}
	}
	return lastErr
}

func fleetNodes(coordinator string) error {
	var ms fleet.Membership
	if err := getJSON(coordinator+"/nodes", &ms); err != nil {
		return err
	}
	fmt.Printf("fleet: %d node(s), lease %s\n", len(ms.Nodes), time.Duration(ms.LeaseTTLMillis)*time.Millisecond)
	names := make([]string, 0, len(ms.Nodes))
	for name := range ms.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-20s %s\n", name, ms.Nodes[name])
	}
	return nil
}

func fleetMetrics(coordinator string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordinator+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/metrics: status %s", coordinator, resp.Status)
	}
	// The coordinator already emits the stable key-sorted JSON form;
	// print it verbatim so scripts can consume the output directly.
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func getJSON(url string, v any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
