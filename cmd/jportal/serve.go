// The networked trace-ingest commands: `jportal serve` runs the ingest
// server that many collection agents push archives to, and `jportal push`
// is such an agent — it replays a local chunked archive (or streams a
// live run with -live) to a server over the frame protocol with
// retry/backoff and resume-from-last-ACK.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"jportal"
	"jportal/internal/bytecode"
	"jportal/internal/experiments"
	"jportal/internal/fleet"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/meta"
	"jportal/internal/scrub"
)

// splitList splits a comma-separated flag value into its non-empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7071", "ingest listen address")
	httpAddr := fs.String("http", "", "observability sidecar address (/healthz, /metrics); empty = disabled")
	data := fs.String("data", "ingest-data", "directory holding one chunked archive per session")
	queue := fs.Int("queue", 64, "per-session inbound queue depth (frames)")
	policy := fs.String("policy", "block", "backpressure policy when a session queue is full: block | nack")
	drain := fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	maxSessions := fs.Int("max-sessions", 0, "concurrent attached sessions before HELLOs get BUSY (0 = unlimited)")
	budget := fs.Int64("budget", 0, "global queued-payload memory budget in bytes (0 = unlimited)")
	breaker := fs.Int("breaker", 0, "NACKs before a session's circuit breaker poisons it (0 = disabled)")
	stall := fs.Duration("stall", 0, "poison a session whose writer makes no progress for this long (0 = disabled)")
	coordinator := fs.String("coordinator", "", "fleet coordinator control-plane URL(s), comma-separated (leader + standbys); empty = standalone")
	node := fs.String("node", "", "fleet node name (default: hostname)")
	advertise := fs.String("advertise", "", "ingest address advertised to the fleet (default: the -listen address)")
	scrubEvery := fs.Duration("scrub-every", 0, "background archive scrub-and-repair interval (0 = disabled)")
	scrubRate := fs.Int64("scrub-rate", 8<<20, "scrub verification I/O budget in bytes/sec (0 = unpaced)")
	retainAge := fs.Duration("retain-age", 0, "delete finished sessions older than this on each sweep (0 = keep forever)")
	retainBytes := fs.Int64("retain-bytes", 0, "cap the data dir's total bytes, deleting oldest finished sessions first (0 = unlimited)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}

	srv, err := ingest.NewServer(ingest.Config{
		DataDir:           *data,
		QueueDepth:        *queue,
		Policy:            ingest.Policy(*policy),
		MaxSessions:       *maxSessions,
		MemoryBudgetBytes: *budget,
		BreakerNacks:      *breaker,
		StallAfter:        *stall,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("jportal serve: listening on %s (data %s, queue %d, policy %s)\n",
		ln.Addr(), *data, *queue, *policy)

	// Background storage durability: scrub-and-repair each interval, then
	// retention. Busy sessions (attached writers) are always skipped.
	var sweeper *scrub.Sweeper
	if *scrubEvery > 0 || *retainAge > 0 || *retainBytes > 0 {
		interval := *scrubEvery
		if interval <= 0 {
			interval = 5 * time.Minute
		}
		sweeper = scrub.StartSweeper(scrub.SweeperConfig{
			Interval: interval,
			Scrub: scrub.Config{
				DataDir:         *data,
				RateBytesPerSec: *scrubRate,
				Busy:            srv.SessionBusy,
			},
			Retention: scrub.RetentionPolicy{
				MaxAge:   *retainAge,
				MaxBytes: *retainBytes,
			},
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
			},
		})
		fmt.Printf("jportal serve: sweeping %s every %s (retain-age %s, retain-bytes %d)\n",
			*data, interval, *retainAge, *retainBytes)
	}

	var httpSrv *http.Server
	var metricsURL string
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		httpSrv = &http.Server{Handler: srv.Observability()}
		go httpSrv.Serve(hln)
		metricsURL = fmt.Sprintf("http://%s/metrics", hln.Addr())
		fmt.Printf("jportal serve: metrics on %s\n", metricsURL)
	}

	// Fleet membership: register with the coordinator and install the
	// shared hash ring as the router, so HELLOs for sessions owned by a
	// sibling node answer with a REDIRECT instead of ingesting here.
	var member *fleet.Member
	if *coordinator != "" {
		name := *node
		if name == "" {
			if name, err = os.Hostname(); err != nil || name == "" {
				name = fmt.Sprintf("node-%d", os.Getpid())
			}
		}
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		joinCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		member, err = fleet.Join(joinCtx, fleet.MemberConfig{
			Name:            name,
			CoordinatorURLs: splitList(*coordinator),
			IngestAddr:      adv,
			MetricsURL:      metricsURL,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
			},
		})
		cancel()
		if err != nil {
			ln.Close()
			return err
		}
		srv.SetRouter(member)
		fmt.Printf("jportal serve: joined fleet at %s as %q (advertising %s)\n", *coordinator, name, adv)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("jportal serve: %v, draining (budget %s)\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		// Leave the fleet before draining: the coordinator immediately
		// routes new sessions elsewhere while attached clients finish
		// inside the drain budget.
		if member != nil {
			if derr := member.Drain(ctx); derr != nil {
				fmt.Fprintf(os.Stderr, "serve: fleet deregister failed: %v\n", derr)
			}
		}
		err = srv.Shutdown(ctx)
		cancel()
		<-serveErr
	case err = <-serveErr:
		if member != nil {
			member.Stop()
		}
	}
	if sweeper != nil {
		sweeper.Stop()
	}
	if httpSrv != nil {
		httpSrv.Close()
	}
	if err != nil {
		return err
	}
	m := srv.Metrics()
	fmt.Printf("jportal serve: drained (%d sessions, %d chunks, %dKB ingested)\n",
		m.SessionsTotal.Load(), m.ChunksIngested.Load(), m.BytesIngested.Load()/1024)
	return nil
}

func cmdPush(args []string) error {
	fs := flag.NewFlagSet("push", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "ingest server or coordinator address(es), comma-separated (rotated on connect failure)")
	id := fs.String("id", "", "session id (default: archive directory base name / subject name)")
	chunk := fs.Int("chunk", 0, "max CHUNK frame payload bytes (0 = default)")
	attempts := fs.Int("attempts", 0, "connect attempts before giving up (0 = default)")
	retryBudget := fs.Int("retry-budget", 0, "connect-level retries across the whole upload (0 = default, negative = unlimited)")
	live := fs.Bool("live", false, "argument is a subject/.jasm: run it and stream records live")
	scale := fs.Float64("scale", 1.0, "workload scale (-live)")
	buf := fs.Int("buf", 128, "paper-label buffer size in MB (-live)")
	items := fs.Int("items", 0, "export granularity in trace items, as collect -chunk (0 = default, -live)")
	src := fs.String("source", "", sourceFlagHelp()+" (-live; archive pushes announce their recorded source)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		if *live {
			return fmt.Errorf("need a subject or .jasm file")
		}
		return fmt.Errorf("need a chunked archive directory")
	}
	arg := fs.Arg(0)
	opts := client.Options{
		Addrs:         splitList(*addr),
		SessionID:     *id,
		MaxChunkBytes: *chunk,
		MaxAttempts:   *attempts,
		RetryBudget:   *retryBudget,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "push: "+format+"\n", a...)
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *live {
		prog, threads, name, err := loadTarget(arg, *scale)
		if err != nil {
			return err
		}
		if opts.SessionID == "" {
			opts.SessionID = name
		}
		cfg := jportal.DefaultRunConfig()
		cfg.CollectOracle = false
		cfg.PT.BufBytes = uint64(*buf) << (20 - experiments.BufScaleShift)
		cfg.SinkChunkItems = *items
		cfg.Source = *src
		opts.SourceID = *src
		var sink *client.LiveSink
		run, err := jportal.RunWithSink(prog, threads, cfg,
			func(p *bytecode.Program, snap *meta.Snapshot, ncores int) (jportal.TraceSink, error) {
				var err error
				sink, err = client.NewLiveSink(ctx, opts, p, snap, ncores)
				return sink, err
			})
		if err != nil {
			return err
		}
		if err := sink.Seal(); err != nil {
			return err
		}
		p := sink.Pusher()
		fmt.Printf("%s: live run streamed to %s as session %q (%dKB generated, %d reconnects, %d nacks)\n",
			name, *addr, opts.SessionID, run.GenBytes/1024, p.Reconnects(), p.Nacks())
		return nil
	}

	dir := filepath.Clean(arg)
	if opts.SessionID == "" {
		opts.SessionID = filepath.Base(dir)
	}
	st, err := client.PushArchive(ctx, opts, dir)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted; re-run the same push to resume from the server's last ACK")
		}
		return err
	}
	resumed := ""
	if st.ResumeSeq > 0 {
		resumed = fmt.Sprintf(", resumed past seq %d", st.ResumeSeq)
	}
	fmt.Printf("%s: pushed to %s as session %q (%d frames, %dKB%s, %d reconnects, %d nacks)\n",
		dir, *addr, opts.SessionID, st.Frames, st.Bytes/1024, resumed, st.Reconnects, st.Nacks)
	return nil
}
