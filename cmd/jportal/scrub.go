// `jportal scrub` is the storage-durability command: verify every session
// archive under a data directory (record framing, seal CRCs, durable
// frontiers), and in -repair mode fix what verification finds — truncate
// torn tails back to the acknowledged frontier, re-fetch corrupt sealed
// archives from fleet peers, reset corrupt in-flight uploads, and
// quarantine what cannot be repaired. -compact additionally rewrites
// sealed archives dropping redundant records (a clean archive is left
// byte-identical, untouched).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jportal/internal/metrics"
	"jportal/internal/scrub"
)

func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	data := fs.String("data", "ingest-data", "data directory holding one chunked archive per session")
	repair := fs.Bool("repair", false, "fix what verification finds (default: report only)")
	rate := fs.Int64("rate", 0, "verification I/O budget in bytes/sec (0 = unpaced)")
	minIdle := fs.Duration("min-idle", 0, "skip sessions modified more recently than this (0 = scrub everything)")
	peers := fs.String("peers", "", "comma-separated peer data directories to re-fetch corrupt sealed archives from")
	compact := fs.Bool("compact", false, "also compact clean sealed archives (drop duplicate blobs, stale watermarks)")
	retainAge := fs.Duration("retain-age", 0, "after scrubbing, delete finished sessions older than this (0 = keep)")
	retainBytes := fs.Int64("retain-bytes", 0, "after scrubbing, cap the data dir's bytes (0 = unlimited)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("scrub takes no positional arguments (use -data)")
	}

	rep, err := scrub.Run(scrub.Config{
		DataDir:         *data,
		Repair:          *repair,
		RateBytesPerSec: *rate,
		MinIdle:         *minIdle,
		PeerDirs:        splitList(*peers),
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "scrub: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stdout, scrub.FormatReport(rep))

	if *compact {
		var rewritten, dropped int
		var reclaimed int64
		for _, sr := range rep.Sessions {
			if sr.Outcome != scrub.OutcomeClean {
				continue
			}
			cs, err := scrub.CompactArchive(filepath.Join(*data, sr.ID), metrics.Default)
			if err != nil {
				// Unsealed and non-chunked archives are simply not
				// compactable; anything else deserves a line.
				if !errors.Is(err, scrub.ErrNotSealed) && !strings.Contains(err.Error(), "compaction applies") {
					fmt.Fprintf(os.Stderr, "scrub: compact %s: %v\n", sr.ID, err)
				}
				continue
			}
			if cs.Rewritten {
				rewritten++
				dropped += cs.DroppedRecords
				reclaimed += cs.BytesBefore - cs.BytesAfter
			}
		}
		fmt.Printf("compaction: %d archive(s) rewritten, %d record(s) dropped, %d bytes reclaimed\n",
			rewritten, dropped, reclaimed)
	}

	if *retainAge > 0 || *retainBytes > 0 {
		if !*repair {
			return fmt.Errorf("scrub: -retain-age/-retain-bytes delete data; they require -repair")
		}
		st, err := scrub.ApplyRetention(*data, scrub.RetentionPolicy{
			MaxAge:   *retainAge,
			MaxBytes: *retainBytes,
			Now:      time.Now(),
		}, nil, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "scrub: "+format+"\n", a...)
		})
		if err != nil {
			return err
		}
		fmt.Printf("retention: %d session(s) deleted, %d bytes reclaimed, %d bytes kept\n",
			st.Deleted, st.BytesReclaimed, st.Kept)
	}

	if rep.Damaged > 0 && !*repair {
		return fmt.Errorf("scrub: %d damaged session(s); re-run with -repair", rep.Damaged)
	}
	return nil
}
