package ptdecode

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/meta"
)

// DecoderState is the decoder's checkpointable walking state (DESIGN.md
// §11). It is only valid at a chunk boundary where every emitted event
// has been returned to the caller — DecodeChunk always delivers its
// output, so any point between chunks qualifies. The current blob is identified by its index in the snapshot's
// append-only export log (replayed identically on resume) with the entry
// address as a cross-check, never by pointer.
type DecoderState struct {
	Mode       uint8
	CurOp      uint8
	BlobExport int // index into snap.ExportedBlobs(), -1 = no blob
	BlobEntry  uint64
	Idx        int
	RangeStart int
	Bits       uint64
	NBits      int
	TSC        uint64
	FUPArmed   bool
	SkipPSB    bool

	Desyncs        int
	DroppedBits    int
	FaultCount     int
	Faults         []DecodeFault
	SkippedPackets int
	SkippedBytes   uint64
}

// ExportState snapshots the decoder between chunks. It panics if called
// with undelivered output events: that is a checkpoint at a non-quiescent
// point, which the Session never does.
func (d *Decoder) ExportState() DecoderState {
	if d.undelivered {
		panic("ptdecode: ExportState with pending output events")
	}
	st := DecoderState{
		Mode:       uint8(d.mode),
		CurOp:      uint8(d.curOp),
		BlobExport: -1,
		Idx:        d.idx,
		RangeStart: d.rangeStart,
		Bits:       d.bits,
		NBits:      d.nbits,
		TSC:        d.tsc,
		FUPArmed:   d.fupArmed,
		SkipPSB:    d.skipPSB,

		Desyncs:        d.Desyncs,
		DroppedBits:    d.DroppedBits,
		FaultCount:     d.FaultCount,
		Faults:         append([]DecodeFault(nil), d.Faults...),
		SkippedPackets: d.SkippedPackets,
		SkippedBytes:   d.SkippedBytes,
	}
	if d.blob != nil {
		st.BlobEntry = d.blob.EntryAddr()
		for i, b := range d.snap.ExportedBlobs() {
			if b == d.blob {
				st.BlobExport = i
				break
			}
		}
	}
	return st
}

// RestoreState rebuilds the decoder from a checkpointed state against the
// restoring process's snapshot (whose export log must be a replay of the
// checkpointing process's — the archive resume path guarantees it).
func (d *Decoder) RestoreState(st DecoderState) error {
	d.out = nil
	d.mode = mode(st.Mode)
	d.curOp = bytecode.Opcode(st.CurOp)
	d.idx = st.Idx
	d.rangeStart = st.RangeStart
	d.bits = st.Bits
	d.nbits = st.NBits
	d.tsc = st.TSC
	d.fupArmed = st.FUPArmed
	d.skipPSB = st.SkipPSB

	d.Desyncs = st.Desyncs
	d.DroppedBits = st.DroppedBits
	d.FaultCount = st.FaultCount
	d.Faults = append([]DecodeFault(nil), st.Faults...)
	d.SkippedPackets = st.SkippedPackets
	d.SkippedBytes = st.SkippedBytes

	d.blob = nil
	if st.BlobEntry != 0 || st.BlobExport >= 0 {
		d.blob = d.resolveBlob(st)
		if d.blob == nil {
			return fmt.Errorf("ptdecode: checkpoint references unknown blob (export %d, entry %#x)",
				st.BlobExport, st.BlobEntry)
		}
	}
	return nil
}

// resolveBlob maps a checkpointed blob identity back to a live pointer:
// export-log index first (exact, survives re-exports that shadow an entry
// address), entry-address lookup as the fallback.
func (d *Decoder) resolveBlob(st DecoderState) *meta.CompiledMethod {
	if log := d.snap.ExportedBlobs(); st.BlobExport >= 0 && st.BlobExport < len(log) {
		if b := log[st.BlobExport]; b != nil && b.EntryAddr() == st.BlobEntry {
			return b
		}
	}
	return d.snap.BlobFor(st.BlobEntry)
}
