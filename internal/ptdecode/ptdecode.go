// Package ptdecode is the native-level PT decoder (the role libipt plays in
// the paper, §2/§3.2): it consumes a packet stream plus the machine-code
// metadata snapshot and reconstructs the native-level control flow. For
// addresses in the code cache it walks the compiled blobs — following
// linear code, direct jumps and calls, consuming one TNT bit per
// conditional branch and one TIP per indirect transfer — and yields the
// executed instruction ranges (paper Fig 3d). For addresses in the
// interpreter's template area it yields dispatch events identifying the
// interpreted opcode (paper Fig 2e). Data-loss gaps and desynchronisation
// are surfaced as events so the bytecode-level layers (package core) can
// segment the trace.
//
// Since the TraceSource refactor the walking machinery itself lives in
// internal/source (the Walker: blob walking, template classification,
// fault/desync bookkeeping, checkpointing); this package is the PT half of
// the "intel-pt" Source — a packet dispatcher reducing the PT vocabulary
// (PGE, PGD, TNT, TIP, FUP, TSC, PSB) to the Walker's driver methods — and
// the place the Source registers itself.
package ptdecode

import (
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/source"
)

// The event and fault vocabulary is the neutral one in internal/source;
// the aliases keep this package's decode-side names working.
type (
	// EventKind classifies decoder output events.
	EventKind = source.EventKind
	// Event is one decoded native-level event.
	Event = source.Event
	// FaultKind classifies malformed-packet faults.
	FaultKind = source.FaultKind
	// DecodeFault is the typed record of one malformed packet.
	DecodeFault = source.DecodeFault
	// DecoderState is the decoder's checkpointable walking state
	// (DESIGN.md §11); see source.WalkerState.
	DecoderState = source.WalkerState
)

const (
	EvTemplate    = source.EvTemplate
	EvTemplateTNT = source.EvTemplateTNT
	EvJITRange    = source.EvJITRange
	EvStub        = source.EvStub
	EvGap         = source.EvGap
	EvTime        = source.EvTime
	EvEnable      = source.EvEnable
	EvDisable     = source.EvDisable
	EvDesync      = source.EvDesync
	EvFault       = source.EvFault
)

const (
	FaultUnknownPacket = source.FaultUnknownPacket
	FaultBadTNTLen     = source.FaultBadTNTLen
	FaultBadGap        = source.FaultBadGap
)

// Decoder decodes one PT packet stream (typically one thread's stitched
// stream). The embedded Walker carries the walking state and the exported
// degradation counters (Desyncs, DroppedBits, FaultCount, Faults,
// SkippedPackets, SkippedBytes).
type Decoder struct {
	source.Walker
}

// New creates a decoder over the given metadata snapshot.
func New(snap *meta.Snapshot) *Decoder {
	d := &Decoder{}
	d.Init(snap)
	return d
}

// Decode processes a whole item stream and returns the events. The
// returned slice aliases the decoder's reused output buffer: it is valid
// until the next Decode/DecodeChunk/Flush call on this decoder.
func (d *Decoder) Decode(items []pt.Item) []Event {
	d.Begin()
	for i := range items {
		d.Feed(&items[i])
	}
	d.FlushEnd()
	return d.Deliver()
}

// DecodeChunk processes one chunk of an item stream and returns the events
// decoded so far. The decoder keeps its walking state (mode, pending TNT
// bits, pending JIT range) across calls, so feeding a stream in chunks of
// any size yields, concatenated with the final Flush, exactly the events
// Decode yields for the whole stream at once: already-emitted events are
// final and never revised. The returned slice aliases the decoder's
// reused output buffer (zero-alloc steady state, DESIGN.md §12): consume
// it before the next Decode/DecodeChunk/Flush call.
func (d *Decoder) DecodeChunk(items []pt.Item) []Event {
	d.Begin()
	for i := range items {
		d.Feed(&items[i])
	}
	return d.Deliver()
}

// Flush terminates the stream: the pending JIT instruction range (if any)
// is emitted. Call once after the last DecodeChunk. The returned slice
// aliases the reused output buffer, like DecodeChunk's.
func (d *Decoder) Flush() []Event {
	d.Begin()
	d.FlushEnd()
	return d.Deliver()
}

// Feed processes one trace item: the PT packet vocabulary reduced to the
// Walker's driver methods. The TNT length check happens before any bit
// consumption, so a hostile length field never drives the bit loop.
func (d *Decoder) Feed(it *pt.Item) {
	if it.Gap {
		d.Gap(it)
		return
	}
	p := &it.Packet
	if k, bad := pt.Traits().ClassifyPacket(p); bad {
		d.Fault(k, p)
		return
	}
	if d.Skipping() && p.Kind != pt.KPSB {
		d.SkipPacket(p.WireLen)
		return
	}
	switch p.Kind {
	case pt.KPSB:
		// Synchronisation point: safe to resume after a malformed packet.
		d.Sync()
	case pt.KTSC:
		d.Time(p.TSC)
	case pt.KPGE:
		// TIP.PGE carries the resume IP: re-anchor there (tracing often
		// resumes mid-compiled-loop where no TIP would otherwise occur).
		d.Enable(p.IP)
	case pt.KPGD:
		d.Disable()
	case pt.KTNT:
		d.TNTBits(p.Bits, int(p.NBits))
	case pt.KFUP:
		// A FUP arms the async-transfer pairing: the next TIP is the
		// target of an exception or OSR transfer.
		d.ArmAnchor(p.IP)
	case pt.KTIP:
		d.Tip(p.IP)
	}
	if p.Kind != pt.KFUP && p.Kind != pt.KTSC && p.Kind != pt.KPSB {
		d.Unarm()
	}
}

// ptSource is the reference TraceSource: Intel PT collection
// (internal/pt) plus this package's decoder.
type ptSource struct{}

func (ptSource) ID() string             { return source.DefaultID }
func (ptSource) Traits() *source.Traits { return pt.Traits() }
func (ptSource) NewCollector(cfg source.CollectorConfig, ncores int) source.Collector {
	return pt.NewCollector(cfg, ncores)
}
func (ptSource) NewDecoder(snap *meta.Snapshot) source.Decoder { return New(snap) }

func init() { source.Register(ptSource{}) }
