// Package ptdecode is the native-level PT decoder (the role libipt plays in
// the paper, §2/§3.2): it consumes a packet stream plus the machine-code
// metadata snapshot and reconstructs the native-level control flow. For
// addresses in the code cache it walks the compiled blobs — following
// linear code, direct jumps and calls, consuming one TNT bit per
// conditional branch and one TIP per indirect transfer — and yields the
// executed instruction ranges (paper Fig 3d). For addresses in the
// interpreter's template area it yields dispatch events identifying the
// interpreted opcode (paper Fig 2e). Data-loss gaps and desynchronisation
// are surfaced as events so the bytecode-level layers (package core) can
// segment the trace.
package ptdecode

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
	"jportal/internal/pt"
)

// EventKind classifies decoder output events.
type EventKind uint8

const (
	// EvTemplate is a dispatch into an interpreter opcode template.
	EvTemplate EventKind = iota
	// EvTemplateTNT is a conditional outcome inside the current branch
	// template (interpreted mode).
	EvTemplateTNT
	// EvJITRange reports that native instructions [First, Last) of Blob
	// executed.
	EvJITRange
	// EvStub is a transfer into a runtime adapter stub.
	EvStub
	// EvGap is a data-loss episode.
	EvGap
	// EvTime is a timestamp update.
	EvTime
	// EvEnable and EvDisable delimit tracing.
	EvEnable
	EvDisable
	// EvDesync reports that the walker lost sync (packet/code mismatch,
	// typically following loss or imprecise metadata) and re-anchored.
	EvDesync
	// EvFault reports a malformed packet: the decoder recorded a typed
	// DecodeFault, discarded its walking state and is skipping to the next
	// PSB (graceful degradation, DESIGN.md §10).
	EvFault
)

func (k EventKind) String() string {
	switch k {
	case EvTemplate:
		return "template"
	case EvTemplateTNT:
		return "template-tnt"
	case EvJITRange:
		return "jit-range"
	case EvStub:
		return "stub"
	case EvGap:
		return "gap"
	case EvTime:
		return "time"
	case EvEnable:
		return "enable"
	case EvDisable:
		return "disable"
	case EvDesync:
		return "desync"
	case EvFault:
		return "fault"
	}
	return fmt.Sprintf("ev#%d", uint8(k))
}

// FaultKind classifies malformed-packet faults.
type FaultKind uint8

const (
	// FaultUnknownPacket is a packet whose kind byte names no packet type
	// (truncated or corrupted record).
	FaultUnknownPacket FaultKind = iota
	// FaultBadTNTLen is a TNT packet whose length field exceeds
	// pt.MaxTNTBits — a hostile length that must not drive allocation or
	// bit consumption.
	FaultBadTNTLen
	// FaultBadGap is a loss marker whose end precedes its start.
	FaultBadGap
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnknownPacket:
		return "unknown-packet"
	case FaultBadTNTLen:
		return "bad-tnt-len"
	case FaultBadGap:
		return "bad-gap"
	}
	return fmt.Sprintf("fault#%d", uint8(k))
}

// DecodeFault is the typed record of one malformed packet: instead of
// aborting the core's decode, the decoder logs it, drops its walking state
// and resynchronizes at the next PSB.
type DecodeFault struct {
	Kind FaultKind
	// TSC is the stream time when the fault was seen (best effort).
	TSC uint64
	// Packet is a copy of the offending packet (zero for gap faults).
	Packet pt.Packet
}

func (f *DecodeFault) Error() string {
	return fmt.Sprintf("ptdecode: %s at tsc %d", f.Kind, f.TSC)
}

// Event is one decoded native-level event.
type Event struct {
	Kind EventKind
	// Op is the dispatched opcode for EvTemplate/EvTemplateTNT.
	Op bytecode.Opcode
	// Taken is the branch outcome for EvTemplateTNT.
	Taken bool
	// Blob plus [First, Last) identify executed instructions for
	// EvJITRange.
	Blob        *meta.CompiledMethod
	First, Last int
	// Stub names the adapter for EvStub.
	Stub string
	// TSC is the current timestamp (valid on EvTime; best-effort
	// elsewhere).
	TSC uint64
	// LostBytes/GapStart/GapEnd describe EvGap.
	LostBytes        uint64
	GapStart, GapEnd uint64
}

type mode uint8

const (
	modeIdle mode = iota
	modeTemplate
	modeJIT
)

// Decoder decodes one packet stream (typically one thread's stitched
// stream).
type Decoder struct {
	snap *meta.Snapshot

	// out is the reused output buffer: truncated (not reallocated) at
	// the start of every Decode/DecodeChunk/Flush, so the steady state
	// emits into warm memory. undelivered tracks events emitted but not
	// yet returned to the caller — the checkpoint quiescence signal.
	out         []Event
	undelivered bool

	mode  mode
	curOp bytecode.Opcode // last dispatched template op

	blob       *meta.CompiledMethod
	idx        int // next instruction index within blob
	rangeStart int // first index of the pending range, -1 if none

	bits  uint64
	nbits int

	tsc uint64

	// fupArmed is set after a FUP: the next TIP is the target of an
	// asynchronous transfer (exception, OSR) and must not be matched
	// against a pending indirect instruction.
	fupArmed bool

	// skipPSB is set after a malformed packet: every packet until the next
	// PSB (or a loss gap, which is its own resync point) is discarded —
	// the stream position is untrustworthy until a synchronisation
	// boundary.
	skipPSB bool

	// Desyncs counts re-anchoring events (diagnostics).
	Desyncs int
	// DroppedBits counts TNT bits discarded with no position to attribute
	// them to (diagnostics).
	DroppedBits int
	// FaultCount counts malformed packets (all of Faults, plus any past
	// the retention cap).
	FaultCount int
	// Faults retains the first maxFaultRecords typed fault records.
	Faults []DecodeFault
	// SkippedPackets and SkippedBytes measure the spans discarded while
	// skipping to a PSB after a fault.
	SkippedPackets int
	SkippedBytes   uint64
}

// maxFaultRecords bounds the retained fault list; FaultCount keeps
// counting past it.
const maxFaultRecords = 256

// New creates a decoder over the given metadata snapshot.
func New(snap *meta.Snapshot) *Decoder {
	return &Decoder{snap: snap, rangeStart: -1}
}

// Decode processes a whole item stream and returns the events. The
// returned slice aliases the decoder's reused output buffer: it is valid
// until the next Decode/DecodeChunk/Flush call on this decoder.
func (d *Decoder) Decode(items []pt.Item) []Event {
	d.out = d.out[:0]
	for i := range items {
		d.Feed(&items[i])
	}
	d.flushRange()
	d.undelivered = false
	return d.out
}

// DecodeChunk processes one chunk of an item stream and returns the events
// decoded so far. The decoder keeps its walking state (mode, pending TNT
// bits, pending JIT range) across calls, so feeding a stream in chunks of
// any size yields, concatenated with the final Flush, exactly the events
// Decode yields for the whole stream at once: already-emitted events are
// final and never revised. The returned slice aliases the decoder's
// reused output buffer (zero-alloc steady state, DESIGN.md §12): consume
// it before the next Decode/DecodeChunk/Flush call.
func (d *Decoder) DecodeChunk(items []pt.Item) []Event {
	d.out = d.out[:0]
	for i := range items {
		d.Feed(&items[i])
	}
	d.undelivered = false
	return d.out
}

// Flush terminates the stream: the pending JIT instruction range (if any)
// is emitted. Call once after the last DecodeChunk. The returned slice
// aliases the reused output buffer, like DecodeChunk's.
func (d *Decoder) Flush() []Event {
	d.out = d.out[:0]
	d.flushRange()
	d.undelivered = false
	return d.out
}

// Feed processes one trace item.
func (d *Decoder) Feed(it *pt.Item) {
	if it.Gap {
		g := *it
		if g.GapEnd < g.GapStart {
			// Inverted loss marker: record the fault but keep the gap —
			// clamped, it still tells the upper layers bytes were lost.
			d.fault(FaultBadGap, &pt.Packet{})
			g.GapEnd = g.GapStart
		}
		d.flushRange()
		d.emit(Event{Kind: EvGap, LostBytes: g.LostBytes,
			GapStart: g.GapStart, GapEnd: g.GapEnd, TSC: g.GapStart})
		d.reset()
		// Loss is a resync point: the collector re-emits a preamble after
		// a gap, so stop skipping.
		d.skipPSB = false
		return
	}
	p := &it.Packet
	if k, bad := validate(p); bad {
		d.fault(k, p)
		return
	}
	if d.skipPSB && p.Kind != pt.KPSB {
		d.SkippedPackets++
		d.SkippedBytes += uint64(p.WireLen)
		return
	}
	switch p.Kind {
	case pt.KPSB:
		// Synchronisation point: safe to resume after a malformed packet.
		d.skipPSB = false
	case pt.KTSC:
		d.tsc = p.TSC
		d.emit(Event{Kind: EvTime, TSC: p.TSC})
	case pt.KPGE:
		d.emit(Event{Kind: EvEnable, TSC: d.tsc})
		// TIP.PGE carries the resume IP: re-anchor there (tracing often
		// resumes mid-compiled-loop where no TIP would otherwise occur).
		d.anchor(p.IP)
	case pt.KPGD:
		d.flushRange()
		d.emit(Event{Kind: EvDisable, TSC: d.tsc})
		d.mode = modeIdle
		d.bits, d.nbits = 0, 0
	case pt.KTNT:
		for i := 0; i < int(p.NBits); i++ {
			if d.nbits >= 64 {
				// Overflow means severe desync; drop oldest.
				d.DroppedBits += d.nbits
				d.desync()
			}
			if p.TNTBit(i) {
				d.bits |= 1 << uint(d.nbits)
			}
			d.nbits++
		}
		d.drainBits()
	case pt.KFUP:
		d.anchor(p.IP)
		d.fupArmed = true
	case pt.KTIP:
		async := d.fupArmed
		d.fupArmed = false
		d.tip(p.IP, async)
	}
	if p.Kind != pt.KFUP && p.Kind != pt.KTSC && p.Kind != pt.KPSB {
		d.fupArmed = false
	}
}

func (d *Decoder) emit(e Event) {
	if e.TSC == 0 {
		e.TSC = d.tsc
	}
	d.out = append(d.out, e)
	d.undelivered = true
}

func (d *Decoder) reset() {
	d.mode = modeIdle
	d.blob = nil
	d.rangeStart = -1
	d.bits, d.nbits = 0, 0
}

func (d *Decoder) desync() {
	d.Desyncs++
	d.flushRange()
	d.emit(Event{Kind: EvDesync})
	d.reset()
}

// validate rejects packets whose wire fields cannot be trusted. The TNT
// length check is what keeps a hostile length field from ever driving the
// bit loop: NBits is bounded before any consumption.
func validate(p *pt.Packet) (FaultKind, bool) {
	if p.Kind > pt.KPSB {
		return FaultUnknownPacket, true
	}
	if p.Kind == pt.KTNT && p.NBits > pt.MaxTNTBits {
		return FaultBadTNTLen, true
	}
	return 0, false
}

// fault records a typed malformed-packet fault, abandons the walking state
// (whatever was pending can no longer be trusted) and skips forward to the
// next synchronisation boundary.
func (d *Decoder) fault(kind FaultKind, p *pt.Packet) {
	d.FaultCount++
	if len(d.Faults) < maxFaultRecords {
		d.Faults = append(d.Faults, DecodeFault{Kind: kind, TSC: d.tsc, Packet: *p})
	}
	d.SkippedBytes += uint64(p.WireLen)
	d.flushRange()
	d.emit(Event{Kind: EvFault})
	d.reset()
	d.skipPSB = true
}

func (d *Decoder) takeBit() bool {
	b := d.bits&1 == 1
	d.bits >>= 1
	d.nbits--
	return b
}

// flushRange emits the pending JIT instruction range.
func (d *Decoder) flushRange() {
	if d.rangeStart >= 0 && d.idx > d.rangeStart {
		d.emit(Event{Kind: EvJITRange, Blob: d.blob, First: d.rangeStart, Last: d.idx})
	}
	d.rangeStart = -1
}

// anchor re-positions the decoder at ip without consuming a transfer
// (FUP semantics: the IP is where execution currently is).
func (d *Decoder) anchor(ip uint64) {
	d.flushRange()
	if d.snap.IsTemplate(ip) {
		if name := d.snap.Stubs.Classify(ip); name != "" {
			d.mode = modeIdle
			return
		}
		if op, ok := d.snap.Templates.Lookup(ip); ok {
			d.mode = modeTemplate
			d.curOp = op
			d.drainBits()
			return
		}
		d.mode = modeIdle
		return
	}
	if blob := d.snap.BlobFor(ip); blob != nil {
		if i := blob.Code.IndexOf(ip); i >= 0 {
			d.mode = modeJIT
			d.blob = blob
			d.idx = i
			d.rangeStart = -1
			d.drainBits()
			return
		}
	}
	d.mode = modeIdle
}

// tip handles an indirect transfer: it first advances the walker to the
// pending indirect instruction (there must be exactly the executed linear
// path in between), then lands at the target. When the TIP completes a
// FUP+TIP pair (async means an exception or OSR transfer), there is no
// indirect instruction to consume: control was ripped away by the runtime.
func (d *Decoder) tip(target uint64, async bool) {
	if async {
		d.flushRange()
		d.land(target)
		return
	}
	if d.mode == modeJIT {
		// Walk up to the indirect instruction this TIP resolves.
		d.walk()
		if d.mode == modeJIT {
			if d.idx < len(d.blob.Code.Instrs) && d.blob.Code.Instrs[d.idx].Kind.IsIndirect() {
				// Execute the indirect instruction itself.
				d.extend()
				d.idx++
				d.flushRange()
			} else {
				// The walker is stuck mid-walk (e.g. at a conditional
				// with no bits): metadata/trace mismatch.
				d.desync()
			}
		}
	}
	d.land(target)
}

// land positions execution at a transfer target and classifies it.
func (d *Decoder) land(target uint64) {
	if d.snap.IsTemplate(target) {
		d.flushRange()
		if name := d.snap.Stubs.Classify(target); name != "" {
			d.mode = modeIdle
			d.emit(Event{Kind: EvStub, Stub: name})
			return
		}
		if op, ok := d.snap.Templates.Lookup(target); ok {
			d.mode = modeTemplate
			d.curOp = op
			d.emit(Event{Kind: EvTemplate, Op: op})
			return
		}
		d.mode = modeIdle
		return
	}
	if blob := d.snap.BlobFor(target); blob != nil {
		if i := blob.Code.IndexOf(target); i >= 0 {
			d.flushRange()
			d.mode = modeJIT
			d.blob = blob
			d.idx = i
			d.rangeStart = i
			d.walk()
			return
		}
	}
	d.desync()
}

// extend includes the current instruction in the pending range.
func (d *Decoder) extend() {
	if d.rangeStart < 0 {
		d.rangeStart = d.idx
	}
}

// jumpTo transfers within/between blobs following a direct target.
func (d *Decoder) jumpTo(target uint64) bool {
	d.idx++ // the transfer instruction itself executed
	d.flushRange()
	blob := d.blob
	if !blob.Code.Contains(target) {
		blob = d.snap.BlobFor(target)
	}
	if blob == nil {
		return false
	}
	i := blob.Code.IndexOf(target)
	if i < 0 {
		return false
	}
	d.blob = blob
	d.idx = i
	d.rangeStart = i
	return true
}

// drainBits consumes pending TNT bits according to the current mode.
func (d *Decoder) drainBits() {
	for d.nbits > 0 {
		switch d.mode {
		case modeTemplate:
			taken := d.takeBit()
			d.emit(Event{Kind: EvTemplateTNT, Op: d.curOp, Taken: taken})
		case modeJIT:
			before := d.nbits
			d.walk()
			if d.nbits == before {
				// walk() could not consume: waiting for a TIP while
				// bits are pending would be a mismatch, but bits can
				// also simply be buffered ahead; stop here.
				return
			}
		default:
			// No position to attribute bits to (post-loss); drop them.
			d.DroppedBits += d.nbits
			d.bits, d.nbits = 0, 0
			return
		}
	}
}

// walk advances through the current blob while progress is possible without
// further packets.
func (d *Decoder) walk() {
	for d.mode == modeJIT {
		if d.idx >= len(d.blob.Code.Instrs) {
			// Fell off the blob end: desync.
			d.desync()
			return
		}
		ins := &d.blob.Code.Instrs[d.idx]
		switch ins.Kind {
		case isa.Linear:
			d.extend()
			d.idx++
		case isa.Jump, isa.Call:
			d.extend()
			if !d.jumpTo(ins.Target) {
				d.desync()
				return
			}
		case isa.CondBranch:
			if d.nbits == 0 {
				return // need more TNT bits
			}
			d.extend()
			taken := d.takeBit()
			if taken {
				if !d.jumpTo(ins.Target) {
					d.desync()
					return
				}
			} else {
				d.idx++
			}
		case isa.IndirectCall, isa.IndirectJump, isa.Ret:
			return // need a TIP
		default:
			d.desync()
			return
		}
	}
}
