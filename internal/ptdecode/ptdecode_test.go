package ptdecode

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
	"jportal/internal/pt"
)

// testWorld builds a snapshot with one template table entry per opcode used
// and two tiny compiled blobs:
//
//	blobA (base 0x...0000):  linear; jcc->A2; linear; ret          (A0 A1 A2 A3)
//	                         taken target of the jcc is A3's addr? no: A2
//	blobB (base 0x...1000):  linear; call A; linear; ret
type testWorld struct {
	snap  *meta.Snapshot
	blobA *meta.CompiledMethod
	blobB *meta.CompiledMethod
}

func buildWorld(t *testing.T) *testWorld {
	t.Helper()
	tt := meta.NewTemplateTable()
	for op := 0; op < bytecode.NumOpcodes; op++ {
		start := meta.TemplateBase + uint64(op)*0x100
		tt.Add(bytecode.Opcode(op), meta.Range{Start: start, End: start + 0x80})
	}
	snap := meta.NewSnapshot(tt)
	snap.Stubs = meta.Stubs{
		InterpEntry: meta.Range{Start: meta.CodeCacheBase - 0x400, End: meta.CodeCacheBase - 0x3c0},
		RetEntry:    meta.Range{Start: meta.CodeCacheBase - 0x300, End: meta.CodeCacheBase - 0x2c0},
		Unwind:      meta.Range{Start: meta.CodeCacheBase - 0x200, End: meta.CodeCacheBase - 0x1c0},
		ThreadExit:  meta.Range{Start: meta.CodeCacheBase - 0x100, End: meta.CodeCacheBase - 0xc0},
	}

	baseA := meta.CodeCacheBase
	aA := isa.NewAssembler("A", baseA)
	aA.Emit(isa.Linear, 4, 0, "A0")
	jcc := aA.Emit(isa.CondBranch, 6, 0, "A1")
	aA.Emit(isa.Linear, 4, 0, "A2")
	retA := aA.Emit(isa.Ret, 1, 0, "A3")
	aA.PatchTarget(jcc, retA) // taken -> skip A2
	blobACode := aA.Finish()

	baseB := meta.CodeCacheBase + 0x1000
	aB := isa.NewAssembler("B", baseB)
	aB.Emit(isa.Linear, 4, 0, "B0")
	aB.Emit(isa.Call, 5, baseA, "B1") // direct call into blob A
	aB.Emit(isa.Linear, 4, 0, "B2")
	aB.Emit(isa.Ret, 1, 0, "B3")
	blobBCode := aB.Finish()

	mk := func(root bytecode.MethodID, code *isa.Blob) *meta.CompiledMethod {
		var dbg []meta.DebugRecord
		for i, ins := range code.Instrs {
			dbg = append(dbg, meta.DebugRecord{
				Addr:   ins.Addr,
				Frames: []meta.Frame{{Method: root, PC: int32(i)}},
			})
		}
		return &meta.CompiledMethod{Root: root, Tier: 1, Code: code, Debug: dbg}
	}
	w := &testWorld{snap: snap, blobA: mk(0, blobACode), blobB: mk(1, blobBCode)}
	snap.Export(w.blobA)
	snap.Export(w.blobB)
	return w
}

func pkt(kind pt.Kind, ip uint64) pt.Item {
	return pt.Item{Packet: pt.Packet{Kind: kind, IP: ip, WireLen: 4}}
}

func tnt(bits ...bool) pt.Item {
	p := pt.Packet{Kind: pt.KTNT, NBits: uint8(len(bits)), WireLen: 2}
	for i, b := range bits {
		if b {
			p.Bits |= 1 << uint(i)
		}
	}
	return pt.Item{Packet: p}
}

func jitRanges(events []Event) [][2]int {
	var out [][2]int
	for _, e := range events {
		if e.Kind == EvJITRange {
			out = append(out, [2]int{e.First, e.Last})
		}
	}
	return out
}

func TestWalkNotTakenPath(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobA.EntryAddr()),
		tnt(false),                                // jcc not taken: fall through A2
		pkt(pt.KTIP, w.snap.Stubs.RetEntry.Start), // the ret's target
	})
	rs := jitRanges(events)
	// A0,A1 then (after bit) A2,A3; ranges may be split around pauses but
	// their union must be exactly [0,4).
	total := 0
	for _, r := range rs {
		total += r[1] - r[0]
	}
	if total != 4 {
		t.Fatalf("walked %d instrs, want 4; ranges %v (events %v)", total, rs, events)
	}
	if d.Desyncs != 0 {
		t.Errorf("desyncs: %d", d.Desyncs)
	}
}

func TestWalkTakenPathSkipsA2(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobA.EntryAddr()),
		tnt(true), // jcc taken: jump to A3, skipping A2
		pkt(pt.KTIP, w.snap.Stubs.RetEntry.Start),
	})
	total := 0
	for _, r := range jitRanges(events) {
		total += r[1] - r[0]
		for i := r[0]; i < r[1]; i++ {
			if i == 2 {
				t.Error("A2 executed on taken path")
			}
		}
	}
	if total != 3 {
		t.Errorf("walked %d instrs, want 3", total)
	}
}

func TestWalkFollowsDirectCall(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	// Enter B; B1 calls A directly (no packet); A's jcc taken; A's ret
	// TIPs back to B2; B's ret TIPs to thread exit.
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobB.EntryAddr()),
		tnt(true),
		pkt(pt.KTIP, w.blobB.Code.Instrs[2].Addr), // ret from A to B2
		pkt(pt.KTIP, w.snap.Stubs.ThreadExit.Start),
	})
	// Expected instruction count: B0,B1 + A0,A1,A3 + B2,B3 = 7.
	total := 0
	sawBlobA := false
	for _, e := range events {
		if e.Kind == EvJITRange {
			total += e.Last - e.First
			if e.Blob == w.blobA {
				sawBlobA = true
			}
		}
	}
	if !sawBlobA {
		t.Error("walk never entered the callee blob")
	}
	if total != 7 {
		t.Errorf("walked %d instrs, want 7", total)
	}
	if d.Desyncs != 0 {
		t.Errorf("desyncs: %d", d.Desyncs)
	}
}

func TestTemplateDispatchDecoding(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	tmpl := w.snap.Templates
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, tmpl.Entry(bytecode.ILOAD)),
		pkt(pt.KTIP, tmpl.Entry(bytecode.IFEQ)),
		tnt(true),
		pkt(pt.KTIP, tmpl.Entry(bytecode.IRETURN)),
	})
	var ops []bytecode.Opcode
	var dirs []bool
	for _, e := range events {
		switch e.Kind {
		case EvTemplate:
			ops = append(ops, e.Op)
		case EvTemplateTNT:
			dirs = append(dirs, e.Taken)
			if e.Op != bytecode.IFEQ {
				t.Errorf("TNT attributed to %v", e.Op)
			}
		}
	}
	if len(ops) != 3 || ops[0] != bytecode.ILOAD || ops[1] != bytecode.IFEQ || ops[2] != bytecode.IRETURN {
		t.Errorf("ops: %v", ops)
	}
	if len(dirs) != 1 || !dirs[0] {
		t.Errorf("dirs: %v", dirs)
	}
}

func TestGapSplitsAndFUPResync(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	jccAddr := w.blobA.Code.Instrs[1].Addr
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobA.EntryAddr()),
		pt.Item{Gap: true, LostBytes: 100, GapStart: 10, GapEnd: 20},
		// Resync: FUP anchors at the conditional, bits follow.
		pkt(pt.KFUP, jccAddr),
		tnt(false),
		pkt(pt.KTIP, w.snap.Stubs.RetEntry.Start),
	})
	gaps := 0
	total := 0
	for _, e := range events {
		switch e.Kind {
		case EvGap:
			gaps++
			if e.LostBytes != 100 {
				t.Errorf("gap bytes %d", e.LostBytes)
			}
		case EvJITRange:
			total += e.Last - e.First
		}
	}
	if gaps != 1 {
		t.Fatalf("gaps %d", gaps)
	}
	// Pre-gap walk covered A0; post-FUP walk covers A1 (the jcc), A2, A3.
	if total != 4 {
		t.Errorf("walked %d instrs, want 4", total)
	}
}

func TestAsyncFUPTIPPairDoesNotDesync(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	// Walk into A (stops at the jcc waiting for bits), then an async
	// FUP+TIP pair rips control to blob B (exception/OSR semantics).
	events := d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobA.EntryAddr()),
		pkt(pt.KFUP, w.blobA.Code.Instrs[1].Addr),
		pkt(pt.KTIP, w.blobB.EntryAddr()),
		tnt(true),
		pkt(pt.KTIP, w.blobB.Code.Instrs[2].Addr),
		pkt(pt.KTIP, w.snap.Stubs.ThreadExit.Start),
	})
	if d.Desyncs != 0 {
		t.Fatalf("async transfer desynced: %d (events %v)", d.Desyncs, events)
	}
}

func TestTIPWithoutPendingIndirectDesyncs(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	// Land in A, then a TIP arrives while the walker waits at the jcc
	// (no FUP): the metadata and trace disagree.
	d.Decode([]pt.Item{
		pkt(pt.KTIP, w.blobA.EntryAddr()),
		pkt(pt.KTIP, w.blobB.EntryAddr()),
	})
	if d.Desyncs != 1 {
		t.Errorf("desyncs = %d, want 1", d.Desyncs)
	}
}

func TestPGEAnchorsAndPGDSuspends(t *testing.T) {
	w := buildWorld(t)
	d := New(w.snap)
	jccAddr := w.blobA.Code.Instrs[1].Addr
	events := d.Decode([]pt.Item{
		pkt(pt.KPGE, jccAddr), // resume mid-blob (sched-in)
		tnt(false),
		pkt(pt.KPGD, w.blobA.Code.Instrs[3].Addr),
		tnt(true, true, true), // bits while disabled: dropped, no desync
	})
	total := 0
	for _, e := range events {
		if e.Kind == EvJITRange {
			total += e.Last - e.First
		}
	}
	if total != 2 { // A1, A2 (walk pauses at the ret)
		t.Errorf("walked %d, want 2", total)
	}
	if d.Desyncs != 0 {
		t.Errorf("desyncs %d", d.Desyncs)
	}
	if d.DroppedBits != 3 {
		t.Errorf("dropped %d bits, want 3", d.DroppedBits)
	}
}
