// Package iofault injects deterministic, seeded faults at the storage
// layer: the filesystem operations beneath the atomic state writer
// (fsatomic), the archive stream writer, the ingest session state, and the
// coordinator's durable control-plane state. It is the disk-layer sibling
// of internal/netfault — where that package damages the *paths* a trace
// travels, this one damages the *media* it lands on: writes refused with
// ENOSPC, reads and fsyncs failing with EIO, torn writes (a short write
// followed by an error, the shape of a crash mid-sector), and slow I/O.
//
// Determinism contract: for a fixed Matrix (seed included) every decision
// draws from a per-scope splitmix64 stream, one fixed-order draw set per
// operation in that scope, so the nth faultable operation of a scope always
// meets the same fate regardless of what other scopes did meanwhile. The
// ingest server serialises each session's archive writes in one writer
// goroutine, which totally orders that scope's operations — the property
// that makes `jportal chaos -disk` reproduce the same sweep table for the
// same seed.
//
// A nil injector or a zero (rate-0) matrix is pass-through: FS returns the
// OS singleton itself — the identical interface value the unfaulted paths
// use — so the no-iofault path is byte-identical by construction, not by
// testing alone.
package iofault

import (
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"jportal/internal/metrics"
)

// Class identifies one injected storage-fault kind.
type Class uint8

const (
	// ClassENOSPC refuses a create or a write with "no space left on
	// device" — the full-disk case the ingest write path must shed, not
	// crash, on.
	ClassENOSPC Class = iota
	// ClassReadErr fails a read with EIO — the unreadable-sector case the
	// scrubber classifies as mid-file corruption.
	ClassReadErr
	// ClassWriteErr fails a write with EIO before any byte lands.
	ClassWriteErr
	// ClassSyncErr fails an fsync with EIO — the write appeared to
	// succeed but durability is gone, the failure mode fsatomic's
	// sync-before-rename exists to surface.
	ClassSyncErr
	// ClassTornWrite lands a short prefix of the buffer, then fails —
	// the torn-tail shape a crash mid-record leaves behind.
	ClassTornWrite
	// ClassSlow delays the operation by a seeded duration — a congested
	// or degrading device, not a failing one.
	ClassSlow

	numClasses
)

// Slug returns the class's stable snake_case name (metrics counter suffix).
func (c Class) Slug() string {
	switch c {
	case ClassENOSPC:
		return "enospc"
	case ClassReadErr:
		return "read_eio"
	case ClassWriteErr:
		return "write_eio"
	case ClassSyncErr:
		return "sync_eio"
	case ClassTornWrite:
		return "torn_write"
	case ClassSlow:
		return "slow_io"
	}
	return "unknown"
}

// InjectCounterName is the metrics key mirroring injections of this class.
func (c Class) InjectCounterName() string { return "iofault_injected_" + c.Slug() }

// Classes lists every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ErrNoSpace is the injected full-disk error. It wraps syscall.ENOSPC so
// errors.Is treats injected and real disk exhaustion identically — the
// graceful-degradation path in the ingest writer keys off the errno, not
// off this sentinel.
var ErrNoSpace = fmt.Errorf("iofault: no space left on device (injected): %w", syscall.ENOSPC)

// ErrIO is the injected media error, wrapping syscall.EIO for the same
// reason ErrNoSpace wraps ENOSPC.
var ErrIO = fmt.Errorf("iofault: input/output error (injected): %w", syscall.EIO)

// Matrix is one fault configuration: per-operation probabilities plus the
// seed every decision derives from.
type Matrix struct {
	Seed uint64

	// ENOSPC is the probability a create or write fails with ErrNoSpace.
	ENOSPC float64
	// ReadErr is the probability a read fails with ErrIO.
	ReadErr float64
	// WriteErr is the probability a write fails with ErrIO (no bytes land).
	WriteErr float64
	// SyncErr is the probability an fsync fails with ErrIO.
	SyncErr float64
	// TornWrite is the probability a write lands a short seeded prefix
	// and then fails with ErrIO.
	TornWrite float64
	// Slow is the probability an operation is delayed.
	Slow float64
	// SlowMax bounds the seeded per-operation delay (0 disables delays).
	SlowMax time.Duration
}

// DefaultMatrix is the chaos sweep's base rate: at Scale(1.0) roughly one
// write in ten is torn, one operation in twenty hits ENOSPC or EIO, and
// one in ten crawls.
func DefaultMatrix(seed uint64) Matrix {
	return Matrix{
		Seed:      seed,
		ENOSPC:    0.05,
		ReadErr:   0.05,
		WriteErr:  0.05,
		SyncErr:   0.05,
		TornWrite: 0.10,
		Slow:      0.10,
		SlowMax:   time.Millisecond,
	}
}

// Scale multiplies every probability by f (clamped to 1) and scales the
// delay bound. Scale(0) is the pass-through matrix.
func (m Matrix) Scale(f float64) Matrix {
	clamp := func(p float64) float64 {
		p *= f
		if p > 1 {
			return 1
		}
		if p < 0 {
			return 0
		}
		return p
	}
	m.ENOSPC = clamp(m.ENOSPC)
	m.ReadErr = clamp(m.ReadErr)
	m.WriteErr = clamp(m.WriteErr)
	m.SyncErr = clamp(m.SyncErr)
	m.TornWrite = clamp(m.TornWrite)
	m.Slow = clamp(m.Slow)
	m.SlowMax = time.Duration(float64(m.SlowMax) * f)
	return m
}

// active reports whether the matrix can inject anything at all.
func (m Matrix) active() bool {
	return m.ENOSPC > 0 || m.ReadErr > 0 || m.WriteErr > 0 ||
		m.SyncErr > 0 || m.TornWrite > 0 || (m.Slow > 0 && m.SlowMax > 0)
}

// File is the file-handle surface the faulted paths write through.
// *os.File satisfies it; the injector's wrapper intercepts Read, Write and
// Sync. Close, Seek, Truncate, Chmod and Name pass through unfaulted — the
// repair paths (truncate-to-last-valid-record, quarantine moves) must
// always be able to make progress, or an injected fault could wedge the
// very machinery that recovers from it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Name() string
	Chmod(mode os.FileMode) error
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem surface the faulted paths go through: exactly the
// operations fsatomic, the archive writer, and the ingest session state
// need. Rename, Remove and SyncDir are deliberately unfaulted (same
// rationale as File's pass-through set); faults land on creates, reads,
// writes and fsyncs — the operations with real-world partial-failure
// modes.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS is the pass-through filesystem singleton. Injector.FS returns OS
// itself for a nil or rate-0 injector, so the unfaulted path is
// pointer-identical to the pre-iofault code, not merely equivalent.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

// SyncDir fsyncs a directory so a completed rename is durable.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// splitmix is the splitmix64 generator (same shape as internal/netfault's).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (s *splitmix) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.next()>>11)/float64(1<<53) < p
}

// op identifies which fault classes apply to one operation.
type op uint8

const (
	opCreate op = iota // OpenFile with O_CREATE, CreateTemp
	opRead             // Read, ReadFile
	opWrite            // Write
	opSync             // Sync
)

// action is one operation's fate. The draws behind it are made
// unconditionally and in a fixed order, so a scope's stream position after
// n operations is invariant across matrices with the same seed — exactly
// netfault's verdict contract.
type action struct {
	err  error         // fault to return (nil = none)
	torn int           // >0: land this many bytes of the write, then fail
	slow time.Duration // delay before the operation proceeds
}

// Injector hands out per-operation verdicts and wraps filesystems.
// Nil-safe: a nil *Injector injects nothing. Safe for concurrent use.
type Injector struct {
	m   Matrix
	reg *metrics.Registry

	mu     sync.Mutex
	scopes map[string]*splitmix
	counts [numClasses]int64
}

// NewInjector builds an injector over m, mirroring injection counts into
// reg (nil: counts are still kept internally). The total and per-class
// counters are pre-registered at zero so they are present — and zero — on
// rate-0 runs.
func NewInjector(m Matrix, reg *metrics.Registry) *Injector {
	in := &Injector{m: m, reg: reg, scopes: make(map[string]*splitmix)}
	reg.Add(metrics.CounterIofaultInjected, 0)
	for c := Class(0); c < numClasses; c++ {
		reg.Add(c.InjectCounterName(), 0)
	}
	return in
}

// Counts returns per-class injection counts keyed by slug.
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, numClasses)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for c := Class(0); c < numClasses; c++ {
		out[c.Slug()] = in.counts[c]
	}
	return out
}

func (in *Injector) scope(name string) *splitmix {
	sc, ok := in.scopes[name]
	if !ok {
		// Seed each scope from the matrix seed and an FNV-1a hash of its
		// name, run through one splitmix step so nearby hashes decorrelate.
		h := uint64(1469598103934665603)
		for i := 0; i < len(name); i++ {
			h ^= uint64(name[i])
			h *= 1099511628211
		}
		seed := splitmix{state: in.m.Seed ^ h}
		sc = &splitmix{state: seed.next()}
		in.scopes[name] = sc
	}
	return sc
}

func (in *Injector) count(c Class) {
	in.counts[c]++
	in.reg.Add(metrics.CounterIofaultInjected, 1)
	in.reg.Add(c.InjectCounterName(), 1)
}

// next draws one operation's fate from the scope's stream. Every draw is
// made regardless of the operation kind, so the stream position after n
// operations does not depend on the mix of reads and writes.
func (in *Injector) next(scope string, kind op, size int) action {
	if in == nil || !in.m.active() {
		return action{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sc := in.scope(scope)
	enospc := sc.chance(in.m.ENOSPC)
	readErr := sc.chance(in.m.ReadErr)
	writeErr := sc.chance(in.m.WriteErr)
	syncErr := sc.chance(in.m.SyncErr)
	torn := sc.chance(in.m.TornWrite)
	slow := sc.chance(in.m.Slow)
	slowDraw := sc.next()
	tornDraw := sc.next()

	switch kind {
	case opCreate:
		if enospc {
			in.count(ClassENOSPC)
			return action{err: ErrNoSpace}
		}
	case opRead:
		if readErr {
			in.count(ClassReadErr)
			return action{err: ErrIO}
		}
	case opWrite:
		switch {
		case enospc:
			in.count(ClassENOSPC)
			return action{err: ErrNoSpace}
		case torn && size > 1:
			in.count(ClassTornWrite)
			return action{err: ErrIO, torn: 1 + int(tornDraw%uint64(size-1))}
		case writeErr || torn: // a 0/1-byte torn write degenerates to EIO
			in.count(ClassWriteErr)
			return action{err: ErrIO}
		}
	case opSync:
		if syncErr {
			in.count(ClassSyncErr)
			return action{err: ErrIO}
		}
	}
	if slow && in.m.SlowMax > 0 {
		in.count(ClassSlow)
		return action{slow: time.Duration(slowDraw % uint64(in.m.SlowMax))}
	}
	return action{}
}

// FS returns a filesystem whose creates, reads, writes and fsyncs draw
// faults from the named scope's stream. A nil or inactive injector returns
// the OS singleton itself — the pointer-identical pass-through the rate-0
// acceptance bar demands.
func (in *Injector) FS(scope string) FS {
	if in == nil || !in.m.active() {
		return OS
	}
	return &faultFS{in: in, scope: scope}
}

type faultFS struct {
	in    *Injector
	scope string
}

func (f *faultFS) apply(kind op, size int) error {
	a := f.in.next(f.scope, kind, size)
	if a.slow > 0 {
		time.Sleep(a.slow)
	}
	return a.err
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if err := f.apply(opCreate, 0); err != nil {
			return nil, fmt.Errorf("open %s: %w", name, err)
		}
	}
	file, err := OS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.apply(opCreate, 0); err != nil {
		return nil, fmt.Errorf("createtemp %s: %w", dir, err)
	}
	file, err := OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.apply(opRead, 0); err != nil {
		return nil, fmt.Errorf("read %s: %w", name, err)
	}
	return OS.ReadFile(name)
}

func (f *faultFS) Rename(oldpath, newpath string) error { return OS.Rename(oldpath, newpath) }

func (f *faultFS) Remove(name string) error { return OS.Remove(name) }

func (f *faultFS) SyncDir(dir string) error { return OS.SyncDir(dir) }

// faultFile intercepts the faultable handle operations; everything else
// passes through to the embedded File.
type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Read(b []byte) (int, error) {
	if err := f.fs.apply(opRead, len(b)); err != nil {
		return 0, err
	}
	return f.File.Read(b)
}

func (f *faultFile) Write(b []byte) (int, error) {
	a := f.fs.in.next(f.fs.scope, opWrite, len(b))
	if a.slow > 0 {
		time.Sleep(a.slow)
	}
	if a.torn > 0 {
		// Land a short prefix, then fail: the torn-tail shape. The bytes
		// really are on disk — that is the point.
		n, err := f.File.Write(b[:a.torn])
		if err != nil {
			return n, err
		}
		return n, a.err
	}
	if a.err != nil {
		return 0, a.err
	}
	return f.File.Write(b)
}

func (f *faultFile) Sync() error {
	if err := f.fs.apply(opSync, 0); err != nil {
		return err
	}
	return f.File.Sync()
}
