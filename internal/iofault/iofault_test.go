package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"jportal/internal/metrics"
)

// TestPassthroughPointerIdentity pins the rate-0 acceptance bar: a nil
// injector and an inactive matrix both hand back the OS singleton itself,
// so the unfaulted path is the identical interface value, not a wrapper.
func TestPassthroughPointerIdentity(t *testing.T) {
	var nilInj *Injector
	if fs := nilInj.FS("any"); fs != OS {
		t.Fatalf("nil injector FS = %T, want the OS singleton", fs)
	}
	inj := NewInjector(Matrix{Seed: 1}, nil)
	if fs := inj.FS("any"); fs != OS {
		t.Fatalf("rate-0 injector FS = %T, want the OS singleton", fs)
	}
	inj = NewInjector(DefaultMatrix(1).Scale(0), nil)
	if fs := inj.FS("any"); fs != OS {
		t.Fatalf("Scale(0) injector FS = %T, want the OS singleton", fs)
	}
	if fs := NewInjector(DefaultMatrix(1), nil).FS("x"); fs == OS {
		t.Fatal("active injector returned the OS singleton")
	}
}

// TestDeterministicPerScope pins the determinism contract: the same seed
// and scope produce the same fault sequence, independent scopes produce
// independent ones, and a second injector replays the first exactly.
func TestDeterministicPerScope(t *testing.T) {
	sequence := func(in *Injector, scope string, n int) []error {
		out := make([]error, 0, n)
		fsys := in.FS(scope)
		dir := t.TempDir()
		f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
		for err != nil { // keep drawing until a create succeeds
			out = append(out, err)
			n--
			if n <= 0 {
				return out
			}
			f, err = fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
		}
		defer f.Close()
		for i := 0; i < n; i++ {
			_, err := f.Write([]byte("0123456789abcdef"))
			out = append(out, err)
		}
		return out
	}
	m := DefaultMatrix(99)
	m.SlowMax = 0 // keep the test instant
	a := sequence(NewInjector(m, nil), "alpha", 64)
	b := sequence(NewInjector(m, nil), "alpha", 64)
	if len(a) != len(b) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) || (a[i] != nil && a[i].Error() != b[i].Error()) {
			t.Fatalf("op %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(NewInjector(m, nil), "beta", 64)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if (a[i] == nil) != (c[i] == nil) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("scopes alpha and beta drew identical fault sequences")
	}
}

// TestErrnoIdentity pins that injected faults are indistinguishable from
// the real thing to errors.Is — the ingest shed path keys off the errno.
func TestErrnoIdentity(t *testing.T) {
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Error("ErrNoSpace does not wrap syscall.ENOSPC")
	}
	if !errors.Is(ErrIO, syscall.EIO) {
		t.Error("ErrIO does not wrap syscall.EIO")
	}
}

// TestTornWriteLandsPrefix forces a torn write and asserts a strict
// nonempty prefix really landed on disk before the error.
func TestTornWriteLandsPrefix(t *testing.T) {
	inj := NewInjector(Matrix{Seed: 7, TornWrite: 1}, nil)
	fsys := inj.FS("torn")
	path := filepath.Join(t.TempDir(), "f")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	f.Close()
	if err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write error = %v, want EIO", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write landed %d bytes, want a strict nonempty prefix of %d", n, len(payload))
	}
	got, _ := os.ReadFile(path)
	if string(got) != string(payload[:n]) {
		t.Fatalf("on-disk prefix %q does not match reported %d bytes", got, n)
	}
	if c := inj.Counts()["torn_write"]; c != 1 {
		t.Fatalf("torn_write count = %d, want 1", c)
	}
}

// TestCountersMirrored pins the metrics contract: the total and every
// per-class counter pre-register at zero, and firing a class moves both
// the class counter and the total.
func TestCountersMirrored(t *testing.T) {
	reg := metrics.NewRegistry()
	inj := NewInjector(Matrix{Seed: 3, ENOSPC: 1}, reg)
	snap := reg.Snapshot()
	if v, ok := snap[metrics.CounterIofaultInjected]; !ok || v != 0 {
		t.Fatalf("total counter not pre-registered at zero: %v %v", v, ok)
	}
	for _, c := range Classes() {
		if v, ok := snap[c.InjectCounterName()]; !ok || v != 0 {
			t.Fatalf("%s not pre-registered at zero: %v %v", c.InjectCounterName(), v, ok)
		}
	}
	fsys := inj.FS("s")
	if _, err := fsys.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC-1.0 create error = %v", err)
	}
	if got := reg.Get(ClassENOSPC.InjectCounterName()); got != 1 {
		t.Fatalf("enospc counter = %d, want 1", got)
	}
	if got := reg.Get(metrics.CounterIofaultInjected); got != 1 {
		t.Fatalf("total counter = %d, want 1", got)
	}
}

// TestSyncAndReadFaults exercises the remaining classes at rate 1.
func TestSyncAndReadFaults(t *testing.T) {
	inj := NewInjector(Matrix{Seed: 5, SyncErr: 1}, nil)
	f, err := inj.FS("s").OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync error = %v, want EIO", err)
	}

	inj = NewInjector(Matrix{Seed: 5, ReadErr: 1}, nil)
	path := filepath.Join(t.TempDir(), "g")
	os.WriteFile(path, []byte("data"), 0o644)
	if _, err := inj.FS("s").ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile error = %v, want EIO", err)
	}
}

// TestScaleClampsAndDisables pins Scale's clamping semantics.
func TestScaleClampsAndDisables(t *testing.T) {
	m := DefaultMatrix(1).Scale(1000)
	if m.ENOSPC != 1 || m.TornWrite != 1 {
		t.Fatalf("Scale(1000) did not clamp: %+v", m)
	}
	z := DefaultMatrix(1).Scale(0)
	if z.active() {
		t.Fatalf("Scale(0) is still active: %+v", z)
	}
	if d := DefaultMatrix(1); d.SlowMax != time.Millisecond {
		t.Fatalf("unexpected default SlowMax %v", d.SlowMax)
	}
}
