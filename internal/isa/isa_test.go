package isa

import (
	"testing"
	"testing/quick"
)

func sampleBlob() *Blob {
	a := NewAssembler("test", 0x1000)
	a.Emit(Linear, 3, 0, "a")
	a.Emit(CondBranch, 6, 0x1000, "b")
	a.Emit(Jump, 5, 0x1000, "c")
	a.Emit(Call, 5, 0x2000, "d")
	a.Emit(Ret, 1, 0, "e")
	return a.Finish()
}

func TestAssemblerLayout(t *testing.T) {
	b := sampleBlob()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Base() != 0x1000 {
		t.Errorf("base %#x", b.Base())
	}
	if b.Limit() != 0x1000+3+6+5+5+1 {
		t.Errorf("limit %#x", b.Limit())
	}
	wantAddrs := []uint64{0x1000, 0x1003, 0x1009, 0x100e, 0x1013}
	for i, ins := range b.Instrs {
		if ins.Addr != wantAddrs[i] {
			t.Errorf("instr %d at %#x, want %#x", i, ins.Addr, wantAddrs[i])
		}
	}
}

func TestBlobLookup(t *testing.T) {
	b := sampleBlob()
	for i, ins := range b.Instrs {
		if got := b.IndexOf(ins.Addr); got != i {
			t.Errorf("IndexOf(%#x) = %d, want %d", ins.Addr, got, i)
		}
		if b.At(ins.Addr) == nil {
			t.Errorf("At(%#x) nil", ins.Addr)
		}
	}
	if b.IndexOf(0x1001) != -1 {
		t.Error("mid-instruction address should not resolve")
	}
	if !b.Contains(0x1001) || b.Contains(0x0fff) || b.Contains(b.Limit()) {
		t.Error("Contains boundaries wrong")
	}
}

func TestPatchTarget(t *testing.T) {
	a := NewAssembler("t", 0)
	addr := a.Emit(Jump, 5, 0, "")
	a.PatchTarget(addr, 0x42)
	b := a.Finish()
	if b.Instrs[0].Target != 0x42 {
		t.Errorf("patch failed: %#x", b.Instrs[0].Target)
	}
}

func TestKindIsIndirect(t *testing.T) {
	indirect := map[Kind]bool{IndirectJump: true, IndirectCall: true, Ret: true}
	for k := Linear; k <= Ret; k++ {
		if k.IsIndirect() != indirect[k] {
			t.Errorf("%v IsIndirect = %v", k, k.IsIndirect())
		}
	}
}

func TestAddressSpaceNonOverlap(t *testing.T) {
	var s AddressSpace
	mk := func(base uint64, n int) *Blob {
		a := NewAssembler("b", base)
		for i := 0; i < n; i++ {
			a.Emit(Linear, 4, 0, "")
		}
		return a.Finish()
	}
	if err := s.Add(mk(0x1000, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mk(0x2000, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mk(0x1008, 2)); err == nil {
		t.Fatal("overlap accepted")
	}
	if s.Lookup(0x1004) == nil || s.Lookup(0x2004) == nil {
		t.Error("lookup failed")
	}
	if s.Lookup(0x1800) != nil {
		t.Error("hole lookup should be nil")
	}
	if got := s.Remove(0x1004); got == nil {
		t.Fatal("remove failed")
	}
	if s.Lookup(0x1004) != nil {
		t.Error("blob still resolvable after removal")
	}
}

func TestAddressSpaceLookupQuick(t *testing.T) {
	var s AddressSpace
	bases := []uint64{0x1000, 0x3000, 0x9000, 0x20000}
	for _, base := range bases {
		a := NewAssembler("b", base)
		for i := 0; i < 8; i++ {
			a.Emit(Linear, 4, 0, "")
		}
		if err := s.Add(a.Finish()); err != nil {
			t.Fatal(err)
		}
	}
	f := func(addr uint64) bool {
		addr %= 0x30000
		got := s.Lookup(addr)
		want := false
		for _, base := range bases {
			if addr >= base && addr < base+32 {
				want = true
			}
		}
		return (got != nil) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlobValidateCatchesGaps(t *testing.T) {
	b := &Blob{Name: "bad", Instrs: []Instr{
		{Addr: 0x100, Size: 4},
		{Addr: 0x105, Size: 4}, // gap of 1
	}}
	if err := b.Validate(); err == nil {
		t.Fatal("gap not caught")
	}
	b2 := &Blob{Name: "bad2", Instrs: []Instr{{Addr: 0x100, Size: 0}}}
	if err := b2.Validate(); err == nil {
		t.Fatal("zero size not caught")
	}
}
