// Package isa models the simulated native instruction set that the virtual
// machine's interpreter templates and JIT compiler emit, and that the PT
// decoder walks. Only the properties Intel PT cares about are modelled:
// every instruction has an address, a size, and a control-flow kind that
// determines whether executing it produces a TNT bit (conditional branch),
// a TIP packet (indirect transfer), or nothing (direct transfers and linear
// code, whose targets a decoder infers from the code itself).
package isa

import (
	"fmt"
	"sort"
)

// Kind classifies a native instruction for trace purposes.
type Kind uint8

const (
	// Linear instructions fall through to Addr+Size.
	Linear Kind = iota
	// CondBranch either falls through or jumps to Target; PT records one
	// TNT bit.
	CondBranch
	// Jump is a direct unconditional jump to Target; no packet.
	Jump
	// Call is a direct call to Target; no packet (the return address is
	// inferable).
	Call
	// IndirectJump jumps to a runtime-computed target; PT records a TIP.
	IndirectJump
	// IndirectCall calls a runtime-computed target; PT records a TIP.
	IndirectCall
	// Ret returns to a runtime-computed address; PT records a TIP.
	Ret
)

func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case CondBranch:
		return "jcc"
	case Jump:
		return "jmp"
	case Call:
		return "call"
	case IndirectJump:
		return "jmp*"
	case IndirectCall:
		return "call*"
	case Ret:
		return "ret"
	}
	return fmt.Sprintf("kind#%d", uint8(k))
}

// IsIndirect reports whether executing the instruction produces a TIP
// packet.
func (k Kind) IsIndirect() bool {
	return k == IndirectJump || k == IndirectCall || k == Ret
}

// Instr is one simulated native instruction.
type Instr struct {
	Addr   uint64
	Size   uint8
	Kind   Kind
	Target uint64 // direct branch/jump/call target; 0 otherwise
	// Comment annotates disassembly listings (e.g. the bytecode this
	// instruction was compiled from); it has no semantic effect.
	Comment string
}

// End returns the address just past the instruction.
func (i *Instr) End() uint64 { return i.Addr + uint64(i.Size) }

// Blob is a contiguous run of native instructions, addresses strictly
// increasing and gapless.
type Blob struct {
	Name   string
	Instrs []Instr
}

// Base returns the first instruction's address (0 for an empty blob).
func (b *Blob) Base() uint64 {
	if len(b.Instrs) == 0 {
		return 0
	}
	return b.Instrs[0].Addr
}

// Limit returns the address just past the last instruction.
func (b *Blob) Limit() uint64 {
	if len(b.Instrs) == 0 {
		return 0
	}
	return b.Instrs[len(b.Instrs)-1].End()
}

// Contains reports whether addr falls within the blob.
func (b *Blob) Contains(addr uint64) bool {
	return addr >= b.Base() && addr < b.Limit()
}

// IndexOf returns the index of the instruction starting at addr, or -1.
func (b *Blob) IndexOf(addr uint64) int {
	i := sort.Search(len(b.Instrs), func(i int) bool { return b.Instrs[i].Addr >= addr })
	if i < len(b.Instrs) && b.Instrs[i].Addr == addr {
		return i
	}
	return -1
}

// At returns the instruction starting at addr, or nil.
func (b *Blob) At(addr uint64) *Instr {
	if i := b.IndexOf(addr); i >= 0 {
		return &b.Instrs[i]
	}
	return nil
}

// Validate checks the blob's structural invariants.
func (b *Blob) Validate() error {
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		if ins.Size == 0 {
			return fmt.Errorf("blob %s: zero-size instruction at %#x", b.Name, ins.Addr)
		}
		if i > 0 && ins.Addr != b.Instrs[i-1].End() {
			return fmt.Errorf("blob %s: gap/overlap at %#x (prev ends %#x)",
				b.Name, ins.Addr, b.Instrs[i-1].End())
		}
	}
	return nil
}

// Assembler incrementally builds a Blob with automatic address layout.
type Assembler struct {
	blob Blob
	next uint64
}

// NewAssembler starts a blob named name at base.
func NewAssembler(name string, base uint64) *Assembler {
	return &Assembler{blob: Blob{Name: name}, next: base}
}

// PC returns the address the next emitted instruction will get.
func (a *Assembler) PC() uint64 { return a.next }

// Emit appends an instruction of the given kind and size; the target of
// direct transfers may be patched later via PatchTarget.
func (a *Assembler) Emit(kind Kind, size uint8, target uint64, comment string) uint64 {
	addr := a.next
	a.blob.Instrs = append(a.blob.Instrs, Instr{
		Addr: addr, Size: size, Kind: kind, Target: target, Comment: comment,
	})
	a.next += uint64(size)
	return addr
}

// PatchTarget sets the target of the instruction at addr.
func (a *Assembler) PatchTarget(addr, target uint64) {
	i := a.blob.IndexOf(addr)
	if i < 0 {
		panic(fmt.Sprintf("PatchTarget: no instruction at %#x", addr))
	}
	a.blob.Instrs[i].Target = target
}

// Finish returns the completed blob.
func (a *Assembler) Finish() *Blob {
	b := a.blob
	return &b
}

// AddressSpace groups blobs and resolves addresses to them.
type AddressSpace struct {
	blobs []*Blob // sorted by base
}

// Add inserts a blob; blobs must not overlap.
func (s *AddressSpace) Add(b *Blob) error {
	if err := b.Validate(); err != nil {
		return err
	}
	i := sort.Search(len(s.blobs), func(i int) bool { return s.blobs[i].Base() >= b.Base() })
	if i > 0 && s.blobs[i-1].Limit() > b.Base() {
		return fmt.Errorf("blob %s overlaps %s", b.Name, s.blobs[i-1].Name)
	}
	if i < len(s.blobs) && b.Limit() > s.blobs[i].Base() {
		return fmt.Errorf("blob %s overlaps %s", b.Name, s.blobs[i].Name)
	}
	s.blobs = append(s.blobs, nil)
	copy(s.blobs[i+1:], s.blobs[i:])
	s.blobs[i] = b
	return nil
}

// Remove deletes the blob containing addr, returning it (nil if none).
func (s *AddressSpace) Remove(addr uint64) *Blob {
	i := s.find(addr)
	if i < 0 {
		return nil
	}
	b := s.blobs[i]
	s.blobs = append(s.blobs[:i], s.blobs[i+1:]...)
	return b
}

// Lookup returns the blob containing addr, or nil.
func (s *AddressSpace) Lookup(addr uint64) *Blob {
	if i := s.find(addr); i >= 0 {
		return s.blobs[i]
	}
	return nil
}

func (s *AddressSpace) find(addr uint64) int {
	i := sort.Search(len(s.blobs), func(i int) bool { return s.blobs[i].Limit() > addr })
	if i < len(s.blobs) && s.blobs[i].Contains(addr) {
		return i
	}
	return -1
}

// Blobs returns the blobs in address order (shared slice; do not mutate).
func (s *AddressSpace) Blobs() []*Blob { return s.blobs }
