package bytecode

import (
	"strings"
	"testing"
)

// buildProg wraps a single method (plus optional extras) into a program
// with a trivial entry.
func buildProg(t *testing.T, m *Method, extra ...*Method) *Program {
	t.Helper()
	p := &Program{}
	p.AddMethod(m)
	for _, e := range extra {
		p.AddMethod(e)
	}
	entry := NewBuilder("T", "entry", 0)
	entry.Return()
	p.Entry = p.AddMethod(entry.MustBuild()).ID
	return p
}

func wantVerifyError(t *testing.T, p *Program, sub string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("expected verification error containing %q", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Errorf("error %q does not contain %q", err, sub)
	}
}

func TestVerifyEmptyMethod(t *testing.T) {
	m := &Method{Class: "T", Name: "m"}
	wantVerifyError(t, buildProg(t, m), "empty code")
}

func TestVerifyFallsOffEnd(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{{Op: NOP}}}
	wantVerifyError(t, buildProg(t, m), "falls off the end")
}

func TestVerifyBranchOutOfRange(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{
		{Op: GOTO, A: 99},
	}}
	wantVerifyError(t, buildProg(t, m), "out of range")
}

func TestVerifyLocalOutOfRange(t *testing.T) {
	m := &Method{Class: "T", Name: "m", MaxLocals: 1, Code: []Instruction{
		{Op: ILOAD, A: 5},
		{Op: POP},
		{Op: RETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "local slot")
}

func TestVerifyStackUnderflow(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{
		{Op: IADD},
		{Op: RETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "underflow")
}

func TestVerifyInconsistentDepth(t *testing.T) {
	// Two paths reach the same point with different stack depths.
	b := NewBuilder("T", "m", 1)
	b.Iload(0)
	b.If(IFEQ, "join") // taken: depth 0 at join
	b.Iconst(1)        // fallthrough: push
	b.Label("join")    // depth conflict: 0 vs 1
	b.Return()
	m := b.MustBuild()
	wantVerifyError(t, buildProg(t, m), "inconsistent stack depth")
}

func TestVerifyIreturnInVoid(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{
		{Op: ICONST, A: 1},
		{Op: IRETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "ireturn in void method")
}

func TestVerifyReturnInIntMethod(t *testing.T) {
	m := &Method{Class: "T", Name: "m", ReturnsValue: true, Code: []Instruction{
		{Op: RETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "return in int method")
}

func TestVerifyUnknownCallee(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{
		{Op: INVOKESTATIC, A: 42},
		{Op: RETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "unknown method")
}

func TestVerifyDispatchTableSignatureMismatch(t *testing.T) {
	f := NewBuilder("T", "f", 1)
	f.ReturnsValue()
	f.Iload(0).Ireturn()
	g := NewBuilder("T", "g", 2)
	g.ReturnsValue()
	g.Iload(0).Ireturn()

	p := &Program{}
	fid := p.AddMethod(f.MustBuild()).ID
	gid := p.AddMethod(g.MustBuild()).ID
	p.AddDispatchTable(fid, gid)

	caller := NewBuilder("T", "main", 0)
	caller.Iconst(1).Iconst(0).InvokeDyn(0).Pop().Return()
	p.Entry = p.AddMethod(caller.MustBuild()).ID
	wantVerifyError(t, p, "mixes signatures")
}

func TestVerifyEmptyDispatchTable(t *testing.T) {
	p := &Program{}
	p.DispatchTables = append(p.DispatchTables, nil)
	entry := NewBuilder("T", "entry", 0)
	entry.Return()
	p.Entry = p.AddMethod(entry.MustBuild()).ID
	wantVerifyError(t, p, "empty")
}

func TestVerifyHandlerBadRange(t *testing.T) {
	m := &Method{Class: "T", Name: "m",
		Code:     []Instruction{{Op: NOP}, {Op: RETURN}},
		Handlers: []Handler{{From: 1, To: 1, Target: 0}},
	}
	wantVerifyError(t, buildProg(t, m), "bad range")
}

func TestVerifyEntryMissing(t *testing.T) {
	p := &Program{Entry: 3}
	if err := Verify(p); err == nil {
		t.Fatal("expected error for missing entry")
	}
}

func TestVerifyTableswitchNoCases(t *testing.T) {
	m := &Method{Class: "T", Name: "m", Code: []Instruction{
		{Op: ICONST, A: 0},
		{Op: TABLESWITCH, A: 0, B: 2},
		{Op: RETURN},
	}}
	wantVerifyError(t, buildProg(t, m), "no cases")
}

func TestStackDepthsHandlerEntry(t *testing.T) {
	// A handler entry must have depth exactly 1 (the exception code).
	b := NewBuilder("T", "m", 0)
	b.ReturnsValue()
	b.Label("try")
	b.Iconst(4).Iconst(0).Idiv()
	b.Ireturn()
	b.Label("catch")
	b.Ireturn() // consumes the pushed exception code
	b.Handler("try", "catch", "catch", -1)
	m := b.MustBuild()
	p := buildProg(t, m)
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	depths, err := StackDepths(p, m)
	if err != nil {
		t.Fatal(err)
	}
	if depths[4] != 1 {
		t.Errorf("handler entry depth = %d, want 1", depths[4])
	}
}

func TestStackDepthsStraightLine(t *testing.T) {
	b := NewBuilder("T", "m", 0)
	b.ReturnsValue()
	b.Iconst(1) // depth 0 -> 1
	b.Iconst(2) // 1 -> 2
	b.Iadd()    // 2 -> 1
	b.Ireturn()
	m := b.MustBuild()
	p := buildProg(t, m)
	depths, err := StackDepths(p, m)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1}
	for i, w := range want {
		if depths[i] != w {
			t.Errorf("depth[%d] = %d, want %d", i, depths[i], w)
		}
	}
}

func TestVerifyWorkloadLikePrograms(t *testing.T) {
	// Verified example from the assembler suite should pass whole-program
	// verification (belt and braces for the asm path).
	p := MustAssemble(asmExample)
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
}
