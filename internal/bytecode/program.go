package bytecode

import (
	"fmt"
	"strings"
)

// MethodID identifies a method within a Program. IDs are dense indices into
// Program.Methods.
type MethodID int32

// NoMethod is the invalid MethodID.
const NoMethod MethodID = -1

// Instruction is a single bytecode instruction. The meaning of A and B
// depends on the opcode:
//
//	ICONST        A = immediate value
//	ILOAD/ISTORE  A = local slot
//	IINC          A = local slot, B = increment
//	GOTO, IF*     A = branch target (instruction index within the method)
//	TABLESWITCH   A = low key, B = default target, Targets = per-key targets
//	INVOKESTATIC  A = callee MethodID
//	INVOKEDYN     A = dispatch table index in Program.DispatchTables
//
// Targets is nil except for TABLESWITCH.
type Instruction struct {
	Op      Opcode
	A, B    int32
	Targets []int32
}

// BranchTargets returns the explicit intra-method targets of ins (excluding
// fall-through): the single target for GOTO and conditional branches, and
// all case targets plus the default for TABLESWITCH.
func (ins *Instruction) BranchTargets() []int32 {
	switch {
	case ins.Op == GOTO || ins.Op.IsCondBranch():
		return []int32{ins.A}
	case ins.Op == TABLESWITCH:
		ts := make([]int32, 0, len(ins.Targets)+1)
		ts = append(ts, ins.Targets...)
		ts = append(ts, ins.B)
		return ts
	}
	return nil
}

// String renders ins in assembler syntax (without label resolution).
func (ins Instruction) String() string {
	switch ins.Op {
	case ICONST, ILOAD, ISTORE, PROBE:
		return fmt.Sprintf("%s %d", ins.Op, ins.A)
	case IINC:
		return fmt.Sprintf("iinc %d %d", ins.A, ins.B)
	case GOTO, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE,
		IF_ICMPEQ, IF_ICMPNE, IF_ICMPLT, IF_ICMPGE, IF_ICMPGT, IF_ICMPLE:
		return fmt.Sprintf("%s @%d", ins.Op, ins.A)
	case TABLESWITCH:
		var b strings.Builder
		fmt.Fprintf(&b, "tableswitch %d default=@%d [", ins.A, ins.B)
		for i, t := range ins.Targets {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "@%d", t)
		}
		b.WriteByte(']')
		return b.String()
	case INVOKESTATIC:
		return fmt.Sprintf("invokestatic m%d", ins.A)
	case INVOKEDYN:
		return fmt.Sprintf("invokedyn t%d", ins.A)
	}
	return ins.Op.String()
}

// Handler is one entry of a method's exception-handler table: if an
// exception is raised at an instruction index in [From, To) the handler at
// Target catches it when the exception code matches Code (a Code of -1
// catches everything). Entries are searched in order; the first match wins.
type Handler struct {
	From, To int32
	Target   int32
	Code     int32
}

// Method is a single bytecode method.
type Method struct {
	ID    MethodID
	Class string
	Name  string

	// NArgs is the number of int arguments; they occupy locals [0, NArgs).
	NArgs int
	// MaxLocals is the size of the locals array (>= NArgs).
	MaxLocals int
	// ReturnsValue reports whether the method returns an int (IRETURN)
	// rather than void (RETURN).
	ReturnsValue bool

	Code     []Instruction
	Handlers []Handler
}

// FullName returns "Class.Name".
func (m *Method) FullName() string { return m.Class + "." + m.Name }

// Program is a complete bytecode program: a set of methods, the dispatch
// tables used by INVOKEDYN, and a designated entry method.
type Program struct {
	Methods []*Method
	// DispatchTables[i] lists the possible targets of `invokedyn t<i>`;
	// the runtime selects DispatchTables[i][selector mod len].
	DispatchTables [][]MethodID
	Entry          MethodID
}

// Method returns the method with the given id, or nil if out of range.
func (p *Program) Method(id MethodID) *Method {
	if id < 0 || int(id) >= len(p.Methods) {
		return nil
	}
	return p.Methods[id]
}

// MethodByName returns the first method whose FullName or bare Name matches,
// or nil.
func (p *Program) MethodByName(name string) *Method {
	for _, m := range p.Methods {
		if m.FullName() == name || m.Name == name {
			return m
		}
	}
	return nil
}

// AddMethod appends m, assigns its ID, and returns it.
func (p *Program) AddMethod(m *Method) *Method {
	m.ID = MethodID(len(p.Methods))
	p.Methods = append(p.Methods, m)
	return m
}

// AddDispatchTable registers a dispatch table and returns its index.
func (p *Program) AddDispatchTable(targets ...MethodID) int32 {
	p.DispatchTables = append(p.DispatchTables, targets)
	return int32(len(p.DispatchTables) - 1)
}

// NumInstructions returns the total static instruction count.
func (p *Program) NumInstructions() int {
	n := 0
	for _, m := range p.Methods {
		n += len(m.Code)
	}
	return n
}

// Classes returns the sorted-by-first-appearance distinct class names.
func (p *Program) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range p.Methods {
		if !seen[m.Class] {
			seen[m.Class] = true
			out = append(out, m.Class)
		}
	}
	return out
}
