package bytecode

import (
	"errors"
	"fmt"
)

// VerifyError describes a verification failure at a specific program point.
type VerifyError struct {
	Method string
	PC     int32 // -1 when the error is not tied to an instruction
	Reason string
}

func (e *VerifyError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("verify %s: %s", e.Method, e.Reason)
	}
	return fmt.Sprintf("verify %s@%d: %s", e.Method, e.PC, e.Reason)
}

func verr(m *Method, pc int32, format string, args ...any) error {
	return &VerifyError{Method: m.FullName(), PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// Verify checks the structural well-formedness of a whole program:
// every method individually (see VerifyMethod), that the entry method
// exists and takes no arguments, that call targets resolve, and that
// dispatch tables are non-empty and in range.
func Verify(p *Program) error {
	if p.Method(p.Entry) == nil {
		return errors.New("verify: entry method does not exist")
	}
	if p.Method(p.Entry).NArgs != 0 {
		return errors.New("verify: entry method must take no arguments")
	}
	for i, tbl := range p.DispatchTables {
		if len(tbl) == 0 {
			return fmt.Errorf("verify: dispatch table t%d is empty", i)
		}
		for _, id := range tbl {
			if p.Method(id) == nil {
				return fmt.Errorf("verify: dispatch table t%d references unknown method m%d", i, id)
			}
		}
	}
	for i, m := range p.Methods {
		if m.ID != MethodID(i) {
			return fmt.Errorf("verify: method %s has ID %d but index %d", m.FullName(), m.ID, i)
		}
		if err := VerifyMethod(p, m); err != nil {
			return err
		}
	}
	return nil
}

// VerifyMethod checks a single method:
//
//   - the code is non-empty and control cannot fall off the end;
//   - branch and handler targets are in range;
//   - local-variable slots are within MaxLocals;
//   - call operands resolve within the program;
//   - the operand stack has a consistent depth at every program point
//     (computed by fixpoint dataflow over all CFG edges, including
//     exception edges, which clear the stack to depth 1) and never
//     underflows;
//   - return instructions match ReturnsValue.
//
// StackDepths for the method can be retrieved separately via StackDepths.
func VerifyMethod(p *Program, m *Method) error {
	n := int32(len(m.Code))
	if n == 0 {
		return verr(m, -1, "empty code")
	}
	if m.NArgs < 0 || m.MaxLocals < m.NArgs {
		return verr(m, -1, "bad locals: nargs=%d maxlocals=%d", m.NArgs, m.MaxLocals)
	}
	if last := m.Code[n-1].Op; !last.IsTerminator() {
		return verr(m, n-1, "control falls off the end (last opcode %s)", last)
	}
	inRange := func(t int32) bool { return t >= 0 && t < n }

	for pc := int32(0); pc < n; pc++ {
		ins := &m.Code[pc]
		if int(ins.Op) >= NumOpcodes {
			return verr(m, pc, "unknown opcode %d", ins.Op)
		}
		for _, t := range ins.BranchTargets() {
			if !inRange(t) {
				return verr(m, pc, "branch target @%d out of range", t)
			}
		}
		switch ins.Op {
		case ILOAD, ISTORE, IINC:
			if ins.A < 0 || int(ins.A) >= m.MaxLocals {
				return verr(m, pc, "local slot %d out of range [0,%d)", ins.A, m.MaxLocals)
			}
		case INVOKESTATIC:
			if p.Method(MethodID(ins.A)) == nil {
				return verr(m, pc, "call to unknown method m%d", ins.A)
			}
		case INVOKEDYN:
			if ins.A < 0 || int(ins.A) >= len(p.DispatchTables) {
				return verr(m, pc, "unknown dispatch table t%d", ins.A)
			}
		case TABLESWITCH:
			if len(ins.Targets) == 0 {
				return verr(m, pc, "tableswitch with no cases")
			}
		}
	}
	for i, h := range m.Handlers {
		if !(h.From >= 0 && h.From < h.To && h.To <= n) {
			return verr(m, -1, "handler %d has bad range [%d,%d)", i, h.From, h.To)
		}
		if !inRange(h.Target) {
			return verr(m, -1, "handler %d target @%d out of range", i, h.Target)
		}
	}
	_, err := StackDepths(p, m)
	return err
}

// StackDepths computes, by forward dataflow, the operand-stack depth at the
// entry of every instruction. Unreachable instructions get depth -1. An
// error is returned if any reachable point has inconsistent depths along
// different paths, underflows the stack, or returns the wrong kind.
func StackDepths(p *Program, m *Method) ([]int, error) {
	n := len(m.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	type item struct {
		pc int32
		d  int
	}
	depth[0] = 0
	work := []item{{0, 0}}
	push := func(pc int32, d int) error {
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, item{pc, d})
			return nil
		}
		if depth[pc] != d {
			return verr(m, pc, "inconsistent stack depth: %d vs %d", depth[pc], d)
		}
		return nil
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		ins := &m.Code[it.pc]
		pops, pushes := ins.Op.StackEffect()
		if ins.Op.IsCall() {
			callee, err := calleeShape(p, ins)
			if err != nil {
				return nil, verr(m, it.pc, "%v", err)
			}
			pops, pushes = callee.pops, callee.pushes
			if ins.Op == INVOKEDYN {
				pops++ // the selector
			}
		}
		d := it.d - pops
		if d < 0 {
			return nil, verr(m, it.pc, "stack underflow (depth %d, pops %d)", it.d, pops)
		}
		d += pushes
		switch {
		case ins.Op == IRETURN:
			if !m.ReturnsValue {
				return nil, verr(m, it.pc, "ireturn in void method")
			}
		case ins.Op == RETURN:
			if m.ReturnsValue {
				return nil, verr(m, it.pc, "return in int method")
			}
		case ins.Op == ATHROW:
			// no successors
		case ins.Op == GOTO:
			if err := push(ins.A, d); err != nil {
				return nil, err
			}
		case ins.Op == TABLESWITCH:
			if err := push(ins.B, d); err != nil {
				return nil, err
			}
			for _, t := range ins.Targets {
				if err := push(t, d); err != nil {
					return nil, err
				}
			}
		case ins.Op.IsCondBranch():
			if err := push(ins.A, d); err != nil {
				return nil, err
			}
			fallthroughTo(m, it.pc)
			if it.pc+1 < int32(n) {
				if err := push(it.pc+1, d); err != nil {
					return nil, err
				}
			}
		default:
			if it.pc+1 >= int32(n) {
				return nil, verr(m, it.pc, "control falls off the end")
			}
			if err := push(it.pc+1, d); err != nil {
				return nil, err
			}
		}
	}
	// Exception handlers enter with depth 1 (the exception code on the
	// stack). Seed them and iterate once more if any were unreachable via
	// normal flow but have reachable protected regions.
	for changed := true; changed; {
		changed = false
		for _, h := range m.Handlers {
			reachable := false
			for pc := h.From; pc < h.To; pc++ {
				if depth[pc] >= 0 && m.Code[pc].Op.MayThrow() {
					reachable = true
					break
				}
			}
			if reachable && depth[h.Target] == -1 {
				depth[h.Target] = 1
				if err := flowFrom(p, m, depth, h.Target); err != nil {
					return nil, err
				}
				changed = true
			}
		}
	}
	return depth, nil
}

// fallthroughTo exists only to keep the control flow of StackDepths readable;
// conditional branches always also fall through.
func fallthroughTo(_ *Method, _ int32) {}

// flowFrom re-runs the worklist from a newly seeded program point.
func flowFrom(p *Program, m *Method, depth []int, start int32) error {
	type item struct {
		pc int32
		d  int
	}
	work := []item{{start, depth[start]}}
	push := func(pc int32, d int) error {
		if depth[pc] == -1 {
			depth[pc] = d
			work = append(work, item{pc, d})
			return nil
		}
		if depth[pc] != d {
			return verr(m, pc, "inconsistent stack depth: %d vs %d", depth[pc], d)
		}
		return nil
	}
	n := int32(len(m.Code))
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		ins := &m.Code[it.pc]
		pops, pushes := ins.Op.StackEffect()
		if ins.Op.IsCall() {
			callee, err := calleeShape(p, ins)
			if err != nil {
				return verr(m, it.pc, "%v", err)
			}
			pops, pushes = callee.pops, callee.pushes
			if ins.Op == INVOKEDYN {
				pops++
			}
		}
		d := it.d - pops
		if d < 0 {
			return verr(m, it.pc, "stack underflow (depth %d, pops %d)", it.d, pops)
		}
		d += pushes
		switch {
		case ins.Op.IsReturn() || ins.Op == ATHROW:
		case ins.Op == GOTO:
			if err := push(ins.A, d); err != nil {
				return err
			}
		case ins.Op == TABLESWITCH:
			if err := push(ins.B, d); err != nil {
				return err
			}
			for _, t := range ins.Targets {
				if err := push(t, d); err != nil {
					return err
				}
			}
		case ins.Op.IsCondBranch():
			if err := push(ins.A, d); err != nil {
				return err
			}
			if it.pc+1 < n {
				if err := push(it.pc+1, d); err != nil {
					return err
				}
			}
		default:
			if it.pc+1 >= n {
				return verr(m, it.pc, "control falls off the end")
			}
			if err := push(it.pc+1, d); err != nil {
				return err
			}
		}
	}
	return nil
}

type shape struct{ pops, pushes int }

// calleeShape resolves the stack effect of a call instruction. For
// INVOKEDYN all entries of the dispatch table must agree on arity and
// return kind (a deliberate simplification mirroring a single resolved
// signature per call site in Java bytecode).
func calleeShape(p *Program, ins *Instruction) (shape, error) {
	switch ins.Op {
	case INVOKESTATIC:
		callee := p.Method(MethodID(ins.A))
		if callee == nil {
			return shape{}, fmt.Errorf("call to unknown method m%d", ins.A)
		}
		return shape{pops: callee.NArgs, pushes: b2i(callee.ReturnsValue)}, nil
	case INVOKEDYN:
		if ins.A < 0 || int(ins.A) >= len(p.DispatchTables) {
			return shape{}, fmt.Errorf("unknown dispatch table t%d", ins.A)
		}
		tbl := p.DispatchTables[ins.A]
		if len(tbl) == 0 {
			return shape{}, fmt.Errorf("empty dispatch table t%d", ins.A)
		}
		first := p.Method(tbl[0])
		if first == nil {
			return shape{}, fmt.Errorf("dispatch table t%d references unknown method", ins.A)
		}
		for _, id := range tbl[1:] {
			m := p.Method(id)
			if m == nil {
				return shape{}, fmt.Errorf("dispatch table t%d references unknown method", ins.A)
			}
			if m.NArgs != first.NArgs || m.ReturnsValue != first.ReturnsValue {
				return shape{}, fmt.Errorf("dispatch table t%d mixes signatures", ins.A)
			}
		}
		return shape{pops: first.NArgs, pushes: b2i(first.ReturnsValue)}, nil
	}
	return shape{}, fmt.Errorf("not a call: %s", ins.Op)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
