package bytecode

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a whole program in the assembler's input syntax, so
// that Assemble(Disassemble(p)) reproduces an equivalent program. Labels are
// synthesised as L<idx> at every branch/handler target.
func Disassemble(p *Program) string {
	var b strings.Builder
	for i, tbl := range p.DispatchTables {
		fmt.Fprintf(&b, "table t%d =", i)
		for _, id := range tbl {
			fmt.Fprintf(&b, " %s", p.Methods[id].FullName())
		}
		b.WriteByte('\n')
	}
	if len(p.DispatchTables) > 0 {
		b.WriteByte('\n')
	}
	for _, m := range p.Methods {
		disassembleMethod(&b, p, m)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "entry %s\n", p.Methods[p.Entry].FullName())
	return b.String()
}

// DisassembleMethod renders one method.
func DisassembleMethod(p *Program, m *Method) string {
	var b strings.Builder
	disassembleMethod(&b, p, m)
	return b.String()
}

func disassembleMethod(b *strings.Builder, p *Program, m *Method) {
	labels := labelTargets(m)
	fmt.Fprintf(b, "method %s(%d)", m.FullName(), m.NArgs)
	if m.ReturnsValue {
		b.WriteString(" returns int")
	}
	b.WriteString(" {\n")
	lbl := func(t int32) string { return fmt.Sprintf("L%d", t) }
	for pc, ins := range m.Code {
		if labels[int32(pc)] {
			fmt.Fprintf(b, "%s:\n", lbl(int32(pc)))
		}
		b.WriteString("    ")
		switch ins.Op {
		case GOTO:
			fmt.Fprintf(b, "goto %s", lbl(ins.A))
		case TABLESWITCH:
			fmt.Fprintf(b, "tableswitch %d default=%s [", ins.A, lbl(ins.B))
			for i, t := range ins.Targets {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(lbl(t))
			}
			b.WriteByte(']')
		case INVOKESTATIC:
			fmt.Fprintf(b, "invokestatic %s", p.Methods[ins.A].FullName())
		case INVOKEDYN:
			fmt.Fprintf(b, "invokedyn t%d", ins.A)
		default:
			if ins.Op.IsCondBranch() {
				fmt.Fprintf(b, "%s %s", ins.Op, lbl(ins.A))
			} else {
				b.WriteString(ins.String())
			}
		}
		b.WriteByte('\n')
	}
	if labels[int32(len(m.Code))] {
		// A handler range may end exactly at the end of the code.
		fmt.Fprintf(b, "%s:\n", lbl(int32(len(m.Code))))
	}
	for _, h := range m.Handlers {
		code := "any"
		if h.Code >= 0 {
			code = fmt.Sprint(h.Code)
		}
		fmt.Fprintf(b, "    handler %s %s %s %s\n", lbl(h.From), lbl(h.To), lbl(h.Target), code)
	}
	b.WriteString("}\n")
}

// labelTargets returns the set of instruction indices needing labels.
func labelTargets(m *Method) map[int32]bool {
	t := make(map[int32]bool)
	for i := range m.Code {
		for _, tgt := range m.Code[i].BranchTargets() {
			t[tgt] = true
		}
	}
	for _, h := range m.Handlers {
		t[h.From] = true
		t[h.To] = true
		t[h.Target] = true
	}
	return t
}

// SortedLabelList is a test helper: the ascending list of labelled indices.
func SortedLabelList(m *Method) []int32 {
	set := labelTargets(m)
	out := make([]int32, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
