// Package bytecode defines a JVM-like stack-machine bytecode: the instruction
// set, methods, classes and whole programs, together with an assembler, a
// disassembler and a verifier.
//
// The instruction set is a deliberately faithful subset of Java bytecode
// (integer arithmetic, locals, an operand stack, conditional and unconditional
// branches, table switches, static and indirect calls, integer arrays, and
// exceptions with per-method handler tables). It is the source language for
// every other subsystem in this repository: the template interpreter and the
// JIT execute it, the ICFG used by control-flow reconstruction is built from
// it, and the Ball-Larus baselines instrument it.
package bytecode

import "fmt"

// Opcode identifies a bytecode instruction kind.
type Opcode uint8

// The instruction set. Branch directions for the IF* family follow the JVM:
// the branch is "taken" when the condition holds, otherwise execution falls
// through to the next instruction.
const (
	NOP Opcode = iota

	// Constants and local variables.
	ICONST // push immediate A
	ILOAD  // push locals[A]
	ISTORE // locals[A] = pop
	IINC   // locals[A] += B

	// Operand stack shuffling.
	DUP  // duplicate top of stack
	POP  // discard top of stack
	SWAP // swap top two stack slots

	// Integer arithmetic and bit operations.
	IADD
	ISUB
	IMUL
	IDIV // throws ArithmeticException on division by zero
	IREM // throws ArithmeticException on division by zero
	INEG
	IAND
	IOR
	IXOR
	ISHL
	ISHR

	// Control flow.
	GOTO        // jump to A
	IFEQ        // pop v; branch to A if v == 0
	IFNE        // pop v; branch to A if v != 0
	IFLT        // pop v; branch to A if v < 0
	IFGE        // pop v; branch to A if v >= 0
	IFGT        // pop v; branch to A if v > 0
	IFLE        // pop v; branch to A if v <= 0
	IF_ICMPEQ   // pop b, a; branch to A if a == b
	IF_ICMPNE   // pop b, a; branch to A if a != b
	IF_ICMPLT   // pop b, a; branch to A if a < b
	IF_ICMPGE   // pop b, a; branch to A if a >= b
	IF_ICMPGT   // pop b, a; branch to A if a > b
	IF_ICMPLE   // pop b, a; branch to A if a <= b
	TABLESWITCH // pop v; jump to Targets[v-A] if in range, else to B (default)

	// Calls and returns. INVOKESTATIC calls method A directly. INVOKEDYN
	// pops a selector and calls DispatchTables[A][selector mod len]; it is
	// the indirect-dispatch instruction that models virtual calls,
	// callbacks and reflection (the ICFG cannot always know its targets,
	// exercising the paper's missing-call-edge handling).
	INVOKESTATIC
	INVOKEDYN
	IRETURN // pop v; return v to caller
	RETURN  // return void

	// Integer arrays, backed by the VM heap.
	NEWARRAY    // pop n; push ref to new int[n]; negative n throws
	IALOAD      // pop idx, ref; push ref[idx]; bad idx/null throws
	IASTORE     // pop v, idx, ref; ref[idx] = v; bad idx/null throws
	ARRAYLENGTH // pop ref; push len(ref); null throws

	// Exceptions. ATHROW pops an exception code and unwinds to the nearest
	// matching handler (per-method handler tables, then caller frames).
	ATHROW

	// PROBE is an instrumentation hook: it invokes the probe handler
	// registered with the VM, passing A as the probe ID. The Ball-Larus
	// baselines insert PROBEs at the program points their algorithms
	// compute; application programs never contain them.
	PROBE

	numOpcodes // sentinel; keep last
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	NOP:          "nop",
	ICONST:       "iconst",
	ILOAD:        "iload",
	ISTORE:       "istore",
	IINC:         "iinc",
	DUP:          "dup",
	POP:          "pop",
	SWAP:         "swap",
	IADD:         "iadd",
	ISUB:         "isub",
	IMUL:         "imul",
	IDIV:         "idiv",
	IREM:         "irem",
	INEG:         "ineg",
	IAND:         "iand",
	IOR:          "ior",
	IXOR:         "ixor",
	ISHL:         "ishl",
	ISHR:         "ishr",
	GOTO:         "goto",
	IFEQ:         "ifeq",
	IFNE:         "ifne",
	IFLT:         "iflt",
	IFGE:         "ifge",
	IFGT:         "ifgt",
	IFLE:         "ifle",
	IF_ICMPEQ:    "if_icmpeq",
	IF_ICMPNE:    "if_icmpne",
	IF_ICMPLT:    "if_icmplt",
	IF_ICMPGE:    "if_icmpge",
	IF_ICMPGT:    "if_icmpgt",
	IF_ICMPLE:    "if_icmple",
	TABLESWITCH:  "tableswitch",
	INVOKESTATIC: "invokestatic",
	INVOKEDYN:    "invokedyn",
	IRETURN:      "ireturn",
	RETURN:       "return",
	NEWARRAY:     "newarray",
	IALOAD:       "iaload",
	IASTORE:      "iastore",
	ARRAYLENGTH:  "arraylength",
	ATHROW:       "athrow",
	PROBE:        "probe",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op#%d", uint8(op))
}

// OpcodeByName maps a mnemonic back to its Opcode. The boolean reports
// whether the mnemonic is known.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opcodesByName[name]
	return op, ok
}

var opcodesByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// IsCondBranch reports whether op is a two-way conditional branch.
func (op Opcode) IsCondBranch() bool {
	return op >= IFEQ && op <= IF_ICMPLE
}

// IsBranch reports whether op transfers control non-sequentially within a
// method (conditional branches, goto and tableswitch).
func (op Opcode) IsBranch() bool {
	return op == GOTO || op == TABLESWITCH || op.IsCondBranch()
}

// IsCall reports whether op invokes another method.
func (op Opcode) IsCall() bool { return op == INVOKESTATIC || op == INVOKEDYN }

// IsReturn reports whether op returns from the current method.
func (op Opcode) IsReturn() bool { return op == IRETURN || op == RETURN }

// IsThrow reports whether op raises an exception unconditionally.
func (op Opcode) IsThrow() bool { return op == ATHROW }

// MayThrow reports whether executing op can raise a runtime exception
// (division by zero, array bounds, negative array size, or an explicit
// throw).
func (op Opcode) MayThrow() bool {
	switch op {
	case IDIV, IREM, NEWARRAY, IALOAD, IASTORE, ARRAYLENGTH, ATHROW:
		return true
	}
	return false
}

// IsTerminator reports whether op ends a basic block.
func (op Opcode) IsTerminator() bool {
	return op.IsBranch() || op.IsReturn() || op.IsThrow()
}

// IsControl reports whether op is a control-flow instruction in the sense of
// the paper's Definition 4.2 (jump, branch, call or return); these survive
// tier-2 abstraction. ATHROW is included: it is an unconditional transfer.
func (op Opcode) IsControl() bool {
	return op.IsBranch() || op.IsCall() || op.IsReturn() || op.IsThrow()
}

// IsCallStructure reports whether op survives tier-1 abstraction
// (Definition 5.2): calls and returns only.
func (op Opcode) IsCallStructure() bool { return op.IsCall() || op.IsReturn() }

// StackEffect returns how op changes operand-stack depth: the number of
// slots popped and pushed. For INVOKESTATIC and INVOKEDYN the pop count
// depends on the callee arity and the push count on whether the callee
// returns a value; callers must consult the Program (use Method.StackDepths).
// For those two opcodes StackEffect returns pops = -1 and pushes = -1.
func (op Opcode) StackEffect() (pops, pushes int) {
	switch op {
	case NOP, GOTO, IINC, PROBE:
		return 0, 0
	case ICONST, ILOAD:
		return 0, 1
	case ISTORE, POP, IFEQ, IFNE, IFLT, IFGE, IFGT, IFLE, TABLESWITCH, IRETURN, ATHROW:
		return 1, 0
	case DUP:
		return 1, 2
	case SWAP:
		return 2, 2
	case IADD, ISUB, IMUL, IDIV, IREM, IAND, IOR, IXOR, ISHL, ISHR:
		return 2, 1
	case INEG, NEWARRAY, ARRAYLENGTH:
		return 1, 1
	case IF_ICMPEQ, IF_ICMPNE, IF_ICMPLT, IF_ICMPGE, IF_ICMPGT, IF_ICMPLE:
		return 2, 0
	case IALOAD:
		return 2, 1
	case IASTORE:
		return 3, 0
	case RETURN:
		return 0, 0
	case INVOKESTATIC, INVOKEDYN:
		return -1, -1
	}
	return 0, 0
}
