package bytecode

import (
	"strings"
	"testing"
)

const asmExample = `
# The paper's Figure 2(a) program.
method Test.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}

method Test.main(0) {
    iconst 1
    iconst 7
    invokestatic Test.fun
    pop
    return
}

entry Test.main
`

func TestAssembleExample(t *testing.T) {
	p, err := Assemble(asmExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Methods) != 2 {
		t.Fatalf("got %d methods", len(p.Methods))
	}
	fun := p.MethodByName("Test.fun")
	if fun == nil || !fun.ReturnsValue || fun.NArgs != 2 {
		t.Fatalf("bad fun: %+v", fun)
	}
	if fun.Code[1].Op != IFEQ || fun.Code[1].A != 7 {
		t.Errorf("ifeq target = %d, want 7", fun.Code[1].A)
	}
	if p.Methods[p.Entry].Name != "main" {
		t.Error("entry not main")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p1 := MustAssemble(asmExample)
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if Disassemble(p2) != text {
		t.Error("disassembly not a fixed point")
	}
}

func TestDisassembleRoundTripWithTablesAndHandlers(t *testing.T) {
	src := `
table t0 = A.f A.g

method A.f(1) returns int {
    iload 0
    ireturn
}

method A.g(1) returns int {
Ltry:
    iconst 5
    iload 0
    idiv
    tableswitch 0 default=Ld [La Lb]
La:
    iconst 1
    ireturn
Lb:
    iconst 2
    ireturn
Ld:
    iconst 0
    ireturn
Lcatch:
    ireturn
    handler Ltry La Lcatch any
}

method A.main(0) {
    iconst 3
    iconst 0
    invokedyn t0
    pop
    return
}

entry A.main
`
	p1 := MustAssemble(src)
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(p2.DispatchTables) != 1 || len(p2.DispatchTables[0]) != 2 {
		t.Error("dispatch table lost in round trip")
	}
	g := p2.MethodByName("A.g")
	if len(g.Handlers) != 1 || g.Handlers[0].Code != -1 {
		t.Errorf("handlers lost: %+v", g.Handlers)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no entry", "method A.m(0) {\n return\n}\n", "no entry"},
		{"unknown entry", "method A.m(0) {\n return\n}\nentry B.x\n", "not found"},
		{"bad mnemonic", "method A.m(0) {\n zorp\n return\n}\nentry A.m\n", "unknown mnemonic"},
		{"undefined label", "method A.m(0) {\n goto Lx\n return\n}\nentry A.m\n", "undefined label"},
		{"unknown call", "method A.m(0) {\n invokestatic B.f\n return\n}\nentry A.m\n", "unknown method"},
		{"unknown table", "method A.m(0) {\n iconst 0\n invokedyn t9\n return\n}\nentry A.m\n", "unknown table"},
		{"dup method", "method A.m(0) {\n return\n}\nmethod A.m(0) {\n return\n}\nentry A.m\n", "duplicate method"},
		// An unclosed method swallows following directives as mnemonics.
		{"unclosed", "method A.m(0) {\n return\nentry A.m\n", "unknown mnemonic"},
		{"bad header", "method A.m {\n return\n}\nentry A.m\n", "bad method header"},
		{"entry with args", "method A.m(1) {\n return\n}\nentry A.m\n", "no arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestAssembleComments(t *testing.T) {
	src := `
# leading comment
method A.m(0) { # trailing comment
    iconst 1   # value
    pop
    return
}
entry A.m
`
	p := MustAssemble(src)
	if len(p.Methods[0].Code) != 3 {
		t.Errorf("comments altered code: %d instrs", len(p.Methods[0].Code))
	}
}

func TestAssembleLabelOnlyLineAndSameLine(t *testing.T) {
	src := `
method A.m(0) {
    goto L1
L1: L2:
    nop
    goto L3
L3: return
}
entry A.m
`
	p := MustAssemble(src)
	m := p.Methods[0]
	if m.Code[0].A != 1 {
		t.Errorf("L1 at %d, want 1", m.Code[0].A)
	}
	if m.Code[2].A != 3 {
		t.Errorf("L3 at %d, want 3", m.Code[2].A)
	}
}
