package bytecode

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that anything it
// accepts verifies, disassembles, and reassembles to a fixed point. The
// seed corpus covers the syntax space; `go test -fuzz=FuzzAssemble` explores
// further.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		asmExample,
		"",
		"entry A.m\n",
		"method A.m(0) {\n return\n}\nentry A.m\n",
		"method A.m(0) {\n iconst 1\n pop\n return\n}\nentry A.m\n",
		"table t0 = A.m\nmethod A.m(1) returns int {\n iload 0\n ireturn\n}\nentry A.m\n",
		"method A.m(0) {\nL: goto L\n}\nentry A.m\n",
		"method A.m(0) {\n tableswitch 0 default=L [L]\nL: return\n}\nentry A.m\n",
		"method A.m(0) {\n iconst -2147483648\n pop\n return\n}\nentry A.m\n",
		"# only a comment\n",
		"method A.m(0) {\n handler L L L any\nL: return\n}\nentry A.m\n",
		strings.Repeat("method A.m(0) {\n return\n}\n", 2) + "entry A.m\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := Verify(p); err != nil {
			t.Fatalf("accepted program fails verification: %v", err)
		}
		text := Disassemble(p)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
		if Disassemble(p2) != text {
			t.Fatal("disassembly is not a fixed point")
		}
	})
}
