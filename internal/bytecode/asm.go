package bytecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly format into a Program and verifies
// it. The format, line oriented, with '#' comments:
//
//	table t0 = Worker.step Worker.tick     # INVOKEDYN dispatch table
//
//	method Test.fun(2) returns int {       # 2 int args; "returns int" optional
//	    iload 0
//	    ifeq Lelse
//	    iload 1
//	    iconst 1
//	    iadd
//	    istore 1
//	    goto Ljoin
//	Lelse:
//	    iload 1
//	    iconst 2
//	    isub
//	    istore 1
//	Ljoin:
//	    iload 1
//	    ireturn
//	    handler Lelse Ljoin Lcatch any     # optional; code number or "any"
//	}
//
//	entry Test.main
//
// Branches name labels; calls name methods (Class.Name); tableswitch is
// written `tableswitch <low> default=<label> [<label> ...]`.
func Assemble(src string) (*Program, error) {
	p := &Program{Entry: NoMethod}
	a := &assembler{prog: p}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "table "):
			if err := a.parseTable(line, i+1); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "method "):
			end, err := a.parseMethod(lines, i)
			if err != nil {
				return nil, err
			}
			i = end
		case strings.HasPrefix(line, "entry "):
			a.entryName = strings.TrimSpace(strings.TrimPrefix(line, "entry "))
		default:
			return nil, fmt.Errorf("asm line %d: unexpected %q", i+1, line)
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	if err := Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble but panics on error; for tests and examples.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	prog      *Program
	entryName string
	// callFixups patch INVOKESTATIC operands from method names after all
	// methods are known.
	callFixups []callFixup
	// tableFixups patch dispatch-table entries from method names.
	tableFixups []tableFixup
	tableIndex  map[string]int32
}

type callFixup struct {
	m    *Method
	pc   int32
	name string
	line int
}

type tableFixup struct {
	table int
	slot  int
	name  string
	line  int
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (a *assembler) parseTable(line string, lineno int) error {
	// table tN = Name Name ...
	rest := strings.TrimPrefix(line, "table ")
	eq := strings.IndexByte(rest, '=')
	if eq < 0 {
		return fmt.Errorf("asm line %d: table needs '='", lineno)
	}
	name := strings.TrimSpace(rest[:eq])
	if a.tableIndex == nil {
		a.tableIndex = make(map[string]int32)
	}
	if _, dup := a.tableIndex[name]; dup {
		return fmt.Errorf("asm line %d: duplicate table %q", lineno, name)
	}
	idx := len(a.prog.DispatchTables)
	a.tableIndex[name] = int32(idx)
	entries := strings.Fields(rest[eq+1:])
	if len(entries) == 0 {
		return fmt.Errorf("asm line %d: empty table %q", lineno, name)
	}
	a.prog.DispatchTables = append(a.prog.DispatchTables, make([]MethodID, len(entries)))
	for slot, e := range entries {
		a.tableFixups = append(a.tableFixups, tableFixup{table: idx, slot: slot, name: e, line: lineno})
	}
	return nil
}

// parseMethod consumes lines[start..] up to the closing '}' and returns the
// index of that line.
func (a *assembler) parseMethod(lines []string, start int) (int, error) {
	header := stripComment(lines[start])
	// method Class.Name(N) [returns int] {
	rest := strings.TrimPrefix(header, "method ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open || !strings.HasSuffix(rest, "{") {
		return 0, fmt.Errorf("asm line %d: bad method header %q", start+1, header)
	}
	full := strings.TrimSpace(rest[:open])
	dot := strings.LastIndexByte(full, '.')
	if dot <= 0 || dot == len(full)-1 {
		return 0, fmt.Errorf("asm line %d: method name must be Class.Name, got %q", start+1, full)
	}
	nargs, err := strconv.Atoi(strings.TrimSpace(rest[open+1 : closeP]))
	if err != nil || nargs < 0 {
		return 0, fmt.Errorf("asm line %d: bad arg count in %q", start+1, header)
	}
	tail := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest[closeP+1:]), "{"))
	returnsInt := false
	switch tail {
	case "":
	case "returns int":
		returnsInt = true
	default:
		return 0, fmt.Errorf("asm line %d: bad method header tail %q", start+1, tail)
	}

	b := NewBuilder(full[:dot], full[dot+1:], nargs)
	if returnsInt {
		b.ReturnsValue()
	}
	m := b.m // builder method, for call fixups against instruction indices

	i := start + 1
	for ; i < len(lines); i++ {
		line := stripComment(lines[i])
		if line == "" {
			continue
		}
		if line == "}" {
			built, err := b.Build()
			if err != nil {
				return 0, fmt.Errorf("asm line %d: %v", i+1, err)
			}
			a.prog.AddMethod(built)
			return i, nil
		}
		// Labels may prefix an instruction on the same line.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 || strings.ContainsAny(line[:colon], " \t") {
				break
			}
			b.Label(line[:colon])
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.parseInstr(b, m, line, i+1); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("asm line %d: method %s not closed", start+1, full)
}

func (a *assembler) parseInstr(b *Builder, m *Method, line string, lineno int) error {
	fields := strings.Fields(line)
	mnemonic := fields[0]
	argn := func(i int) (int32, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("asm line %d: %s needs operand %d", lineno, mnemonic, i)
		}
		v, err := strconv.ParseInt(fields[i], 10, 32)
		if err != nil {
			return 0, fmt.Errorf("asm line %d: bad operand %q", lineno, fields[i])
		}
		return int32(v), nil
	}

	if mnemonic == "handler" {
		// handler From To Target code|any
		if len(fields) != 5 {
			return fmt.Errorf("asm line %d: handler needs 4 operands", lineno)
		}
		code := int32(-1)
		if fields[4] != "any" {
			v, err := strconv.ParseInt(fields[4], 10, 32)
			if err != nil {
				return fmt.Errorf("asm line %d: bad handler code %q", lineno, fields[4])
			}
			code = int32(v)
		}
		b.Handler(fields[1], fields[2], fields[3], code)
		return nil
	}

	op, ok := OpcodeByName(mnemonic)
	if !ok {
		return fmt.Errorf("asm line %d: unknown mnemonic %q", lineno, mnemonic)
	}
	switch op {
	case ICONST:
		v, err := argn(1)
		if err != nil {
			return err
		}
		b.Iconst(v)
	case PROBE:
		v, err := argn(1)
		if err != nil {
			return err
		}
		b.Probe(v)
	case ILOAD, ISTORE:
		v, err := argn(1)
		if err != nil {
			return err
		}
		if op == ILOAD {
			b.Iload(v)
		} else {
			b.Istore(v)
		}
	case IINC:
		s, err := argn(1)
		if err != nil {
			return err
		}
		d, err := argn(2)
		if err != nil {
			return err
		}
		b.Iinc(s, d)
	case GOTO:
		if len(fields) < 2 {
			return fmt.Errorf("asm line %d: goto needs a label", lineno)
		}
		b.Goto(fields[1])
	case TABLESWITCH:
		// tableswitch <low> default=<label> [<l1> <l2> ...]
		low, err := argn(1)
		if err != nil {
			return err
		}
		if len(fields) < 3 || !strings.HasPrefix(fields[2], "default=") {
			return fmt.Errorf("asm line %d: tableswitch needs default=<label>", lineno)
		}
		def := strings.TrimPrefix(fields[2], "default=")
		rest := strings.TrimSpace(strings.Join(fields[3:], " "))
		if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
			return fmt.Errorf("asm line %d: tableswitch needs [labels]", lineno)
		}
		cases := strings.Fields(rest[1 : len(rest)-1])
		if len(cases) == 0 {
			return fmt.Errorf("asm line %d: tableswitch with no cases", lineno)
		}
		b.TableSwitch(low, def, cases...)
	case INVOKESTATIC:
		if len(fields) < 2 {
			return fmt.Errorf("asm line %d: invokestatic needs a method name", lineno)
		}
		b.InvokeStatic(NoMethod) // patched in resolve
		a.callFixups = append(a.callFixups, callFixup{m: m, pc: int32(len(m.Code) - 1), name: fields[1], line: lineno})
	case INVOKEDYN:
		if len(fields) < 2 {
			return fmt.Errorf("asm line %d: invokedyn needs a table name", lineno)
		}
		idx, ok := a.tableIndex[fields[1]]
		if !ok {
			return fmt.Errorf("asm line %d: unknown table %q", lineno, fields[1])
		}
		b.InvokeDyn(idx)
	default:
		if op.IsCondBranch() {
			if len(fields) < 2 {
				return fmt.Errorf("asm line %d: %s needs a label", lineno, mnemonic)
			}
			b.If(op, fields[1])
		} else {
			b.emit(Instruction{Op: op})
		}
	}
	return nil
}

func (a *assembler) resolve() error {
	byName := make(map[string]MethodID, len(a.prog.Methods))
	for _, m := range a.prog.Methods {
		if _, dup := byName[m.FullName()]; dup {
			return fmt.Errorf("asm: duplicate method %s", m.FullName())
		}
		byName[m.FullName()] = m.ID
	}
	for _, f := range a.callFixups {
		id, ok := byName[f.name]
		if !ok {
			return fmt.Errorf("asm line %d: call to unknown method %q", f.line, f.name)
		}
		f.m.Code[f.pc].A = int32(id)
	}
	for _, f := range a.tableFixups {
		id, ok := byName[f.name]
		if !ok {
			return fmt.Errorf("asm line %d: table entry references unknown method %q", f.line, f.name)
		}
		a.prog.DispatchTables[f.table][f.slot] = id
	}
	if a.entryName == "" {
		return fmt.Errorf("asm: no entry directive")
	}
	id, ok := byName[a.entryName]
	if !ok {
		return fmt.Errorf("asm: entry method %q not found", a.entryName)
	}
	a.prog.Entry = id
	return nil
}
