package bytecode

import (
	"strings"
	"testing"
)

func TestBuilderLabelsResolve(t *testing.T) {
	b := NewBuilder("T", "m", 1)
	b.Iload(0)
	b.If(IFEQ, "end")
	b.Iinc(0, 1)
	b.Label("end")
	b.Return()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Code[1].A != 3 {
		t.Errorf("branch target %d, want 3", m.Code[1].A)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("T", "m", 0)
	b.Goto("nowhere")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("T", "m", 0)
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Return()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("got %v", err)
	}
}

func TestBuilderTracksMaxLocals(t *testing.T) {
	b := NewBuilder("T", "m", 1)
	b.Iconst(5)
	b.Istore(7)
	b.Return()
	m := b.MustBuild()
	if m.MaxLocals != 8 {
		t.Errorf("MaxLocals = %d, want 8", m.MaxLocals)
	}
}

func TestBuilderTableSwitch(t *testing.T) {
	b := NewBuilder("T", "m", 1)
	b.Iload(0)
	b.TableSwitch(10, "def", "c0", "c1")
	b.Label("c0")
	b.Return()
	b.Label("c1")
	b.Return()
	b.Label("def")
	b.Return()
	m := b.MustBuild()
	sw := m.Code[1]
	if sw.A != 10 || sw.B != 4 || sw.Targets[0] != 2 || sw.Targets[1] != 3 {
		t.Errorf("switch resolved wrong: %+v", sw)
	}
}

func TestBuilderHandlerResolution(t *testing.T) {
	b := NewBuilder("T", "m", 0)
	b.Label("a")
	b.Iconst(1).Iconst(0).Idiv().Pop()
	b.Label("b")
	b.Return()
	b.Label("h")
	b.Pop()
	b.Return()
	b.Handler("a", "b", "h", 1)
	m := b.MustBuild()
	h := m.Handlers[0]
	if h.From != 0 || h.To != 4 || h.Target != 5 || h.Code != 1 {
		t.Errorf("handler resolved wrong: %+v", h)
	}
}

func TestBuilderIfRejectsNonCond(t *testing.T) {
	b := NewBuilder("T", "m", 0)
	b.If(GOTO, "x")
	b.Label("x")
	b.Return()
	if _, err := b.Build(); err == nil {
		t.Fatal("If(GOTO) should fail")
	}
}

func TestBranchTargets(t *testing.T) {
	goto5 := Instruction{Op: GOTO, A: 5}
	if ts := goto5.BranchTargets(); len(ts) != 1 || ts[0] != 5 {
		t.Errorf("goto targets %v", ts)
	}
	sw := Instruction{Op: TABLESWITCH, A: 0, B: 9, Targets: []int32{3, 4}}
	if ts := sw.BranchTargets(); len(ts) != 3 || ts[2] != 9 {
		t.Errorf("switch targets %v", ts)
	}
	lin := Instruction{Op: IADD}
	if ts := lin.BranchTargets(); ts != nil {
		t.Errorf("linear targets %v", ts)
	}
}

func TestProgramHelpers(t *testing.T) {
	p := MustAssemble(asmExample)
	if p.Method(MethodID(len(p.Methods))) != nil {
		t.Error("out-of-range method lookup should be nil")
	}
	if p.Method(-1) != nil {
		t.Error("negative method lookup should be nil")
	}
	if p.MethodByName("fun") == nil {
		t.Error("bare-name lookup failed")
	}
	if p.NumInstructions() == 0 {
		t.Error("no instructions counted")
	}
	if got := p.Classes(); len(got) != 1 || got[0] != "Test" {
		t.Errorf("classes = %v", got)
	}
}
