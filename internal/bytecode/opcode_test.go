package bytecode

import (
	"testing"
	"testing/quick"
)

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("opcode %d has no name", op)
		}
		got, ok := OpcodeByName(name)
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v", name, got, ok, op)
		}
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Error("unknown mnemonic resolved")
	}
}

func TestOpcodeClassesAreConsistent(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.IsCondBranch() && !op.IsBranch() {
			t.Errorf("%s: cond branch must be a branch", op)
		}
		if op.IsBranch() && !op.IsControl() {
			t.Errorf("%s: branch must be control", op)
		}
		if op.IsCall() && !op.IsControl() {
			t.Errorf("%s: call must be control", op)
		}
		if op.IsReturn() && !op.IsControl() {
			t.Errorf("%s: return must be control", op)
		}
		if op.IsCallStructure() && !op.IsControl() {
			t.Errorf("%s: tier-1 instruction must be control", op)
		}
		if op.IsCall() != (op == INVOKESTATIC || op == INVOKEDYN) {
			t.Errorf("%s: IsCall inconsistent", op)
		}
		if op.IsTerminator() && !(op.IsBranch() || op.IsReturn() || op.IsThrow()) {
			t.Errorf("%s: terminator classification wrong", op)
		}
	}
}

func TestCondBranchSet(t *testing.T) {
	want := map[Opcode]bool{
		IFEQ: true, IFNE: true, IFLT: true, IFGE: true, IFGT: true, IFLE: true,
		IF_ICMPEQ: true, IF_ICMPNE: true, IF_ICMPLT: true,
		IF_ICMPGE: true, IF_ICMPGT: true, IF_ICMPLE: true,
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.IsCondBranch() != want[op] {
			t.Errorf("%s: IsCondBranch = %v", op, op.IsCondBranch())
		}
	}
}

func TestStackEffectBounds(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		pops, pushes := op.StackEffect()
		if op.IsCall() {
			if pops != -1 || pushes != -1 {
				t.Errorf("%s: calls must report unknown effect", op)
			}
			continue
		}
		if pops < 0 || pops > 3 || pushes < 0 || pushes > 2 {
			t.Errorf("%s: implausible stack effect (%d, %d)", op, pops, pushes)
		}
	}
}

func TestStackEffectQuickNonCallStable(t *testing.T) {
	// Property: StackEffect is a pure function.
	f := func(raw uint8) bool {
		op := Opcode(raw % uint8(numOpcodes))
		p1, q1 := op.StackEffect()
		p2, q2 := op.StackEffect()
		return p1 == p2 && q1 == q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMayThrowSet(t *testing.T) {
	for _, op := range []Opcode{IDIV, IREM, NEWARRAY, IALOAD, IASTORE, ARRAYLENGTH, ATHROW} {
		if !op.MayThrow() {
			t.Errorf("%s should may-throw", op)
		}
	}
	for _, op := range []Opcode{IADD, GOTO, ICONST, INVOKESTATIC, PROBE} {
		if op.MayThrow() {
			t.Errorf("%s should not may-throw", op)
		}
	}
}
