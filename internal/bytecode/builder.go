package bytecode

import "fmt"

// Builder constructs a Method programmatically with symbolic labels, so that
// callers (tests, the workload generator, the baselines' instrumenters) do
// not juggle raw instruction indices.
type Builder struct {
	m       *Method
	labels  map[string]int32
	fixups  []fixup
	nlocals int
	err     error
}

type fixup struct {
	pc    int32  // instruction whose operand needs patching
	label string // label to resolve
	tsIdx int    // operand selector: -1 = A, -2 = B, >= 0 Targets index,
	// -3/-4/-5 = handler From/To/Target (pc then encodes the handler)
}

// NewBuilder starts a method with the given class and name, taking nargs int
// arguments.
func NewBuilder(class, name string, nargs int) *Builder {
	return &Builder{
		m: &Method{
			ID:        NoMethod,
			Class:     class,
			Name:      name,
			NArgs:     nargs,
			MaxLocals: nargs,
		},
		labels:  make(map[string]int32),
		nlocals: nargs,
	}
}

func (b *Builder) emit(ins Instruction) *Builder {
	b.m.Code = append(b.m.Code, ins)
	return b
}

func (b *Builder) pc() int32 { return int32(len(b.m.Code)) }

func (b *Builder) touchLocal(slot int32) {
	if int(slot)+1 > b.nlocals {
		b.nlocals = int(slot) + 1
	}
}

// Label binds name to the next instruction emitted.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("duplicate label %q", name)
	}
	b.labels[name] = b.pc()
	return b
}

// Nop, stack, arithmetic and array emitters.
func (b *Builder) Nop() *Builder         { return b.emit(Instruction{Op: NOP}) }
func (b *Builder) Dup() *Builder         { return b.emit(Instruction{Op: DUP}) }
func (b *Builder) Pop() *Builder         { return b.emit(Instruction{Op: POP}) }
func (b *Builder) Swap() *Builder        { return b.emit(Instruction{Op: SWAP}) }
func (b *Builder) Iadd() *Builder        { return b.emit(Instruction{Op: IADD}) }
func (b *Builder) Isub() *Builder        { return b.emit(Instruction{Op: ISUB}) }
func (b *Builder) Imul() *Builder        { return b.emit(Instruction{Op: IMUL}) }
func (b *Builder) Idiv() *Builder        { return b.emit(Instruction{Op: IDIV}) }
func (b *Builder) Irem() *Builder        { return b.emit(Instruction{Op: IREM}) }
func (b *Builder) Ineg() *Builder        { return b.emit(Instruction{Op: INEG}) }
func (b *Builder) Iand() *Builder        { return b.emit(Instruction{Op: IAND}) }
func (b *Builder) Ior() *Builder         { return b.emit(Instruction{Op: IOR}) }
func (b *Builder) Ixor() *Builder        { return b.emit(Instruction{Op: IXOR}) }
func (b *Builder) Ishl() *Builder        { return b.emit(Instruction{Op: ISHL}) }
func (b *Builder) Ishr() *Builder        { return b.emit(Instruction{Op: ISHR}) }
func (b *Builder) NewArray() *Builder    { return b.emit(Instruction{Op: NEWARRAY}) }
func (b *Builder) Iaload() *Builder      { return b.emit(Instruction{Op: IALOAD}) }
func (b *Builder) Iastore() *Builder     { return b.emit(Instruction{Op: IASTORE}) }
func (b *Builder) ArrayLength() *Builder { return b.emit(Instruction{Op: ARRAYLENGTH}) }
func (b *Builder) Athrow() *Builder      { return b.emit(Instruction{Op: ATHROW}) }
func (b *Builder) Ireturn() *Builder     { return b.emit(Instruction{Op: IRETURN}) }
func (b *Builder) Return() *Builder      { return b.emit(Instruction{Op: RETURN}) }

// Op emits a no-operand instruction of the given opcode (for callers
// choosing opcodes dynamically, e.g. generators).
func (b *Builder) Op(op Opcode) *Builder { return b.emit(Instruction{Op: op}) }

// Probe emits an instrumentation probe with the given ID.
func (b *Builder) Probe(id int32) *Builder { return b.emit(Instruction{Op: PROBE, A: id}) }

// Iconst pushes v.
func (b *Builder) Iconst(v int32) *Builder { return b.emit(Instruction{Op: ICONST, A: v}) }

// Iload pushes local slot.
func (b *Builder) Iload(slot int32) *Builder {
	b.touchLocal(slot)
	return b.emit(Instruction{Op: ILOAD, A: slot})
}

// Istore pops into local slot.
func (b *Builder) Istore(slot int32) *Builder {
	b.touchLocal(slot)
	return b.emit(Instruction{Op: ISTORE, A: slot})
}

// Iinc adds delta to local slot.
func (b *Builder) Iinc(slot, delta int32) *Builder {
	b.touchLocal(slot)
	return b.emit(Instruction{Op: IINC, A: slot, B: delta})
}

// Goto jumps to label.
func (b *Builder) Goto(label string) *Builder { return b.branch(GOTO, label) }

// If emits a conditional branch of the given opcode to label.
func (b *Builder) If(op Opcode, label string) *Builder {
	if !op.IsCondBranch() && b.err == nil {
		b.err = fmt.Errorf("If: %s is not a conditional branch", op)
	}
	return b.branch(op, label)
}

func (b *Builder) branch(op Opcode, label string) *Builder {
	b.emit(Instruction{Op: op})
	pc := b.pc() - 1
	b.fixups = append(b.fixups, fixup{pc: pc, label: label, tsIdx: -1})
	return b
}

// TableSwitch pops a value v and jumps to caseLabels[v-low], or to
// defaultLabel when v is out of range.
func (b *Builder) TableSwitch(low int32, defaultLabel string, caseLabels ...string) *Builder {
	b.emit(Instruction{Op: TABLESWITCH, A: low, Targets: make([]int32, len(caseLabels))})
	pc := b.pc() - 1
	b.fixups = append(b.fixups, fixup{pc: pc, label: defaultLabel, tsIdx: -2})
	for i, l := range caseLabels {
		b.fixups = append(b.fixups, fixup{pc: pc, label: l, tsIdx: i})
	}
	return b
}

// InvokeStatic calls the method with the given id. IDs may be assigned after
// building; use InvokeStaticLate with a patch list if needed.
func (b *Builder) InvokeStatic(id MethodID) *Builder {
	return b.emit(Instruction{Op: INVOKESTATIC, A: int32(id)})
}

// InvokeDyn pops a selector and calls through dispatch table `table`.
func (b *Builder) InvokeDyn(table int32) *Builder {
	return b.emit(Instruction{Op: INVOKEDYN, A: table})
}

// Handler registers an exception handler: exceptions with the given code
// (-1 for any) raised in [fromLabel, toLabel) are routed to handlerLabel.
// Labels are resolved at Build time; all three must be bound by then.
func (b *Builder) Handler(fromLabel, toLabel, handlerLabel string, code int32) *Builder {
	b.m.Handlers = append(b.m.Handlers, Handler{Code: code})
	idx := len(b.m.Handlers) - 1
	b.fixups = append(b.fixups,
		fixup{pc: int32(-idx - 1), label: fromLabel, tsIdx: -3},
		fixup{pc: int32(-idx - 1), label: toLabel, tsIdx: -4},
		fixup{pc: int32(-idx - 1), label: handlerLabel, tsIdx: -5},
	)
	return b
}

// ReturnsValue marks the method as returning an int.
func (b *Builder) ReturnsValue() *Builder {
	b.m.ReturnsValue = true
	return b
}

// Build resolves labels and returns the completed method.
func (b *Builder) Build() (*Method, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%s: undefined label %q", b.m.FullName(), f.label)
		}
		if f.pc < 0 { // handler fixup
			h := &b.m.Handlers[int(-f.pc)-1]
			switch f.tsIdx {
			case -3:
				h.From = target
			case -4:
				h.To = target
			case -5:
				h.Target = target
			}
			continue
		}
		ins := &b.m.Code[f.pc]
		switch f.tsIdx {
		case -1:
			ins.A = target
		case -2:
			ins.B = target
		default:
			ins.Targets[f.tsIdx] = target
		}
	}
	if b.nlocals > b.m.MaxLocals {
		b.m.MaxLocals = b.nlocals
	}
	return b.m, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose input is known-good by construction.
func (b *Builder) MustBuild() *Method {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
