// Package fsatomic writes files crash-atomically: the data goes to a
// temporary file in the destination's directory, is fsynced, and is renamed
// over the destination, so a reader (or a process restarted after a crash)
// sees either the complete old contents or the complete new contents —
// never a torn mixture. The ingest server's durable frontier and the
// streaming session checkpoint both depend on this property.
package fsatomic

import (
	"os"
	"path/filepath"

	"jportal/internal/iofault"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in path's directory (rename is only atomic within a filesystem),
// fsynced before the rename, and the directory is fsynced after it so the
// rename itself survives a crash.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(iofault.OS, path, data, perm)
}

// WriteFileFS is WriteFile over an explicit filesystem, so the storage
// fault injector can sit beneath the atomic commit: every create, write
// and fsync in the sequence goes through fsys, and a fault at any step
// leaves the destination untouched (the temp file is removed, the rename
// never happens).
func WriteFileFS(fsys iofault.FS, path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	cleanup := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	// Fsync the parent directory after the rename: without it a crash
	// immediately after commit can lose the directory entry even though
	// the inode's data is durable. Filesystems that cannot fsync a
	// directory (some network mounts) return an error from Sync; the
	// rename itself still happened, so that error is not fatal to
	// atomicity, only to durability — it is still reported.
	return fsys.SyncDir(dir)
}
