package fsatomic

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"jportal/internal/iofault"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "one" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	if err := WriteFile(path, []byte("two, longer"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "two, longer" {
		t.Fatalf("after replace: %q", got)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state" {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

// spyFS records the operation sequence WriteFileFS performs, delegating
// everything to the real filesystem.
type spyFS struct {
	ops []string
}

func (s *spyFS) OpenFile(name string, flag int, perm os.FileMode) (iofault.File, error) {
	s.ops = append(s.ops, "open")
	return iofault.OS.OpenFile(name, flag, perm)
}

func (s *spyFS) CreateTemp(dir, pattern string) (iofault.File, error) {
	s.ops = append(s.ops, "createtemp")
	f, err := iofault.OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &spyFile{File: f, spy: s}, nil
}

func (s *spyFS) ReadFile(name string) ([]byte, error) {
	s.ops = append(s.ops, "readfile")
	return iofault.OS.ReadFile(name)
}

func (s *spyFS) Rename(oldpath, newpath string) error {
	s.ops = append(s.ops, "rename")
	return iofault.OS.Rename(oldpath, newpath)
}

func (s *spyFS) Remove(name string) error {
	s.ops = append(s.ops, "remove")
	return iofault.OS.Remove(name)
}

func (s *spyFS) SyncDir(dir string) error {
	s.ops = append(s.ops, "syncdir:"+filepath.Base(dir))
	return iofault.OS.SyncDir(dir)
}

type spyFile struct {
	iofault.File
	spy *spyFS
}

func (f *spyFile) Sync() error {
	f.spy.ops = append(f.spy.ops, "fsync")
	return f.File.Sync()
}

// TestWriteFileSyncsDirAfterRename is the durability regression test: the
// commit sequence must fsync the temp file BEFORE the rename and fsync the
// parent directory AFTER it — a crash right after the rename must not be
// able to lose the directory entry.
func TestWriteFileSyncsDirAfterRename(t *testing.T) {
	dir := t.TempDir()
	spy := &spyFS{}
	if err := WriteFileFS(spy, filepath.Join(dir, "state"), []byte("payload"), 0o644); err != nil {
		t.Fatalf("WriteFileFS: %v", err)
	}
	want := []string{"createtemp", "fsync", "rename", "syncdir:" + filepath.Base(dir)}
	if len(spy.ops) != len(want) {
		t.Fatalf("op sequence = %v, want %v", spy.ops, want)
	}
	for i := range want {
		if spy.ops[i] != want[i] {
			t.Fatalf("op[%d] = %q, want %q (full sequence %v)", i, spy.ops[i], want[i], spy.ops)
		}
	}
}

// TestWriteFileFaultLeavesDestinationIntact pins the atomicity guarantee
// under injected storage faults: whatever step fails — create, write,
// fsync — the destination keeps its old contents and no temp file is left
// behind.
func TestWriteFileFaultLeavesDestinationIntact(t *testing.T) {
	for _, m := range []iofault.Matrix{
		{Seed: 1, ENOSPC: 1},
		{Seed: 1, WriteErr: 1},
		{Seed: 1, TornWrite: 1},
		{Seed: 1, SyncErr: 1},
	} {
		dir := t.TempDir()
		path := filepath.Join(dir, "state")
		if err := WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		fsys := iofault.NewInjector(m, nil).FS("t")
		err := WriteFileFS(fsys, path, []byte("new and longer"), 0o644)
		if err == nil {
			t.Fatalf("matrix %+v: write succeeded, want fault", m)
		}
		if !errors.Is(err, syscall.ENOSPC) && !errors.Is(err, syscall.EIO) {
			t.Fatalf("matrix %+v: error %v is not an injected errno", m, err)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil || string(got) != "old" {
			t.Fatalf("matrix %+v: destination damaged: %q, %v", m, got, rerr)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 {
			t.Fatalf("matrix %+v: temp droppings left: %v", m, ents)
		}
	}
}
