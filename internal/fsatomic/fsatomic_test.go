package fsatomic

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "one" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	if err := WriteFile(path, []byte("two, longer"), 0o644); err != nil {
		t.Fatalf("WriteFile replace: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "two, longer" {
		t.Fatalf("after replace: %q", got)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state" {
		t.Fatalf("unexpected directory contents: %v", ents)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}
