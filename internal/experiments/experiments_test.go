package experiments

import (
	"os"
	"testing"
)

// Small-scale smoke runs of every experiment driver; shape assertions live
// here, full-scale numbers in the bench harness / EXPERIMENTS.md.

func small() Options {
	return Options{Scale: 0.25}.Defaults()
}

func TestTable1(t *testing.T) {
	rows, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	multi := map[string]bool{"h2": true, "lusearch": true, "pmd": true}
	for _, r := range rows {
		if want := multi[r.Subject]; want != (r.Threaded == "multiple") {
			t.Errorf("%s: threaded=%s", r.Subject, r.Threaded)
		}
		if r.Methods < 5 || r.Instrs < 100 {
			t.Errorf("%s: implausibly small (%d methods, %d instrs)", r.Subject, r.Methods, r.Instrs)
		}
	}
	PrintTable1(os.Stderr, rows)
}

func TestTable2Shape(t *testing.T) {
	o := small()
	o.Subjects = []string{"batik", "h2"}
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%+v", r)
		if r.JPortal < 1.0 || r.JPortal > 1.6 {
			t.Errorf("%s: JPortal slowdown %.3f outside the paper's band", r.Subject, r.JPortal)
		}
		if !(r.CF > r.PF && r.PF >= r.SC*0.8) {
			t.Errorf("%s: ordering violated: SC=%.2f PF=%.2f CF=%.2f", r.Subject, r.SC, r.PF, r.CF)
		}
		if r.JPortal >= r.SC {
			t.Errorf("%s: JPortal (%.3f) should beat SC instrumentation (%.3f)", r.Subject, r.JPortal, r.SC)
		}
		if r.Xprof < 1.0 || r.JProf < 1.0 {
			t.Errorf("%s: sampler slowdowns below 1: %.3f %.3f", r.Subject, r.Xprof, r.JProf)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	o := small()
	o.Subjects = []string{"fop", "sunflow"}
	rows, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: overall=%.3f PMD=%.3f DA=%.3f RA=%.3f segments=%d", r.Subject, r.Overall, r.PMD, r.DA, r.RA, r.Segments)
		if r.Overall < 0.4 || r.Overall > 1.0 {
			t.Errorf("%s: overall accuracy %.3f out of plausible range", r.Subject, r.Overall)
		}
		if r.DA < 0.5 {
			t.Errorf("%s: decode accuracy %.3f too low", r.Subject, r.DA)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	o := small()
	o.Subjects = []string{"jython"}
	rows, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("%+v", r)
	if r.JPortal < r.Xprof || r.JPortal < r.JProf {
		t.Errorf("JPortal (%d) should beat samplers (xprof=%d, jprof=%d)", r.JPortal, r.Xprof, r.JProf)
	}
	if r.JPortal < 3 {
		t.Errorf("JPortal found only %d of top 10", r.JPortal)
	}
}

func TestTable5Shape(t *testing.T) {
	o := small()
	o.Subjects = []string{"avrora"}
	rows, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("%+v", r)
	if r.TS == 0 || r.BaseTS == 0 {
		t.Fatal("zero trace sizes")
	}
}

func TestBufBytesScaling(t *testing.T) {
	// The paper-label mapping must be monotone and hit the documented
	// points: 128MB -> 32KB at shift 12.
	if got := bufBytes(128); got != 128<<(20-BufScaleShift) {
		t.Errorf("bufBytes(128) = %d", got)
	}
	if bufBytes(64) >= bufBytes(128) || bufBytes(128) >= bufBytes(256) {
		t.Error("buffer mapping not monotone")
	}
}

func TestPathAccuracySmoke(t *testing.T) {
	o := small()
	o.Subjects = []string{"luindex"}
	rows, err := PathAccuracy(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("%+v", r)
	if r.TruePaths == 0 || r.ReconPaths == 0 {
		t.Fatal("empty path profiles")
	}
	if r.Overlap < 0.5 {
		t.Errorf("path overlap %.2f too low for a lossless-scale run", r.Overlap)
	}
}

func TestTable3Rows(t *testing.T) {
	o := small()
	o.Subjects = []string{"sunflow"}
	rows, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Monotone buffer labels 256, 128, 64 and PMD non-decreasing as the
	// buffer shrinks.
	if rows[0].BufMB != 256 || rows[1].BufMB != 128 || rows[2].BufMB != 64 {
		t.Errorf("buffer order: %d %d %d", rows[0].BufMB, rows[1].BufMB, rows[2].BufMB)
	}
	if rows[0].PMD > rows[1].PMD+0.05 || rows[1].PMD > rows[2].PMD+0.05 {
		t.Errorf("PMD not monotone-ish: %.2f %.2f %.2f", rows[0].PMD, rows[1].PMD, rows[2].PMD)
	}
	for _, r := range rows {
		if d := r.PD - r.PDC*r.DA; d > 1e-9 || d < -1e-9 {
			t.Errorf("PD != PDC*DA at %dM", r.BufMB)
		}
		if d := r.PR - r.PMD*r.RA; d > 1e-9 || d < -1e-9 {
			t.Errorf("PR != PMD*RA at %dM", r.BufMB)
		}
	}
}
