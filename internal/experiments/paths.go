package experiments

import (
	"fmt"
	"io"

	"jportal"
	"jportal/internal/baselines"
	"jportal/internal/profile"
	"jportal/internal/workload"
)

// Path-profile accuracy (extension). The paper's introduction motivates
// that "with a program's control flow ... path profiles ... are all close
// at hand"; this experiment quantifies it: derive a Ball-Larus path profile
// from JPortal's reconstructed flow and score it against the counts the
// PF-instrumented run collects. The score is the weighted histogram
// overlap sum(min(true, recon)) / sum(true), aggregated over methods.

// PathRow is one subject's path-profile accuracy.
type PathRow struct {
	Subject string
	// TruePaths and ReconPaths count distinct observed paths.
	TruePaths, ReconPaths int
	// Overlap is the weighted histogram overlap in [0,1].
	Overlap float64
}

// PathAccuracy measures path-profile accuracy for the configured subjects,
// fanned out on the worker pool.
func PathAccuracy(o Options) ([]PathRow, error) {
	o = o.Defaults()
	rows := make([]PathRow, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		s, err := workload.Load(name, o.Scale)
		if err != nil {
			return err
		}
		// Ground truth from Ball-Larus instrumentation.
		ip, prof, err := baselines.InstrumentPaths(s.Program)
		if err != nil {
			return err
		}
		if _, err := runPlain(&workload.Subject{Name: name, Program: ip, Threads: s.Threads},
			o, &prof.Registry, baselines.PathProbeCost, nil); err != nil {
			return err
		}

		// JPortal-derived profile.
		run, err := runJPortal(s, o)
		if err != nil {
			return err
		}
		an, err := jportal.Analyze(s.Program, run, pipelineConfig(o))
		if err != nil {
			return err
		}
		pp := profile.ComputePathProfile(s.Program, an.Steps())

		row := PathRow{Subject: name}
		var trueTotal, overlap uint64
		for mid, trueCounts := range prof.Counts {
			reconCounts := pp.Counts[mid]
			row.TruePaths += len(trueCounts)
			for pid, tc := range trueCounts {
				trueTotal += tc
				rc := reconCounts[pid]
				if rc < tc {
					overlap += rc
				} else {
					overlap += tc
				}
			}
		}
		for _, reconCounts := range pp.Counts {
			row.ReconPaths += len(reconCounts)
		}
		if trueTotal > 0 {
			row.Overlap = float64(overlap) / float64(trueTotal)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintPathAccuracy renders the extension table.
func PrintPathAccuracy(w io.Writer, rows []PathRow) {
	fmt.Fprintf(w, "Extension: Ball-Larus path profiles derived from JPortal's flow\n")
	fmt.Fprintf(w, "%-10s %10s %11s %9s\n", "Subject", "TruePaths", "ReconPaths", "Overlap")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %11d %8.1f%%\n", r.Subject, r.TruePaths, r.ReconPaths, r.Overlap*100)
	}
}
