// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) on the simulated substrate, plus the ablations DESIGN.md
// calls out. Each experiment returns structured rows and can print itself
// in the paper's layout; cmd/jportal and the root bench harness both drive
// it.
//
// Buffer-size scaling: the paper's per-core buffers are 64/128/256MB
// against DaCapo-scale trace volumes. Our subjects generate traces three
// orders of magnitude smaller, so the experiments map the paper's labels to
// 1/512 of their size (64MB -> 128KB etc.), preserving the
// buffer-to-trace-volume ratios that drive the loss rates in Table 3.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"jportal"
	"jportal/internal/baselines"
	"jportal/internal/bytecode"
	"jportal/internal/conc"
	"jportal/internal/core"
	"jportal/internal/metrics"
	"jportal/internal/pt"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale sizes the workloads (1.0 = default evaluation size).
	Scale workload.Scale
	// Subjects restricts the subject list (nil = all nine).
	Subjects []string
	// BufMBLabel is the paper-label buffer size in "MB" (scaled down by
	// BufScaleShift at configuration time). Default 128.
	BufMBLabel int
	// SampleInterval is the profiler sampling interval in cycles
	// (the paper's 10ms at 1 cycle/ns ~ 1e7; scaled to our run lengths).
	SampleInterval uint64
	// Cores overrides the VM core count (0 = default).
	Cores int
	// Workers bounds the parallelism of the per-subject experiment loops
	// and of the offline pipelines they run (0 = GOMAXPROCS). Every table
	// and figure is deterministic for any worker count: subjects are
	// simulated independently and rows land in subject order.
	Workers int
}

// BufScaleShift: paper-label MB -> bytes = MB << (20 - 12) = MB * 256B
// (so 128MB maps to 32KB against trace volumes three orders of magnitude
// below DaCapo's).
const BufScaleShift = 12

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Subjects == nil {
		o.Subjects = workload.Names()
	}
	if o.BufMBLabel == 0 {
		o.BufMBLabel = 128
	}
	if o.SampleInterval == 0 {
		o.SampleInterval = 120_000
	}
	return o
}

// bufBytes converts a paper buffer label to simulation bytes.
func bufBytes(labelMB int) uint64 { return uint64(labelMB) << (20 - BufScaleShift) }

// pipelineConfig is the offline configuration the experiments analyse with:
// the production defaults plus the harness's worker bound.
func pipelineConfig(o Options) core.PipelineConfig {
	cfg := core.DefaultPipelineConfig()
	cfg.Workers = o.Workers
	return cfg
}

// forSubjects fans fn out over the configured subjects on the shared worker
// pool. fn must write results only into its own index i (rows[i]), which
// keeps output order deterministic; the first error in subject order wins.
func forSubjects(o Options, fn func(i int, name string) error) error {
	errs := make([]error, len(o.Subjects))
	conc.ParallelFor(conc.Workers(o.Workers), len(o.Subjects), func(i int) {
		errs[i] = fn(i, o.Subjects[i])
	})
	return conc.FirstError(errs)
}

func vmConfig(o Options) vm.Config {
	cfg := vm.DefaultConfig()
	if o.Cores > 0 {
		cfg.Cores = o.Cores
	}
	return cfg
}

func ptConfig(o Options) pt.Config {
	cfg := pt.DefaultConfig()
	cfg.BufBytes = bufBytes(o.BufMBLabel)
	return cfg
}

// ---- Table 1: subject characteristics ----

// Table1Row mirrors the paper's Table 1.
type Table1Row struct {
	Subject  string
	Instrs   int
	Methods  int
	Classes  int
	Threaded string
}

// Table1 generates the subjects and describes them.
func Table1(o Options) ([]Table1Row, error) {
	o = o.Defaults()
	rows := make([]Table1Row, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		s, err := workload.Load(name, o.Scale)
		if err != nil {
			return err
		}
		ch := workload.Describe(s)
		threaded := "single"
		if ch.Multi {
			threaded = "multiple"
		}
		rows[i] = Table1Row{
			Subject: name, Instrs: ch.Instrs, Methods: ch.Methods,
			Classes: ch.Classes, Threaded: threaded,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTable1 renders rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1. Characteristics of subject programs.\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %10s\n", "Subject", "#Instr", "#Methods", "#Classes", "Threaded")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %8d %10s\n", r.Subject, r.Instrs, r.Methods, r.Classes, r.Threaded)
	}
}

// ---- Table 2: runtime overhead ----

// Table2Row holds the slowdown factors for one subject.
type Table2Row struct {
	Subject string
	JPortal float64
	SC      float64
	PF      float64
	CF      float64
	HM      float64
	Xprof   float64
	JProf   float64
}

// Table2 measures slowdowns: simulated cycles under each profiler divided
// by the plain run's cycles. Subjects are measured concurrently — each
// iteration builds its own program, VM and profilers, and the slowdown
// ratios come from deterministic simulated cycle counts, not wall time, so
// the fan-out cannot perturb the numbers.
func Table2(o Options) ([]Table2Row, error) {
	o = o.Defaults()
	rows := make([]Table2Row, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		s, err := workload.Load(name, o.Scale)
		if err != nil {
			return err
		}
		base, err := runPlain(s, o, nil, 0, nil)
		if err != nil {
			return err
		}
		row := Table2Row{Subject: name}

		// JPortal: PT collection + metadata export.
		jp, err := runJPortal(s, o)
		if err != nil {
			return err
		}
		// Slowdowns use total CPU time (deterministic and monotone in
		// added per-step cost); for single-threaded subjects this equals
		// the wall-clock ratio.
		row.JPortal = ratio(jp.Stats.ActiveCycles, base.ActiveCycles)

		// Instrumentation baselines.
		for _, b := range []struct {
			slot *float64
			inst func(*bytecode.Program) (*bytecode.Program, *baselines.Registry, error)
			cost uint64
		}{
			{&row.SC, instrumentSC, baselines.CoverageProbeCost},
			{&row.PF, instrumentPF, baselines.PathProbeCost},
			{&row.CF, instrumentCF, baselines.FlowProbeCost},
			{&row.HM, instrumentHM, baselines.HotProbeCost},
		} {
			ip, reg, err := b.inst(s.Program)
			if err != nil {
				return err
			}
			st, err := runPlain(&workload.Subject{
				Name: s.Name, Program: ip, Threads: s.Threads,
			}, o, reg, b.cost, nil)
			if err != nil {
				return err
			}
			*b.slot = ratio(st.ActiveCycles, base.ActiveCycles)
		}

		// Sampling baselines.
		xp := baselines.NewXprof(o.SampleInterval)
		st, err := runPlain(s, o, nil, 0, xp)
		if err != nil {
			return err
		}
		row.Xprof = ratio(st.ActiveCycles, base.ActiveCycles)

		jpr := baselines.NewJProfiler(o.SampleInterval)
		st, err = runPlain(s, o, nil, 0, jpr)
		if err != nil {
			return err
		}
		row.JProf = ratio(st.ActiveCycles, base.ActiveCycles)

		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PrintTable2 renders the slowdown table.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2. Slowdown in times (higher is worse).\n")
	fmt.Fprintf(w, "%-10s %8s %9s %9s %10s %8s %7s %7s\n",
		"Subject", "JPortal", "SC", "PF", "CF", "HM", "xprof", "JProf")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.3f %9.3f %9.3f %10.3f %8.3f %7.3f %7.3f\n",
			r.Subject, r.JPortal, r.SC, r.PF, r.CF, r.HM, r.Xprof, r.JProf)
	}
}

// instrument adapters unify the four instrumenters' signatures.
func instrumentSC(p *bytecode.Program) (*bytecode.Program, *baselines.Registry, error) {
	ip, prof, err := baselines.InstrumentCoverage(p)
	if err != nil {
		return nil, nil, err
	}
	return ip, &prof.Registry, nil
}

func instrumentPF(p *bytecode.Program) (*bytecode.Program, *baselines.Registry, error) {
	ip, prof, err := baselines.InstrumentPaths(p)
	if err != nil {
		return nil, nil, err
	}
	return ip, &prof.Registry, nil
}

func instrumentCF(p *bytecode.Program) (*bytecode.Program, *baselines.Registry, error) {
	ip, prof, err := baselines.InstrumentFlow(p)
	if err != nil {
		return nil, nil, err
	}
	return ip, &prof.Registry, nil
}

func instrumentHM(p *bytecode.Program) (*bytecode.Program, *baselines.Registry, error) {
	ip, prof, err := baselines.InstrumentHot(p)
	if err != nil {
		return nil, nil, err
	}
	return ip, &prof.Registry, nil
}

// runPlain runs a subject without PT; reg/probeCost attach instrumentation,
// sampler attaches a sampling profiler.
func runPlain(s *workload.Subject, o Options, reg *baselines.Registry, probeCost uint64, sampler vm.Sampler) (*vm.Stats, error) {
	m := vm.New(s.Program, vmConfig(o))
	if reg != nil {
		m.Probe = reg.Handle
		m.ProbeActionCost = probeCost
	}
	if sampler != nil {
		m.Sampler = sampler
	}
	return m.Run(s.Threads)
}

// runJPortal runs a subject with PT collection and the oracle attached.
func runJPortal(s *workload.Subject, o Options) (*jportal.RunResult, error) {
	cfg := jportal.RunConfig{VM: vmConfig(o), PT: ptConfig(o), CollectOracle: true}
	return jportal.Run(s.Program, s.Threads, cfg)
}

// ---- Figure 7 and Table 3: accuracy ----

// AccuracyRow is one subject's accuracy decomposition.
type AccuracyRow struct {
	Subject string
	BufMB   int
	metrics.Breakdown
	Segments  int
	LostBytes uint64
	GenBytes  uint64
	DecodeMS  float64
	RecoverMS float64
	Recovered int
	Decoded   int
}

// MeasureAccuracy runs one subject under JPortal and scores the
// reconstruction against the oracle.
func MeasureAccuracy(name string, o Options) (*AccuracyRow, error) {
	o = o.Defaults()
	s, err := workload.Load(name, o.Scale)
	if err != nil {
		return nil, err
	}
	run, err := runJPortal(s, o)
	if err != nil {
		return nil, err
	}
	an, err := jportal.Analyze(s.Program, run, pipelineConfig(o))
	if err != nil {
		return nil, err
	}
	row := &AccuracyRow{Subject: name, BufMB: o.BufMBLabel}
	row.Breakdown = scoreAnalysis(run, an)
	for _, t := range an.Threads {
		row.Segments += t.Decode.Segments
		row.LostBytes += t.Decode.LostBytes
		row.DecodeMS += float64(t.DecodeTime) / float64(time.Millisecond)
		row.RecoverMS += float64(t.RecoverTime) / float64(time.Millisecond)
		row.Recovered += t.RecoveredSteps
		row.Decoded += t.DecodedSteps
	}
	row.GenBytes = run.GenBytes
	return row, nil
}

// scoreAnalysis compares an analysis against the run's oracle, averaging
// per-thread breakdowns weighted by truth length.
func scoreAnalysis(run *jportal.RunResult, an *jportal.Analysis) metrics.Breakdown {
	var agg metrics.Breakdown
	var wsum float64
	for _, t := range an.Threads {
		if t.Thread >= run.Oracle.NumThreads() {
			continue
		}
		truth := run.Oracle.TimedKeys(t.Thread)
		if len(truth) == 0 {
			continue
		}
		lost := lostIntervals(t)
		var decoded, recovered []metrics.TimedKey
		for _, st := range t.Steps {
			k := metrics.TimedKey{Key: metrics.StepKey(int32(st.Method), st.PC), TSC: st.TSC}
			if st.Recovered {
				recovered = append(recovered, k)
			} else {
				decoded = append(decoded, k)
			}
		}
		b := metrics.ComputeBreakdownTimed(truth, lost, decoded, recovered, 8192)
		w := float64(len(truth))
		agg.PMD += b.PMD * w
		agg.PDC += b.PDC * w
		agg.DA += b.DA * w
		agg.RA += b.RA * w
		agg.PD += b.PD * w
		agg.PR += b.PR * w
		agg.Overall += b.Overall * w
		wsum += w
	}
	if wsum > 0 {
		agg.PMD /= wsum
		agg.PDC /= wsum
		agg.DA /= wsum
		agg.RA /= wsum
		agg.PD /= wsum
		agg.PR /= wsum
		agg.Overall /= wsum
	}
	return agg
}

// lostIntervals extracts a thread's sorted, merged loss intervals.
func lostIntervals(t *core.ThreadResult) []metrics.Interval {
	var ivs []metrics.Interval
	for _, f := range t.Flows {
		g := f.Seg.GapBefore
		if g == nil || g.Desync || g.Duration() == 0 {
			continue
		}
		ivs = append(ivs, metrics.Interval{Start: g.Start, End: g.End})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var merged []metrics.Interval
	for _, iv := range ivs {
		if n := len(merged); n > 0 && iv.Start <= merged[n-1].End {
			if iv.End > merged[n-1].End {
				merged[n-1].End = iv.End
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// Figure7 measures overall accuracy for every subject at the default
// buffer size, fanning the subjects out on the worker pool.
func Figure7(o Options) ([]AccuracyRow, error) {
	o = o.Defaults()
	rows := make([]AccuracyRow, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		r, err := MeasureAccuracy(name, o)
		if err != nil {
			return err
		}
		rows[i] = *r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFigure7 renders the accuracy bars.
func PrintFigure7(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Figure 7. JPortal's overall accuracy vs instrumented ground truth.\n")
	fmt.Fprintf(w, "%-10s %9s\n", "Subject", "Accuracy")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.1f%%\n", r.Subject, r.Overall*100)
		sum += r.Overall
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-10s %8.1f%%\n", "overall", sum/float64(len(rows))*100)
	}
}

// Table3Subjects are the subjects the paper breaks down (those with >10%
// loss).
var Table3Subjects = []string{"batik", "h2", "sunflow"}

// Table3 measures the loss/recovery breakdown at the paper's three buffer
// sizes. The (subject, buffer) grid is flattened and fanned out as one
// index space so small subject lists still fill the worker pool.
func Table3(o Options) ([]AccuracyRow, error) {
	o = o.Defaults()
	subjects := o.Subjects
	if len(subjects) == len(workload.Names()) {
		subjects = Table3Subjects
	}
	bufs := []int{256, 128, 64}
	rows := make([]AccuracyRow, len(subjects)*len(bufs))
	errs := make([]error, len(rows))
	conc.ParallelFor(conc.Workers(o.Workers), len(rows), func(i int) {
		oo := o
		oo.BufMBLabel = bufs[i%len(bufs)]
		r, err := MeasureAccuracy(subjects[i/len(bufs)], oo)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = *r
	})
	if err := conc.FirstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTable3 renders the breakdown.
func PrintTable3(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Table 3. Data captured/lost and reconstruction accuracy by buffer size.\n")
	fmt.Fprintf(w, "%-10s %6s %7s %7s %7s %7s %7s %7s\n",
		"Subject", "Buf", "PMD", "PR", "RA", "PDC", "PD", "DA")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %4dM %6.2f%% %6.2f%% %6.2f%% %6.2f%% %6.2f%% %6.2f%%\n",
			r.Subject, r.BufMB, r.PMD*100, r.PR*100, r.RA*100, r.PDC*100, r.PD*100, r.DA*100)
	}
}
