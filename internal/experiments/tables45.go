package experiments

import (
	"fmt"
	"io"
	"time"

	"jportal"
	"jportal/internal/baselines"
	"jportal/internal/metrics"
	"jportal/internal/profile"
	"jportal/internal/vm"
	"jportal/internal/workload"
)

// ---- Table 4: hot-method detection accuracy ----

// Table4Row is one subject's top-10 intersection counts.
type Table4Row struct {
	Subject string
	Xprof   int
	JProf   int
	JPortal int
}

// Table4 ranks the 10 hottest methods under each profiler and intersects
// with the ground truth (instruction counts from the oracle, standing in
// for the instrumentation-derived truth of the paper). Subjects fan out on
// the worker pool.
func Table4(o Options) ([]Table4Row, error) {
	o = o.Defaults()
	const topN = 10
	rows := make([]Table4Row, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		s, err := workload.Load(name, o.Scale)
		if err != nil {
			return err
		}
		// Ground truth from an oracle-attached plain run.
		m := vm.New(s.Program, vmConfig(o))
		oracle := jportal.NewOracle(len(s.Threads))
		m.Listener = oracle
		if _, err := m.Run(s.Threads); err != nil {
			return err
		}
		truth := rankTruth(oracle.MethodCounts(len(s.Program.Methods)), topN)

		row := Table4Row{Subject: name}

		// xprof.
		xp := baselines.NewXprof(o.SampleInterval)
		if _, err := runPlain(s, o, nil, 0, xp); err != nil {
			return err
		}
		row.Xprof = metrics.TopNIntersection(truth, xp.Top(topN), topN)

		// JProfiler.
		jp := baselines.NewJProfiler(o.SampleInterval)
		if _, err := runPlain(s, o, nil, 0, jp); err != nil {
			return err
		}
		row.JProf = metrics.TopNIntersection(truth, jp.Top(topN), topN)

		// JPortal: hot methods from the reconstructed control flow.
		run, err := runJPortal(s, o)
		if err != nil {
			return err
		}
		an, err := jportal.Analyze(s.Program, run, pipelineConfig(o))
		if err != nil {
			return err
		}
		hot := profile.HotMethods(s.Program, an.Steps(), topN)
		row.JPortal = metrics.TopNIntersection(truth, hot, topN)

		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func rankTruth(counts []int64, n int) []int32 {
	idx := make([]int32, len(counts))
	for i := range idx {
		idx[i] = int32(i)
	}
	// simple selection of top n by count
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if counts[idx[j]] > counts[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	out := make([]int32, 0, n)
	for _, i := range idx {
		if counts[i] == 0 || len(out) == n {
			break
		}
		out = append(out, i)
	}
	return out
}

// PrintTable4 renders the intersections.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4. Accuracy in hot method detection (top-10 intersection with ground truth).\n")
	fmt.Fprintf(w, "%-10s %6s %9s %8s\n", "Subject", "xprof", "JProfiler", "JPortal")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %9d %8d\n", r.Subject, r.Xprof, r.JProf, r.JPortal)
	}
}

// ---- Table 5: trace size and decoding/recovery performance ----

// Table5Row compares trace volume and offline analysis time between the
// instrumentation-based control-flow tracer and JPortal.
type Table5Row struct {
	Subject string
	// Baseline (Ball-Larus control-flow tracing).
	BaseTS uint64
	BaseDT time.Duration
	// JPortal.
	TS uint64
	DT time.Duration
	RT time.Duration
	// HasLoss marks rows whose RT is meaningful.
	HasLoss bool
}

// Table5 measures trace sizes and decode/recovery times. Subjects fan out
// on the worker pool; DT/RT remain comparable because they are per-thread
// times summed, measured inside each subject's own pipeline.
func Table5(o Options) ([]Table5Row, error) {
	o = o.Defaults()
	rows := make([]Table5Row, len(o.Subjects))
	err := forSubjects(o, func(i int, name string) error {
		s, err := workload.Load(name, o.Scale)
		if err != nil {
			return err
		}
		row := Table5Row{Subject: name}

		// Baseline CF tracer.
		ip, fp, err := baselines.InstrumentFlow(s.Program)
		if err != nil {
			return err
		}
		if _, err := runPlain(&workload.Subject{Name: name, Program: ip, Threads: s.Threads},
			o, &fp.Registry, baselines.FlowProbeCost, nil); err != nil {
			return err
		}
		row.BaseTS = fp.TraceBytes()
		t0 := time.Now()
		for tid := range s.Threads {
			_ = fp.Replay(tid)
		}
		row.BaseDT = time.Since(t0)

		// JPortal.
		run, err := runJPortal(s, o)
		if err != nil {
			return err
		}
		var exported uint64
		for _, tr := range run.Traces {
			exported += tr.Bytes()
		}
		row.TS = exported
		an, err := jportal.Analyze(s.Program, run, pipelineConfig(o))
		if err != nil {
			return err
		}
		for _, t := range an.Threads {
			row.DT += t.DecodeTime
			row.RT += t.RecoverTime
			if t.Decode.LostBytes > 0 {
				row.HasLoss = true
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTable5 renders sizes and times.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5. Trace size (TS) and time for decoding (DT) and recovery (RT).\n")
	fmt.Fprintf(w, "%-10s %12s %10s %12s %10s %10s\n",
		"Subject", "Base TS", "Base DT", "JPortal TS", "DT", "RT")
	for _, r := range rows {
		rt := "-"
		if r.HasLoss {
			rt = fmt.Sprintf("%.1fms", float64(r.RT)/float64(time.Millisecond))
		}
		fmt.Fprintf(w, "%-10s %11dK %9.1fms %11dK %8.1fms %10s\n",
			r.Subject, r.BaseTS/1024, float64(r.BaseDT)/float64(time.Millisecond),
			r.TS/1024, float64(r.DT)/float64(time.Millisecond), rt)
	}
}
