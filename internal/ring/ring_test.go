package ring

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ want, got int }{
		{1, New[int](0).Cap()},
		{1, New[int](1).Cap()},
		{2, New[int](2).Cap()},
		{4, New[int](3).Cap()},
		{8, New[int](7).Cap()},
		{1024, New[int](1024).Cap()},
		{2048, New[int](1025).Cap()},
	} {
		if tc.got != tc.want {
			t.Errorf("cap = %d, want %d", tc.got, tc.want)
		}
	}
}

// TestWraparound pushes far more items than the capacity through a tiny
// ring, popping interleaved, and checks every item arrives in order —
// the cursors wrap the uint64 index space over the same 8 slots.
func TestWraparound(t *testing.T) {
	r := New[int](8)
	next := 0
	for i := 0; i < 10_000; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d: ring full", i)
		}
		r.Publish()
		if i%3 == 0 { // leave some items buffered to exercise occupancy
			continue
		}
		for {
			v, ok := r.TryPop()
			if !ok {
				break
			}
			if v != next {
				t.Fatalf("popped %d, want %d", v, next)
			}
			next++
		}
	}
	for {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("popped %d, want %d", v, next)
		}
		next++
	}
	if next != 10_000 {
		t.Fatalf("drained %d items, want 10000", next)
	}
}

// TestBackpressure has the producer outrun a deliberately slow consumer:
// TryPush must refuse when the ring is full, Push must block until slots
// free up, and no item may be lost or reordered.
func TestBackpressure(t *testing.T) {
	r := New[int](4)
	// Fill to capacity: pushes 0..3 fit, the 5th must be refused.
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	r.Publish()
	if r.TryPush(99) {
		t.Fatal("push accepted into a full ring")
	}
	// Blocking producer vs. slow consumer.
	const total = 5_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 4; i < total; i++ {
			if !r.Push(i, nil) {
				t.Errorf("Push(%d) failed with nil stop", i)
				return
			}
		}
		r.Close()
	}()
	got := 0
	for {
		v, ok := r.Pop(nil)
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("popped %d, want %d", v, got)
		}
		got++
	}
	<-done
	if got != total {
		t.Fatalf("consumer saw %d items, want %d", got, total)
	}
}

// TestConsumerCancelMidBatch closes the stop hook while the producer is
// blocked on a full ring: Push must return false instead of spinning
// forever, and the consumer can abandon the remaining items.
func TestConsumerCancelMidBatch(t *testing.T) {
	r := New[int](2)
	var cancelled atomic.Bool
	for i := 0; i < 2; i++ {
		r.TryPush(i)
	}
	r.Publish()
	done := make(chan bool)
	go func() {
		// Ring is full; this Push can only end via the stop hook.
		done <- r.Push(42, cancelled.Load)
	}()
	// Consumer pops one item of the batch, then cancels.
	if v, ok := r.TryPop(); !ok || v != 0 {
		t.Fatalf("TryPop = %d,%v want 0,true", v, ok)
	}
	// The freed slot may let the Push through before the cancel lands —
	// both outcomes are legal; what's illegal is hanging. Cancel now.
	cancelled.Store(true)
	pushed := <-done
	// Whether or not 42 made it in, order of what did arrive must hold.
	want := 1
	for {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		if v != want && v != 42 {
			t.Fatalf("popped %d, want %d or 42", v, want)
		}
		if v != 42 {
			want++
		}
	}
	_ = pushed
	// Pop with a tripped stop hook returns immediately on an empty ring.
	if _, ok := r.Pop(func() bool { return true }); ok {
		t.Fatal("Pop returned an item from an empty ring")
	}
}

// TestCloseDrain checks the closed ring still yields everything that was
// published before Close, and only then reports termination.
func TestCloseDrain(t *testing.T) {
	r := New[string](8)
	r.TryPush("a")
	r.TryPush("b")
	r.Close()
	if v, ok := r.Pop(nil); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v want a,true", v, ok)
	}
	if v, ok := r.Pop(nil); !ok || v != "b" {
		t.Fatalf("Pop = %q,%v want b,true", v, ok)
	}
	if _, ok := r.Pop(nil); ok {
		t.Fatal("Pop after drain of a closed ring returned ok")
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

// TestBatchedPublish stages items without publishing and checks the
// consumer cannot see them until Publish.
func TestBatchedPublish(t *testing.T) {
	r := New[int](16)
	for i := 0; i < 5; i++ {
		r.TryPush(i)
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("consumer saw a staged, unpublished item")
	}
	r.Publish()
	var dst [16]int
	if n := r.PopBatch(dst[:]); n != 5 {
		t.Fatalf("PopBatch = %d items, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
}

// TestConcurrentTransfer is the -race workhorse: one producer, one
// consumer, a million items through a small ring, FIFO asserted. Run
// across several capacities including the degenerate single-slot ring.
func TestConcurrentTransfer(t *testing.T) {
	for _, capacity := range []int{1, 7, 64, 1024} {
		capacity := capacity
		t.Run("", func(t *testing.T) {
			t.Parallel()
			r := New[uint64](capacity)
			const total = 200_000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(0); i < total; i++ {
					if !r.TryPush(i) {
						r.Publish()
						if !r.Push(i, nil) {
							t.Errorf("Push(%d) failed", i)
							return
						}
						continue
					}
					if i%64 == 0 {
						r.Publish()
					}
				}
				r.Close()
			}()
			var next uint64
			var dst [128]uint64
			for {
				n := r.PopBatch(dst[:])
				if n == 0 {
					v, ok := r.Pop(nil)
					if !ok {
						break
					}
					if v != next {
						t.Fatalf("got %d, want %d", v, next)
					}
					next++
					continue
				}
				for i := 0; i < n; i++ {
					if dst[i] != next {
						t.Fatalf("got %d, want %d", dst[i], next)
					}
					next++
				}
			}
			wg.Wait()
			if next != total {
				t.Fatalf("received %d, want %d", next, total)
			}
		})
	}
}
