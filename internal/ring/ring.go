// Package ring provides the lock-free single-producer/single-consumer
// ring buffer the streaming pipeline uses for stage handoff (DESIGN.md
// §12). One goroutine pushes, one goroutine pops; under that contract no
// CAS is needed — the producer owns the tail, the consumer owns the head,
// and each publishes its cursor with a single atomic store after touching
// the slots. Batched publish lets the producer stage several items and
// make them visible with one store, so the steady-state cost per item is
// a slot write and a fraction of an atomic.
//
// The ring is generic over the element type and sized to a power of two
// (capacities round up). Closing is producer-side only: after Close the
// consumer drains what remains and then observes the closed state.
package ring

import (
	"runtime"
	"sync/atomic"
)

// cacheLinePad keeps the producer's and consumer's cursors on separate
// cache lines so the two sides don't false-share.
type cacheLinePad struct{ _ [64]byte }

// SPSC is a single-producer single-consumer ring buffer. The zero value
// is not usable; construct with New. All producer-side methods (TryPush,
// Push, Publish, Close) must be called from one goroutine at a time, and
// all consumer-side methods (TryPop, PopBatch) from one goroutine at a
// time; the two sides may run concurrently.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    cacheLinePad
	head atomic.Uint64 // consumer cursor: next slot to pop
	_    cacheLinePad
	tail atomic.Uint64 // producer cursor: next published slot
	_    cacheLinePad

	// staged counts items written past tail but not yet published.
	// Producer-local; no atomicity needed.
	staged uint64
	// cachedHead is the producer's last view of head, refreshed only
	// when the ring looks full — most pushes never touch the shared
	// cursor.
	cachedHead uint64
	// cachedTail is the consumer's last view of tail, refreshed only
	// when the ring looks empty.
	cachedTail uint64

	closed atomic.Bool
}

// New returns an SPSC ring with capacity at least n (rounded up to a
// power of two, minimum 1).
func New[T any](n int) *SPSC[T] {
	c := 1
	for c < n {
		c <<= 1
	}
	return &SPSC[T]{buf: make([]T, c), mask: uint64(c - 1)}
}

// Cap returns the ring's slot count.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// TryPush stages v into the next free slot and reports whether it fit.
// Staged items are invisible to the consumer until Publish (Push and
// Close publish implicitly). Returns false when the ring is full.
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load() + r.staged
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.staged++
	return true
}

// Publish makes all staged items visible to the consumer with one
// atomic store.
func (r *SPSC[T]) Publish() {
	if r.staged != 0 {
		r.tail.Store(r.tail.Load() + r.staged)
		r.staged = 0
	}
}

// Push publishes v, spinning (with Gosched) while the ring is full.
// It returns false if stop returns true while waiting — the producer's
// cancellation hook; pass nil to wait indefinitely.
func (r *SPSC[T]) Push(v T, stop func() bool) bool {
	for !r.TryPush(v) {
		r.Publish() // make room-blocking progress visible before spinning
		if stop != nil && stop() {
			return false
		}
		runtime.Gosched()
	}
	r.Publish()
	return true
}

// Close marks the ring closed after publishing anything staged. The
// consumer observes closure only after draining every published item.
// Producer-side; idempotent.
func (r *SPSC[T]) Close() {
	r.Publish()
	r.closed.Store(true)
}

// Closed reports whether Close was called. Note the consumer should
// keep popping until the ring is empty AND closed.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// TryPop pops one item if any is published. ok=false means empty (check
// Closed to distinguish "not yet" from "never again").
func (r *SPSC[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return v, false
		}
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero // release references for GC
	r.head.Store(h + 1)
	return v, true
}

// PopBatch pops up to len(dst) published items into dst and returns the
// count, advancing the consumer cursor once. Returns 0 when empty.
func (r *SPSC[T]) PopBatch(dst []T) int {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return 0
		}
	}
	n := int(r.cachedTail - h)
	if n > len(dst) {
		n = len(dst)
	}
	var zero T
	for i := 0; i < n; i++ {
		dst[i] = r.buf[(h+uint64(i))&r.mask]
		r.buf[(h+uint64(i))&r.mask] = zero
	}
	r.head.Store(h + uint64(n))
	return n
}

// Pop pops one item, spinning (with Gosched) while the ring is empty.
// ok=false means the ring closed and drained, or stop returned true.
func (r *SPSC[T]) Pop(stop func() bool) (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Re-check: items may have been published between the
			// failed pop and the closed load.
			if v, ok = r.TryPop(); ok {
				return v, true
			}
			return v, false
		}
		if stop != nil && stop() {
			return v, false
		}
		runtime.Gosched()
	}
}
