package cfg

import "sort"

// Dominators computes the immediate dominator of every block in g using the
// simple iterative dataflow algorithm (Cooper, Harvey, Kennedy). The entry
// block dominates itself; unreachable blocks get idom -1.
func Dominators(g *CFG) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	order := ReversePostorder(g)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}
	idom[g.EntryBlock()] = g.EntryBlock()

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.EntryBlock() {
				continue
			}
			newIdom := -1
			for _, e := range g.Preds[b] {
				p := e.From
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == idom[b] {
			return false
		}
		b = idom[b]
	}
}

// ReversePostorder returns the block IDs of g in reverse postorder from the
// entry. Unreachable blocks are appended at the end in ID order so that every
// block appears exactly once.
func ReversePostorder(g *CFG) []int {
	n := len(g.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, e := range g.Succs[b] {
			if !seen[e.To] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(g.EntryBlock())
	out := make([]int, 0, n)
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for b := 0; b < n; b++ {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Loop describes a natural loop: its header block and body (sorted block
// IDs, header included).
type Loop struct {
	Header int
	Body   []int
}

// NaturalLoops finds the natural loops of g: for every back edge t->h
// (where h dominates t), the loop body is every block that can reach t
// without passing through h. Loops sharing a header are merged.
func NaturalLoops(g *CFG) []Loop {
	idom := Dominators(g)
	bodies := map[int]map[int]bool{}
	for _, e := range g.Edges {
		if !Dominates(idom, e.To, e.From) {
			continue
		}
		h, t := e.To, e.From
		body := bodies[h]
		if body == nil {
			body = map[int]bool{h: true}
			bodies[h] = body
		}
		// Walk predecessors from t up to h.
		stack := []int{t}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if body[b] {
				continue
			}
			body[b] = true
			for _, pe := range g.Preds[b] {
				stack = append(stack, pe.From)
			}
		}
	}
	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		body := make([]int, 0, len(bodies[h]))
		for b := range bodies[h] {
			body = append(body, b)
		}
		sort.Ints(body)
		loops = append(loops, Loop{Header: h, Body: body})
	}
	return loops
}

// BackEdges returns the back edges of g (edges whose target dominates their
// source).
func BackEdges(g *CFG) []BlockEdge {
	idom := Dominators(g)
	var out []BlockEdge
	for _, e := range g.Edges {
		if Dominates(idom, e.To, e.From) {
			out = append(out, e)
		}
	}
	return out
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(g *CFG) []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{g.EntryBlock()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, e := range g.Succs[b] {
			stack = append(stack, e.To)
		}
	}
	return seen
}

// CallGraph is the static call graph over methods.
type CallGraph struct {
	// Callees[mid] lists distinct callee methods of mid in first-seen order.
	Callees [][]int32
	// Callers[mid] lists distinct caller methods of mid.
	Callers [][]int32
}

// BuildCallGraph derives the call graph of the program underlying g.
func (g *ICFG) BuildCallGraph() *CallGraph {
	n := len(g.Prog.Methods)
	cg := &CallGraph{Callees: make([][]int32, n), Callers: make([][]int32, n)}
	seenCallee := make([]map[int32]bool, n)
	seenCaller := make([]map[int32]bool, n)
	for i := range seenCallee {
		seenCallee[i] = map[int32]bool{}
		seenCaller[i] = map[int32]bool{}
	}
	for callee, sites := range g.CallSitesOf {
		for _, s := range sites {
			caller, _ := g.Location(s)
			if !seenCallee[caller][int32(callee)] {
				seenCallee[caller][int32(callee)] = true
				cg.Callees[caller] = append(cg.Callees[caller], int32(callee))
			}
			if !seenCaller[callee][int32(caller)] {
				seenCaller[callee][int32(caller)] = true
				cg.Callers[callee] = append(cg.Callers[callee], int32(caller))
			}
		}
	}
	return cg
}
