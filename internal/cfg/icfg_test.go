package cfg

import (
	"testing"
	"testing/quick"

	"jportal/internal/bytecode"
)

const icfgSrc = `
table t0 = T.cb1 T.cb2

method T.cb1(1) returns int {
    iload 0
    ireturn
}

method T.cb2(1) returns int {
    iload 0
    ineg
    ireturn
}

method T.helper(1) returns int {
    iload 0
    iconst 1
    iadd
    ireturn
}

method T.main(0) {
    iconst 5
    invokestatic T.helper
    iconst 0
    invokedyn t0
    pop
    return
}
entry T.main
`

func TestICFGNodeLocationRoundTrip(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	g := BuildICFG(p, DefaultOptions())
	total := 0
	for _, m := range p.Methods {
		for pc := range m.Code {
			n := g.Node(m.ID, int32(pc))
			mid, gpc := g.Location(n)
			if mid != m.ID || gpc != int32(pc) {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", m.ID, pc, n, mid, gpc)
			}
			if g.Instr(n) != &m.Code[pc] {
				t.Fatalf("Instr(%d) wrong", n)
			}
			total++
		}
	}
	if g.NumNodes() != total {
		t.Errorf("NumNodes = %d, want %d", g.NumNodes(), total)
	}
}

func TestICFGLocationQuick(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	g := BuildICFG(p, DefaultOptions())
	f := func(raw uint16) bool {
		n := NodeID(int(raw) % g.NumNodes())
		mid, pc := g.Location(n)
		return g.Node(mid, pc) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestICFGCallAndReturnEdges(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	g := BuildICFG(p, DefaultOptions())
	main := p.MethodByName("T.main")
	helper := p.MethodByName("T.helper")

	callNode := g.Node(main.ID, 1) // invokestatic T.helper
	var callTargets []NodeID
	for _, e := range g.Succs[callNode] {
		if e.Kind == EdgeCall {
			callTargets = append(callTargets, e.To)
		}
	}
	if len(callTargets) != 1 || callTargets[0] != g.Entry(helper.ID) {
		t.Errorf("call edges: %v", callTargets)
	}

	// helper's ireturn flows back to main@2 (after the call).
	retNode := g.Node(helper.ID, 3)
	found := false
	for _, e := range g.Succs[retNode] {
		if e.Kind == EdgeReturn && e.To == g.Node(main.ID, 2) {
			found = true
		}
	}
	if !found {
		t.Error("return edge to call continuation missing")
	}
}

func TestICFGDynCallEdges(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	main := p.MethodByName("T.main")

	resolved := BuildICFG(p, Options{ResolveDynCalls: true})
	dynNode := resolved.Node(main.ID, 3)
	calls := 0
	for _, e := range resolved.Succs[dynNode] {
		if e.Kind == EdgeCall {
			calls++
		}
	}
	if calls != 2 {
		t.Errorf("resolved dyn call edges = %d, want 2", calls)
	}

	opaque := BuildICFG(p, Options{ResolveDynCalls: false})
	dynNode = opaque.Node(main.ID, 3)
	for _, e := range opaque.Succs[dynNode] {
		if e.Kind == EdgeCall {
			t.Error("opaque ICFG should have no dyn call edges")
		}
	}
	// The callbacks then have no recorded call sites.
	cb1 := p.MethodByName("T.cb1")
	if len(opaque.CallSitesOf[cb1.ID]) != 0 {
		t.Error("opaque ICFG should not record dyn call sites")
	}
}

func TestICFGCondBranchEdgeKinds(t *testing.T) {
	src := `
method T.m(1) returns int {
    iload 0
    ifeq Lz
    iconst 1
    ireturn
Lz:
    iconst 0
    ireturn
}
method T.main(0) {
    iconst 1
    invokestatic T.m
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	g := BuildICFG(p, DefaultOptions())
	m := p.MethodByName("T.m")
	n := g.Node(m.ID, 1)
	var taken, fall NodeID = NoNode, NoNode
	for _, e := range g.Succs[n] {
		switch e.Kind {
		case EdgeTaken:
			taken = e.To
		case EdgeFallthrough:
			fall = e.To
		}
	}
	if taken != g.Node(m.ID, 4) || fall != g.Node(m.ID, 2) {
		t.Errorf("branch edges: taken=%d fall=%d", taken, fall)
	}
}

func TestCallGraph(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	g := BuildICFG(p, DefaultOptions())
	cg := g.BuildCallGraph()
	main := p.MethodByName("T.main")
	if len(cg.Callees[main.ID]) != 3 { // helper + 2 callbacks
		t.Errorf("main callees: %v", cg.Callees[main.ID])
	}
	helper := p.MethodByName("T.helper")
	if len(cg.Callers[helper.ID]) != 1 || cg.Callers[helper.ID][0] != int32(main.ID) {
		t.Errorf("helper callers: %v", cg.Callers[helper.ID])
	}
}

func TestICFGPredsMirrorSuccs(t *testing.T) {
	p := bytecode.MustAssemble(icfgSrc)
	g := BuildICFG(p, DefaultOptions())
	fwd := 0
	for n := 0; n < g.NumNodes(); n++ {
		fwd += len(g.Succs[n])
	}
	bwd := 0
	for n := 0; n < g.NumNodes(); n++ {
		bwd += len(g.Preds[n])
	}
	if fwd != bwd {
		t.Errorf("succ edges %d != pred edges %d", fwd, bwd)
	}
	// Spot check: every successor edge has a matching predecessor entry.
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		for _, e := range g.Succs[n] {
			ok := false
			for _, pe := range g.Preds[e.To] {
				if pe.To == n && pe.Kind == e.Kind {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("edge %d->%d (%v) has no pred mirror", n, e.To, e.Kind)
			}
		}
	}
}
