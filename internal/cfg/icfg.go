package cfg

import (
	"jportal/internal/bytecode"
)

// NodeID identifies an instruction node in the ICFG: a dense index over all
// instructions of all methods.
type NodeID int32

// NoNode is the invalid node.
const NoNode NodeID = -1

// Edge is a labelled ICFG edge.
type Edge struct {
	To   NodeID
	Kind EdgeKind
	// Arg carries the case key for EdgeSwitch edges.
	Arg int32
}

// Options configures ICFG construction.
type Options struct {
	// ResolveDynCalls controls whether INVOKEDYN call edges to the
	// statically known dispatch-table entries are added. When false, the
	// ICFG deliberately misses those feasible paths, modelling dynamic
	// language features (reflection, callbacks) that a statically built
	// ICFG cannot see (paper §4, Discussions); the reconstruction layer
	// must then fall back to scanning candidate entry points.
	ResolveDynCalls bool
}

// DefaultOptions resolves dynamic calls.
func DefaultOptions() Options { return Options{ResolveDynCalls: true} }

// ICFG is the interprocedural control-flow graph over instructions. Each
// node represents one bytecode instruction; edges represent the
// "potential-next-instruction-to-execute" relation of Definition 4.1,
// context-insensitively (returns connect to every compatible return site).
type ICFG struct {
	Prog *bytecode.Program
	Opts Options

	// base[mid] is the NodeID of instruction 0 of method mid.
	base []NodeID
	// nodes is the total node count.
	nodes int
	// loc[n] is the precomputed (method, pc) of node n — Location is on
	// the matcher's innermost loop (every located-token comparison and
	// every step materialisation), so the binary search over base is
	// replaced by one dense table lookup.
	loc []location

	Succs [][]Edge
	Preds [][]Edge

	// CallSitesOf[mid] lists the nodes holding calls that may target mid
	// (used to wire EdgeReturn and by recovery diagnostics).
	CallSitesOf [][]NodeID
}

// BuildICFG constructs the ICFG of p.
func BuildICFG(p *bytecode.Program, opts Options) *ICFG {
	g := &ICFG{Prog: p, Opts: opts, base: make([]NodeID, len(p.Methods))}
	total := 0
	for i, m := range p.Methods {
		g.base[i] = NodeID(total)
		total += len(m.Code)
	}
	g.nodes = total
	g.loc = make([]location, total)
	for i, m := range p.Methods {
		for pc := range m.Code {
			g.loc[int(g.base[i])+pc] = location{mid: m.ID, pc: int32(pc)}
		}
	}
	g.Succs = make([][]Edge, total)
	g.Preds = make([][]Edge, total)
	g.CallSitesOf = make([][]NodeID, len(p.Methods))

	add := func(from NodeID, e Edge) {
		g.Succs[from] = append(g.Succs[from], e)
		g.Preds[e.To] = append(g.Preds[e.To], Edge{To: from, Kind: e.Kind, Arg: e.Arg})
	}

	// Pass 1: intra-method edges and call edges; collect call sites.
	for _, m := range p.Methods {
		n := int32(len(m.Code))
		for pc := int32(0); pc < n; pc++ {
			node := g.Node(m.ID, pc)
			ins := &m.Code[pc]
			switch {
			case ins.Op == bytecode.GOTO:
				add(node, Edge{To: g.Node(m.ID, ins.A), Kind: EdgeJump})
			case ins.Op.IsCondBranch():
				add(node, Edge{To: g.Node(m.ID, ins.A), Kind: EdgeTaken})
				if pc+1 < n {
					add(node, Edge{To: g.Node(m.ID, pc+1), Kind: EdgeFallthrough})
				}
			case ins.Op == bytecode.TABLESWITCH:
				for i, t := range ins.Targets {
					add(node, Edge{To: g.Node(m.ID, t), Kind: EdgeSwitch, Arg: ins.A + int32(i)})
				}
				add(node, Edge{To: g.Node(m.ID, ins.B), Kind: EdgeSwitch, Arg: SwitchDefault})
			case ins.Op == bytecode.INVOKESTATIC:
				callee := bytecode.MethodID(ins.A)
				add(node, Edge{To: g.Entry(callee), Kind: EdgeCall})
				g.CallSitesOf[callee] = append(g.CallSitesOf[callee], node)
			case ins.Op == bytecode.INVOKEDYN:
				if opts.ResolveDynCalls {
					for _, callee := range p.DispatchTables[ins.A] {
						add(node, Edge{To: g.Entry(callee), Kind: EdgeCall})
						g.CallSitesOf[callee] = append(g.CallSitesOf[callee], node)
					}
				}
			case ins.Op.IsReturn():
				// wired in pass 2
			case ins.Op == bytecode.ATHROW:
				// handler edges below; cross-method unwinding is not
				// represented (context-insensitive NFA, paper §4)
			default:
				if pc+1 < n {
					add(node, Edge{To: g.Node(m.ID, pc+1), Kind: EdgeFallthrough})
				}
			}
			// Intra-method exception edges.
			if ins.Op.MayThrow() {
				for _, h := range m.Handlers {
					if pc >= h.From && pc < h.To {
						add(node, Edge{To: g.Node(m.ID, h.Target), Kind: EdgeThrow})
					}
				}
			}
		}
	}

	// Pass 2: return edges. A return in method mid flows to the
	// instruction after every call site that may target mid.
	for mid, m := range p.Methods {
		sites := g.CallSitesOf[mid]
		if len(sites) == 0 {
			continue
		}
		for pc := int32(0); pc < int32(len(m.Code)); pc++ {
			if !m.Code[pc].Op.IsReturn() {
				continue
			}
			node := g.Node(m.ID, pc)
			for _, site := range sites {
				smid, spc := g.Location(site)
				caller := p.Methods[smid]
				if spc+1 < int32(len(caller.Code)) {
					add(node, Edge{To: g.Node(smid, spc+1), Kind: EdgeReturn})
				}
			}
		}
	}
	return g
}

// NumNodes returns the total node count.
func (g *ICFG) NumNodes() int { return g.nodes }

// Node returns the NodeID of (mid, pc).
func (g *ICFG) Node(mid bytecode.MethodID, pc int32) NodeID {
	return g.base[mid] + NodeID(pc)
}

// Entry returns the entry node of method mid.
func (g *ICFG) Entry(mid bytecode.MethodID) NodeID { return g.base[mid] }

// location is one entry of the dense NodeID → (method, pc) table.
type location struct {
	mid bytecode.MethodID
	pc  int32
}

// Location maps a NodeID back to (method, pc).
func (g *ICFG) Location(n NodeID) (bytecode.MethodID, int32) {
	l := &g.loc[n]
	return l.mid, l.pc
}

// Instr returns the instruction at node n.
func (g *ICFG) Instr(n NodeID) *bytecode.Instruction {
	mid, pc := g.Location(n)
	return &g.Prog.Methods[mid].Code[pc]
}

// MethodEntries returns the entry nodes of all methods.
func (g *ICFG) MethodEntries() []NodeID {
	out := make([]NodeID, len(g.base))
	copy(out, g.base)
	return out
}
