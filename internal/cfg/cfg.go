// Package cfg builds control-flow graphs from bytecode: per-method basic
// block CFGs (used by the JIT and the Ball-Larus baselines) and the
// per-instruction interprocedural CFG (ICFG) that JPortal's reconstruction
// treats as an NFA (paper §4).
package cfg

import (
	"fmt"
	"sort"

	"jportal/internal/bytecode"
)

// EdgeKind classifies CFG/ICFG edges.
type EdgeKind uint8

const (
	// EdgeFallthrough is sequential flow, including the not-taken side of a
	// conditional branch.
	EdgeFallthrough EdgeKind = iota
	// EdgeTaken is the taken side of a conditional branch.
	EdgeTaken
	// EdgeJump is an unconditional goto.
	EdgeJump
	// EdgeSwitch is a tableswitch case (Arg = case key) or default
	// (Arg = switchDefault).
	EdgeSwitch
	// EdgeCall goes from a call instruction to a callee entry.
	EdgeCall
	// EdgeReturn goes from a return instruction to an instruction
	// following some call site that may invoke this method.
	EdgeReturn
	// EdgeThrow goes from a potentially-throwing instruction to an
	// exception handler covering it in the same method.
	EdgeThrow
)

// SwitchDefault marks the default edge of a tableswitch in Edge.Arg.
const SwitchDefault int32 = -1 << 30

func (k EdgeKind) String() string {
	switch k {
	case EdgeFallthrough:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeJump:
		return "jump"
	case EdgeSwitch:
		return "switch"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	case EdgeThrow:
		return "throw"
	}
	return fmt.Sprintf("edgekind#%d", uint8(k))
}

// Block is a basic block: the half-open instruction range [Start, End) of a
// method.
type Block struct {
	ID         int
	Start, End int32
}

// Last returns the index of the block's terminator (its final instruction).
func (b *Block) Last() int32 { return b.End - 1 }

// BlockEdge is an edge between blocks of one method's CFG.
type BlockEdge struct {
	From, To int
	Kind     EdgeKind
	Arg      int32
}

// CFG is a single method's basic-block control-flow graph.
type CFG struct {
	Method *bytecode.Method
	Blocks []*Block
	// BlockOf maps each instruction index to its block ID.
	BlockOf []int
	Succs   [][]BlockEdge
	Preds   [][]BlockEdge
	// Edges lists every edge once, in deterministic order.
	Edges []BlockEdge
}

// Build constructs the basic-block CFG of m. Exception edges are included
// (kind EdgeThrow) from each block containing a may-throw instruction to the
// covering handler blocks.
func Build(m *bytecode.Method) *CFG {
	n := int32(len(m.Code))
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc := int32(0); pc < n; pc++ {
		ins := &m.Code[pc]
		for _, t := range ins.BranchTargets() {
			leader[t] = true
		}
		if ins.Op.IsTerminator() && pc+1 < n {
			leader[pc+1] = true
		}
	}
	for _, h := range m.Handlers {
		leader[h.Target] = true
		if h.From < n {
			leader[h.From] = true
		}
		if h.To < n {
			leader[h.To] = true
		}
	}

	g := &CFG{Method: m, BlockOf: make([]int, n)}
	for pc := int32(0); pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, &Block{ID: len(g.Blocks), Start: pc})
		}
		b := g.Blocks[len(g.Blocks)-1]
		b.End = pc + 1
		g.BlockOf[pc] = b.ID
	}

	g.Succs = make([][]BlockEdge, len(g.Blocks))
	g.Preds = make([][]BlockEdge, len(g.Blocks))
	addEdge := func(from, to int, kind EdgeKind, arg int32) {
		e := BlockEdge{From: from, To: to, Kind: kind, Arg: arg}
		g.Edges = append(g.Edges, e)
		g.Succs[from] = append(g.Succs[from], e)
		g.Preds[to] = append(g.Preds[to], e)
	}
	for _, b := range g.Blocks {
		ins := &m.Code[b.Last()]
		switch {
		case ins.Op == bytecode.GOTO:
			addEdge(b.ID, g.BlockOf[ins.A], EdgeJump, 0)
		case ins.Op.IsCondBranch():
			addEdge(b.ID, g.BlockOf[ins.A], EdgeTaken, 0)
			if b.End < n {
				addEdge(b.ID, g.BlockOf[b.End], EdgeFallthrough, 0)
			}
		case ins.Op == bytecode.TABLESWITCH:
			for i, t := range ins.Targets {
				addEdge(b.ID, g.BlockOf[t], EdgeSwitch, ins.A+int32(i))
			}
			addEdge(b.ID, g.BlockOf[ins.B], EdgeSwitch, SwitchDefault)
		case ins.Op.IsReturn() || ins.Op == bytecode.ATHROW:
			// no intra-method successor (ATHROW handler edges added below)
		default:
			if b.End < n {
				addEdge(b.ID, g.BlockOf[b.End], EdgeFallthrough, 0)
			}
		}
	}
	// Exception edges: block -> handler for each may-throw instruction
	// covered by a handler. One edge per (block, handler target) pair.
	for _, b := range g.Blocks {
		seen := map[int]bool{}
		for pc := b.Start; pc < b.End; pc++ {
			if !m.Code[pc].Op.MayThrow() {
				continue
			}
			for _, h := range m.Handlers {
				if pc >= h.From && pc < h.To {
					hb := g.BlockOf[h.Target]
					if !seen[hb] {
						seen[hb] = true
						addEdge(b.ID, hb, EdgeThrow, 0)
					}
				}
			}
		}
	}
	return g
}

// EntryBlock returns the entry block ID (always 0).
func (g *CFG) EntryBlock() int { return 0 }

// ExitBlocks returns the IDs of blocks ending in a return, sorted.
func (g *CFG) ExitBlocks() []int {
	var out []int
	for _, b := range g.Blocks {
		if g.Method.Code[b.Last()].Op.IsReturn() {
			out = append(out, b.ID)
		}
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the edge count.
func (g *CFG) NumEdges() int { return len(g.Edges) }
