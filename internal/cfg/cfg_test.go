package cfg

import (
	"testing"

	"jportal/internal/bytecode"
)

const diamondSrc = `
method T.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    ireturn
}
method T.main(0) {
    iconst 1
    iconst 7
    invokestatic T.fun
    pop
    return
}
entry T.main
`

func diamond(t *testing.T) (*bytecode.Program, *bytecode.Method) {
	t.Helper()
	p := bytecode.MustAssemble(diamondSrc)
	return p, p.MethodByName("T.fun")
}

func TestBuildBlocks(t *testing.T) {
	_, m := diamond(t)
	g := Build(m)
	// Blocks: [0,2) cond, [2,7) then+goto, [7,11) else, [11,13) join.
	if len(g.Blocks) != 4 {
		t.Fatalf("got %d blocks: %+v", len(g.Blocks), g.Blocks)
	}
	wantStarts := []int32{0, 2, 7, 11}
	for i, b := range g.Blocks {
		if b.Start != wantStarts[i] {
			t.Errorf("block %d starts at %d, want %d", i, b.Start, wantStarts[i])
		}
	}
	// Every instruction belongs to exactly one block covering it.
	for pc := range m.Code {
		b := g.Blocks[g.BlockOf[pc]]
		if int32(pc) < b.Start || int32(pc) >= b.End {
			t.Errorf("BlockOf[%d] = block [%d,%d)", pc, b.Start, b.End)
		}
	}
}

func TestBuildEdges(t *testing.T) {
	_, m := diamond(t)
	g := Build(m)
	kinds := map[EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	if kinds[EdgeTaken] != 1 || kinds[EdgeFallthrough] != 2 || kinds[EdgeJump] != 1 {
		t.Errorf("edge kinds: %v", kinds)
	}
	if len(g.ExitBlocks()) != 1 {
		t.Errorf("exit blocks: %v", g.ExitBlocks())
	}
}

func TestBuildSwitchEdges(t *testing.T) {
	src := `
method T.m(1) returns int {
    iload 0
    tableswitch 5 default=Ld [La Lb]
La:
    iconst 1
    ireturn
Lb:
    iconst 2
    ireturn
Ld:
    iconst 3
    ireturn
}
entry T.m
`
	// entry needs 0 args; wrap differently
	src = src[:len(src)-len("entry T.m\n")] + `
method T.main(0) {
    iconst 0
    invokestatic T.m
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	g := Build(p.MethodByName("T.m"))
	var caseArgs []int32
	for _, e := range g.Edges {
		if e.Kind == EdgeSwitch {
			caseArgs = append(caseArgs, e.Arg)
		}
	}
	if len(caseArgs) != 3 {
		t.Fatalf("switch edges: %v", caseArgs)
	}
	seen := map[int32]bool{}
	for _, a := range caseArgs {
		seen[a] = true
	}
	if !seen[5] || !seen[6] || !seen[SwitchDefault] {
		t.Errorf("switch case keys wrong: %v", caseArgs)
	}
}

func TestBuildThrowEdges(t *testing.T) {
	src := `
method T.m(1) returns int {
Ltry:
    iconst 10
    iload 0
    idiv
    ireturn
Lcatch:
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    iconst 2
    invokestatic T.m
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	g := Build(p.MethodByName("T.m"))
	throw := 0
	for _, e := range g.Edges {
		if e.Kind == EdgeThrow {
			throw++
		}
	}
	if throw != 1 {
		t.Errorf("throw edges = %d, want 1", throw)
	}
}

func TestReversePostorderCoversAll(t *testing.T) {
	_, m := diamond(t)
	g := Build(m)
	order := ReversePostorder(g)
	if len(order) != len(g.Blocks) {
		t.Fatalf("order %v misses blocks", order)
	}
	if order[0] != g.EntryBlock() {
		t.Errorf("RPO starts at %d", order[0])
	}
	seen := map[int]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("duplicate block %d in order", b)
		}
		seen[b] = true
	}
}

func TestDominatorsDiamond(t *testing.T) {
	_, m := diamond(t)
	g := Build(m)
	idom := Dominators(g)
	// Entry dominates everything; the join's idom is the entry block.
	join := g.BlockOf[11]
	if idom[join] != g.EntryBlock() {
		t.Errorf("idom(join) = %d, want entry", idom[join])
	}
	for b := range g.Blocks {
		if !Dominates(idom, g.EntryBlock(), b) {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	then := g.BlockOf[2]
	if Dominates(idom, then, join) {
		t.Error("then-branch must not dominate the join")
	}
}

const loopSrc = `
method T.loop(1) returns int {
    iconst 0
    istore 1
Lhead:
    iload 1
    iload 0
    if_icmpge Ldone
    iinc 1 1
    goto Lhead
Ldone:
    iload 1
    ireturn
}
method T.main(0) {
    iconst 3
    invokestatic T.loop
    pop
    return
}
entry T.main
`

func TestNaturalLoops(t *testing.T) {
	p := bytecode.MustAssemble(loopSrc)
	g := Build(p.MethodByName("T.loop"))
	loops := NaturalLoops(g)
	if len(loops) != 1 {
		t.Fatalf("loops: %+v", loops)
	}
	head := g.BlockOf[2]
	if loops[0].Header != head {
		t.Errorf("loop header %d, want %d", loops[0].Header, head)
	}
	if len(loops[0].Body) != 2 {
		t.Errorf("loop body %v", loops[0].Body)
	}
	if be := BackEdges(g); len(be) != 1 || be[0].To != head {
		t.Errorf("backedges %v", be)
	}
}

func TestReachable(t *testing.T) {
	// Code after an unconditional return is unreachable.
	src := `
method T.m(0) {
    return
    nop
    return
}
entry T.m
`
	p := bytecode.MustAssemble(src)
	g := Build(p.Methods[0])
	reach := Reachable(g)
	if !reach[0] || reach[1] {
		t.Errorf("reachability wrong: %v", reach)
	}
}
