package streamfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/vm"
)

// encodeSample builds a small but complete stream exercising every record
// kind, returning the full byte stream (header included).
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := meta.NewSnapshot(meta.NewTemplateTable())
	if err := e.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := e.Sideband(vm.SwitchRecord{TSC: 100, Core: 0, Thread: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Sideband(vm.SwitchRecord{TSC: 200, Core: 1, Thread: -1}); err != nil {
		t.Fatal(err)
	}
	items := []pt.Item{
		{Packet: pt.Packet{Kind: 1, IP: 0x4000, NBits: 3, Bits: 5, WireLen: 8}},
		{Gap: true, LostBytes: 64, GapStart: 10, GapEnd: 20},
	}
	if err := e.Chunk(0, items); err != nil {
		t.Fatal(err)
	}
	if err := e.Watermark(1, 500); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	stream := encodeSample(t)
	ncores, err := ParseHeader(stream)
	if err != nil {
		t.Fatal(err)
	}
	if ncores != 2 {
		t.Fatalf("ncores = %d, want 2", ncores)
	}
	var kinds []Kind
	var recs []Record
	rest := stream[HeaderLen:]
	for len(rest) > 0 {
		rec, n, err := Decode(rest, pt.Traits())
		if err != nil {
			t.Fatalf("decode at offset %d: %v", len(stream)-len(rest), err)
		}
		kinds = append(kinds, rec.Kind)
		recs = append(recs, rec)
		rest = rest[n:]
	}
	want := []Kind{KindSnapshot, KindSideband, KindSideband, KindChunk, KindWatermark, KindSeal}
	if len(kinds) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("record %d: kind %d, want %d", i, kinds[i], want[i])
		}
	}
	if r := recs[1]; r.Rec.TSC != 100 || r.Rec.Core != 0 || r.Rec.Thread != 3 {
		t.Errorf("sideband 1 = %+v", r.Rec)
	}
	if r := recs[2]; r.Rec.Thread != -1 {
		t.Errorf("sideband 2 thread = %d, want -1 (negative survives)", r.Rec.Thread)
	}
	if r := recs[3]; r.Core != 0 || len(r.Items) != 2 {
		t.Fatalf("chunk = core %d, %d items", r.Core, len(r.Items))
	} else {
		if r.Items[0].Packet.IP != 0x4000 || r.Items[0].Packet.NBits != 3 {
			t.Errorf("chunk item 0 = %+v", r.Items[0])
		}
		if !r.Items[1].Gap || r.Items[1].LostBytes != 64 {
			t.Errorf("chunk item 1 = %+v", r.Items[1])
		}
	}
	if r := recs[4]; r.Core != 1 || r.Mark != 500 {
		t.Errorf("watermark = core %d mark %d", r.Core, r.Mark)
	}
	// The seal carries the CRC of everything before it.
	wantCRC := crc32.ChecksumIEEE(stream[:len(stream)-5])
	if recs[5].CRC != wantCRC {
		t.Errorf("seal CRC %#08x, want %#08x", recs[5].CRC, wantCRC)
	}
}

func TestRawEncoderMatchesEncoder(t *testing.T) {
	full := encodeSample(t)

	var raw bytes.Buffer
	e := NewRawEncoder(&raw, 2)
	snap := meta.NewSnapshot(meta.NewTemplateTable())
	if err := e.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	e.Sideband(vm.SwitchRecord{TSC: 100, Core: 0, Thread: 3})
	e.Sideband(vm.SwitchRecord{TSC: 200, Core: 1, Thread: -1})
	e.Chunk(0, []pt.Item{
		{Packet: pt.Packet{Kind: 1, IP: 0x4000, NBits: 3, Bits: 5, WireLen: 8}},
		{Gap: true, LostBytes: 64, GapStart: 10, GapEnd: 20},
	})
	e.Watermark(1, 500)
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	// Raw stream + independently written header == full stream: the raw
	// encoder seeds its checksum with the header it never writes.
	got := append(AppendHeader(nil, 2), raw.Bytes()...)
	if !bytes.Equal(got, full) {
		t.Fatalf("raw encoder + header diverges from full encoder (%d vs %d bytes)", len(got), len(full))
	}
}

func TestWatermarkSuppression(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	pre := buf.Len()
	e.Watermark(0, 10)
	one := buf.Len()
	if one == pre {
		t.Fatal("first watermark not written")
	}
	e.Watermark(0, 10) // same mark: no-op
	e.Watermark(0, 5)  // regression: no-op
	e.Watermark(-1, 9) // out-of-range core: no-op
	e.Watermark(2, 9)  // out-of-range core: no-op
	if buf.Len() != one {
		t.Fatalf("no-op watermarks wrote %d bytes", buf.Len()-one)
	}
	e.Watermark(0, 11)
	if buf.Len() == one {
		t.Fatal("advancing watermark suppressed")
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAfterSeal(t *testing.T) {
	var buf bytes.Buffer
	e, err := NewEncoder(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e.Err(); err != nil {
		t.Fatalf("Err() after successful seal = %v", err)
	}
	crc := e.CRC()
	if got, ok := SealCRC(buf.Bytes()[HeaderLen:]); !ok || got != crc {
		t.Fatalf("CRC() = %#08x, seal carries %#08x (ok=%v)", crc, got, ok)
	}
	if err := e.Sideband(vm.SwitchRecord{}); err == nil {
		t.Fatal("record after seal accepted")
	}
	if e.Err() == nil {
		t.Fatal("Err() nil after record-after-seal")
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader([]byte("JPSTR")); !errors.Is(err, ErrShort) {
		t.Errorf("short header: %v, want ErrShort", err)
	}
	bad := AppendHeader(nil, 2)
	bad[0] = 'X'
	if _, err := ParseHeader(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v, want ErrCorrupt", err)
	}
	zero := AppendHeader(nil, 0)
	if _, err := ParseHeader(zero); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero cores: %v, want ErrCorrupt", err)
	}
	huge := AppendHeader(nil, MaxCores+1)
	if _, err := ParseHeader(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("excess cores: %v, want ErrCorrupt", err)
	}
}

// TestScanTruncation slices every record of a valid stream at every length
// short of its true one: all must report ErrShort, never ErrCorrupt, never
// a wrong length.
func TestScanTruncation(t *testing.T) {
	stream := encodeSample(t)
	rest := stream[HeaderLen:]
	for len(rest) > 0 {
		n, err := Scan(rest)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < n; cut++ {
			if _, err := Scan(rest[:cut]); !errors.Is(err, ErrShort) {
				t.Fatalf("Scan of %d/%d bytes of tag %#x: %v, want ErrShort", cut, n, rest[0], err)
			}
			if _, _, err := Decode(rest[:cut], pt.Traits()); !errors.Is(err, ErrShort) {
				t.Fatalf("Decode of %d/%d bytes of tag %#x: %v, want ErrShort", cut, n, rest[0], err)
			}
		}
		rest = rest[n:]
	}
}

func TestScanCorruption(t *testing.T) {
	// Unknown tag.
	if _, err := Scan([]byte{0xEE, 0, 0, 0}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown tag: %v, want ErrCorrupt", err)
	}
	// Oversized declared length must be rejected before any allocation.
	huge := []byte{TagBlob, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(huge[1:5], MaxPayloadLen+1)
	if _, err := Scan(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized blob: %v, want ErrCorrupt", err)
	}
	hugeChunk := []byte{TagChunk, 0, 0, 0, 0, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hugeChunk[5:9], MaxPayloadLen+1)
	if _, err := Scan(hugeChunk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized chunk: %v, want ErrCorrupt", err)
	}
	// A snapshot whose payload is garbage scans fine but fails Decode with
	// a typed error (never a panic).
	junk := []byte{TagSnapshot, 4, 0, 0, 0, 1, 2, 3, 4}
	if _, err := Scan(junk); err != nil {
		t.Errorf("junk-payload snapshot should scan: %v", err)
	}
	if _, _, err := Decode(junk, pt.Traits()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("junk-payload snapshot decode: %v, want ErrCorrupt", err)
	}
	// Same for a chunk whose payload is not whole pt items.
	badItems := []byte{TagChunk, 0, 0, 0, 0, 2, 0, 0, 0, 0xFF, 0xFF}
	if _, _, err := Decode(badItems, pt.Traits()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad chunk items: %v, want ErrCorrupt", err)
	}
}

func TestSealCRCHelper(t *testing.T) {
	stream := encodeSample(t)
	seal := stream[len(stream)-5:]
	if _, ok := SealCRC(seal); !ok {
		t.Fatal("SealCRC rejected a real seal record")
	}
	if _, ok := SealCRC(seal[:4]); ok {
		t.Fatal("SealCRC accepted a truncated seal")
	}
	if _, ok := SealCRC(stream[HeaderLen : HeaderLen+5]); ok {
		t.Fatal("SealCRC accepted a non-seal record")
	}
}

// FuzzDecode drives Scan/Decode with arbitrary bytes: they must never
// panic, and their verdicts must be consistent (a scannable record either
// decodes or reports corruption; lengths agree).
func FuzzDecode(f *testing.F) {
	sample := []byte(nil)
	func() {
		var buf bytes.Buffer
		e, _ := NewEncoder(&buf, 2)
		e.Sideband(vm.SwitchRecord{TSC: 1, Core: 0, Thread: 1})
		e.Chunk(0, []pt.Item{{Packet: pt.Packet{Kind: 1, IP: 0x40}}})
		e.Watermark(0, 7)
		e.Seal()
		sample = buf.Bytes()
	}()
	f.Add(sample)
	f.Add(sample[HeaderLen:])
	f.Add([]byte{TagSideband})
	f.Add([]byte{TagSnapshot, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		ParseHeader(data)
		n, scanErr := Scan(data)
		rec, dn, decErr := Decode(data, pt.Traits())
		if scanErr != nil {
			if decErr == nil {
				t.Fatalf("Scan erred (%v) but Decode succeeded", scanErr)
			}
			if !errors.Is(scanErr, ErrShort) && !errors.Is(scanErr, ErrCorrupt) {
				t.Fatalf("Scan error %v is neither ErrShort nor ErrCorrupt", scanErr)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Scan length %d outside (0, %d]", n, len(data))
		}
		if decErr != nil {
			if !errors.Is(decErr, ErrCorrupt) {
				t.Fatalf("Decode of scannable record: error %v is not ErrCorrupt", decErr)
			}
			return
		}
		if dn != n {
			t.Fatalf("Scan length %d != Decode length %d", n, dn)
		}
		if rec.Kind < KindSnapshot || rec.Kind > KindSeal {
			t.Fatalf("decoded impossible kind %d", rec.Kind)
		}
	})
}
