// Package streamfmt defines the stream.jpt record format shared by the
// chunked run archive (jportal's StreamArchiveWriter/Reader) and the
// networked trace-ingest layer (internal/ingest): both frame the same
// tagged records, so a server can relay, validate and archive chunks
// byte-for-byte without understanding the run they came from.
//
// Layout: an 8-byte magic, a u32 core count, then tagged records (lengths
// and integers little-endian):
//
//	0x01 snapshot   u32 len, meta.WriteSnapshot bytes  (once, first record)
//	0x02 blob       u32 len, meta.WriteBlob bytes      (incremental metadata)
//	0x03 sideband   u64 TSC, i32 core, i32 thread      (one switch record)
//	0x04 chunk      u32 core, u32 len, source.AppendItem-framed trace items
//	0x05 watermark  u32 core, u64 mark
//	0x06 seal       u32 CRC-32 (IEEE) of header + every preceding record
//
// The seal CRC is the stream's end-to-end integrity check: a reader (or an
// ingest server relaying records off a socket) accumulates the checksum as
// bytes arrive and compares at the seal, so truncation-to-an-early-seal and
// payload corruption surface as ErrCorrupt instead of silently shortening
// the run.
//
// Scan and Decode operate on byte slices and never panic on hostile input:
// every structural failure wraps ErrCorrupt, and a buffer that simply ends
// before the record does yields ErrShort (retry with more bytes).
package streamfmt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"jportal/internal/meta"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// Magic opens every stream; version 3 added the CRC-carrying seal record.
var Magic = [8]byte{'J', 'P', 'S', 'T', 'R', 'M', '3', '\n'}

// Record tags.
const (
	TagSnapshot  byte = 0x01
	TagBlob      byte = 0x02
	TagSideband  byte = 0x03
	TagChunk     byte = 0x04
	TagWatermark byte = 0x05
	TagSeal      byte = 0x06
)

const (
	// HeaderLen is the fixed prefix: magic + u32 core count.
	HeaderLen = 12

	// MaxPayloadLen caps every length field. Legitimate snapshot, blob and
	// chunk payloads are far smaller; a corrupt length must become a typed
	// error, not a multi-gigabyte allocation.
	MaxPayloadLen = 1 << 28

	// MaxCores caps the header's core count for the same reason.
	MaxCores = 1 << 16
)

// ErrShort reports that the buffer ends before the record does: not
// corruption, just bytes that have not arrived (or been written) yet.
var ErrShort = fmt.Errorf("streamfmt: incomplete record")

// ErrCorrupt is wrapped by every structural decode failure — unknown tags,
// oversized lengths, bad magic, payloads that do not parse, and seal CRC
// mismatches. errors.Is(err, ErrCorrupt) distinguishes a damaged stream
// from one that is merely still being written (ErrShort).
var ErrCorrupt = fmt.Errorf("streamfmt: corrupt stream")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// AppendHeader appends the stream header for ncores cores.
func AppendHeader(dst []byte, ncores int) []byte {
	dst = append(dst, Magic[:]...)
	return binary.LittleEndian.AppendUint32(dst, uint32(ncores))
}

// ParseHeader validates the fixed prefix and returns the core count. A
// buffer shorter than HeaderLen yields ErrShort.
func ParseHeader(buf []byte) (ncores int, err error) {
	if len(buf) < HeaderLen {
		return 0, ErrShort
	}
	if [8]byte(buf[:8]) != Magic {
		return 0, corruptf("bad stream magic %q", buf[:8])
	}
	ncores = int(binary.LittleEndian.Uint32(buf[8:12]))
	if ncores <= 0 || ncores > MaxCores {
		return 0, corruptf("stream declares %d cores", ncores)
	}
	return ncores, nil
}

// Scan returns the length in bytes of the record at the front of buf
// without decoding its payload. It returns ErrShort when buf ends before
// the record does and an ErrCorrupt-wrapped error for unknown tags or
// implausible lengths. Scan is what the ingest server uses to validate that
// a network chunk carries whole records before appending them to an
// archive.
func Scan(buf []byte) (n int, err error) {
	if len(buf) == 0 {
		return 0, ErrShort
	}
	switch buf[0] {
	case TagSnapshot, TagBlob:
		if len(buf) < 5 {
			return 0, ErrShort
		}
		pl := binary.LittleEndian.Uint32(buf[1:5])
		if pl > MaxPayloadLen {
			return 0, corruptf("record %#x declares %d payload bytes", buf[0], pl)
		}
		n = 5 + int(pl)
	case TagSideband:
		n = 17
	case TagChunk:
		if len(buf) < 9 {
			return 0, ErrShort
		}
		pl := binary.LittleEndian.Uint32(buf[5:9])
		if pl > MaxPayloadLen {
			return 0, corruptf("chunk record declares %d payload bytes", pl)
		}
		n = 9 + int(pl)
	case TagWatermark:
		n = 13
	case TagSeal:
		n = 5
	default:
		return 0, corruptf("unknown record tag %#x", buf[0])
	}
	if len(buf) < n {
		return 0, ErrShort
	}
	return n, nil
}

// Kind discriminates Record.
type Kind int

// Record kinds, in tag order.
const (
	KindSnapshot Kind = iota
	KindBlob
	KindSideband
	KindChunk
	KindWatermark
	KindSeal
)

// Record is one decoded stream record.
type Record struct {
	Kind     Kind
	Snapshot *meta.Snapshot       // KindSnapshot
	Blob     *meta.CompiledMethod // KindBlob
	Rec      vm.SwitchRecord      // KindSideband
	Core     int                  // KindChunk, KindWatermark
	Items    []source.Item        // KindChunk
	Mark     uint64               // KindWatermark
	CRC      uint32               // KindSeal: checksum the writer recorded
}

// Decode decodes the record at the front of buf, returning it and the
// number of bytes consumed. Chunk items are validated against tr, the
// packet vocabulary of the trace source that wrote the stream. Errors are
// ErrShort (buffer ends early) or wrap ErrCorrupt; Decode never panics on
// arbitrary input.
func Decode(buf []byte, tr *source.Traits) (Record, int, error) {
	return DecodeInto(buf, nil, tr)
}

// DecodeInto is Decode with a reusable item buffer: a chunk record's Items
// are appended to items[:0], so a caller decoding many records (the archive
// replay loop) can reuse one backing array instead of allocating per
// record. The returned Record's Items alias that buffer — valid until the
// caller reuses it. A nil items behaves exactly like Decode.
func DecodeInto(buf []byte, items []source.Item, tr *source.Traits) (Record, int, error) {
	n, err := Scan(buf)
	if err != nil {
		return Record{}, 0, err
	}
	switch buf[0] {
	case TagSnapshot:
		snap, err := meta.ReadSnapshot(bytes.NewReader(buf[5:n]))
		if err != nil {
			return Record{}, 0, corruptf("snapshot record: %v", err)
		}
		return Record{Kind: KindSnapshot, Snapshot: snap}, n, nil
	case TagBlob:
		blob, err := meta.ReadBlob(bytes.NewReader(buf[5:n]))
		if err != nil {
			return Record{}, 0, corruptf("blob record: %v", err)
		}
		return Record{Kind: KindBlob, Blob: blob}, n, nil
	case TagSideband:
		return Record{Kind: KindSideband, Rec: vm.SwitchRecord{
			TSC:    binary.LittleEndian.Uint64(buf[1:9]),
			Core:   int(int32(binary.LittleEndian.Uint32(buf[9:13]))),
			Thread: int(int32(binary.LittleEndian.Uint32(buf[13:17]))),
		}}, n, nil
	case TagChunk:
		core := int(binary.LittleEndian.Uint32(buf[1:5]))
		payload := buf[9:n]
		items = items[:0]
		for len(payload) > 0 {
			it, used, err := source.DecodeItem(payload, tr)
			if err != nil {
				return Record{}, 0, corruptf("chunk record for core %d: %v", core, err)
			}
			items = append(items, it)
			payload = payload[used:]
		}
		return Record{Kind: KindChunk, Core: core, Items: items}, n, nil
	case TagWatermark:
		return Record{
			Kind: KindWatermark,
			Core: int(binary.LittleEndian.Uint32(buf[1:5])),
			Mark: binary.LittleEndian.Uint64(buf[5:13]),
		}, n, nil
	case TagSeal:
		return Record{Kind: KindSeal, CRC: binary.LittleEndian.Uint32(buf[1:5])}, n, nil
	}
	return Record{}, 0, corruptf("unknown record tag %#x", buf[0]) // unreachable: Scan rejected it
}

// SealCRC reports whether rec (a whole record as delimited by Scan) is a
// seal record, and if so the checksum it carries.
func SealCRC(rec []byte) (crc uint32, ok bool) {
	if len(rec) != 5 || rec[0] != TagSeal {
		return 0, false
	}
	return binary.LittleEndian.Uint32(rec[1:5]), true
}

// Encoder emits the stream format. Every record — and the header — is
// written with exactly one Write call on w, so an io.Writer that frames per
// call (the ingest client's live sink) sees record boundaries without
// re-scanning; a buffered file writer just concatenates them.
//
// The encoder accumulates the seal checksum over everything it emits and
// suppresses watermark records that do not move a core's mark forward, so
// an archive written locally and a stream sent over the wire by the same
// run are byte-identical.
type Encoder struct {
	w      io.Writer
	crc    uint32
	marks  []uint64
	tmp    []byte
	sealed bool
	err    error
}

// NewEncoder writes the stream header to w and returns an encoder for
// ncores cores.
func NewEncoder(w io.Writer, ncores int) (*Encoder, error) {
	e, hdr := newEncoder(w, ncores)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return e, nil
}

// NewRawEncoder returns an encoder that emits records only: the header is
// folded into the checksum but never written. The ingest client uses it to
// stream records to a server that writes its own (identical) header from
// the handshake's core count.
func NewRawEncoder(w io.Writer, ncores int) *Encoder {
	e, _ := newEncoder(w, ncores)
	return e
}

func newEncoder(w io.Writer, ncores int) (*Encoder, []byte) {
	hdr := AppendHeader(nil, ncores)
	return &Encoder{
		w:     w,
		crc:   crc32.Update(0, crc32.IEEETable, hdr),
		marks: make([]uint64, ncores),
	}, hdr
}

// CRC returns the checksum accumulated so far (header plus every record
// emitted). After Seal it is the value the seal record carries.
func (e *Encoder) CRC() uint32 { return e.crc }

// emit writes one whole record, updating the checksum. The first error
// sticks.
func (e *Encoder) emit(rec []byte) error {
	if e.err != nil {
		return e.err
	}
	if e.sealed {
		e.err = fmt.Errorf("streamfmt: record after seal")
		return e.err
	}
	e.crc = crc32.Update(e.crc, crc32.IEEETable, rec)
	if _, err := e.w.Write(rec); err != nil {
		e.err = err
	}
	return e.err
}

// Snapshot emits the initial snapshot record.
func (e *Encoder) Snapshot(snap *meta.Snapshot) error {
	if e.err != nil {
		return e.err
	}
	var buf bytes.Buffer
	if err := meta.WriteSnapshot(&buf, snap); err != nil {
		e.err = err
		return err
	}
	e.tmp = append(e.tmp[:0], TagSnapshot)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(buf.Len()))
	e.tmp = append(e.tmp, buf.Bytes()...)
	return e.emit(e.tmp)
}

// Blob emits one compiled-method metadata record.
func (e *Encoder) Blob(c *meta.CompiledMethod) error {
	if e.err != nil {
		return e.err
	}
	var buf bytes.Buffer
	if err := meta.WriteBlob(&buf, c); err != nil {
		e.err = err
		return err
	}
	e.tmp = append(e.tmp[:0], TagBlob)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(buf.Len()))
	e.tmp = append(e.tmp, buf.Bytes()...)
	return e.emit(e.tmp)
}

// Sideband emits one scheduler switch record.
func (e *Encoder) Sideband(rec vm.SwitchRecord) error {
	e.tmp = append(e.tmp[:0], TagSideband)
	e.tmp = binary.LittleEndian.AppendUint64(e.tmp, rec.TSC)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(int32(rec.Core)))
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(int32(rec.Thread)))
	return e.emit(e.tmp)
}

// Watermark emits a watermark record when it moves core's mark forward;
// no-op watermarks are suppressed so repeated delivery of the same frontier
// does not bloat (or diverge) the stream.
func (e *Encoder) Watermark(core int, mark uint64) error {
	if e.err != nil {
		return e.err
	}
	if core < 0 || core >= len(e.marks) || mark <= e.marks[core] {
		return nil
	}
	e.marks[core] = mark
	e.tmp = append(e.tmp[:0], TagWatermark)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(core))
	e.tmp = binary.LittleEndian.AppendUint64(e.tmp, mark)
	return e.emit(e.tmp)
}

// Chunk emits one trace-chunk record for core.
func (e *Encoder) Chunk(core int, items []source.Item) error {
	if e.err != nil {
		return e.err
	}
	if core < 0 || core >= len(e.marks) {
		e.err = fmt.Errorf("streamfmt: chunk for core %d of %d", core, len(e.marks))
		return e.err
	}
	e.tmp = append(e.tmp[:0], TagChunk)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, uint32(core))
	e.tmp = append(e.tmp, 0, 0, 0, 0) // payload length, patched below
	for i := range items {
		e.tmp = source.AppendItem(e.tmp, &items[i])
	}
	binary.LittleEndian.PutUint32(e.tmp[5:9], uint32(len(e.tmp)-9))
	return e.emit(e.tmp)
}

// Seal emits the seal record carrying the checksum of everything before
// it. The stream is complete; the encoder accepts no further records.
func (e *Encoder) Seal() error {
	if e.err != nil {
		return e.err
	}
	sealCRC := e.crc
	e.tmp = append(e.tmp[:0], TagSeal)
	e.tmp = binary.LittleEndian.AppendUint32(e.tmp, sealCRC)
	if err := e.emit(e.tmp); err != nil {
		return err
	}
	e.crc = sealCRC // CRC() keeps reporting the checksum the seal carries
	e.sealed = true
	return nil
}

// Err returns the encoder's sticky error: nil until a write fails or a
// record is emitted after Seal.
func (e *Encoder) Err() error { return e.err }
