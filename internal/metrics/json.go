package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// WriteSortedJSON renders a counter map as one stable, key-sorted JSON
// object. A plain map marshals in arbitrary order, which makes a /metrics
// endpoint annoying to diff; the ingest sidecar and the fleet coordinator
// both emit this form so their outputs line up line by line.
func WriteSortedJSON(w io.Writer, snap map[string]int64) error {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := w.Write([]byte("{\n")); err != nil {
		return err
	}
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		vb, _ := json.Marshal(snap[k])
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		if _, err := w.Write([]byte("  ")); err != nil {
			return err
		}
		if _, err := w.Write(kb); err != nil {
			return err
		}
		if _, err := w.Write([]byte(": ")); err != nil {
			return err
		}
		if _, err := w.Write(vb); err != nil {
			return err
		}
		if _, err := w.Write([]byte(comma + "\n")); err != nil {
			return err
		}
	}
	_, err := w.Write([]byte("}\n"))
	return err
}
