package metrics

import (
	"testing"
	"testing/quick"
)

func keys(xs ...uint64) []Key { return xs }

func TestLCSBasics(t *testing.T) {
	cases := []struct {
		a, b []Key
		want int
	}{
		{nil, nil, 0},
		{keys(1, 2, 3), nil, 0},
		{keys(1, 2, 3), keys(1, 2, 3), 3},
		{keys(1, 2, 3), keys(3, 2, 1), 1},
		{keys(1, 2, 3, 4), keys(2, 4), 2},
		{keys(1, 3, 5), keys(2, 4, 6), 0},
		{keys(1, 2, 1, 2), keys(2, 1, 2, 1), 3},
	}
	for i, c := range cases {
		if got := LCS(c.a, c.b); got != c.want {
			t.Errorf("case %d: LCS = %d, want %d", i, got, c.want)
		}
	}
}

func TestLCSProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		ka := make([]Key, len(a))
		for i, x := range a {
			ka[i] = Key(x % 4) // small alphabet forces overlaps
		}
		kb := make([]Key, len(b))
		for i, x := range b {
			kb[i] = Key(x % 4)
		}
		l := LCS(ka, kb)
		if l != LCS(kb, ka) {
			return false // symmetric
		}
		if l > len(ka) || l > len(kb) {
			return false // bounded
		}
		if len(ka) > 0 && string(rune(0)) != "" {
		}
		// Identity: LCS(a, a) == len(a).
		return LCS(ka, ka) == len(ka)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	if Similarity(nil, nil, 0) != 1 {
		t.Error("empty vs empty should be 1")
	}
	if Similarity(keys(1), nil, 0) != 0 {
		t.Error("something vs nothing should be 0")
	}
	if s := Similarity(keys(1, 2, 3), keys(1, 2, 3), 0); s != 1 {
		t.Errorf("identical similarity %f", s)
	}
	if s := Similarity(keys(1, 2, 3, 4), keys(1, 2), 0); s != 0.5 {
		t.Errorf("prefix similarity %f", s)
	}
}

func TestSimilarityWindowedMatchesExactOnAlignedStreams(t *testing.T) {
	// A long identical stream must score 1.0 under windowing.
	n := 10_000
	a := make([]Key, n)
	for i := range a {
		a[i] = Key(i % 97)
	}
	if s := Similarity(a, a, 512); s != 1 {
		t.Errorf("windowed identical similarity %f", s)
	}
	// A stream with 10% local substitutions scores close to 0.9.
	b := make([]Key, n)
	copy(b, a)
	for i := 0; i < n; i += 10 {
		b[i] = 1 << 40
	}
	s := Similarity(a, b, 512)
	if s < 0.85 || s > 0.95 {
		t.Errorf("10%% substitution similarity %f", s)
	}
}

func TestComputeBreakdownComposition(t *testing.T) {
	// Truth: 100 steps at t=i*10; steps 40..59 lost.
	var truth []TimedKey
	for i := 0; i < 100; i++ {
		truth = append(truth, TimedKey{Key: Key(i), TSC: uint64(i * 10)})
	}
	lost := []Interval{{Start: 400, End: 600}}
	var decoded, recovered []Key
	for i := 0; i < 100; i++ {
		switch {
		case i >= 40 && i < 60:
			if i%2 == 0 { // recover half the lost steps
				recovered = append(recovered, Key(i))
			}
		default:
			decoded = append(decoded, Key(i))
		}
	}
	b := ComputeBreakdown(truth, lost, decoded, recovered, 0)
	if b.PMD != 0.2 {
		t.Errorf("PMD = %f, want 0.2", b.PMD)
	}
	if b.DA != 1.0 {
		t.Errorf("DA = %f, want 1.0 (perfect decode of captured)", b.DA)
	}
	if b.RA != 0.5 {
		t.Errorf("RA = %f, want 0.5", b.RA)
	}
	wantOverall := 0.8*1.0 + 0.2*0.5
	if diff := b.Overall - wantOverall; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Overall = %f, want %f", b.Overall, wantOverall)
	}
	if b.PD != b.PDC*b.DA || b.PR != b.PMD*b.RA {
		t.Error("PD/PR composition broken")
	}
}

func TestTopNIntersection(t *testing.T) {
	a := []int32{1, 2, 3, 4, 5}
	b := []int32{5, 4, 9, 10, 11}
	if got := TopNIntersection(a, b, 5); got != 2 {
		t.Errorf("intersection = %d, want 2", got)
	}
	if got := TopNIntersection(a, b, 1); got != 0 {
		t.Errorf("top-1 intersection = %d, want 0", got)
	}
	if got := TopNIntersection(nil, b, 5); got != 0 {
		t.Error("empty ranking should intersect 0")
	}
}

func TestStepKeyInjective(t *testing.T) {
	f := func(m1, m2, p1, p2 int32) bool {
		if m1 == m2 && p1 == p2 {
			return StepKey(m1, p1) == StepKey(m2, p2)
		}
		return StepKey(m1, p1) != StepKey(m2, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func timedSeq(keys []Key, start, step uint64) []TimedKey {
	out := make([]TimedKey, len(keys))
	for i, k := range keys {
		out[i] = TimedKey{Key: k, TSC: start + uint64(i)*step}
	}
	return out
}

func TestSimilarityByTimeIdentical(t *testing.T) {
	a := timedSeq(keys(1, 2, 3, 4, 5, 6, 7, 8), 100, 10)
	if s := SimilarityByTime(a, a, 50); s != 1 {
		t.Errorf("identical timed similarity %f", s)
	}
}

func TestSimilarityByTimeElisionRobust(t *testing.T) {
	// b is a with every 4th element elided; timestamps preserved. The
	// timed similarity must stay at the true ratio (0.75) even across
	// many windows, where index-proportional windowing would drift.
	n := 20000
	var full, elided []TimedKey
	for i := 0; i < n; i++ {
		tk := TimedKey{Key: Key(i % 61), TSC: uint64(i) * 7}
		full = append(full, tk)
		if i%4 != 0 {
			elided = append(elided, tk)
		}
	}
	s := SimilarityByTime(elided, full, 4096)
	if s < 0.74 || s > 0.76 {
		t.Errorf("timed similarity %f, want ~0.75", s)
	}
}

func TestSimilarityByTimeDisjointTimes(t *testing.T) {
	a := timedSeq(keys(1, 2, 3), 0, 10)
	b := timedSeq(keys(1, 2, 3), 1_000_000, 10)
	if s := SimilarityByTime(a, b, 100); s != 0 {
		t.Errorf("disjoint-time similarity %f", s)
	}
}

func TestSimilarityByTimeEmpty(t *testing.T) {
	if SimilarityByTime(nil, nil, 10) != 1 {
		t.Error("empty/empty")
	}
	if SimilarityByTime(timedSeq(keys(1), 0, 1), nil, 10) != 0 {
		t.Error("one empty")
	}
}

func TestComputeBreakdownTimed(t *testing.T) {
	var truth []TimedKey
	for i := 0; i < 100; i++ {
		truth = append(truth, TimedKey{Key: Key(i), TSC: uint64(i * 10)})
	}
	lost := []Interval{{Start: 400, End: 600}}
	var decoded, recovered []TimedKey
	for i := 0; i < 100; i++ {
		tk := TimedKey{Key: Key(i), TSC: uint64(i * 10)}
		switch {
		case i >= 40 && i < 60:
			if i%2 == 0 {
				recovered = append(recovered, tk)
			}
		default:
			decoded = append(decoded, tk)
		}
	}
	b := ComputeBreakdownTimed(truth, lost, decoded, recovered, 1000)
	if b.PMD != 0.2 || b.DA != 1.0 || b.RA != 0.5 {
		t.Errorf("breakdown: %+v", b)
	}
	if b.Overall != b.PD+b.PR {
		t.Error("overall composition")
	}
}
