// Package metrics scores reconstructed control flow against ground truth:
// the matching degree of Figure 7 (a normalised longest-common-subsequence
// similarity over (method, pc) step streams, computed with windowed
// alignment so million-step traces stay tractable) and the Table 3
// breakdown (PMD/PDC from loss intervals, DA over captured regions, RA over
// lost regions, with PD and PR derived as in the paper).
package metrics

// Key encodes one control-flow step for comparison.
type Key = uint64

// StepKey packs (method, pc) into a Key.
func StepKey(method int32, pc int32) Key {
	return uint64(uint32(method))<<32 | uint64(uint32(pc))
}

// LCS returns the length of the longest common subsequence of a and b
// (O(len(a)*len(b)); use Similarity for long inputs).
func LCS(a, b []Key) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Similarity returns LCS(a, b) / max(len(a), len(b)) computed with windowed
// alignment: both sequences are cut into windows of the given size and
// aligned pairwise in order. The result is exact for in-order streams whose
// divergences are local (the reconstruction case) and a lower bound in
// general. window <= 0 selects a default of 2048.
func Similarity(a, b []Key, window int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if window <= 0 {
		window = 2048
	}
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	if len(a) <= window && len(b) <= window {
		return float64(LCS(a, b)) / float64(den)
	}
	// Proportional windowing keeps the two cursors aligned even when the
	// streams have different lengths.
	total := 0
	na, nb := len(a), len(b)
	steps := (den + window - 1) / window
	for s := 0; s < steps; s++ {
		alo, ahi := na*s/steps, na*(s+1)/steps
		blo, bhi := nb*s/steps, nb*(s+1)/steps
		total += LCS(a[alo:ahi], b[blo:bhi])
	}
	return float64(total) / float64(den)
}

// SimilarityByTime scores two timestamped step streams: both are cut into
// buckets of windowCycles by timestamp and aligned bucket-wise with exact
// LCS. Unlike index-proportional windowing, timestamp alignment does not
// drift when one stream is systematically shorter (e.g. debug-info elision
// removes ~14% of decoded steps), so it approaches the true global LCS for
// locally-divergent streams. Buckets larger than maxBucket elements fall
// back to the length-ratio bound to keep the cost quadratic only in the
// window population.
func SimilarityByTime(a, b []TimedKey, windowCycles uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if windowCycles == 0 {
		windowCycles = 4096
	}
	const maxBucket = 6000
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	total := 0
	ai, bi := 0, 0
	// Buckets advance through both streams in timestamp order.
	start := a[0].TSC
	if b[0].TSC < start {
		start = b[0].TSC
	}
	for ai < len(a) || bi < len(b) {
		end := start + windowCycles
		a0 := ai
		for ai < len(a) && a[ai].TSC < end {
			ai++
		}
		b0 := bi
		for bi < len(b) && b[bi].TSC < end {
			bi++
		}
		na, nb := ai-a0, bi-b0
		switch {
		case na == 0 || nb == 0:
			// nothing to match in this window
		case na > maxBucket || nb > maxBucket:
			if na < nb {
				total += na
			} else {
				total += nb
			}
		default:
			ka := make([]Key, na)
			for i := 0; i < na; i++ {
				ka[i] = a[a0+i].Key
			}
			kb := make([]Key, nb)
			for i := 0; i < nb; i++ {
				kb[i] = b[b0+i].Key
			}
			total += LCS(ka, kb)
		}
		// Skip empty stretches quickly.
		start = end
		var nextA, nextB uint64 = ^uint64(0), ^uint64(0)
		if ai < len(a) {
			nextA = a[ai].TSC
		}
		if bi < len(b) {
			nextB = b[bi].TSC
		}
		next := nextA
		if nextB < next {
			next = nextB
		}
		if next != ^uint64(0) && next > start {
			start = next
		}
	}
	return float64(total) / float64(den)
}

// Breakdown is the Table 3 row for one run.
type Breakdown struct {
	// PMD is the percentage of ground truth falling inside loss episodes.
	PMD float64
	// PDC = 1 - PMD.
	PDC float64
	// DA is the decode/reconstruction accuracy over captured regions.
	DA float64
	// RA is the recovery accuracy over lost regions.
	RA float64
	// PD = PDC * DA and PR = PMD * RA (as the paper's rows compose);
	// Overall = PD + PR is the Figure 7 bar.
	PD, PR, Overall float64
}

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start, End uint64
}

// Contains reports whether t falls in iv.
func (iv Interval) Contains(t uint64) bool { return t >= iv.Start && t < iv.End }

// TimedKey is a step with its timestamp.
type TimedKey struct {
	Key Key
	TSC uint64
}

// ComputeBreakdown splits truth into captured/lost parts using the loss
// intervals, scores the decoded steps against the captured truth and the
// recovered steps against the lost truth, and composes the Table 3 row.
func ComputeBreakdown(truth []TimedKey, lost []Interval, decoded, recovered []Key, window int) Breakdown {
	var capturedTruth, lostTruth []Key
	li := 0
	for _, tk := range truth {
		for li < len(lost) && tk.TSC >= lost[li].End {
			li++
		}
		if li < len(lost) && lost[li].Contains(tk.TSC) {
			lostTruth = append(lostTruth, tk.Key)
		} else {
			capturedTruth = append(capturedTruth, tk.Key)
		}
	}
	var b Breakdown
	if len(truth) > 0 {
		b.PMD = float64(len(lostTruth)) / float64(len(truth))
	}
	b.PDC = 1 - b.PMD
	b.DA = Similarity(decoded, capturedTruth, window)
	if len(lostTruth) > 0 {
		b.RA = Similarity(recovered, lostTruth, window)
	}
	b.PD = b.PDC * b.DA
	b.PR = b.PMD * b.RA
	b.Overall = b.PD + b.PR
	return b
}

// ComputeBreakdownTimed is ComputeBreakdown with timestamp-aligned scoring
// (SimilarityByTime) for the decoded part, whose timestamps are measured;
// recovered steps carry synthetic (interpolated) timestamps, so RA keeps
// the index-proportional alignment.
func ComputeBreakdownTimed(truth []TimedKey, lost []Interval, decoded, recovered []TimedKey, windowCycles uint64) Breakdown {
	var capturedTruth, lostTruth []TimedKey
	li := 0
	for _, tk := range truth {
		for li < len(lost) && tk.TSC >= lost[li].End {
			li++
		}
		if li < len(lost) && lost[li].Contains(tk.TSC) {
			lostTruth = append(lostTruth, tk)
		} else {
			capturedTruth = append(capturedTruth, tk)
		}
	}
	var b Breakdown
	if len(truth) > 0 {
		b.PMD = float64(len(lostTruth)) / float64(len(truth))
	}
	b.PDC = 1 - b.PMD
	b.DA = SimilarityByTime(decoded, capturedTruth, windowCycles)
	if len(lostTruth) > 0 {
		rk := make([]Key, len(recovered))
		for i := range recovered {
			rk[i] = recovered[i].Key
		}
		lk := make([]Key, len(lostTruth))
		for i := range lostTruth {
			lk[i] = lostTruth[i].Key
		}
		b.RA = Similarity(rk, lk, 2048)
	}
	b.PD = b.PDC * b.DA
	b.PR = b.PMD * b.RA
	b.Overall = b.PD + b.PR
	return b
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TopNIntersection returns |topN(a) ∩ topN(b)| where a and b are ranked
// lists (Table 4's hot-method agreement).
func TopNIntersection(a, b []int32, n int) int {
	if len(a) > n {
		a = a[:n]
	}
	if len(b) > n {
		b = b[:n]
	}
	set := make(map[int32]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	c := 0
	for _, x := range b {
		if set[x] {
			c++
		}
	}
	return c
}
