package metrics

import (
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 0) // registers the name at zero
	r.Add("b", 3)
	r.Add("b", 2)
	if got := r.Get("a"); got != 0 {
		t.Fatalf("a = %d", got)
	}
	if got := r.Get("b"); got != 5 {
		t.Fatalf("b = %d", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing = %d", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["a"] != 0 || snap["b"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	snap["b"] = 99
	if r.Get("b") != 5 {
		t.Fatal("snapshot aliases registry state")
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1) // must not panic
	if r.Get("x") != 0 || r.Snapshot() != nil {
		t.Fatal("nil registry not inert")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}
