package metrics

import "sync"

// Registry is a process-wide set of named monotonic counters: the export
// surface for the fault-injection and quarantine accounting (DESIGN.md §10).
// Producers (the quarantine ledger, the fault injector, the ingest server)
// Add to named counters; consumers (the ingest /metrics sidecar, the chaos
// report) read a Snapshot. All methods are safe for concurrent use and
// nil-safe: a nil *Registry silently drops updates, so optional wiring needs
// no guards at call sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewRegistry creates an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64)}
}

// Default is the process-wide registry. The root Session's quarantine
// ledger and the fault injector mirror their counts here so the ingest
// sidecar can expose them without plumbing.
var Default = NewRegistry()

// Registry counter names the robustness layer reports under (DESIGN.md
// §11). Declared here so producers (the stream replay loop) and the
// sidecar's pre-registration agree on spelling.
const (
	// CounterWatchdogStalls counts stall episodes the replay watchdog
	// detected across analysis sessions in this process.
	CounterWatchdogStalls = "watchdog_stalls"
	// CounterCheckpointsWritten counts session checkpoints durably written
	// by the resumable replay path.
	CounterCheckpointsWritten = "checkpoints_written"
	// CounterNetfaultInjected counts network faults the netfault layer
	// injected (drops, torn connections, partitions, delays), all classes
	// summed; per-class counts live under "netfault_injected_<class>".
	CounterNetfaultInjected = "netfault_injected_total"
	// CounterClientRetryBudget counts uploads that died because the
	// pusher's connect-level retry budget — shared across dial failures,
	// BUSY refusals, REDIRECT hops and reconnects — ran out.
	CounterClientRetryBudget = "client_retry_budget_exhausted"
	// CounterIofaultInjected counts storage faults the iofault layer
	// injected (ENOSPC, EIO, torn writes, slow I/O), all classes summed;
	// per-class counts live under "iofault_injected_<class>".
	CounterIofaultInjected = "iofault_injected_total"
)

// Storage-durability counter names (DESIGN.md §16): the scrubber's scan
// and repair outcomes and the retention/compaction reclaim accounting.
const (
	// CounterScrubSessionsScanned counts sessions the scrubber examined.
	CounterScrubSessionsScanned = "scrub_sessions_scanned"
	// CounterScrubBytesVerified counts archive bytes re-verified against
	// record framing and CRC seals.
	CounterScrubBytesVerified = "scrub_bytes_verified"
	// CounterScrubTornTails counts archives repaired by truncating a torn
	// tail back to the last valid record boundary.
	CounterScrubTornTails = "scrub_torn_tails_repaired"
	// CounterScrubRefetched counts sessions restored by re-fetching a
	// sealed copy from the owning fleet node over the ingest protocol.
	CounterScrubRefetched = "scrub_sessions_refetched"
	// CounterScrubQuarantined counts sessions the scrubber moved into the
	// quarantine directory as unrepairable.
	CounterScrubQuarantined = "scrub_sessions_quarantined"
	// CounterScrubReset counts partial uploads the scrubber reset to the
	// archive header so the pusher restarts the session from scratch.
	CounterScrubReset = "scrub_sessions_reset"
	// CounterRetentionDeleted counts sessions removed by the age/quota
	// retention policy.
	CounterRetentionDeleted = "retention_sessions_deleted"
	// CounterRetentionBytes counts bytes reclaimed by retention deletes.
	CounterRetentionBytes = "retention_bytes_reclaimed"
	// CounterCompactionRewritten counts sealed archives rewritten by
	// compaction.
	CounterCompactionRewritten = "compaction_archives_rewritten"
	// CounterCompactionDropped counts records compaction dropped
	// (duplicates, undecodable spans, post-seal trailing garbage).
	CounterCompactionDropped = "compaction_records_dropped"
)

// Add increments the named counter by delta (registering it at zero first
// if unseen). Adding zero registers the name without changing its value,
// which the sidecar uses to pre-declare fault-class counters.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Get returns the named counter's value (0 if unregistered).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Snapshot returns a copy of every registered counter.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}
