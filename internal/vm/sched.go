package vm

import (
	"errors"
)

// Run executes the given threads to completion under the round-robin
// multi-core scheduler and returns the run's statistics.
//
// Threads migrate freely across cores (whichever core is least advanced
// picks up the next runnable thread), so a thread's trace is spread over
// multiple per-core PT buffers — the exact situation §6 of the paper
// resolves with thread-switch sideband records. Those records are collected
// here, with a deterministic timestamp jitter modelling the inconsistency
// between scheduler clocks and trace timestamps (§7.2).
func (m *Machine) Run(specs []ThreadSpec) (*Stats, error) {
	if len(specs) == 0 {
		return nil, errors.New("vm: no threads to run")
	}
	if m.threads != nil {
		return nil, errors.New("vm: machine already ran")
	}
	for i, spec := range specs {
		meth := m.Prog.Method(spec.Method)
		if meth == nil {
			return nil, errors.New("vm: unknown thread entry method")
		}
		if len(spec.Args) != meth.NArgs {
			return nil, errors.New("vm: thread entry arity mismatch")
		}
		m.Stats.MethodCalls[meth.ID]++
		m.threads = append(m.threads, &thread{
			id:       i,
			frames:   []frame{{method: meth, locals: newLocals(meth, spec.Args)}},
			lastCore: -1,
		})
	}

	// runq is the FIFO of runnable threads.
	runq := make([]*thread, len(m.threads))
	copy(runq, m.threads)
	m.lastSideband = make([]uint64, len(m.cores))

	jitter := func(core int, tsc uint64, tid int) uint64 {
		j := m.Cfg.SwitchJitterCycles
		if j == 0 {
			return tsc
		}
		h := splitmixVM(uint64(core)<<32 ^ tsc ^ uint64(tid)*0x9e37)
		d := h % (2 * j) // uniform in [0, 2j)
		if tsc+d < j {
			return 0
		}
		return tsc + d - j // uniform in [tsc-j, tsc+j)
	}

	record := func(core int, tsc uint64, tid int) {
		ts := jitter(core, tsc, tid)
		if ts < m.lastSideband[core] {
			ts = m.lastSideband[core]
		}
		m.lastSideband[core] = ts
		m.sideband = append(m.sideband, SwitchRecord{Core: core, TSC: ts, Thread: tid})
	}

	for len(runq) > 0 {
		t := runq[0]
		runq = runq[1:]
		// Pick the least-advanced core (parallel wall-clock interleaving)
		// unless the thread's previous core is nearly as good — CPU
		// affinity, which keeps a thread's trace concentrated the way
		// Linux does. Every eighth quantum the thread migrates anyway,
		// so multi-core reassembly (§6) stays exercised.
		core := 0
		for c := 1; c < len(m.cores); c++ {
			if m.cores[c].clock < m.cores[core].clock {
				core = c
			}
		}
		t.slices++
		if t.slices%8 != 0 && t.lastCore >= 0 &&
			m.cores[t.lastCore].clock <= t.endTSC {
			// The previous core is free at the thread's resume time:
			// stay (the thread resumes at endTSC regardless of core).
			core = t.lastCore
		}
		t.lastCore = core

		cs := &m.cores[core]
		// A thread resumes no earlier than where it left off on its
		// previous core.
		if t.endTSC > cs.clock {
			cs.clock = t.endTSC
		}
		cs.used = true
		if m.Tracer != nil {
			m.Tracer.SwitchMark(core, cs.clock)
			// Real PT emits TIP.PGE carrying the resume IP when a traced
			// process is scheduled in; the offline decoder re-anchors on
			// it.
			m.Tracer.PGE(core, m.currentIP(t), cs.clock)
		}
		record(core, cs.clock, t.id)

		sliceStart := cs.clock
		deadline := cs.clock + m.Cfg.TimesliceCycles
		for !t.done && cs.clock < deadline {
			if err := m.step(t, core); err != nil {
				return nil, err
			}
		}
		m.Stats.ActiveCycles += cs.clock - sliceStart
		if m.Tracer != nil {
			// Sched-out: TIP.PGD at the point tracing pauses.
			m.Tracer.PGD(core, m.currentIP(t), cs.clock)
		}
		// Record the sched-out so offline splitting knows the core went
		// idle (Thread = -1): a loss episode continuing past this point
		// can no longer be losing this thread's data.
		record(core, cs.clock, -1)
		if m.Tracer != nil {
			// The exporter drains every core's buffer in real time,
			// including cores currently idle; advance them all to the
			// frontier so backlogs clear and loss episodes close at
			// their true end times.
			for c := range m.cores {
				m.Tracer.Advance(c, cs.clock)
			}
		}
		t.endTSC = cs.clock
		if !t.done {
			runq = append(runq, t)
		}
	}

	for c := range m.cores {
		if m.cores[c].used && m.Tracer != nil {
			m.Tracer.Advance(c, m.cores[c].clock)
		}
	}

	m.Stats.CoreCycles = make([]uint64, len(m.cores))
	for c := range m.cores {
		m.Stats.CoreCycles[c] = m.cores[c].clock
		if m.cores[c].clock > m.Stats.Cycles {
			m.Stats.Cycles = m.cores[c].clock
		}
	}
	m.Stats.ThreadResults = make([]int32, len(m.threads))
	for i, t := range m.threads {
		m.Stats.ThreadResults[i] = t.result
	}
	return &m.Stats, nil
}

// currentIP returns the native instruction pointer the thread is at: its
// compiled code position in JIT mode, the next opcode's template entry when
// interpreting, or the thread-exit stub when finished.
func (m *Machine) currentIP(t *thread) uint64 {
	if t.done || len(t.frames) == 0 {
		return m.stubs.ThreadExit.Start
	}
	f := &t.frames[len(t.frames)-1]
	if f.jit {
		return f.nm.AddrOf(f.ctx, f.pc)
	}
	return m.templates.Entry(f.method.Code[f.pc].Op)
}

// FinalTSC returns the maximum core clock (valid after Run).
func (m *Machine) FinalTSC() uint64 { return m.Stats.Cycles }

func splitmixVM(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
