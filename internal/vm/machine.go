// Package vm is the simulated language runtime (the paper's JVM, §2): a
// template interpreter, tiered JIT execution with a bounded code cache and
// eviction, a multi-core round-robin thread scheduler with thread-switch
// sideband records (§6), deterministic cycle accounting, and hooks through
// which the PT collector (native-level branch events), the ground-truth
// oracle (bytecode-level events), instrumentation probes and sampling
// profilers observe execution.
//
// The machine interprets bytecode semantically; what makes it a faithful
// substrate for JPortal is that it *emits the exact native-level trace
// events* the corresponding machine code would generate: in interpreted
// mode one indirect dispatch (TIP) per bytecode plus a TNT per conditional;
// in compiled mode only the TNTs, TIPs and FUPs that the JIT-generated
// native code (package jit) would produce, so that a PT decoder can walk
// the real blobs and reconstruct the flow.
package vm

import (
	"errors"
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/jit"
	"jportal/internal/meta"
)

// NativeTracer receives native-level trace events; *pt.Collector implements
// it. A nil tracer disables tracing (baseline runs).
type NativeTracer interface {
	PGE(core int, ip, tsc uint64)
	PGD(core int, ip, tsc uint64)
	TNT(core int, branchAddr uint64, taken bool, tsc uint64)
	TIP(core int, target, tsc uint64)
	FUP(core int, ip, tsc uint64)
	// SwitchMark is called at every context switch; real PT emits a PIP
	// packet on the CR3 write, giving the trace a precise boundary
	// timestamp (modelled as a forced TSC packet).
	SwitchMark(core int, tsc uint64)
	Advance(core int, tsc uint64)
}

// BytecodeListener observes every executed bytecode instruction; the
// ground-truth oracle implements it.
type BytecodeListener interface {
	OnExec(tid int, mid bytecode.MethodID, pc int32, core int, tsc uint64)
}

// ProbeHandler runs instrumentation probes (PROBE instructions).
type ProbeHandler func(tid int, probe int32)

// Sampler is a sampling profiler hook, called once per executed bytecode
// with the current position; safepoint is true at method entries and taken
// backedges. It returns extra cycles to charge (its own overhead).
type Sampler interface {
	OnStep(tid, core int, tsc uint64, mid bytecode.MethodID, safepoint bool) uint64
}

// Config tunes the machine.
type Config struct {
	// Cores is the number of simulated CPU cores.
	Cores int
	// TimesliceCycles is the scheduler quantum.
	TimesliceCycles uint64
	// C1Threshold and C2Threshold are invocation-count (plus weighted
	// backedge) compilation triggers.
	C1Threshold int64
	C2Threshold int64
	// BackedgeWeight is how much a taken interpreter backedge contributes
	// to hotness relative to an invocation.
	BackedgeWeight int64
	// CodeCacheBytes bounds the code cache; exceeding it evicts the
	// oldest compiled method (whose blob was already exported, §3.2).
	CodeCacheBytes uint64
	// SwitchJitterCycles perturbs sideband thread-switch timestamps,
	// reproducing the paper's timestamp-inconsistency failure mode
	// (§7.2).
	SwitchJitterCycles uint64
	// MaxSteps aborts runaway programs.
	MaxSteps uint64
	// DeoptOnThrow makes compiled frames that catch an exception
	// deoptimize to the interpreter at the handler (HotSpot's uncommon
	// trap for exceptional paths); the frame re-enters compiled code at
	// the next hot backedge via OSR. Disable for a simpler trace.
	DeoptOnThrow bool
	// Costs is the cycle cost model.
	Costs CostModel
	// JITSalt seeds the tier-2 elision/approximation hashes.
	JITSalt uint64
}

// DefaultConfig returns a reasonable single-socket configuration.
func DefaultConfig() Config {
	return Config{
		Cores:              4,
		TimesliceCycles:    50_000,
		C1Threshold:        40,
		C2Threshold:        400,
		BackedgeWeight:     1,
		CodeCacheBytes:     1 << 20,
		SwitchJitterCycles: 48,
		MaxSteps:           200_000_000,
		DeoptOnThrow:       true,
		Costs:              DefaultCosts(),
		JITSalt:            0x5eed,
	}
}

// ThreadSpec describes one thread to run: an entry method and its
// arguments.
type ThreadSpec struct {
	Method bytecode.MethodID
	Args   []int32
}

// SwitchRecord is a sideband thread-scheduling record: thread Thread began
// running on Core at (jittered) time TSC.
type SwitchRecord struct {
	Core   int
	TSC    uint64
	Thread int
}

// Stats accumulates a run's results.
type Stats struct {
	// Cycles is the wall-clock proxy: the maximum core clock at the end.
	Cycles uint64
	// ActiveCycles is total CPU time: the sum of all scheduling quanta.
	// Unlike wall-clock it is monotone in added per-step costs, so
	// overhead ratios computed from it are scheduling-noise free.
	ActiveCycles uint64
	// CoreCycles is each core's final clock.
	CoreCycles []uint64
	// ExecutedBytecodes counts all executed instructions; Interp/JIT
	// split them by execution mode.
	ExecutedBytecodes uint64
	InterpBytecodes   uint64
	JITBytecodes      uint64
	Compilations      int
	Evictions         int
	UncaughtThrows    int
	// MethodCycles is ground-truth exclusive time per method.
	MethodCycles []uint64
	// MethodCalls is ground-truth invocation counts.
	MethodCalls []int64
	// ThreadResults holds each thread's entry-method return value (0 for
	// void entries).
	ThreadResults []int32
}

// Machine executes one program.
type Machine struct {
	Prog     *bytecode.Program
	Cfg      Config
	Tracer   NativeTracer
	Listener BytecodeListener
	Probe    ProbeHandler
	// ProbeActionCost is charged per probe firing (the instrumentation
	// body: counter bump, event append, ...). Baselines set it.
	ProbeActionCost uint64
	Sampler         Sampler

	// Snapshot is the machine-code metadata JPortal's online component
	// collects; it grows as methods are compiled.
	Snapshot *meta.Snapshot

	templates *meta.TemplateTable
	stubs     meta.Stubs

	compiled  map[bytecode.MethodID]*jit.NativeMethod
	tierOf    map[bytecode.MethodID]int
	blobAt    map[uint64]*jit.NativeMethod
	evictFIFO []evictEntry
	nextCode  uint64
	cacheUsed uint64

	hotness []int64

	heap [][]int32

	threads  []*thread
	cores    []coreState
	sideband []SwitchRecord
	// lastSideband clamps per-core sideband timestamps to monotonicity
	// (jitter models measurement noise but records stay ordered, as
	// perf's do).
	lastSideband []uint64

	steps uint64
	Stats Stats
}

// evictEntry identifies one compilation in the code cache (a method can
// have several over its lifetime: tier-up, recompilation after eviction).
type evictEntry struct {
	mid  bytecode.MethodID
	base uint64
	size uint64
}

type coreState struct {
	clock uint64
	used  bool
	// milli accumulates sub-cycle trace-export costs; rolled into clock
	// every 1000 millicycles.
	milli uint64
}

type thread struct {
	id     int
	frames []frame
	done   bool
	result int32
	// endTSC is the simulated time the thread last stopped running; a
	// core resuming it must advance to at least this clock (a thread
	// cannot run in two places at once).
	endTSC uint64
	// lastCore remembers where the thread last ran (scheduler affinity);
	// slices counts scheduling quanta for periodic forced migration.
	lastCore int
	slices   uint64
}

type frame struct {
	method *bytecode.Method
	locals []int32
	stack  []int32
	pc     int32

	jit    bool
	nm     *jit.NativeMethod
	ctx    jit.CtxID
	inline bool
	// retNative is where a non-inline return transfers at the native
	// level: a caller-blob resume address, the RetEntry stub (returning
	// to the interpreter), or the ThreadExit stub (bottom frame). For
	// interpreted frames it is nonzero only when the caller is compiled.
	retNative uint64
}

// New creates a machine for prog.
func New(prog *bytecode.Program, cfg Config) *Machine {
	t, stubs := buildTemplates()
	snap := meta.NewSnapshot(t)
	snap.Stubs = stubs
	m := &Machine{
		Prog:      prog,
		Cfg:       cfg,
		Snapshot:  snap,
		templates: t,
		stubs:     stubs,
		compiled:  make(map[bytecode.MethodID]*jit.NativeMethod),
		tierOf:    make(map[bytecode.MethodID]int),
		blobAt:    make(map[uint64]*jit.NativeMethod),
		nextCode:  meta.CodeCacheBase,
		hotness:   make([]int64, len(prog.Methods)),
		heap:      make([][]int32, 1), // slot 0 is null
		cores:     make([]coreState, cfg.Cores),
	}
	m.Stats.MethodCycles = make([]uint64, len(prog.Methods))
	m.Stats.MethodCalls = make([]int64, len(prog.Methods))
	return m
}

// Templates exposes the template table (for decoders and tests).
func (m *Machine) Templates() *meta.TemplateTable { return m.templates }

// Stubs exposes the adapter stub ranges.
func (m *Machine) Stubs() meta.Stubs { return m.stubs }

// Sideband returns the thread-switch records collected during Run.
func (m *Machine) Sideband() []SwitchRecord { return m.sideband }

// SidebandWatermarks returns, per core, a timestamp below which no further
// switch record can be emitted (sideband is clamped monotone per core).
// Streaming consumers use it to decide which scheduling windows are final.
func (m *Machine) SidebandWatermarks() []uint64 {
	return append([]uint64(nil), m.lastSideband...)
}

// CompiledTier returns the current tier of mid (0 = interpreted).
func (m *Machine) CompiledTier(mid bytecode.MethodID) int { return m.tierOf[mid] }

// maybeCompile applies the tiered compilation policy after a hotness bump.
func (m *Machine) maybeCompile(mid bytecode.MethodID, core int) {
	h := m.hotness[mid]
	tier := m.tierOf[mid]
	switch {
	case tier == 0 && h >= m.Cfg.C1Threshold:
		m.compile(mid, 1, core)
	case tier == 1 && h >= m.Cfg.C2Threshold:
		m.compile(mid, 2, core)
	}
}

func (m *Machine) compile(mid bytecode.MethodID, tier int, core int) {
	entries := make(map[bytecode.MethodID]uint64, len(m.compiled))
	for id, nm := range m.compiled {
		entries[id] = nm.EntryAddr()
	}
	var opts jit.Options
	if tier == 1 {
		opts = jit.DefaultC1(m.nextCode, entries)
	} else {
		opts = jit.DefaultC2(m.nextCode, entries)
	}
	opts.Salt = m.Cfg.JITSalt
	nm, err := jit.Compile(m.Prog, mid, opts)
	if err != nil {
		// Compilation bugs must never corrupt execution; stay interpreted.
		panic(fmt.Sprintf("vm: jit compile m%d: %v", mid, err))
	}
	size := nm.Meta.Code.Limit() - nm.Meta.Code.Base()
	// Bump allocation: addresses are never reused, so every exported blob
	// stays unambiguous in the snapshot even after eviction (a documented
	// simplification relative to HotSpot's reusing code cache).
	m.nextCode = nm.Meta.Code.Limit() + 0x40
	m.cacheUsed += size
	m.compiled[mid] = nm
	m.tierOf[mid] = tier
	m.blobAt[nm.EntryAddr()] = nm
	m.evictFIFO = append(m.evictFIFO, evictEntry{mid: mid, base: nm.EntryAddr(), size: size})
	m.Stats.Compilations++

	// JPortal online collection: the blob and debug info are copied out
	// through the shared buffer (paper §6); charge the cost.
	nInstr := uint64(len(nm.Meta.Code.Instrs))
	m.cores[core].clock += nInstr * m.Cfg.Costs.CompileCostPerInstr
	if m.Tracer != nil {
		m.cores[core].clock += nInstr * m.Cfg.Costs.MetadataExportPerInstr
	}
	m.Snapshot.Export(nm.Meta)

	for m.cacheUsed > m.Cfg.CodeCacheBytes && len(m.evictFIFO) > 1 {
		m.evictOldest()
	}
}

// evictOldest removes the least recently compiled blob from the cache (its
// exported metadata remains available to the offline decoder). When the
// method has since been recompiled at a different address, only the stale
// blob's space is reclaimed; the current compilation stays installed.
func (m *Machine) evictOldest() {
	victim := m.evictFIFO[0]
	m.evictFIFO = m.evictFIFO[1:]
	m.cacheUsed -= victim.size
	m.Stats.Evictions++
	nm, ok := m.compiled[victim.mid]
	if !ok || nm.EntryAddr() != victim.base {
		return // superseded by a newer compilation
	}
	delete(m.compiled, victim.mid)
	delete(m.tierOf, victim.mid)
	// Old addresses stay resolvable: frames entered via stale direct
	// calls keep running the old blob.
	m.hotness[victim.mid] = m.Cfg.C1Threshold / 2
}

var errMaxSteps = errors.New("vm: step budget exhausted (runaway program?)")
