package vm

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/pt"
)

const fibSrc = `
method Test.fib(1) returns int {
    iload 0
    iconst 2
    if_icmpge Lrec
    iload 0
    ireturn
Lrec:
    iload 0
    iconst 1
    isub
    invokestatic Test.fib
    iload 0
    iconst 2
    isub
    invokestatic Test.fib
    iadd
    ireturn
}

method Test.main(0) {
    iconst 15
    invokestatic Test.fib
    istore 0
    return
}

entry Test.main
`

func TestSmokeFib(t *testing.T) {
	prog := bytecode.MustAssemble(fibSrc)
	m := New(prog, DefaultConfig())
	col := pt.NewCollector(pt.DefaultConfig(), m.Cfg.Cores)
	m.Tracer = col
	stats, err := m.Run([]ThreadSpec{{Method: prog.Entry}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExecutedBytecodes == 0 {
		t.Fatal("no bytecodes executed")
	}
	traces := col.Finish(m.FinalTSC())
	var packets int
	for _, tr := range traces {
		packets += len(tr.Items)
	}
	if packets == 0 {
		t.Fatal("no packets collected")
	}
	if stats.Compilations == 0 {
		t.Error("fib(15) should have triggered JIT compilation")
	}
	t.Logf("bytecodes=%d (interp=%d jit=%d) cycles=%d compilations=%d packets=%d genBytes=%d",
		stats.ExecutedBytecodes, stats.InterpBytecodes, stats.JITBytecodes,
		stats.Cycles, stats.Compilations, packets, col.GenBytes)
}

func TestSmokeSemantics(t *testing.T) {
	src := `
method T.main(0) returns int {
    iconst 10
    newarray
    istore 0
    iconst 0
    istore 1
Lloop:
    iload 1
    iconst 10
    if_icmpge Ldone
    iload 0
    iload 1
    iload 1
    iload 1
    imul
    iastore
    iinc 1 1
    goto Lloop
Ldone:
    iload 0
    iconst 7
    iaload
    ireturn
}
entry T.main
`
	prog := bytecode.MustAssemble(src)
	m := New(prog, DefaultConfig())
	stats, err := m.Run([]ThreadSpec{{Method: prog.Entry}})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.ThreadResults[0]; got != 49 {
		t.Fatalf("main returned %d, want 49", got)
	}
}

func TestSmokeExceptions(t *testing.T) {
	src := `
method T.main(0) returns int {
Ltry:
    iconst 5
    iconst 0
    idiv
    ireturn
Lcatch:
    iconst 100
    iadd
    ireturn
    handler Ltry Lcatch Lcatch any
}
entry T.main
`
	prog := bytecode.MustAssemble(src)
	m := New(prog, DefaultConfig())
	stats, err := m.Run([]ThreadSpec{{Method: prog.Entry}})
	if err != nil {
		t.Fatal(err)
	}
	// Handler receives the exception code (1) and adds 100.
	if got := stats.ThreadResults[0]; got != 101 {
		t.Fatalf("main returned %d, want 101", got)
	}
}
