package vm

import (
	"testing"

	"jportal/internal/bytecode"
)

// runProg executes src's entry and returns the machine and stats.
func runProg(t *testing.T, src string, cfg Config) (*Machine, *Stats) {
	t.Helper()
	p := bytecode.MustAssemble(src)
	m := New(p, cfg)
	stats, err := m.Run([]ThreadSpec{{Method: p.Entry}})
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

// runFunc executes a named method with args and returns its result.
func runFunc(t *testing.T, src, name string, args ...int32) int32 {
	t.Helper()
	p := bytecode.MustAssemble(src)
	m := New(p, DefaultConfig())
	meth := p.MethodByName(name)
	if meth == nil {
		t.Fatalf("no method %s", name)
	}
	stats, err := m.Run([]ThreadSpec{{Method: meth.ID, Args: args}})
	if err != nil {
		t.Fatal(err)
	}
	return stats.ThreadResults[0]
}

const arithSrc = `
method T.calc(2) returns int {
    iload 0
    iload 1
    iadd
    iload 0
    iload 1
    isub
    imul
    ireturn
}
method T.shifts(2) returns int {
    iload 0
    iload 1
    ishl
    iload 0
    iload 1
    ishr
    ixor
    ireturn
}
method T.bits(2) returns int {
    iload 0
    iload 1
    iand
    iload 0
    iload 1
    ior
    ixor
    ireturn
}
method T.divrem(2) returns int {
    iload 0
    iload 1
    idiv
    iload 0
    iload 1
    irem
    iadd
    ireturn
}
method T.neg(1) returns int {
    iload 0
    ineg
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`

func TestArithmeticSemantics(t *testing.T) {
	if got := runFunc(t, arithSrc, "T.calc", 7, 3); got != (7+3)*(7-3) {
		t.Errorf("calc = %d", got)
	}
	if got := runFunc(t, arithSrc, "T.shifts", -8, 2); got != (-8<<2)^(-8>>2) {
		t.Errorf("shifts = %d", got)
	}
	if got := runFunc(t, arithSrc, "T.bits", 12, 10); got != (12&10)^(12|10) {
		t.Errorf("bits = %d", got)
	}
	if got := runFunc(t, arithSrc, "T.divrem", 17, 5); got != 17/5+17%5 {
		t.Errorf("divrem = %d", got)
	}
	if got := runFunc(t, arithSrc, "T.divrem", -17, 5); got != -17/5+-17%5 {
		t.Errorf("negative divrem = %d", got)
	}
	if got := runFunc(t, arithSrc, "T.neg", -2147483648); got != -2147483648 {
		t.Errorf("neg MinInt32 = %d (should wrap)", got)
	}
}

func TestDivisionOverflowWraps(t *testing.T) {
	// MinInt32 / -1 must not crash the VM and must wrap per JVM rules.
	if got := runFunc(t, arithSrc, "T.divrem", -2147483648, -1); got != -2147483648+0 {
		t.Errorf("MinInt32/-1 = %d", got)
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift counts are masked to 5 bits (JVM semantics): 1 << 33 == 2.
	src := `
method T.s(2) returns int {
    iload 0
    iload 1
    ishl
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`
	if got := runFunc(t, src, "T.s", 1, 33); got != 2 {
		t.Errorf("1<<33 = %d, want 2", got)
	}
}

const arraySrc = `
method T.sum(1) returns int {
    iload 0
    newarray
    istore 1
    iconst 0
    istore 2
Lfill:
    iload 2
    iload 0
    if_icmpge Lsum0
    iload 1
    iload 2
    iload 2
    iconst 3
    imul
    iastore
    iinc 2 1
    goto Lfill
Lsum0:
    iconst 0
    istore 3
    iconst 0
    istore 2
Lsum:
    iload 2
    iload 1
    arraylength
    if_icmpge Ldone
    iload 3
    iload 1
    iload 2
    iaload
    iadd
    istore 3
    iinc 2 1
    goto Lsum
Ldone:
    iload 3
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`

func TestArraySemantics(t *testing.T) {
	// sum of 3*i for i in [0,10): 3*45 = 135.
	if got := runFunc(t, arraySrc, "T.sum", 10); got != 135 {
		t.Errorf("array sum = %d, want 135", got)
	}
}

const excSrc = `
method T.thrower(1) returns int {
    iload 0
    athrow
}
method T.catcher(1) returns int {
Ltry:
    iload 0
    invokestatic T.thrower
    ireturn
Lcatch10:
    iconst 100
    iadd
    ireturn
Lany:
    iconst 1000
    iadd
    ireturn
    handler Ltry Lcatch10 Lcatch10 10
    handler Ltry Lcatch10 Lany any
}
method T.uncaught(0) returns int {
    iconst 42
    athrow
}
method T.bounds(1) returns int {
Ltry:
    iconst 4
    newarray
    iload 0
    iaload
    ireturn
Lcatch:
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    return
}
entry T.main
`

func TestExceptionDispatchByCode(t *testing.T) {
	// Code 10 hits the first (specific) handler: 10 + 100.
	if got := runFunc(t, excSrc, "T.catcher", 10); got != 110 {
		t.Errorf("specific handler: %d", got)
	}
	// Other codes fall to the any-handler: 7 + 1000.
	if got := runFunc(t, excSrc, "T.catcher", 7); got != 1007 {
		t.Errorf("any handler: %d", got)
	}
}

func TestExceptionCrossFrameUnwind(t *testing.T) {
	// thrower has no handler: the exception unwinds into catcher.
	p := bytecode.MustAssemble(excSrc)
	m := New(p, DefaultConfig())
	stats, err := m.Run([]ThreadSpec{{Method: p.MethodByName("T.catcher").ID, Args: []int32{10}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UncaughtThrows != 0 {
		t.Error("cross-frame unwind failed")
	}
	if stats.ThreadResults[0] != 110 {
		t.Errorf("result %d", stats.ThreadResults[0])
	}
}

func TestUncaughtExceptionTerminatesThread(t *testing.T) {
	p := bytecode.MustAssemble(excSrc)
	m := New(p, DefaultConfig())
	stats, err := m.Run([]ThreadSpec{{Method: p.MethodByName("T.uncaught").ID}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UncaughtThrows != 1 {
		t.Errorf("uncaught = %d", stats.UncaughtThrows)
	}
}

func TestRuntimeExceptionCodes(t *testing.T) {
	// Out-of-bounds index raises ExcBounds, caught and returned.
	if got := runFunc(t, excSrc, "T.bounds", 9); got != ExcBounds {
		t.Errorf("bounds code = %d, want %d", got, ExcBounds)
	}
	if got := runFunc(t, excSrc, "T.bounds", -1); got != ExcBounds {
		t.Errorf("negative index code = %d", got)
	}
	// In-bounds access returns the (zero) element.
	if got := runFunc(t, excSrc, "T.bounds", 2); got != 0 {
		t.Errorf("in bounds = %d", got)
	}
}

const negSizeSrc = `
method T.mk(1) returns int {
Ltry:
    iload 0
    newarray
    arraylength
    ireturn
Lcatch:
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    return
}
entry T.main
`

func TestNegativeArraySize(t *testing.T) {
	if got := runFunc(t, negSizeSrc, "T.mk", -3); got != ExcNegativeSize {
		t.Errorf("code %d", got)
	}
	if got := runFunc(t, negSizeSrc, "T.mk", 6); got != 6 {
		t.Errorf("length %d", got)
	}
}

const switchSrc = `
method T.sw(1) returns int {
    iload 0
    tableswitch 2 default=Ld [La Lb Lc]
La:
    iconst 10
    ireturn
Lb:
    iconst 20
    ireturn
Lc:
    iconst 30
    ireturn
Ld:
    iconst -1
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`

func TestTableSwitchSemantics(t *testing.T) {
	cases := map[int32]int32{2: 10, 3: 20, 4: 30, 1: -1, 99: -1, -5: -1}
	for in, want := range cases {
		if got := runFunc(t, switchSrc, "T.sw", in); got != want {
			t.Errorf("sw(%d) = %d, want %d", in, got, want)
		}
	}
}

const hotLoopSrc = `
method T.hot(1) returns int {
    iconst 0
    istore 1
Lloop:
    iload 1
    iload 0
    if_icmpge Ldone
    iinc 1 1
    goto Lloop
Ldone:
    iload 1
    ireturn
}
method T.main(0) {
    iconst 20000
    invokestatic T.hot
    istore 0
    return
}
entry T.main
`

func TestOSRCompilesLongRunningLoop(t *testing.T) {
	m, stats := runProg(t, hotLoopSrc, DefaultConfig())
	if stats.Compilations == 0 {
		t.Fatal("hot loop never compiled")
	}
	hot := m.Prog.MethodByName("T.hot")
	if m.CompiledTier(hot.ID) != 2 {
		t.Errorf("hot tier = %d, want 2 (re-OSR tier-up)", m.CompiledTier(hot.ID))
	}
	// Most bytecodes must have executed in compiled mode.
	if stats.JITBytecodes < stats.InterpBytecodes {
		t.Errorf("OSR ineffective: interp=%d jit=%d", stats.InterpBytecodes, stats.JITBytecodes)
	}
}

const recurSrc = `
method T.fib(1) returns int {
    iload 0
    iconst 2
    if_icmpge Lr
    iload 0
    ireturn
Lr:
    iload 0
    iconst 1
    isub
    invokestatic T.fib
    iload 0
    iconst 2
    isub
    invokestatic T.fib
    iadd
    ireturn
}
method T.main(0) {
    iconst 18
    invokestatic T.fib
    istore 0
    return
}
entry T.main
`

func TestRecursionAndTieredCompilation(t *testing.T) {
	m, stats := runProg(t, recurSrc, DefaultConfig())
	fib := m.Prog.MethodByName("T.fib")
	if m.CompiledTier(fib.ID) != 2 {
		t.Errorf("fib tier = %d", m.CompiledTier(fib.ID))
	}
	if stats.MethodCalls[fib.ID] < 1000 {
		t.Errorf("fib calls = %d", stats.MethodCalls[fib.ID])
	}
}

func TestCodeCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CodeCacheBytes = 100 // tiny: force eviction
	m, stats := runProg(t, recurSrc, cfg)
	if stats.Evictions == 0 {
		t.Error("no evictions under a tiny code cache")
	}
	// The snapshot retains every exported blob even after eviction.
	if len(m.Snapshot.Compiled) < stats.Compilations {
		t.Errorf("snapshot holds %d blobs for %d compilations",
			len(m.Snapshot.Compiled), stats.Compilations)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		p := bytecode.MustAssemble(recurSrc)
		m := New(p, DefaultConfig())
		stats, err := m.Run([]ThreadSpec{{Method: p.Entry}})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cycles, stats.ExecutedBytecodes
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", c1, b1, c2, b2)
	}
}

func TestMultiThreadScheduling(t *testing.T) {
	src := `
method T.work(1) returns int {
    iconst 0
    istore 1
Ll:
    iload 1
    iconst 30000
    if_icmpge Ld
    iinc 1 1
    goto Ll
Ld:
    iload 1
    ireturn
}
method T.main(0) {
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	cfg := DefaultConfig()
	cfg.Cores = 2
	m := New(p, cfg)
	work := p.MethodByName("T.work")
	specs := []ThreadSpec{
		{Method: work.ID, Args: []int32{1}},
		{Method: work.ID, Args: []int32{2}},
		{Method: work.ID, Args: []int32{3}},
	}
	stats, err := m.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range stats.ThreadResults {
		if r != 30000 {
			t.Errorf("thread %d result %d", i, r)
		}
	}
	// Sideband must cover all threads and be time-monotone per core.
	seen := map[int]bool{}
	lastPerCore := map[int]uint64{}
	idles := 0
	for _, r := range m.Sideband() {
		if r.Thread >= 0 {
			seen[r.Thread] = true
		} else {
			idles++
		}
		if r.TSC < lastPerCore[r.Core] {
			t.Errorf("sideband regressed on core %d: %d < %d", r.Core, r.TSC, lastPerCore[r.Core])
		}
		lastPerCore[r.Core] = r.TSC
	}
	if len(seen) != 3 {
		t.Errorf("sideband covers %d threads", len(seen))
	}
	if idles == 0 {
		t.Error("no sched-out records")
	}
	// With 3 threads on 2 cores, wall-clock beats serial execution.
	if stats.Cycles >= stats.ActiveCycles {
		t.Errorf("no parallelism: wall %d vs cpu %d", stats.Cycles, stats.ActiveCycles)
	}
}

func TestRunErrors(t *testing.T) {
	p := bytecode.MustAssemble(recurSrc)
	m := New(p, DefaultConfig())
	if _, err := m.Run(nil); err == nil {
		t.Error("empty specs accepted")
	}
	m2 := New(p, DefaultConfig())
	if _, err := m2.Run([]ThreadSpec{{Method: 99}}); err == nil {
		t.Error("unknown entry accepted")
	}
	m3 := New(p, DefaultConfig())
	if _, err := m3.Run([]ThreadSpec{{Method: p.MethodByName("T.fib").ID}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	m4 := New(p, DefaultConfig())
	if _, err := m4.Run([]ThreadSpec{{Method: p.Entry}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m4.Run([]ThreadSpec{{Method: p.Entry}}); err == nil {
		t.Error("machine reuse accepted")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	src := `
method T.forever(0) {
Ll:
    goto Ll
}
entry T.forever
`
	p := bytecode.MustAssemble(src)
	cfg := DefaultConfig()
	cfg.MaxSteps = 10_000
	m := New(p, cfg)
	if _, err := m.Run([]ThreadSpec{{Method: p.Entry}}); err == nil {
		t.Fatal("runaway loop not aborted")
	}
}

func TestMethodCyclesAttribution(t *testing.T) {
	m, stats := runProg(t, recurSrc, DefaultConfig())
	fib := m.Prog.MethodByName("T.fib")
	main := m.Prog.MethodByName("T.main")
	if stats.MethodCycles[fib.ID] <= stats.MethodCycles[main.ID] {
		t.Errorf("fib cycles (%d) should dominate main (%d)",
			stats.MethodCycles[fib.ID], stats.MethodCycles[main.ID])
	}
}

const deoptSrc = `
method T.risky(1) returns int {
    iconst 0
    istore 1
Lloop:
    iload 1
    iconst 4000
    if_icmpge Ldone
Ltry:
    iconst 100
    iload 1
    iconst 37
    irem
    iconst 18
    isub
    idiv
    pop
    goto Lnext
Lcatch:
    pop
Lnext:
    iinc 1 1
    goto Lloop
Ldone:
    iload 1
    ireturn
    handler Ltry Lcatch Lcatch any
}
method T.main(0) {
    iconst 0
    invokestatic T.risky
    istore 0
    return
}
entry T.main
`

func TestDeoptOnThrowAndReOSR(t *testing.T) {
	// risky's loop divides by (i%37 - 18), which is zero every 37th
	// iteration: the compiled loop takes the exception path repeatedly,
	// deoptimizes, and must OSR back into compiled code in between.
	cfg := DefaultConfig()
	cfg.DeoptOnThrow = true
	m, stats := runProg(t, deoptSrc, cfg)
	risky := m.Prog.MethodByName("T.risky")
	if m.CompiledTier(risky.ID) == 0 {
		t.Fatal("risky never compiled")
	}
	if stats.UncaughtThrows != 0 {
		t.Fatal("handler lost")
	}
	// Both modes must have executed substantially: JIT via OSR, interp
	// via repeated deopts.
	if stats.JITBytecodes == 0 || stats.InterpBytecodes < 300 {
		t.Errorf("mode churn missing: interp=%d jit=%d", stats.InterpBytecodes, stats.JITBytecodes)
	}

	// Same program without deopt stays compiled through handlers.
	cfg2 := DefaultConfig()
	cfg2.DeoptOnThrow = false
	_, stats2 := runProg(t, deoptSrc, cfg2)
	if stats2.InterpBytecodes >= stats.InterpBytecodes {
		t.Errorf("deopt had no effect: %d vs %d interp bytecodes",
			stats2.InterpBytecodes, stats.InterpBytecodes)
	}
}
