package vm

import "jportal/internal/bytecode"

// CostModel assigns deterministic cycle costs to everything the machine
// does. Absolute values are arbitrary; what matters for reproducing the
// paper's Table 2 is the *structure*: interpretation costs an order of
// magnitude more than compiled code per bytecode, instrumentation probes
// cost a handful of cycles each (cheap for coverage bits, expensive for
// control-flow event logging), sampling interrupts are costly but rare, and
// PT generation costs almost nothing while its export consumes a small,
// bounded slice of bandwidth.
type CostModel struct {
	// InterpDispatch is the per-bytecode template-dispatch overhead.
	InterpDispatch uint64
	// InterpTemplate is the per-opcode template body cost.
	InterpTemplate [bytecode.NumOpcodes]uint64
	// JITCyclePerInstr is the cost of one compiled native instruction.
	JITCyclePerInstr uint64
	// CallOverhead is added per method invocation (frame setup).
	CallOverhead uint64
	// ThrowOverhead is added per exception unwinding step.
	ThrowOverhead uint64
	// CompileCostPerInstr models JIT compilation time (charged to the
	// invoking core, as HotSpot background compilation steals cycles).
	CompileCostPerInstr uint64
	// ExportMilliCyclesPerByte is the PT exporter's cost per trace byte,
	// in millicycles, charged to the core that generated the data.
	ExportMilliCyclesPerByte uint64
	// MetadataExportPerInstr is the cost of copying a compiled blob into
	// the shared metadata buffer (JPortal online collection, paper §6).
	MetadataExportPerInstr uint64
}

// DefaultCosts returns the tuned default model.
func DefaultCosts() CostModel {
	c := CostModel{
		InterpDispatch:           4,
		JITCyclePerInstr:         1,
		CallOverhead:             10,
		ThrowOverhead:            40,
		CompileCostPerInstr:      120,
		ExportMilliCyclesPerByte: 600,
		MetadataExportPerInstr:   20,
	}
	for op := 0; op < bytecode.NumOpcodes; op++ {
		c.InterpTemplate[op] = 6
	}
	set := func(cost uint64, ops ...bytecode.Opcode) {
		for _, op := range ops {
			c.InterpTemplate[op] = cost
		}
	}
	set(3, bytecode.NOP, bytecode.ICONST, bytecode.ILOAD, bytecode.DUP, bytecode.POP)
	set(4, bytecode.ISTORE, bytecode.IINC, bytecode.SWAP)
	set(5, bytecode.IADD, bytecode.ISUB, bytecode.IAND, bytecode.IOR, bytecode.IXOR,
		bytecode.ISHL, bytecode.ISHR, bytecode.INEG)
	set(9, bytecode.IMUL)
	set(18, bytecode.IDIV, bytecode.IREM)
	set(7, bytecode.GOTO, bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT,
		bytecode.IFGE, bytecode.IFGT, bytecode.IFLE,
		bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
		bytecode.IF_ICMPGE, bytecode.IF_ICMPGT, bytecode.IF_ICMPLE)
	set(12, bytecode.TABLESWITCH)
	set(16, bytecode.INVOKESTATIC, bytecode.INVOKEDYN)
	set(12, bytecode.IRETURN, bytecode.RETURN)
	set(10, bytecode.NEWARRAY, bytecode.IALOAD, bytecode.IASTORE)
	set(5, bytecode.ARRAYLENGTH)
	set(30, bytecode.ATHROW)
	set(2, bytecode.PROBE) // the dispatch; the handler action cost is separate
	return c
}
