package vm

import (
	"fmt"
	"math"

	"jportal/internal/bytecode"
	"jportal/internal/jit"
)

// Exception codes raised by the runtime; ATHROW throws whatever code is on
// the stack (generated programs use codes >= 10).
const (
	ExcArithmetic   int32 = 1
	ExcBounds       int32 = 2
	ExcNegativeSize int32 = 3
	ExcNullPointer  int32 = 4
)

func (f *frame) pushv(v int32) { f.stack = append(f.stack, v) }

func (f *frame) popv() int32 {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// Trace generation is free in hardware; the runtime overhead JPortal pays
// is exporting the packet stream (memory bandwidth + the exporter thread).
// Each event charges its approximate wire size times the export cost, in
// millicycles, to the emitting core.
const (
	tipMilliBytes = 3000 // a compressed TIP averages ~3 bytes
	tntMilliBytes = 170  // a TNT bit averages ~1/6 byte
	fupMilliBytes = 3000
)

func (m *Machine) chargeExport(core int, milliBytes uint64) {
	cs := &m.cores[core]
	cs.milli += milliBytes * m.Cfg.Costs.ExportMilliCyclesPerByte / 1000
	if cs.milli >= 1000 {
		cs.clock += cs.milli / 1000
		cs.milli %= 1000
	}
}

func (m *Machine) emitTIP(core int, target, tsc uint64) {
	if m.Tracer != nil {
		m.Tracer.TIP(core, target, tsc)
		m.chargeExport(core, tipMilliBytes)
	}
}

func (m *Machine) emitTNT(core int, addr uint64, taken bool, tsc uint64) {
	if m.Tracer != nil {
		m.Tracer.TNT(core, addr, taken, tsc)
		m.chargeExport(core, tntMilliBytes)
	}
}

func (m *Machine) emitFUP(core int, ip, tsc uint64) {
	if m.Tracer != nil {
		m.Tracer.FUP(core, ip, tsc)
		m.chargeExport(core, fupMilliBytes)
	}
}

// retSiteAddr is the native address just past the call instruction at
// (ctx, bci): where a callee's return re-enters this blob.
func retSiteAddr(nm *jit.NativeMethod, ctx jit.CtxID, bci int32) uint64 {
	u, ok := nm.UnitFor(ctx, bci)
	if !ok || u.Last == u.First {
		panic(fmt.Sprintf("vm: no native call site at ctx%d bci%d", ctx, bci))
	}
	ins := nm.Meta.Code.Instrs[u.Last-1]
	return ins.End()
}

// step executes one bytecode instruction of t's top frame on core.
func (m *Machine) step(t *thread, core int) error {
	m.steps++
	if m.steps > m.Cfg.MaxSteps {
		return errMaxSteps
	}
	fi := len(t.frames) - 1
	f := &t.frames[fi]
	ins := &f.method.Code[f.pc]
	op := ins.Op
	cs := &m.cores[core]
	tsc := cs.clock
	mid := f.method.ID

	if m.Listener != nil {
		m.Listener.OnExec(t.id, mid, f.pc, core, tsc)
	}
	m.Stats.ExecutedBytecodes++

	var cycles uint64
	if f.jit {
		if u, ok := f.nm.UnitFor(f.ctx, f.pc); ok {
			cycles = uint64(u.Last-u.First) * m.Cfg.Costs.JITCyclePerInstr
		}
		m.Stats.JITBytecodes++
	} else {
		cycles = m.Cfg.Costs.InterpDispatch + m.Cfg.Costs.InterpTemplate[op]
		m.Stats.InterpBytecodes++
		// Template dispatch: one indirect jump per interpreted bytecode
		// (paper Fig 2d).
		m.emitTIP(core, m.templates.Entry(op), tsc)
	}
	safepoint := false

	// throwNow raises code at the current instruction; it handles
	// emission, unwinding and cost.
	throwNow := func(code int32) {
		cycles += m.throwTo(t, core, tsc, code)
	}

	switch op {
	case bytecode.NOP:
		f.pc++

	case bytecode.PROBE:
		if m.Probe != nil {
			m.Probe(t.id, ins.A)
		}
		cycles += m.ProbeActionCost
		f.pc++

	case bytecode.ICONST:
		f.pushv(ins.A)
		f.pc++
	case bytecode.ILOAD:
		f.pushv(f.locals[ins.A])
		f.pc++
	case bytecode.ISTORE:
		f.locals[ins.A] = f.popv()
		f.pc++
	case bytecode.IINC:
		f.locals[ins.A] += ins.B
		f.pc++
	case bytecode.DUP:
		v := f.stack[len(f.stack)-1]
		f.pushv(v)
		f.pc++
	case bytecode.POP:
		f.popv()
		f.pc++
	case bytecode.SWAP:
		n := len(f.stack)
		f.stack[n-1], f.stack[n-2] = f.stack[n-2], f.stack[n-1]
		f.pc++

	case bytecode.IADD, bytecode.ISUB, bytecode.IMUL, bytecode.IAND,
		bytecode.IOR, bytecode.IXOR, bytecode.ISHL, bytecode.ISHR:
		b := f.popv()
		a := f.popv()
		var r int32
		switch op {
		case bytecode.IADD:
			r = a + b
		case bytecode.ISUB:
			r = a - b
		case bytecode.IMUL:
			r = a * b
		case bytecode.IAND:
			r = a & b
		case bytecode.IOR:
			r = a | b
		case bytecode.IXOR:
			r = a ^ b
		case bytecode.ISHL:
			r = a << (uint32(b) & 31)
		case bytecode.ISHR:
			r = a >> (uint32(b) & 31)
		}
		f.pushv(r)
		f.pc++

	case bytecode.IDIV, bytecode.IREM:
		b := f.popv()
		a := f.popv()
		if b == 0 {
			throwNow(ExcArithmetic)
			break
		}
		var r int32
		if a == math.MinInt32 && b == -1 {
			// JVM semantics: overflowing division wraps.
			if op == bytecode.IDIV {
				r = math.MinInt32
			} else {
				r = 0
			}
		} else if op == bytecode.IDIV {
			r = a / b
		} else {
			r = a % b
		}
		f.pushv(r)
		f.pc++

	case bytecode.INEG:
		f.pushv(-f.popv())
		f.pc++

	case bytecode.GOTO:
		back := ins.A <= f.pc
		f.pc = ins.A
		if back {
			safepoint = true
			if f.jit {
				m.backedgeJIT(f, core, tsc)
			} else {
				m.backedge(f, core, tsc)
			}
		}

	case bytecode.IFEQ, bytecode.IFNE, bytecode.IFLT, bytecode.IFGE,
		bytecode.IFGT, bytecode.IFLE,
		bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
		bytecode.IF_ICMPGE, bytecode.IF_ICMPGT, bytecode.IF_ICMPLE:
		var a, b int32
		if op >= bytecode.IF_ICMPEQ {
			b = f.popv()
			a = f.popv()
		} else {
			a = f.popv()
		}
		taken := evalCond(op, a, b)
		if f.jit {
			m.emitTNT(core, f.nm.CondAddrAt(f.ctx, f.pc), taken, tsc)
		} else {
			m.emitTNT(core, condTNTAddr(m.templates, op), taken, tsc)
		}
		if taken {
			back := ins.A <= f.pc
			f.pc = ins.A
			if back {
				safepoint = true
				if f.jit {
					m.backedgeJIT(f, core, tsc)
				} else {
					m.backedge(f, core, tsc)
				}
			}
		} else {
			f.pc++
		}

	case bytecode.TABLESWITCH:
		v := f.popv()
		target := ins.B
		if idx := int64(v) - int64(ins.A); idx >= 0 && idx < int64(len(ins.Targets)) {
			target = ins.Targets[idx]
		}
		if f.jit {
			// The jump table dispatch is an indirect jump.
			m.emitTIP(core, f.nm.AddrOf(f.ctx, target), tsc)
		}
		f.pc = target

	case bytecode.INVOKESTATIC, bytecode.INVOKEDYN:
		var callee *bytecode.Method
		if op == bytecode.INVOKESTATIC {
			callee = m.Prog.Method(bytecode.MethodID(ins.A))
		} else {
			sel := f.popv()
			tbl := m.Prog.DispatchTables[ins.A]
			callee = m.Prog.Method(tbl[int(uint32(sel))%len(tbl)])
		}
		args := make([]int32, callee.NArgs)
		for i := callee.NArgs - 1; i >= 0; i-- {
			args[i] = f.popv()
		}
		callBCI := f.pc
		f.pc++ // return continuation
		cycles += m.Cfg.Costs.CallOverhead
		m.Stats.MethodCalls[callee.ID]++
		safepoint = true

		if f.jit {
			ci, ok := f.nm.CallAt(f.ctx, callBCI)
			if !ok {
				panic(fmt.Sprintf("vm: missing call info at m%d ctx%d bci%d", mid, f.ctx, callBCI))
			}
			switch {
			case ci.Inlined >= 0:
				// Inlined: stay in this blob, no native call.
				t.frames = append(t.frames, frame{
					method: callee, locals: newLocals(callee, args),
					jit: true, nm: f.nm, ctx: ci.Inlined, inline: true,
				})
			case ci.Direct != 0:
				// Direct call bound at compile time: no packet; the
				// decoder follows the call instruction. The bound blob
				// is executed even if the callee was recompiled since.
				nm2 := m.blobAt[ci.Direct]
				if nm2 == nil {
					panic(fmt.Sprintf("vm: direct call to unknown blob %#x", ci.Direct))
				}
				t.frames = append(t.frames, frame{
					method: callee, locals: newLocals(callee, args),
					jit: true, nm: nm2, ctx: 0,
					retNative: retSiteAddr(f.nm, f.ctx, callBCI),
				})
			default:
				// Indirect call through a stub: TIP.
				m.hotness[callee.ID]++
				m.maybeCompile(callee.ID, core)
				ret := retSiteAddr(f.nm, f.ctx, callBCI)
				if nm2 := m.compiled[callee.ID]; nm2 != nil {
					m.emitTIP(core, nm2.EntryAddr(), tsc)
					t.frames = append(t.frames, frame{
						method: callee, locals: newLocals(callee, args),
						jit: true, nm: nm2, ctx: 0, retNative: ret,
					})
				} else {
					m.emitTIP(core, m.stubs.InterpEntry.Start, tsc)
					t.frames = append(t.frames, frame{
						method: callee, locals: newLocals(callee, args),
						retNative: ret,
					})
				}
			}
		} else {
			m.hotness[callee.ID]++
			m.maybeCompile(callee.ID, core)
			if nm2 := m.compiled[callee.ID]; nm2 != nil {
				// Interpreter dispatches indirectly into compiled code.
				m.emitTIP(core, nm2.EntryAddr(), tsc)
				t.frames = append(t.frames, frame{
					method: callee, locals: newLocals(callee, args),
					jit: true, nm: nm2, ctx: 0,
					retNative: m.stubs.RetEntry.Start,
				})
			} else {
				t.frames = append(t.frames, frame{
					method: callee, locals: newLocals(callee, args),
				})
			}
		}

	case bytecode.IRETURN, bytecode.RETURN:
		var rv int32
		hasVal := op == bytecode.IRETURN
		if hasVal {
			rv = f.popv()
		}
		if f.jit {
			if !f.inline {
				// Native ret: indirect, TIP to the return site.
				target := f.retNative
				if len(t.frames) == 1 {
					target = m.stubs.ThreadExit.Start
				}
				m.emitTIP(core, target, tsc)
			}
		} else if f.retNative != 0 {
			// Interpreted frame returning into compiled caller.
			m.emitTIP(core, f.retNative, tsc)
		}
		t.frames = t.frames[:fi]
		if fi == 0 {
			t.done = true
			t.result = rv
		} else if hasVal {
			t.frames[fi-1].pushv(rv)
		}

	case bytecode.NEWARRAY:
		n := f.popv()
		if n < 0 {
			throwNow(ExcNegativeSize)
			break
		}
		m.heap = append(m.heap, make([]int32, n))
		f.pushv(int32(len(m.heap) - 1))
		f.pc++

	case bytecode.IALOAD:
		idx := f.popv()
		ref := f.popv()
		arr, err := m.array(ref)
		if err != 0 {
			throwNow(err)
			break
		}
		if idx < 0 || int(idx) >= len(arr) {
			throwNow(ExcBounds)
			break
		}
		f.pushv(arr[idx])
		f.pc++

	case bytecode.IASTORE:
		v := f.popv()
		idx := f.popv()
		ref := f.popv()
		arr, err := m.array(ref)
		if err != 0 {
			throwNow(err)
			break
		}
		if idx < 0 || int(idx) >= len(arr) {
			throwNow(ExcBounds)
			break
		}
		arr[idx] = v
		f.pc++

	case bytecode.ARRAYLENGTH:
		ref := f.popv()
		arr, err := m.array(ref)
		if err != 0 {
			throwNow(err)
			break
		}
		f.pushv(int32(len(arr)))
		f.pc++

	case bytecode.ATHROW:
		throwNow(f.popv())

	default:
		panic(fmt.Sprintf("vm: unimplemented opcode %s", op))
	}

	if m.Sampler != nil {
		cycles += m.Sampler.OnStep(t.id, core, tsc, mid, safepoint)
	}
	cs.clock += cycles
	m.Stats.MethodCycles[mid] += cycles
	return nil
}

// backedge handles an interpreter-mode taken backedge: it bumps hotness,
// may trigger compilation, and performs on-stack replacement — once the
// method has a compiled version, the running interpreted frame jumps into
// the compiled code at the loop header (HotSpot's OSR), which is what lets
// long-running loops leave the interpreter without waiting for the next
// invocation.
func (m *Machine) backedge(f *frame, core int, tsc uint64) {
	mid := f.method.ID
	m.hotness[mid] += m.Cfg.BackedgeWeight
	m.maybeCompile(mid, core)
	nm := m.compiled[mid]
	if nm == nil {
		return
	}
	if _, ok := nm.UnitFor(0, f.pc); !ok {
		return
	}
	f.jit = true
	f.nm = nm
	f.ctx = 0
	if f.retNative == 0 {
		// The caller is interpreted (or this is the thread's bottom
		// frame, which the return path special-cases): returning from
		// compiled code goes through the RetEntry adapter.
		f.retNative = m.stubs.RetEntry.Start
	}
	// The OSR transition is an indirect jump into the compiled loop
	// header.
	m.emitTIP(core, nm.AddrOf(0, f.pc), tsc)
}

// backedgeJIT profiles backedges in tier-1 compiled code (C1 code keeps
// profile counters in HotSpot): a hot-enough loop triggers tier-2
// recompilation and re-OSRs the running frame into the C2 blob.
func (m *Machine) backedgeJIT(f *frame, core int, tsc uint64) {
	if f.nm.Tier != 1 || f.ctx != 0 {
		return
	}
	mid := f.method.ID
	m.hotness[mid] += m.Cfg.BackedgeWeight
	m.maybeCompile(mid, core)
	nm := m.compiled[mid]
	if nm == nil || nm == f.nm || nm.Tier <= f.nm.Tier {
		return
	}
	if _, ok := nm.UnitFor(0, f.pc); !ok {
		return
	}
	// OSR is an asynchronous transfer through the runtime, not a native
	// branch: the hardware records it as FUP (source) + TIP (target).
	m.emitFUP(core, f.nm.AddrOf(f.ctx, f.pc), tsc)
	f.nm = nm
	f.ctx = 0
	m.emitTIP(core, nm.AddrOf(0, f.pc), tsc)
}

func evalCond(op bytecode.Opcode, a, b int32) bool {
	switch op {
	case bytecode.IFEQ:
		return a == 0
	case bytecode.IFNE:
		return a != 0
	case bytecode.IFLT:
		return a < 0
	case bytecode.IFGE:
		return a >= 0
	case bytecode.IFGT:
		return a > 0
	case bytecode.IFLE:
		return a <= 0
	case bytecode.IF_ICMPEQ:
		return a == b
	case bytecode.IF_ICMPNE:
		return a != b
	case bytecode.IF_ICMPLT:
		return a < b
	case bytecode.IF_ICMPGE:
		return a >= b
	case bytecode.IF_ICMPGT:
		return a > b
	case bytecode.IF_ICMPLE:
		return a <= b
	}
	panic("evalCond: not a conditional: " + op.String())
}

func newLocals(m *bytecode.Method, args []int32) []int32 {
	l := make([]int32, m.MaxLocals)
	copy(l, args)
	return l
}

// array resolves a heap reference, returning an exception code on failure.
func (m *Machine) array(ref int32) ([]int32, int32) {
	if ref <= 0 || int(ref) >= len(m.heap) {
		return nil, ExcNullPointer
	}
	return m.heap[ref], 0
}

// findHandler locates the first handler of meth covering pc with a matching
// code.
func findHandler(meth *bytecode.Method, pc int32, code int32) *bytecode.Handler {
	for i := range meth.Handlers {
		h := &meth.Handlers[i]
		if pc >= h.From && pc < h.To && (h.Code < 0 || h.Code == code) {
			return h
		}
	}
	return nil
}

// throwTo raises an exception at the current instruction of t's top frame:
// it emits the FUP/TIP events the hardware would see (paper §2: FUPs carry
// the source IP of asynchronous events), unwinds frames until a handler
// catches, and returns the cycle cost of unwinding.
func (m *Machine) throwTo(t *thread, core int, tsc uint64, code int32) uint64 {
	var cycles uint64
	top := &t.frames[len(t.frames)-1]
	var src uint64
	if top.jit {
		src = top.nm.AddrOf(top.ctx, top.pc)
	} else {
		src = m.templates.Entry(top.method.Code[top.pc].Op)
	}
	m.emitFUP(core, src, tsc)
	m.emitTIP(core, m.stubs.Unwind.Start, tsc)

	first := true
	for len(t.frames) > 0 {
		f := &t.frames[len(t.frames)-1]
		pc := f.pc
		if !first {
			// Caller frames have already advanced past the call site.
			pc--
		}
		if h := findHandler(f.method, pc, code); h != nil {
			f.stack = f.stack[:0]
			f.pushv(code)
			f.pc = h.Target
			if f.jit {
				if m.Cfg.DeoptOnThrow && !f.inline {
					// Uncommon trap: the compiled frame deoptimizes and
					// the handler runs interpreted; the next hot
					// backedge OSRs back into compiled code.
					m.emitTIP(core, m.stubs.Deopt.Start, tsc)
					f.jit = false
					f.nm = nil
					f.ctx = 0
					cycles += m.Cfg.Costs.ThrowOverhead * 2
					return cycles
				}
				m.emitTIP(core, f.nm.AddrOf(f.ctx, h.Target), tsc)
			}
			cycles += m.Cfg.Costs.ThrowOverhead
			return cycles
		}
		t.frames = t.frames[:len(t.frames)-1]
		cycles += m.Cfg.Costs.ThrowOverhead
		first = false
	}
	t.done = true
	m.Stats.UncaughtThrows++
	return cycles
}
