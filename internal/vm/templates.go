package vm

import (
	"jportal/internal/bytecode"
	"jportal/internal/meta"
)

// buildTemplates lays out the interpreter's opcode templates in the
// template area of the address space and registers their ranges in a
// meta.TemplateTable, the way JPortal harvests them from the JVM during
// initialisation (paper §3.1). A few opcodes deliberately get a second,
// non-contiguous sub-range, mirroring HotSpot handlers whose machine code
// is split (paper: "multiple sub-ranges could be recorded").
//
// It also lays out the adapter stubs (meta.Stubs).
func buildTemplates() (*meta.TemplateTable, meta.Stubs) {
	t := meta.NewTemplateTable()
	const stride = 0x400
	base := meta.TemplateBase
	for op := 0; op < bytecode.NumOpcodes; op++ {
		start := base + uint64(op)*stride
		size := uint64(0x80)
		if bytecode.Opcode(op).IsCondBranch() {
			// Branch templates are large (they embed profiling counters
			// in HotSpot); cf. the wide ifeq/ifne ranges in Fig 2(c).
			size = 0x300
		}
		t.Add(bytecode.Opcode(op), meta.Range{Start: start, End: start + size})
	}
	// Non-contiguous secondary sub-ranges for a few handlers.
	aux := base + uint64(bytecode.NumOpcodes)*stride
	for i, op := range []bytecode.Opcode{bytecode.TABLESWITCH, bytecode.IRETURN, bytecode.ATHROW} {
		start := aux + uint64(i)*0x100
		t.Add(op, meta.Range{Start: start, End: start + 0x60})
	}

	stubBase := aux + 0x1000
	stub := func(i int) meta.Range {
		s := stubBase + uint64(i)*0x100
		return meta.Range{Start: s, End: s + 0x40}
	}
	stubs := meta.Stubs{
		InterpEntry: stub(0),
		RetEntry:    stub(1),
		Unwind:      stub(2),
		ThreadExit:  stub(3),
		Deopt:       stub(4),
	}
	return t, stubs
}

// condTNTAddr returns the address inside op's branch template where the
// conditional jump sits; TNT events in interpreter mode carry it so a
// post-loss FUP can identify the opcode being interpreted.
func condTNTAddr(t *meta.TemplateTable, op bytecode.Opcode) uint64 {
	return t.Ranges[op][0].Start + 0x20
}
