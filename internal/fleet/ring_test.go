package fleet

import (
	"fmt"
	"testing"
)

func testMembers(n int) map[string]string {
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		m[fmt.Sprintf("node-%d", i)] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return m
}

func TestRingDeterministic(t *testing.T) {
	// The ring must be a pure function of the member set: two processes
	// that learn the same membership (in any map-iteration order) must
	// route every session identically, or the fleet would split-brain.
	a := BuildRing(testMembers(5))
	b := BuildRing(testMembers(5))
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("session-%d", i)
		an, aa, aok := a.Route(id)
		bn, ba, bok := b.Route(id)
		if an != bn || aa != ba || aok != bok {
			t.Fatalf("ring disagreement on %q: %s vs %s", id, an, bn)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := BuildRing(testMembers(3))
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		name, _, ok := r.Route(fmt.Sprintf("s-%d", i))
		if !ok {
			t.Fatal("route failed on a populated ring")
		}
		counts[name]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	for name, n := range counts {
		// With 64 vnodes per node the shares land well inside [15%, 55%];
		// the bound is loose on purpose — it catches a broken hash or a
		// collapsed ring, not statistical jitter.
		if n < keys*15/100 || n > keys*55/100 {
			t.Errorf("%s owns %d/%d keys — ring badly unbalanced: %v", name, n, keys, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	// Consistent hashing's point: removing a node must only move the keys
	// it owned. Everything else keeps its owner, so a node loss does not
	// churn sessions on the survivors.
	members := testMembers(4)
	before := BuildRing(members)
	delete(members, "node-2")
	after := BuildRing(members)
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("s-%d", i)
		was, _, _ := before.Route(id)
		now, _, _ := after.Route(id)
		if was != "node-2" && now != was {
			t.Fatalf("key %q moved %s → %s though its owner survived", id, was, now)
		}
		if was == "node-2" && now == "node-2" {
			t.Fatalf("key %q still routed to the removed node", id)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if _, _, ok := BuildRing(nil).Route("x"); ok {
		t.Fatal("empty ring claimed to route")
	}
	if got := BuildRing(nil).Len(); got != 0 {
		t.Fatalf("Len = %d", got)
	}
}
