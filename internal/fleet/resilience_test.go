// Control-plane resilience: durable coordinator state across restarts,
// lease-based leadership with epoch fencing, flap damping, and the
// membership races a real fleet produces.
package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCoordinatorStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	for i, name := range []string{"n1", "n2", "n3"} {
		if err := c1.register(registration{Name: name, IngestAddr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}); err != nil {
			t.Fatal(err)
		}
	}
	epoch1 := c1.membership().RingEpoch
	if epoch1 < 3 {
		t.Fatalf("ring epoch after 3 joins = %d, want >= 3", epoch1)
	}
	c1.Close()

	// A restarted coordinator rehydrates the fleet rather than coming back
	// empty: same members, same ring, epoch counting forward.
	c2 := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	defer c2.Close()
	ms := c2.membership()
	if len(ms.Nodes) != 3 || ms.Nodes["n2"] != "127.0.0.1:9001" {
		t.Fatalf("rehydrated membership %+v", ms)
	}
	if ms.RingEpoch < epoch1 {
		t.Fatalf("ring epoch went backwards across restart: %d -> %d", epoch1, ms.RingEpoch)
	}
	// Routing resumes without any member re-registering.
	if _, _, ok := c2.Route("some-session"); !ok {
		t.Fatal("rehydrated coordinator refused to route")
	}
	// The ring is identical: a pure function of the rehydrated membership.
	want := BuildRing(ms.Nodes)
	for _, id := range []string{"a", "b", "c", "session-42"} {
		wn, _, _ := want.Route(id)
		gn, _, _ := c2.Route(id)
		if wn != gn {
			t.Fatalf("route(%q) = %s, want %s", id, gn, wn)
		}
	}
}

func TestCoordinatorCorruptStateStartsEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFileName), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	defer c.Close()
	if n := len(c.membership().Nodes); n != 0 {
		t.Fatalf("corrupt state rehydrated %d nodes, want 0", n)
	}
	// And the corrupt file is replaced wholesale by the next registration.
	if err := c.register(registration{Name: "n1", IngestAddr: "127.0.0.1:9000"}); err != nil {
		t.Fatal(err)
	}
	c2 := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	defer c2.Close()
	if c2.membership().Nodes["n1"] != "127.0.0.1:9000" {
		t.Fatalf("membership after corrupt-state recovery: %+v", c2.membership())
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestElectionFailoverAndFencing(t *testing.T) {
	dir := t.TempDir()
	a, err := StartElection(ElectionConfig{Dir: dir, ID: "a", TTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The first campaign tick runs synchronously: a lone candidate leads
	// by the time StartElection returns.
	if !a.IsLeader() || a.Epoch() != 1 {
		t.Fatalf("lone candidate: leader=%v epoch=%d", a.IsLeader(), a.Epoch())
	}

	b, err := StartElection(ElectionConfig{Dir: dir, ID: "b", TTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.IsLeader() {
		t.Fatal("standby claimed leadership behind a live lease")
	}
	if b.ObservedEpoch() != 1 {
		t.Fatalf("standby observed epoch %d, want 1", b.ObservedEpoch())
	}

	// Graceful handoff: the resigned lease is expired on disk, so the
	// standby acquires within a campaign tick — and the epoch fence bumps.
	a.Resign()
	waitFor(t, "b to assume leadership", b.IsLeader)
	if a.IsLeader() {
		t.Fatal("resigned candidate still claims leadership")
	}
	if b.Epoch() != 2 {
		t.Fatalf("successor epoch = %d, want 2 (fence must move forward)", b.Epoch())
	}
	if b.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1 (acquired from a different holder)", b.Failovers())
	}

	// Crash shape: Close without Resign leaves the lease to run out, and
	// the next candidate takes over within ~one TTL.
	b.Close()
	c, err := StartElection(ElectionConfig{Dir: dir, ID: "c", TTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "c to assume leadership after b's lease lapsed", c.IsLeader)
	if c.Epoch() != 3 {
		t.Fatalf("post-crash epoch = %d, want 3", c.Epoch())
	}

	// nil election: single-coordinator fleets always lead.
	var none *Election
	if !none.IsLeader() || none.Epoch() != 0 || none.Failovers() != 0 {
		t.Fatal("nil election must lead with zero gauges")
	}
}

func TestStandbyRefusesWritesAndRehydratesOnTakeover(t *testing.T) {
	dir := t.TempDir()
	leader, err := StartElection(ElectionConfig{Dir: dir, ID: "primary", TTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cPrimary := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir, Election: leader})
	defer cPrimary.Close()
	if err := cPrimary.register(registration{Name: "n1", IngestAddr: "127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}

	standby, err := StartElection(ElectionConfig{Dir: dir, ID: "standby", TTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	cStandby := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir, Election: standby})
	defer cStandby.Close()

	// The control plane 503s on a standby so members rotate to the leader.
	web := httptest.NewServer(cStandby.Handler())
	defer web.Close()
	joinCtx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	_, err = Join(joinCtx, MemberConfig{
		Name: "n2", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:9002",
	})
	cancel()
	if err == nil {
		t.Fatal("standby accepted a registration")
	}
	// And the epoch fence refuses direct persists even if one slips past.
	if err := cStandby.register(registration{Name: "n2", IngestAddr: "127.0.0.1:9002"}); err == nil {
		t.Fatal("standby persisted membership without holding the lease")
	}

	// Failover: the primary resigns; the standby leads, rehydrates the
	// membership its predecessor persisted, and accepts writes.
	leader.Resign()
	waitFor(t, "standby to assume leadership", standby.IsLeader)
	if err := cStandby.register(registration{Name: "n2", IngestAddr: "127.0.0.1:9002"}); err != nil {
		t.Fatalf("new leader refused a registration: %v", err)
	}
	ms := cStandby.membership()
	if len(ms.Nodes) != 2 || ms.Nodes["n1"] != "127.0.0.1:9001" || ms.Nodes["n2"] != "127.0.0.1:9002" {
		t.Fatalf("post-takeover membership %+v: predecessor's state must survive the failover", ms)
	}
	if got := standby.Failovers(); got != 1 {
		t.Fatalf("coordinator_failovers = %d, want 1", got)
	}
}

func TestFlapDampingAbsorbsMissedHeartbeat(t *testing.T) {
	clock := time.Now()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL: time.Minute, // damping 30s, dwell 60s by default
		now:      func() time.Time { return clock },
	})
	defer c.Close()
	if err := c.register(registration{Name: "n1", IngestAddr: "127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}
	joins := c.rebalances.Load()

	// Lease lapsed (60s) but inside the damping window (until 90s): the
	// member stays routable and no rebalance happens.
	clock = clock.Add(70 * time.Second)
	c.expire()
	if len(c.membership().Nodes) != 1 {
		t.Fatal("member dropped inside the damping window")
	}
	// The heartbeat comes back: that is a damped flap, not a rejoin.
	if err := c.register(registration{Name: "n1", IngestAddr: "127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}
	if got := c.flapsDamped.Load(); got != 1 {
		t.Fatalf("ring_flaps_damped = %d, want 1", got)
	}
	if got := c.rebalances.Load(); got != joins {
		t.Fatalf("damped flap rebalanced the ring (%d -> %d)", joins, got)
	}

	// Silence past the damping window does drop it.
	clock = clock.Add(2 * time.Minute)
	c.expire()
	if len(c.membership().Nodes) != 0 {
		t.Fatal("member outlived lease + damping")
	}
}

func TestMinDwellDefersEarlyExpiry(t *testing.T) {
	clock := time.Now()
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:    10 * time.Second,
		FlapDamping: time.Nanosecond, // isolate the dwell guard
		MinDwell:    time.Hour,
		now:         func() time.Time { return clock },
	})
	defer c.Close()
	if err := c.register(registration{Name: "n1", IngestAddr: "127.0.0.1:9001"}); err != nil {
		t.Fatal(err)
	}

	// Lease and damping long gone, but the member has not dwelt MinDwell:
	// expiry is deferred so one quiet join cannot double-rebalance.
	clock = clock.Add(30 * time.Second)
	c.expire()
	if len(c.membership().Nodes) != 1 {
		t.Fatal("member expired before MinDwell")
	}
	// Explicit deregistration is always immediate, dwell or not.
	c.deregister("n1")
	if len(c.membership().Nodes) != 0 {
		t.Fatal("deregister deferred by dwell")
	}

	// Past the dwell, normal expiry applies.
	if err := c.register(registration{Name: "n2", IngestAddr: "127.0.0.1:9002"}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Hour)
	c.expire()
	if len(c.membership().Nodes) != 0 {
		t.Fatal("member outlived MinDwell + lease")
	}
}

// TestMembershipChurnRaces hammers the coordinator's mutating entry
// points concurrently (register, heartbeat, deregister, expiry sweeps,
// reads) and then checks the survivors' ring is coherent and the durable
// snapshot matches memory. Run under -race this is the satellite's ring
// stability contract.
func TestMembershipChurnRaces(t *testing.T) {
	dir := t.TempDir()
	c := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	defer c.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("churn-%d", w)
			addr := fmt.Sprintf("127.0.0.1:%d", 9100+w)
			for i := 0; i < 40; i++ {
				if err := c.register(registration{Name: name, IngestAddr: addr}); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
				c.Route(fmt.Sprintf("session-%d-%d", w, i))
				c.membership()
				if i%3 == 0 {
					c.deregister(name)
				}
				if i%7 == 0 {
					c.expire()
				}
			}
			// Half the workers leave, half stay registered.
			if w%2 == 1 {
				c.deregister(name)
			} else if err := c.register(registration{Name: name, IngestAddr: addr}); err != nil {
				t.Errorf("final register %s: %v", name, err)
			}
		}(w)
	}
	wg.Wait()

	ms := c.membership()
	if len(ms.Nodes) != workers/2 {
		t.Fatalf("survivors = %d, want %d: %v", len(ms.Nodes), workers/2, ms.Nodes)
	}
	// The ring is exactly the pure function of the surviving membership.
	want := BuildRing(ms.Nodes)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("post-churn-%d", i)
		wn, wa, wok := want.Route(id)
		gn, ga, gok := c.Route(id)
		if wn != gn || wa != ga || wok != gok {
			t.Fatalf("route(%q) = %s@%s, want %s@%s", id, gn, ga, wn, wa)
		}
	}
	// And the durable snapshot agrees with memory: a restart right now
	// reproduces the same fleet.
	c2 := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: dir})
	defer c2.Close()
	ms2 := c2.membership()
	if len(ms2.Nodes) != len(ms.Nodes) {
		t.Fatalf("persisted %d nodes, memory had %d", len(ms2.Nodes), len(ms.Nodes))
	}
	for name, addr := range ms.Nodes {
		if ms2.Nodes[name] != addr {
			t.Fatalf("persisted %s = %q, memory had %q", name, ms2.Nodes[name], addr)
		}
	}
}

func TestJitteredHeartbeatStaysInBounds(t *testing.T) {
	m := &Member{heartbeat: 30 * time.Second}
	for i := 0; i < 1000; i++ {
		d := m.jitteredHeartbeat()
		if d < 24*time.Second || d > 36*time.Second {
			t.Fatalf("jittered heartbeat %v outside ±20%% of 30s", d)
		}
	}
}
