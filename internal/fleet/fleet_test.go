package fleet

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jportal/internal/ingest"
)

func startCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 200 * time.Millisecond
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	web := httptest.NewServer(c.Handler())
	t.Cleanup(web.Close)
	return c, web
}

func TestRegisterHeartbeatExpiry(t *testing.T) {
	clock := time.Now()
	c, web := startCoordinator(t, CoordinatorConfig{
		LeaseTTL: time.Minute,
		now:      func() time.Time { return clock },
	})

	m1, err := Join(context.Background(), MemberConfig{
		Name: "n1", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:1001",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Stop()
	m2, err := Join(context.Background(), MemberConfig{
		Name: "n2", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:1002",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()

	ms := c.membership()
	if len(ms.Nodes) != 2 || ms.Nodes["n1"] != "127.0.0.1:1001" {
		t.Fatalf("membership %+v", ms)
	}
	// Both joiners saw the fleet as of their own registration.
	if nodes := m2.Nodes(); len(nodes) != 2 {
		t.Fatalf("m2 sees %v", nodes)
	}
	if _, _, ok := c.Route("some-session"); !ok {
		t.Fatal("populated fleet refused to route")
	}

	// n2's lease lapses; the sweep must reassign its range to n1.
	clock = clock.Add(2 * time.Minute)
	m1.post(context.Background(), "/heartbeat") // n1 renews at the new clock
	c.expire()
	if nodes := c.membership().Nodes; len(nodes) != 1 || nodes["n2"] != "" {
		t.Fatalf("after expiry: %v", nodes)
	}
	name, addr, ok := c.Route("some-session")
	if !ok || name != "n1" || addr != "127.0.0.1:1001" {
		t.Fatalf("route after expiry: %s %s %v", name, addr, ok)
	}
	if got := c.rebalances.Load(); got < 3 { // 2 joins + 1 expiry
		t.Fatalf("rebalances = %d, want >= 3", got)
	}

	// Drain is the graceful counterpart: immediate removal, idempotent.
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if nodes := c.membership().Nodes; len(nodes) != 0 {
		t.Fatalf("after drain: %v", nodes)
	}
}

func TestMemberRouteFailsOpen(t *testing.T) {
	_, web := startCoordinator(t, CoordinatorConfig{LeaseTTL: time.Minute})
	m, err := Join(context.Background(), MemberConfig{
		Name: "solo", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:1001",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// A single-node fleet owns everything locally.
	if owner, local := m.Route("any"); !local || owner != "" {
		t.Fatalf("Route = %q, %v", owner, local)
	}
	// An empty ring (coordinator unreachable since before the first
	// membership) must serve locally, not refuse.
	empty := &Member{cfg: MemberConfig{Name: "x"}, ring: BuildRing(nil)}
	if _, local := empty.Route("any"); !local {
		t.Fatal("empty ring did not fail open")
	}
}

// helloCoordinator performs one raw HELLO against the coordinator's
// ingest listener and returns the answer frame.
func helloCoordinator(t *testing.T, addr string, version uint32, id string) (byte, []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := ingest.WriteFrame(conn, ingest.FrameHello,
		ingest.AppendHello(nil, version, 2, id)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ingest.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return typ, payload
}

func TestCoordinatorAnswersHellos(t *testing.T) {
	c, web := startCoordinator(t, CoordinatorConfig{LeaseTTL: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.ServeIngest(ln)

	// Empty fleet: BUSY for v2+, plain ERR for v1.
	typ, _ := helloCoordinator(t, ln.Addr().String(), ingest.ProtoVersion, "s")
	if typ != ingest.FrameBusy {
		t.Fatalf("empty fleet answered %#x, want BUSY", typ)
	}
	typ, _ = helloCoordinator(t, ln.Addr().String(), ingest.MinProtoVersion, "s")
	if typ != ingest.FrameErr {
		t.Fatalf("empty fleet answered v1 with %#x, want ERR", typ)
	}

	m, err := Join(context.Background(), MemberConfig{
		Name: "n1", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:2001",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	// v3 client: REDIRECT to the owner.
	typ, payload := helloCoordinator(t, ln.Addr().String(), ingest.ProtoVersion, "s")
	if typ != ingest.FrameRedirect {
		t.Fatalf("answered %#x, want REDIRECT", typ)
	}
	if addr, err := ingest.ParseRedirect(payload); err != nil || addr != "127.0.0.1:2001" {
		t.Fatalf("REDIRECT to %q (%v)", addr, err)
	}

	// v2 client: typed protocol-version ERR — never a frame it can't parse.
	typ, payload = helloCoordinator(t, ln.Addr().String(), ingest.ProtoVersionBusy, "s")
	if typ != ingest.FrameErr {
		t.Fatalf("v2 answered %#x, want ERR", typ)
	}
	if category, _ := ingest.SplitErr(payload); category != ingest.ErrCategoryProtocol {
		t.Fatalf("v2 ERR %q lacks the protocol-version category", payload)
	}

	if got := c.redirected.Load(); got != 1 {
		t.Fatalf("redirected = %d, want 1", got)
	}
}

func TestCoordinatorMetricsAggregation(t *testing.T) {
	// A fake node sidecar standing in for a real ingest server's /metrics.
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int64{
			"chunks_ingested":   5,
			"sessions_restored": 2,
		})
	}))
	defer node.Close()

	_, web := startCoordinator(t, CoordinatorConfig{LeaseTTL: time.Minute})
	m, err := Join(context.Background(), MemberConfig{
		Name: "n1", CoordinatorURL: web.URL, IngestAddr: "127.0.0.1:2001",
		MetricsURL: node.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	resp, err := web.Client().Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// The fleet counters are pre-registered: present before any traffic.
	for _, key := range []string{
		"fleet_nodes", "fleet_rebalances", "fleet_sessions_redirected",
		"fleet_sessions_resumed_after_loss", "fleet_scrape_errors",
		"fleet_ring_epoch", "ring_flaps_damped",
		"coordinator_failovers", "leadership_epoch",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("fleet metrics missing %q", key)
		}
	}
	if snap["fleet_nodes"] != 1 || snap["chunks_ingested"] != 5 {
		t.Fatalf("aggregated snapshot: %v", snap)
	}
	if snap["fleet_sessions_resumed_after_loss"] != 2 {
		t.Fatalf("fleet_sessions_resumed_after_loss = %d, want 2 (from node sessions_restored)",
			snap["fleet_sessions_resumed_after_loss"])
	}
}

func TestCoordinatorRejectsBadRegistrations(t *testing.T) {
	c, _ := startCoordinator(t, CoordinatorConfig{LeaseTTL: time.Minute})
	for _, reg := range []registration{
		{Name: "", IngestAddr: "x:1"},
		{Name: "../evil", IngestAddr: "x:1"},
		{Name: "ok", IngestAddr: ""},
		{Name: "ok", IngestAddr: strings.Repeat("a", ingest.MaxRedirectAddrLen+1)},
	} {
		if err := c.register(reg); err == nil {
			t.Errorf("register(%+v) accepted", reg)
		}
	}
	if c.membership().Nodes["ok"] != "" {
		t.Fatal("rejected registration leaked into the member set")
	}
}
