package fleet

import (
	"encoding/json"
	"errors"
	"io/fs"
	"path/filepath"

	"jportal/internal/ckpt"
)

// stateFileName is the durable membership snapshot inside StateDir. It
// rides the same CRC envelope (internal/ckpt) and crash-atomic write path
// (internal/fsatomic, via ckpt.WriteFile) as the ingest session state, so
// a torn write is detected and falls back to an empty fleet instead of a
// silently wrong one.
const stateFileName = "coordinator.state"

// persistedMember is one node's durable registration.
type persistedMember struct {
	IngestAddr string `json:"ingest_addr"`
	MetricsURL string `json:"metrics_url,omitempty"`
}

// persistedState is the coordinator's durable view: the membership the
// ring is a pure function of, plus the ring epoch so a rehydrated
// coordinator keeps counting epochs forward rather than restarting at
// zero (members can use the epoch to discard stale membership answers).
type persistedState struct {
	RingEpoch int64                      `json:"ring_epoch"`
	Nodes     map[string]persistedMember `json:"nodes"`
}

// persistLocked writes the membership snapshot durably. Callers hold
// c.mu. It is the coordinator's persist-before-ACK half: register only
// acknowledges a membership change after this returns nil. A deposed
// leader is fenced out — it must not clobber the state its successor is
// already writing.
func (c *Coordinator) persistLocked() error {
	if c.cfg.StateDir == "" {
		return nil
	}
	if e := c.cfg.Election; e != nil && !e.IsLeader() {
		return errors.New("fleet: not the leader; refusing to persist membership")
	}
	st := persistedState{RingEpoch: c.ringEpoch, Nodes: make(map[string]persistedMember, len(c.members))}
	for name, m := range c.members {
		st.Nodes[name] = persistedMember{IngestAddr: m.ingestAddr, MetricsURL: m.metricsURL}
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := ckpt.WriteFileFS(c.cfg.fsys(), filepath.Join(c.cfg.StateDir, stateFileName), payload); err != nil {
		return err
	}
	c.dirty = false
	return nil
}

// rehydrateLocked replaces the in-memory membership with the durable
// snapshot. Every rehydrated member gets one full lease to heartbeat in —
// the coordinator was down, so nobody's lease clock was running — and the
// ring comes back exactly as persisted: no rebalance, no epoch bump. A
// missing file is a fresh fleet; a corrupt one is logged and ignored (the
// members re-register within a heartbeat interval anyway).
func (c *Coordinator) rehydrateLocked() {
	if c.cfg.StateDir == "" {
		return
	}
	payload, err := ckpt.ReadFileFS(c.cfg.fsys(), filepath.Join(c.cfg.StateDir, stateFileName))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.cfg.Logf("fleet: coordinator state unreadable, starting empty: %v", err)
		}
		return
	}
	var st persistedState
	if err := json.Unmarshal(payload, &st); err != nil {
		c.cfg.Logf("fleet: coordinator state undecodable, starting empty: %v", err)
		return
	}
	now := c.cfg.now()
	c.members = make(map[string]*memberEntry, len(st.Nodes))
	for name, m := range st.Nodes {
		c.members[name] = &memberEntry{
			ingestAddr: m.IngestAddr,
			metricsURL: m.MetricsURL,
			deadline:   now.Add(c.cfg.LeaseTTL),
			joinedAt:   now,
		}
	}
	if st.RingEpoch > c.ringEpoch {
		c.ringEpoch = st.RingEpoch
	}
	c.ring = BuildRing(c.memberAddrsLocked())
	c.dirty = false // memory now mirrors disk
	if len(c.members) > 0 {
		c.cfg.Logf("fleet: rehydrated %d node(s) at ring epoch %d from durable state", len(c.members), c.ringEpoch)
	}
}
