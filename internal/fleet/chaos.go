package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/metrics"
	"jportal/internal/netfault"
)

// SweepConfig configures one `jportal chaos -fleet` sweep: a collected
// chunked archive pushed through an in-process fleet (coordinator + two
// nodes) whose every network edge runs behind a seeded netfault injector.
type SweepConfig struct {
	// ArchiveDir is a sealed chunked archive (collect -chunked output) to
	// push through the faulted fleet.
	ArchiveDir string
	// SourceID is the archive's trace-source backend ("" = default).
	SourceID string
	// Seed feeds the netfault matrix; the whole sweep is deterministic
	// per seed (the table reports outcome invariants only).
	Seed uint64
	// Rates are the netfault.DefaultMatrix scale factors to sweep.
	Rates []float64
	// Sessions is how many sessions to push per rate (default 2).
	Sessions int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// SweepRow is one rate's outcome. Completed and Identical are outcome
// invariants: for a fixed seed they are reproducible run to run even
// though retry timing is not, which is what makes the sweep table
// byte-comparable in CI.
type SweepRow struct {
	Rate      float64
	Matrix    netfault.Matrix
	Sessions  int
	Completed int // pushes that finished (FIN_ACK)
	Identical int // archives byte-identical to the source archive
}

// ChaosSweep pushes the archive through a freshly built in-process fleet
// once per rate, with netfault wrapping the coordinator control plane,
// the coordinator and node ingest listeners, the members' heartbeat
// transport, and the pusher's dials.
func ChaosSweep(cfg SweepConfig) ([]SweepRow, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 1, 2}
	}
	rows := make([]SweepRow, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		row, err := sweepOnce(cfg, rate)
		if err != nil {
			return rows, fmt.Errorf("fleet sweep at rate %g: %w", rate, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sweepOnce builds one faulted fleet, pushes the sessions sequentially,
// and verifies the archived bytes against the source archive.
func sweepOnce(cfg SweepConfig, rate float64) (SweepRow, error) {
	row := SweepRow{Rate: rate, Matrix: netfault.DefaultMatrix(cfg.Seed).Scale(rate), Sessions: cfg.Sessions}
	inj := netfault.NewInjector(row.Matrix, metrics.Default)

	dataDir, err := os.MkdirTemp("", "jportal-chaos-fleet-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dataDir)
	ctrlDir, err := os.MkdirTemp("", "jportal-chaos-ctrl-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(ctrlDir)

	// Coordinator: long membership lease relative to the sweep, so the
	// nondeterministic heartbeat interleaving can never expire a node and
	// perturb the ring mid-sweep — routing stays a pure function of the
	// session ids.
	coord := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute, StateDir: ctrlDir})
	defer coord.Close()
	ctrlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	ctrlSrv := &http.Server{Handler: coord.Handler()}
	go ctrlSrv.Serve(inj.Listener("coordinator-ctrl", ctrlLn))
	defer ctrlSrv.Close()
	coordURL := "http://" + ctrlLn.Addr().String()

	coordIngest, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	go coord.ServeIngest(inj.Listener("coordinator-ingest", coordIngest))

	// Two nodes over one shared data dir — the PR 8 topology, now with a
	// faulted accept path and faulted heartbeats.
	type fleetNode struct {
		srv    *ingest.Server
		member *Member
	}
	var nodes []fleetNode
	defer func() {
		for _, n := range nodes {
			n.member.Stop()
			shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.srv.Shutdown(shCtx)
			cancel()
		}
	}()
	for _, name := range []string{"sweep-a", "sweep-b"} {
		srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir})
		if err != nil {
			return row, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return row, err
		}
		go srv.Serve(inj.Listener("node-"+name, ln))
		joinCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		member, err := Join(joinCtx, MemberConfig{
			Name:           name,
			CoordinatorURL: coordURL,
			IngestAddr:     ln.Addr().String(),
			HTTPClient: &http.Client{
				Timeout:   5 * time.Second,
				Transport: &http.Transport{DialContext: inj.DialContext("member-" + name)},
			},
		})
		cancel()
		if err != nil {
			return row, fmt.Errorf("node %s could not join: %w", name, err)
		}
		srv.SetRouter(member)
		nodes = append(nodes, fleetNode{srv: srv, member: member})
	}

	// Sessions push sequentially through one scope, so the nth dial of a
	// sweep always draws the nth client verdict — the determinism the
	// table's cmp in ci.sh rests on.
	dial := inj.Dialer("client", func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	})
	var ids []string
	for i := 0; i < cfg.Sessions; i++ {
		id := fmt.Sprintf("chaos-fleet-%d", i)
		ids = append(ids, id)
		pushCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		_, err := client.PushArchive(pushCtx, client.Options{
			Addr:        coordIngest.Addr().String(),
			SessionID:   id,
			SourceID:    cfg.SourceID,
			MaxAttempts: 100,
			Backoff:     2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			RetryBudget: -1, // the sweep measures fleet survival, not client patience
			Dial:        dial,
		}, cfg.ArchiveDir)
		cancel()
		if err != nil {
			cfg.Logf("chaos -fleet: rate %g session %s failed: %v", rate, id, err)
			continue
		}
		row.Completed++
	}

	// Drain the nodes before comparing, so sealed archives are flushed.
	for _, n := range nodes {
		n.member.Stop()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		n.srv.Shutdown(shCtx)
		cancel()
	}
	nodes = nil

	for _, id := range ids {
		if archiveIdentical(cfg.ArchiveDir, filepath.Join(dataDir, id)) {
			row.Identical++
		}
	}
	return row, nil
}

// archiveIdentical compares the record stream and program metadata bytes.
func archiveIdentical(localDir, pushedDir string) bool {
	for _, name := range []string{"stream.jpt", "program.gob"} {
		a, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			return false
		}
		b, err := os.ReadFile(filepath.Join(pushedDir, name))
		if err != nil {
			return false
		}
		if len(a) != len(b) || string(a) != string(b) {
			return false
		}
	}
	return true
}

// FormatSweep renders the sweep table. Only outcome invariants are
// printed — injected-fault counts are timing-dependent and live in
// /metrics instead — so the table is byte-identical per seed.
func FormatSweep(subject string, seed uint64, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== chaos -fleet: %s (seed %d) ===\n", subject, seed)
	fmt.Fprintf(&b, "%-6s %-9s %-10s %-10s %-8s %-8s %-9s\n",
		"rate", "sessions", "completed", "identical", "drop", "tear", "partition")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %-9d %-10d %-10d %-8.3f %-8.3f %-9.3f\n",
			r.Rate, r.Sessions, r.Completed, r.Identical,
			r.Matrix.ConnDrop, r.Matrix.Tear, r.Matrix.Partition)
	}
	return b.String()
}
