package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jportal/internal/ckpt"
	"jportal/internal/iofault"
)

// leaseFileName is the leadership lease inside the shared election dir.
// It uses the same CRC envelope + atomic-rename write path as everything
// else durable, so a torn lease write reads as corrupt (treated as absent
// and re-acquired) rather than as a bogus leader.
const leaseFileName = "leader.lease"

// leaseRecord is the on-disk leadership claim. Epoch is the fencing
// token: it only ever moves forward, every acquisition bumps it, and a
// coordinator that persists fleet state while holding a stale epoch has
// been deposed — its writes must stop (Coordinator.persistLocked checks
// IsLeader before every write).
type leaseRecord struct {
	Holder           string `json:"holder"`
	Epoch            int64  `json:"epoch"`
	ExpiresUnixMilli int64  `json:"expires_unix_ms"`
}

// ElectionConfig configures one coordinator's leadership campaign.
type ElectionConfig struct {
	// Dir is the shared directory the lease file lives in. Every
	// coordinator replica must point at the same one (it is typically the
	// fleet's shared StateDir).
	Dir string
	// ID names this candidate in the lease (host-pid style; must be
	// unique across replicas).
	ID string
	// TTL is the leadership lease duration. The campaign ticks at TTL/8,
	// so a standby notices an expired lease and takes over well within
	// one TTL. Default 2s.
	TTL time.Duration
	// Logf, when set, receives one line per leadership transition.
	Logf func(format string, args ...any)

	// FS, when set, routes lease reads and writes through a
	// fault-injecting filesystem (internal/iofault). Nil means the real
	// filesystem. A torn or failed lease write already degrades to
	// "vacant, re-acquire next tick", so injected faults here exercise
	// the election's crash-equivalence, not new code paths.
	FS iofault.FS

	// now substitutes the clock in tests.
	now func() time.Time
	// settle substitutes the acquire settle delay in tests.
	settle time.Duration
}

// Election is a lease-based leadership claim over a shared directory:
// whichever coordinator last renamed a valid, unexpired lease into place
// leads; everyone else stands by. There is no consensus protocol here —
// just the same crash-atomic rename the data plane already trusts — so
// two candidates racing an expired lease can both believe they won for up
// to one campaign tick. The epoch fence makes that window harmless: the
// loser observes the higher epoch on its next tick and steps down, and
// its state writes are refused in the meantime (persistLocked checks
// IsLeader, whose lease-expiry check is conservative).
type Election struct {
	cfg ElectionConfig

	mu         sync.Mutex
	epoch      int64 // epoch we hold while leading; 0 = standby
	expires    time.Time
	observed   int64 // highest epoch seen in the lease file
	lastHolder string
	failovers  int64 // acquisitions from a different previous holder

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartElection joins the leadership campaign and returns immediately;
// the first campaign tick runs synchronously, so a lone candidate leads
// by the time this returns. Call Close to stop campaigning (the lease
// then expires on its own, as after SIGKILL) or Resign to hand off
// immediately.
func StartElection(cfg ElectionConfig) (*Election, error) {
	if cfg.Dir == "" {
		return nil, errors.New("fleet: election needs a shared directory")
	}
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("coordinator-%d", os.Getpid())
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.settle <= 0 {
		cfg.settle = cfg.TTL / 16
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	e := &Election{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	e.step()
	go e.campaign()
	return e, nil
}

// IsLeader reports whether this candidate currently holds an unexpired
// lease. It is deliberately conservative: once our own lease horizon
// passes without a renewal (crashed disk, stalled process), we stop
// claiming leadership even before observing a successor.
func (e *Election) IsLeader() bool {
	if e == nil {
		return true // no election configured: single-coordinator fleets always lead
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch != 0 && e.cfg.now().Before(e.expires)
}

// Epoch returns the fencing epoch held while leading, 0 on standby.
func (e *Election) Epoch() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.epoch != 0 && !e.cfg.now().Before(e.expires) {
		return 0
	}
	return e.epoch
}

// ObservedEpoch returns the highest leadership epoch this candidate has
// seen — its own or the lease file's (the leadership_epoch gauge).
func (e *Election) ObservedEpoch() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.epoch > e.observed {
		return e.epoch
	}
	return e.observed
}

// Failovers returns how many times this candidate acquired leadership
// from a different previous holder (the coordinator_failovers counter).
func (e *Election) Failovers() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failovers
}

// Close stops campaigning without touching the lease: if we led, the
// lease runs out on its own — exactly the SIGKILL shape. Idempotent.
func (e *Election) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Resign hands leadership off immediately: the lease is rewritten as
// already expired (same epoch, so the successor's acquisition still
// fences us out by bumping it) and campaigning stops. Used by the
// graceful-shutdown path; best-effort.
func (e *Election) Resign() {
	e.mu.Lock()
	epoch := e.epoch
	e.epoch = 0
	e.mu.Unlock()
	e.Close()
	if epoch == 0 {
		return
	}
	rec := leaseRecord{Holder: e.cfg.ID, Epoch: epoch, ExpiresUnixMilli: 0}
	if err := e.writeLease(rec); err == nil {
		e.cfg.Logf("fleet: %s resigned leadership at epoch %d", e.cfg.ID, epoch)
	}
}

func (e *Election) campaign() {
	defer close(e.done)
	t := time.NewTicker(e.cfg.TTL / 8)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.step()
		}
	}
}

func (e *Election) leasePath() string { return filepath.Join(e.cfg.Dir, leaseFileName) }

func (e *Election) readLease() leaseRecord {
	payload, err := ckpt.ReadFileFS(e.fsys(), e.leasePath())
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Corrupt or torn: treat as absent. The next acquisition
			// rewrites it whole (rename is atomic), and epochs never move
			// backwards because acquirers bump what they last observed.
			e.cfg.Logf("fleet: leadership lease unreadable, treating as vacant: %v", err)
		}
		return leaseRecord{}
	}
	var rec leaseRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		e.cfg.Logf("fleet: leadership lease undecodable, treating as vacant: %v", err)
		return leaseRecord{}
	}
	return rec
}

func (e *Election) writeLease(rec leaseRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return ckpt.WriteFileFS(e.fsys(), e.leasePath(), payload)
}

func (e *Election) fsys() iofault.FS {
	if e.cfg.FS != nil {
		return e.cfg.FS
	}
	return iofault.OS
}

// step runs one campaign tick: renew our lease, stand by behind a live
// leader, or try to acquire a vacant/expired lease.
func (e *Election) step() {
	now := e.cfg.now()
	rec := e.readLease()

	e.mu.Lock()
	if rec.Epoch > e.observed {
		e.observed = rec.Epoch
	}
	leading := e.epoch != 0
	myEpoch := e.epoch
	e.mu.Unlock()

	if leading {
		if rec.Holder == e.cfg.ID && rec.Epoch == myEpoch {
			// Renew. A failed write past our horizon means we can no
			// longer prove leadership; step down and let the campaign
			// re-acquire if the lease is still ours next tick.
			renewed := leaseRecord{Holder: e.cfg.ID, Epoch: myEpoch, ExpiresUnixMilli: now.Add(e.cfg.TTL).UnixMilli()}
			if err := e.writeLease(renewed); err != nil {
				e.cfg.Logf("fleet: %s lease renewal failed: %v", e.cfg.ID, err)
				return
			}
			e.mu.Lock()
			e.expires = now.Add(e.cfg.TTL)
			e.mu.Unlock()
			return
		}
		// Someone else's claim (or a higher epoch of ours) is on disk:
		// we were deposed. Stop leading at once.
		e.mu.Lock()
		e.epoch = 0
		e.mu.Unlock()
		e.cfg.Logf("fleet: %s deposed by %s (epoch %d)", e.cfg.ID, rec.Holder, rec.Epoch)
		return
	}

	// Standby: respect a live lease.
	if rec.Holder != "" && rec.Holder != e.cfg.ID && now.UnixMilli() < rec.ExpiresUnixMilli {
		e.mu.Lock()
		e.lastHolder = rec.Holder
		e.mu.Unlock()
		return
	}

	// Vacant or expired: try to acquire with a bumped epoch, settle, and
	// re-read to see whether our rename won the race.
	claim := leaseRecord{Holder: e.cfg.ID, Epoch: rec.Epoch + 1, ExpiresUnixMilli: now.Add(e.cfg.TTL).UnixMilli()}
	if err := e.writeLease(claim); err != nil {
		e.cfg.Logf("fleet: %s lease acquisition failed: %v", e.cfg.ID, err)
		return
	}
	if e.cfg.settle > 0 {
		time.Sleep(e.cfg.settle)
	}
	confirm := e.readLease()
	if confirm.Holder != e.cfg.ID || confirm.Epoch != claim.Epoch {
		// Lost the race; the winner's epoch is on disk.
		e.mu.Lock()
		if confirm.Epoch > e.observed {
			e.observed = confirm.Epoch
		}
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	prev := e.lastHolder
	if prev == "" {
		prev = rec.Holder
	}
	e.epoch = claim.Epoch
	e.expires = now.Add(e.cfg.TTL)
	if claim.Epoch > e.observed {
		e.observed = claim.Epoch
	}
	if prev != "" && prev != e.cfg.ID {
		e.failovers++
	}
	e.lastHolder = e.cfg.ID
	e.mu.Unlock()
	e.cfg.Logf("fleet: %s assumed leadership at epoch %d (previous: %s)", e.cfg.ID, claim.Epoch, prevOrNone(prev))
}

func prevOrNone(prev string) string {
	if prev == "" {
		return "none"
	}
	return prev
}
