package fleet

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jportal"
	"jportal/internal/bench"
	"jportal/internal/bytecode"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/meta"
	"jportal/internal/workload"
)

// BenchIngest measures sharded-ingest throughput for the BENCH_<n>.json
// fleet section: one chunked archive is collected once, then pushed as
// `sessions` concurrent sessions through a real coordinator onto each
// node count in nodeCounts (fresh nodes and data dir per run, unique
// session ids per rep so nothing resume-skips). The recorded wall is the
// minimum over reps; throughput counts the trace payload all sessions
// delivered. Lives here rather than the root bench suite because the
// fleet package imports jportal for aggregation — the root cannot import
// it back.
func BenchIngest(subject string, scale float64, nodeCounts []int, sessions, reps int) ([]bench.Fleet, error) {
	if sessions <= 0 {
		sessions = 4
	}
	if reps <= 0 {
		reps = 3
	}
	tmp, err := os.MkdirTemp("", "jportal-fleet-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	arch := filepath.Join(tmp, "archive")
	s, err := workload.Load(subject, workload.Scale(scale))
	if err != nil {
		return nil, err
	}
	var w *jportal.StreamArchiveWriter
	if _, err := jportal.RunWithSink(s.Program, s.Threads, jportal.DefaultRunConfig(),
		func(p *bytecode.Program, snap *meta.Snapshot, nc int) (jportal.TraceSink, error) {
			var err error
			w, err = jportal.CreateStreamArchive(arch, p, snap, nc)
			return w, err
		}); err != nil {
		return nil, err
	}
	if err := w.Seal(); err != nil {
		return nil, err
	}
	fi, err := os.Stat(filepath.Join(arch, jportal.StreamFileName))
	if err != nil {
		return nil, err
	}

	var out []bench.Fleet
	for _, nodes := range nodeCounts {
		best := time.Duration(math.MaxInt64)
		for rep := 0; rep < reps; rep++ {
			d, err := benchFleetOnce(arch, nodes, sessions, fmt.Sprintf("r%d", rep))
			if err != nil {
				return nil, err
			}
			if d < best {
				best = d
			}
		}
		sec := best.Seconds()
		out = append(out, bench.Fleet{
			Nodes:         nodes,
			Sessions:      sessions,
			TraceBytes:    fi.Size(),
			WallMs:        sec * 1e3,
			TraceMBPerSec: float64(fi.Size()) * float64(sessions) / (1 << 20) / sec,
		})
	}
	return out, nil
}

// benchFleetOnce stands up a coordinator plus `nodes` ingest servers,
// pushes `sessions` copies of the archive concurrently through the
// coordinator, and returns the wall-clock of the push phase (setup and
// teardown excluded).
func benchFleetOnce(arch string, nodes, sessions int, tag string) (time.Duration, error) {
	c := NewCoordinator(CoordinatorConfig{LeaseTTL: time.Minute})
	defer c.Close()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go c.ServeIngest(cln)

	dataDir, err := os.MkdirTemp("", "jportal-fleet-data-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dataDir)

	var servers []*ingest.Server
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range servers {
			srv.Shutdown(ctx)
		}
	}()
	for i := 0; i < nodes; i++ {
		srv, err := ingest.NewServer(ingest.Config{DataDir: dataDir})
		if err != nil {
			return 0, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		// Register directly: the bench does not exercise heartbeats, so a
		// member client per node would only add goroutines to tear down.
		name := fmt.Sprintf("bench-n%d", i)
		addr := ln.Addr().String()
		if err := c.registerForBench(name, addr); err != nil {
			return 0, err
		}
	}

	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.PushArchive(context.Background(), client.Options{
				Addr:      cln.Addr().String(),
				SessionID: fmt.Sprintf("bench-%s-s%d", tag, i),
			}, arch)
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// registerForBench adds a node without a Member heartbeat loop.
func (c *Coordinator) registerForBench(name, ingestAddr string) error {
	return c.register(registration{Name: name, IngestAddr: ingestAddr})
}
