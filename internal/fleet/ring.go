// Package fleet shards jportal's ingest tier across multiple nodes: a
// coordinator tracks the live member set under heartbeat leases, a
// consistent-hash ring maps session ids onto members, and clients that
// HELLO the wrong process are REDIRECTed (ingest protocol 3) to the
// session's owner. All nodes archive into one shared durable data
// directory, so when a member dies the replacement owner resumes its
// sessions from the on-disk ingest.state frontier and the final archives
// stay byte-identical to an uninterrupted single-node run (DESIGN.md §14).
package fleet

import (
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of ring positions each member occupies.
// 64 keeps the per-node share within a few percent of even for small
// fleets while the ring stays tiny (a handful of KB for dozens of nodes).
const vnodesPerNode = 64

type vnode struct {
	hash uint64
	node int // index into Ring.names
}

// Ring is a consistent-hash ring over the member set. It is a pure
// function of the members map: every process that knows the same
// name→address set derives the same ring, so the coordinator and members
// never exchange ring state — only membership (see Membership).
type Ring struct {
	names  []string // sorted member names
	addrs  []string // addrs[i] serves names[i]
	vnodes []vnode  // sorted by hash
}

// BuildRing derives the ring for a member set (name → ingest address).
// An empty or nil map yields an empty ring, which routes nothing.
func BuildRing(members map[string]string) *Ring {
	r := &Ring{}
	for name := range members {
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	r.addrs = make([]string, len(r.names))
	r.vnodes = make([]vnode, 0, len(r.names)*vnodesPerNode)
	for i, name := range r.names {
		r.addrs[i] = members[name]
		for v := 0; v < vnodesPerNode; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(name, v), node: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break by name so the
		// ring stays order-independent.
		return r.names[r.vnodes[a].node] < r.names[r.vnodes[b].node]
	})
	return r
}

// ringHash positions vnode v of a member on the ring.
func ringHash(name string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#', byte(v), byte(v >> 8)})
	return mix64(h.Sum64())
}

// keyHash positions a session id on the ring.
func keyHash(sessionID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sessionID))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a over near-identical
// inputs ("node-0#1", "node-0#2", …) leaves the high bits correlated,
// which clusters a member's vnodes and skews the arc lengths badly; the
// finalizer avalanches every input bit across the whole word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len reports the number of members.
func (r *Ring) Len() int { return len(r.names) }

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// Route maps a session id to its owning member. ok is false only on an
// empty ring.
func (r *Ring) Route(sessionID string) (name, addr string, ok bool) {
	if len(r.vnodes) == 0 {
		return "", "", false
	}
	h := keyHash(sessionID)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap: the ring is circular
	}
	n := r.vnodes[i].node
	return r.names[n], r.addrs[n], true
}
