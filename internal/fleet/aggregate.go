package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jportal"
	"jportal/internal/core"
	"jportal/internal/profile"
)

// Aggregation is the fleet-level rollup over every sealed session in the
// shared data directory — the merged view a single-node deployment gets
// from one process's reports, reassembled across however many nodes
// ingested the sessions (ISSUE: fleet aggregation; DESIGN.md §14).
type Aggregation struct {
	// Sessions are the per-session summaries, sorted by id.
	Sessions []SessionSummary
	// Skipped lists directories that were not aggregatable (unsealed,
	// foreign, or corrupt), with the reason. Reported, never silently
	// dropped: an incomplete fleet report must say so.
	Skipped []SkippedSession

	// CoveredInstrs/TotalInstrs sum the per-session coverage; Ratio is
	// the fleet-wide weighted coverage. Sessions run different programs,
	// so this weights each instruction equally, not each session.
	CoveredInstrs, TotalInstrs int
	// Steps counts reconstructed control-flow steps fleet-wide.
	Steps int64
	// HotMethods ranks methods by step count across all sessions, merged
	// by full name (Class.Method).
	HotMethods []HotMethod
	// Quarantined sums the degradation ledgers by reason slug. All-zero
	// on a healthy fleet.
	Quarantined map[string]uint64
}

// SessionSummary is one session's contribution to the fleet view.
type SessionSummary struct {
	ID     string
	Source string // trace-source backend ("" = default)

	CoveredInstrs, TotalInstrs int
	CoveredMethods             int
	Steps                      int64
	Threads                    int
	Quarantined                map[string]uint64
}

// Ratio is the session's statement coverage.
func (s *SessionSummary) Ratio() float64 {
	if s.TotalInstrs == 0 {
		return 0
	}
	return float64(s.CoveredInstrs) / float64(s.TotalInstrs)
}

// SkippedSession names a directory the aggregation could not include.
type SkippedSession struct {
	ID     string
	Reason string
}

// HotMethod is one entry of the fleet-wide hot-method ranking.
type HotMethod struct {
	Name  string // Class.Method
	Steps int64
}

// Ratio is the fleet-wide weighted statement coverage.
func (a *Aggregation) Ratio() float64 {
	if a.TotalInstrs == 0 {
		return 0
	}
	return float64(a.CoveredInstrs) / float64(a.TotalInstrs)
}

// Aggregate analyzes every session directory under dataDir and merges
// the results. topHot bounds the merged hot-method ranking (0 = 10).
// Each session decodes with its own recorded trace source, so a fleet
// mixing Intel PT and E-Trace sessions aggregates cleanly.
func Aggregate(dataDir string, topHot int) (*Aggregation, error) {
	if topHot <= 0 {
		topHot = 10
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	agg := &Aggregation{Quarantined: make(map[string]uint64)}
	hot := make(map[string]int64)
	for _, e := range entries {
		// Dot-dirs are infrastructure, not sessions — most importantly the
		// scrubber's .quarantine, whose contents are damaged by definition.
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		id := e.Name()
		dir := filepath.Join(dataDir, id)
		if _, err := os.Stat(filepath.Join(dir, "archive.meta")); err != nil {
			agg.Skipped = append(agg.Skipped, SkippedSession{ID: id, Reason: "not a run archive"})
			continue
		}
		sum, steps, err := summarizeSession(dir, id)
		if err != nil {
			agg.Skipped = append(agg.Skipped, SkippedSession{ID: id, Reason: err.Error()})
			continue
		}
		agg.Sessions = append(agg.Sessions, *sum)
		agg.CoveredInstrs += sum.CoveredInstrs
		agg.TotalInstrs += sum.TotalInstrs
		agg.Steps += sum.Steps
		for reason, n := range sum.Quarantined {
			agg.Quarantined[reason] += n
		}
		for name, n := range steps {
			hot[name] += n
		}
	}
	sort.Slice(agg.Sessions, func(i, j int) bool { return agg.Sessions[i].ID < agg.Sessions[j].ID })
	sort.Slice(agg.Skipped, func(i, j int) bool { return agg.Skipped[i].ID < agg.Skipped[j].ID })
	names := make([]string, 0, len(hot))
	for name := range hot {
		names = append(names, name)
	}
	// Rank by steps, ties by name, so the report is deterministic.
	sort.Slice(names, func(i, j int) bool {
		if hot[names[i]] != hot[names[j]] {
			return hot[names[i]] > hot[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > topHot {
		names = names[:topHot]
	}
	for _, name := range names {
		agg.HotMethods = append(agg.HotMethods, HotMethod{Name: name, Steps: hot[name]})
	}
	return agg, nil
}

// summarizeSession replays one sealed chunked archive and reduces it to
// a summary plus its per-method step counts (keyed by full name, the only
// identity that survives across sessions running different programs).
func summarizeSession(dir, id string) (*SessionSummary, map[string]int64, error) {
	src, err := jportal.ArchiveSourceID(dir)
	if err != nil {
		return nil, nil, err
	}
	prog, an, err := jportal.AnalyzeStreamArchive(dir, core.DefaultPipelineConfig(), false, 0)
	if err != nil {
		return nil, nil, err
	}
	sum := &SessionSummary{ID: id, Source: src, Quarantined: make(map[string]uint64)}
	cov := profile.NewCoverage(prog)
	steps := make(map[string]int64)
	for _, tr := range an.Threads {
		sum.Threads++
		sum.Steps += int64(len(tr.Steps))
		cov.Add(tr.Steps)
		for i := range tr.Steps {
			mid := tr.Steps[i].Method
			if mid < 0 || int(mid) >= len(prog.Methods) {
				continue
			}
			steps[prog.Methods[mid].FullName()]++
		}
	}
	cov.Seal()
	sum.CoveredInstrs, sum.TotalInstrs = cov.CoveredInstrs, cov.TotalInstrs
	sum.CoveredMethods = cov.CoveredMethods
	if an.Report != nil {
		for reason, n := range an.Report.Quarantined {
			sum.Quarantined[reason] += n
		}
	}
	return sum, steps, nil
}

// Format renders the aggregation as the `jportal fleet report` text.
func (a *Aggregation) Format() string {
	out := fmt.Sprintf("fleet report: %d session(s), %d skipped\n", len(a.Sessions), len(a.Skipped))
	out += fmt.Sprintf("  coverage  %d/%d instrs (%.1f%%)\n", a.CoveredInstrs, a.TotalInstrs, 100*a.Ratio())
	out += fmt.Sprintf("  steps     %d\n", a.Steps)
	for _, s := range a.Sessions {
		src := s.Source
		if src != "" {
			src = " [" + src + "]"
		}
		out += fmt.Sprintf("  session %s%s: %d threads, %d steps, %.1f%% coverage\n",
			s.ID, src, s.Threads, s.Steps, 100*s.Ratio())
	}
	if len(a.HotMethods) > 0 {
		out += "  hot methods:\n"
		for _, h := range a.HotMethods {
			out += fmt.Sprintf("    %10d  %s\n", h.Steps, h.Name)
		}
	}
	quarantined := false
	for _, n := range a.Quarantined {
		if n > 0 {
			quarantined = true
		}
	}
	if quarantined {
		out += "  degradation:\n"
		reasons := make([]string, 0, len(a.Quarantined))
		for r := range a.Quarantined {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			if a.Quarantined[r] > 0 {
				out += fmt.Sprintf("    %10d  %s\n", a.Quarantined[r], r)
			}
		}
	}
	for _, s := range a.Skipped {
		out += fmt.Sprintf("  skipped %s: %s\n", s.ID, s.Reason)
	}
	return out
}
