package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jportal/internal/ingest"
	"jportal/internal/iofault"
	"jportal/internal/metrics"
)

// Membership is the coordinator's answer to register/heartbeat/nodes
// requests: the live member set plus the lease the caller must keep
// renewing. Members rebuild the hash ring locally from Nodes (the ring is
// a pure function of it — see BuildRing), so this is the only fleet state
// that ever crosses the wire.
type Membership struct {
	Nodes          map[string]string `json:"nodes"` // name → ingest address
	LeaseTTLMillis int64             `json:"lease_ttl_ms"`
	// RingEpoch counts ring rebuilds monotonically (persisted across
	// coordinator restarts), so members can tell a fresher membership
	// answer from a stale one during a failover.
	RingEpoch int64 `json:"ring_epoch,omitempty"`
}

// registration is the body of register/heartbeat/deregister requests.
type registration struct {
	Name       string `json:"name"`
	IngestAddr string `json:"ingest_addr,omitempty"`
	MetricsURL string `json:"metrics_url,omitempty"` // node /metrics sidecar, for fleet aggregation
}

// CoordinatorConfig configures a Coordinator. The zero value works.
type CoordinatorConfig struct {
	// LeaseTTL is how long a member stays routable without a heartbeat.
	// Default 10s. Members heartbeat at TTL/3; the expiry sweep runs at
	// TTL/4, so a dead node stops owning sessions within ~1.3 leases.
	LeaseTTL time.Duration

	// Logf, when set, receives one line per membership change.
	Logf func(format string, args ...any)

	// HTTPClient scrapes member /metrics endpoints for fleet aggregation.
	// Default: 2-second-timeout client.
	HTTPClient *http.Client

	// StateDir, when set, makes membership durable: every membership
	// change is persisted (CRC-sealed, crash-atomic — internal/ckpt over
	// internal/fsatomic) to <StateDir>/coordinator.state before it is
	// acknowledged, and a restarted coordinator rehydrates the fleet from
	// it — every rehydrated member gets one fresh lease to heartbeat in —
	// instead of coming back empty and triggering a mass rebalance.
	StateDir string

	// Election, when set, puts this coordinator behind a leadership lease
	// (standby failover): while not leading it answers control-plane
	// posts with 503 and ingest HELLOs with BUSY, and on winning the
	// lease it rehydrates the durable state its predecessor persisted.
	Election *Election

	// FlapDamping is the heartbeat-miss hysteresis: an expired lease
	// stays routable this much longer before the member is dropped, so
	// one lost heartbeat — or the heartbeat gap of a coordinator
	// failover — does not churn the ring. A heartbeat arriving inside
	// the window cancels the removal without any rebalance (counted in
	// ring_flaps_damped). Default LeaseTTL/2.
	FlapDamping time.Duration

	// MinDwell is the minimum time a member stays in the ring before
	// lease expiry may remove it (explicit deregistration is always
	// immediate): a node that joins and immediately goes quiet should
	// not cause two rebalances in one lease. Default LeaseTTL.
	MinDwell time.Duration

	// FS, when set, routes the coordinator's durable-state I/O through a
	// fault-injecting filesystem (internal/iofault). Nil means the real
	// filesystem. The control plane already treats a failed persist as
	// fatal to the ACK, so injected ENOSPC/EIO here exercises the same
	// persist-before-ACK contract the chaos sweeps pin for ingest.
	FS iofault.FS

	// now substitutes the clock in tests.
	now func() time.Time
}

// fsys returns the configured filesystem, defaulting to the real one.
func (cfg *CoordinatorConfig) fsys() iofault.FS {
	if cfg.FS != nil {
		return cfg.FS
	}
	return iofault.OS
}

type memberEntry struct {
	ingestAddr string
	metricsURL string
	deadline   time.Time
	joinedAt   time.Time
}

// Coordinator is the fleet control plane: it tracks members under
// heartbeat leases, answers membership queries, redirects ingest HELLOs
// to each session's owner, and aggregates the fleet's metrics.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	members   map[string]*memberEntry
	ring      *Ring
	ringEpoch int64 // bumped per rebuild, persisted with the membership
	dirty     bool  // membership changed since the last successful persist
	ledEpoch  int64 // leadership epoch the current membership was rehydrated under
	closed    bool

	rebalances  atomic.Int64 // membership changes (join, leave, lease expiry)
	redirected  atomic.Int64 // REDIRECT frames sent to v3 clients
	flapsDamped atomic.Int64 // heartbeats that arrived inside the damping window

	stop chan struct{}
	done chan struct{}

	lnMu      sync.Mutex
	listeners []net.Listener
}

// NewCoordinator starts a coordinator (including its lease-expiry sweep;
// call Close to stop it).
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 2 * time.Second}
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.FlapDamping <= 0 {
		cfg.FlapDamping = cfg.LeaseTTL / 2
	}
	if cfg.MinDwell <= 0 {
		cfg.MinDwell = cfg.LeaseTTL
	}
	c := &Coordinator{
		cfg:     cfg,
		members: make(map[string]*memberEntry),
		ring:    BuildRing(nil),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	c.rehydrateLocked()
	c.mu.Unlock()
	go c.expireLoop()
	return c
}

// leading reports whether this coordinator may mutate fleet state.
// Coordinators without an election always lead.
func (c *Coordinator) leading() bool {
	e := c.cfg.Election
	return e == nil || e.IsLeader()
}

// syncLeadershipLocked notices a leadership transition (our election
// epoch changed since the membership was last rehydrated) and reloads the
// durable state the previous leader persisted, before the first mutation
// under the new epoch is applied. Caller holds c.mu.
func (c *Coordinator) syncLeadershipLocked() {
	e := c.cfg.Election
	if e == nil {
		return
	}
	ep := e.Epoch()
	if ep == 0 || ep == c.ledEpoch {
		return
	}
	c.ledEpoch = ep
	c.rehydrateLocked()
}

// Close stops the expiry sweep and any ServeIngest listeners.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	c.lnMu.Lock()
	for _, ln := range c.listeners {
		ln.Close()
	}
	c.lnMu.Unlock()
}

func (c *Coordinator) expireLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.expire()
		}
	}
}

// expire drops members whose lease lapsed and rebuilds the ring. Each
// expiry is a rebalance: the dead node's hash range moves to its ring
// successors, which will resume the sessions from the shared data dir.
// Two guards damp ring flapping: a lapsed lease gets FlapDamping of
// extra grace (one lost heartbeat is not a death), and a member is never
// expired before it has dwelt MinDwell in the ring.
func (c *Coordinator) expire() {
	if !c.leading() {
		return // a standby's view is not authoritative; never expire from it
	}
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncLeadershipLocked()
	changed := false
	for name, m := range c.members {
		if !now.After(m.deadline) {
			continue
		}
		if now.Before(m.joinedAt.Add(c.cfg.MinDwell)) || !now.After(m.deadline.Add(c.cfg.FlapDamping)) {
			continue // damped: give the heartbeat time to come back
		}
		delete(c.members, name)
		changed = true
		c.cfg.Logf("fleet: node %s lease expired, reassigning its sessions", name)
	}
	if changed {
		c.rebuildLocked()
		if err := c.persistLocked(); err != nil {
			c.cfg.Logf("fleet: persisting membership after expiry failed: %v", err)
		}
	}
}

// rebuildLocked recomputes the ring, bumps the ring epoch and counts the
// rebalance. Caller holds c.mu and is responsible for persisting.
func (c *Coordinator) rebuildLocked() {
	c.ring = BuildRing(c.memberAddrsLocked())
	c.ringEpoch++
	c.dirty = true
	c.rebalances.Add(1)
}

func (c *Coordinator) memberAddrsLocked() map[string]string {
	nodes := make(map[string]string, len(c.members))
	for name, m := range c.members {
		nodes[name] = m.ingestAddr
	}
	return nodes
}

// membership snapshots the member set for a response body.
func (c *Coordinator) membership() Membership {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Membership{
		Nodes:          c.memberAddrsLocked(),
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		RingEpoch:      c.ringEpoch,
	}
}

// register upserts a member and extends its lease. Membership changes
// (new node, or a known node moving address) rebuild the ring and are
// persisted durably BEFORE the caller acknowledges — the same
// persist-before-ACK discipline as the ingest data plane, so a
// coordinator crash never forgets a membership it confirmed.
func (c *Coordinator) register(reg registration) error {
	if reg.Name == "" || !ingest.ValidSessionID(reg.Name) {
		return fmt.Errorf("fleet: invalid node name %q", reg.Name)
	}
	if reg.IngestAddr == "" {
		return fmt.Errorf("fleet: node %s registered without an ingest address", reg.Name)
	}
	if len(reg.IngestAddr) > ingest.MaxRedirectAddrLen {
		return fmt.Errorf("fleet: node %s ingest address exceeds %d bytes", reg.Name, ingest.MaxRedirectAddrLen)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncLeadershipLocked()
	now := c.cfg.now()
	prev, known := c.members[reg.Name]
	entry := &memberEntry{
		ingestAddr: reg.IngestAddr,
		metricsURL: reg.MetricsURL,
		deadline:   now.Add(c.cfg.LeaseTTL),
		joinedAt:   now,
	}
	if known {
		entry.joinedAt = prev.joinedAt
		if now.After(prev.deadline) {
			// The lease had lapsed but the damping window kept the member
			// in the ring: the heartbeat came back in time, so this renewal
			// is a flap the hysteresis absorbed — no rebalance happened.
			c.flapsDamped.Add(1)
		}
	}
	c.members[reg.Name] = entry
	if !known || prev.ingestAddr != reg.IngestAddr {
		c.rebuildLocked()
		c.cfg.Logf("fleet: node %s joined at %s (%d nodes)", reg.Name, reg.IngestAddr, len(c.members))
	}
	if c.dirty {
		if err := c.persistLocked(); err != nil {
			return fmt.Errorf("fleet: membership not durable: %w", err)
		}
	}
	return nil
}

// deregister removes a member (drain-on-SIGTERM path). Unknown names are
// a no-op: deregister must be idempotent across retries.
func (c *Coordinator) deregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncLeadershipLocked()
	if _, ok := c.members[name]; !ok {
		return
	}
	delete(c.members, name)
	c.rebuildLocked()
	if err := c.persistLocked(); err != nil {
		c.cfg.Logf("fleet: persisting membership after drain failed: %v", err)
	}
	c.cfg.Logf("fleet: node %s drained (%d nodes)", name, len(c.members))
}

// Route maps a session id to its owning member. ok is false while the
// fleet is empty.
func (c *Coordinator) Route(sessionID string) (name, addr string, ok bool) {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	return ring.Route(sessionID)
}

// Handler returns the coordinator's HTTP control plane:
//
//	POST /register    join the fleet (body: registration JSON) → Membership
//	POST /heartbeat   renew the lease (same body) → Membership
//	POST /deregister  leave the fleet (drain) → 204
//	GET  /nodes       the live Membership
//	GET  /metrics     fleet-aggregated counters (JSON object)
//	GET  /healthz     200 "ok"
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /register", func(w http.ResponseWriter, r *http.Request) {
		c.handleJoin(w, r)
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		c.handleJoin(w, r)
	})
	mux.HandleFunc("POST /deregister", func(w http.ResponseWriter, r *http.Request) {
		if !c.leading() {
			http.Error(w, "fleet: not the leader", http.StatusServiceUnavailable)
			return
		}
		reg, err := readRegistration(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.deregister(reg.Name)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.membership())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metrics.WriteSortedJSON(w, c.MetricsSnapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// handleJoin serves both register and heartbeat: an upsert plus a lease
// extension. A heartbeat from a node the coordinator forgot (restart,
// lease expiry during a network partition) re-registers it, so members
// never need to distinguish the two. Standbys answer 503 — members
// rotate to the next coordinator on their list.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	if !c.leading() {
		http.Error(w, "fleet: not the leader", http.StatusServiceUnavailable)
		return
	}
	reg, err := readRegistration(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.register(reg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(c.membership())
}

func readRegistration(body io.Reader) (registration, error) {
	var reg registration
	if err := json.NewDecoder(io.LimitReader(body, 1<<16)).Decode(&reg); err != nil {
		return reg, fmt.Errorf("fleet: bad request body: %w", err)
	}
	return reg, nil
}

// ServeIngest answers ingest-protocol HELLOs on ln with the session's
// route: REDIRECT for protocol-3 clients, a typed "protocol-version" ERR
// for older ones (they cannot parse v3 frames — satellite contract), and
// BUSY while the fleet is empty (the client retries; a node may still be
// registering). The coordinator never ingests data itself — every
// connection ends after the handshake answer. Returns when ln closes.
func (c *Coordinator) ServeIngest(ln net.Listener) error {
	c.lnMu.Lock()
	c.listeners = append(c.listeners, ln)
	c.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.stop:
				return nil
			default:
				return err
			}
		}
		go c.answerHello(conn)
	}
}

func (c *Coordinator) answerHello(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := ingest.ReadFrame(conn)
	if err != nil {
		return
	}
	reply := func(typ byte, payload []byte) { ingest.WriteFrame(conn, typ, payload) }
	if typ != ingest.FrameHello {
		reply(ingest.FrameErr, []byte("coordinator: expected HELLO"))
		return
	}
	version, _, id, _, err := ingest.ParseHello(payload)
	if err != nil {
		reply(ingest.FrameErr, []byte(fmt.Sprintf("coordinator: %v", err)))
		return
	}
	if version < ingest.MinProtoVersion || version > ingest.ProtoVersion {
		reply(ingest.FrameErr, ingest.FormatErr(ingest.ErrCategoryProtocol,
			fmt.Sprintf("unsupported protocol %d (want %d..%d)", version, ingest.MinProtoVersion, ingest.ProtoVersion)))
		return
	}
	if !ingest.ValidSessionID(id) {
		reply(ingest.FrameErr, []byte(fmt.Sprintf("coordinator: invalid session id %q", id)))
		return
	}
	if !c.leading() {
		// A standby's ring is not authoritative; tell the client to retry
		// (it rotates to another coordinator address meanwhile). The hint
		// is half the leadership lease: about how long until either the
		// leader answers elsewhere or this standby takes over.
		if version >= ingest.ProtoVersionBusy {
			reply(ingest.FrameBusy, ingest.AppendBusy(nil, uint32((c.cfg.Election.cfg.TTL/2).Milliseconds())))
		} else {
			reply(ingest.FrameErr, []byte("coordinator: not the fleet leader"))
		}
		return
	}
	name, addr, ok := c.Route(id)
	if !ok {
		// Empty fleet: ask the client to retry — a node may be seconds from
		// registering. Pre-BUSY clients get a plain error instead.
		if version >= ingest.ProtoVersionBusy {
			reply(ingest.FrameBusy, ingest.AppendBusy(nil, uint32((c.cfg.LeaseTTL/2).Milliseconds())))
		} else {
			reply(ingest.FrameErr, []byte("coordinator: no ingest nodes registered"))
		}
		return
	}
	if version >= ingest.ProtoVersionRedirect {
		c.redirected.Add(1)
		reply(ingest.FrameRedirect, ingest.AppendRedirect(nil, addr))
		return
	}
	reply(ingest.FrameErr, ingest.FormatErr(ingest.ErrCategoryProtocol,
		fmt.Sprintf("session %q is served by node %s; protocol %d cannot follow redirects (need %d+)",
			id, name, version, ingest.ProtoVersionRedirect)))
}

// MetricsSnapshot aggregates the fleet view: the coordinator's own
// counters plus the sum of every member's /metrics sidecar. Every
// coordinator-owned key — the fleet_* set plus the resilience gauges
// (ring_flaps_damped, coordinator_failovers, leadership_epoch) — is
// pre-registered: present (zero) before any traffic, so scrapers can
// alert on them from the first scrape (DESIGN.md §14/§15).
func (c *Coordinator) MetricsSnapshot() map[string]int64 {
	c.mu.Lock()
	urls := make(map[string]string, len(c.members))
	for name, m := range c.members {
		if m.metricsURL != "" {
			urls[name] = m.metricsURL
		}
	}
	nodes := int64(len(c.members))
	ringEpoch := c.ringEpoch
	c.mu.Unlock()

	out := map[string]int64{
		"fleet_nodes":                       nodes,
		"fleet_rebalances":                  c.rebalances.Load(),
		"fleet_sessions_redirected":         c.redirected.Load(),
		"fleet_sessions_resumed_after_loss": 0,
		"fleet_scrape_errors":               0,
		"fleet_ring_epoch":                  ringEpoch,
		"ring_flaps_damped":                 c.flapsDamped.Load(),
		"coordinator_failovers":             c.cfg.Election.Failovers(),
		"leadership_epoch":                  c.cfg.Election.ObservedEpoch(),
	}
	for _, url := range urls {
		snap, err := scrapeMetrics(c.cfg.HTTPClient, url)
		if err != nil {
			out["fleet_scrape_errors"]++
			continue
		}
		for k, v := range snap {
			out[k] += v
		}
	}
	// A session resumed from durable state on any node is, fleet-wide, a
	// session that survived a node loss or restart.
	out["fleet_sessions_resumed_after_loss"] += out["sessions_restored"]
	return out
}

func scrapeMetrics(hc *http.Client, url string) (map[string]int64, error) {
	resp, err := hc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: status %s", url, resp.Status)
	}
	var snap map[string]int64
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("fleet: %s: %w", url, err)
	}
	return snap, nil
}
