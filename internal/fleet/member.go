package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// MemberConfig configures one ingest node's fleet membership.
type MemberConfig struct {
	// Name identifies the node (same character rules as session ids).
	Name string
	// CoordinatorURL is the coordinator's HTTP control plane, e.g.
	// "http://10.0.0.1:7071". Ignored when CoordinatorURLs is set.
	CoordinatorURL string
	// CoordinatorURLs lists every coordinator replica (leader and
	// standbys). The member talks to one at a time; on any failure —
	// including a standby's 503 "not the leader" — the same request is
	// retried against the rest of the list, so a coordinator failover
	// costs one extra HTTP round trip, not a lease.
	CoordinatorURLs []string
	// IngestAddr is this node's advertised ingest address — what clients
	// are redirected to, so it must be reachable from them (not ":0").
	IngestAddr string
	// MetricsURL optionally advertises this node's /metrics sidecar for
	// fleet aggregation.
	MetricsURL string

	// Logf, when set, receives one line per membership event.
	Logf func(format string, args ...any)
	// HTTPClient talks to the coordinator. Default: 5-second timeout.
	HTTPClient *http.Client
}

// Member is a node's view of the fleet: it registers with the
// coordinator, keeps the lease alive with heartbeats, and mirrors the
// membership into a local hash ring. It implements the ingest server's
// Router, so installing it (Server.SetRouter) makes the node answer
// HELLOs for sessions it does not own with a REDIRECT to the owner.
type Member struct {
	cfg       MemberConfig
	urls      []string
	heartbeat time.Duration

	mu     sync.Mutex
	ring   *Ring
	active int // index into urls of the last coordinator that answered

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Join registers the node with the coordinator (retrying until ctx
// expires — the coordinator may still be starting) and starts the
// heartbeat loop. Call Drain for a graceful exit or Stop to just halt
// the heartbeats (the lease then expires on its own, as it would if the
// process had died).
func Join(ctx context.Context, cfg MemberConfig) (*Member, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("fleet: member needs a name")
	}
	if cfg.IngestAddr == "" {
		return nil, fmt.Errorf("fleet: member %s needs an advertised ingest address", cfg.Name)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 5 * time.Second}
	}
	urls := cfg.CoordinatorURLs
	if len(urls) == 0 && cfg.CoordinatorURL != "" {
		urls = []string{cfg.CoordinatorURL}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: member %s needs at least one coordinator URL", cfg.Name)
	}
	m := &Member{
		cfg:  cfg,
		urls: urls,
		ring: BuildRing(nil),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var ms Membership
	for {
		var err error
		if ms, err = m.post(ctx, "/register"); err == nil {
			break
		}
		m.cfg.Logf("fleet: %s: register with %v failed, retrying: %v", cfg.Name, urls, err)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: %s: register with %v: %w", cfg.Name, urls, ctx.Err())
		case <-time.After(500 * time.Millisecond):
		}
	}
	m.applyMembership(ms)
	// Heartbeat at a third of the lease so two consecutive losses still
	// leave slack before expiry.
	m.heartbeat = time.Duration(ms.LeaseTTLMillis) * time.Millisecond / 3
	if m.heartbeat <= 0 {
		m.heartbeat = 3 * time.Second
	}
	go m.heartbeatLoop()
	return m, nil
}

func (m *Member) applyMembership(ms Membership) {
	ring := BuildRing(ms.Nodes)
	m.mu.Lock()
	m.ring = ring
	m.mu.Unlock()
}

// jitteredHeartbeat spreads one heartbeat interval across ±20% of the
// base so a fleet restarted at once does not heartbeat in lockstep
// against the coordinator forever.
func (m *Member) jitteredHeartbeat() time.Duration {
	base := m.heartbeat
	return base - base/5 + time.Duration(rand.Int63n(int64(2*base/5)+1))
}

func (m *Member) heartbeatLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-time.After(m.jitteredHeartbeat()):
			ctx, cancel := context.WithTimeout(context.Background(), m.heartbeat)
			ms, err := m.post(ctx, "/heartbeat")
			cancel()
			if err != nil {
				// Keep routing on the last known ring; the next heartbeat
				// re-registers if the coordinator forgot us meanwhile.
				m.cfg.Logf("fleet: %s: heartbeat failed: %v", m.cfg.Name, err)
				continue
			}
			m.applyMembership(ms)
		}
	}
}

// post sends this node's registration to a coordinator endpoint and
// decodes the Membership reply (empty for /deregister's 204). It walks
// the coordinator list starting at the replica that last answered, so a
// failover settles onto the new leader after one failed request.
func (m *Member) post(ctx context.Context, path string) (Membership, error) {
	var ms Membership
	body, err := json.Marshal(registration{
		Name:       m.cfg.Name,
		IngestAddr: m.cfg.IngestAddr,
		MetricsURL: m.cfg.MetricsURL,
	})
	if err != nil {
		return ms, err
	}
	m.mu.Lock()
	start := m.active
	m.mu.Unlock()
	var lastErr error
	for i := 0; i < len(m.urls); i++ {
		idx := (start + i) % len(m.urls)
		ms, err = m.postTo(ctx, m.urls[idx], path, body)
		if err == nil {
			m.mu.Lock()
			m.active = idx
			m.mu.Unlock()
			return ms, nil
		}
		lastErr = err
	}
	return Membership{}, lastErr
}

func (m *Member) postTo(ctx context.Context, url, path string, body []byte) (Membership, error) {
	var ms Membership
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		return ms, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.cfg.HTTPClient.Do(req)
	if err != nil {
		return ms, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return ms, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ms, fmt.Errorf("%s: status %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ms); err != nil {
		return ms, err
	}
	return ms, nil
}

// Route implements ingest.Router. An empty ring fails open (serve
// locally): refusing sessions because the coordinator is unreachable
// would turn a control-plane outage into a data-plane one.
func (m *Member) Route(sessionID string) (owner string, local bool) {
	m.mu.Lock()
	ring := m.ring
	m.mu.Unlock()
	name, addr, ok := ring.Route(sessionID)
	if !ok || name == m.cfg.Name {
		return "", true
	}
	return addr, false
}

// Nodes returns the member's current view of the fleet (sorted names).
func (m *Member) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Nodes()
}

// Stop halts the heartbeat loop without deregistering: the lease runs
// out exactly as if the process had died. Idempotent.
func (m *Member) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Drain deregisters from the coordinator — immediately routing new
// sessions elsewhere — then stops the heartbeat loop. The node's ingest
// server should Shutdown afterwards, so already-attached clients finish
// inside the drain budget. Used by serve's SIGTERM path.
func (m *Member) Drain(ctx context.Context) error {
	_, err := m.post(ctx, "/deregister")
	m.Stop()
	return err
}
