// Package fault is the chaos half of the robustness story (DESIGN.md §10):
// a deterministic, seeded fault injector that corrupts the online phase's
// outputs — PT packet streams, sideband records, and the JIT metadata
// snapshot — plus the quarantine ledger the hardened consume side reports
// into. Together they turn "the pipeline survived hostile input" from an
// anecdote into a measured coverage-vs-fault-rate curve (jportal chaos).
//
// Determinism contract: for a fixed Matrix (seed included) the injector
// corrupts exactly the same items regardless of call interleaving across
// cores, because every decision draws from a per-core RNG stream derived
// from the seed — feeding core 3 before core 0, or in different chunk
// sizes, changes nothing. That is what makes the chaos smoke in ci.sh
// byte-reproducible.
package fault

import (
	"sort"

	"jportal/internal/meta"
	"jportal/internal/metrics"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// Class identifies one injected fault kind. Every class is observable end
// to end: injection increments a "fault_injected_<class>" counter, and the
// hardened pipeline quarantines its damage under a typed Reason.
type Class uint8

const (
	// ClassBitFlip flips one bit in a packet payload (IP, TNT bits, NBits
	// or TSC).
	ClassBitFlip Class = iota
	// ClassTruncate destroys a packet's kind byte, modelling a record cut
	// short on the wire.
	ClassTruncate
	// ClassChunkDrop silently discards a run of items with no loss marker
	// (unlike perf_record_aux loss, which the collector reports as a gap).
	ClassChunkDrop
	// ClassChunkDup delivers a run of items twice.
	ClassChunkDup
	// ClassSidebandTear mangles a scheduler switch record the way a
	// half-written wire record decodes: its timestamp reads as garbage
	// (zero), so the consumer sees it as violently out of order.
	ClassSidebandTear
	// ClassSidebandReorder swaps adjacent switch records, violating the
	// per-core time-monotonicity the stitcher relies on.
	ClassSidebandReorder
	// ClassStaleJIT removes a compiled method's metadata entirely or
	// replaces its debug records with a stale (PC-shifted) version.
	ClassStaleJIT
	// ClassClockSkew offsets one core's clock by a constant — PT packets
	// and the sideband records captured on that core alike, the way an
	// unsynchronised TSC skews everything that core stamps. Cross-core
	// window ordering scrambles, so a migrating thread's stitched stream
	// goes backwards in time at core boundaries.
	ClassClockSkew

	numClasses
)

// Slug returns the class's stable snake_case name (metrics counter suffix).
func (c Class) Slug() string {
	switch c {
	case ClassBitFlip:
		return "bit_flip"
	case ClassTruncate:
		return "truncate"
	case ClassChunkDrop:
		return "chunk_drop"
	case ClassChunkDup:
		return "chunk_dup"
	case ClassSidebandTear:
		return "sideband_tear"
	case ClassSidebandReorder:
		return "sideband_reorder"
	case ClassStaleJIT:
		return "stale_jit"
	case ClassClockSkew:
		return "clock_skew"
	}
	return "unknown"
}

func (c Class) String() string { return c.Slug() }

// Classes lists every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// InjectCounterName is the metrics counter a class increments on injection.
func InjectCounterName(c Class) string { return "fault_injected_" + c.Slug() }

// Matrix configures the injector: one probability (or magnitude) per fault
// class, plus the seed that makes the whole run reproducible.
type Matrix struct {
	Seed uint64

	// Per-packet probabilities.
	BitFlip  float64
	Truncate float64
	// Per-run-of-items probabilities (runs of chunkItems items).
	ChunkDrop float64
	ChunkDup  float64
	// Per-sideband-record probabilities.
	SidebandTear    float64
	SidebandReorder float64
	// Per-compiled-method probability of stale or missing metadata.
	StaleJIT float64
	// ClockSkewMax bounds the constant per-core TSC offset (0 disables).
	ClockSkewMax uint64
}

// DefaultMatrix is the moderate mix the chaos benchmark and CI smoke use.
func DefaultMatrix(seed uint64) Matrix {
	return Matrix{
		Seed:            seed,
		BitFlip:         0.01,
		Truncate:        0.005,
		ChunkDrop:       0.01,
		ChunkDup:        0.005,
		SidebandTear:    0.01,
		SidebandReorder: 0.005,
		StaleJIT:        0.05,
		ClockSkewMax:    512,
	}
}

// Scale multiplies every probability (and the skew bound) by f, clamping
// probabilities to 1. Scale(0) is the identity matrix: no faults.
func (m Matrix) Scale(f float64) Matrix {
	p := func(v float64) float64 {
		v *= f
		if v > 1 {
			return 1
		}
		if v < 0 {
			return 0
		}
		return v
	}
	m.BitFlip = p(m.BitFlip)
	m.Truncate = p(m.Truncate)
	m.ChunkDrop = p(m.ChunkDrop)
	m.ChunkDup = p(m.ChunkDup)
	m.SidebandTear = p(m.SidebandTear)
	m.SidebandReorder = p(m.SidebandReorder)
	m.StaleJIT = p(m.StaleJIT)
	m.ClockSkewMax = uint64(float64(m.ClockSkewMax) * f)
	return m
}

// active reports whether any trace-stream fault can fire.
func (m *Matrix) traceActive() bool {
	return m.BitFlip > 0 || m.Truncate > 0 || m.ChunkDrop > 0 || m.ChunkDup > 0 || m.ClockSkewMax > 0
}

func (m *Matrix) sidebandActive() bool {
	return m.SidebandTear > 0 || m.SidebandReorder > 0 || m.ClockSkewMax > 0
}

// splitmix is the splitmix64 generator: tiny, seedable, and good enough to
// make fault placement look arbitrary while staying fully reproducible.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (s *splitmix) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(s.next()>>11)/float64(1<<53) < p
}

// intn returns a value in [0, n).
func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

// chunkItems is the run length chunk-level faults (drop/dup) operate on.
// It matches the collector's default sink flush granularity.
const chunkItems = 256

// Injector applies a Matrix to the online phase's outputs. One Injector is
// one chaos run: its per-core RNG streams advance as items are fed, so
// reusing it for a second run would place faults differently — build a new
// one per run (cheap).
type Injector struct {
	m Matrix
	// tr is the trace source's packet vocabulary: corruption that depends
	// on packet semantics (clock skew targets time-bearing kinds,
	// truncation produces a kind invalid for the source) goes through its
	// hooks, so the injector damages any backend's stream, not just PT's.
	tr  *source.Traits
	reg *metrics.Registry

	cores    map[int]*splitmix
	skews    map[int]uint64
	sideband splitmix
	counts   [numClasses]uint64
}

// NewInjector creates an injector for the given matrix, corrupting streams
// of the source described by tr, and mirroring injection counters into reg
// (nil is allowed and drops them).
func NewInjector(m Matrix, tr *source.Traits, reg *metrics.Registry) *Injector {
	in := &Injector{m: m, tr: tr, reg: reg, cores: make(map[int]*splitmix), skews: make(map[int]uint64)}
	in.sideband.state = m.Seed ^ 0x5b3cd1a9e4f7c261
	return in
}

// Matrix returns the injector's configuration.
func (in *Injector) Matrix() Matrix { return in.m }

func (in *Injector) count(c Class) {
	in.counts[c]++
	in.reg.Add(InjectCounterName(c), 1)
}

// Counts returns injected-fault totals per class slug, for the report.
func (in *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for c := Class(0); c < numClasses; c++ {
		if in.counts[c] > 0 {
			out[c.Slug()] = in.counts[c]
		}
	}
	return out
}

// coreRNG returns core's persistent RNG stream (derived from the seed, so
// streams are independent of feeding order across cores).
func (in *Injector) coreRNG(core int) *splitmix {
	if r, ok := in.cores[core]; ok {
		return r
	}
	seed := splitmix{state: in.m.Seed ^ (uint64(core+1) * 0x9e3779b97f4a7c15)}
	r := &splitmix{state: seed.next()}
	in.cores[core] = r
	return r
}

// skew returns core's constant clock offset — a pure function of the seed
// and core number, so it is consistent across every chunk of that core.
func (in *Injector) skew(core int) uint64 {
	if in.m.ClockSkewMax == 0 {
		return 0
	}
	if s, ok := in.skews[core]; ok {
		return s
	}
	s := splitmix{state: in.m.Seed ^ 0xc2b2ae3d27d4eb4f ^ uint64(core+1)}
	v := s.next() % (in.m.ClockSkewMax + 1)
	in.skews[core] = v
	if v > 0 {
		in.count(ClassClockSkew)
	}
	return v
}

// Items applies the trace-stream fault classes to one chunk of core's
// exported items and returns the corrupted chunk. The input is never
// mutated; when no trace fault class is active the input slice is returned
// unchanged (the rate-0 identity the golden equivalence tests rely on).
func (in *Injector) Items(core int, items []source.Item) []source.Item {
	if !in.m.traceActive() || len(items) == 0 {
		return items
	}
	rng := in.coreRNG(core)
	skew := in.skew(core)
	out := make([]source.Item, 0, len(items))
	for off := 0; off < len(items); off += chunkItems {
		end := off + chunkItems
		if end > len(items) {
			end = len(items)
		}
		run := items[off:end]
		if rng.chance(in.m.ChunkDrop) {
			// Silent loss: no gap marker, the decoder must notice on its
			// own (resync or desync).
			in.count(ClassChunkDrop)
			continue
		}
		dup := rng.chance(in.m.ChunkDup)
		if dup {
			in.count(ClassChunkDup)
		}
		for pass := 0; pass < 1+btoi(dup); pass++ {
			for i := range run {
				out = append(out, in.corrupt(rng, skew, &run[i]))
			}
		}
	}
	return out
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// corrupt returns a (possibly) damaged copy of one item.
func (in *Injector) corrupt(rng *splitmix, skew uint64, it *source.Item) source.Item {
	c := *it
	if c.Gap {
		c.GapStart += skew
		c.GapEnd += skew
		return c
	}
	if skew > 0 {
		in.tr.SkewTime(&c.Packet, skew)
	}
	if rng.chance(in.m.Truncate) {
		in.count(ClassTruncate)
		c.Packet.Kind = in.tr.TruncatedKind()
		return c
	}
	if rng.chance(in.m.BitFlip) {
		in.count(ClassBitFlip)
		switch rng.intn(4) {
		case 0:
			c.Packet.IP ^= 1 << uint(rng.intn(64))
		case 1:
			c.Packet.Bits ^= 1 << uint(rng.intn(64))
		case 2:
			c.Packet.NBits ^= 1 << uint(rng.intn(8))
		case 3:
			c.Packet.TSC ^= 1 << uint(rng.intn(48))
		}
	}
	return c
}

// Sideband applies the sideband fault classes (tear, reorder) to the
// scheduler switch records. The input is never mutated; with both classes
// at zero the input slice is returned unchanged.
func (in *Injector) Sideband(recs []vm.SwitchRecord) []vm.SwitchRecord {
	if !in.m.sidebandActive() || len(recs) == 0 {
		return recs
	}
	out := make([]vm.SwitchRecord, 0, len(recs))
	for _, r := range recs {
		// The capturing core's clock stamps the record: skew it the same
		// way that core's trace packets are skewed.
		r.TSC += in.skew(r.Core)
		if in.sideband.chance(in.m.SidebandTear) {
			in.count(ClassSidebandTear)
			r.TSC = 0 // torn record: the timestamp field reads as garbage
		}
		out = append(out, r)
	}
	for i := 0; i+1 < len(out); i++ {
		if in.sideband.chance(in.m.SidebandReorder) {
			in.count(ClassSidebandReorder)
			out[i], out[i+1] = out[i+1], out[i]
			i++ // don't cascade a swapped record forward
		}
	}
	return out
}

// Snapshot applies the stale-JIT fault class: a clone of snap in which a
// seed-chosen fraction of compiled methods either vanish entirely (metadata
// never exported) or carry stale debug records (PCs shifted, marked
// Approximate — the recompilation-raced-export case of paper §3.2). With
// StaleJIT zero the original snapshot is returned unchanged.
func (in *Injector) Snapshot(snap *meta.Snapshot) *meta.Snapshot {
	if in.m.StaleJIT <= 0 || snap == nil {
		return snap
	}
	out := meta.NewSnapshot(snap.Templates)
	out.Stubs = snap.Stubs
	out.CodeCache = snap.CodeCache
	// Walk the export log (deterministic order; map iteration is not).
	// Fate is a pure function of seed and entry address so re-exports of
	// the same blob agree.
	for _, c := range snap.ExportedBlobs() {
		h := splitmix{state: in.m.Seed ^ 0xd6e8feb86659fd93 ^ c.EntryAddr()}
		if h.chance(in.m.StaleJIT) {
			in.count(ClassStaleJIT)
			if h.next()&1 == 0 {
				continue // metadata missing entirely
			}
			out.Export(staleCopy(c, &h))
			continue
		}
		out.Export(c)
	}
	return out
}

// staleCopy clones c with every debug record's innermost frame PC shifted —
// the mapping still parses but points at the wrong bytecode.
func staleCopy(c *meta.CompiledMethod, rng *splitmix) *meta.CompiledMethod {
	cc := *c
	cc.Debug = make([]meta.DebugRecord, len(c.Debug))
	shift := int32(1 + rng.intn(3))
	for i, d := range c.Debug {
		nd := d
		nd.Frames = append([]meta.Frame(nil), d.Frames...)
		if n := len(nd.Frames); n > 0 {
			nd.Frames[n-1].PC += shift
		}
		nd.Approximate = true
		cc.Debug[i] = nd
	}
	return &cc
}

// SortedCounts returns (slug, count) pairs sorted by slug — the stable
// order reports print in.
func SortedCounts(m map[string]uint64) []struct {
	Name  string
	Count uint64
} {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Name  string
		Count uint64
	}, len(keys))
	for i, k := range keys {
		out[i].Name = k
		out[i].Count = m[k]
	}
	return out
}
