package fault

import (
	"testing"

	"jportal/internal/metrics"
	"jportal/internal/pt"
	"jportal/internal/vm"
)

// syntheticItems builds n plausible packets for core-stream injection tests.
func syntheticItems(n int) []pt.Item {
	items := make([]pt.Item, n)
	for i := range items {
		switch i % 4 {
		case 0:
			items[i] = pt.Item{Packet: pt.Packet{Kind: pt.KTSC, TSC: uint64(1000 + i)}}
		case 1:
			items[i] = pt.Item{Packet: pt.Packet{Kind: pt.KTIP, IP: uint64(0x40000 + i*16)}}
		case 2:
			items[i] = pt.Item{Packet: pt.Packet{Kind: pt.KTNT, Bits: uint64(i), NBits: 8}}
		default:
			items[i] = pt.Item{Packet: pt.Packet{Kind: pt.KFUP, IP: uint64(0x50000 + i*16)}}
		}
		items[i].Packet.WireLen = 8
	}
	return items
}

func syntheticSideband(n int) []vm.SwitchRecord {
	recs := make([]vm.SwitchRecord, n)
	for i := range recs {
		recs[i] = vm.SwitchRecord{Core: i % 2, TSC: uint64(100 * (i + 1)), Thread: i % 3}
	}
	return recs
}

func TestRateZeroIsIdentity(t *testing.T) {
	in := NewInjector(Matrix{Seed: 42}, pt.Traits(), nil)
	items := syntheticItems(600)
	if got := in.Items(0, items); &got[0] != &items[0] || len(got) != len(items) {
		t.Fatal("zero-rate Items did not return the input slice unchanged")
	}
	recs := syntheticSideband(50)
	if got := in.Sideband(recs); &got[0] != &recs[0] {
		t.Fatal("zero-rate Sideband did not return the input slice unchanged")
	}
	if got := in.Snapshot(nil); got != nil {
		t.Fatal("zero-rate Snapshot(nil) != nil")
	}
	if n := len(in.Counts()); n != 0 {
		t.Fatalf("zero-rate run counted %d fault classes", n)
	}
}

func TestScaleClamps(t *testing.T) {
	m := DefaultMatrix(1).Scale(1e6)
	for _, p := range []float64{m.BitFlip, m.Truncate, m.ChunkDrop, m.ChunkDup,
		m.SidebandTear, m.SidebandReorder, m.StaleJIT} {
		if p < 0 || p > 1 {
			t.Fatalf("scaled probability %v out of [0,1]", p)
		}
	}
	z := DefaultMatrix(1).Scale(0)
	if z.traceActive() || z.sidebandActive() || z.StaleJIT != 0 {
		t.Fatal("Scale(0) left a fault class active")
	}
}

// TestDeterministicAcrossCoreOrder feeds the same per-core streams to two
// injectors in opposite core orders: outputs must match per core, because
// each core draws from its own seed-derived RNG stream.
func TestDeterministicAcrossCoreOrder(t *testing.T) {
	m := DefaultMatrix(7)
	perCore := map[int][]pt.Item{0: syntheticItems(1024), 1: syntheticItems(1024), 2: syntheticItems(1024)}

	run := func(order []int) map[int][]pt.Item {
		in := NewInjector(m, pt.Traits(), nil)
		out := make(map[int][]pt.Item)
		for _, core := range order {
			out[core] = in.Items(core, perCore[core])
		}
		return out
	}
	a := run([]int{0, 1, 2})
	b := run([]int{2, 1, 0})
	for core := range perCore {
		if len(a[core]) != len(b[core]) {
			t.Fatalf("core %d: %d vs %d items across feed orders", core, len(a[core]), len(b[core]))
		}
		for i := range a[core] {
			if a[core][i] != b[core][i] {
				t.Fatalf("core %d item %d differs across feed orders", core, i)
			}
		}
	}
}

// TestDeterministicAcrossChunking feeds one core's stream whole and in
// chunk-aligned pieces: identical corruption either way.
func TestDeterministicAcrossChunking(t *testing.T) {
	m := DefaultMatrix(11)
	items := syntheticItems(4 * chunkItems)

	whole := NewInjector(m, pt.Traits(), nil).Items(0, items)

	in := NewInjector(m, pt.Traits(), nil)
	var pieces []pt.Item
	for off := 0; off < len(items); off += chunkItems {
		pieces = append(pieces, in.Items(0, items[off:off+chunkItems])...)
	}
	if len(whole) != len(pieces) {
		t.Fatalf("%d vs %d items across chunkings", len(whole), len(pieces))
	}
	for i := range whole {
		if whole[i] != pieces[i] {
			t.Fatalf("item %d differs across chunkings", i)
		}
	}
}

func TestEveryClassCountsDistinctly(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		name := InjectCounterName(c)
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
		if c.Slug() == "unknown" {
			t.Fatalf("class %d has no slug", c)
		}
	}
	for _, r := range Reasons() {
		if r.Slug() == "unknown" {
			t.Fatalf("reason %d has no slug", r)
		}
	}
}

func TestSidebandTearAndReorder(t *testing.T) {
	recs := syntheticSideband(200)
	in := NewInjector(Matrix{Seed: 3, SidebandTear: 1}, pt.Traits(), nil)
	torn := in.Sideband(recs)
	if len(torn) != len(recs) {
		t.Fatalf("tear changed record count: %d vs %d", len(torn), len(recs))
	}
	for i := range torn {
		if torn[i].TSC != 0 {
			t.Fatalf("record %d not torn: TSC %d", i, torn[i].TSC)
		}
		if recs[i].TSC == 0 {
			t.Fatal("input was mutated")
		}
	}
	if in.Counts()["sideband_tear"] != uint64(len(recs)) {
		t.Fatalf("tear count %v", in.Counts())
	}

	in2 := NewInjector(Matrix{Seed: 3, SidebandReorder: 0.5}, pt.Traits(), nil)
	swapped := in2.Sideband(recs)
	if in2.Counts()["sideband_reorder"] == 0 {
		t.Fatal("reorder at 0.5 never fired on 200 records")
	}
	moved := 0
	for i := range swapped {
		if swapped[i] != recs[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("reorder counted but no record moved")
	}
}

func TestInjectorMirrorsRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	in := NewInjector(Matrix{Seed: 9, Truncate: 1}, pt.Traits(), reg)
	in.Items(0, syntheticItems(10))
	if got := reg.Get(InjectCounterName(ClassTruncate)); got != 10 {
		t.Fatalf("registry truncate counter = %d, want 10", got)
	}
}

func TestLedgerNilSafeAndCounts(t *testing.T) {
	var nilLedger *Ledger
	nilLedger.Add(Entry{Reason: ReasonStageCrash}) // must not panic
	if nilLedger.Count(ReasonStageCrash) != 0 || nilLedger.Counts() != nil || nilLedger.Entries() != nil {
		t.Fatal("nil ledger not inert")
	}

	reg := metrics.NewRegistry()
	l := NewLedger(reg)
	l.Add(Entry{Reason: ReasonMalformedPacket, Items: 3, Bytes: 64})
	l.Add(Entry{Reason: ReasonMalformedPacket, Count: 4, Bytes: 16})
	l.Add(Entry{Reason: ReasonLostSync})
	if got := l.Count(ReasonMalformedPacket); got != 5 {
		t.Fatalf("malformed count = %d, want 5", got)
	}
	items, bytes := l.Totals()
	if items != 3 || bytes != 80 {
		t.Fatalf("totals = %d items %d bytes", items, bytes)
	}
	counts := l.Counts()
	if counts["malformed_packet"] != 5 || counts["lost_sync"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if got := reg.Get(QuarantineCounterName(ReasonMalformedPacket)); got != 5 {
		t.Fatalf("registry quarantine counter = %d, want 5", got)
	}
	if len(l.Entries()) != 3 {
		t.Fatalf("entries = %d", len(l.Entries()))
	}
}

func TestLedgerBoundsEntries(t *testing.T) {
	l := NewLedger(nil)
	for i := 0; i < maxLedgerEntries+100; i++ {
		l.Add(Entry{Reason: ReasonStageCrash})
	}
	if n := len(l.Entries()); n != maxLedgerEntries {
		t.Fatalf("retained %d entries, want cap %d", n, maxLedgerEntries)
	}
	if got := l.Count(ReasonStageCrash); got != uint64(maxLedgerEntries+100) {
		t.Fatalf("count %d lost increments past the cap", got)
	}
}
