package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"jportal/internal/metrics"
)

// Reason is the typed cause a span of input was quarantined for. Every
// hardened stage reports exclusions under exactly one reason, so the ledger
// answers "what did we not analyse, and why" per run.
type Reason uint8

const (
	// ReasonMalformedPacket: the native decoder hit a packet that fails
	// validation (unknown kind, hostile TNT length) and skipped to the
	// next PSB.
	ReasonMalformedPacket Reason = iota
	// ReasonLostSync: the native walker lost sync with the machine code
	// (silent chunk loss or duplication, stale/missing JIT metadata) and
	// re-anchored; the span in between was excluded as a desync hole.
	ReasonLostSync
	// ReasonClockSkew: a thread's stitched stream went backwards in time —
	// the signature of per-core clock skew leaking through the cross-core
	// stitch (§7.2's timestamp inconsistency).
	ReasonClockSkew
	// ReasonSidebandOrder: a switch record violated per-core time
	// monotonicity (torn or reordered sideband) and was dropped.
	ReasonSidebandOrder
	// ReasonStageCrash: a pipeline stage panicked on one thread-segment or
	// core; the span it was processing was quarantined and the stage state
	// rebuilt.
	ReasonStageCrash
	// ReasonStaleMetadata: reconstruction rejected a segment whose tokens
	// came from unusable (stale/missing) JIT metadata.
	ReasonStaleMetadata
	// ReasonCorruptRecord: an ingest frame failed record validation
	// (streamfmt corruption) and its session was quarantined.
	ReasonCorruptRecord
	// ReasonTornRecord: an ingest frame ended mid-record (short payload)
	// and its session was quarantined.
	ReasonTornRecord
	// ReasonDeadline: the caller's context expired mid-analysis; pending
	// segments were quarantined so a partial Analysis could be returned
	// instead of hanging.
	ReasonDeadline
	// ReasonStall: the watchdog supervisor observed a stage making no
	// progress past the stall window and quarantined/failed it.
	ReasonStall
	// ReasonMissingMeta: the scrubber found a session directory whose
	// archive.meta is absent or unparseable — the archive bytes may be
	// fine, but without the header the session cannot be attributed or
	// resumed, so it is quarantined rather than silently skipped.
	ReasonMissingMeta

	numReasons
)

// Slug returns the reason's stable snake_case name (metrics counter suffix).
func (r Reason) Slug() string {
	switch r {
	case ReasonMalformedPacket:
		return "malformed_packet"
	case ReasonLostSync:
		return "lost_sync"
	case ReasonClockSkew:
		return "clock_skew"
	case ReasonSidebandOrder:
		return "sideband_order"
	case ReasonStageCrash:
		return "stage_crash"
	case ReasonStaleMetadata:
		return "stale_metadata"
	case ReasonCorruptRecord:
		return "corrupt_record"
	case ReasonTornRecord:
		return "torn_record"
	case ReasonDeadline:
		return "deadline"
	case ReasonStall:
		return "stall"
	case ReasonMissingMeta:
		return "missing_meta"
	}
	return "unknown"
}

func (r Reason) String() string { return r.Slug() }

// Reasons lists every quarantine reason in declaration order.
func Reasons() []Reason {
	out := make([]Reason, numReasons)
	for i := range out {
		out[i] = Reason(i)
	}
	return out
}

// QuarantineCounterName is the metrics counter a reason increments.
func QuarantineCounterName(r Reason) string { return "quarantine_" + r.Slug() }

// Entry is one quarantine event: what was excluded, where, and why.
type Entry struct {
	Reason Reason
	// Thread and Core locate the span (-1 = not applicable).
	Thread, Core int
	// Count is how many faults/exclusions this entry aggregates (0 is
	// normalised to 1).
	Count int
	// Items and Bytes size the excluded span (best effort).
	Items int
	Bytes uint64
	// Detail is a short human-readable cause (panic value, record text).
	Detail string
}

// maxLedgerEntries bounds the retained entry list; counts keep accumulating
// past it. A chaos run at high fault rates can quarantine thousands of
// spans — the totals matter, the full list does not.
const maxLedgerEntries = 4096

// Ledger is the Session's quarantine record: thread-safe, nil-safe (a nil
// *Ledger drops everything, so stages need no wiring guards), and mirrored
// into a metrics.Registry so the counters surface on the ingest sidecar.
type Ledger struct {
	mu      sync.Mutex
	reg     *metrics.Registry
	entries []Entry
	counts  [numReasons]uint64
	items   int
	bytes   uint64
	dropped int
}

// NewLedger creates a ledger mirroring counts into reg (nil allowed).
func NewLedger(reg *metrics.Registry) *Ledger {
	return &Ledger{reg: reg}
}

// Add records one quarantine event.
func (l *Ledger) Add(e Entry) {
	if l == nil {
		return
	}
	if e.Count <= 0 {
		e.Count = 1
	}
	l.mu.Lock()
	l.counts[e.Reason] += uint64(e.Count)
	l.items += e.Items
	l.bytes += e.Bytes
	if len(l.entries) < maxLedgerEntries {
		l.entries = append(l.entries, e)
	} else {
		l.dropped++
	}
	l.mu.Unlock()
	l.reg.Add(QuarantineCounterName(e.Reason), int64(e.Count))
}

// Count returns the accumulated count for one reason.
func (l *Ledger) Count(r Reason) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[r]
}

// Counts returns nonzero per-reason totals keyed by slug.
func (l *Ledger) Counts() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64)
	for r := Reason(0); r < numReasons; r++ {
		if l.counts[r] > 0 {
			out[r.Slug()] = l.counts[r]
		}
	}
	return out
}

// Totals returns the excluded item and byte totals.
func (l *Ledger) Totals() (items int, bytes uint64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.items, l.bytes
}

// Entries returns a copy of the retained entry list (order is stage
// completion order and therefore not deterministic under concurrency; use
// Counts for reproducible reporting).
func (l *Ledger) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// LedgerState is the ledger's checkpointable content: everything Add
// accumulated, in plain exported fields (gob-friendly). The metrics
// registry mirror is not part of the state — counters re-accumulate on the
// restoring process's own registry.
type LedgerState struct {
	Entries []Entry
	Counts  []uint64
	Items   int
	Bytes   uint64
	Dropped int
}

// ExportState snapshots the ledger for a checkpoint.
func (l *Ledger) ExportState() LedgerState {
	if l == nil {
		return LedgerState{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerState{
		Entries: append([]Entry(nil), l.entries...),
		Counts:  append([]uint64(nil), l.counts[:]...),
		Items:   l.items,
		Bytes:   l.bytes,
		Dropped: l.dropped,
	}
}

// RestoreState replaces the ledger's content with a checkpointed snapshot.
// Counts saved by a build with fewer reasons restore into the prefix; extra
// saved reasons (from a newer build) are dropped — the checkpoint version
// gate upstream makes that case unreachable in practice.
func (l *Ledger) RestoreState(st LedgerState) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append([]Entry(nil), st.Entries...)
	l.counts = [numReasons]uint64{}
	copy(l.counts[:], st.Counts)
	l.items = st.Items
	l.bytes = st.Bytes
	l.dropped = st.Dropped
}

// DegradationReport is the per-run robustness summary the Session assembles
// at Close: what was injected (when a chaos harness drove the run), what
// the pipeline quarantined, how much it recovered, and the bytecode
// coverage of what survived.
type DegradationReport struct {
	// Injected counts faults placed by a chaos injector, per class slug
	// (empty outside chaos runs).
	Injected map[string]uint64
	// Quarantined counts ledger exclusions per reason slug.
	Quarantined map[string]uint64
	// QuarantinedItems and QuarantinedBytes size the excluded input.
	QuarantinedItems int
	QuarantinedBytes uint64
	// SegmentsDecoded and SegmentsQuarantined partition the thread-segments
	// the decode produced.
	SegmentsDecoded     int
	SegmentsQuarantined int
	// HolesFilled and HolesUnfilled partition the §5 recovery attempts.
	HolesFilled   int
	HolesUnfilled int
	// DecodedSteps and RecoveredSteps are the profile's provenance split.
	DecodedSteps   int
	RecoveredSteps int
	// Coverage is the fraction of the program's bytecode instructions the
	// surviving profile executed at least once (see DESIGN.md §10 for the
	// exact definition).
	Coverage float64
	// TimedOut marks an analysis cut short by the caller's deadline: the
	// report covers what completed before cancellation, and the remainder
	// is quarantined under the "deadline" reason.
	TimedOut bool
}

// String renders the report deterministically (sorted counter names).
func (r *DegradationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "degradation report:\n")
	if r.TimedOut {
		fmt.Fprintf(&b, "  timed out             true\n")
	}
	fmt.Fprintf(&b, "  coverage              %.4f\n", r.Coverage)
	fmt.Fprintf(&b, "  segments decoded      %d\n", r.SegmentsDecoded)
	fmt.Fprintf(&b, "  segments quarantined  %d\n", r.SegmentsQuarantined)
	fmt.Fprintf(&b, "  holes filled          %d\n", r.HolesFilled)
	fmt.Fprintf(&b, "  holes unfilled        %d\n", r.HolesUnfilled)
	fmt.Fprintf(&b, "  decoded steps         %d\n", r.DecodedSteps)
	fmt.Fprintf(&b, "  recovered steps       %d\n", r.RecoveredSteps)
	fmt.Fprintf(&b, "  quarantined items     %d\n", r.QuarantinedItems)
	fmt.Fprintf(&b, "  quarantined bytes     %d\n", r.QuarantinedBytes)
	writeCounts(&b, "  injected", r.Injected)
	writeCounts(&b, "  quarantine", r.Quarantined)
	return b.String()
}

func writeCounts(b *strings.Builder, prefix string, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s %-18s %d\n", prefix, k, m[k])
	}
}
