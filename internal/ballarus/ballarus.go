// Package ballarus implements Ball-Larus efficient path profiling
// (Ball & Larus, MICRO '96 — the paper's baseline [25]): acyclic path
// numbering over a method CFG with backedges re-routed through virtual
// ENTRY/EXIT edges, minimal edge increment values, and the probe plan an
// instrumenter needs (which edges get `r += v`, what backedges do, where
// paths are counted).
package ballarus

import (
	"fmt"
	"math"
	"sort"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// MaxPaths caps the per-method path count; methods exceeding it are
// reported as unprofilable (callers fall back to edge profiling, as
// practical BL implementations do).
const MaxPaths = 1 << 20

// EdgeKey identifies a CFG edge by source block, kind and argument (enough
// to be unique in our CFGs).
type EdgeKey struct {
	From, To int
	Kind     cfg.EdgeKind
	Arg      int32
}

func keyOf(e cfg.BlockEdge) EdgeKey {
	return EdgeKey{From: e.From, To: e.To, Kind: e.Kind, Arg: e.Arg}
}

// Increment is the instrumentation action for one real CFG edge.
type Increment struct {
	Edge EdgeKey
	// Add is the value added to the path register when the edge executes.
	Add int64
	// Backedge marks loop backedges: executing one ends the current path
	// (count[r + Add]) and starts a new one with register Reset.
	Backedge bool
	Reset    int64
}

// Numbering is the complete Ball-Larus plan for one method.
type Numbering struct {
	Method *bytecode.Method
	G      *cfg.CFG
	// NumPaths is the total number of acyclic paths (the counter table
	// size).
	NumPaths int64
	// Increments lists the edges needing instrumentation (Add != 0 or
	// backedges), in deterministic order.
	Increments []Increment
	// incBy provides lookup by edge.
	incBy map[EdgeKey]Increment
}

// IncrementFor returns the action for edge e (zero Increment if the edge
// needs no probe).
func (n *Numbering) IncrementFor(e cfg.BlockEdge) (Increment, bool) {
	inc, ok := n.incBy[keyOf(e)]
	return inc, ok
}

// Number computes the Ball-Larus numbering for m. It returns an error when
// the method's path count exceeds MaxPaths or the CFG is irreducible in a
// way the algorithm cannot handle.
func Number(m *bytecode.Method) (*Numbering, error) {
	g := cfg.Build(m)
	n := &Numbering{Method: m, G: g, incBy: make(map[EdgeKey]Increment)}

	// Identify backedges (target dominates source).
	idom := cfg.Dominators(g)
	isBack := make(map[EdgeKey]bool)
	for _, e := range g.Edges {
		if cfg.Dominates(idom, e.To, e.From) {
			isBack[keyOf(e)] = true
		}
	}

	// The DAG: real edges minus backedges, plus virtual edges
	// ENTRY->header and latch->EXIT per backedge. Blocks with no DAG
	// successors (returns, throws, latches) flow to EXIT.
	nb := len(g.Blocks)
	const entry = -1 // virtual ENTRY handled implicitly (paths start at block 0 or loop headers)
	exitID := nb     // virtual EXIT node id

	succs := make([][]cfg.BlockEdge, nb)
	reach := cfg.Reachable(g)
	for _, e := range g.Edges {
		if isBack[keyOf(e)] {
			continue
		}
		succs[e.From] = append(succs[e.From], e)
	}
	_ = entry

	// numPaths over the DAG in reverse topological order.
	numPaths := make([]int64, nb+1)
	numPaths[exitID] = 1
	order, err := topoOrder(nb, succs, reach)
	if err != nil {
		return nil, fmt.Errorf("ballarus %s: %v", m.FullName(), err)
	}
	val := make(map[EdgeKey]int64)
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		var sum int64
		hasDAGSucc := false
		for _, e := range succs[b] {
			val[keyOf(e)] = sum
			sum += numPaths[e.To]
			hasDAGSucc = true
			if sum > MaxPaths {
				return nil, fmt.Errorf("ballarus %s: path explosion (> %d)", m.FullName(), MaxPaths)
			}
		}
		// Blocks whose only DAG successor is EXIT (returns, throws,
		// backedge latches without other successors).
		if !hasDAGSucc {
			sum = numPaths[exitID]
		} else if endsPath(g, b, isBack) {
			// The block also has a virtual edge to EXIT (a backedge
			// leaves from it); that edge's value is the running sum.
			sum += numPaths[exitID]
		}
		numPaths[b] = sum
	}
	n.NumPaths = numPaths[0]
	if n.NumPaths <= 0 || n.NumPaths > MaxPaths {
		return nil, fmt.Errorf("ballarus %s: bad path count %d", m.FullName(), n.NumPaths)
	}

	// Backedge latch->EXIT virtual edge values: the running sum at the
	// latch after its real DAG successors.
	latchExitVal := make(map[int]int64)
	for b := 0; b < nb; b++ {
		var sum int64
		for _, e := range succs[b] {
			sum += numPaths[e.To]
		}
		latchExitVal[b] = sum
	}
	// ENTRY->header virtual edge values: headers are numbered after the
	// real entry's paths. Following Ball-Larus, Val(ENTRY->h) is the sum
	// of numPaths of earlier ENTRY successors; the real entry block is
	// first.
	headerVal := make(map[int]int64)
	{
		headers := map[int]bool{}
		for k := range isBack {
			headers[k.To] = true
		}
		hs := make([]int, 0, len(headers))
		for h := range headers {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		run := numPaths[0]
		for _, h := range hs {
			headerVal[h] = run
			run += numPaths[h]
			if run > math.MaxInt32 {
				return nil, fmt.Errorf("ballarus %s: path explosion with headers", m.FullName())
			}
		}
		// The total table size includes paths starting at headers.
		n.NumPaths = run
		if n.NumPaths > MaxPaths {
			return nil, fmt.Errorf("ballarus %s: path explosion (> %d)", m.FullName(), MaxPaths)
		}
	}

	for _, e := range g.Edges {
		k := keyOf(e)
		if isBack[k] {
			n.add(Increment{
				Edge:     k,
				Add:      latchExitVal[e.From],
				Backedge: true,
				Reset:    headerVal[e.To],
			})
			continue
		}
		if v := val[k]; v != 0 {
			n.add(Increment{Edge: k, Add: v})
		}
	}
	sort.Slice(n.Increments, func(i, j int) bool {
		a, b := n.Increments[i].Edge, n.Increments[j].Edge
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Arg < b.Arg
	})
	return n, nil
}

func (n *Numbering) add(inc Increment) {
	n.Increments = append(n.Increments, inc)
	n.incBy[inc.Edge] = inc
}

// endsPath reports whether a backedge leaves block b.
func endsPath(g *cfg.CFG, b int, isBack map[EdgeKey]bool) bool {
	for _, e := range g.Succs[b] {
		if isBack[keyOf(e)] {
			return true
		}
	}
	return false
}

// topoOrder returns a topological order of the DAG restricted to reachable
// blocks (unreachable blocks are appended; they have no paths).
func topoOrder(nb int, succs [][]cfg.BlockEdge, reach []bool) ([]int, error) {
	state := make([]uint8, nb) // 0 unvisited, 1 in-stack, 2 done
	var order []int
	var visit func(int) error
	visit = func(b int) error {
		switch state[b] {
		case 1:
			return fmt.Errorf("cycle through block %d after backedge removal (irreducible CFG)", b)
		case 2:
			return nil
		}
		state[b] = 1
		for _, e := range succs[b] {
			if err := visit(e.To); err != nil {
				return err
			}
		}
		state[b] = 2
		order = append(order, b)
		return nil
	}
	for b := 0; b < nb; b++ {
		if reach[b] {
			if err := visit(b); err != nil {
				return nil, err
			}
		}
	}
	// order is reverse-topological; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	// Append unreachable blocks (no effect on numbering).
	for b := 0; b < nb; b++ {
		if !reach[b] {
			order = append(order, b)
		}
	}
	return order, nil
}

// PathCount replays a block-level trace through the numbering and returns
// the path IDs it produces (used to validate instrumentation and to derive
// path profiles from reconstructed flow).
func (n *Numbering) PathCount(blocks []int) []int64 {
	var paths []int64
	r := int64(0)
	started := false
	prev := -1
	for _, b := range blocks {
		if !started {
			started = true
			prev = b
			continue
		}
		// Find the edge prev->b.
		var edge *cfg.BlockEdge
		for i := range n.G.Succs[prev] {
			if n.G.Succs[prev][i].To == b {
				edge = &n.G.Succs[prev][i]
				break
			}
		}
		if edge == nil {
			// Discontinuity (e.g. interprocedural): close the current
			// path and restart.
			paths = append(paths, r)
			r = 0
			prev = b
			continue
		}
		if inc, ok := n.IncrementFor(*edge); ok {
			if inc.Backedge {
				paths = append(paths, r+inc.Add)
				r = inc.Reset
				prev = b
				continue
			}
			r += inc.Add
		}
		prev = b
	}
	if started {
		paths = append(paths, r)
	}
	return paths
}
