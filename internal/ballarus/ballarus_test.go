package ballarus

import (
	"testing"

	"jportal/internal/bytecode"
)

const diamondSrc = `
method T.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 1
    iconst 2
    irem
    ifne Lfalse
    iconst 1
    ireturn
Lfalse:
    iconst 0
    ireturn
}
method T.main(0) {
    iconst 1
    iconst 7
    invokestatic T.fun
    pop
    return
}
entry T.main
`

func TestNumberDiamond(t *testing.T) {
	p := bytecode.MustAssemble(diamondSrc)
	num, err := Number(p.MethodByName("T.fun"))
	if err != nil {
		t.Fatal(err)
	}
	// 2 branch choices x 2 = 4 acyclic paths.
	if num.NumPaths != 4 {
		t.Errorf("NumPaths = %d, want 4", num.NumPaths)
	}
}

func TestPathIDsAreDistinct(t *testing.T) {
	p := bytecode.MustAssemble(diamondSrc)
	m := p.MethodByName("T.fun")
	num, err := Number(m)
	if err != nil {
		t.Fatal(err)
	}
	g := num.G
	// Enumerate the four concrete block paths through the diamond.
	b := func(pc int32) int { return g.BlockOf[pc] }
	paths := [][]int{
		{b(0), b(2), b(11), b(15)}, // then, then
		{b(0), b(2), b(11), b(17)}, // then, else
		{b(0), b(7), b(11), b(15)}, // else, then
		{b(0), b(7), b(11), b(17)}, // else, else
	}
	seen := map[int64]bool{}
	for _, bp := range paths {
		ids := num.PathCount(bp)
		if len(ids) != 1 {
			t.Fatalf("path %v produced ids %v", bp, ids)
		}
		id := ids[0]
		if id < 0 || id >= num.NumPaths {
			t.Errorf("path id %d out of range [0,%d)", id, num.NumPaths)
		}
		if seen[id] {
			t.Errorf("duplicate path id %d", id)
		}
		seen[id] = true
	}
}

const loopSrc = `
method T.loop(1) returns int {
    iconst 0
    istore 1
Lhead:
    iload 1
    iload 0
    if_icmpge Ldone
    iinc 1 1
    goto Lhead
Ldone:
    iload 1
    ireturn
}
method T.main(0) {
    iconst 3
    invokestatic T.loop
    pop
    return
}
entry T.main
`

func TestNumberLoopHasBackedge(t *testing.T) {
	p := bytecode.MustAssemble(loopSrc)
	num, err := Number(p.MethodByName("T.loop"))
	if err != nil {
		t.Fatal(err)
	}
	backs := 0
	for _, inc := range num.Increments {
		if inc.Backedge {
			backs++
		}
	}
	if backs != 1 {
		t.Fatalf("backedge increments = %d, want 1", backs)
	}
}

func TestPathCountLoopIterations(t *testing.T) {
	p := bytecode.MustAssemble(loopSrc)
	m := p.MethodByName("T.loop")
	num, err := Number(m)
	if err != nil {
		t.Fatal(err)
	}
	g := num.G
	b := func(pc int32) int { return g.BlockOf[pc] }
	// Three iterations then exit:
	// entry, head, body, head, body, head, body, head, done.
	blocks := []int{b(0), b(2), b(5), b(2), b(5), b(2), b(5), b(2), b(7)}
	ids := num.PathCount(blocks)
	// Each backedge closes one path; the final exit closes the last:
	// 3 backedge paths + 1 exit path.
	if len(ids) != 4 {
		t.Fatalf("got %d paths: %v", len(ids), ids)
	}
	// All ids must be in range.
	for _, id := range ids {
		if id < 0 || id >= num.NumPaths {
			t.Errorf("id %d out of [0,%d)", id, num.NumPaths)
		}
	}
	// The three middle iterations traverse the same path id.
	if ids[1] != ids[2] {
		t.Errorf("identical iterations got ids %v", ids)
	}
}

func TestPathExplosionDetected(t *testing.T) {
	// A method with 25 consecutive diamonds has 2^25 > MaxPaths acyclic
	// paths.
	b := bytecode.NewBuilder("T", "wide", 1)
	b.ReturnsValue()
	for i := 0; i < 25; i++ {
		then := "t" + string(rune('A'+i%26)) + string(rune('a'+i/26))
		b.Iload(0)
		b.If(bytecode.IFEQ, then)
		b.Iinc(0, 1)
		b.Label(then)
	}
	b.Iload(0)
	b.Ireturn()
	m := b.MustBuild()
	if _, err := Number(m); err == nil {
		t.Fatal("path explosion not detected")
	}
}

func TestIncrementsCoverOnlyRealEdges(t *testing.T) {
	p := bytecode.MustAssemble(diamondSrc)
	m := p.MethodByName("T.fun")
	num, err := Number(m)
	if err != nil {
		t.Fatal(err)
	}
	g := num.G
	valid := map[EdgeKey]bool{}
	for _, e := range g.Edges {
		valid[EdgeKey{From: e.From, To: e.To, Kind: e.Kind, Arg: e.Arg}] = true
	}
	for _, inc := range num.Increments {
		if !valid[inc.Edge] {
			t.Errorf("increment on non-edge %+v", inc.Edge)
		}
	}
}
