package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"jportal/internal/pt"
	"jportal/internal/vm"
)

// streamsOf reassembles a stitcher's emitted deltas into full per-thread
// streams shaped like SplitByThread's output.
func streamsOf(nthreads int, deltas [][]ThreadStream) []ThreadStream {
	streams := make([]ThreadStream, nthreads)
	for i := range streams {
		streams[i].Thread = i
	}
	for _, batch := range deltas {
		for _, d := range batch {
			streams[d.Thread].Items = append(streams[d.Thread].Items, d.Items...)
		}
	}
	return streams
}

// runStream drives a StreamStitcher over the fixture with the given chunk
// size: sideband is delivered record by record in global order, per-core
// watermarks track the next undelivered record, and every core's trace is
// fed in chunks of at most chunk items with a Drain after each step.
func runStream(t *testing.T, cores []pt.CoreTrace, sideband []vm.SwitchRecord, chunk, workers int) []ThreadStream {
	t.Helper()
	s := NewStreamStitcher(len(cores), pt.Traits())
	var deltas [][]ThreadStream

	// Per-core cursors into sideband (global order) and traces.
	sb := 0
	pos := make([]int, len(cores))
	advanceMarks := func() {
		// Watermark for a core = TSC of its next undelivered record, or
		// "no more records" once the global list is exhausted.
		next := make([]uint64, len(cores))
		for i := range next {
			next[i] = math.MaxUint64
		}
		for _, r := range sideband[sb:] {
			if r.Core >= 0 && r.Core < len(cores) && next[r.Core] == math.MaxUint64 {
				next[r.Core] = r.TSC
			}
		}
		for i, w := range next {
			s.Watermark(i, w)
		}
	}

	for {
		progressed := false
		if sb < len(sideband) {
			s.AddSideband(sideband[sb : sb+1])
			sb++
			progressed = true
		}
		advanceMarks()
		for ci := range cores {
			if pos[ci] < len(cores[ci].Items) {
				end := pos[ci] + chunk
				if end > len(cores[ci].Items) {
					end = len(cores[ci].Items)
				}
				if err := s.Feed(cores[ci].Core, cores[ci].Items[pos[ci]:end]); err != nil {
					t.Fatalf("Feed: %v", err)
				}
				pos[ci] = end
				progressed = true
			}
		}
		if d := s.Drain(); d != nil {
			deltas = append(deltas, d)
		}
		if !progressed {
			break
		}
	}
	deltas = append(deltas, [][]ThreadStream{s.FinishWorkers(workers)}...)
	return streamsOf(s.NumThreads(), deltas)
}

// TestStreamMatchesBatchFixture sweeps chunk sizes over the migration/gap
// fixture from the parallel test and demands byte-identical streams.
func TestStreamMatchesBatchFixture(t *testing.T) {
	gap := pt.Item{Gap: true, GapStart: 150, GapEnd: 320, LostBytes: 1700}
	cores := []pt.CoreTrace{
		{Core: 0, Items: []pt.Item{
			tscItem(0), tipItem(1), tipItem(2),
			tscItem(100), tipItem(3), gap,
			tscItem(330), tipItem(4),
		}},
		{Core: 1, Items: []pt.Item{
			tscItem(50), tipItem(10),
			tscItem(210), tipItem(11), tipItem(12),
		}},
		{Core: 2, Items: []pt.Item{tscItem(5), tipItem(20)}},
	}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 2, TSC: 0, Thread: 2},
		{Core: 1, TSC: 40, Thread: 1},
		{Core: 0, TSC: 100, Thread: 1},
		{Core: 1, TSC: 200, Thread: 0},
		{Core: 0, TSC: 300, Thread: 2},
	}
	want := SplitByThread(cores, sideband, pt.Traits())
	for _, chunk := range []int{1, 2, 3, 5, 1 << 20} {
		for _, workers := range []int{1, 3} {
			got := runStream(t, cores, sideband, chunk, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("chunk=%d workers=%d: streaming diverges from batch\ngot  %+v\nwant %+v",
					chunk, workers, got, want)
			}
		}
	}
}

// genFixture builds a random but collector-shaped fixture: per-core packet
// times are monotone, gaps are monotone and never overlap a preceding
// packet, and sideband records are time-monotone per core. Packet and
// sideband timestamps are independent, so switch boundaries routinely fall
// mid-stream — the §6 timestamp inconsistency in miniature.
func genFixture(r *rand.Rand, ncores, nthreads, events int) ([]pt.CoreTrace, []vm.SwitchRecord) {
	cores := make([]pt.CoreTrace, ncores)
	ip := uint64(0)
	for ci := range cores {
		cores[ci].Core = ci
		clock := uint64(r.Intn(50))
		for e := 0; e < events; e++ {
			switch p := r.Intn(10); {
			case p < 5:
				ip++
				cores[ci].Items = append(cores[ci].Items, tipItem(ip))
			case p < 8:
				clock += uint64(r.Intn(40))
				cores[ci].Items = append(cores[ci].Items, tscItem(clock))
			default:
				start := clock
				clock += uint64(1 + r.Intn(120))
				cores[ci].Items = append(cores[ci].Items, pt.Item{
					Gap: true, GapStart: start, GapEnd: clock,
					LostBytes: uint64(1 + r.Intn(4000)),
				})
			}
		}
	}
	// Per-core monotone switch times, merged into one global list.
	var sideband []vm.SwitchRecord
	for ci := 0; ci < ncores; ci++ {
		clock := uint64(0)
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			sideband = append(sideband, vm.SwitchRecord{
				Core: ci, TSC: clock, Thread: r.Intn(nthreads+1) - 1,
			})
			clock += uint64(1 + r.Intn(200))
		}
	}
	sortSideband(sideband)
	return cores, sideband
}

func sortSideband(recs []vm.SwitchRecord) {
	// Stable insertion by TSC keeps per-core relative order (each core's
	// times are already monotone).
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].TSC < recs[j-1].TSC; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// TestStreamMatchesBatchRandom fuzzes the equivalence across fixture
// shapes, chunk sizes and watermark schedules.
func TestStreamMatchesBatchRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		cores, sideband := genFixture(r, 1+r.Intn(4), 1+r.Intn(4), 10+r.Intn(120))
		want := SplitByThread(cores, sideband, pt.Traits())
		chunk := 1 + r.Intn(9)
		got := runStream(t, cores, sideband, chunk, 1+r.Intn(4))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d chunk=%d: streaming diverges from batch", seed, chunk)
		}
	}
}

// TestStreamTimestampInconsistencyAcrossChunks pins the §6/§7.2 failure
// mode under chunked delivery: the sideband says thread 1 took the core at
// TSC 100, but the trace's nearest timestamp packet reads 96, so the two
// TIPs that actually ran under thread 1 are misattributed to thread 0 —
// and the streaming stitcher must misattribute them identically even when
// the chunk boundary falls between the stale TSC packet and the switch
// record's delivery.
func TestStreamTimestampInconsistencyAcrossChunks(t *testing.T) {
	cores := []pt.CoreTrace{{Core: 0, Items: []pt.Item{
		tscItem(10), tipItem(1),
		tscItem(96),            // jittered: read just before the switch
		tipItem(2), tipItem(3), // executed by thread 1, attributed to 0
		tscItem(150), tipItem(4), // firmly thread 1's window
	}}}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 0, TSC: 100, Thread: 1},
	}
	want := SplitByThread(cores, sideband, pt.Traits())

	// Batch sanity: the misattribution is present at all.
	var t0 []uint64
	for _, it := range want[0].Items {
		if !it.Gap && it.Packet.Kind == pt.KTIP {
			t0 = append(t0, it.Packet.IP)
		}
	}
	if !reflect.DeepEqual(t0, []uint64{1, 2, 3}) {
		t.Fatalf("batch attribution changed, thread0 tips = %v", t0)
	}

	// Deliver with the nastiest cut: items through the stale TSC packet
	// arrive, and are drained, before the switch record is even known.
	s := NewStreamStitcher(1, pt.Traits())
	s.AddSideband(sideband[:1])
	s.Watermark(0, 100) // record @100 not yet delivered: mark stays below it
	var deltas [][]ThreadStream
	if err := s.Feed(0, cores[0].Items[:4]); err != nil {
		t.Fatal(err)
	}
	if d := s.Drain(); d != nil {
		deltas = append(deltas, d)
	}
	s.AddSideband(sideband[1:])
	s.Watermark(0, math.MaxUint64)
	if err := s.Feed(0, cores[0].Items[4:]); err != nil {
		t.Fatal(err)
	}
	if d := s.Drain(); d != nil {
		deltas = append(deltas, d)
	}
	deltas = append(deltas, s.Finish())
	got := streamsOf(s.NumThreads(), deltas)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunked delivery changed the misattribution\ngot  %+v\nwant %+v", got, want)
	}
}

// TestStreamEmitsIncrementally checks the bounded-memory property: once
// watermarks pass a window and every core's frontier moves beyond it, Drain
// emits it without waiting for Finish, and the buffered-item count drops.
func TestStreamEmitsIncrementally(t *testing.T) {
	s := NewStreamStitcher(1, pt.Traits())
	s.AddSideband([]vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 0, TSC: 100, Thread: 1},
	})
	s.Watermark(0, 500)
	if err := s.Feed(0, []pt.Item{tscItem(0), tipItem(1), tscItem(120), tipItem(2)}); err != nil {
		t.Fatal(err)
	}
	if n := s.BufferedItems(); n != 4 {
		t.Fatalf("buffered before drain = %d", n)
	}
	d := s.Drain()
	if len(d) != 1 || d[0].Thread != 0 || len(d[0].Items) != 2 {
		t.Fatalf("expected thread 0's closed window before Finish, got %+v", d)
	}
	// The cursor window (thread 1's) is still open and buffered.
	if n := s.BufferedItems(); n != 2 {
		t.Fatalf("buffered after drain = %d", n)
	}
	rest := s.Finish()
	if len(rest) != 1 || rest[0].Thread != 1 || len(rest[0].Items) != 2 {
		t.Fatalf("Finish remainder: %+v", rest)
	}
}

// TestStreamIdleCoreDoesNotStall: a core whose sideband is entirely idle
// (thread -1) must not gate emission on the busy cores — its windows can
// only ever be dropped.
func TestStreamIdleCoreDoesNotStall(t *testing.T) {
	s := NewStreamStitcher(2, pt.Traits())
	s.AddSideband([]vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 1, TSC: 0, Thread: -1},
		{Core: 0, TSC: 100, Thread: 2},
	})
	s.Watermark(0, 400)
	s.Watermark(1, 400)
	if err := s.Feed(0, []pt.Item{tscItem(0), tipItem(1), tscItem(120), tipItem(2)}); err != nil {
		t.Fatal(err)
	}
	d := s.Drain()
	if len(d) != 1 || d[0].Thread != 0 || len(d[0].Items) != 2 {
		t.Fatalf("idle core 1 stalled emission: %+v", d)
	}
}

// TestStreamFeedErrors covers the stitcher's misuse guards.
func TestStreamFeedErrors(t *testing.T) {
	s := NewStreamStitcher(2, pt.Traits())
	if err := s.Feed(2, nil); err == nil {
		t.Fatal("Feed of out-of-range core succeeded")
	}
	if err := s.Feed(-1, nil); err == nil {
		t.Fatal("Feed of negative core succeeded")
	}
	s.Finish()
	if err := s.Feed(0, nil); err == nil {
		t.Fatal("Feed after Finish succeeded")
	}
}
