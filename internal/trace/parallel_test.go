package trace

import (
	"reflect"
	"testing"

	"jportal/internal/pt"
	"jportal/internal/vm"
)

// TestSplitDeterministicAcrossWorkers checks the parallel per-core carve:
// the stitched streams must be identical for any worker count, including a
// fixture with cross-core migration, idle windows and a multi-window gap.
func TestSplitDeterministicAcrossWorkers(t *testing.T) {
	gap := pt.Item{Gap: true, GapStart: 150, GapEnd: 320, LostBytes: 1700}
	cores := []pt.CoreTrace{
		{Core: 0, Items: []pt.Item{
			tscItem(0), tipItem(1), tipItem(2),
			tscItem(100), tipItem(3), gap,
			tscItem(330), tipItem(4),
		}},
		{Core: 1, Items: []pt.Item{
			tscItem(50), tipItem(10),
			tscItem(210), tipItem(11), tipItem(12),
		}},
		{Core: 2, Items: []pt.Item{tscItem(5), tipItem(20)}},
	}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 2, TSC: 0, Thread: 2},
		{Core: 1, TSC: 40, Thread: 1},
		{Core: 0, TSC: 100, Thread: 1},
		{Core: 1, TSC: 200, Thread: 0},
		{Core: 0, TSC: 300, Thread: 2},
	}

	base := SplitByThreadWorkers(cores, sideband, pt.Traits(), 1)
	for _, w := range []int{2, 4, 8} {
		got := SplitByThreadWorkers(cores, sideband, pt.Traits(), w)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: streams diverge from workers=1", w)
		}
	}
	// And the legacy entry point is the same thing.
	if !reflect.DeepEqual(SplitByThread(cores, sideband, pt.Traits()), base) {
		t.Fatal("SplitByThread diverges from SplitByThreadWorkers")
	}
}
