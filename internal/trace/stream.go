// The streaming half of package trace: StreamStitcher performs the same
// per-core carve and cross-core stitch as SplitByThread, but incrementally,
// over chunks of trace items and sideband records as they arrive, with
// bounded buffering. Its output — the concatenation of the per-thread
// deltas it emits — is byte-identical to the batch split for every chunking
// and every watermark schedule, including the §6/§7.2 timestamp-
// inconsistency misattributions, which depend only on the packet and
// sideband timestamps, not on delivery granularity.
//
// The incremental carve is sound because of three monotonicity facts:
//
//   - sideband records are time-monotone per core, so once the caller
//     declares a watermark w for a core (every switch record with TSC < w
//     has been delivered), the scheduling-window boundaries below w are
//     final;
//   - the carve cursor wi only moves forward, so windows behind it can
//     never receive more items;
//   - a core's loss gaps are monotone (GapStart >= the previous GapEnd),
//     so a gap never writes into a window behind the cursor.
//
// Cross-core emission additionally requires that no other core can still
// produce a window ordering before the candidate: each core exposes a
// frontier — the (start, core, window) key of its earliest still-open
// window, or its watermark if it has no sideband yet — and a closed window
// is emitted only once it precedes every frontier. That reproduces the
// batch stable sort (start, then core, then window index) exactly.
package trace

import (
	"fmt"
	"sort"

	"jportal/internal/conc"
	"jportal/internal/fault"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// stWindow is a closed scheduling window awaiting cross-core emission.
type stWindow struct {
	thread int
	start  uint64
	end    uint64 // next record's TSC on the core, or the carve cursor for the last window
	rec    int    // index into the core's collapsed sideband records
	items  []source.Item
}

// coreStitch is the per-core incremental carve state.
type coreStitch struct {
	// tr is the source's packet vocabulary (shared with the stitcher).
	tr *source.Traits
	// recs is the collapsed sideband (consecutive same-thread records
	// merged, first kept), append-only so window indices are stable.
	recs []vm.SwitchRecord
	// mark is the sideband watermark: every record with TSC < mark has
	// been delivered.
	mark uint64
	// pending holds fed items not yet carved.
	pending []source.Item
	// wi and tsc are the carve cursor: the current window index and the
	// last timestamp seen (from TSC packets and gap ends).
	wi  int
	tsc uint64
	// open maps window index -> items for windows at or ahead of the
	// cursor (the cursor window plus any windows a gap pre-populated).
	open map[int][]source.Item
	// closed holds carved windows behind the cursor, in window order,
	// awaiting cross-core emission.
	closed []stWindow
	// fo caches the earliest thread-owned window index >= wi (idle
	// windows are dropped at close, so they never gate emission).
	fo int
}

// StreamStitcher incrementally segregates per-core trace chunks into
// per-thread streams. Feed order within a core must be export order;
// cores and sideband may interleave arbitrarily.
type StreamStitcher struct {
	// tr is the source's packet vocabulary (which kinds carry timestamps).
	tr        *source.Traits
	cores     []coreStitch
	maxThread int
	finished  bool
	// lastThread tracks, per core, the thread of the last kept sideband
	// record (collapseRuns, incrementally). -2 = none yet.
	lastThread []int
	// lastTSC tracks, per core, the timestamp of the last delivered
	// sideband record: the monotonicity gate torn/reordered records are
	// quarantined at.
	lastTSC []uint64
	// ledger, when set, receives quarantine entries (dropped sideband
	// records, crashed carves). Nil drops them.
	ledger *fault.Ledger
	// emittedEnd tracks, per thread, the end of the last window emitted for
	// it. A thread occupies one core at a time, so on an honest run its
	// windows are disjoint in time; a window starting before the previous
	// one ended is the cross-core clock-skew signature (§6 timestamp
	// inconsistency) and is reported to the ledger. Report-only: the window
	// still emits, so output stays batch-identical.
	emittedEnd map[int]uint64
}

// NewStreamStitcher creates a stitcher for cores 0..ncores-1 (the core
// numbering of the source collector and of RunResult.Traces, which the
// batch path keeps sorted — the stitcher breaks window-start ties by core
// number the way the batch stable sort breaks them by slice position). tr
// identifies the time-bearing packet kinds of the trace's source.
func NewStreamStitcher(ncores int, tr *source.Traits) *StreamStitcher {
	s := &StreamStitcher{
		tr:         tr,
		cores:      make([]coreStitch, ncores),
		lastThread: make([]int, ncores),
		lastTSC:    make([]uint64, ncores),
		emittedEnd: make(map[int]uint64),
	}
	for i := range s.cores {
		s.cores[i].tr = tr
		s.cores[i].open = make(map[int][]source.Item)
		s.lastThread[i] = -2
	}
	return s
}

// SetLedger attaches the quarantine ledger exclusions are reported to.
func (s *StreamStitcher) SetLedger(l *fault.Ledger) { s.ledger = l }

// AddSideband delivers scheduler switch records (any cores, in the global
// order the VM recorded them, which is time-monotone per core). Records for
// cores beyond the stitcher's range still widen the thread space, exactly
// as the batch split sizes its output from the whole sideband. A record
// that violates per-core time monotonicity — torn or reordered sideband —
// is quarantined rather than trusted: the incremental carve's soundness
// rests on that monotonicity (see the package comment), so accepting the
// record would silently misattribute trace bytes across threads.
func (s *StreamStitcher) AddSideband(recs []vm.SwitchRecord) {
	for _, r := range recs {
		if r.Thread > s.maxThread {
			s.maxThread = r.Thread
		}
		if r.Core < 0 || r.Core >= len(s.cores) {
			continue
		}
		if r.TSC < s.lastTSC[r.Core] {
			s.ledger.Add(fault.Entry{
				Reason: fault.ReasonSidebandOrder, Thread: r.Thread, Core: r.Core,
				Detail: fmt.Sprintf("switch record tsc %d after %d", r.TSC, s.lastTSC[r.Core]),
			})
			continue
		}
		s.lastTSC[r.Core] = r.TSC
		if s.lastThread[r.Core] == r.Thread {
			continue // collapseRuns: same owner as the previous record
		}
		s.lastThread[r.Core] = r.Thread
		s.cores[r.Core].recs = append(s.cores[r.Core].recs, r)
	}
}

// Watermark declares that every sideband record for core with TSC < w has
// been delivered. Watermarks only move forward.
func (s *StreamStitcher) Watermark(core int, w uint64) {
	if core < 0 || core >= len(s.cores) {
		return
	}
	if w > s.cores[core].mark {
		s.cores[core].mark = w
	}
}

// Feed delivers one chunk of a core's exported trace, in export order.
func (s *StreamStitcher) Feed(core int, items []source.Item) error {
	if s.finished {
		return fmt.Errorf("trace: Feed after Finish")
	}
	if core < 0 || core >= len(s.cores) {
		return fmt.Errorf("trace: chunk for core %d, stitcher has %d cores", core, len(s.cores))
	}
	c := &s.cores[core]
	c.pending = append(c.pending, items...)
	return nil
}

// BufferedItems returns the number of trace items currently held (pending
// carve plus carved-but-unemitted windows) — the stitcher's in-flight
// trace memory.
func (s *StreamStitcher) BufferedItems() int {
	n := 0
	for i := range s.cores {
		c := &s.cores[i]
		n += len(c.pending)
		for _, items := range c.open {
			n += len(items)
		}
		for _, w := range c.closed {
			n += len(w.items)
		}
	}
	return n
}

// NumThreads returns the thread-space size seen so far (at least 1, like
// the batch split).
func (s *StreamStitcher) NumThreads() int { return s.maxThread + 1 }

// windowAt returns the index of the scheduling window covering t, over the
// records known so far (identical to the batch binary search once the
// record list below t is final).
func (c *coreStitch) windowAt(t uint64) int {
	i := sort.Search(len(c.recs), func(i int) bool { return c.recs[i].TSC > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// carve advances the per-core carve over pending items. Unless final, it
// stops at the first item whose window assignment could still be changed
// by sideband at or above the watermark: a TSC packet at or past the mark,
// or a gap ending at or past it. Items without their own timestamp always
// carve — they join the cursor window, which is already determined.
func (c *coreStitch) carve(final bool) {
	if len(c.recs) == 0 {
		// No sideband for this core yet: no window exists to place items
		// in. The batch split drops such a core's trace entirely.
		if final {
			c.pending = nil
		}
		return
	}
	done := 0
	// Hoist the cursor window's slice out of the map: most items append to
	// the current window, so keeping it in a local avoids two map operations
	// per item. The local is written back whenever the cursor moves or a gap
	// needs map access to other windows.
	cur, curWi := c.open[c.wi], c.wi
	for done < len(c.pending) {
		it := c.pending[done]
		if it.Gap {
			if !final && it.GapEnd >= c.mark {
				break
			}
			c.open[curWi] = cur
			lo := c.windowAt(it.GapStart)
			hi := c.windowAt(it.GapEnd)
			span := it.GapEnd - it.GapStart
			for j := lo; j <= hi; j++ {
				g := it
				if j > lo {
					g.GapStart = c.recs[j].TSC
				}
				if j < hi && j+1 < len(c.recs) {
					g.GapEnd = c.recs[j+1].TSC
				}
				if g.GapEnd <= g.GapStart {
					continue
				}
				if span > 0 {
					g.LostBytes = it.LostBytes * (g.GapEnd - g.GapStart) / span
				}
				c.open[j] = append(c.open[j], g)
			}
			c.tsc = it.GapEnd
			if w := c.windowAt(c.tsc); w > c.wi {
				c.wi = w
			}
			cur, curWi = c.open[c.wi], c.wi
			done++
			continue
		}
		if c.tr.IsTime(it.Packet.Kind) {
			if !final && it.Packet.TSC >= c.mark {
				break
			}
			c.tsc = it.Packet.TSC
			if w := c.windowAt(c.tsc); w > c.wi {
				c.open[curWi] = cur
				c.wi = w
				cur, curWi = c.open[c.wi], c.wi
			}
		}
		cur = append(cur, it)
		done++
	}
	c.open[curWi] = cur
	if done > 0 {
		// Compact rather than re-slice so the carved prefix is freed —
		// the whole point is bounding in-flight memory.
		rest := len(c.pending) - done
		copy(c.pending, c.pending[done:])
		c.pending = c.pending[:rest]
	}
	c.close(final)
}

// close moves windows the cursor has passed (all of them when final) from
// open to the closed queue, dropping empty and idle-owned ones like the
// batch split does.
func (c *coreStitch) close(final bool) {
	for j := range c.open {
		if !final && j >= c.wi {
			continue
		}
		items := c.open[j]
		delete(c.open, j)
		if len(items) > 0 && c.recs[j].Thread >= 0 {
			// The window runs until the core's next switch record; the last
			// window on a core has no successor, so the carve cursor (the
			// newest timestamp actually seen inside it) bounds it instead.
			end := c.recs[j].TSC
			if j+1 < len(c.recs) {
				end = c.recs[j+1].TSC
			} else if c.tsc > end {
				end = c.tsc
			}
			c.closed = append(c.closed, stWindow{
				thread: c.recs[j].Thread, start: c.recs[j].TSC, end: end, rec: j, items: items,
			})
		}
	}
	// Keep the closed queue in window order; map iteration above is not.
	sort.Slice(c.closed, func(i, j int) bool { return c.closed[i].rec < c.closed[j].rec })
}

// clockSkewSlack is how far (in cycles) a thread's window may reach back
// into its previous window before the overlap is reported as clock skew.
// Honest runs still show sub-hundred-cycle overlaps at migration
// boundaries — switch timestamps carry scheduler jitter (vm
// SwitchJitterCycles, the §7.2 inconsistency) — so the threshold sits an
// order of magnitude above jitter scale and three below the timeslice.
const clockSkewSlack = 1024

// emitKey orders windows globally: start time, then core, then window
// index — the batch stable sort's tie-breaking.
type emitKey struct {
	start uint64
	core  int
	rec   int
}

func keyLess(a, b emitKey) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	if a.core != b.core {
		return a.core < b.core
	}
	return a.rec < b.rec
}

// frontier returns the lower bound on any window this core can still emit
// beyond its closed queue, and whether such a window is possible at all.
func (s *StreamStitcher) frontier(core int) (emitKey, bool) {
	c := &s.cores[core]
	if s.finished {
		return emitKey{}, false
	}
	if len(c.recs) == 0 {
		// The first record, when it arrives, will carry TSC >= mark.
		return emitKey{start: c.mark, core: core}, true
	}
	// The earliest window that can still emit is the first thread-owned
	// window at or after the cursor: idle-owned windows only ever drop
	// their items, so an idle core must not gate global emission.
	if c.fo < c.wi {
		c.fo = c.wi
	}
	for c.fo < len(c.recs) && c.recs[c.fo].Thread < 0 {
		c.fo++
	}
	if c.fo < len(c.recs) {
		return emitKey{start: c.recs[c.fo].TSC, core: core, rec: c.fo}, true
	}
	// Every known window from the cursor on is idle-owned; the next
	// emittable window starts no earlier than the newest record and the
	// watermark (per-core sideband is time-monotone).
	lo := c.mark
	if t := c.recs[len(c.recs)-1].TSC; t > lo {
		lo = t
	}
	return emitKey{start: lo, core: core, rec: len(c.recs)}, true
}

// emit pops all globally-safe windows off the closed queues, appending
// items to per-thread delta streams. Returns only threads that received
// items, in thread order. Callers carve first.
func (s *StreamStitcher) emit(final bool) []ThreadStream {
	var deltas map[int][]source.Item
	for {
		best := -1
		var bestKey emitKey
		for i := range s.cores {
			if len(s.cores[i].closed) == 0 {
				continue
			}
			k := emitKey{start: s.cores[i].closed[0].start, core: i, rec: s.cores[i].closed[0].rec}
			if best < 0 || keyLess(k, bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		if !final {
			safe := true
			for i := range s.cores {
				fk, ok := s.frontier(i)
				if ok && !keyLess(bestKey, fk) {
					safe = false
					break
				}
			}
			if !safe {
				break
			}
		}
		w := s.cores[best].closed[0]
		s.cores[best].closed = s.cores[best].closed[1:]
		if prev, ok := s.emittedEnd[w.thread]; ok && w.start+clockSkewSlack < prev {
			s.ledger.Add(fault.Entry{
				Reason: fault.ReasonClockSkew, Thread: w.thread, Core: best,
				Detail: fmt.Sprintf("window [%d,%d) overlaps previous window ending %d", w.start, w.end, prev),
			})
		}
		if w.end > s.emittedEnd[w.thread] {
			s.emittedEnd[w.thread] = w.end
		}
		if deltas == nil {
			deltas = make(map[int][]source.Item)
		}
		deltas[w.thread] = append(deltas[w.thread], w.items...)
	}
	if len(deltas) == 0 {
		return nil
	}
	out := make([]ThreadStream, 0, len(deltas))
	for t := 0; t <= s.maxThread; t++ {
		if items, ok := deltas[t]; ok {
			out = append(out, ThreadStream{Thread: t, Items: items})
		}
	}
	return out
}

// safeCarve runs one core's carve with panic containment: a carve that
// crashes (hostile timestamps driving the cursor somewhere impossible)
// quarantines that core's pending items instead of killing the process —
// the other cores' threads still analyse. It runs inside the per-core
// fan-out goroutines, where an escaped panic would be fatal.
func (s *StreamStitcher) safeCarve(i int, final bool) {
	defer func() {
		if r := recover(); r != nil {
			c := &s.cores[i]
			s.ledger.Add(fault.Entry{
				Reason: fault.ReasonStageCrash, Thread: -1, Core: i,
				Items: len(c.pending), Bytes: itemBytes(c.pending),
				Detail: fmt.Sprintf("carve: %v", r),
			})
			c.pending = nil
		}
	}()
	s.cores[i].carve(final)
}

func itemBytes(items []source.Item) uint64 {
	var n uint64
	for i := range items {
		if !items[i].Gap {
			n += uint64(items[i].Packet.WireLen)
		}
	}
	return n
}

// Drain emits every thread delta that is final under the current
// watermarks. Call after feeding a batch of chunks/sideband and advancing
// watermarks.
func (s *StreamStitcher) Drain() []ThreadStream {
	if s.finished {
		return nil
	}
	for i := range s.cores {
		s.safeCarve(i, false)
	}
	return s.emit(false)
}

// Finish declares the input complete and returns the remaining deltas.
// After Finish the stitcher rejects further feeding.
func (s *StreamStitcher) Finish() []ThreadStream {
	return s.FinishWorkers(1)
}

// FinishWorkers is Finish with the final per-core carve fanned out on up
// to workers goroutines (cores are independent, mirroring the batch
// split's parallel carve). The emitted deltas are identical for any
// worker count.
func (s *StreamStitcher) FinishWorkers(workers int) []ThreadStream {
	if s.finished {
		return nil
	}
	conc.ParallelFor(conc.Workers(workers), len(s.cores), func(i int) {
		s.safeCarve(i, true)
	})
	s.finished = true
	return s.emit(true)
}
