// Package trace reassembles per-core PT traces into per-thread packet
// streams (paper §6, "Multi-Cores and Multi-Threads"): the scheduler's
// sideband thread-switch records carve each core's trace into windows, and
// each thread's windows are stitched together across cores in time order.
//
// Loss episodes need care: a gap recorded on one core can span many
// scheduling windows (the buffer may stay backlogged long after the thread
// that overflowed it migrated away), so each overlapped window receives the
// gap clipped to its own bounds — the thread only lost data while it was
// actually running there.
//
// Sideband timestamps are *not* perfectly consistent with the timestamps
// embedded in the trace (the machine adds deterministic jitter, mirroring
// the inconsistency the paper reports in §7.2), so packets adjacent to a
// switch boundary can be attributed to the wrong thread — an accuracy
// limiter JPortal inherits by design.
package trace

import (
	"sort"

	"jportal/internal/conc"
	"jportal/internal/source"
	"jportal/internal/vm"
)

// ThreadStream is one thread's stitched packet stream.
type ThreadStream struct {
	Thread int
	Items  []source.Item
}

// window is a contiguous slice of one core's trace attributed to a thread.
type window struct {
	thread int
	start  uint64 // sideband timestamp ordering key
	items  []source.Item
}

// collapseRuns merges consecutive same-thread records, keeping the first.
func collapseRuns(recs []vm.SwitchRecord) []vm.SwitchRecord {
	out := recs[:0:0]
	for _, r := range recs {
		if n := len(out); n > 0 && out[n-1].Thread == r.Thread {
			continue
		}
		out = append(out, r)
	}
	return out
}

// SplitByThread segregates per-core traces into per-thread streams using
// the scheduler sideband. For a single-threaded program this degenerates to
// concatenating the (single) core windows in time order. tr identifies the
// time-bearing packet kinds of the trace's source (the only per-source
// knowledge the carve needs).
func SplitByThread(cores []source.CoreTrace, sideband []vm.SwitchRecord, tr *source.Traits) []ThreadStream {
	return SplitByThreadWorkers(cores, sideband, tr, 0)
}

// carveCore slices one core's trace into scheduling windows owned by
// threads (the per-core half of SplitByThread). recs must already be
// collapsed.
func carveCore(ct *source.CoreTrace, recs []vm.SwitchRecord, tr *source.Traits) []window {
	// windowAt returns the index of the scheduling window covering t.
	windowAt := func(t uint64) int {
		i := sort.Search(len(recs), func(i int) bool { return recs[i].TSC > t })
		if i == 0 {
			return 0
		}
		return i - 1
	}

	wins := make([][]source.Item, len(recs))
	tsc := uint64(0)
	wi := 0
	for _, it := range ct.Items {
		if it.Gap {
			// Distribute the gap to every window it overlaps,
			// clipped to the window bounds.
			lo := windowAt(it.GapStart)
			hi := windowAt(it.GapEnd)
			span := it.GapEnd - it.GapStart
			for j := lo; j <= hi; j++ {
				g := it
				if j > lo {
					g.GapStart = recs[j].TSC
				}
				if j < hi && j+1 < len(recs) {
					g.GapEnd = recs[j+1].TSC
				}
				if g.GapEnd <= g.GapStart {
					continue
				}
				// Apportion the lost bytes by covered time.
				if span > 0 {
					g.LostBytes = it.LostBytes * (g.GapEnd - g.GapStart) / span
				}
				wins[j] = append(wins[j], g)
			}
			tsc = it.GapEnd
			if w := windowAt(tsc); w > wi {
				wi = w
			}
			continue
		}
		if tr.IsTime(it.Packet.Kind) {
			tsc = it.Packet.TSC
			if w := windowAt(tsc); w > wi {
				wi = w
			}
		}
		wins[wi] = append(wins[wi], it)
	}
	var out []window
	for i, items := range wins {
		if len(items) > 0 && recs[i].Thread >= 0 {
			out = append(out, window{thread: recs[i].Thread, start: recs[i].TSC, items: items})
		}
	}
	return out
}

// SplitByThreadWorkers is SplitByThread with an explicit worker bound
// (0 = GOMAXPROCS): cores carve their windows concurrently — each core's
// trace is independent — and the merge walks the per-core results in core
// order, so the stitched streams are identical for any worker count.
func SplitByThreadWorkers(cores []source.CoreTrace, sideband []vm.SwitchRecord, tr *source.Traits, workers int) []ThreadStream {
	perCore := make(map[int][]vm.SwitchRecord)
	maxThread := 0
	for _, r := range sideband {
		perCore[r.Core] = append(perCore[r.Core], r)
		if r.Thread > maxThread {
			maxThread = r.Thread
		}
	}

	coreWins := make([][]window, len(cores))
	conc.ParallelFor(conc.Workers(workers), len(cores), func(ci int) {
		recs := perCore[cores[ci].Core]
		if len(recs) == 0 {
			return
		}
		// Collapse consecutive records with the same owner (including
		// idle runs) so windowAt stays cheap.
		coreWins[ci] = carveCore(&cores[ci], collapseRuns(recs), tr)
	})
	var windows []window
	for _, ws := range coreWins {
		windows = append(windows, ws...)
	}

	// Stitch each thread's windows in time order.
	sort.SliceStable(windows, func(i, j int) bool { return windows[i].start < windows[j].start })
	streams := make([]ThreadStream, maxThread+1)
	for i := range streams {
		streams[i].Thread = i
	}
	for _, w := range windows {
		s := &streams[w.thread]
		s.Items = append(s.Items, w.items...)
	}
	return streams
}
