package trace

import (
	"testing"

	"jportal/internal/pt"
	"jportal/internal/vm"
)

func tscItem(ts uint64) pt.Item {
	return pt.Item{Packet: pt.Packet{Kind: pt.KTSC, TSC: ts, WireLen: 8}}
}

func tipItem(ip uint64) pt.Item {
	return pt.Item{Packet: pt.Packet{Kind: pt.KTIP, IP: ip, WireLen: 4}}
}

func TestSplitSingleThread(t *testing.T) {
	cores := []pt.CoreTrace{{
		Core: 0,
		Items: []pt.Item{
			tscItem(0), tipItem(1), tipItem(2),
			tscItem(100), tipItem(3),
		},
	}}
	sideband := []vm.SwitchRecord{{Core: 0, TSC: 0, Thread: 0}}
	streams := SplitByThread(cores, sideband, pt.Traits())
	if len(streams) != 1 {
		t.Fatalf("streams: %d", len(streams))
	}
	if len(streams[0].Items) != 5 {
		t.Errorf("items: %d", len(streams[0].Items))
	}
}

func TestSplitTwoThreadsOneCore(t *testing.T) {
	cores := []pt.CoreTrace{{
		Core: 0,
		Items: []pt.Item{
			tscItem(0), tipItem(1), tipItem(2),
			tscItem(100), tipItem(3), // thread 1's window begins at 100
			tscItem(220), tipItem(4),
		},
	}}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 0, TSC: 100, Thread: 1},
		{Core: 0, TSC: 200, Thread: 0},
	}
	streams := SplitByThread(cores, sideband, pt.Traits())
	count := func(tid int) (tips int) {
		for _, it := range streams[tid].Items {
			if !it.Gap && it.Packet.Kind == pt.KTIP {
				tips++
			}
		}
		return
	}
	if count(0) != 3 { // tips 1,2 then 4
		t.Errorf("thread0 tips = %d", count(0))
	}
	if count(1) != 1 { // tip 3
		t.Errorf("thread1 tips = %d", count(1))
	}
}

func TestSplitStitchesAcrossCores(t *testing.T) {
	cores := []pt.CoreTrace{
		{Core: 0, Items: []pt.Item{tscItem(0), tipItem(1)}},
		{Core: 1, Items: []pt.Item{tscItem(100), tipItem(2)}},
	}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 1, TSC: 100, Thread: 0},
	}
	streams := SplitByThread(cores, sideband, pt.Traits())
	if len(streams[0].Items) != 4 {
		t.Fatalf("stitched items: %d", len(streams[0].Items))
	}
	// Windows in time order: core0's first.
	if streams[0].Items[1].Packet.IP != 1 || streams[0].Items[3].Packet.IP != 2 {
		t.Error("stitch order wrong")
	}
}

func TestSplitClipsGapsToWindows(t *testing.T) {
	// A gap on core 0 spans two scheduling windows (threads 0 then 1):
	// each thread receives only its share.
	cores := []pt.CoreTrace{{
		Core: 0,
		Items: []pt.Item{
			tscItem(0), tipItem(1),
			{Gap: true, LostBytes: 1000, GapStart: 50, GapEnd: 250},
			tscItem(260), tipItem(2),
		},
	}}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 0, TSC: 100, Thread: 1},
		{Core: 0, TSC: 200, Thread: 1},
	}
	streams := SplitByThread(cores, sideband, pt.Traits())
	var g0, g1 []pt.Item
	for _, it := range streams[0].Items {
		if it.Gap {
			g0 = append(g0, it)
		}
	}
	for _, it := range streams[1].Items {
		if it.Gap {
			g1 = append(g1, it)
		}
	}
	if len(g0) != 1 || g0[0].GapStart != 50 || g0[0].GapEnd != 100 {
		t.Errorf("thread0 gaps: %+v", g0)
	}
	if len(g1) == 0 {
		t.Fatalf("thread1 got no gap share")
	}
	var covered uint64
	var bytes uint64
	for _, g := range append(g0, g1...) {
		covered += g.GapEnd - g.GapStart
		bytes += g.LostBytes
	}
	if covered != 200 {
		t.Errorf("gap coverage %d, want 200", covered)
	}
	// Lost bytes are apportioned (within rounding).
	if bytes < 990 || bytes > 1000 {
		t.Errorf("apportioned bytes: %d", bytes)
	}
}

func TestSplitNoSidebandForCore(t *testing.T) {
	cores := []pt.CoreTrace{
		{Core: 0, Items: []pt.Item{tscItem(0), tipItem(1)}},
		{Core: 7, Items: []pt.Item{tscItem(0), tipItem(9)}}, // never scheduled
	}
	sideband := []vm.SwitchRecord{{Core: 0, TSC: 0, Thread: 0}}
	streams := SplitByThread(cores, sideband, pt.Traits())
	if len(streams) != 1 || len(streams[0].Items) != 2 {
		t.Errorf("unexpected streams: %+v", streams)
	}
}

func TestSplitIdleWindowsBoundGaps(t *testing.T) {
	// Thread 0 runs on core 0 until t=100, then the core goes idle
	// (Thread -1). A loss episode spanning [50, 400] must be clipped at
	// the idle boundary: thread 0 only lost data while it was running.
	cores := []pt.CoreTrace{{
		Core: 0,
		Items: []pt.Item{
			tscItem(0), tipItem(1),
			{Gap: true, LostBytes: 700, GapStart: 50, GapEnd: 400},
			tscItem(410), tipItem(2),
		},
	}}
	sideband := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 0},
		{Core: 0, TSC: 100, Thread: -1},
		{Core: 0, TSC: 405, Thread: 0},
	}
	streams := SplitByThread(cores, sideband, pt.Traits())
	var gaps []pt.Item
	for _, it := range streams[0].Items {
		if it.Gap {
			gaps = append(gaps, it)
		}
	}
	if len(gaps) != 1 {
		t.Fatalf("gaps: %+v", gaps)
	}
	if gaps[0].GapStart != 50 || gaps[0].GapEnd != 100 {
		t.Errorf("gap not clipped at idle: [%d,%d]", gaps[0].GapStart, gaps[0].GapEnd)
	}
}

func TestCollapseRuns(t *testing.T) {
	recs := []vm.SwitchRecord{
		{Core: 0, TSC: 0, Thread: 2},
		{Core: 0, TSC: 50, Thread: 2},
		{Core: 0, TSC: 100, Thread: -1},
		{Core: 0, TSC: 150, Thread: -1},
		{Core: 0, TSC: 200, Thread: 2},
	}
	got := collapseRuns(recs)
	if len(got) != 3 || got[0].TSC != 0 || got[1].TSC != 100 || got[2].TSC != 200 {
		t.Errorf("collapsed: %+v", got)
	}
}
