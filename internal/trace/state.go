package trace

import (
	"fmt"

	"jportal/internal/source"
	"jportal/internal/vm"
)

// StitcherWindow is the checkpointable form of a closed scheduling window
// awaiting cross-core emission.
type StitcherWindow struct {
	Thread int
	Start  uint64
	End    uint64
	Rec    int
	Items  []source.Item
}

// StitcherCoreState is one core's checkpointable carve state.
type StitcherCoreState struct {
	Recs    []vm.SwitchRecord
	Mark    uint64
	Pending []source.Item
	WI      int
	TSC     uint64
	Open    map[int][]source.Item
	Closed  []StitcherWindow
	FO      int
}

// StitcherState is the stitcher's complete checkpointable state (DESIGN.md
// §11): per-core carve cursors and buffered items, plus the cross-core
// collapse and emission frontiers. Only valid before Finish.
type StitcherState struct {
	NCores     int
	MaxThread  int
	Cores      []StitcherCoreState
	LastThread []int
	LastTSC    []uint64
	EmittedEnd map[int]uint64
}

// ExportState snapshots the stitcher for a checkpoint. It panics after
// Finish: a finished stitcher has emitted everything and is not resumable.
func (s *StreamStitcher) ExportState() StitcherState {
	if s.finished {
		panic("trace: StreamStitcher.ExportState after Finish")
	}
	st := StitcherState{
		NCores:     len(s.cores),
		MaxThread:  s.maxThread,
		Cores:      make([]StitcherCoreState, len(s.cores)),
		LastThread: append([]int(nil), s.lastThread...),
		LastTSC:    append([]uint64(nil), s.lastTSC...),
		EmittedEnd: make(map[int]uint64, len(s.emittedEnd)),
	}
	for t, e := range s.emittedEnd {
		st.EmittedEnd[t] = e
	}
	for i := range s.cores {
		c := &s.cores[i]
		cs := StitcherCoreState{
			Recs:    append([]vm.SwitchRecord(nil), c.recs...),
			Mark:    c.mark,
			Pending: append([]source.Item(nil), c.pending...),
			WI:      c.wi,
			TSC:     c.tsc,
			Open:    make(map[int][]source.Item, len(c.open)),
			Closed:  make([]StitcherWindow, len(c.closed)),
			FO:      c.fo,
		}
		for j, items := range c.open {
			cs.Open[j] = append([]source.Item(nil), items...)
		}
		for j, w := range c.closed {
			cs.Closed[j] = StitcherWindow{
				Thread: w.thread, Start: w.start, End: w.end, Rec: w.rec,
				Items: append([]source.Item(nil), w.items...),
			}
		}
		st.Cores[i] = cs
	}
	return st
}

// RestoreState rebuilds a freshly-constructed stitcher from a checkpointed
// state. The core count must match the checkpointing run's; nil maps from
// the wire (gob encodes empty maps as nil) are normalised back to empty.
func (s *StreamStitcher) RestoreState(st StitcherState) error {
	if st.NCores != len(s.cores) {
		return fmt.Errorf("trace: checkpoint has %d cores, stitcher has %d", st.NCores, len(s.cores))
	}
	if len(st.Cores) != st.NCores || len(st.LastThread) != st.NCores || len(st.LastTSC) != st.NCores {
		return fmt.Errorf("trace: checkpoint core arrays inconsistent with %d cores", st.NCores)
	}
	s.maxThread = st.MaxThread
	s.finished = false
	s.lastThread = append([]int(nil), st.LastThread...)
	s.lastTSC = append([]uint64(nil), st.LastTSC...)
	s.emittedEnd = make(map[int]uint64, len(st.EmittedEnd))
	for t, e := range st.EmittedEnd {
		s.emittedEnd[t] = e
	}
	for i := range s.cores {
		cs := &st.Cores[i]
		c := &s.cores[i]
		c.recs = append([]vm.SwitchRecord(nil), cs.Recs...)
		c.mark = cs.Mark
		c.pending = append([]source.Item(nil), cs.Pending...)
		c.wi = cs.WI
		c.tsc = cs.TSC
		c.open = make(map[int][]source.Item, len(cs.Open))
		for j, items := range cs.Open {
			c.open[j] = append([]source.Item(nil), items...)
		}
		c.closed = make([]stWindow, len(cs.Closed))
		for j, w := range cs.Closed {
			c.closed[j] = stWindow{
				thread: w.Thread, start: w.Start, end: w.End, rec: w.Rec,
				items: append([]source.Item(nil), w.Items...),
			}
		}
		c.fo = cs.FO
	}
	return nil
}
