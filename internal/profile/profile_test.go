package profile

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/core"
)

const profSrc = `
method T.leaf(1) returns int {
    iload 0
    iconst 1
    iadd
    ireturn
}
method T.main(0) {
    iconst 3
    invokestatic T.leaf
    pop
    return
}
entry T.main
`

// steps builds a step stream from (mid, pc) pairs.
func mkSteps(pairs ...[2]int32) []core.Step {
	out := make([]core.Step, len(pairs))
	for i, p := range pairs {
		out[i] = core.Step{Method: bytecode.MethodID(p[0]), PC: p[1]}
	}
	return out
}

func TestCoverage(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	main := p.MethodByName("T.main")
	steps := mkSteps(
		[2]int32{int32(main.ID), 0}, [2]int32{int32(main.ID), 1},
		[2]int32{int32(leaf.ID), 0}, [2]int32{int32(leaf.ID), 1},
		[2]int32{int32(leaf.ID), 2}, [2]int32{int32(leaf.ID), 3},
		[2]int32{int32(main.ID), 2}, [2]int32{int32(main.ID), 3},
	)
	cov := ComputeCoverage(p, steps)
	if cov.CoveredInstrs != 8 || cov.TotalInstrs != 8 {
		t.Errorf("coverage %d/%d", cov.CoveredInstrs, cov.TotalInstrs)
	}
	if cov.Ratio() != 1.0 || cov.CoveredMethods != 2 {
		t.Errorf("ratio %f methods %d", cov.Ratio(), cov.CoveredMethods)
	}
	// Duplicate steps do not double count.
	cov2 := ComputeCoverage(p, append(steps, steps...))
	if cov2.CoveredInstrs != 8 {
		t.Error("duplicates double-counted")
	}
}

func TestEdgeProfile(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	steps := mkSteps(
		[2]int32{int32(leaf.ID), 0}, [2]int32{int32(leaf.ID), 1},
		[2]int32{int32(leaf.ID), 0}, [2]int32{int32(leaf.ID), 1},
	)
	edges := EdgeProfile(p, steps)
	// Edges: 0->1 twice, 1->0 once.
	if len(edges) != 2 {
		t.Fatalf("edges: %+v", edges)
	}
	if edges[0].From != 0 || edges[0].To != 1 || edges[0].Count != 2 {
		t.Errorf("hottest edge: %+v", edges[0])
	}
}

func TestHotMethods(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	main := p.MethodByName("T.main")
	var steps []core.Step
	for i := 0; i < 10; i++ {
		steps = append(steps, core.Step{Method: leaf.ID, PC: 0})
	}
	steps = append(steps, core.Step{Method: main.ID, PC: 0})
	hot := HotMethods(p, steps, 10)
	if len(hot) != 2 || hot[0] != int32(leaf.ID) {
		t.Errorf("hot: %v", hot)
	}
	if got := HotMethods(p, steps, 1); len(got) != 1 {
		t.Errorf("top-1: %v", got)
	}
}

func TestPathProfileFromSteps(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	// Two complete straight-line executions of leaf.
	var steps []core.Step
	for r := 0; r < 2; r++ {
		for pc := int32(0); pc < int32(len(leaf.Code)); pc++ {
			steps = append(steps, core.Step{Method: leaf.ID, PC: pc})
		}
	}
	pp := ComputePathProfile(p, steps)
	counts := pp.Counts[leaf.ID]
	if counts == nil {
		t.Fatal("no counts for leaf")
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 2 || len(counts) != 1 {
		t.Errorf("paths: %v", counts)
	}
}

func TestCallTree(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	main := p.MethodByName("T.main")
	steps := mkSteps(
		[2]int32{int32(main.ID), 0},
		[2]int32{int32(main.ID), 1}, // invokestatic
		[2]int32{int32(leaf.ID), 0},
		[2]int32{int32(leaf.ID), 1},
		[2]int32{int32(leaf.ID), 2},
		[2]int32{int32(leaf.ID), 3}, // ireturn
		[2]int32{int32(main.ID), 2},
		[2]int32{int32(main.ID), 3},
	)
	tree := CallTree(p, steps)
	if tree.TotalCalls() != 1 {
		t.Errorf("total calls %d", tree.TotalCalls())
	}
	child := tree.Children[leaf.ID]
	if child == nil || child.Count != 1 {
		t.Fatalf("leaf child: %+v", tree.Children)
	}
	if d := tree.Depth(); d != 2 {
		t.Errorf("depth %d", d)
	}
}

func TestTimeProfile(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	leaf := p.MethodByName("T.leaf")
	main := p.MethodByName("T.main")
	steps := []core.Step{
		{Method: main.ID, PC: 0, TSC: 0},
		{Method: main.ID, PC: 1, TSC: 10},
		{Method: leaf.ID, PC: 0, TSC: 20},
		{Method: leaf.ID, PC: 1, TSC: 120}, // 100 cycles inside leaf
		{Method: main.ID, PC: 2, TSC: 130},
		{Method: main.ID, PC: 3, TSC: 999_999}, // beyond maxGap: dropped
	}
	tp := ComputeTimeProfile(p, steps, 1000)
	// main: (10-0) + (20-10 charged to main@1) + (130-120 charged to leaf)...
	// charging is to the method executing BEFORE each gap:
	// main: 0->10 (10), 10->20 (10); leaf: 20->120 (100), 120->130 (10).
	if tp.Cycles[main.ID] != 20 {
		t.Errorf("main cycles = %d, want 20", tp.Cycles[main.ID])
	}
	if tp.Cycles[leaf.ID] != 110 {
		t.Errorf("leaf cycles = %d, want 110", tp.Cycles[leaf.ID])
	}
	if tp.Total != 130 {
		t.Errorf("total = %d", tp.Total)
	}
	top := tp.Top(5)
	if len(top) != 2 || top[0] != int32(leaf.ID) {
		t.Errorf("top: %v", top)
	}
}

func TestTimeProfileDefaultsAndEmpty(t *testing.T) {
	p := bytecode.MustAssemble(profSrc)
	tp := ComputeTimeProfile(p, nil, 0)
	if tp.Total != 0 || len(tp.Top(3)) != 0 {
		t.Error("empty profile not empty")
	}
}
