// Package profile derives the client-application profiles the paper's
// introduction motivates — statement coverage, path frequencies, control
// flow (edge) profiles, hot-method rankings, and call trees — from the
// control-flow steps JPortal reconstructs.
package profile

import (
	"sort"

	"jportal/internal/ballarus"
	"jportal/internal/bytecode"
	"jportal/internal/cfg"
	"jportal/internal/core"
)

// Coverage is a statement-coverage report.
type Coverage struct {
	// Covered[mid][pc] reports whether the instruction executed.
	Covered map[bytecode.MethodID][]bool
	// CoveredInstrs/TotalInstrs aggregate over the program.
	CoveredInstrs, TotalInstrs int
	// CoveredMethods counts methods with any coverage.
	CoveredMethods int
	// byMethod is the dense MethodID-indexed view of Covered (shared
	// backing arrays; see NewCoverage).
	byMethod [][]bool
}

// Ratio returns covered/total instructions.
func (c *Coverage) Ratio() float64 {
	if c.TotalInstrs == 0 {
		return 0
	}
	return float64(c.CoveredInstrs) / float64(c.TotalInstrs)
}

// ComputeCoverage derives statement coverage from steps.
func ComputeCoverage(prog *bytecode.Program, steps []core.Step) *Coverage {
	c := NewCoverage(prog)
	c.Add(steps)
	c.Seal()
	return c
}

// NewCoverage starts an incremental coverage accumulator: Add step
// batches (e.g. one thread at a time, avoiding a concatenated copy of
// the whole profile), then Seal to finalise CoveredMethods.
func NewCoverage(prog *bytecode.Program) *Coverage {
	c := &Coverage{Covered: make(map[bytecode.MethodID][]bool, len(prog.Methods))}
	for _, m := range prog.Methods {
		bits := make([]bool, len(m.Code))
		c.Covered[m.ID] = bits
		// byMethod shares the same backing arrays as the Covered map:
		// Add marks through the dense index (MethodIDs are contiguous
		// slice indices, so a map lookup per step is pure overhead) and
		// the exported map reflects every mark.
		for int(m.ID) >= len(c.byMethod) {
			c.byMethod = append(c.byMethod, nil)
		}
		c.byMethod[m.ID] = bits
		c.TotalInstrs += len(m.Code)
	}
	return c
}

// Add folds one batch of steps into the accumulator.
func (c *Coverage) Add(steps []core.Step) {
	for i := range steps {
		s := &steps[i]
		if s.Method < 0 || int(s.Method) >= len(c.byMethod) {
			continue
		}
		cov := c.byMethod[s.Method]
		if int(s.PC) >= len(cov) {
			continue
		}
		if !cov[s.PC] {
			cov[s.PC] = true
			c.CoveredInstrs++
		}
	}
}

// Seal recomputes CoveredMethods after the last Add. Idempotent.
func (c *Coverage) Seal() {
	c.CoveredMethods = 0
	for _, cov := range c.Covered {
		for _, b := range cov {
			if b {
				c.CoveredMethods++
				break
			}
		}
	}
}

// Edge is one intra-method control-flow edge with its frequency.
type Edge struct {
	Method   bytecode.MethodID
	From, To int32
	Count    uint64
}

// EdgeProfile counts intra-method instruction-level edges (the control-flow
// profile).
func EdgeProfile(prog *bytecode.Program, steps []core.Step) []Edge {
	type key struct {
		m        bytecode.MethodID
		from, to int32
	}
	counts := make(map[key]uint64)
	for i := 1; i < len(steps); i++ {
		a, b := steps[i-1], steps[i]
		if a.Method != b.Method {
			continue
		}
		counts[key{a.Method, a.PC, b.PC}]++
	}
	out := make([]Edge, 0, len(counts))
	for k, n := range counts {
		out = append(out, Edge{Method: k.m, From: k.from, To: k.to, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// HotMethods ranks methods by executed-step count (JPortal's hot-method
// report, Table 4).
func HotMethods(prog *bytecode.Program, steps []core.Step, n int) []int32 {
	counts := make([]int64, len(prog.Methods))
	for _, s := range steps {
		if int(s.Method) < len(counts) && s.Method >= 0 {
			counts[s.Method]++
		}
	}
	idx := make([]int32, len(counts))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] > counts[idx[b]] })
	out := make([]int32, 0, n)
	for _, i := range idx {
		if counts[i] == 0 || len(out) == n {
			break
		}
		out = append(out, i)
	}
	return out
}

// TimeProfile attributes simulated time to methods using the timestamps
// embedded in the reconstructed steps (the paper's intro: "hardware traces
// contain event timestamps, enabling performance analysis such as detection
// of invocation hot spots"). Each inter-step gap is charged to the method
// executing before it; gaps above maxGap (scheduling pauses, data loss) are
// dropped.
type TimeProfile struct {
	// Cycles[mid] is the time attributed to each method.
	Cycles []uint64
	// Total is the attributed sum.
	Total uint64
}

// ComputeTimeProfile derives per-method time from step timestamps.
func ComputeTimeProfile(prog *bytecode.Program, steps []core.Step, maxGap uint64) *TimeProfile {
	tp := &TimeProfile{Cycles: make([]uint64, len(prog.Methods))}
	if maxGap == 0 {
		maxGap = 10_000
	}
	for i := 1; i < len(steps); i++ {
		prev, cur := &steps[i-1], &steps[i]
		if cur.TSC <= prev.TSC {
			continue
		}
		d := cur.TSC - prev.TSC
		if d > maxGap {
			continue
		}
		if int(prev.Method) < len(tp.Cycles) && prev.Method >= 0 {
			tp.Cycles[prev.Method] += d
			tp.Total += d
		}
	}
	return tp
}

// Top returns methods ranked by attributed time.
func (tp *TimeProfile) Top(n int) []int32 {
	idx := make([]int32, len(tp.Cycles))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return tp.Cycles[idx[a]] > tp.Cycles[idx[b]] })
	out := make([]int32, 0, n)
	for _, i := range idx {
		if tp.Cycles[i] == 0 || len(out) == n {
			break
		}
		out = append(out, i)
	}
	return out
}

// PathProfile holds Ball-Larus path frequencies derived by replaying
// reconstructed flow through each method's path numbering.
type PathProfile struct {
	// Counts[mid][pathID] = frequency.
	Counts map[bytecode.MethodID]map[int64]uint64
	// Skipped lists methods whose numbering failed (path explosion).
	Skipped []bytecode.MethodID
}

// ComputePathProfile replays steps through BL numberings.
func ComputePathProfile(prog *bytecode.Program, steps []core.Step) *PathProfile {
	p := &PathProfile{Counts: make(map[bytecode.MethodID]map[int64]uint64)}
	nums := make(map[bytecode.MethodID]*ballarus.Numbering)
	graphs := make(map[bytecode.MethodID]*cfg.CFG)
	for _, m := range prog.Methods {
		num, err := ballarus.Number(m)
		if err != nil {
			p.Skipped = append(p.Skipped, m.ID)
			continue
		}
		nums[m.ID] = num
		graphs[m.ID] = num.G
	}
	// Cut the step stream into per-method block runs.
	var curM bytecode.MethodID = bytecode.NoMethod
	var blocks []int
	flush := func() {
		if curM == bytecode.NoMethod || len(blocks) == 0 {
			blocks = blocks[:0]
			return
		}
		if num := nums[curM]; num != nil {
			counts := p.Counts[curM]
			if counts == nil {
				counts = make(map[int64]uint64)
				p.Counts[curM] = counts
			}
			for _, pid := range num.PathCount(blocks) {
				counts[pid]++
			}
		}
		blocks = blocks[:0]
	}
	prevReturn := false
	for _, s := range steps {
		g := graphs[s.Method]
		if g == nil || int(s.PC) >= len(g.BlockOf) {
			flush()
			curM = bytecode.NoMethod
			prevReturn = false
			continue
		}
		if s.Method != curM || (prevReturn && s.PC == 0) {
			// Method change, or re-entry of the same method right after
			// its return (recursion/repeated calls).
			flush()
			curM = s.Method
		}
		b := g.BlockOf[s.PC]
		if len(blocks) == 0 || blocks[len(blocks)-1] != b {
			blocks = append(blocks, b)
		}
		prevReturn = prog.Methods[s.Method].Code[s.PC].Op.IsReturn()
	}
	flush()
	return p
}

// CallNode is a dynamic call-tree node.
type CallNode struct {
	Method   bytecode.MethodID
	Count    uint64
	Children map[bytecode.MethodID]*CallNode
}

func newCallNode(m bytecode.MethodID) *CallNode {
	return &CallNode{Method: m, Children: make(map[bytecode.MethodID]*CallNode)}
}

// CallTree reconstructs the dynamic call tree from steps: entering a method
// at pc 0 right after a call instruction pushes; executing a return pops.
func CallTree(prog *bytecode.Program, steps []core.Step) *CallNode {
	root := newCallNode(bytecode.NoMethod)
	stack := []*CallNode{root}
	top := func() *CallNode { return stack[len(stack)-1] }
	var prevOp bytecode.Opcode = bytecode.NOP
	var prevM bytecode.MethodID = bytecode.NoMethod
	for _, s := range steps {
		m := prog.Method(s.Method)
		if m == nil || int(s.PC) >= len(m.Code) {
			continue
		}
		op := m.Code[s.PC].Op
		switch {
		case s.PC == 0 && prevOp.IsCall() && prevM != s.Method:
			child := top().Children[s.Method]
			if child == nil {
				child = newCallNode(s.Method)
				top().Children[s.Method] = child
			}
			child.Count++
			stack = append(stack, child)
		case s.Method != top().Method && s.Method == prevM:
			// still in the same method as before; nothing to do
		}
		if op.IsReturn() && len(stack) > 1 && top().Method == s.Method {
			stack = stack[:len(stack)-1]
		}
		prevOp = op
		prevM = s.Method
	}
	return root
}

// Depth returns the call tree's maximum depth.
func (n *CallNode) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// TotalCalls sums all call counts in the tree.
func (n *CallNode) TotalCalls() uint64 {
	var t uint64 = n.Count
	for _, c := range n.Children {
		t += c.TotalCalls()
	}
	return t
}
