// Package jit is the simulated tiered JIT compiler (the paper's C1/C2,
// §2/§3.2). It lowers bytecode methods to simulated native code (package
// isa) laid out in the code cache, producing exactly the artefacts JPortal
// depends on:
//
//   - a native code blob whose control-flow skeleton (conditional branches,
//     direct/indirect calls and jumps, returns) a PT decoder can walk;
//   - per-native-instruction debug records mapping each pc back to a
//     bytecode instruction, through inline frames when C2 inlined callees
//     (paper Fig 3b, §6 "Dealing with Inlined Code");
//   - deliberate, deterministic imprecision at tier 2 — elided trivial
//     instructions and approximate bci attributions — modelling the debug
//     metadata damage real optimising compilers inflict (paper §7.2 lists
//     this as a decode-accuracy limiter).
package jit

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
)

// Options configures a compilation.
type Options struct {
	// Tier is 1 (client compiler: fast, no inlining, precise debug info)
	// or 2 (server compiler: inlining, elision, approximate records).
	Tier int
	// Base is the code-cache address where the blob starts.
	Base uint64
	// CompiledEntries maps already-compiled methods to their native entry
	// so invokestatic call sites can be bound directly (no TIP at
	// runtime); unlisted callees get an indirect resolution stub.
	CompiledEntries map[bytecode.MethodID]uint64
	// InlineMaxCode is the callee size limit for C2 inlining.
	InlineMaxCode int
	// InlineMaxDepth bounds nested inlining.
	InlineMaxDepth int
	// ElidePercent is the C2 probability (deterministic, hash-based) that
	// a trivial value-shuffling instruction is optimised away entirely,
	// leaving no native instruction and hence no debug record.
	ElidePercent int
	// ApproxPercent is the C2 probability that a debug record's bci is
	// coarsened to the start of its unit's predecessor (modelling loop
	// transformation damage).
	ApproxPercent int
	// Salt seeds the deterministic hash.
	Salt uint64
}

// DefaultC1 returns tier-1 options.
func DefaultC1(base uint64, entries map[bytecode.MethodID]uint64) Options {
	return Options{Tier: 1, Base: base, CompiledEntries: entries}
}

// DefaultC2 returns tier-2 options.
func DefaultC2(base uint64, entries map[bytecode.MethodID]uint64) Options {
	return Options{
		Tier: 2, Base: base, CompiledEntries: entries,
		InlineMaxCode: 40, InlineMaxDepth: 3,
		ElidePercent: 14, ApproxPercent: 4,
	}
}

// CtxID identifies an inline context within a compilation; 0 is the root.
type CtxID int32

// Ctx records one inline context.
type Ctx struct {
	ID CtxID
	// Parent is the enclosing context (-1 for the root).
	Parent CtxID
	// SiteBCI is the call-site bci in the parent that was inlined.
	SiteBCI int32
	// Method executing in this context.
	Method bytecode.MethodID
}

// CallInfo describes how a call site was lowered.
type CallInfo struct {
	// Inlined is the child context when the site was inlined (else -1).
	Inlined CtxID
	// Direct is the bound native entry for a direct call (0 when the call
	// is indirect or inlined).
	Direct uint64
}

// Unit is the native code generated for one (context, bci).
type Unit struct {
	Ctx CtxID
	BCI int32
	// First/Last delimit the blob instruction index range [First, Last);
	// empty for elided instructions.
	First, Last int32
	// CondAddr is the address of the conditional-branch instruction for
	// branch units (0 otherwise).
	CondAddr uint64
}

type ukey struct {
	ctx CtxID
	bci int32
}

// NativeMethod is a completed compilation: the exported metadata plus the
// execution-support tables the VM uses to drive trace emission through this
// code.
type NativeMethod struct {
	Meta *meta.CompiledMethod
	Tier int

	prog  *bytecode.Program
	ctxs  []Ctx
	units []Unit
	index map[ukey]int32
	calls map[ukey]CallInfo
}

// Program returns the program this compilation belongs to.
func (n *NativeMethod) Program() *bytecode.Program { return n.prog }

// Root returns the root method ID.
func (n *NativeMethod) Root() bytecode.MethodID { return n.Meta.Root }

// EntryAddr returns the blob entry address.
func (n *NativeMethod) EntryAddr() uint64 { return n.Meta.EntryAddr() }

// CtxInfo returns the inline context record.
func (n *NativeMethod) CtxInfo(c CtxID) Ctx { return n.ctxs[c] }

// UnitFor returns the unit for (ctx, bci); ok is false if it does not exist
// (which would indicate VM/JIT disagreement and is a bug).
func (n *NativeMethod) UnitFor(c CtxID, bci int32) (Unit, bool) {
	i, ok := n.index[ukey{c, bci}]
	if !ok {
		return Unit{}, false
	}
	return n.units[i], true
}

// AddrOf returns the native address where execution of (ctx, bci) begins.
// For elided units this is the address of the next emitted instruction.
func (n *NativeMethod) AddrOf(c CtxID, bci int32) uint64 {
	u, ok := n.UnitFor(c, bci)
	if !ok {
		panic(fmt.Sprintf("jit: no unit for ctx%d bci%d in m%d", c, bci, n.Meta.Root))
	}
	if int(u.First) < len(n.Meta.Code.Instrs) {
		return n.Meta.Code.Instrs[u.First].Addr
	}
	return n.Meta.Code.Limit()
}

// CallAt describes the lowering of the call site (ctx, bci).
func (n *NativeMethod) CallAt(c CtxID, bci int32) (CallInfo, bool) {
	ci, ok := n.calls[ukey{c, bci}]
	return ci, ok
}

// CondAddrAt returns the native conditional-branch address for a branch
// unit.
func (n *NativeMethod) CondAddrAt(c CtxID, bci int32) uint64 {
	u, ok := n.UnitFor(c, bci)
	if !ok || u.CondAddr == 0 {
		panic(fmt.Sprintf("jit: no cond branch at ctx%d bci%d in m%d", c, bci, n.Meta.Root))
	}
	return u.CondAddr
}

// Units returns the unit list (shared; do not mutate). Exposed for tests.
func (n *NativeMethod) Units() []Unit { return n.units }

// splitmix64 is a small deterministic hash for elision/approximation
// decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashPct(salt uint64, mid bytecode.MethodID, ctx CtxID, bci int32) int {
	h := splitmix64(salt ^ uint64(mid)<<40 ^ uint64(uint32(ctx))<<20 ^ uint64(uint32(bci)))
	return int(h % 100)
}

// elidable reports whether op may be optimised away at tier 2 without
// changing the observable native control flow.
func elidable(op bytecode.Opcode) bool {
	switch op {
	case bytecode.NOP, bytecode.ICONST, bytecode.ILOAD, bytecode.ISTORE,
		bytecode.DUP, bytecode.POP, bytecode.SWAP, bytecode.IINC:
		return true
	}
	return false
}

// native instruction sizes by role, in bytes; arbitrary but fixed so
// layouts are deterministic.
const (
	szLinear   = 3
	szCmp      = 3
	szJcc      = 6
	szJmp      = 5
	szCall     = 5
	szCallInd  = 6
	szRet      = 1
	szEpilogue = 3
	szPrologue = 4
	szSwitch   = 4
	szJmpInd   = 7
)

// Compile lowers method mid of prog according to opts.
func Compile(prog *bytecode.Program, mid bytecode.MethodID, opts Options) (*NativeMethod, error) {
	if opts.Tier != 1 && opts.Tier != 2 {
		return nil, fmt.Errorf("jit: bad tier %d", opts.Tier)
	}
	c := &compiler{
		prog: prog,
		opts: opts,
		nm: &NativeMethod{
			prog:  prog,
			Tier:  opts.Tier,
			index: make(map[ukey]int32),
			calls: make(map[ukey]CallInfo),
		},
		asm: isa.NewAssembler(fmt.Sprintf("m%d.t%d", mid, opts.Tier), opts.Base),
	}
	root := prog.Method(mid)
	if root == nil {
		return nil, fmt.Errorf("jit: unknown method m%d", mid)
	}
	c.nm.ctxs = []Ctx{{ID: 0, Parent: -1, SiteBCI: -1, Method: mid}}

	// Prologue: frame setup, attributed to bci 0 of the root.
	c.beginDebug(0, 0)
	c.asm.Emit(isa.Linear, szPrologue, 0, "prologue: stack bang")
	c.asm.Emit(isa.Linear, szLinear, 0, "prologue: frame setup")
	c.endDebug()

	if err := c.lowerMethod(0, root, 0); err != nil {
		return nil, err
	}
	if err := c.patch(); err != nil {
		return nil, err
	}

	blob := c.asm.Finish()
	inlined := make([]bytecode.MethodID, 0, len(c.nm.ctxs)-1)
	for _, cx := range c.nm.ctxs[1:] {
		inlined = append(inlined, cx.Method)
	}
	c.nm.Meta = &meta.CompiledMethod{
		Root:    mid,
		Tier:    opts.Tier,
		Code:    blob,
		Debug:   c.debug,
		Inlined: inlined,
	}
	if err := c.nm.Meta.Validate(); err != nil {
		return nil, err
	}
	return c.nm, nil
}

type compiler struct {
	prog  *bytecode.Program
	opts  Options
	nm    *NativeMethod
	asm   *isa.Assembler
	debug []meta.DebugRecord

	// fixups patch branch targets once all units have addresses.
	fixups []branchFixup

	// curFrames is the debug frame chain for instructions being emitted.
	curFrames []meta.Frame
	curApprox bool
	debugMark int
}

type branchFixup struct {
	instrAddr uint64
	ctx       CtxID
	bci       int32
}

// beginDebug sets the frame chain that instructions emitted until endDebug
// are attributed to. ctx identifies the inline chain; bci the innermost
// instruction.
func (c *compiler) beginDebug(ctx CtxID, bci int32) {
	chain := c.chainOf(ctx)
	frames := make([]meta.Frame, 0, len(chain))
	for i, cx := range chain {
		if i == len(chain)-1 {
			frames = append(frames, meta.Frame{Method: cx.Method, PC: bci})
		} else {
			// Outer frames are at their inlined call sites.
			frames = append(frames, meta.Frame{Method: cx.Method, PC: chain[i+1].SiteBCI})
		}
	}
	c.curFrames = frames
	c.curApprox = false
	if c.opts.Tier == 2 && hashPct(c.opts.Salt^0xa11, c.chainMethod(ctx), ctx, bci) < c.opts.ApproxPercent {
		// Coarsen: the record points at the unit's bci rounded down to an
		// even index, the way loop transformations smear attributions.
		f := &c.curFrames[len(c.curFrames)-1]
		if f.PC > 0 {
			f.PC = f.PC &^ 1
		}
		c.curApprox = true
	}
	c.debugMark = len(c.asm.Finish().Instrs)
}

func (c *compiler) chainMethod(ctx CtxID) bytecode.MethodID { return c.nm.ctxs[ctx].Method }

// chainOf returns root..ctx.
func (c *compiler) chainOf(ctx CtxID) []Ctx {
	var rev []Ctx
	for cur := ctx; cur >= 0; cur = c.nm.ctxs[cur].Parent {
		rev = append(rev, c.nm.ctxs[cur])
	}
	out := make([]Ctx, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// endDebug writes debug records for every instruction emitted since
// beginDebug.
func (c *compiler) endDebug() {
	instrs := c.asm.Finish().Instrs
	for i := c.debugMark; i < len(instrs); i++ {
		frames := make([]meta.Frame, len(c.curFrames))
		copy(frames, c.curFrames)
		c.debug = append(c.debug, meta.DebugRecord{
			Addr:        instrs[i].Addr,
			Frames:      frames,
			Approximate: c.curApprox,
		})
	}
}

// lowerMethod emits units for every instruction of m in context ctx.
func (c *compiler) lowerMethod(ctx CtxID, m *bytecode.Method, depth int) error {
	for bci := int32(0); bci < int32(len(m.Code)); bci++ {
		if err := c.lowerInstr(ctx, m, bci, depth); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) addUnit(ctx CtxID, bci int32, first, last int32, condAddr uint64) {
	u := Unit{Ctx: ctx, BCI: bci, First: first, Last: last, CondAddr: condAddr}
	c.nm.index[ukey{ctx, bci}] = int32(len(c.nm.units))
	c.nm.units = append(c.nm.units, u)
}

func (c *compiler) lowerInstr(ctx CtxID, m *bytecode.Method, bci int32, depth int) error {
	ins := &m.Code[bci]
	first := int32(len(c.asm.Finish().Instrs))
	var condAddr uint64

	emitDefault := func() {
		c.beginDebug(ctx, bci)
		c.asm.Emit(isa.Linear, szLinear, 0, ins.String())
		c.endDebug()
	}

	switch {
	case ins.Op == bytecode.GOTO:
		c.beginDebug(ctx, bci)
		a := c.asm.Emit(isa.Jump, szJmp, 0, ins.String())
		c.endDebug()
		c.fixups = append(c.fixups, branchFixup{instrAddr: a, ctx: ctx, bci: ins.A})

	case ins.Op.IsCondBranch():
		c.beginDebug(ctx, bci)
		c.asm.Emit(isa.Linear, szCmp, 0, "cmp")
		a := c.asm.Emit(isa.CondBranch, szJcc, 0, ins.String())
		c.endDebug()
		condAddr = a
		c.fixups = append(c.fixups, branchFixup{instrAddr: a, ctx: ctx, bci: ins.A})

	case ins.Op == bytecode.TABLESWITCH:
		c.beginDebug(ctx, bci)
		c.asm.Emit(isa.Linear, szSwitch, 0, "switch index computation")
		c.asm.Emit(isa.IndirectJump, szJmpInd, 0, ins.String())
		c.endDebug()

	case ins.Op == bytecode.INVOKESTATIC:
		callee := c.prog.Method(bytecode.MethodID(ins.A))
		if c.shouldInline(callee, depth) {
			child := CtxID(len(c.nm.ctxs))
			c.nm.ctxs = append(c.nm.ctxs, Ctx{ID: child, Parent: ctx, SiteBCI: bci, Method: callee.ID})
			c.nm.calls[ukey{ctx, bci}] = CallInfo{Inlined: child}
			// The call site itself becomes argument shuffling.
			c.beginDebug(ctx, bci)
			c.asm.Emit(isa.Linear, szLinear, 0, "inline arg setup: "+ins.String())
			c.endDebug()
			c.addUnit(ctx, bci, first, int32(len(c.asm.Finish().Instrs)), 0)
			// Splice the callee body right here.
			if err := c.lowerMethod(child, callee, depth+1); err != nil {
				return err
			}
			return nil
		}
		if entry, ok := c.opts.CompiledEntries[callee.ID]; ok {
			c.nm.calls[ukey{ctx, bci}] = CallInfo{Inlined: -1, Direct: entry}
			c.beginDebug(ctx, bci)
			c.asm.Emit(isa.Call, szCall, entry, ins.String())
			c.endDebug()
		} else {
			c.nm.calls[ukey{ctx, bci}] = CallInfo{Inlined: -1}
			c.beginDebug(ctx, bci)
			c.asm.Emit(isa.IndirectCall, szCallInd, 0, ins.String()+" (resolution stub)")
			c.endDebug()
		}

	case ins.Op == bytecode.INVOKEDYN:
		c.nm.calls[ukey{ctx, bci}] = CallInfo{Inlined: -1}
		c.beginDebug(ctx, bci)
		c.asm.Emit(isa.Linear, szLinear, 0, "dispatch table load")
		c.asm.Emit(isa.IndirectCall, szCallInd, 0, ins.String())
		c.endDebug()

	case ins.Op.IsReturn():
		if ctx != 0 {
			// Inlined return: jump to the continuation after the call
			// site in the parent context.
			parent := c.nm.ctxs[ctx].Parent
			site := c.nm.ctxs[ctx].SiteBCI
			c.beginDebug(ctx, bci)
			a := c.asm.Emit(isa.Jump, szJmp, 0, "inline return")
			c.endDebug()
			c.fixups = append(c.fixups, branchFixup{instrAddr: a, ctx: parent, bci: site + 1})
		} else {
			c.beginDebug(ctx, bci)
			c.asm.Emit(isa.Linear, szEpilogue, 0, "epilogue")
			c.asm.Emit(isa.Ret, szRet, 0, ins.String())
			c.endDebug()
		}

	case ins.Op == bytecode.ATHROW:
		c.beginDebug(ctx, bci)
		c.asm.Emit(isa.Linear, szLinear, 0, "throw setup")
		c.endDebug()

	default:
		if c.opts.Tier == 2 && elidable(ins.Op) &&
			hashPct(c.opts.Salt, m.ID, ctx, bci) < c.opts.ElidePercent {
			// Optimised away: no native instruction, no debug record.
			c.addUnit(ctx, bci, first, first, 0)
			return nil
		}
		emitDefault()
	}

	c.addUnit(ctx, bci, first, int32(len(c.asm.Finish().Instrs)), condAddr)
	return nil
}

func (c *compiler) shouldInline(callee *bytecode.Method, depth int) bool {
	if c.opts.Tier != 2 || callee == nil {
		return false
	}
	if depth >= c.opts.InlineMaxDepth {
		return false
	}
	if len(callee.Code) > c.opts.InlineMaxCode {
		return false
	}
	if callee.ID == c.nm.ctxs[0].Method {
		return false // no recursive inlining into self
	}
	return true
}

// patch resolves branch fixups to unit start addresses.
func (c *compiler) patch() error {
	for _, f := range c.fixups {
		u, ok := c.nm.UnitFor(f.ctx, f.bci)
		if !ok {
			return fmt.Errorf("jit: fixup to missing unit ctx%d bci%d", f.ctx, f.bci)
		}
		instrs := c.asm.Finish().Instrs
		var target uint64
		if int(u.First) < len(instrs) {
			target = instrs[u.First].Addr
		} else {
			target = c.asm.PC()
		}
		c.asm.PatchTarget(f.instrAddr, target)
	}
	return nil
}
