package jit

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
)

const jitSrc = `
method T.leaf(2) returns int {
    iload 0
    iload 1
    iadd
    ireturn
}

method T.fun(2) returns int {
    iload 0
    ifeq Lelse
    iload 1
    iconst 1
    iadd
    istore 1
    goto Ljoin
Lelse:
    iload 1
    iconst 2
    isub
    istore 1
Ljoin:
    iload 0
    iload 1
    invokestatic T.leaf
    ireturn
}

method T.main(0) {
    iconst 1
    iconst 7
    invokestatic T.fun
    pop
    return
}
entry T.main
`

func compileOne(t *testing.T, name string, opts Options) (*bytecode.Program, *NativeMethod) {
	t.Helper()
	p := bytecode.MustAssemble(jitSrc)
	m := p.MethodByName(name)
	nm, err := Compile(p, m.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, nm
}

func TestCompileC1Structure(t *testing.T) {
	p, nm := compileOne(t, "T.fun", DefaultC1(meta.CodeCacheBase, nil))
	if nm.Tier != 1 {
		t.Fatal("tier")
	}
	if err := nm.Meta.Validate(); err != nil {
		t.Fatal(err)
	}
	fun := p.MethodByName("T.fun")
	// Every bytecode has a unit; C1 never elides.
	for pc := int32(0); pc < int32(len(fun.Code)); pc++ {
		u, ok := nm.UnitFor(0, pc)
		if !ok {
			t.Fatalf("no unit for bci %d", pc)
		}
		if u.First == u.Last {
			t.Errorf("C1 elided bci %d", pc)
		}
	}
	// The conditional has a CondBranch instruction at its recorded addr.
	ca := nm.CondAddrAt(0, 1)
	ins := nm.Meta.Code.At(ca)
	if ins == nil || ins.Kind != isa.CondBranch {
		t.Fatalf("cond addr %#x resolves to %+v", ca, ins)
	}
	// Its target is the native address of bci 7 (Lelse).
	if ins.Target != nm.AddrOf(0, 7) {
		t.Errorf("branch target %#x, want %#x", ins.Target, nm.AddrOf(0, 7))
	}
	// No inlining at C1: the call site is a resolution stub (indirect).
	ci, ok := nm.CallAt(0, 13)
	if !ok || ci.Inlined >= 0 || ci.Direct != 0 {
		t.Errorf("C1 call info: %+v", ci)
	}
}

func TestCompileDirectCallBinding(t *testing.T) {
	p := bytecode.MustAssemble(jitSrc)
	leaf := p.MethodByName("T.leaf")
	lnm, err := Compile(p, leaf.ID, DefaultC1(meta.CodeCacheBase, nil))
	if err != nil {
		t.Fatal(err)
	}
	entries := map[bytecode.MethodID]uint64{leaf.ID: lnm.EntryAddr()}
	fun := p.MethodByName("T.fun")
	opts := DefaultC1(meta.CodeCacheBase+0x10000, entries)
	fnm, err := Compile(p, fun.ID, opts)
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := fnm.CallAt(0, 13)
	if !ok || ci.Direct != lnm.EntryAddr() {
		t.Errorf("direct binding: %+v", ci)
	}
	// The call instruction's target points at the callee blob.
	u, _ := fnm.UnitFor(0, 13)
	call := fnm.Meta.Code.Instrs[u.Last-1]
	if call.Kind != isa.Call || call.Target != lnm.EntryAddr() {
		t.Errorf("call instr: %+v", call)
	}
}

func TestCompileC2Inlining(t *testing.T) {
	p, nm := compileOne(t, "T.fun", DefaultC2(meta.CodeCacheBase, nil))
	ci, ok := nm.CallAt(0, 13)
	if !ok || ci.Inlined < 0 {
		t.Fatalf("leaf should inline at C2: %+v", ci)
	}
	child := nm.CtxInfo(ci.Inlined)
	leaf := p.MethodByName("T.leaf")
	if child.Method != leaf.ID || child.Parent != 0 || child.SiteBCI != 13 {
		t.Errorf("inline ctx: %+v", child)
	}
	if len(nm.Meta.Inlined) != 1 || nm.Meta.Inlined[0] != leaf.ID {
		t.Errorf("inlined list: %v", nm.Meta.Inlined)
	}
	// Inlined units exist with two-frame debug chains.
	u, ok := nm.UnitFor(ci.Inlined, 0)
	if !ok {
		t.Fatal("no unit for inlined bci 0")
	}
	rec, ok := nm.Meta.DebugAt(nm.Meta.Code.Instrs[u.First].Addr)
	if !ok {
		t.Fatal("no debug record for inlined instr")
	}
	if len(rec.Frames) != 2 {
		t.Fatalf("inline frames: %v", rec.Frames)
	}
	if rec.Frames[0].Method != p.MethodByName("T.fun").ID || rec.Frames[0].PC != 13 {
		t.Errorf("outer frame: %v", rec.Frames[0])
	}
	if rec.Frames[1].Method != leaf.ID || rec.Frames[1].PC != 0 {
		t.Errorf("inner frame: %v", rec.Frames[1])
	}
}

func TestDebugRecordsCoverEveryInstruction(t *testing.T) {
	for _, tier := range []int{1, 2} {
		var opts Options
		if tier == 1 {
			opts = DefaultC1(meta.CodeCacheBase, nil)
		} else {
			opts = DefaultC2(meta.CodeCacheBase, nil)
		}
		_, nm := compileOne(t, "T.fun", opts)
		if len(nm.Meta.Debug) != len(nm.Meta.Code.Instrs) {
			t.Fatalf("tier %d: %d records for %d instrs",
				tier, len(nm.Meta.Debug), len(nm.Meta.Code.Instrs))
		}
		for i, rec := range nm.Meta.Debug {
			if rec.Addr != nm.Meta.Code.Instrs[i].Addr {
				t.Fatalf("tier %d: record %d misaligned", tier, i)
			}
		}
	}
}

func TestC2ElisionIsDeterministicAndBounded(t *testing.T) {
	_, nm1 := compileOne(t, "T.fun", DefaultC2(meta.CodeCacheBase, nil))
	_, nm2 := compileOne(t, "T.fun", DefaultC2(meta.CodeCacheBase, nil))
	if len(nm1.Meta.Code.Instrs) != len(nm2.Meta.Code.Instrs) {
		t.Fatal("C2 compilation is not deterministic")
	}
	elided := 0
	for _, u := range nm1.Units() {
		if u.First == u.Last {
			elided++
		}
	}
	if elided > len(nm1.Units())/2 {
		t.Errorf("implausibly many elisions: %d of %d", elided, len(nm1.Units()))
	}
	// Elided units must be value-shuffling instructions only.
	p := bytecode.MustAssemble(jitSrc)
	fun := p.MethodByName("T.fun")
	for _, u := range nm1.Units() {
		if u.First == u.Last && u.Ctx == 0 {
			if op := fun.Code[u.BCI].Op; op.IsControl() {
				t.Errorf("control instruction %s elided", op)
			}
		}
	}
}

func TestAddrOfElidedFallsThrough(t *testing.T) {
	// AddrOf on an elided unit must return the next emitted address so
	// branch targets to it stay meaningful.
	_, nm := compileOne(t, "T.fun", DefaultC2(meta.CodeCacheBase, nil))
	for _, u := range nm.Units() {
		addr := nm.AddrOf(u.Ctx, u.BCI)
		if addr < nm.Meta.Code.Base() || addr > nm.Meta.Code.Limit() {
			t.Fatalf("AddrOf(ctx%d,%d) = %#x outside blob", u.Ctx, u.BCI, addr)
		}
	}
}

func TestCompileRejectsBadTier(t *testing.T) {
	p := bytecode.MustAssemble(jitSrc)
	if _, err := Compile(p, p.Methods[0].ID, Options{Tier: 3}); err == nil {
		t.Fatal("tier 3 accepted")
	}
	if _, err := Compile(p, 99, DefaultC1(0, nil)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTableswitchLowersToIndirectJump(t *testing.T) {
	src := `
method T.sw(1) returns int {
    iload 0
    tableswitch 0 default=Ld [La Lb]
La:
    iconst 1
    ireturn
Lb:
    iconst 2
    ireturn
Ld:
    iconst 0
    ireturn
}
method T.main(0) {
    iconst 0
    invokestatic T.sw
    pop
    return
}
entry T.main
`
	p := bytecode.MustAssemble(src)
	m := p.MethodByName("T.sw")
	nm, err := Compile(p, m.ID, DefaultC1(meta.CodeCacheBase, nil))
	if err != nil {
		t.Fatal(err)
	}
	u, _ := nm.UnitFor(0, 1)
	last := nm.Meta.Code.Instrs[u.Last-1]
	if last.Kind != isa.IndirectJump {
		t.Errorf("switch lowered to %v", last.Kind)
	}
}
