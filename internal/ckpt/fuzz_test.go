package ckpt

import (
	"bytes"
	"testing"
)

// FuzzOpen drives the checkpoint decoder with arbitrary bytes: it must
// never panic, and whenever it accepts an input, re-sealing the returned
// payload must reproduce that input exactly (the format has no slack
// bytes, so accept implies canonical).
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(Seal(nil))
	f.Add(Seal([]byte("seed payload")))
	f.Add(bytes.Repeat([]byte{0xFF}, headerLen+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Seal(payload), data) {
			t.Fatalf("accepted non-canonical input: %d bytes", len(data))
		}
	})
}
