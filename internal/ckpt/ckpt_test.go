package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		sealed := Seal(payload)
		got, err := Open(sealed)
		if err != nil {
			t.Fatalf("Open(Seal(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	sealed := Seal([]byte("the quick brown fox"))

	cases := map[string][]byte{
		"empty":      {},
		"short":      sealed[:headerLen],
		"truncated":  sealed[:len(sealed)-1],
		"trailing":   append(append([]byte{}, sealed...), 0x00),
		"bad magic":  append([]byte("NOTCKPT\n"), sealed[len(Magic):]...),
		"zeroed len": func() []byte { c := append([]byte{}, sealed...); c[len(Magic)+4] ^= 0xFF; return c }(),
	}
	for name, data := range cases {
		if _, err := Open(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}

	// A single flipped payload bit must fail the CRC.
	flipped := append([]byte{}, sealed...)
	flipped[headerLen+3] ^= 0x01
	if _, err := Open(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: want ErrCorrupt, got %v", err)
	}

	// An unknown version is an error but not ErrCorrupt: the file may be
	// fine, this build just cannot read it.
	future := append([]byte{}, sealed...)
	future[len(Magic)] = 99
	if _, err := Open(future); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("future version: want a non-corrupt error, got %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.ckpt")
	payload := []byte("checkpoint payload")
	if err := WriteFile(path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadFile: %q, %v", got, err)
	}

	// Missing files surface as os.IsNotExist, not ErrCorrupt: the caller
	// distinguishes "no checkpoint yet" from "checkpoint damaged".
	_, err = ReadFile(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: want not-exist, got %v", err)
	}

	// A torn write (simulated by truncating the file) is ErrCorrupt.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn file: want ErrCorrupt, got %v", err)
	}
}
