// Package ckpt frames checkpoint payloads for crash-safe persistence: a
// fixed magic, a format version, the payload length, the payload, and a
// CRC32 seal over everything before it. Open rejects any file that is
// truncated, trailing-garbage-extended, bit-flipped, or from an unknown
// version, so a reader never acts on a torn or foreign checkpoint — it
// falls back to a full run instead (DESIGN.md §11).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"jportal/internal/fsatomic"
	"jportal/internal/iofault"
)

// Magic identifies a JPortal checkpoint file. The trailing newline makes
// accidental text-mode corruption (CRLF translation) detectable.
const Magic = "JPCKPT1\n"

// Version is the current checkpoint format version. Open only accepts
// files whose header carries a version it knows how to decode.
const Version = 1

// ErrCorrupt reports a checkpoint file that is structurally invalid:
// wrong magic, torn length, payload/CRC mismatch, or trailing garbage.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

// headerLen is magic + u32 version + u64 payload length.
const headerLen = len(Magic) + 4 + 8

// maxPayload bounds the declared payload length so a torn length field
// cannot drive a multi-gigabyte allocation before the CRC check.
const maxPayload = 1 << 30

// Seal frames payload into the on-disk checkpoint format.
func Seal(payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// Open validates a sealed checkpoint and returns its payload. Every
// structural failure returns an error wrapping ErrCorrupt; an unknown
// version is reported distinctly (still an error, but a forward-compat
// signal rather than corruption).
func Open(data []byte) ([]byte, error) {
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame", ErrCorrupt, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint32(data[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("ckpt: unsupported checkpoint version %d (this build reads version %d)", ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(Magic)+4:])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: declared payload length %d exceeds limit", ErrCorrupt, plen)
	}
	want := headerLen + int(plen) + 4
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, frame declares %d", ErrCorrupt, len(data), want)
	}
	body := data[:len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return data[headerLen : headerLen+int(plen)], nil
}

// WriteFile seals payload and writes it crash-atomically to path.
func WriteFile(path string, payload []byte) error {
	return WriteFileFS(iofault.OS, path, payload)
}

// WriteFileFS is WriteFile over an explicit filesystem, so the coordinator
// can persist its durable state through the storage fault injector.
func WriteFileFS(fsys iofault.FS, path string, payload []byte) error {
	return fsatomic.WriteFileFS(fsys, path, Seal(payload), 0o644)
}

// ReadFile reads and validates a sealed checkpoint file, returning the
// payload. Missing-file errors pass through unwrapped (os.IsNotExist
// works); structural failures wrap ErrCorrupt.
func ReadFile(path string) ([]byte, error) {
	return ReadFileFS(iofault.OS, path)
}

// ReadFileFS is ReadFile over an explicit filesystem.
func ReadFileFS(fsys iofault.FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Open(data)
}
