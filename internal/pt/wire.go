package pt

import (
	"io"

	"jportal/internal/source"
)

// The wire framing is the neutral one in internal/source (the records are
// a source-independent struct dump); these wrappers bind it to the PT
// traits so records validate against the PT packet vocabulary. The bytes
// are identical to what this package wrote before the source layer
// existed.

// ErrMalformed tags wire records whose decoded fields fail validation —
// hostile lengths and impossible gaps are rejected at the trust boundary
// instead of reaching the decoder.
var ErrMalformed = source.ErrMalformed

// ValidateItem rejects items whose fields no well-formed PT encoder
// produces: an unknown packet kind, a TNT length beyond MaxTNTBits (a
// hostile length field must never drive downstream loops or allocation),
// or a loss gap that ends before it starts.
func ValidateItem(it *Item) error { return traits.ValidateItem(it) }

// AppendItem appends the wire encoding of one item (a tagged record) to
// dst and returns the extended slice. It is the unit the chunked archive
// frames trace chunks with; WriteTrace uses the same records.
func AppendItem(dst []byte, it *Item) []byte { return source.AppendItem(dst, it) }

// DecodeItem decodes one item record from the front of src, returning the
// item and the number of bytes consumed. Records that decode but fail
// ValidateItem are rejected with ErrMalformed.
func DecodeItem(src []byte) (Item, int, error) { return source.DecodeItem(src, traits) }

// WriteTrace serialises a core trace to w.
func WriteTrace(w io.Writer, t *CoreTrace) error { return source.WriteTrace(w, t) }

// ReadTrace deserialises a core trace from r.
func ReadTrace(r io.Reader) (*CoreTrace, error) { return source.ReadTrace(r, traits) }
