package pt

// encoder turns logical trace events into packets, applying PT's
// compression: TNT bits are buffered and packed (up to 6 bits in a short
// 1-byte-payload packet, up to 47 in a long packet), and TIP/FUP addresses
// are suffix-compressed against the last IP emitted.
type encoder struct {
	pendingBits  uint64
	pendingNBits uint8
	lastIP       uint64
	haveLastIP   bool
}

// wire-format sizing. The header byte carries the kind; payloads follow.
const (
	psbWireLen = 16
	tscWireLen = 8
)

// ipWireLen computes the encoded size of an IP-bearing packet given the
// last-IP compression state: PT sends only the differing low-order bytes
// (2, 4, 6 or 8 of them) when the high-order bytes match the previous IP.
func (e *encoder) ipWireLen(ip uint64) uint8 {
	if !e.haveLastIP {
		return 1 + 8
	}
	diff := ip ^ e.lastIP
	switch {
	case diff>>16 == 0:
		return 1 + 2
	case diff>>32 == 0:
		return 1 + 4
	case diff>>48 == 0:
		return 1 + 6
	default:
		return 1 + 8
	}
}

// flushTNT converts the pending TNT bits into a packet, or returns false if
// none are pending.
func (e *encoder) flushTNT() (Packet, bool) {
	if e.pendingNBits == 0 {
		return Packet{}, false
	}
	p := Packet{Kind: KTNT, Bits: e.pendingBits, NBits: e.pendingNBits}
	if e.pendingNBits <= 6 {
		p.WireLen = 1 + 1 // short TNT
	} else {
		p.WireLen = 8 // long TNT
	}
	e.pendingBits, e.pendingNBits = 0, 0
	return p, true
}

// tnt appends one branch bit; it returns a completed packet when the buffer
// fills to 47 bits.
func (e *encoder) tnt(taken bool) (Packet, bool) {
	if taken {
		e.pendingBits |= 1 << uint(e.pendingNBits)
	}
	e.pendingNBits++
	if e.pendingNBits == MaxTNTBits {
		return e.flushTNT()
	}
	return Packet{}, false
}

// ip builds an IP-bearing packet of the given kind, updating compression
// state.
func (e *encoder) ip(kind Kind, addr uint64) Packet {
	p := Packet{Kind: kind, IP: addr, WireLen: e.ipWireLen(addr)}
	e.lastIP = addr
	e.haveLastIP = true
	return p
}

// tsc builds a timestamp packet.
func (e *encoder) tsc(t uint64) Packet {
	return Packet{Kind: KTSC, TSC: t, WireLen: tscWireLen}
}

// psb builds a synchronisation packet and resets IP compression, as real PT
// decoders resynchronise at PSBs.
func (e *encoder) psb() Packet {
	e.haveLastIP = false
	return Packet{Kind: KPSB, WireLen: psbWireLen}
}

// reset drops all compression state (used after data loss).
func (e *encoder) reset() {
	e.pendingBits, e.pendingNBits = 0, 0
	e.haveLastIP = false
}
