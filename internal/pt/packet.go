// Package pt is a software model of the Intel Processor Trace packet
// protocol (paper §2): the packet kinds JPortal consumes (PGE, PGD, TNT,
// TIP, FUP, TSC, PSB), the compression PT applies (TNT bit packing, TIP
// instruction-pointer suffix compression), per-core ring buffers whose
// bounded export bandwidth loses data exactly the way the paper describes
// (22-54% under small buffers), and a binary wire format used to measure
// trace sizes.
//
// The paper's algorithms never touch silicon; they consume packets. This
// model reproduces the packet-level properties those algorithms must cope
// with, which is what makes the reproduction meaningful on machines without
// PT hardware.
//
// pt is the collector-side half of the "intel-pt" trace source: the
// neutral packet/item/trace types live in internal/source (pt's names are
// aliases kept for the package's vocabulary), and internal/ptdecode
// registers the full Source. pt deliberately does not import ptdecode, so
// the decode-side can depend on these types freely.
package pt

import "jportal/internal/source"

// Kind identifies a trace packet type.
type Kind = source.Kind

const (
	// KPGE marks packet generation enable: tracing begins at IP.
	KPGE Kind = iota
	// KPGD marks packet generation disable: tracing ends at IP.
	KPGD
	// KTIP carries the target of an indirect branch (call*, jmp*, ret).
	KTIP
	// KFUP carries the source IP of an asynchronous event or a resync
	// point after data loss.
	KFUP
	// KTNT carries 1..47 taken/not-taken bits, oldest bit first.
	KTNT
	// KTSC carries a timestamp.
	KTSC
	// KPSB is a synchronisation boundary.
	KPSB
)

// MaxTNTBits is the capacity of a long TNT packet.
const MaxTNTBits = 47

// Packet is one decoded trace packet.
type Packet = source.Packet

// Item is one element of an exported trace: either a packet or a gap marker
// recording a data-loss episode (the model of a perf_record_aux record with
// the truncated flag, paper §4).
type Item = source.Item

// CoreTrace is everything exported from one core's trace buffer, in order.
type CoreTrace = source.CoreTrace

// traits is the PT packet vocabulary as the neutral layers see it.
var traits = &source.Traits{
	Name:       source.DefaultID,
	MaxKind:    KPSB,
	TimeMask:   1 << KTSC,
	SyncMask:   1 << KPSB,
	TNTMask:    1 << KTNT,
	MaxTNTBits: MaxTNTBits,
	KindNames:  []string{"PGE", "PGD", "TIP", "FUP", "TNT", "TSC", "PSB"},
}

// Traits describes the PT packet vocabulary (which kinds carry time, which
// synchronise, what validates) to the source-independent layers.
func Traits() *source.Traits { return traits }

// KindString names a PT packet kind ("PGE", "TNT", ...).
func KindString(k Kind) string { return traits.KindString(k) }

// PacketString renders a PT packet for diagnostics.
func PacketString(p *Packet) string { return traits.PacketString(p) }
