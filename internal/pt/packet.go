// Package pt is a software model of the Intel Processor Trace packet
// protocol (paper §2): the packet kinds JPortal consumes (PGE, PGD, TNT,
// TIP, FUP, TSC, PSB), the compression PT applies (TNT bit packing, TIP
// instruction-pointer suffix compression), per-core ring buffers whose
// bounded export bandwidth loses data exactly the way the paper describes
// (22-54% under small buffers), and a binary wire format used to measure
// trace sizes.
//
// The paper's algorithms never touch silicon; they consume packets. This
// model reproduces the packet-level properties those algorithms must cope
// with, which is what makes the reproduction meaningful on machines without
// PT hardware.
package pt

import "fmt"

// Kind identifies a trace packet type.
type Kind uint8

const (
	// KPGE marks packet generation enable: tracing begins at IP.
	KPGE Kind = iota
	// KPGD marks packet generation disable: tracing ends at IP.
	KPGD
	// KTIP carries the target of an indirect branch (call*, jmp*, ret).
	KTIP
	// KFUP carries the source IP of an asynchronous event or a resync
	// point after data loss.
	KFUP
	// KTNT carries 1..47 taken/not-taken bits, oldest bit first.
	KTNT
	// KTSC carries a timestamp.
	KTSC
	// KPSB is a synchronisation boundary.
	KPSB
)

func (k Kind) String() string {
	switch k {
	case KPGE:
		return "PGE"
	case KPGD:
		return "PGD"
	case KTIP:
		return "TIP"
	case KFUP:
		return "FUP"
	case KTNT:
		return "TNT"
	case KTSC:
		return "TSC"
	case KPSB:
		return "PSB"
	}
	return fmt.Sprintf("pkt#%d", uint8(k))
}

// MaxTNTBits is the capacity of a long TNT packet.
const MaxTNTBits = 47

// Packet is one decoded trace packet.
type Packet struct {
	Kind Kind
	// IP is the address payload of PGE/PGD/TIP/FUP.
	IP uint64
	// Bits holds TNT bits, oldest in bit 0; NBits of them are valid.
	Bits  uint64
	NBits uint8
	// TSC is the timestamp payload of TSC packets.
	TSC uint64
	// WireLen is the encoded size in bytes (set by the encoder; used for
	// buffer accounting and trace-size measurements).
	WireLen uint8
}

// TNTBit returns bit i (0 = oldest) of a TNT packet.
func (p *Packet) TNTBit(i int) bool { return (p.Bits>>uint(i))&1 == 1 }

func (p Packet) String() string {
	switch p.Kind {
	case KTIP, KFUP, KPGE, KPGD:
		return fmt.Sprintf("%s(%#x)", p.Kind, p.IP)
	case KTNT:
		s := make([]byte, p.NBits)
		for i := range s {
			if p.TNTBit(i) {
				s[i] = '1'
			} else {
				s[i] = '0'
			}
		}
		return fmt.Sprintf("TNT(%s)", s)
	case KTSC:
		return fmt.Sprintf("TSC(%d)", p.TSC)
	}
	return p.Kind.String()
}

// Item is one element of an exported trace: either a packet or a gap marker
// recording a data-loss episode (the model of a perf_record_aux record with
// the truncated flag, paper §4).
type Item struct {
	// Gap is true for loss markers.
	Gap bool
	// Packet is valid when !Gap.
	Packet Packet
	// LostBytes, GapStart and GapEnd describe the loss episode when Gap.
	LostBytes        uint64
	GapStart, GapEnd uint64
}

// CoreTrace is everything exported from one core's trace buffer, in order.
type CoreTrace struct {
	Core  int
	Items []Item
}

// Bytes returns the exported payload size in bytes (gaps excluded).
func (t *CoreTrace) Bytes() uint64 {
	var n uint64
	for i := range t.Items {
		if !t.Items[i].Gap {
			n += uint64(t.Items[i].Packet.WireLen)
		}
	}
	return n
}

// LostBytes returns the total bytes dropped in loss episodes.
func (t *CoreTrace) LostBytes() uint64 {
	var n uint64
	for i := range t.Items {
		if t.Items[i].Gap {
			n += t.Items[i].LostBytes
		}
	}
	return n
}
