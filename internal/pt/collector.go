package pt

import "jportal/internal/source"

// Config sets the collection parameters that the paper's evaluation varies.
// It is the neutral collector configuration — every source's collector
// shares the same knobs.
type Config = source.CollectorConfig

// DefaultConfig mirrors the paper's default setting (128MB per-core buffer).
func DefaultConfig() Config { return source.DefaultCollectorConfig() }

// Collector models the per-core PT hardware plus the exporter thread: it
// accepts logical branch events from the VM, encodes them into packets,
// stores them in a bounded ring, and drains the ring at a bounded rate.
// It satisfies the VM's NativeTracer interface.
type Collector struct {
	cfg   Config
	cores []coreState

	// GenBytes is the total bytes generated (exported + lost).
	GenBytes uint64

	// sink, when set, receives drained items incrementally instead of
	// letting them accumulate in the per-core traces (streaming export).
	sink      ChunkSink
	sinkFlush int
}

// ChunkSink receives items drained from one core's trace buffer, in export
// order. The slice is freshly allocated per call and may be retained. The
// collector invokes the sink synchronously from whatever goroutine drives
// it (the VM's execution loop), so a sink must be fast or hand off.
type ChunkSink = source.ChunkSink

// DefaultSinkFlushItems is the per-core chunk size used when SetSink is
// given a non-positive flush bound.
const DefaultSinkFlushItems = source.DefaultSinkFlushItems

// SetSink switches the collector to streaming export: drained items are
// delivered to sink in chunks of at most flushItems items (<= 0 means
// DefaultSinkFlushItems) instead of accumulating in memory until Finish.
// In sink mode Finish flushes the remainder through the sink and returns
// CoreTraces that carry only the core numbers, with nil Items. Set the
// sink before the run starts; switching mid-run would reorder the stream.
func (c *Collector) SetSink(flushItems int, sink ChunkSink) {
	if flushItems <= 0 {
		flushItems = DefaultSinkFlushItems
	}
	c.sink = sink
	c.sinkFlush = flushItems
}

type coreState struct {
	enc          encoder
	ring         ring
	trace        CoreTrace
	lastTSC      uint64
	lastDrainTSC uint64
	curTSC       uint64
	sincePSB     uint64
	// drainMilli carries the fractional drain budget between Advance
	// calls (the exporter's bandwidth is sub-byte per cycle).
	drainMilli uint64
	// lastGapEnd monotonizes loss episodes per core.
	lastGapEnd uint64
	// needResync requests a PSB/TSC/FUP preamble before the next packet
	// after a loss episode.
	needResync bool
	// exported counts drained payload bytes (gap markers excluded), in
	// both accumulate and sink mode.
	exported uint64
	// pendingOut buffers drained items awaiting a sink flush (sink mode
	// only).
	pendingOut []Item
}

type ring struct {
	capBytes  uint64
	usedBytes uint64
	// q holds packets and in-band gap markers in generation order; gap
	// markers occupy no buffer space (they model perf_record_aux sideband
	// records, which are not stored in the AUX area).
	q         []Item
	inLoss    bool
	lossStart uint64
	lostBytes uint64
	// lostBits counts TNT bits dropped individually during a loss episode
	// (they never became packets); folded into lostBytes at gap close.
	lostBits uint64
}

// NewCollector creates a collector for ncores cores.
func NewCollector(cfg Config, ncores int) *Collector {
	c := &Collector{cfg: cfg, cores: make([]coreState, ncores)}
	for i := range c.cores {
		c.cores[i].ring.capBytes = cfg.BufBytes
	}
	return c
}

// NumCores returns the core count.
func (c *Collector) NumCores() int { return len(c.cores) }

// push tries to enqueue p on core cs; on overflow it records/extends a loss
// episode instead. A loss episode persists until the exporter has drained
// the buffer to half capacity — the hysteresis models perf reading the AUX
// area in chunks, which is why real PT loses long spans rather than
// isolated packets (paper §1: "an arbitrary number of execution periods,
// each at an arbitrary length").
func (c *Collector) push(cs *coreState, p Packet, tsc uint64) {
	r := &cs.ring
	full := r.usedBytes+uint64(p.WireLen) > r.capBytes
	resumeAt := r.capBytes * uint64(c.cfg.ResumePercent) / 100
	if full || (r.inLoss && r.usedBytes > resumeAt) {
		if !r.inLoss {
			r.inLoss = true
			r.lossStart = tsc
			if r.lossStart < cs.lastGapEnd {
				r.lossStart = cs.lastGapEnd
			}
			r.lostBytes = 0
		}
		r.lostBytes += uint64(p.WireLen)
		c.GenBytes += uint64(p.WireLen)
		return
	}
	if r.inLoss {
		// Loss episode ends: record the gap, reset compression, and
		// request a resync preamble.
		c.closeGap(cs, tsc)
	}
	if cs.needResync {
		cs.needResync = false
		psb := cs.enc.psb()
		tscP := cs.enc.tsc(tsc)
		cs.lastTSC = tsc
		cs.sincePSB = 0
		// The resync preamble itself must fit; it is small relative to
		// the buffer so we account for it without re-checking capacity.
		r.q = append(r.q, Item{Packet: psb}, Item{Packet: tscP})
		r.usedBytes += uint64(psb.WireLen) + uint64(tscP.WireLen)
		c.GenBytes += uint64(psb.WireLen) + uint64(tscP.WireLen)
		// Re-encode the packet: compression state was reset, so an
		// IP-bearing packet needs its full width.
		if p.Kind == KTIP || p.Kind == KFUP || p.Kind == KPGE || p.Kind == KPGD {
			p = cs.enc.ip(p.Kind, p.IP)
		}
	}
	r.q = append(r.q, Item{Packet: p})
	r.usedBytes += uint64(p.WireLen)
	c.GenBytes += uint64(p.WireLen)
	cs.sincePSB += uint64(p.WireLen)
}

// closeGap records the pending loss episode ending at endTSC and arms the
// resync preamble.
func (c *Collector) closeGap(cs *coreState, endTSC uint64) {
	r := &cs.ring
	if endTSC <= r.lossStart {
		endTSC = r.lossStart + 1
	}
	// The gap marker travels through the ring FIFO so the exported
	// stream stays in generation order even when packets generated before
	// the loss drain afterwards.
	r.q = append(r.q, Item{
		Gap: true, LostBytes: r.lostBytes + (r.lostBits+7)/8,
		GapStart: r.lossStart, GapEnd: endTSC,
	})
	cs.lastGapEnd = endTSC
	r.inLoss = false
	r.lostBits = 0
	cs.enc.reset()
	cs.needResync = true
}

// housekeeping emits periodic TSC and PSB packets before a payload packet.
func (c *Collector) housekeeping(cs *coreState, tsc uint64) {
	if tsc-cs.lastTSC >= c.cfg.TSCPeriodCycles {
		if p, ok := cs.enc.flushTNT(); ok {
			c.push(cs, p, tsc)
		}
		cs.lastTSC = tsc
		c.push(cs, cs.enc.tsc(tsc), tsc)
	}
	if cs.sincePSB >= c.cfg.PSBPeriodBytes {
		if p, ok := cs.enc.flushTNT(); ok {
			c.push(cs, p, tsc)
		}
		cs.sincePSB = 0
		c.push(cs, cs.enc.psb(), tsc)
	}
}

// flushPending flushes buffered TNT bits (before any non-TNT packet, to
// preserve event order).
func (c *Collector) flushPending(cs *coreState, tsc uint64) {
	if p, ok := cs.enc.flushTNT(); ok {
		c.push(cs, p, tsc)
	}
}

// PGE records a packet-generation-enable event on core.
func (c *Collector) PGE(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.ip(KPGE, ip), tsc)
}

// PGD records a packet-generation-disable event on core.
func (c *Collector) PGD(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.ip(KPGD, ip), tsc)
}

// TNT records a conditional-branch outcome at branchAddr on core.
func (c *Collector) TNT(core int, branchAddr uint64, taken bool, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	if cs.ring.inLoss {
		// Try to end the loss episode with a FUP anchoring the TNT bits
		// that follow; if the buffer is still full the bit itself is
		// lost.
		c.push(cs, cs.enc.ip(KFUP, branchAddr), tsc)
		if cs.ring.inLoss {
			cs.ring.lostBits++
			return
		}
	} else if cs.needResync {
		// After a loss the decoder cannot attribute raw TNT bits; emit a
		// FUP carrying the branch address first so decoding can resume
		// here (the push path prepends the PSB/TSC preamble).
		c.push(cs, cs.enc.ip(KFUP, branchAddr), tsc)
	}
	if p, full := cs.enc.tnt(taken); full {
		c.push(cs, p, tsc)
	}
	cs.curTSC = tsc
}

// TIP records an indirect transfer to target on core.
func (c *Collector) TIP(core int, target, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.ip(KTIP, target), tsc)
}

// FUP records the source IP of an asynchronous event (e.g. an exception).
func (c *Collector) FUP(core int, ip, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.housekeeping(cs, tsc)
	c.flushPending(cs, tsc)
	c.push(cs, cs.enc.ip(KFUP, ip), tsc)
}

// SwitchMark records a context-switch boundary: PT emits a PIP packet at
// the CR3 write; we model it as a forced timestamp so offline thread
// segregation has a precise anchor (paper §6).
func (c *Collector) SwitchMark(core int, tsc uint64) {
	cs := &c.cores[core]
	c.Advance(core, tsc)
	c.flushPending(cs, tsc)
	cs.lastTSC = tsc
	c.push(cs, cs.enc.tsc(tsc), tsc)
}

// Advance drains the core's ring according to the export bandwidth and the
// elapsed cycles. The VM calls it implicitly via every event and explicitly
// at scheduling points.
func (c *Collector) Advance(core int, tsc uint64) {
	cs := &c.cores[core]
	if tsc <= cs.lastDrainTSC {
		return
	}
	prev := cs.lastDrainTSC
	cs.drainMilli += (tsc - prev) * c.cfg.DrainBytesPerKCycle
	cs.lastDrainTSC = tsc
	budget := cs.drainMilli / 1000
	cs.drainMilli %= 1000
	r := &cs.ring
	before := r.usedBytes
	n := 0
	for n < len(r.q) {
		it := &r.q[n]
		if it.Gap {
			c.export(core, cs, *it)
			n++
			continue
		}
		w := uint64(it.Packet.WireLen)
		if budget < w {
			break
		}
		budget -= w
		r.usedBytes -= w
		c.export(core, cs, *it)
		n++
	}
	r.q = r.q[n:]
	// Close an open loss episode once the exporter has caught up, even if
	// nothing new is being generated. The episode's end time is when the
	// buffer crossed the resume threshold — interpolated within the drain
	// interval, since the exporter works linearly in time.
	resumeAt := r.capBytes * uint64(c.cfg.ResumePercent) / 100
	if r.inLoss && r.usedBytes <= resumeAt {
		end := tsc
		if drained := before - r.usedBytes; drained > 0 && before > resumeAt {
			needed := before - resumeAt
			end = prev + (tsc-prev)*needed/drained
		}
		c.closeGap(cs, end)
	}
}

// export hands one drained item onward: appended to the accumulated trace
// in batch mode, buffered toward the next sink chunk in streaming mode.
func (c *Collector) export(core int, cs *coreState, it Item) {
	if !it.Gap {
		cs.exported += uint64(it.Packet.WireLen)
	}
	if c.sink == nil {
		cs.trace.Items = append(cs.trace.Items, it)
		return
	}
	cs.pendingOut = append(cs.pendingOut, it)
	if len(cs.pendingOut) >= c.sinkFlush {
		// Cut chunks at PSB boundaries: once the chunk is full, hold it
		// until the next sync packet and cut just before it, so each chunk
		// the stages exchange is a self-contained PSB-to-PSB decode unit
		// (the decoder resynchronises at chunk start instead of mid-span).
		// PSBPeriodBytes guarantees sync packets keep coming; the 4× slack
		// bounds the chunk if a loss episode delays one.
		if !it.Gap && it.Packet.Kind == KPSB && len(cs.pendingOut) > 1 {
			psb := cs.pendingOut[len(cs.pendingOut)-1]
			cs.pendingOut = cs.pendingOut[:len(cs.pendingOut)-1]
			c.flushSink(core, cs)
			cs.pendingOut = append(cs.pendingOut, psb)
		} else if len(cs.pendingOut) >= c.sinkFlush*4 {
			c.flushSink(core, cs)
		}
	}
}

// flushSink delivers the core's buffered items to the sink.
func (c *Collector) flushSink(core int, cs *coreState) {
	if len(cs.pendingOut) == 0 {
		return
	}
	items := cs.pendingOut
	cs.pendingOut = nil
	c.sink(core, items)
}

// Finish flushes everything (the exporter catches up after the run) and
// returns the per-core traces. In sink mode the remainder is delivered
// through the sink and the returned traces carry only core numbers.
func (c *Collector) Finish(tsc uint64) []CoreTrace {
	out := make([]CoreTrace, len(c.cores))
	for i := range c.cores {
		cs := &c.cores[i]
		if p, ok := cs.enc.flushTNT(); ok {
			c.push(cs, p, tsc)
		}
		if cs.ring.inLoss {
			c.closeGap(cs, tsc)
			cs.needResync = false
		}
		for _, it := range cs.ring.q {
			c.export(i, cs, it)
		}
		cs.ring.q = nil
		cs.ring.usedBytes = 0
		if c.sink != nil {
			c.flushSink(i, cs)
		}
		cs.trace.Core = i
		out[i] = cs.trace
	}
	return out
}

// GeneratedBytes returns the total bytes generated (exported + lost).
func (c *Collector) GeneratedBytes() uint64 { return c.GenBytes }

// ExportedBytes returns total payload bytes drained so far across cores.
func (c *Collector) ExportedBytes() uint64 {
	var n uint64
	for i := range c.cores {
		n += c.cores[i].exported
	}
	return n
}
