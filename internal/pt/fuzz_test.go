package pt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadTrace checks the trace reader never panics on corrupt input and
// that valid traces round-trip.
func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace.
	cfg := DefaultConfig()
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x7f40_0000_0000, 0)
	for i := 0; i < 50; i++ {
		c.TIP(0, uint64(i+1)<<30, uint64(i)*9)
		c.TNT(0, 0x7f40_0000_0040, i%2 == 0, uint64(i)*9+1)
	}
	tr := c.Finish(1000)[0]
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("JPTRACE1garbage"))
	f.Add(hostileTrace(Item{Packet: Packet{Kind: KTNT, NBits: 255, Bits: ^uint64(0)}}))
	f.Add(hostileTrace(Item{Packet: Packet{Kind: Kind(0x7f), IP: 0xdead}}))
	f.Add(hostileTrace(Item{Gap: true, LostBytes: 1 << 60, GapStart: 100, GapEnd: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must validate and re-serialize.
		for i := range got.Items {
			if err := ValidateItem(&got.Items[i]); err != nil {
				t.Fatalf("accepted trace holds invalid item %d: %v", i, err)
			}
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace does not re-serialize: %v", err)
		}
	})
}

// hostileTrace wire-encodes one (possibly invalid) item inside an otherwise
// well-formed trace file. The magic and end tag mirror the neutral wire
// framing in internal/source.
func hostileTrace(it Item) []byte {
	out := append([]byte(nil), "JPTRACE1"...)
	out = append(out, 0, 0, 0, 0) // core 0
	out = AppendItem(out, &it)
	return append(out, 0x03) // end tag
}

// FuzzDecodeItem checks the single-record decoder never panics and never
// accepts an item that fails validation — the bounds contract a hostile
// length field must not get past.
func FuzzDecodeItem(f *testing.F) {
	var it Item
	f.Add(AppendItem(nil, &Item{Packet: Packet{Kind: KTSC, TSC: 42, WireLen: 8}}))
	it = Item{Packet: Packet{Kind: KTNT, NBits: 255, Bits: ^uint64(0)}}
	f.Add(AppendItem(nil, &it))
	it = Item{Packet: Packet{Kind: Kind(0xff)}}
	f.Add(AppendItem(nil, &it))
	it = Item{Gap: true, GapStart: 7, GapEnd: 3}
	f.Add(AppendItem(nil, &it))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, n, err := DecodeItem(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeItem consumed %d of %d bytes", n, len(data))
		}
		if err := ValidateItem(&got); err != nil {
			t.Fatalf("DecodeItem accepted invalid item: %v", err)
		}
	})
}

// TestDecodeItemRejectsHostileFields pins the validation behaviour the
// fuzz corpus exercises: hostile lengths and inverted gaps are ErrMalformed.
func TestDecodeItemRejectsHostileFields(t *testing.T) {
	cases := []Item{
		{Packet: Packet{Kind: KTNT, NBits: MaxTNTBits + 1}},
		{Packet: Packet{Kind: KTNT, NBits: 255}},
		{Packet: Packet{Kind: Kind(0x7f)}},
		{Gap: true, GapStart: 100, GapEnd: 99},
	}
	for i, it := range cases {
		enc := AppendItem(nil, &it)
		if _, _, err := DecodeItem(enc); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: DecodeItem err = %v, want ErrMalformed", i, err)
		}
		if _, err := ReadTrace(bytes.NewReader(hostileTrace(it))); err == nil {
			t.Errorf("case %d: ReadTrace accepted hostile item", i)
		}
	}
	// A maximal but legal TNT packet must still pass.
	ok := Item{Packet: Packet{Kind: KTNT, NBits: MaxTNTBits, Bits: ^uint64(0) >> (64 - MaxTNTBits)}}
	if _, _, err := DecodeItem(AppendItem(nil, &ok)); err != nil {
		t.Errorf("legal TNT rejected: %v", err)
	}
}
