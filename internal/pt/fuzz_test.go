package pt

import (
	"bytes"
	"testing"
)

// FuzzReadTrace checks the trace reader never panics on corrupt input and
// that valid traces round-trip.
func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace.
	cfg := DefaultConfig()
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x7f40_0000_0000, 0)
	for i := 0; i < 50; i++ {
		c.TIP(0, uint64(i+1)<<30, uint64(i)*9)
		c.TNT(0, 0x7f40_0000_0040, i%2 == 0, uint64(i)*9+1)
	}
	tr := c.Finish(1000)[0]
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("JPTRACE1garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-serialize.
		var out bytes.Buffer
		if err := WriteTrace(&out, got); err != nil {
			t.Fatalf("accepted trace does not re-serialize: %v", err)
		}
	})
}
