package pt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTNTPacking(t *testing.T) {
	var e encoder
	// 5 bits: short TNT.
	for i := 0; i < 5; i++ {
		if p, full := e.tnt(i%2 == 0); full {
			t.Fatalf("premature flush at bit %d: %v", i, p)
		}
	}
	p, ok := e.flushTNT()
	if !ok || p.NBits != 5 || p.WireLen != 2 {
		t.Fatalf("short TNT: %+v", p)
	}
	for i := 0; i < 5; i++ {
		if p.TNTBit(i) != (i%2 == 0) {
			t.Errorf("bit %d = %v", i, p.TNTBit(i))
		}
	}
}

func TestTNTLongPacketAutoFlush(t *testing.T) {
	var e encoder
	var flushed *Packet
	for i := 0; i < MaxTNTBits; i++ {
		if p, full := e.tnt(true); full {
			flushed = &p
			if i != MaxTNTBits-1 {
				t.Fatalf("flush at bit %d", i)
			}
		}
	}
	if flushed == nil {
		t.Fatal("long TNT never flushed")
	}
	if flushed.NBits != MaxTNTBits || flushed.WireLen != 8 {
		t.Errorf("long TNT: %+v", flushed)
	}
	if _, ok := e.flushTNT(); ok {
		t.Error("encoder should be empty after auto flush")
	}
}

func TestIPCompression(t *testing.T) {
	var e encoder
	p1 := e.ip(KTIP, 0x7f40_0000_1000)
	if p1.WireLen != 9 {
		t.Errorf("first IP should be full width, got %d", p1.WireLen)
	}
	p2 := e.ip(KTIP, 0x7f40_0000_1040) // same upper 6 bytes
	if p2.WireLen != 3 {
		t.Errorf("near IP should compress to 3 bytes, got %d", p2.WireLen)
	}
	p3 := e.ip(KTIP, 0x7f40_0100_0000) // upper 4 bytes match
	if p3.WireLen != 5 {
		t.Errorf("mid-range IP should compress to 5, got %d", p3.WireLen)
	}
	p4 := e.ip(KTIP, 0x0000_0000_2000) // only the top two bytes match
	if p4.WireLen != 7 {
		t.Errorf("far IP should take a 6-byte suffix, got %d", p4.WireLen)
	}
	e.psb()
	p5 := e.ip(KTIP, 0x0000_0000_2000)
	if p5.WireLen != 9 {
		t.Errorf("after PSB compression must reset, got %d", p5.WireLen)
	}
}

func TestTNTBitsQuickRoundTrip(t *testing.T) {
	// Property: bits fed to the encoder come back in order.
	f := func(bits []bool) bool {
		if len(bits) > MaxTNTBits-1 {
			bits = bits[:MaxTNTBits-1]
		}
		var e encoder
		for _, b := range bits {
			if _, full := e.tnt(b); full {
				return false
			}
		}
		p, ok := e.flushTNT()
		if len(bits) == 0 {
			return !ok
		}
		if !ok || int(p.NBits) != len(bits) {
			return false
		}
		for i, b := range bits {
			if p.TNTBit(i) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollectorLosslessExportsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufBytes = 1 << 20
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x1000, 0)
	for i := 0; i < 1000; i++ {
		tsc := uint64(i * 10)
		c.TIP(0, 0x7f40_0000_0000+uint64(i)*64, tsc)
		c.TNT(0, 0x7f40_0000_0040, i%3 == 0, tsc+1)
	}
	c.PGD(0, 0x1000, 10010)
	traces := c.Finish(10020)
	tr := traces[0]
	if tr.LostBytes() != 0 {
		t.Fatalf("lost %d bytes in a huge buffer", tr.LostBytes())
	}
	var tips, bits int
	for _, it := range tr.Items {
		if it.Gap {
			t.Fatal("unexpected gap")
		}
		switch it.Packet.Kind {
		case KTIP:
			tips++
		case KTNT:
			bits += int(it.Packet.NBits)
		}
	}
	if tips != 1000 || bits != 1000 {
		t.Errorf("tips=%d bits=%d, want 1000 each", tips, bits)
	}
	if tr.Bytes() != c.GenBytes {
		t.Errorf("exported %d != generated %d without loss", tr.Bytes(), c.GenBytes)
	}
}

func TestCollectorOverflowCreatesGap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufBytes = 256 // tiny
	cfg.DrainBytesPerKCycle = 1
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x1000, 0)
	for i := 0; i < 2000; i++ {
		// Far-apart IPs defeat compression: ~9 bytes per packet.
		c.TIP(0, uint64(i)<<33, uint64(i)*3)
	}
	traces := c.Finish(6000)
	tr := traces[0]
	if tr.LostBytes() == 0 {
		t.Fatal("expected loss with a 256-byte buffer")
	}
	gaps := 0
	var prevEnd uint64
	for _, it := range tr.Items {
		if !it.Gap {
			continue
		}
		gaps++
		if it.GapEnd <= it.GapStart {
			t.Errorf("gap has non-positive span: %+v", it)
		}
		if it.GapStart < prevEnd {
			t.Errorf("gap overlaps previous: start %d < prev end %d", it.GapStart, prevEnd)
		}
		prevEnd = it.GapEnd
	}
	if gaps == 0 {
		t.Fatal("loss without gap markers")
	}
	if tr.Bytes()+tr.LostBytes() != c.GenBytes {
		t.Errorf("accounting: exported %d + lost %d != generated %d",
			tr.Bytes(), tr.LostBytes(), c.GenBytes)
	}
}

func TestCollectorStreamInGenerationOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufBytes = 512
	cfg.DrainBytesPerKCycle = 20
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x1000, 0)
	for i := 0; i < 3000; i++ {
		c.TIP(0, uint64(i)<<33, uint64(i)*5)
	}
	tr := c.Finish(20000)[0]
	// Timestamps along the stream (TSC packets and gap bounds) must be
	// non-decreasing: gaps travel the FIFO with the packets.
	var last uint64
	for _, it := range tr.Items {
		var ts uint64
		switch {
		case it.Gap:
			ts = it.GapStart
		case it.Packet.Kind == KTSC:
			ts = it.Packet.TSC
		default:
			continue
		}
		if ts < last {
			t.Fatalf("stream out of order: %d after %d", ts, last)
		}
		if it.Gap {
			last = it.GapEnd
		} else {
			last = ts
		}
	}
}

func TestCollectorResyncAfterGap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufBytes = 300
	cfg.DrainBytesPerKCycle = 5
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x1000, 0)
	for i := 0; i < 500; i++ {
		c.TIP(0, uint64(i)<<33, uint64(i)*4)
	}
	// Let the buffer drain, then send more: the episode must close and a
	// PSB+TSC preamble must precede the next packet.
	c.Advance(0, 1_000_000)
	c.TIP(0, 0xdead<<33, 1_000_001)
	tr := c.Finish(2_000_000)[0]
	sawGap := false
	for i, it := range tr.Items {
		if it.Gap {
			sawGap = true
			// Find the next packet after the gap: PSB expected.
			for j := i + 1; j < len(tr.Items); j++ {
				if tr.Items[j].Gap {
					continue
				}
				if tr.Items[j].Packet.Kind != KPSB {
					t.Errorf("packet after gap is %v, want PSB", tr.Items[j].Packet.Kind)
				}
				break
			}
			break
		}
	}
	if !sawGap {
		t.Fatal("no gap recorded")
	}
}

func TestWireRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufBytes = 400
	cfg.DrainBytesPerKCycle = 3
	c := NewCollector(cfg, 1)
	c.PGE(0, 0x7f40_0000_0000, 0)
	for i := 0; i < 300; i++ {
		c.TIP(0, uint64(i+1)<<33, uint64(i)*7)
		c.TNT(0, 0x7f40_0000_0040, i%2 == 0, uint64(i)*7+1)
	}
	tr := c.Finish(10000)[0]

	var buf bytes.Buffer
	if err := WriteTrace(&buf, &tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Core != tr.Core || len(got.Items) != len(tr.Items) {
		t.Fatalf("round trip: %d items vs %d", len(got.Items), len(tr.Items))
	}
	for i := range tr.Items {
		if tr.Items[i] != got.Items[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, tr.Items[i], got.Items[i])
		}
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
