package source

import (
	"bytes"
	"strings"
	"testing"

	"jportal/internal/meta"
)

var testTraits = &Traits{
	Name:       "test",
	MaxKind:    3,
	TimeMask:   1<<0 | 1<<1,
	SyncMask:   1 << 1,
	TNTMask:    1 << 2,
	MaxTNTBits: 7,
	KindNames:  []string{"TIME", "SYNC", "TNT", "IP"},
}

func TestTraitsProbes(t *testing.T) {
	tr := testTraits
	for k := Kind(0); k <= tr.MaxKind; k++ {
		if got := tr.IsTime(k); got != (k <= 1) {
			t.Errorf("IsTime(%d) = %v", k, got)
		}
		if got := tr.IsSync(k); got != (k == 1) {
			t.Errorf("IsSync(%d) = %v", k, got)
		}
		if got := tr.IsTNT(k); got != (k == 2) {
			t.Errorf("IsTNT(%d) = %v", k, got)
		}
	}
	// Kinds at or past 64 must not index past the masks.
	if tr.IsTime(64) || tr.IsSync(200) || tr.IsTNT(255) {
		t.Error("mask probe out of range returned true")
	}
}

func TestTraitsValidateAndClassify(t *testing.T) {
	tr := testTraits
	cases := []struct {
		name string
		it   Item
		bad  bool
	}{
		{"ok packet", Item{Packet: Packet{Kind: 3, IP: 0x1000}}, false},
		{"ok tnt", Item{Packet: Packet{Kind: 2, NBits: 7}}, false},
		{"unknown kind", Item{Packet: Packet{Kind: 9}}, true},
		{"truncated kind", Item{Packet: Packet{Kind: tr.TruncatedKind()}}, true},
		{"tnt too long", Item{Packet: Packet{Kind: 2, NBits: 8}}, true},
		{"ok gap", Item{Gap: true, GapStart: 5, GapEnd: 9}, false},
		{"inverted gap", Item{Gap: true, GapStart: 9, GapEnd: 5}, true},
	}
	for _, tc := range cases {
		err := tr.ValidateItem(&tc.it)
		if (err != nil) != tc.bad {
			t.Errorf("%s: ValidateItem err = %v, want bad=%v", tc.name, err, tc.bad)
		}
		if tc.it.Gap {
			continue
		}
		if _, bad := tr.ClassifyPacket(&tc.it.Packet); bad != tc.bad {
			t.Errorf("%s: ClassifyPacket bad = %v, want %v", tc.name, bad, tc.bad)
		}
	}
}

func TestSkewTimeOnlyTouchesTimeKinds(t *testing.T) {
	tr := testTraits
	p := Packet{Kind: 0, TSC: 100}
	tr.SkewTime(&p, 7)
	if p.TSC != 107 {
		t.Errorf("time packet TSC = %d, want 107", p.TSC)
	}
	p = Packet{Kind: 3, TSC: 100}
	tr.SkewTime(&p, 7)
	if p.TSC != 100 {
		t.Errorf("non-time packet TSC = %d, want 100", p.TSC)
	}
}

func TestWireRoundTrip(t *testing.T) {
	tr := testTraits
	want := CoreTrace{Core: 2, Items: []Item{
		{Packet: Packet{Kind: 1, TSC: 42, WireLen: 16}},
		{Packet: Packet{Kind: 2, Bits: 0x55, NBits: 7, WireLen: 2}},
		{Gap: true, LostBytes: 99, GapStart: 50, GapEnd: 60},
		{Packet: Packet{Kind: 3, IP: 0xdeadbeef, WireLen: 5}},
	}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()), tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Core != want.Core {
		t.Errorf("core: got %d, want %d", got.Core, want.Core)
	}
	if len(got.Items) != len(want.Items) {
		t.Fatalf("items: got %d, want %d", len(got.Items), len(want.Items))
	}
	for i := range want.Items {
		if got.Items[i] != want.Items[i] {
			t.Errorf("item %d: got %+v, want %+v", i, got.Items[i], want.Items[i])
		}
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	tr := testTraits
	bad := CoreTrace{Items: []Item{{Packet: Packet{Kind: 2, NBits: 40}}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, &bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()), tr); err == nil {
		t.Fatal("hostile TNT length survived ReadTrace validation")
	}
}

// fakeSource is registry-test scaffolding; only ID matters.
type fakeSource struct{ id string }

func (f fakeSource) ID() string                                  { return f.id }
func (f fakeSource) Traits() *Traits                             { return testTraits }
func (f fakeSource) NewCollector(CollectorConfig, int) Collector { return nil }
func (f fakeSource) NewDecoder(*meta.Snapshot) Decoder           { return nil }

func TestRegistry(t *testing.T) {
	Register(fakeSource{id: "test-only"})
	s, err := Lookup("test-only")
	if err != nil || s.ID() != "test-only" {
		t.Fatalf("Lookup(test-only) = %v, %v", s, err)
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "test-only") {
		t.Fatalf("Lookup(nope) err = %v, want error naming registered sources", err)
	}
	found := false
	for _, id := range Registered() {
		if id == "test-only" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Registered() = %v missing test-only", Registered())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeSource{id: "test-only"})
}
