package source

import (
	"errors"
	"fmt"
)

// Traits is the per-source packet vocabulary the neutral layers consult:
// which kinds exist, which carry timestamps, which are synchronisation
// boundaries, and what validates. All checks are branch-free bit-mask
// probes so they are safe on the carve/stitch hot path.
type Traits struct {
	// Name is the source's registry ID ("intel-pt", "riscv-etrace").
	Name string
	// MaxKind is the highest valid packet kind.
	MaxKind Kind
	// TimeMask marks kinds whose TSC field carries a timestamp update.
	TimeMask uint64
	// SyncMask marks kinds that are synchronisation boundaries (the
	// decoder may resume after a fault at one, and chunk cuts prefer one).
	SyncMask uint64
	// TNTMask marks kinds carrying packed branch bits.
	TNTMask uint64
	// MaxTNTBits caps NBits for TNT-class packets: a hostile length field
	// must never drive downstream loops or allocation.
	MaxTNTBits uint8
	// KindNames names each kind for diagnostics, indexed by Kind.
	KindNames []string
}

// IsTime reports whether kind k carries a timestamp payload.
func (t *Traits) IsTime(k Kind) bool { return k < 64 && t.TimeMask>>k&1 == 1 }

// IsSync reports whether kind k is a synchronisation boundary.
func (t *Traits) IsSync(k Kind) bool { return k < 64 && t.SyncMask>>k&1 == 1 }

// IsTNT reports whether kind k carries packed branch bits.
func (t *Traits) IsTNT(k Kind) bool { return k < 64 && t.TNTMask>>k&1 == 1 }

// ErrMalformed tags wire records whose decoded fields fail validation —
// hostile lengths and impossible gaps are rejected at the trust boundary
// instead of reaching the decoder.
var ErrMalformed = errors.New("source: malformed record")

// ValidateItem rejects items whose fields no well-formed encoder of this
// source produces: an unknown packet kind, a branch-bits length beyond
// MaxTNTBits, or a loss gap that ends before it starts.
func (t *Traits) ValidateItem(it *Item) error {
	if it.Gap {
		if it.GapEnd < it.GapStart {
			return fmt.Errorf("%w: gap end %d before start %d", ErrMalformed, it.GapEnd, it.GapStart)
		}
		return nil
	}
	p := &it.Packet
	if p.Kind > t.MaxKind {
		return fmt.Errorf("%w: unknown packet kind %#x", ErrMalformed, uint8(p.Kind))
	}
	if t.IsTNT(p.Kind) && p.NBits > t.MaxTNTBits {
		return fmt.Errorf("%w: TNT length %d exceeds %d", ErrMalformed, p.NBits, t.MaxTNTBits)
	}
	return nil
}

// ClassifyPacket is the decoder-side twin of ValidateItem: it reports
// whether a packet is malformed and which FaultKind describes it, without
// allocating an error. Decoders call it per packet before dispatching.
func (t *Traits) ClassifyPacket(p *Packet) (FaultKind, bool) {
	if p.Kind > t.MaxKind {
		return FaultUnknownPacket, true
	}
	if t.IsTNT(p.Kind) && p.NBits > t.MaxTNTBits {
		return FaultBadTNTLen, true
	}
	return 0, false
}

// SkewTime is the fault injector's clock-skew hook: it offsets the
// timestamp of time-bearing packets, leaving every other kind untouched
// (the way an unsynchronised per-core clock skews everything that core
// stamps).
func (t *Traits) SkewTime(p *Packet, skew uint64) {
	if t.IsTime(p.Kind) {
		p.TSC += skew
	}
}

// TruncatedKind is the fault injector's truncation hook: the kind value a
// record cut short on the wire decodes to. It is invalid for every source
// (MaxKind is always below it), so validation catches it downstream.
func (t *Traits) TruncatedKind() Kind { return ^Kind(0) }

// KindString names a kind for diagnostics.
func (t *Traits) KindString(k Kind) string {
	if int(k) < len(t.KindNames) && t.KindNames[k] != "" {
		return t.KindNames[k]
	}
	return fmt.Sprintf("pkt#%d", uint8(k))
}

// PacketString renders a packet for diagnostics.
func (t *Traits) PacketString(p *Packet) string {
	switch {
	case t.IsTNT(p.Kind):
		s := make([]byte, p.NBits)
		for i := range s {
			if p.TNTBit(i) {
				s[i] = '1'
			} else {
				s[i] = '0'
			}
		}
		return fmt.Sprintf("%s(%s)", t.KindString(p.Kind), s)
	case t.IsTime(p.Kind) && p.IP == 0:
		return fmt.Sprintf("%s(%d)", t.KindString(p.Kind), p.TSC)
	case p.IP != 0:
		return fmt.Sprintf("%s(%#x)", t.KindString(p.Kind), p.IP)
	}
	return t.KindString(p.Kind)
}
