package source

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/meta"
)

// EventKind classifies decoder output events. The event stream is the
// neutral boundary between a source's decoder and the bytecode-level
// layers (package core): every backend decodes its packets into exactly
// these events.
type EventKind uint8

const (
	// EvTemplate is a dispatch into an interpreter opcode template.
	EvTemplate EventKind = iota
	// EvTemplateTNT is a conditional outcome inside the current branch
	// template (interpreted mode).
	EvTemplateTNT
	// EvJITRange reports that native instructions [First, Last) of Blob
	// executed.
	EvJITRange
	// EvStub is a transfer into a runtime adapter stub.
	EvStub
	// EvGap is a data-loss episode.
	EvGap
	// EvTime is a timestamp update.
	EvTime
	// EvEnable and EvDisable delimit tracing.
	EvEnable
	EvDisable
	// EvDesync reports that the walker lost sync (packet/code mismatch,
	// typically following loss or imprecise metadata) and re-anchored.
	EvDesync
	// EvFault reports a malformed packet: the decoder recorded a typed
	// DecodeFault, discarded its walking state and is skipping to the next
	// synchronisation packet (graceful degradation, DESIGN.md §10).
	EvFault
)

func (k EventKind) String() string {
	switch k {
	case EvTemplate:
		return "template"
	case EvTemplateTNT:
		return "template-tnt"
	case EvJITRange:
		return "jit-range"
	case EvStub:
		return "stub"
	case EvGap:
		return "gap"
	case EvTime:
		return "time"
	case EvEnable:
		return "enable"
	case EvDisable:
		return "disable"
	case EvDesync:
		return "desync"
	case EvFault:
		return "fault"
	}
	return fmt.Sprintf("ev#%d", uint8(k))
}

// FaultKind classifies malformed-packet faults.
type FaultKind uint8

const (
	// FaultUnknownPacket is a packet whose kind byte names no packet type
	// of its source (truncated or corrupted record).
	FaultUnknownPacket FaultKind = iota
	// FaultBadTNTLen is a branch-bits packet whose length field exceeds the
	// source's MaxTNTBits — a hostile length that must not drive allocation
	// or bit consumption.
	FaultBadTNTLen
	// FaultBadGap is a loss marker whose end precedes its start.
	FaultBadGap
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnknownPacket:
		return "unknown-packet"
	case FaultBadTNTLen:
		return "bad-tnt-len"
	case FaultBadGap:
		return "bad-gap"
	}
	return fmt.Sprintf("fault#%d", uint8(k))
}

// DecodeFault is the typed record of one malformed packet: instead of
// aborting the core's decode, the decoder logs it, drops its walking state
// and resynchronizes at the next synchronisation packet.
type DecodeFault struct {
	Kind FaultKind
	// TSC is the stream time when the fault was seen (best effort).
	TSC uint64
	// Packet is a copy of the offending packet (zero for gap faults).
	Packet Packet
}

func (f *DecodeFault) Error() string {
	return fmt.Sprintf("source: %s at tsc %d", f.Kind, f.TSC)
}

// Event is one decoded native-level event.
type Event struct {
	Kind EventKind
	// Op is the dispatched opcode for EvTemplate/EvTemplateTNT.
	Op bytecode.Opcode
	// Taken is the branch outcome for EvTemplateTNT.
	Taken bool
	// Blob plus [First, Last) identify executed instructions for
	// EvJITRange.
	Blob        *meta.CompiledMethod
	First, Last int
	// Stub names the adapter for EvStub.
	Stub string
	// TSC is the current timestamp (valid on EvTime; best-effort
	// elsewhere).
	TSC uint64
	// LostBytes/GapStart/GapEnd describe EvGap.
	LostBytes        uint64
	GapStart, GapEnd uint64
}
