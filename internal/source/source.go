// Package source is the ISA-agnostic trace-source layer: the neutral
// packet/item/event vocabulary the reconstruction core consumes, plus the
// TraceSource abstraction — packets in, branch events out — that concrete
// backends (Intel PT in internal/pt + internal/ptdecode, RISC-V E-Trace in
// internal/etrace) implement. A source owns three things:
//
//   - its packet model and wire framing (this package's Item records are a
//     neutral struct dump, validated per source via Traits),
//   - a collector-side encoder the VM's NativeTracer hooks drive, and
//   - a decoder that consumes packets plus the machine-code metadata
//     snapshot and yields the neutral event stream (EvTemplate, EvJITRange,
//     EvGap, ...).
//
// Everything above this layer — carving, stitching, tokenizing,
// reconstruction, recovery, archives, sessions — is source-independent:
// the only per-source knowledge those layers need (which packet kinds
// carry timestamps, which are sync boundaries, what validates) travels as
// a Traits value.
package source

import (
	"fmt"
	"sort"
	"sync"

	"jportal/internal/meta"
)

// Kind identifies a trace packet type. The kind space is per source: kind
// 3 means FUP to Intel PT and something else to another backend. Traits
// carries the per-source interpretation.
type Kind uint8

// Packet is one decoded trace packet, in the neutral in-memory form every
// source decodes its wire format into: addresses are absolute (a source's
// differential or suffix compression shows up only in WireLen), branch
// bits are packed oldest-first, and timestamps are absolute cycle counts.
type Packet struct {
	Kind Kind
	// IP is the address payload of address-bearing packets.
	IP uint64
	// Bits holds packed branch bits, oldest in bit 0; NBits of them are
	// valid.
	Bits  uint64
	NBits uint8
	// TSC is the timestamp payload of time-bearing packets.
	TSC uint64
	// WireLen is the encoded size in bytes (set by the encoder; used for
	// buffer accounting and trace-size measurements).
	WireLen uint8
}

// TNTBit returns bit i (0 = oldest) of a branch-bits packet.
func (p *Packet) TNTBit(i int) bool { return (p.Bits>>uint(i))&1 == 1 }

// Item is one element of an exported trace: either a packet or a gap marker
// recording a data-loss episode (the model of a perf_record_aux record with
// the truncated flag, paper §4).
type Item struct {
	// Gap is true for loss markers.
	Gap bool
	// Packet is valid when !Gap.
	Packet Packet
	// LostBytes, GapStart and GapEnd describe the loss episode when Gap.
	LostBytes        uint64
	GapStart, GapEnd uint64
}

// CoreTrace is everything exported from one core's trace buffer, in order.
type CoreTrace struct {
	Core  int
	Items []Item
}

// Bytes returns the exported payload size in bytes (gaps excluded).
func (t *CoreTrace) Bytes() uint64 {
	var n uint64
	for i := range t.Items {
		if !t.Items[i].Gap {
			n += uint64(t.Items[i].Packet.WireLen)
		}
	}
	return n
}

// LostBytes returns the total bytes dropped in loss episodes.
func (t *CoreTrace) LostBytes() uint64 {
	var n uint64
	for i := range t.Items {
		if t.Items[i].Gap {
			n += t.Items[i].LostBytes
		}
	}
	return n
}

// CollectorConfig sets the collection parameters every source's collector
// shares (the knobs the paper's evaluation varies). A source interprets
// the periods in its own packet vocabulary: TSCPeriodCycles is the
// interval between timestamp packets (whatever the source calls them) and
// PSBPeriodBytes the interval between synchronisation packets.
type CollectorConfig struct {
	// BufBytes is the per-core trace buffer capacity (the paper uses 64MB,
	// 128MB and 256MB).
	BufBytes uint64
	// DrainBytesPerKCycle is the export bandwidth: how many buffered bytes
	// the exporter writes out per thousand cycles. When the generation
	// rate exceeds this, the buffer fills and data is lost.
	DrainBytesPerKCycle uint64
	// TSCPeriodCycles is the interval between timestamp packets.
	TSCPeriodCycles uint64
	// PSBPeriodBytes is the interval between synchronisation packets.
	PSBPeriodBytes uint64
	// ResumePercent is the loss-episode hysteresis: once the buffer
	// overflows, packets keep dropping until the exporter drains it below
	// this percentage of capacity (perf reads the AUX area in chunks, so
	// real losses span whole chunks). 100 disables the hysteresis.
	ResumePercent int
}

// DefaultCollectorConfig mirrors the paper's default setting (128MB
// per-core buffer).
func DefaultCollectorConfig() CollectorConfig {
	return CollectorConfig{
		BufBytes:            128 << 20,
		DrainBytesPerKCycle: 150,
		TSCPeriodCycles:     2048,
		PSBPeriodBytes:      4096,
		ResumePercent:       85,
	}
}

// WithBufMB returns cfg with the buffer size set to mb megabytes.
func (c CollectorConfig) WithBufMB(mb int) CollectorConfig {
	c.BufBytes = uint64(mb) << 20
	return c
}

// Validate rejects configurations a collector cannot meaningfully run
// with. A zero buffer loses every packet, a zero drain rate never exports,
// and zero periods would emit a housekeeping packet before every payload
// packet (an infinite regress in the real hardware's terms).
func (c CollectorConfig) Validate() error {
	if c.BufBytes == 0 {
		return fmt.Errorf("source: BufBytes must be positive (a zero-capacity buffer drops all trace data)")
	}
	if c.DrainBytesPerKCycle == 0 {
		return fmt.Errorf("source: DrainBytesPerKCycle must be positive (a zero export rate never drains the buffer)")
	}
	if c.TSCPeriodCycles == 0 {
		return fmt.Errorf("source: TSCPeriodCycles must be positive")
	}
	if c.PSBPeriodBytes == 0 {
		return fmt.Errorf("source: PSBPeriodBytes must be positive")
	}
	if c.ResumePercent < 1 || c.ResumePercent > 100 {
		return fmt.Errorf("source: ResumePercent must be in [1,100], got %d", c.ResumePercent)
	}
	return nil
}

// ChunkSink receives items drained from one core's trace buffer, in export
// order. The slice is freshly allocated per call and may be retained. A
// collector invokes the sink synchronously from whatever goroutine drives
// it (the VM's execution loop), so a sink must be fast or hand off.
type ChunkSink func(core int, items []Item)

// DefaultSinkFlushItems is the per-core chunk size used when SetSink is
// given a non-positive flush bound.
const DefaultSinkFlushItems = 256

// Collector is the collector-side half of a source: it accepts logical
// branch events from the VM (the method set embeds vm.NativeTracer
// structurally, so any Collector can be installed as the machine's
// tracer), encodes them into the source's packets, buffers them in a
// bounded per-core ring, and drains the ring at a bounded rate.
type Collector interface {
	PGE(core int, ip, tsc uint64)
	PGD(core int, ip, tsc uint64)
	TNT(core int, branchAddr uint64, taken bool, tsc uint64)
	TIP(core int, target, tsc uint64)
	FUP(core int, ip, tsc uint64)
	SwitchMark(core int, tsc uint64)
	Advance(core int, tsc uint64)

	// SetSink switches the collector to streaming export: drained items
	// are delivered to sink in chunks of at most flushItems items (<= 0
	// means DefaultSinkFlushItems) instead of accumulating in memory until
	// Finish. Set the sink before the run starts.
	SetSink(flushItems int, sink ChunkSink)
	// Finish flushes everything (the exporter catches up after the run)
	// and returns the per-core traces. In sink mode the remainder is
	// delivered through the sink and the returned traces carry only core
	// numbers.
	Finish(tsc uint64) []CoreTrace
	// NumCores returns the core count.
	NumCores() int
	// GeneratedBytes returns the total bytes generated (exported + lost).
	GeneratedBytes() uint64
	// ExportedBytes returns total payload bytes drained so far.
	ExportedBytes() uint64
}

// Decoder is the decode-side half of a source: it consumes the source's
// packet stream (typically one thread's stitched stream) plus the
// metadata snapshot and yields the neutral event stream. Both built-in
// decoders are thin packet dispatchers over the shared Walker, so the
// stats and checkpoint surface is uniform.
type Decoder interface {
	// Decode processes a whole item stream and returns the events. The
	// returned slice aliases the decoder's reused output buffer: it is
	// valid until the next Decode/DecodeChunk/Flush call.
	Decode(items []Item) []Event
	// DecodeChunk processes one chunk of an item stream. The decoder keeps
	// its walking state across calls, so feeding a stream in chunks of any
	// size yields, concatenated with the final Flush, exactly the events
	// Decode yields for the whole stream at once.
	DecodeChunk(items []Item) []Event
	// Flush terminates the stream: the pending JIT instruction range (if
	// any) is emitted. Call once after the last DecodeChunk.
	Flush() []Event
	// Stats returns the decoder's degradation counters.
	Stats() DecodeStats
	// FaultLog returns the retained typed fault records.
	FaultLog() []DecodeFault
	// ExportState snapshots the decoder's walking state between chunks
	// (checkpointing); RestoreState rebuilds it against the restoring
	// process's snapshot.
	ExportState() WalkerState
	RestoreState(WalkerState) error
}

// Source is one trace ISA backend: packet format, collector and decoder.
type Source interface {
	// ID is the stable archive identity (e.g. "intel-pt", "riscv-etrace").
	ID() string
	// Traits describes the packet vocabulary to the neutral layers.
	Traits() *Traits
	// NewCollector creates the collector-side encoder for ncores cores.
	NewCollector(cfg CollectorConfig, ncores int) Collector
	// NewDecoder creates a decoder over the given metadata snapshot.
	NewDecoder(snap *meta.Snapshot) Decoder
}

// DefaultID is the source archives without a source field default to: the
// Intel PT reference implementation predates the source layer, so every
// legacy archive is a PT archive.
const DefaultID = "intel-pt"

var (
	regMu    sync.RWMutex
	registry = map[string]Source{}
)

// Register adds a source to the registry; sources register themselves in
// init(). Registering two sources under one ID is a programming error.
func Register(s Source) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.ID()]; dup {
		panic("source: duplicate registration of " + s.ID())
	}
	registry[s.ID()] = s
}

// Lookup resolves a source ID ("" means DefaultID). The error names the
// registered sources, so a missing import surfaces clearly.
func Lookup(id string) (Source, error) {
	if id == "" {
		id = DefaultID
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if s, ok := registry[id]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("source: unknown trace source %q (registered: %v)", id, registeredLocked())
}

// Default returns the reference source. It panics if the PT backend has
// not been linked in — import jportal/internal/ptdecode.
func Default() Source {
	s, err := Lookup(DefaultID)
	if err != nil {
		panic(err)
	}
	return s
}

// Registered lists the registered source IDs, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}

func registeredLocked() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
