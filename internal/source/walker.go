package source

import (
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
	"jportal/internal/meta"
)

// Walker is the source-independent half of a decoder: given the
// machine-code metadata snapshot, it reconstructs the native-level control
// flow — walking compiled blobs along linear code, direct jumps and calls,
// consuming one branch bit per conditional and one indirect target per
// indirect transfer, and classifying interpreter-template dispatches
// (paper Fig 2e / Fig 3d). A concrete decoder (internal/ptdecode,
// internal/etrace) embeds a Walker and reduces its packet vocabulary to
// the driver methods: Time, Enable, Disable, TNTBits, Anchor/ArmAnchor,
// Tip, Sync, Gap, Fault. Everything those methods share — desync and
// fault bookkeeping, the reused output buffer, checkpointing — lives
// here, so both backends degrade and checkpoint identically.
type Walker struct {
	snap *meta.Snapshot

	// out is the reused output buffer: truncated (not reallocated) at
	// Begin, so the steady state emits into warm memory. undelivered
	// tracks events emitted but not yet returned to the caller — the
	// checkpoint quiescence signal.
	out         []Event
	undelivered bool

	mode  mode
	curOp bytecode.Opcode // last dispatched template op

	blob       *meta.CompiledMethod
	idx        int // next instruction index within blob
	rangeStart int // first index of the pending range, -1 if none

	bits  uint64
	nbits int

	tsc uint64

	// armed is set by ArmAnchor (a FUP-class packet): the next indirect
	// target is an asynchronous transfer (exception, OSR) and must not be
	// matched against a pending indirect instruction.
	armed bool

	// skipSync is set after a malformed packet: every packet until the
	// next synchronisation packet (or a loss gap, which is its own resync
	// point) is discarded — the stream position is untrustworthy until a
	// synchronisation boundary.
	skipSync bool

	// Desyncs counts re-anchoring events (diagnostics).
	Desyncs int
	// DroppedBits counts branch bits discarded with no position to
	// attribute them to (diagnostics).
	DroppedBits int
	// FaultCount counts malformed packets (all of Faults, plus any past
	// the retention cap).
	FaultCount int
	// Faults retains the first maxFaultRecords typed fault records.
	Faults []DecodeFault
	// SkippedPackets and SkippedBytes measure the spans discarded while
	// skipping to a synchronisation packet after a fault.
	SkippedPackets int
	SkippedBytes   uint64
}

type mode uint8

const (
	modeIdle mode = iota
	modeTemplate
	modeJIT
)

// maxFaultRecords bounds the retained fault list; FaultCount keeps
// counting past it.
const maxFaultRecords = 256

// DecodeStats is the uniform degradation-counter surface of a decoder.
type DecodeStats struct {
	Desyncs        int
	DroppedBits    int
	FaultCount     int
	SkippedPackets int
	SkippedBytes   uint64
}

// Init prepares the walker over the given metadata snapshot. A concrete
// decoder calls it once at construction.
func (w *Walker) Init(snap *meta.Snapshot) {
	w.snap = snap
	w.rangeStart = -1
}

// Begin truncates the output buffer; call at the start of every decode
// batch (Decode/DecodeChunk/Flush).
func (w *Walker) Begin() { w.out = w.out[:0] }

// Deliver returns the batch's events and marks them delivered (the
// checkpoint quiescence signal). The slice aliases the reused output
// buffer: it is valid until the next Begin.
func (w *Walker) Deliver() []Event {
	w.undelivered = false
	return w.out
}

// FlushEnd emits the pending JIT instruction range; call when a stream (or
// the final chunk) ends.
func (w *Walker) FlushEnd() { w.flushRange() }

// Stats returns the walker's degradation counters.
func (w *Walker) Stats() DecodeStats {
	return DecodeStats{
		Desyncs:        w.Desyncs,
		DroppedBits:    w.DroppedBits,
		FaultCount:     w.FaultCount,
		SkippedPackets: w.SkippedPackets,
		SkippedBytes:   w.SkippedBytes,
	}
}

// FaultLog returns the retained typed fault records.
func (w *Walker) FaultLog() []DecodeFault { return w.Faults }

// Skipping reports whether the walker is discarding packets while seeking
// a synchronisation boundary after a fault. The concrete decoder consults
// it per packet and either calls Sync (on a sync packet) or SkipPacket.
func (w *Walker) Skipping() bool { return w.skipSync }

// SkipPacket accounts one packet discarded during fault recovery.
func (w *Walker) SkipPacket(wireLen uint8) {
	w.SkippedPackets++
	w.SkippedBytes += uint64(wireLen)
}

// Sync marks a synchronisation boundary: safe to resume after a malformed
// packet.
func (w *Walker) Sync() { w.skipSync = false }

// Gap processes a data-loss episode. Loss is a resync point: the
// collector re-emits a preamble after a gap, so fault recovery stops too.
func (w *Walker) Gap(it *Item) {
	g := *it
	if g.GapEnd < g.GapStart {
		// Inverted loss marker: record the fault but keep the gap —
		// clamped, it still tells the upper layers bytes were lost.
		w.Fault(FaultBadGap, &Packet{})
		g.GapEnd = g.GapStart
	}
	w.flushRange()
	w.emit(Event{Kind: EvGap, LostBytes: g.LostBytes,
		GapStart: g.GapStart, GapEnd: g.GapEnd, TSC: g.GapStart})
	w.reset()
	w.skipSync = false
}

// Time processes a timestamp update.
func (w *Walker) Time(tsc uint64) {
	w.tsc = tsc
	w.emit(Event{Kind: EvTime, TSC: tsc})
}

// TSC returns the walker's current stream time.
func (w *Walker) TSC() uint64 { return w.tsc }

// Enable processes a tracing-enabled packet carrying the resume IP:
// re-anchor there (tracing often resumes mid-compiled-loop where no
// indirect target would otherwise occur).
func (w *Walker) Enable(ip uint64) {
	w.emit(Event{Kind: EvEnable, TSC: w.tsc})
	w.anchor(ip)
}

// Disable processes a tracing-disabled packet.
func (w *Walker) Disable() {
	w.flushRange()
	w.emit(Event{Kind: EvDisable, TSC: w.tsc})
	w.mode = modeIdle
	w.bits, w.nbits = 0, 0
}

// TNTBits queues n packed branch bits (oldest in bit 0) and consumes as
// many as the current mode allows.
func (w *Walker) TNTBits(bits uint64, n int) {
	for i := 0; i < n; i++ {
		if w.nbits >= 64 {
			// Overflow means severe desync; drop oldest.
			w.DroppedBits += w.nbits
			w.desync()
		}
		if bits>>uint(i)&1 == 1 {
			w.bits |= 1 << uint(w.nbits)
		}
		w.nbits++
	}
	w.drainBits()
}

// Anchor re-positions the walker at ip without consuming a transfer.
func (w *Walker) Anchor(ip uint64) { w.anchor(ip) }

// ArmAnchor re-positions the walker at ip and arms the
// asynchronous-transfer flag (FUP semantics: the IP is where execution
// currently is, and the next indirect target — if the pairing packet
// follows — was reached by runtime intervention, not by an indirect
// instruction).
func (w *Walker) ArmAnchor(ip uint64) {
	w.anchor(ip)
	w.armed = true
}

// Unarm clears the asynchronous-transfer flag; the concrete decoder calls
// it for packets that break a pending FUP-class pairing.
func (w *Walker) Unarm() { w.armed = false }

// Tip processes an indirect-transfer target, consuming the armed flag.
func (w *Walker) Tip(target uint64) {
	async := w.armed
	w.armed = false
	w.tip(target, async)
}

// Fault records a typed malformed-packet fault, abandons the walking state
// (whatever was pending can no longer be trusted) and skips forward to the
// next synchronisation boundary.
func (w *Walker) Fault(kind FaultKind, p *Packet) {
	w.FaultCount++
	if len(w.Faults) < maxFaultRecords {
		w.Faults = append(w.Faults, DecodeFault{Kind: kind, TSC: w.tsc, Packet: *p})
	}
	w.SkippedBytes += uint64(p.WireLen)
	w.flushRange()
	w.emit(Event{Kind: EvFault})
	w.reset()
	w.skipSync = true
}

func (w *Walker) emit(e Event) {
	if e.TSC == 0 {
		e.TSC = w.tsc
	}
	w.out = append(w.out, e)
	w.undelivered = true
}

func (w *Walker) reset() {
	w.mode = modeIdle
	w.blob = nil
	w.rangeStart = -1
	w.bits, w.nbits = 0, 0
}

func (w *Walker) desync() {
	w.Desyncs++
	w.flushRange()
	w.emit(Event{Kind: EvDesync})
	w.reset()
}

func (w *Walker) takeBit() bool {
	b := w.bits&1 == 1
	w.bits >>= 1
	w.nbits--
	return b
}

// flushRange emits the pending JIT instruction range.
func (w *Walker) flushRange() {
	if w.rangeStart >= 0 && w.idx > w.rangeStart {
		w.emit(Event{Kind: EvJITRange, Blob: w.blob, First: w.rangeStart, Last: w.idx})
	}
	w.rangeStart = -1
}

// anchor re-positions the walker at ip without consuming a transfer
// (FUP semantics: the IP is where execution currently is).
func (w *Walker) anchor(ip uint64) {
	w.flushRange()
	if w.snap.IsTemplate(ip) {
		if name := w.snap.Stubs.Classify(ip); name != "" {
			w.mode = modeIdle
			return
		}
		if op, ok := w.snap.Templates.Lookup(ip); ok {
			w.mode = modeTemplate
			w.curOp = op
			w.drainBits()
			return
		}
		w.mode = modeIdle
		return
	}
	if blob := w.snap.BlobFor(ip); blob != nil {
		if i := blob.Code.IndexOf(ip); i >= 0 {
			w.mode = modeJIT
			w.blob = blob
			w.idx = i
			w.rangeStart = -1
			w.drainBits()
			return
		}
	}
	w.mode = modeIdle
}

// tip handles an indirect transfer: it first advances the walker to the
// pending indirect instruction (there must be exactly the executed linear
// path in between), then lands at the target. When the target completes a
// FUP-class pairing (async means an exception or OSR transfer), there is
// no indirect instruction to consume: control was ripped away by the
// runtime.
func (w *Walker) tip(target uint64, async bool) {
	if async {
		w.flushRange()
		w.land(target)
		return
	}
	if w.mode == modeJIT {
		// Walk up to the indirect instruction this target resolves.
		w.walk()
		if w.mode == modeJIT {
			if w.idx < len(w.blob.Code.Instrs) && w.blob.Code.Instrs[w.idx].Kind.IsIndirect() {
				// Execute the indirect instruction itself.
				w.extend()
				w.idx++
				w.flushRange()
			} else {
				// The walker is stuck mid-walk (e.g. at a conditional
				// with no bits): metadata/trace mismatch.
				w.desync()
			}
		}
	}
	w.land(target)
}

// land positions execution at a transfer target and classifies it.
func (w *Walker) land(target uint64) {
	if w.snap.IsTemplate(target) {
		w.flushRange()
		if name := w.snap.Stubs.Classify(target); name != "" {
			w.mode = modeIdle
			w.emit(Event{Kind: EvStub, Stub: name})
			return
		}
		if op, ok := w.snap.Templates.Lookup(target); ok {
			w.mode = modeTemplate
			w.curOp = op
			w.emit(Event{Kind: EvTemplate, Op: op})
			return
		}
		w.mode = modeIdle
		return
	}
	if blob := w.snap.BlobFor(target); blob != nil {
		if i := blob.Code.IndexOf(target); i >= 0 {
			w.flushRange()
			w.mode = modeJIT
			w.blob = blob
			w.idx = i
			w.rangeStart = i
			w.walk()
			return
		}
	}
	w.desync()
}

// extend includes the current instruction in the pending range.
func (w *Walker) extend() {
	if w.rangeStart < 0 {
		w.rangeStart = w.idx
	}
}

// jumpTo transfers within/between blobs following a direct target.
func (w *Walker) jumpTo(target uint64) bool {
	w.idx++ // the transfer instruction itself executed
	w.flushRange()
	blob := w.blob
	if !blob.Code.Contains(target) {
		blob = w.snap.BlobFor(target)
	}
	if blob == nil {
		return false
	}
	i := blob.Code.IndexOf(target)
	if i < 0 {
		return false
	}
	w.blob = blob
	w.idx = i
	w.rangeStart = i
	return true
}

// drainBits consumes pending branch bits according to the current mode.
func (w *Walker) drainBits() {
	for w.nbits > 0 {
		switch w.mode {
		case modeTemplate:
			taken := w.takeBit()
			w.emit(Event{Kind: EvTemplateTNT, Op: w.curOp, Taken: taken})
		case modeJIT:
			before := w.nbits
			w.walk()
			if w.nbits == before {
				// walk() could not consume: waiting for an indirect target
				// while bits are pending would be a mismatch, but bits can
				// also simply be buffered ahead; stop here.
				return
			}
		default:
			// No position to attribute bits to (post-loss); drop them.
			w.DroppedBits += w.nbits
			w.bits, w.nbits = 0, 0
			return
		}
	}
}

// walk advances through the current blob while progress is possible without
// further packets.
func (w *Walker) walk() {
	for w.mode == modeJIT {
		if w.idx >= len(w.blob.Code.Instrs) {
			// Fell off the blob end: desync.
			w.desync()
			return
		}
		ins := &w.blob.Code.Instrs[w.idx]
		switch ins.Kind {
		case isa.Linear:
			w.extend()
			w.idx++
		case isa.Jump, isa.Call:
			w.extend()
			if !w.jumpTo(ins.Target) {
				w.desync()
				return
			}
		case isa.CondBranch:
			if w.nbits == 0 {
				return // need more branch bits
			}
			w.extend()
			taken := w.takeBit()
			if taken {
				if !w.jumpTo(ins.Target) {
					w.desync()
					return
				}
			} else {
				w.idx++
			}
		case isa.IndirectCall, isa.IndirectJump, isa.Ret:
			return // need an indirect target
		default:
			w.desync()
			return
		}
	}
}

// WalkerState is the walker's checkpointable state (DESIGN.md §11). It is
// only valid at a chunk boundary where every emitted event has been
// returned to the caller — DecodeChunk always delivers its output, so any
// point between chunks qualifies. The current blob is identified by its
// index in the snapshot's append-only export log (replayed identically on
// resume) with the entry address as a cross-check, never by pointer.
type WalkerState struct {
	Mode       uint8
	CurOp      uint8
	BlobExport int // index into snap.ExportedBlobs(), -1 = no blob
	BlobEntry  uint64
	Idx        int
	RangeStart int
	Bits       uint64
	NBits      int
	TSC        uint64
	FUPArmed   bool
	SkipPSB    bool

	Desyncs        int
	DroppedBits    int
	FaultCount     int
	Faults         []DecodeFault
	SkippedPackets int
	SkippedBytes   uint64
}

// ExportState snapshots the walker between chunks. It panics if called
// with undelivered output events: that is a checkpoint at a non-quiescent
// point, which the Session never does.
func (w *Walker) ExportState() WalkerState {
	if w.undelivered {
		panic("source: ExportState with pending output events")
	}
	st := WalkerState{
		Mode:       uint8(w.mode),
		CurOp:      uint8(w.curOp),
		BlobExport: -1,
		Idx:        w.idx,
		RangeStart: w.rangeStart,
		Bits:       w.bits,
		NBits:      w.nbits,
		TSC:        w.tsc,
		FUPArmed:   w.armed,
		SkipPSB:    w.skipSync,

		Desyncs:        w.Desyncs,
		DroppedBits:    w.DroppedBits,
		FaultCount:     w.FaultCount,
		Faults:         append([]DecodeFault(nil), w.Faults...),
		SkippedPackets: w.SkippedPackets,
		SkippedBytes:   w.SkippedBytes,
	}
	if w.blob != nil {
		st.BlobEntry = w.blob.EntryAddr()
		for i, b := range w.snap.ExportedBlobs() {
			if b == w.blob {
				st.BlobExport = i
				break
			}
		}
	}
	return st
}

// RestoreState rebuilds the walker from a checkpointed state against the
// restoring process's snapshot (whose export log must be a replay of the
// checkpointing process's — the archive resume path guarantees it).
func (w *Walker) RestoreState(st WalkerState) error {
	w.out = nil
	w.mode = mode(st.Mode)
	w.curOp = bytecode.Opcode(st.CurOp)
	w.idx = st.Idx
	w.rangeStart = st.RangeStart
	w.bits = st.Bits
	w.nbits = st.NBits
	w.tsc = st.TSC
	w.armed = st.FUPArmed
	w.skipSync = st.SkipPSB

	w.Desyncs = st.Desyncs
	w.DroppedBits = st.DroppedBits
	w.FaultCount = st.FaultCount
	w.Faults = append([]DecodeFault(nil), st.Faults...)
	w.SkippedPackets = st.SkippedPackets
	w.SkippedBytes = st.SkippedBytes

	w.blob = nil
	if st.BlobEntry != 0 || st.BlobExport >= 0 {
		w.blob = w.resolveBlob(st)
		if w.blob == nil {
			return fmt.Errorf("source: checkpoint references unknown blob (export %d, entry %#x)",
				st.BlobExport, st.BlobEntry)
		}
	}
	return nil
}

// resolveBlob maps a checkpointed blob identity back to a live pointer:
// export-log index first (exact, survives re-exports that shadow an entry
// address), entry-address lookup as the fallback.
func (w *Walker) resolveBlob(st WalkerState) *meta.CompiledMethod {
	if log := w.snap.ExportedBlobs(); st.BlobExport >= 0 && st.BlobExport < len(log) {
		if b := log[st.BlobExport]; b != nil && b.EntryAddr() == st.BlobEntry {
			return b
		}
	}
	return w.snap.BlobFor(st.BlobEntry)
}
