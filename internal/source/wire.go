package source

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The trace file format: a magic header, then a stream of records. Each
// record is a 1-byte tag followed by a fixed-size payload. Packet records
// carry the full Packet struct fields (the in-memory WireLen is recomputed
// on read); gap records carry the loss episode. The format is a neutral
// struct dump — byte-identical for every source — so one framing serves
// all backends; validation is the per-source part, driven by Traits. The
// format is deliberately simple and self-describing enough for tests to
// round-trip traces through disk, and its sizes are what Table 5 reports
// as "TS".

var wireMagic = [8]byte{'J', 'P', 'T', 'R', 'A', 'C', 'E', '1'}

const (
	tagPacket byte = 0x01
	tagGap    byte = 0x02
	tagEnd    byte = 0x03
)

// AppendItem appends the wire encoding of one item (a tagged record) to
// dst and returns the extended slice. It is the unit the chunked archive
// frames trace chunks with; WriteTrace uses the same records.
func AppendItem(dst []byte, it *Item) []byte {
	var buf [28]byte
	if it.Gap {
		buf[0] = tagGap
		binary.LittleEndian.PutUint64(buf[1:9], it.LostBytes)
		binary.LittleEndian.PutUint64(buf[9:17], it.GapStart)
		binary.LittleEndian.PutUint64(buf[17:25], it.GapEnd)
		return append(dst, buf[:25]...)
	}
	p := &it.Packet
	buf[0] = tagPacket
	buf[1] = byte(p.Kind)
	buf[2] = p.NBits
	buf[3] = p.WireLen
	binary.LittleEndian.PutUint64(buf[4:12], p.IP)
	binary.LittleEndian.PutUint64(buf[12:20], p.Bits)
	binary.LittleEndian.PutUint64(buf[20:28], p.TSC)
	return append(dst, buf[:28]...)
}

// DecodeItem decodes one item record from the front of src, returning the
// item and the number of bytes consumed. Records that decode but fail the
// source's validation are rejected with ErrMalformed.
func DecodeItem(src []byte, tr *Traits) (Item, int, error) {
	if len(src) == 0 {
		return Item{}, 0, io.ErrUnexpectedEOF
	}
	switch src[0] {
	case tagGap:
		if len(src) < 25 {
			return Item{}, 0, io.ErrUnexpectedEOF
		}
		it := decodeGapPayload(src[1:25])
		if err := tr.ValidateItem(&it); err != nil {
			return Item{}, 0, err
		}
		return it, 25, nil
	case tagPacket:
		if len(src) < 28 {
			return Item{}, 0, io.ErrUnexpectedEOF
		}
		it := Item{Packet: decodePacketPayload(src[1:28])}
		if err := tr.ValidateItem(&it); err != nil {
			return Item{}, 0, err
		}
		return it, 28, nil
	}
	return Item{}, 0, fmt.Errorf("source: unknown record tag %#x", src[0])
}

func decodeGapPayload(buf []byte) Item {
	return Item{
		Gap:       true,
		LostBytes: binary.LittleEndian.Uint64(buf[0:8]),
		GapStart:  binary.LittleEndian.Uint64(buf[8:16]),
		GapEnd:    binary.LittleEndian.Uint64(buf[16:24]),
	}
}

func decodePacketPayload(buf []byte) Packet {
	return Packet{
		Kind:    Kind(buf[0]),
		NBits:   buf[1],
		WireLen: buf[2],
		IP:      binary.LittleEndian.Uint64(buf[3:11]),
		Bits:    binary.LittleEndian.Uint64(buf[11:19]),
		TSC:     binary.LittleEndian.Uint64(buf[19:27]),
	}
}

// WriteTrace serialises a core trace to w.
func WriteTrace(w io.Writer, t *CoreTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(wireMagic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(t.Core))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec []byte
	for i := range t.Items {
		rec = AppendItem(rec[:0], &t.Items[i])
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(tagEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTrace deserialises a core trace from r, validating every record
// against the source's traits.
func ReadTrace(r io.Reader, tr *Traits) (*CoreTrace, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if [8]byte(hdr[:8]) != wireMagic {
		return nil, errors.New("source: bad trace magic")
	}
	t := &CoreTrace{Core: int(binary.LittleEndian.Uint32(hdr[8:12]))}
	var buf [27]byte
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagEnd:
			return t, nil
		case tagGap:
			if _, err := io.ReadFull(br, buf[:24]); err != nil {
				return nil, err
			}
			it := decodeGapPayload(buf[:24])
			if err := tr.ValidateItem(&it); err != nil {
				return nil, err
			}
			t.Items = append(t.Items, it)
		case tagPacket:
			if _, err := io.ReadFull(br, buf[:27]); err != nil {
				return nil, err
			}
			it := Item{Packet: decodePacketPayload(buf[:27])}
			if err := tr.ValidateItem(&it); err != nil {
				return nil, err
			}
			t.Items = append(t.Items, it)
		default:
			return nil, fmt.Errorf("source: unknown record tag %#x", tag)
		}
	}
}
