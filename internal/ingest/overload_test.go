package ingest_test

// Admission-control and load-shedding tests: the BUSY handshake, the global
// memory budget, the NACK circuit breaker, and the torn-state fallback
// (DESIGN.md §11).

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/streamfmt"
)

// dialRawExpectBusy performs a v2 handshake that must be answered BUSY and
// returns the retry-after hint.
func dialRawExpectBusy(t *testing.T, addr, id string) time.Duration {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := ingest.WriteFrame(c, ingest.FrameHello,
		ingest.AppendHello(nil, ingest.ProtoVersion, 2, id)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ingest.ReadFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if typ != ingest.FrameBusy {
		t.Fatalf("got frame %#x, want BUSY", typ)
	}
	ms, err := ingest.ParseBusy(payload)
	if err != nil {
		t.Fatal(err)
	}
	return time.Duration(ms) * time.Millisecond
}

func TestSessionCapAnswersBusy(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir, MaxSessions: 1})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 4)

	// Occupy the only admission slot.
	holder, err := client.Dial(context.Background(),
		client.Options{Addr: addr, SessionID: "holder"}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// A v2 HELLO past the cap earns BUSY with a positive retry hint; a v1
	// HELLO earns a plain ERR (it would not understand the new frame).
	if retry := dialRawExpectBusy(t, addr, "refused"); retry <= 0 {
		t.Fatalf("BUSY retry-after = %v, want > 0", retry)
	}
	if msg := dialRawExpectErr(t, addr, ingest.AppendHello(nil, 1, 2, "refused-v1")); !strings.Contains(msg, "busy") {
		t.Fatalf("v1 rejection %q does not say busy", msg)
	}
	if n := srv.Metrics().BusyRejections.Load(); n != 2 {
		t.Fatalf("BusyRejections = %d, want 2", n)
	}

	// A Pusher refused with BUSY backs off and redials rather than failing:
	// free the slot while it waits and the upload completes normally.
	done := make(chan error, 1)
	go func() {
		defer close(done)
		p := pushStream(t, client.Options{Addr: addr, SessionID: "waiter", MaxChunkBytes: 256}, gob, stream)
		p.Close()
	}()
	time.Sleep(100 * time.Millisecond)
	holder.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("busy-refused pusher never completed")
	}
	assertArchived(t, dataDir, "waiter", gob, stream)
}

func TestMemoryBudgetShedsFrames(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{DataDir: t.TempDir(), MemoryBudgetBytes: 64})
	r := dialRaw(t, addr, "overbudget", 2)
	// One frame bigger than the whole budget can never be enqueued: it is
	// shed with a NACK asking for the same sequence again.
	r.send(ingest.FrameChunk, 1, make([]byte, 128))
	if want := r.expect(ingest.FrameNack); want != 1 {
		t.Fatalf("NACK wants seq %d, want 1", want)
	}
	if n := srv.Metrics().FramesShed.Load(); n != 1 {
		t.Fatalf("FramesShed = %d, want 1", n)
	}
}

func TestBreakerPoisonsRepeatOffender(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{DataDir: t.TempDir(), BreakerNacks: 2})
	r := dialRaw(t, addr, "offender", 2)
	// Two sequence gaps burn the two-strike budget: NACK, then NACK + ERR.
	r.send(ingest.FrameChunk, 5, []byte("gap"))
	if want := r.expect(ingest.FrameNack); want != 1 {
		t.Fatalf("NACK wants seq %d, want 1", want)
	}
	r.send(ingest.FrameChunk, 7, []byte("gap"))
	if msg := r.expectErr(); !strings.Contains(msg, "circuit breaker") {
		t.Fatalf("poison message %q does not mention the breaker", msg)
	}
	if n := srv.Metrics().BreakerTrips.Load(); n != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", n)
	}
	// The id stays poisoned for reconnects until a server restart.
	if msg := dialRawExpectErr(t, addr,
		ingest.AppendHello(nil, ingest.ProtoVersion, 2, "offender")); !strings.Contains(msg, "poisoned") {
		t.Fatalf("reconnect rejection %q does not say poisoned", msg)
	}
}

// TestTornStateFallsBackToFreshUpload: a server restart that finds a torn
// ingest.state (a legacy non-atomic write cut short by a crash) restarts
// the session's upload from scratch instead of failing the session.
func TestTornStateFallsBackToFreshUpload(t *testing.T) {
	dataDir := t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 6)
	func() {
		_, addr := startServer(t, ingest.Config{DataDir: dataDir})
		pushStream(t, client.Options{Addr: addr, SessionID: "torn", MaxChunkBytes: 256}, gob, stream).Close()
	}()
	assertArchived(t, dataDir, "torn", gob, stream)

	// Tear the state file the way an interrupted plain write would.
	statePath := filepath.Join(dataDir, "torn", "ingest.state")
	if err := os.WriteFile(statePath, []byte("jportal-ingest-state\nseq: 1"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	p := pushStream(t, client.Options{Addr: addr, SessionID: "torn", MaxChunkBytes: 256}, gob, stream)
	defer p.Close()
	if p.ResumeSeq() != 0 {
		t.Fatalf("resumed at seq %d after a torn state, want a fresh upload", p.ResumeSeq())
	}
	if n := srv.Metrics().StateFallbacks.Load(); n != 1 {
		t.Fatalf("StateFallbacks = %d, want 1", n)
	}
	assertArchived(t, dataDir, "torn", gob, stream)
	if _, err := streamfmt.ParseHeader(stream); err != nil {
		t.Fatal(err)
	}
}
