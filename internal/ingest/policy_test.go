package ingest

// White-box tests of the session sequencing rules and the two backpressure
// policies, driven without a writer goroutine so the queue state is fully
// under the test's control.

import (
	"net"
	"testing"
	"time"
)

// fakeConn binds a connWriter to one end of a pipe and collects every frame
// the server sends on a channel.
type fakeConn struct {
	cw     *connWriter
	frames chan frame
	close  func()
}

type frame struct {
	typ byte
	seq uint64
}

func newFakeConn(t *testing.T) *fakeConn {
	t.Helper()
	server, client := net.Pipe()
	fc := &fakeConn{
		cw:     &connWriter{c: server},
		frames: make(chan frame, 16),
		close:  func() { server.Close(); client.Close() },
	}
	go func() {
		for {
			typ, payload, err := ReadFrame(client)
			if err != nil {
				close(fc.frames)
				return
			}
			var seq uint64
			if typ != FrameErr {
				seq, _, _ = ParseSeq(payload)
			}
			fc.frames <- frame{typ: typ, seq: seq}
		}
	}()
	t.Cleanup(fc.close)
	return fc
}

func (fc *fakeConn) expect(t *testing.T, typ byte, seq uint64) {
	t.Helper()
	select {
	case f, ok := <-fc.frames:
		if !ok {
			t.Fatalf("connection closed, wanted frame %#x seq %d", typ, seq)
		}
		if f.typ != typ || f.seq != seq {
			t.Fatalf("got frame %#x seq %d, want %#x seq %d", f.typ, f.seq, typ, seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no frame within 5s, wanted %#x seq %d", typ, seq)
	}
}

func (fc *fakeConn) expectNone(t *testing.T) {
	t.Helper()
	select {
	case f := <-fc.frames:
		t.Fatalf("unexpected frame %#x seq %d", f.typ, f.seq)
	case <-time.After(50 * time.Millisecond):
	}
}

func newTestSession(t *testing.T, cfg Config) (*Server, *session) {
	t.Helper()
	cfg.DataDir = t.TempDir()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.openSession("s", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sess.mu.Lock()
		if sess.f != nil {
			sess.f.Close()
			sess.f = nil
		}
		sess.mu.Unlock()
	})
	return srv, sess
}

func TestSubmitSequencingRules(t *testing.T) {
	srv, sess := newTestSession(t, Config{QueueDepth: 8})
	fc := newFakeConn(t)

	// Pretend seqs 1..5 are archived and 6..7 are queued.
	sess.lastAcked = 5
	sess.nextEnqueue = 8

	// At or below the frontier: idempotent duplicate, re-ACK.
	if !sess.submit(msg{typ: FrameChunk, seq: 3}, fc.cw) {
		t.Fatal("duplicate closed the connection")
	}
	fc.expect(t, FrameAck, 5)
	if got := srv.Metrics().Duplicates.Load(); got != 1 {
		t.Fatalf("Duplicates = %d, want 1", got)
	}

	// Queued but not archived: dropped silently, the ACK is coming.
	if !sess.submit(msg{typ: FrameChunk, seq: 7}, fc.cw) {
		t.Fatal("in-queue duplicate closed the connection")
	}
	fc.expectNone(t)
	if got := srv.Metrics().Duplicates.Load(); got != 2 {
		t.Fatalf("Duplicates = %d, want 2", got)
	}

	// A gap earns a NACK naming the wanted sequence.
	if !sess.submit(msg{typ: FrameChunk, seq: 12}, fc.cw) {
		t.Fatal("gap closed the connection")
	}
	fc.expect(t, FrameNack, 8)
	if got := srv.Metrics().Nacks.Load(); got != 1 {
		t.Fatalf("Nacks = %d, want 1", got)
	}

	// The expected next sequence is accepted and advances the frontier.
	if !sess.submit(msg{typ: FrameChunk, seq: 8, data: []byte{1}}, fc.cw) {
		t.Fatal("in-order frame closed the connection")
	}
	if len(sess.queue) != 1 || sess.nextEnqueue != 9 {
		t.Fatalf("queue=%d nextEnqueue=%d after accept", len(sess.queue), sess.nextEnqueue)
	}
}

func TestPolicyNackOverflow(t *testing.T) {
	srv, sess := newTestSession(t, Config{QueueDepth: 2, Policy: PolicyNack})
	fc := newFakeConn(t)

	// Fill the queue (no writer is draining it).
	for seq := uint64(1); seq <= 2; seq++ {
		if !sess.submit(msg{typ: FrameChunk, seq: seq}, fc.cw) {
			t.Fatalf("seq %d rejected with room in the queue", seq)
		}
	}
	// Overflow: frame is dropped with a NACK, connection stays open, and
	// the enqueue frontier does not advance past the drop.
	if !sess.submit(msg{typ: FrameChunk, seq: 3}, fc.cw) {
		t.Fatal("overflow closed the connection")
	}
	fc.expect(t, FrameNack, 3)
	if got := srv.Metrics().Nacks.Load(); got != 1 {
		t.Fatalf("Nacks = %d, want 1", got)
	}
	if sess.nextEnqueue != 3 {
		t.Fatalf("nextEnqueue = %d after NACKed frame, want 3", sess.nextEnqueue)
	}
	// After the queue drains, the retransmission is accepted.
	<-sess.queue
	if !sess.submit(msg{typ: FrameChunk, seq: 3}, fc.cw) {
		t.Fatal("retransmission rejected")
	}
	if sess.nextEnqueue != 4 {
		t.Fatalf("nextEnqueue = %d after retransmission, want 4", sess.nextEnqueue)
	}
}

func TestPolicyBlockBackpressure(t *testing.T) {
	_, sess := newTestSession(t, Config{QueueDepth: 1, Policy: PolicyBlock})
	fc := newFakeConn(t)

	if !sess.submit(msg{typ: FrameChunk, seq: 1}, fc.cw) {
		t.Fatal("first frame rejected")
	}
	// The queue is full: the next submit must block (the reader goroutine
	// stalls, which is what pushes backpressure into TCP).
	done := make(chan bool, 1)
	go func() { done <- sess.submit(msg{typ: FrameChunk, seq: 2}, fc.cw) }()
	select {
	case <-done:
		t.Fatal("submit returned with a full queue under PolicyBlock")
	case <-time.After(100 * time.Millisecond):
	}
	// Draining one message unblocks it.
	<-sess.queue
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("unblocked submit closed the connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit still blocked after the queue drained")
	}
}

func TestPolicyBlockForceRelease(t *testing.T) {
	srv, sess := newTestSession(t, Config{QueueDepth: 1, Policy: PolicyBlock})
	fc := newFakeConn(t)

	if !sess.submit(msg{typ: FrameChunk, seq: 1}, fc.cw) {
		t.Fatal("first frame rejected")
	}
	done := make(chan bool, 1)
	go func() { done <- sess.submit(msg{typ: FrameChunk, seq: 2}, fc.cw) }()
	time.Sleep(50 * time.Millisecond)
	// Shutdown's force-close path releases blocked readers: submit reports
	// the connection should close, and the frame is NOT enqueued.
	srv.forceOne.Do(func() { close(srv.force) })
	select {
	case ok := <-done:
		if ok {
			t.Fatal("forced submit did not ask to close the connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit still blocked after force")
	}
	if len(sess.queue) != 1 {
		t.Fatalf("queue holds %d frames after forced release, want 1", len(sess.queue))
	}
}
