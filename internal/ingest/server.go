package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"jportal"
	"jportal/internal/fault"
	"jportal/internal/fsatomic"
	"jportal/internal/iofault"
	"jportal/internal/metrics"
	"jportal/internal/source"
	"jportal/internal/streamfmt"
	"jportal/internal/watchdog"
)

// Router decides, for a sharded ingest fleet, which node owns a session.
// Route returns the owning node's ingest address and whether that node is
// this process. A server with no router (standalone mode) owns everything.
// Implementations must be safe for concurrent use; internal/fleet.Member
// is the production implementation.
type Router interface {
	Route(sessionID string) (owner string, local bool)
}

// Policy selects what the server does when a session's bounded inbound
// queue is full.
type Policy string

const (
	// PolicyBlock stops reading the connection until the archiver catches
	// up: backpressure propagates to the client through TCP flow control.
	// Nothing is dropped; a slow disk simply slows the sender.
	PolicyBlock Policy = "block"

	// PolicyNack rejects the frame with a NACK carrying the sequence the
	// server wants next. The client backs off and retransmits; the server
	// keeps reading, so control frames (FIN, retransmits after the queue
	// drains) are never stuck behind a full queue.
	PolicyNack Policy = "nack"
)

// Config configures a Server.
type Config struct {
	// DataDir is where per-session archives are written: one chunked-layout
	// run archive per session id, loadable by jportal decode/stream.
	DataDir string
	// QueueDepth bounds each session's inbound queue (frames accepted but
	// not yet archived). 0 means 64.
	QueueDepth int
	// Policy is the backpressure policy when a queue is full; default
	// PolicyBlock.
	Policy Policy
	// IdleTimeout closes a connection with no complete frame for this
	// long, so vanished agents do not hold their session attached forever.
	// 0 means 2 minutes.
	IdleTimeout time.Duration
	// MaxSessions caps how many sessions may have a connection attached at
	// once. A HELLO past the cap is answered with BUSY (protocol 2+) or ERR
	// (protocol 1) instead of being accepted. 0 means unlimited.
	MaxSessions int
	// MemoryBudgetBytes bounds the payload bytes queued across every
	// session (accepted but not yet archived). New sessions are refused
	// with BUSY while the budget is exhausted, and data frames that would
	// exceed it are shed with a NACK — the client retransmits after
	// backoff. 0 means unlimited.
	MemoryBudgetBytes int64
	// BreakerNacks is the per-session circuit breaker: a session whose
	// connection earns this many NACKs (queue overflow, budget sheds,
	// sequence gaps) is poisoned before it burns more budget. 0 disables
	// the breaker.
	BreakerNacks int
	// StallAfter poisons a session whose writer makes no progress for this
	// long while frames are queued — a wedged disk or a hung archive write
	// is detected instead of holding queue memory forever. 0 disables the
	// writer watchdog.
	StallAfter time.Duration
	// Router, when set, scopes this server to a fleet shard: a HELLO for a
	// session the router places on another node is answered with REDIRECT
	// (protocol 3+) or a typed protocol-version ERR (older clients) instead
	// of being served. Usually installed after listening via SetRouter,
	// once the advertised address is known.
	Router Router
	// Logf, when set, receives one line per connection-level event.
	Logf func(format string, args ...any)
	// Registry receives the typed quarantine counters (and is merged into
	// the /metrics sidecar). Default: metrics.Default, the process-wide
	// registry analysis sessions also report to.
	Registry *metrics.Registry
	// IOFault, when set, threads every session's storage operations — the
	// archive stream, program writes aside, and the durable ingest.state —
	// through the seeded disk-fault injector. Nil (the production default)
	// leaves the paths pointer-identical to the unfaulted code.
	IOFault *iofault.Injector
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return errors.New("ingest: Config.DataDir is required")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("ingest: QueueDepth %d is not positive", c.QueueDepth)
	}
	switch c.Policy {
	case "":
		c.Policy = PolicyBlock
	case PolicyBlock, PolicyNack:
	default:
		return fmt.Errorf("ingest: unknown backpressure policy %q", c.Policy)
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("ingest: MaxSessions %d is negative", c.MaxSessions)
	}
	if c.MemoryBudgetBytes < 0 {
		return fmt.Errorf("ingest: MemoryBudgetBytes %d is negative", c.MemoryBudgetBytes)
	}
	if c.BreakerNacks < 0 {
		return fmt.Errorf("ingest: BreakerNacks %d is negative", c.BreakerNacks)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Registry == nil {
		c.Registry = metrics.Default
	}
	return nil
}

// Server accepts agent connections and archives each session's record
// stream as a chunked run archive under DataDir/<session id>.
type Server struct {
	cfg     Config
	metrics Metrics

	queuedBytes atomic.Int64 // payload bytes accepted but not yet archived
	diskFull    atomic.Bool  // last archive write hit ENOSPC; gates new sessions

	mu       sync.Mutex
	ln       net.Listener
	sessions map[string]*session
	conns    map[net.Conn]struct{}
	attached int // sessions with a connection bound (admission gate)
	drain    bool
	stopped  bool
	force    chan struct{}
	forceOne sync.Once

	dog *watchdog.Supervisor // writer-stall supervisor; nil when disabled

	connWG   sync.WaitGroup
	writerWG sync.WaitGroup
}

// errBusy reports an admission refusal: the server is at capacity but the
// condition is transient, so the client should redial after RetryAfter.
type errBusy struct {
	reason     string
	retryAfter time.Duration
}

func (e *errBusy) Error() string {
	return fmt.Sprintf("server busy (%s), retry in %v", e.reason, e.retryAfter)
}

// busyRetryAfter is the redial hint sent in BUSY frames. The client adds
// its own jitter, so a fixed hint does not synchronize a thundering herd.
const busyRetryAfter = time.Second

// NewServer validates cfg and returns an idle server; call Serve to accept.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	// Pre-register every fault-class and quarantine counter at zero, so the
	// /metrics sidecar always exposes the full vocabulary — a scraper can
	// alert on a counter before the first fault, not only after.
	for _, c := range fault.Classes() {
		cfg.Registry.Add(fault.InjectCounterName(c), 0)
	}
	for _, r := range fault.Reasons() {
		cfg.Registry.Add(fault.QuarantineCounterName(r), 0)
	}
	// The robustness-layer counters the analysis path increments through the
	// same registry: pre-declared so the sidecar exposes them from scrape one.
	cfg.Registry.Add(metrics.CounterWatchdogStalls, 0)
	cfg.Registry.Add(metrics.CounterCheckpointsWritten, 0)
	// Fleet-resilience counters: injected network faults (the netfault
	// layer mirrors per-class counts alongside) and in-process pushers
	// that exhausted their retry budget.
	cfg.Registry.Add(metrics.CounterNetfaultInjected, 0)
	cfg.Registry.Add(metrics.CounterClientRetryBudget, 0)
	// Storage-durability vocabulary (DESIGN.md §16): injected disk faults
	// and the scrubber/retention outcomes, pre-declared like the rest.
	cfg.Registry.Add(metrics.CounterIofaultInjected, 0)
	for _, c := range iofault.Classes() {
		cfg.Registry.Add(c.InjectCounterName(), 0)
	}
	for _, name := range []string{
		metrics.CounterScrubSessionsScanned, metrics.CounterScrubBytesVerified,
		metrics.CounterScrubTornTails, metrics.CounterScrubRefetched,
		metrics.CounterScrubQuarantined, metrics.CounterScrubReset,
		metrics.CounterRetentionDeleted, metrics.CounterRetentionBytes,
		metrics.CounterCompactionRewritten, metrics.CounterCompactionDropped,
	} {
		cfg.Registry.Add(name, 0)
	}
	srv := &Server{
		cfg:      cfg,
		sessions: make(map[string]*session),
		conns:    make(map[net.Conn]struct{}),
		force:    make(chan struct{}),
	}
	if cfg.StallAfter > 0 {
		srv.dog = watchdog.New(cfg.StallAfter/4, cfg.StallAfter)
		srv.dog.Start()
	}
	return srv, nil
}

// Metrics exposes the server's counters (the HTTP sidecar serves the same
// numbers; tests read them directly).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// SessionBusy reports whether the named session is actively being written
// in this process — a connection attached, frames queued, or the writer
// mid-frame. The integrated scrub sweeper skips busy sessions: their
// in-memory frontier is ahead of what a concurrent verify could see.
func (s *Server) SessionBusy(id string) bool {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	if len(sess.queue) > 0 || sess.working.Load() {
		return true
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.conn != nil
}

// SetRouter installs (or replaces) the fleet router. Fleet membership is
// usually established after the listener is up — the advertised address
// must be known before the node can claim a hash range — so the router
// arrives after NewServer. A nil router returns the server to standalone
// mode.
func (s *Server) SetRouter(r Router) {
	s.mu.Lock()
	s.cfg.Router = r
	s.mu.Unlock()
}

func (s *Server) router() Router {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Router
}

// Addr returns the listener's address once Serve has been called — the way
// to discover the port after listening on ":0".
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown, or the accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.drain {
		s.mu.Unlock()
		ln.Close()
		return errors.New("ingest: server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.drain {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// ListenAndServe listens on addr (TCP) and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server: stop accepting, let attached sessions finish
// their uploads, archive everything queued, and flush state. When ctx
// expires first, remaining connections are force-closed — already-queued
// frames are still archived before writers exit, so nothing acknowledged
// is ever lost.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.drain = true
	s.stopped = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	readersDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(readersDone)
	}()
	var err error
	select {
	case <-readersDone:
	case <-ctx.Done():
		err = ctx.Err()
		s.forceOne.Do(func() { close(s.force) })
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-readersDone
	}

	// No reader can enqueue anymore; closing the queues lets each writer
	// drain what it has and exit, closing its archive file. The wait is
	// bounded by ctx: a writer hung on a wedged disk (or a stalled archive
	// write) must not block shutdown past the caller's deadline — its
	// session simply is not drained, and the state file still reflects the
	// last acknowledged frame.
	s.mu.Lock()
	for _, sess := range s.sessions {
		close(sess.queue)
	}
	s.mu.Unlock()
	writersDone := make(chan struct{})
	go func() {
		s.writerWG.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
		// Past the deadline, writers get only as long as they keep making
		// progress: bounded queues drain in moments unless a writer is
		// wedged, and a wedged writer must not block shutdown forever.
		for {
			before := s.processedTotal()
			stop := false
			select {
			case <-writersDone:
				stop = true
			case <-time.After(50 * time.Millisecond):
				stop = s.processedTotal() == before
			}
			if stop {
				break
			}
		}
	}
	if s.dog != nil {
		s.dog.Stop()
	}
	return err
}

// processedTotal sums every session writer's progress counter.
func (s *Server) processedTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, sess := range s.sessions {
		n += sess.processed.Load()
	}
	return n
}

// connWriter serializes frame writes to one connection: the session writer
// (ACKs) and the read loop (duplicate ACKs, NACKs, errors) both send.
type connWriter struct {
	c  net.Conn
	mu sync.Mutex
}

func (cw *connWriter) send(typ byte, payload []byte) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	// A write error means the client is gone; the read loop will notice
	// and detach, and the client re-syncs from HELLO_ACK on reconnect.
	_ = WriteFrame(cw.c, typ, payload)
}

func (cw *connWriter) sendErr(msg string) {
	cw.send(FrameErr, []byte(msg))
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	cw := &connWriter{c: conn}

	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		s.cfg.Logf("ingest: %s: handshake read: %v", conn.RemoteAddr(), err)
		return
	}
	if typ != FrameHello {
		cw.sendErr(fmt.Sprintf("expected HELLO, got frame %#x", typ))
		return
	}
	version, ncores, id, src, err := ParseHello(payload)
	if err != nil {
		cw.sendErr(err.Error())
		return
	}
	if version < MinProtoVersion || version > ProtoVersion {
		cw.send(FrameErr, FormatErr(ErrCategoryProtocol,
			fmt.Sprintf("protocol version %d not supported (server speaks %d..%d)", version, MinProtoVersion, ProtoVersion)))
		return
	}
	if !ValidSessionID(id) {
		cw.sendErr(fmt.Sprintf("invalid session id %q", id))
		return
	}
	if ncores <= 0 || ncores > streamfmt.MaxCores {
		cw.sendErr(fmt.Sprintf("implausible core count %d", ncores))
		return
	}
	if src == source.DefaultID {
		src = "" // canonical spelling of the default backend
	}
	if _, err := source.Lookup(src); err != nil {
		cw.sendErr(fmt.Sprintf("unknown trace source %q", src))
		return
	}
	// Fleet routing: a session this node does not own is redirected to its
	// owner before any admission or session state is touched. Clients too
	// old to parse REDIRECT get the typed protocol-version ERR — the one
	// verdict they can surface — never a frame they would misparse.
	if r := s.router(); r != nil {
		if owner, local := r.Route(id); !local {
			s.metrics.RedirectsSent.Add(1)
			if version >= ProtoVersionRedirect {
				cw.send(FrameRedirect, AppendRedirect(nil, owner))
			} else {
				cw.send(FrameErr, FormatErr(ErrCategoryProtocol,
					fmt.Sprintf("session %q is served by %s; protocol %d cannot follow redirects (need %d+)",
						id, owner, version, ProtoVersionRedirect)))
			}
			return
		}
	}

	sess, err := s.attach(id, ncores, src, cw)
	if err != nil {
		var busy *errBusy
		if errors.As(err, &busy) {
			// Admission refusal, not a protocol error: a v2 client backs off
			// and redials; a v1 client only understands ERR.
			s.metrics.BusyRejections.Add(1)
			if version >= ProtoVersionBusy {
				cw.send(FrameBusy, AppendBusy(nil, uint32(busy.retryAfter.Milliseconds())))
			} else {
				cw.sendErr(err.Error())
			}
			return
		}
		s.metrics.Errors.Add(1)
		cw.sendErr(err.Error())
		return
	}
	defer sess.detach(cw)
	s.metrics.SessionsOpen.Add(1)
	defer s.metrics.SessionsOpen.Add(-1)
	resume := sess.ackedSeq()
	if resume > 0 {
		s.metrics.SessionsResumed.Add(1)
	}
	// Echo the client's own version: both sides then speak the older dialect.
	cw.send(FrameHelloAck, AppendHelloAck(nil, version, resume))
	s.cfg.Logf("ingest: %s: session %q attached (resume seq %d)", conn.RemoteAddr(), id, resume)

	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			s.cfg.Logf("ingest: %s: session %q read: %v", conn.RemoteAddr(), id, err)
			return
		}
		switch typ {
		case FrameProgram, FrameChunk:
			seq, data, err := ParseSeq(payload)
			if err != nil {
				cw.sendErr(err.Error())
				return
			}
			if !sess.submit(msg{typ: typ, seq: seq, data: data}, cw) {
				return
			}
		case FrameFin:
			seq, _, err := ParseSeq(payload)
			if err != nil {
				cw.sendErr(err.Error())
				return
			}
			if !sess.submit(msg{typ: FrameFin, seq: seq}, cw) {
				return
			}
		default:
			cw.sendErr(fmt.Sprintf("unexpected frame %#x", typ))
			return
		}
	}
}

// attach looks up or creates the session for id and binds the connection
// to it. One connection per session: a second concurrent HELLO is
// rejected (the client retries after the stale connection dies).
// Admission control happens here: past the concurrent-session cap or with
// the global memory budget exhausted the HELLO earns an errBusy, which the
// caller turns into a BUSY frame.
func (s *Server) attach(id string, ncores int, src string, cw *connWriter) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drain {
		return nil, errors.New("server is draining, not accepting sessions")
	}
	if s.cfg.MaxSessions > 0 && s.attached >= s.cfg.MaxSessions {
		return nil, &errBusy{"session cap reached", busyRetryAfter}
	}
	if b := s.cfg.MemoryBudgetBytes; b > 0 && s.queuedBytes.Load() >= b {
		return nil, &errBusy{"memory budget exhausted", busyRetryAfter}
	}
	sess := s.sessions[id]
	if sess == nil {
		// Full-disk gate, new sessions only: once a write has hit ENOSPC,
		// admitting more sessions just multiplies the failures, so they get
		// BUSY until space clears. Existing sessions still attach — their
		// next archive write is the probe that discovers the disk recovered
		// (and clears the gate), so a transient ENOSPC cannot lock the
		// server out forever.
		if s.diskFull.Load() {
			s.metrics.DiskFullRejections.Add(1)
			return nil, &errBusy{"disk full", busyRetryAfter}
		}
		var err error
		sess, err = s.openSession(id, ncores, src)
		if err != nil {
			if isStorageErr(err) {
				s.metrics.DiskFullRejections.Add(1)
				return nil, &errBusy{"session open failed on storage: " + err.Error(), busyRetryAfter}
			}
			return nil, err
		}
		s.sessions[id] = sess
		s.metrics.SessionsTotal.Add(1)
		s.writerWG.Add(1)
		go sess.runWriter()
		if s.dog != nil {
			s.dog.Register(watchdog.Probe{
				Name:     "ingest_writer:" + id,
				Progress: sess.processed.Load,
				Active:   func() bool { return len(sess.queue) > 0 || sess.working.Load() },
				OnStall: func(name string, progress uint64, stuck time.Duration) {
					s.metrics.StallsDetected.Add(1)
					sess.poison(fmt.Errorf("writer stalled for %v after %d frames", stuck.Round(time.Millisecond), progress))
				},
			})
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.err != nil {
		return nil, fmt.Errorf("session %q is poisoned: %v", id, sess.err)
	}
	if sess.ncores != ncores {
		return nil, fmt.Errorf("session %q was opened with %d cores, HELLO says %d", id, sess.ncores, ncores)
	}
	if sess.srcID != src {
		return nil, fmt.Errorf("session %q was opened with trace source %q, HELLO says %q",
			id, sourceName(sess.srcID), sourceName(src))
	}
	if sess.conn != nil {
		return nil, fmt.Errorf("session %q already has an active connection", id)
	}
	sess.conn = cw
	// Re-sync the reader gate to the durable frontier on every bind: a
	// storage shed may have dropped a dequeued frame without archiving it,
	// leaving nextEnqueue pointing past a hole. The client resends from
	// the HELLO_ACK frontier; the writer-side ordering guard in archive()
	// de-duplicates anything that was still queued.
	sess.nextEnqueue = sess.lastAcked + 1
	s.attached++
	return sess, nil
}

// isStorageErr reports whether err is a disk-level failure — real or
// injected ENOSPC/EIO — as opposed to a validation or protocol error.
func isStorageErr(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO)
}

// msg is one queued unit of work for a session's writer: a data frame to
// archive, or a FIN marker (typ FrameFin) that asks for completion.
type msg struct {
	typ  byte
	seq  uint64
	data []byte
}

// session is the durable per-agent state: the archive being assembled, the
// acknowledged frontier, and the bounded queue between the connection
// reader and the archiving writer. It outlives any single connection.
type session struct {
	srv    *Server
	id     string
	dir    string
	ncores int
	srcID  string // trace-source backend ("" = default); stamped into archive.meta
	queue  chan msg

	processed atomic.Uint64 // frames the writer has fully handled (watchdog progress)
	working   atomic.Bool   // writer is inside one frame (watchdog activity)

	fsys iofault.FS // storage surface (iofault.OS outside chaos runs)

	mu           sync.Mutex
	conn         *connWriter
	f            iofault.File
	lastAcked    uint64 // highest sequence archived and flushed
	nextEnqueue  uint64 // next sequence the reader will accept
	size         int64  // stream.jpt length covered by lastAcked
	crc          uint32 // running checksum (header + records, pre-seal)
	sealed       bool
	haveProgram  bool
	done         bool // FIN acknowledged
	strikes      int  // circuit-breaker NACK count
	persistFails int  // consecutive ingest.state persist failures
	err          error
}

// ErrStatePersist is the typed poison cause for a session whose durable
// frontier repeatedly cannot be written: without ingest.state the
// persist-before-ACK contract is void, so the session is failed rather
// than silently continued on a best-effort log line.
var ErrStatePersist = errors.New("ingest: session state cannot be persisted")

// maxPersistFails is how many consecutive ingest.state failures a session
// survives (each one sheds the frame and suspends the connection) before
// it is poisoned with ErrStatePersist.
const maxPersistFails = 3

// errStaleFrame marks a queued frame the writer must drop silently: its
// sequence is ahead of the durable frontier because an earlier frame was
// shed on a storage fault after dequeue. The client re-syncs from
// HELLO_ACK on reconnect; NACKing here would race that resync.
var errStaleFrame = errors.New("stale queued frame after storage shed")

// storageError wraps a disk-level archive failure so runWriter sheds the
// frame and suspends the connection instead of poisoning the session —
// ENOSPC and transient EIO are the storage analogue of a full queue, not
// of corrupt input.
type storageError struct{ err error }

func (e *storageError) Error() string { return e.err.Error() }
func (e *storageError) Unwrap() error { return e.err }

// testHookArchive, when set by a test, runs in the writer goroutine before
// each frame is archived — a blocking hook simulates a hung writer. Atomic
// because a writer released after its test ends can race the cleanup reset.
var testHookArchive atomic.Pointer[func(sess *session, m msg)]

const stateFileName = "ingest.state"

// sourceName renders a session source ID for error messages ("" is the
// default backend).
func sourceName(src string) string {
	if src == "" {
		return source.DefaultID
	}
	return src
}

// openSession creates or restores the session's archive directory. Called
// with srv.mu held (session creation is rare; the disk work is trivial).
// A restored session — its durable ingest.state survived a server restart,
// or in a fleet, the loss of the node that wrote it to the shared data dir
// — keeps the archive's own source stamp; a fresh one records src.
func (s *Server) openSession(id string, ncores int, src string) (*session, error) {
	dir := filepath.Join(s.cfg.DataDir, id)
	sess := &session{
		srv:    s,
		id:     id,
		dir:    dir,
		ncores: ncores,
		srcID:  src,
		fsys:   s.cfg.IOFault.FS("ingest:" + id),
		queue:  make(chan msg, s.cfg.QueueDepth),
	}
	if restored, err := sess.restore(); err != nil {
		return nil, fmt.Errorf("session %q: restoring %s: %w", id, dir, err)
	} else if restored {
		s.metrics.SessionsRestored.Add(1)
		return sess, nil
	}
	// Fresh session: chunked archive dir with an empty record stream. A
	// failure partway leaves a directory with no ingest.state, which
	// restore() would refuse forever — remove the partial dir so the
	// client's redial starts clean.
	fresh := func(err error) (*session, error) {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := jportal.InitChunkedArchiveDirFS(dir, src, sess.fsys); err != nil {
		return fresh(err)
	}
	f, err := sess.fsys.OpenFile(filepath.Join(dir, jportal.StreamFileName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fresh(err)
	}
	hdr := streamfmt.AppendHeader(nil, ncores)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fresh(err)
	}
	sess.f = f
	sess.crc = crc32.Update(0, crc32.IEEETable, hdr)
	sess.size = int64(len(hdr))
	sess.nextEnqueue = 1
	if err := sess.persistState(); err != nil {
		f.Close()
		return fresh(err)
	}
	return sess, nil
}

// restore resumes a session whose state file survived a server restart:
// the stream is truncated back to the last acknowledged byte (dropping any
// unacknowledged tail) so the client's resend from resumeSeq+1 recreates
// it exactly.
func (sess *session) restore() (bool, error) {
	raw, err := sess.fsys.ReadFile(filepath.Join(sess.dir, stateFileName))
	if os.IsNotExist(err) {
		if _, serr := os.Stat(sess.dir); serr == nil {
			return false, errors.New("directory exists but has no ingest state (not an ingest session?)")
		}
		return false, nil
	}
	if err != nil {
		return false, err
	}
	st, err := parseState(string(raw))
	if err != nil {
		// Torn or malformed state — a legacy non-atomic write interrupted by
		// a crash. The seq↔byte mapping is unrecoverable, so fall back to a
		// fresh upload of the session instead of failing it: the client
		// resends everything and the end-to-end seal CRC still guarantees
		// the re-pushed archive is byte-identical.
		sess.srv.metrics.StateFallbacks.Add(1)
		sess.srv.cfg.Logf("ingest: session %q: %v; restarting the upload from scratch", sess.id, err)
		if rerr := os.Remove(filepath.Join(sess.dir, stateFileName)); rerr != nil {
			return false, rerr
		}
		return false, nil
	}
	f, err := sess.fsys.OpenFile(filepath.Join(sess.dir, jportal.StreamFileName), os.O_WRONLY, 0o644)
	if err != nil {
		return false, err
	}
	if err := f.Truncate(st.Size); err != nil {
		f.Close()
		return false, err
	}
	if _, err := f.Seek(st.Size, 0); err != nil {
		f.Close()
		return false, err
	}
	sess.f = f
	sess.lastAcked = st.Seq
	sess.nextEnqueue = st.Seq + 1
	sess.size = st.Size
	sess.crc = st.CRC
	sess.sealed = st.Sealed
	_, perr := os.Stat(filepath.Join(sess.dir, "program.gob"))
	sess.haveProgram = perr == nil
	// The archive header is the durable source of truth for the backend:
	// the node resuming this session (possibly not the one that created it)
	// re-learns the source from disk, and attach rejects a HELLO whose
	// source disagrees.
	archSrc, err := jportal.ArchiveSourceID(sess.dir)
	if err != nil {
		f.Close()
		sess.f = nil
		return false, err
	}
	if archSrc == source.DefaultID {
		archSrc = ""
	}
	sess.srcID = archSrc
	return true, nil
}

// SessionState is one session's durable frontier — the contents of its
// ingest.state file. Exported so the scrubber (internal/scrub) can verify
// an archive against the acknowledged prefix and rewrite the frontier
// after a repair.
type SessionState struct {
	// Seq is the highest acknowledged frame sequence.
	Seq uint64
	// Size is the stream.jpt length the acknowledged prefix covers.
	Size int64
	// CRC is the running IEEE checksum of that prefix (header + records,
	// pre-seal).
	CRC uint32
	// Sealed records whether the stream's verified seal has been archived.
	Sealed bool
}

const stateMagicLine = "jportal-ingest-state"

// StateFileName is the per-session durable-frontier file inside a session
// directory.
const StateFileName = stateFileName

func parseState(raw string) (SessionState, error) {
	var st SessionState
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) < 4 || strings.TrimSpace(lines[0]) != stateMagicLine {
		return st, errors.New("malformed ingest state file")
	}
	for _, ln := range lines[1:] {
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			continue
		}
		v = strings.TrimSpace(v)
		var err error
		switch strings.TrimSpace(k) {
		case "seq":
			st.Seq, err = strconv.ParseUint(v, 10, 64)
		case "bytes":
			st.Size, err = strconv.ParseInt(v, 10, 64)
		case "crc":
			var c uint64
			c, err = strconv.ParseUint(v, 10, 32)
			st.CRC = uint32(c)
		case "sealed":
			st.Sealed, err = strconv.ParseBool(v)
		}
		if err != nil {
			return st, fmt.Errorf("bad ingest state %s: %v", strings.TrimSpace(k), err)
		}
	}
	if st.Size < streamfmt.HeaderLen {
		return st, fmt.Errorf("ingest state covers %d bytes, less than a stream header", st.Size)
	}
	return st, nil
}

func stateBody(st SessionState) string {
	return fmt.Sprintf("%s\nseq: %d\nbytes: %d\ncrc: %d\nsealed: %v\n",
		stateMagicLine, st.Seq, st.Size, st.CRC, st.Sealed)
}

// ReadSessionState reads and parses a session directory's ingest.state.
// Missing-file errors pass through unwrapped (os.IsNotExist works).
func ReadSessionState(dir string) (SessionState, error) {
	raw, err := os.ReadFile(filepath.Join(dir, stateFileName))
	if err != nil {
		return SessionState{}, err
	}
	return parseState(string(raw))
}

// WriteSessionState crash-atomically replaces a session directory's
// ingest.state — the scrubber uses it to commit a repaired frontier.
func WriteSessionState(dir string, st SessionState) error {
	return fsatomic.WriteFile(filepath.Join(dir, stateFileName), []byte(stateBody(st)), 0o644)
}

// persistState records the acknowledged frontier, crash-atomically (temp +
// fsync + rename): a crash mid-write leaves the previous state file intact,
// never a torn one. Called with sess.mu held (or before the session is
// shared). A restarted server resumes from here.
func (sess *session) persistState() error {
	st := SessionState{Seq: sess.lastAcked, Size: sess.size, CRC: sess.crc, Sealed: sess.sealed}
	return fsatomic.WriteFileFS(sess.fsys, filepath.Join(sess.dir, stateFileName), []byte(stateBody(st)), 0o644)
}

func (sess *session) ackedSeq() uint64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.lastAcked
}

func (sess *session) detach(cw *connWriter) {
	// srv.mu before sess.mu, the same order attach takes them.
	sess.srv.mu.Lock()
	sess.mu.Lock()
	if sess.conn == cw {
		sess.conn = nil
		sess.srv.attached--
	}
	sess.mu.Unlock()
	sess.srv.mu.Unlock()
}

// shed NACKs one rejected data frame (asking the client to resend wantSeq
// after backoff) and applies a circuit-breaker strike. The return value
// says whether the connection should stay open.
func (sess *session) shed(cw *connWriter, wantSeq uint64) bool {
	sess.srv.metrics.Nacks.Add(1)
	cw.send(FrameNack, AppendSeq(nil, wantSeq))
	return sess.strike()
}

// strike applies one circuit-breaker strike; past the budget the session
// is poisoned. The return value says whether the session is still alive.
func (sess *session) strike() bool {
	n := sess.srv.cfg.BreakerNacks
	if n <= 0 {
		return true
	}
	sess.mu.Lock()
	sess.strikes++
	tripped := sess.strikes == n
	sess.mu.Unlock()
	if !tripped {
		return true
	}
	// The session has burned its rejection budget: cut it off before it
	// consumes more queue memory on frames that keep bouncing.
	sess.srv.metrics.BreakerTrips.Add(1)
	sess.poison(fmt.Errorf("circuit breaker: %d frames rejected", n))
	return false
}

// submit applies the sequencing rules to one inbound frame and enqueues it
// for the writer. The return value says whether the connection should stay
// open.
func (sess *session) submit(m msg, cw *connWriter) bool {
	sess.mu.Lock()
	if sess.err != nil {
		sess.mu.Unlock()
		cw.sendErr(fmt.Sprintf("session %q is poisoned: %v", sess.id, sess.err))
		return false
	}
	if m.typ != FrameFin {
		switch {
		case m.seq <= sess.lastAcked:
			// Re-delivery of something already archived (the client lost
			// our ACK): idempotent, just re-ACK the frontier.
			acked := sess.lastAcked
			sess.mu.Unlock()
			sess.srv.metrics.Duplicates.Add(1)
			cw.send(FrameAck, AppendSeq(nil, acked))
			return true
		case m.seq < sess.nextEnqueue:
			// Already queued but not yet archived; the ACK is coming.
			sess.mu.Unlock()
			sess.srv.metrics.Duplicates.Add(1)
			return true
		case m.seq > sess.nextEnqueue:
			// Gap: frames were dropped (NACK policy) or reordered.
			want := sess.nextEnqueue
			sess.mu.Unlock()
			return sess.shed(cw, want)
		}
	}
	sess.mu.Unlock()

	// Global memory budget: a frame that would push the queued-but-unarchived
	// payload past the budget is shed with a NACK regardless of policy —
	// blocking here would hold the budget overrun in the TCP buffers instead.
	if b := sess.srv.cfg.MemoryBudgetBytes; m.typ != FrameFin && b > 0 &&
		sess.srv.queuedBytes.Load()+int64(len(m.data)) > b {
		sess.srv.metrics.FramesShed.Add(1)
		return sess.shed(cw, m.seq)
	}

	if m.typ != FrameFin && sess.srv.cfg.Policy == PolicyNack {
		select {
		case sess.queue <- m:
			sess.srv.queuedBytes.Add(int64(len(m.data)))
		default:
			return sess.shed(cw, m.seq)
		}
	} else {
		// PolicyBlock (and FIN under either policy): stop reading until
		// there is room — TCP pushes the backpressure to the client.
		select {
		case sess.queue <- m:
			sess.srv.queuedBytes.Add(int64(len(m.data)))
		case <-sess.srv.force:
			return false
		}
	}
	if m.typ != FrameFin {
		sess.mu.Lock()
		sess.nextEnqueue = m.seq + 1
		sess.mu.Unlock()
	}
	return true
}

// runWriter is the session's archiving goroutine: it drains the bounded
// queue in order, appends to the archive, persists the acknowledged
// frontier and ACKs. It exits when the server closes the queue at
// shutdown, after archiving everything already accepted.
func (sess *session) runWriter() {
	defer sess.srv.writerWG.Done()
	if sess.srv.dog != nil {
		defer sess.srv.dog.Unregister("ingest_writer:" + sess.id)
	}
	for m := range sess.queue {
		sess.working.Store(true)
		if h := testHookArchive.Load(); h != nil {
			(*h)(sess, m)
		}
		if m.typ == FrameFin {
			sess.finish(m.seq)
		} else if err := sess.archive(m); err != nil {
			var storage *storageError
			switch {
			case errors.Is(err, errStaleFrame):
				// Dropped silently: an earlier frame in this queue was shed
				// on a storage fault, so this one is ahead of the durable
				// frontier. The client re-syncs from HELLO_ACK on reconnect.
			case errors.As(err, &storage):
				sess.storageShed(err)
			default:
				sess.srv.quarantineErr(err)
				sess.rejectAndPoison(m, err)
			}
		}
		sess.srv.queuedBytes.Add(-int64(len(m.data)))
		sess.processed.Add(1)
		sess.working.Store(false)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.f != nil {
		sess.f.Close()
		sess.f = nil
	}
	if !sess.done {
		sess.srv.metrics.SessionsDrained.Add(1)
	}
}

// storageShed is the graceful-degradation path for a disk-level archive
// failure: the frame is dropped (never acknowledged — the durable frontier
// did not move), the breaker takes a strike, and the connection is closed
// so the client backs off, redials, and resends from the frontier against
// a disk that may have recovered. ENOSPC additionally arms the full-disk
// admission gate.
func (sess *session) storageShed(err error) {
	sess.srv.metrics.StorageSheds.Add(1)
	if errors.Is(err, syscall.ENOSPC) {
		sess.srv.metrics.EnospcSheds.Add(1)
		sess.srv.diskFull.Store(true)
	}
	sess.srv.cfg.Logf("ingest: session %q: storage fault, shedding frame: %v", sess.id, err)
	if !sess.strike() {
		return // poisoned by the breaker; poison already closed the conn
	}
	sess.mu.Lock()
	conn := sess.conn
	sess.mu.Unlock()
	if conn != nil {
		conn.c.Close()
	}
}

// rollback discards an un-acknowledged partial append (a torn write's
// landed prefix) by truncating the stream back to the committed frontier.
// A rollback that itself fails is fatal: the file no longer matches the
// durable state, so the session must not continue.
func (sess *session) rollback(f iofault.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return err
	}
	_, err := f.Seek(size, 0)
	return err
}

// archive validates and appends one data frame, then advances the
// acknowledged frontier.
func (sess *session) archive(m msg) error {
	// Writer-side ordering guard: after a storage shed the queue can hold
	// frames past the hole, and after a reconnect it can hold duplicates
	// of frames already archived. The durable frontier arbitrates both.
	sess.mu.Lock()
	switch {
	case m.seq <= sess.lastAcked:
		acked := sess.lastAcked
		conn := sess.conn
		sess.mu.Unlock()
		sess.srv.metrics.Duplicates.Add(1)
		if conn != nil {
			conn.send(FrameAck, AppendSeq(nil, acked))
		}
		return nil
	case m.seq != sess.lastAcked+1:
		sess.mu.Unlock()
		return errStaleFrame
	}
	// Pre-frame frontier, for rolling the frame back if its state persist
	// fails after the bytes were appended.
	pre := SessionState{Seq: sess.lastAcked, Size: sess.size, CRC: sess.crc, Sealed: sess.sealed}
	sess.mu.Unlock()

	switch m.typ {
	case FrameProgram:
		if err := jportal.WriteArchiveProgramFS(sess.dir, m.data, sess.fsys); err != nil {
			if isStorageErr(err) {
				return &storageError{err}
			}
			return err
		}
		sess.mu.Lock()
		sess.haveProgram = true
		sess.mu.Unlock()
	case FrameChunk:
		// Validate before touching the file: the payload must be whole
		// records, never extend past a verified seal, and keep the running
		// CRC consistent so the seal check is end-to-end.
		sess.mu.Lock()
		crc, sealed := sess.crc, sess.sealed
		sess.mu.Unlock()
		rem := m.data
		for len(rem) > 0 {
			if sealed {
				return fmt.Errorf("%w: records after the seal", streamfmt.ErrCorrupt)
			}
			n, err := streamfmt.Scan(rem)
			if err != nil {
				return fmt.Errorf("chunk seq %d: %w", m.seq, err)
			}
			rec := rem[:n]
			if sealCRC, ok := streamfmt.SealCRC(rec); ok {
				if sealCRC != crc {
					return fmt.Errorf("%w: seal CRC %#08x does not match relayed stream (%#08x)",
						streamfmt.ErrCorrupt, sealCRC, crc)
				}
				sealed = true
			} else {
				crc = crc32.Update(crc, crc32.IEEETable, rec)
			}
			rem = rem[n:]
		}
		sess.mu.Lock()
		f := sess.f
		size := sess.size
		sess.mu.Unlock()
		if f == nil {
			return errors.New("session archive already closed")
		}
		if _, err := f.Write(m.data); err != nil {
			if !isStorageErr(err) {
				return err
			}
			// A torn write may have landed a prefix; roll the file back to
			// the committed frontier so a resend appends cleanly.
			if rerr := sess.rollback(f, size); rerr != nil {
				return fmt.Errorf("storage fault (%v), then rollback failed: %w", err, rerr)
			}
			return &storageError{err}
		}
		sess.mu.Lock()
		sess.size += int64(len(m.data))
		sess.crc = crc
		if sealed && !sess.sealed {
			sess.sealed = true
			sess.srv.metrics.SessionsSealed.Add(1)
		}
		sess.mu.Unlock()
	default:
		return fmt.Errorf("unexpected frame %#x in session queue", m.typ)
	}

	sess.mu.Lock()
	sess.lastAcked = m.seq
	err := sess.persistState()
	if err != nil {
		// Persist-before-ACK must hold: an acknowledged frame whose state
		// never landed would be lost by the next restore. Roll the whole
		// frame back — frontier and, for a chunk, the appended bytes — and
		// shed it instead; the client's resend replays it cleanly.
		sess.lastAcked, sess.size, sess.crc, sess.sealed = pre.Seq, pre.Size, pre.CRC, pre.Sealed
		var rerr error
		if m.typ == FrameChunk {
			rerr = sess.rollback(sess.f, pre.Size)
		}
		sess.persistFails++
		fails := sess.persistFails
		sess.mu.Unlock()
		sess.srv.metrics.StatePersistErrors.Add(1)
		if rerr != nil {
			return fmt.Errorf("%w: %v; rollback failed: %v", ErrStatePersist, err, rerr)
		}
		if fails >= maxPersistFails {
			return fmt.Errorf("%w: %d consecutive failures, last: %v", ErrStatePersist, fails, err)
		}
		return &storageError{fmt.Errorf("persisting ingest.state: %w", err)}
	}
	conn := sess.conn
	sess.persistFails = 0
	sess.mu.Unlock()
	sess.srv.diskFull.Store(false)
	sess.srv.metrics.ChunksIngested.Add(1)
	sess.srv.metrics.BytesIngested.Add(int64(len(m.data)))
	if conn != nil {
		conn.send(FrameAck, AppendSeq(nil, m.seq))
	}
	return nil
}

// finish handles a FIN marker: everything queued before it has been
// archived, so completeness is decided by the acknowledged frontier.
func (sess *session) finish(finSeq uint64) {
	sess.mu.Lock()
	conn := sess.conn
	complete := sess.lastAcked == finSeq && sess.sealed && sess.haveProgram
	acked := sess.lastAcked
	sealed := sess.sealed
	if complete {
		sess.done = true
	}
	sess.mu.Unlock()
	if conn == nil {
		return
	}
	switch {
	case complete:
		conn.send(FrameFinAck, AppendSeq(nil, finSeq))
	case !sealed && acked == finSeq:
		// Everything arrived but no seal record: the client ended the
		// stream without sealing — a protocol violation, not a retry.
		conn.sendErr("FIN before the stream's seal record")
	default:
		// Frames are missing (dropped under NACK policy, or the client
		// ran ahead): ask for a resend from the frontier.
		sess.srv.metrics.Nacks.Add(1)
		conn.send(FrameNack, AppendSeq(nil, acked+1))
	}
}

// quarantineErr classifies a session-poisoning archive error into the
// typed fault taxonomy and mirrors it to the registry, so a rejected upload
// is visible on /metrics with the same vocabulary the analysis ledger uses.
func (s *Server) quarantineErr(err error) {
	s.metrics.SessionsQuarantined.Add(1)
	switch {
	case errors.Is(err, streamfmt.ErrCorrupt):
		s.metrics.CorruptRecords.Add(1)
		s.cfg.Registry.Add(fault.QuarantineCounterName(fault.ReasonCorruptRecord), 1)
	case errors.Is(err, streamfmt.ErrShort):
		s.metrics.TornRecords.Add(1)
		s.cfg.Registry.Add(fault.QuarantineCounterName(fault.ReasonTornRecord), 1)
	}
}

// rejectAndPoison NACKs the frame that failed validation — telling the
// client the sequence was not accepted — then poisons the session. The
// blast radius is exactly this session id: sibling sessions on the same
// server (even the same connection policy and queue) keep archiving.
func (sess *session) rejectAndPoison(m msg, err error) {
	sess.mu.Lock()
	conn := sess.conn
	sess.mu.Unlock()
	if conn != nil && m.typ != FrameFin {
		sess.srv.metrics.Nacks.Add(1)
		conn.send(FrameNack, AppendSeq(nil, m.seq))
	}
	sess.poison(err)
}

// poison records a fatal session error, reports it to the attached client,
// and refuses all further frames for the id until the server restarts.
func (sess *session) poison(err error) {
	sess.mu.Lock()
	if sess.err == nil {
		sess.err = err
	}
	conn := sess.conn
	sess.mu.Unlock()
	sess.srv.metrics.Errors.Add(1)
	sess.srv.cfg.Logf("ingest: session %q poisoned: %v", sess.id, err)
	if conn != nil {
		conn.sendErr(fmt.Sprintf("session %q: %v", sess.id, err))
		conn.c.Close()
	}
}
