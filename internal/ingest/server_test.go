package ingest_test

// Loopback tests of the ingest server + client pair: every test starts a
// real TCP server and asserts the server-side archive comes out
// byte-identical to the stream the client pushed — including under injected
// disconnects, duplicate delivery, server restarts, tiny queues and
// concurrent sessions. The streams are synthetic (the server validates
// structure, not run semantics); end-to-end runs against real workloads
// live in the repo root's ingest e2e tests.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jportal/internal/bytecode"
	"jportal/internal/fault"
	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/iofault"
	"jportal/internal/pt"
	"jportal/internal/streamfmt"
	"jportal/internal/vm"
)

func testProgramGob(t *testing.T) []byte {
	t.Helper()
	prog := bytecode.MustAssemble(`
method T.main(0) {
    return
}
entry T.main
`)
	gob, err := client.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return gob
}

// buildStream returns a complete, sealed synthetic stream (header
// included) with nchunks trace-chunk records.
func buildStream(t *testing.T, ncores, nchunks int) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := streamfmt.NewEncoder(&buf, ncores)
	if err != nil {
		t.Fatal(err)
	}
	e.Sideband(vm.SwitchRecord{TSC: 1, Core: 0, Thread: 1})
	for i := 0; i < nchunks; i++ {
		items := []pt.Item{
			{Packet: pt.Packet{Kind: 1, IP: uint64(0x4000 + i), NBits: 5, Bits: uint64(i)}},
			{Packet: pt.Packet{Kind: 2, IP: uint64(0x5000 + i)}},
		}
		if err := e.Chunk(i%ncores, items); err != nil {
			t.Fatal(err)
		}
		e.Watermark(i%ncores, uint64(i+1)*100)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// chunksOf batches whole records into payloads of at most maxBytes.
func chunksOf(t *testing.T, records []byte, maxBytes int) [][]byte {
	t.Helper()
	var out [][]byte
	for off := 0; off < len(records); {
		end := off
		for end < len(records) {
			n, err := streamfmt.Scan(records[end:])
			if err != nil {
				t.Fatal(err)
			}
			if end > off && end+n-off > maxBytes {
				break
			}
			end += n
		}
		out = append(out, records[off:end])
		off = end
	}
	return out
}

func startServer(t *testing.T, cfg ingest.Config) (*ingest.Server, string) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, ln.Addr().String()
}

// pushStream uploads programGob + the stream's records through a Pusher and
// completes with FIN. Returns the pusher for stats.
func pushStream(t *testing.T, opts client.Options, programGob, stream []byte) *client.Pusher {
	t.Helper()
	ncores, err := streamfmt.ParseHeader(stream)
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Dial(context.Background(), opts, ncores)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Send(ingest.FrameProgram, programGob); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunksOf(t, stream[streamfmt.HeaderLen:], opts.MaxChunkBytes) {
		if _, err := p.Send(ingest.FrameChunk, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	return p
}

func assertArchived(t *testing.T, dataDir, id string, programGob, stream []byte) {
	t.Helper()
	got, err := os.ReadFile(filepath.Join(dataDir, id, "stream.jpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatalf("archived stream diverges: %d bytes vs %d pushed", len(got), len(stream))
	}
	gotGob, err := os.ReadFile(filepath.Join(dataDir, id, "program.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotGob, programGob) {
		t.Fatal("archived program.gob diverges")
	}
	meta, err := os.ReadFile(filepath.Join(dataDir, id, "archive.meta"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(meta, []byte("layout: chunked")) {
		t.Fatalf("archive.meta is not chunked:\n%s", meta)
	}
}

func TestUploadByteIdentical(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 20)

	p := pushStream(t, client.Options{Addr: addr, SessionID: "up", MaxChunkBytes: 256}, gob, stream)
	defer p.Close()
	assertArchived(t, dataDir, "up", gob, stream)

	state, err := os.ReadFile(filepath.Join(dataDir, "up", "ingest.state"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(state, []byte("sealed: true")) {
		t.Fatalf("state not sealed:\n%s", state)
	}
	m := srv.Metrics()
	if m.SessionsSealed.Load() != 1 || m.SessionsTotal.Load() != 1 {
		t.Fatalf("sealed=%d total=%d", m.SessionsSealed.Load(), m.SessionsTotal.Load())
	}
	if m.BytesIngested.Load() < int64(len(stream)-streamfmt.HeaderLen) {
		t.Fatalf("BytesIngested = %d", m.BytesIngested.Load())
	}
}

// rawSession speaks the frame protocol directly, for tests that need exact
// control over sequence numbers and timing.
type rawSession struct {
	t *testing.T
	c net.Conn
	// resume is the frontier HELLO_ACK reported.
	resume uint64
}

func dialRaw(t *testing.T, addr, id string, ncores int) *rawSession {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := ingest.WriteFrame(c, ingest.FrameHello,
			ingest.AppendHello(nil, ingest.ProtoVersion, ncores, id)); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := ingest.ReadFrame(c)
		if err != nil {
			t.Fatal(err)
		}
		if typ == ingest.FrameErr {
			c.Close()
			// The server may not have noticed a just-closed predecessor yet.
			if strings.Contains(string(payload), "active connection") && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			t.Fatalf("server rejected HELLO: %s", payload)
		}
		_, resume, err := ingest.ParseHelloAck(payload)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return &rawSession{t: t, c: c, resume: resume}
	}
}

// dialRawExpectErr performs a handshake that must be rejected.
func dialRawExpectErr(t *testing.T, addr string, hello []byte) string {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := ingest.WriteFrame(c, ingest.FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ingest.ReadFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if typ != ingest.FrameErr {
		t.Fatalf("got frame %#x, want ERR", typ)
	}
	return string(payload)
}

func (r *rawSession) send(typ byte, seq uint64, data []byte) {
	r.t.Helper()
	payload := append(ingest.AppendSeq(nil, seq), data...)
	if err := ingest.WriteFrame(r.c, typ, payload); err != nil {
		r.t.Fatal(err)
	}
}

// expect reads frames until one of type typ arrives (cumulative ACKs may
// repeat) and returns its sequence payload.
func (r *rawSession) expect(typ byte) uint64 {
	r.t.Helper()
	for {
		r.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		got, payload, err := ingest.ReadFrame(r.c)
		if err != nil {
			r.t.Fatalf("waiting for frame %#x: %v", typ, err)
		}
		if got == ingest.FrameErr {
			r.t.Fatalf("waiting for frame %#x, got ERR: %s", typ, payload)
		}
		if got != typ {
			continue
		}
		seq, _, err := ingest.ParseSeq(payload)
		if err != nil {
			r.t.Fatal(err)
		}
		return seq
	}
}

func (r *rawSession) expectErr() string {
	r.t.Helper()
	for {
		r.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		got, payload, err := ingest.ReadFrame(r.c)
		if err != nil {
			r.t.Fatalf("waiting for ERR: %v", err)
		}
		if got == ingest.FrameErr {
			return string(payload)
		}
	}
}

// waitAck reads until the cumulative ACK reaches seq.
func (r *rawSession) waitAck(seq uint64) {
	r.t.Helper()
	for {
		if got := r.expect(ingest.FrameAck); got >= seq {
			return
		}
	}
}

func TestDuplicateAfterReconnectIsIdempotent(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 6)
	chunks := chunksOf(t, stream[streamfmt.HeaderLen:], 128)
	if len(chunks) < 2 {
		t.Fatalf("stream too small to split: %d chunks", len(chunks))
	}

	// First connection: program + the first chunk, then vanish.
	r1 := dialRaw(t, addr, "dup", 2)
	if r1.resume != 0 {
		t.Fatalf("fresh session resumes at %d", r1.resume)
	}
	r1.send(ingest.FrameProgram, 1, gob)
	r1.send(ingest.FrameChunk, 2, chunks[0])
	r1.waitAck(2)
	r1.c.Close()

	// Reconnect: the frontier is 2; deliver chunk seq 2 AGAIN (the client
	// lost the ACK), which must be dropped and re-ACKed, not re-appended.
	r2 := dialRaw(t, addr, "dup", 2)
	if r2.resume != 2 {
		t.Fatalf("resume = %d, want 2", r2.resume)
	}
	r2.send(ingest.FrameChunk, 2, chunks[0])
	r2.waitAck(2)
	if srv.Metrics().Duplicates.Load() == 0 {
		t.Fatal("duplicate not counted")
	}
	// Now the rest, in order, and FIN.
	seq := uint64(3)
	for _, c := range chunks[1:] {
		r2.send(ingest.FrameChunk, seq, c)
		seq++
	}
	last := seq - 1
	r2.waitAck(last)
	r2.send(ingest.FrameFin, last, nil)
	if got := r2.expect(ingest.FrameFinAck); got != last {
		t.Fatalf("FIN_ACK %d, want %d", got, last)
	}
	assertArchived(t, dataDir, "dup", gob, stream)
	if srv.Metrics().SessionsResumed.Load() != 1 {
		t.Fatalf("SessionsResumed = %d", srv.Metrics().SessionsResumed.Load())
	}
}

func TestSequenceGapEarnsNack(t *testing.T) {
	_, addr := startServer(t, ingest.Config{DataDir: t.TempDir()})
	r := dialRaw(t, addr, "gap", 2)
	r.send(ingest.FrameProgram, 1, testProgramGob(t))
	r.waitAck(1)
	r.send(ingest.FrameChunk, 5, []byte{streamfmt.TagWatermark, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	if want := r.expect(ingest.FrameNack); want != 2 {
		t.Fatalf("NACK wants %d, want 2", want)
	}
}

func TestFinBeforeSealIsAnError(t *testing.T) {
	_, addr := startServer(t, ingest.Config{DataDir: t.TempDir()})
	stream := buildStream(t, 2, 2)
	records := stream[streamfmt.HeaderLen:]
	unsealed := records[:len(records)-5] // drop the seal record

	r := dialRaw(t, addr, "noseal", 2)
	r.send(ingest.FrameProgram, 1, testProgramGob(t))
	r.send(ingest.FrameChunk, 2, unsealed)
	r.waitAck(2)
	r.send(ingest.FrameFin, 2, nil)
	if msg := r.expectErr(); msg == "" {
		t.Fatal("empty ERR message")
	}
}

func TestCorruptChunkPoisonsSession(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	stream := buildStream(t, 2, 2)
	records := stream[streamfmt.HeaderLen:]

	// Flip a payload byte: the seal CRC can no longer match, so the session
	// must be poisoned instead of archiving a silently damaged stream.
	bad := append([]byte(nil), records...)
	bad[len(bad)-12] ^= 0xFF

	r := dialRaw(t, addr, "corrupt", 2)
	r.send(ingest.FrameProgram, 1, testProgramGob(t))
	r.send(ingest.FrameChunk, 2, bad)
	if msg := r.expectErr(); msg == "" {
		t.Fatal("empty ERR message")
	}
	if srv.Metrics().Errors.Load() == 0 {
		t.Fatal("error not counted")
	}
	// The poisoned session refuses a new connection until a restart.
	if msg := dialRawExpectErr(t, addr,
		ingest.AppendHello(nil, ingest.ProtoVersion, 2, "corrupt")); msg == "" {
		t.Fatal("poisoned session accepted a reconnect")
	}
}

func TestHelloRejections(t *testing.T) {
	_, addr := startServer(t, ingest.Config{DataDir: t.TempDir()})
	cases := []struct {
		name  string
		hello []byte
	}{
		{"bad version", ingest.AppendHello(nil, 99, 2, "ok")},
		{"bad id", ingest.AppendHello(nil, ingest.ProtoVersion, 2, "../evil")},
		{"zero cores", ingest.AppendHello(nil, ingest.ProtoVersion, 0, "ok")},
	}
	for _, tc := range cases {
		if msg := dialRawExpectErr(t, addr, tc.hello); msg == "" {
			t.Errorf("%s: empty ERR", tc.name)
		}
	}
	// A second HELLO with a different core count than the session was
	// opened with must be rejected too.
	r := dialRaw(t, addr, "cores", 2)
	_ = r
	if msg := dialRawExpectErr(t, addr,
		ingest.AppendHello(nil, ingest.ProtoVersion, 3, "cores")); msg == "" {
		t.Error("core-count mismatch accepted")
	}
}

func TestMidChunkDisconnectThenResume(t *testing.T) {
	dataDir := t.TempDir()
	_, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 10)

	// A connection that dies halfway through writing a CHUNK frame: the
	// server must discard the torn frame and keep the session resumable.
	r := dialRaw(t, addr, "torn", 2)
	r.send(ingest.FrameProgram, 1, gob)
	r.waitAck(1)
	frame := append([]byte{ingest.FrameChunk, 0, 0, 0, 0}, ingest.AppendSeq(nil, 2)...)
	frame = append(frame, stream[streamfmt.HeaderLen:]...)
	// Patch the length, then send only half the frame and hang up.
	binary.LittleEndian.PutUint32(frame[1:5], uint32(len(frame)-5))
	if _, err := r.c.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	r.c.Close()

	// Give the server a moment to notice the dead reader and detach.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, err := client.Dial(context.Background(),
			client.Options{Addr: addr, SessionID: "torn", MaxChunkBytes: 256}, 2)
		if err == nil {
			if p.ResumeSeq() != 1 {
				t.Fatalf("resume = %d, want 1 (torn frame must not count)", p.ResumeSeq())
			}
			if _, err := p.Send(ingest.FrameProgram, gob); err != nil {
				t.Fatal(err)
			}
			for _, c := range chunksOf(t, stream[streamfmt.HeaderLen:], 256) {
				if _, err := p.Send(ingest.FrameChunk, c); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Finish(); err != nil {
				t.Fatal(err)
			}
			p.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not re-attach: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertArchived(t, dataDir, "torn", gob, stream)
}

// limitConn injects a connection failure after a byte budget, cutting the
// stream mid-frame like a real network partition would.
type limitConn struct {
	net.Conn
	remaining int
}

func (c *limitConn) Write(b []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected connection failure")
	}
	if len(b) > c.remaining {
		n, _ := c.Conn.Write(b[:c.remaining])
		c.remaining = 0
		c.Conn.Close()
		return n, errors.New("injected connection failure")
	}
	c.remaining -= len(b)
	return c.Conn.Write(b)
}

func TestClientSurvivesInjectedDisconnects(t *testing.T) {
	dataDir := t.TempDir()
	_, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 30)

	// The first two connections die after a few KB; later ones are clean.
	var dials atomic.Int32
	opts := client.Options{
		Addr: addr, SessionID: "flaky", MaxChunkBytes: 256,
		Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", a)
			if err != nil {
				return nil, err
			}
			if n := dials.Add(1); n <= 2 {
				return &limitConn{Conn: c, remaining: 600 * int(n)}, nil
			}
			return c, nil
		},
	}
	p := pushStream(t, opts, gob, stream)
	defer p.Close()
	if p.Reconnects() == 0 {
		t.Fatal("no reconnects despite injected failures")
	}
	assertArchived(t, dataDir, "flaky", gob, stream)
}

func TestServerRestartResumesFromState(t *testing.T) {
	dataDir := t.TempDir()
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 12)
	chunks := chunksOf(t, stream[streamfmt.HeaderLen:], 200)
	if len(chunks) < 4 {
		t.Fatalf("stream too small: %d chunks", len(chunks))
	}
	half := len(chunks) / 2

	// First server lifetime: program + half the chunks, no FIN.
	srv1, addr1 := startServer(t, ingest.Config{DataDir: dataDir})
	p1, err := client.Dial(context.Background(),
		client.Options{Addr: addr1, SessionID: "restart", MaxChunkBytes: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Send(ingest.FrameProgram, gob); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks[:half] {
		if _, err := p1.Send(ingest.FrameChunk, c); err != nil {
			t.Fatal(err)
		}
	}
	sent := uint64(1 + half)
	for deadline := time.Now().Add(5 * time.Second); p1.Acked() < sent; {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d/%d before restart", p1.Acked(), sent)
		}
		time.Sleep(5 * time.Millisecond)
	}
	p1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()

	// Second lifetime over the same data dir: the state file brings the
	// session back at the acknowledged frontier; re-pushing everything
	// skips the archived prefix and completes the upload.
	_, addr2 := startServer(t, ingest.Config{DataDir: dataDir})
	p2, err := client.Dial(context.Background(),
		client.Options{Addr: addr2, SessionID: "restart", MaxChunkBytes: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ResumeSeq() != sent {
		t.Fatalf("resume = %d, want %d", p2.ResumeSeq(), sent)
	}
	if _, err := p2.Send(ingest.FrameProgram, gob); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if _, err := p2.Send(ingest.FrameChunk, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Finish(); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	assertArchived(t, dataDir, "restart", gob, stream)
}

func TestTinyQueueNackPolicyStillByteIdentical(t *testing.T) {
	// A deliberately slow consumer: depth-1 queue under the NACK policy.
	// Overflow NACKs (if the writer falls behind) must heal transparently.
	dataDir := t.TempDir()
	_, addr := startServer(t, ingest.Config{
		DataDir: dataDir, QueueDepth: 1, Policy: ingest.PolicyNack,
	})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 40)
	opts := client.Options{
		Addr: addr, SessionID: "tiny", MaxChunkBytes: 128,
		Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	}
	p := pushStream(t, opts, gob, stream)
	defer p.Close()
	assertArchived(t, dataDir, "tiny", gob, stream)
}

func TestConcurrentSessions(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)

	const sessions = 4
	streams := make([][]byte, sessions)
	for i := range streams {
		streams[i] = buildStream(t, 2, 10+5*i)
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = func() error {
				opts := client.Options{
					Addr: addr, SessionID: fmt.Sprintf("agent-%d", i), MaxChunkBytes: 256,
				}
				p, err := client.Dial(context.Background(), opts, 2)
				if err != nil {
					return err
				}
				defer p.Close()
				if _, err := p.Send(ingest.FrameProgram, gob); err != nil {
					return err
				}
				for _, c := range chunksOf(t, streams[i][streamfmt.HeaderLen:], 256) {
					if _, err := p.Send(ingest.FrameChunk, c); err != nil {
						return err
					}
				}
				return p.Finish()
			}()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	for i := 0; i < sessions; i++ {
		assertArchived(t, dataDir, fmt.Sprintf("agent-%d", i), gob, streams[i])
	}
	m := srv.Metrics()
	if m.SessionsTotal.Load() != sessions || m.SessionsSealed.Load() != sessions {
		t.Fatalf("total=%d sealed=%d, want %d", m.SessionsTotal.Load(), m.SessionsSealed.Load(), sessions)
	}
}

func TestShutdownDrainsAcceptedFrames(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 8)
	chunks := chunksOf(t, stream[streamfmt.HeaderLen:], 200)

	p, err := client.Dial(context.Background(),
		client.Options{Addr: addr, SessionID: "drainee", MaxChunkBytes: 200}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Send(ingest.FrameProgram, gob); err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if _, err := p.Send(ingest.FrameChunk, c); err != nil {
			t.Fatal(err)
		}
	}
	sent := uint64(1 + len(chunks))
	for deadline := time.Now().Add(5 * time.Second); p.Acked() < sent; {
		if time.Now().After(deadline) {
			t.Fatalf("acked %d/%d", p.Acked(), sent)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain with an attached (idle) connection: the budget expires, the
	// connection is force-closed, but everything acknowledged is on disk.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (client was attached)", err)
	}
	got, err := os.ReadFile(filepath.Join(dataDir, "drainee", "stream.jpt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatalf("drained archive %d bytes, pushed %d", len(got), len(stream))
	}
	if srv.Metrics().SessionsDrained.Load() != 1 {
		t.Fatalf("SessionsDrained = %d", srv.Metrics().SessionsDrained.Load())
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	web := httptest.NewServer(srv.Observability())
	defer web.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := web.Client().Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		return resp.StatusCode, body.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}

	gob := testProgramGob(t)
	stream := buildStream(t, 2, 5)
	p := pushStream(t, client.Options{Addr: addr, SessionID: "obs", MaxChunkBytes: 256}, gob, stream)
	p.Close()

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"sessions_open", "sessions_total", "sessions_sealed",
		"chunks_ingested", "bytes_ingested", "queue_depth", "nacks", "duplicates", "errors"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if m["sessions_total"] != 1 || m["sessions_sealed"] != 1 || m["bytes_ingested"] == 0 {
		t.Fatalf("metrics: %v", m)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if code, body := get("/healthz"); code != 503 || !bytes.Contains([]byte(body), []byte("draining")) {
		t.Fatalf("healthz during drain = %d %q", code, body)
	}
}

// TestPoisonedSessionDoesNotAffectSiblings interleaves a clean session with
// one that uploads a corrupt chunk: the bad frame earns a NACK and poisons
// exactly its own session, while the sibling seals a byte-identical archive
// on the same server.
func TestPoisonedSessionDoesNotAffectSiblings(t *testing.T) {
	dataDir := t.TempDir()
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 4)
	records := stream[streamfmt.HeaderLen:]

	bad := append([]byte(nil), records...)
	bad[len(bad)-12] ^= 0xFF // break the seal CRC

	clean := dialRaw(t, addr, "clean", 2)
	poisoned := dialRaw(t, addr, "poisoned", 2)

	// Interleave: the clean session is mid-upload when the sibling poisons.
	clean.send(ingest.FrameProgram, 1, gob)
	clean.waitAck(1)
	poisoned.send(ingest.FrameProgram, 1, gob)
	poisoned.send(ingest.FrameChunk, 2, bad)
	if got := poisoned.expect(ingest.FrameNack); got != 2 {
		t.Fatalf("NACK for rejected frame = seq %d, want 2", got)
	}
	if msg := poisoned.expectErr(); !strings.Contains(msg, "corrupt") {
		t.Fatalf("poisoned session ERR = %q, want a corrupt-stream cause", msg)
	}

	// The sibling finishes untouched and its archive is byte-identical.
	clean.send(ingest.FrameChunk, 2, records)
	clean.waitAck(2)
	clean.send(ingest.FrameFin, 2, nil)
	if got := clean.expect(ingest.FrameFinAck); got != 2 {
		t.Fatalf("clean FIN_ACK seq = %d", got)
	}
	assertArchived(t, dataDir, "clean", gob, stream)

	m := srv.Metrics()
	if q := m.SessionsQuarantined.Load(); q != 1 {
		t.Fatalf("SessionsQuarantined = %d, want 1", q)
	}
	if c := m.CorruptRecords.Load(); c != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", c)
	}
	// The poisoned id stays quarantined; the clean id sealed normally.
	if msg := dialRawExpectErr(t, addr,
		ingest.AppendHello(nil, ingest.ProtoVersion, 2, "poisoned")); msg == "" {
		t.Fatal("poisoned session accepted a reconnect")
	}
	if m.SessionsSealed.Load() != 1 {
		t.Fatalf("SessionsSealed = %d, want 1", m.SessionsSealed.Load())
	}
}

// TestTornChunkQuarantinesAsTorn uploads a chunk that ends mid-record: the
// session is quarantined under the torn-record class, not the corrupt one.
func TestTornChunkQuarantinesAsTorn(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{DataDir: t.TempDir()})
	stream := buildStream(t, 2, 2)
	records := stream[streamfmt.HeaderLen:]

	r := dialRaw(t, addr, "torn", 2)
	r.send(ingest.FrameProgram, 1, testProgramGob(t))
	r.send(ingest.FrameChunk, 2, records[:len(records)-3])
	if got := r.expect(ingest.FrameNack); got != 2 {
		t.Fatalf("NACK seq = %d, want 2", got)
	}
	if msg := r.expectErr(); msg == "" {
		t.Fatal("empty ERR")
	}
	if n := srv.Metrics().TornRecords.Load(); n != 1 {
		t.Fatalf("TornRecords = %d, want 1", n)
	}
	if n := srv.Metrics().CorruptRecords.Load(); n != 0 {
		t.Fatalf("CorruptRecords = %d, want 0", n)
	}
}

// TestMetricsExposeFaultCounters asserts the /metrics sidecar pre-declares
// the whole fault vocabulary — every injector class and quarantine reason —
// plus the ingest quarantine counters, before any fault has occurred.
func TestMetricsExposeFaultCounters(t *testing.T) {
	srv, _ := startServer(t, ingest.Config{DataDir: t.TempDir()})
	web := httptest.NewServer(srv.Observability())
	defer web.Close()

	resp, err := web.Client().Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	var m map[string]int64
	if err := json.Unmarshal(body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body.String())
	}
	for _, c := range fault.Classes() {
		if _, ok := m[fault.InjectCounterName(c)]; !ok {
			t.Errorf("metrics missing %q", fault.InjectCounterName(c))
		}
	}
	for _, r := range fault.Reasons() {
		if _, ok := m[fault.QuarantineCounterName(r)]; !ok {
			t.Errorf("metrics missing %q", fault.QuarantineCounterName(r))
		}
	}
	for _, c := range iofault.Classes() {
		if _, ok := m[c.InjectCounterName()]; !ok {
			t.Errorf("metrics missing %q", c.InjectCounterName())
		}
	}
	for _, key := range []string{
		"sessions_quarantined", "records_corrupt", "records_torn",
		// Robustness-layer counters and gauges (DESIGN.md §11): pre-declared
		// so a scraper can alert on them before the first incident.
		"busy_rejections", "frames_shed", "breaker_trips", "writer_stalls",
		"state_fallbacks", "queued_bytes", "watchdog_stalls", "checkpoints_written",
		// Fleet counters (DESIGN.md §14): redirects answered on behalf of
		// another node and sessions resumed from durable state after a
		// restart or an ownership handoff.
		"redirects_sent", "sessions_restored",
		// Control-plane resilience counters (DESIGN.md §15): injected
		// network faults and clients that ran out of retry budget.
		"netfault_injected_total", "client_retry_budget_exhausted",
		// Storage-durability counters (DESIGN.md §16): injected disk
		// faults, the graceful-degradation write path, and the scrubber
		// and retention/compaction outcomes.
		"iofault_injected_total", "storage_sheds", "enospc_sheds",
		"state_persist_errors", "disk_full_rejections",
		"scrub_sessions_scanned", "scrub_bytes_verified",
		"scrub_torn_tails_repaired", "scrub_sessions_refetched",
		"scrub_sessions_quarantined", "scrub_sessions_reset",
		"retention_sessions_deleted", "retention_bytes_reclaimed",
		"compaction_archives_rewritten", "compaction_records_dropped",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// staticRouter routes listed sessions to a fixed owner address and
// everything else locally — a stand-in for the fleet hash ring.
type staticRouter struct{ owner map[string]string }

func (r staticRouter) Route(id string) (string, bool) {
	if addr, ok := r.owner[id]; ok {
		return addr, false
	}
	return "", true
}

// TestRouterVersionGate pins the fleet-era handshake contract for every
// protocol generation: a v3 client whose session lives elsewhere gets a
// REDIRECT; v1/v2 clients — which cannot parse v3 frames — get a typed
// "protocol-version" ERR (a clean verdict, not a hang or a misparsed
// frame); and sessions the router maps locally are untouched by any of it.
func TestRouterVersionGate(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{
		DataDir: t.TempDir(),
		Router:  staticRouter{owner: map[string]string{"elsewhere": "10.255.0.9:7"}},
	})

	// v3: REDIRECT carrying the owner's address.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := ingest.WriteFrame(c, ingest.FrameHello,
		ingest.AppendHello(nil, ingest.ProtoVersionRedirect, 2, "elsewhere")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ingest.ReadFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if typ != ingest.FrameRedirect {
		t.Fatalf("v3 routed HELLO: got frame %#x, want REDIRECT", typ)
	}
	owner, err := ingest.ParseRedirect(payload)
	if err != nil {
		t.Fatal(err)
	}
	if owner != "10.255.0.9:7" {
		t.Fatalf("REDIRECT to %q", owner)
	}

	// v1 and v2: typed ERR, never a v3 frame.
	for _, version := range []uint32{ingest.MinProtoVersion, ingest.ProtoVersionBusy} {
		msg := dialRawExpectErr(t, addr,
			ingest.AppendHello(nil, version, 2, "elsewhere"))
		category, _ := ingest.SplitErr([]byte(msg))
		if category != ingest.ErrCategoryProtocol {
			t.Errorf("v%d routed HELLO: ERR %q lacks the %s category",
				version, msg, ingest.ErrCategoryProtocol)
		}
	}

	// A session the router keeps local attaches normally at any version.
	r := dialRaw(t, addr, "local", 2)
	if r.resume != 0 {
		t.Fatalf("fresh local session resumed at %d", r.resume)
	}

	if got := srv.Metrics().RedirectsSent.Load(); got != 3 {
		t.Fatalf("RedirectsSent = %d, want 3", got)
	}
}

// TestClientFollowsRedirect runs two servers; the first routes the session
// to the second. The client dials the first, transparently follows the
// REDIRECT, and the archive materialises on the owner — byte-identical.
func TestClientFollowsRedirect(t *testing.T) {
	frontDir, ownerDir := t.TempDir(), t.TempDir()
	ownerSrv, ownerAddr := startServer(t, ingest.Config{DataDir: ownerDir})
	front, frontAddr := startServer(t, ingest.Config{DataDir: frontDir})
	front.SetRouter(staticRouter{owner: map[string]string{"moved": ownerAddr}})

	gob := testProgramGob(t)
	stream := buildStream(t, 2, 12)
	p := pushStream(t, client.Options{Addr: frontAddr, SessionID: "moved", MaxChunkBytes: 256}, gob, stream)
	defer p.Close()

	if p.Redirects() != 1 {
		t.Fatalf("Redirects = %d, want 1", p.Redirects())
	}
	assertArchived(t, ownerDir, "moved", gob, stream)
	if _, err := os.Stat(filepath.Join(frontDir, "moved")); !os.IsNotExist(err) {
		t.Fatalf("session dir materialised on the redirecting node (err=%v)", err)
	}
	if n := ownerSrv.Metrics().SessionsSealed.Load(); n != 1 {
		t.Fatalf("owner sealed %d sessions, want 1", n)
	}
}
