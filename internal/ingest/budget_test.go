package ingest_test

// Client-side resilience contracts: the shared connect-level retry
// budget, the typed redirect-loop verdict, and entry-point rotation
// across coordinator replicas.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"

	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/metrics"
)

func TestRetryBudgetExhaustionIsTerminal(t *testing.T) {
	before := metrics.Default.Get(metrics.CounterClientRetryBudget)
	dials := 0
	_, err := client.Dial(context.Background(), client.Options{
		Addr:        "127.0.0.1:1",
		SessionID:   "budget",
		MaxAttempts: 100,
		RetryBudget: 3,
		Backoff:     1, // nanoseconds; the budget, not the clock, ends this
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			dials++
			return nil, errors.New("synthetic dial failure")
		},
	}, 2)
	if err == nil {
		t.Fatal("dial succeeded against a permanently failing transport")
	}
	var be *client.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T) is not a *BudgetError", err, err)
	}
	if be.Budget != 3 || be.Last == nil {
		t.Fatalf("BudgetError = %+v", be)
	}
	// The budget bounds the retries, not the first attempt: budget 3 means
	// at most 1 + 3 dials, far below MaxAttempts' 100.
	if dials != 4 {
		t.Fatalf("dials = %d, want 4 (1 attempt + 3 budgeted retries)", dials)
	}
	if got := metrics.Default.Get(metrics.CounterClientRetryBudget) - before; got != 1 {
		t.Fatalf("client_retry_budget_exhausted moved by %d, want 1 (counted once at the crossing)", got)
	}
}

func TestUnlimitedBudgetKeepsRetrying(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{DataDir: t.TempDir()})
	fails := 0
	p, err := client.Dial(context.Background(), client.Options{
		Addr:        addr,
		SessionID:   "patient",
		MaxAttempts: 64,
		RetryBudget: -1,
		Backoff:     1,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			// Fail more times than any finite default would tolerate cheaply,
			// then connect for real.
			if fails < 20 {
				fails++
				return nil, errors.New("flaky")
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", a)
		},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.BudgetSpent() != 20 {
		t.Fatalf("BudgetSpent = %d, want 20", p.BudgetSpent())
	}
	_ = srv
}

// redirectLoopServer answers every HELLO with a REDIRECT to itself.
func redirectLoopServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				if _, _, err := ingest.ReadFrame(c); err != nil {
					return
				}
				ingest.WriteFrame(c, ingest.FrameRedirect,
					ingest.AppendRedirect(nil, ln.Addr().String()))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestRedirectLoopIsTypedAndTerminal(t *testing.T) {
	addr := redirectLoopServer(t)
	dials := 0
	_, err := client.Dial(context.Background(), client.Options{
		Addr:        addr,
		SessionID:   "looped",
		MaxAttempts: 8,
		Backoff:     1,
		Dial: func(ctx context.Context, a string) (net.Conn, error) {
			dials++
			var d net.Dialer
			return d.DialContext(ctx, "tcp", a)
		},
	}, 2)
	if err == nil {
		t.Fatal("dial escaped a redirect loop")
	}
	var se *client.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a *ServerError", err, err)
	}
	if se.Category != ingest.ErrCategoryRedirectLoop {
		t.Fatalf("category %q, want %q", se.Category, ingest.ErrCategoryRedirectLoop)
	}
	if !se.Terminal() {
		t.Fatal("redirect-loop verdict is not terminal")
	}
	// The message carries the hop trail for the operator.
	if !strings.Contains(se.Message, addr+" -> "+addr) {
		t.Fatalf("message %q lacks the hop trail", se.Message)
	}
	// Terminal means fail fast: one walk of the hop bound, no MaxAttempts
	// worth of re-walks.
	if dials > 6 {
		t.Fatalf("dials = %d: a terminal verdict must not be retried", dials)
	}
	// And SplitErr round-trips the category for server-originated forms.
	cat, _ := ingest.SplitErr(ingest.FormatErr(ingest.ErrCategoryRedirectLoop, "x"))
	if cat != ingest.ErrCategoryRedirectLoop {
		t.Fatalf("SplitErr lost the redirect-loop category: %q", cat)
	}
}

func TestAddrsRotateAcrossEntryPoints(t *testing.T) {
	dataDir := t.TempDir()
	_, live := startServer(t, ingest.Config{DataDir: dataDir})
	// A dead entry point first in the list: the pusher must rotate past it
	// rather than burn all attempts on it.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	gob := testProgramGob(t)
	stream := buildStream(t, 2, 8)
	p := pushStream(t, client.Options{
		Addrs:       []string{deadAddr, live},
		SessionID:   "rotated",
		MaxAttempts: 8,
		Backoff:     1,
	}, gob, stream)
	defer p.Close()
	if p.BudgetSpent() < 1 {
		t.Fatalf("BudgetSpent = %d, want >= 1 (the dead entry point cost a retry)", p.BudgetSpent())
	}
	assertArchived(t, dataDir, "rotated", gob, stream)
}
