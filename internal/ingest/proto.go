// Package ingest is jportal's networked trace-ingest layer: a TCP server
// (jportal serve) that accepts many concurrent agent connections, each
// relaying the records of a chunked run archive (internal/streamfmt), and
// assembles per-session archives byte-identical to what a local
// `jportal collect -chunked` of the same run would have written.
//
// # Wire protocol
//
// A connection carries length-prefixed frames, little-endian throughout:
//
//	u8 type | u32 payloadLen | payload
//
// The client opens with HELLO (protocol version, core count, session id)
// and the server answers HELLO_ACK with the highest contiguous sequence
// number it has durably archived for that session — zero for a fresh
// session. Data then flows as PROGRAM (the program.gob bytes, always
// sequence 1) and CHUNK frames (whole stream.jpt records, sequences 2..N),
// each acknowledged cumulatively with ACK once appended and flushed.
// The exchange ends with FIN/FIN_ACK after the stream's seal record has
// arrived and its CRC has been verified.
//
// Sequence numbers make re-delivery idempotent: a frame at or below the
// acknowledged sequence is dropped (and re-ACKed), so a client that
// reconnects after losing ACKs can blindly resend its unacknowledged tail.
// A gap — or a frame rejected because the session's bounded queue is full
// under the NACK backpressure policy — earns a NACK carrying the sequence
// the server wants next; the client backs off and resends from there.
// ERR is terminal for the connection and carries a human-readable reason.
// BUSY (protocol 2+) answers a HELLO the server refuses for load reasons —
// the concurrent-session cap or the global memory budget — and carries a
// retry-after hint in milliseconds; the client backs off with jitter and
// redials instead of treating the refusal as an error.
// REDIRECT (protocol 3+) answers a HELLO for a session this process does
// not own in a sharded fleet: it carries the owning node's ingest address
// and the client redials there. A v1/v2 client that hits a v3-only path is
// answered with a typed ERR in the "protocol-version" category — never a
// frame it could misparse, never silence.
package ingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// ProtoVersion is the frame-protocol version exchanged in HELLO. Version 2
// adds the BUSY admission-control frame; version 3 adds the fleet REDIRECT
// frame and the optional HELLO source-ID field. Servers still accept
// version-1/2 clients, but answer v3-only verdicts (a redirect to the
// session's owning node) with a typed protocol-version ERR those clients
// can surface instead of a frame they would misparse.
const ProtoVersion = 3

// MinProtoVersion is the oldest client protocol the server still speaks.
const MinProtoVersion = 1

// ProtoVersionBusy is the first protocol version whose clients understand
// the BUSY frame.
const ProtoVersionBusy = 2

// ProtoVersionRedirect is the first protocol version whose clients
// understand the REDIRECT frame (and may carry a source ID in HELLO).
const ProtoVersionRedirect = 3

// Frame types.
const (
	FrameHello    byte = 0x01 // c->s: u32 version | u32 ncores | u16 idLen | id
	FrameHelloAck byte = 0x02 // s->c: u32 version | u64 resumeSeq
	FrameProgram  byte = 0x03 // c->s: u64 seq | program.gob bytes
	FrameChunk    byte = 0x04 // c->s: u64 seq | whole stream.jpt records
	FrameFin      byte = 0x05 // c->s: u64 lastSeq
	FrameAck      byte = 0x06 // s->c: u64 seq (cumulative)
	FrameNack     byte = 0x07 // s->c: u64 wantSeq (resend from here, after backoff)
	FrameFinAck   byte = 0x08 // s->c: u64 seq
	FrameErr      byte = 0x09 // s->c: utf-8 message, connection is dead
	FrameBusy     byte = 0x0A // s->c: u32 retryAfterMs; admission refused, retry later (v2+)
	FrameRedirect byte = 0x0B // s->c: u16 addrLen | addr; session owned by another node, redial there (v3+)
)

// MaxFramePayload caps a frame's payload. Chunks are far smaller (the
// client defaults to 64KiB); the cap keeps a corrupt or hostile length
// field from driving a giant allocation.
const MaxFramePayload = 1 << 24

// MaxSessionIDLen bounds the session id, which doubles as the archive
// directory name under the server's data dir.
const MaxSessionIDLen = 128

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, enforcing MaxFramePayload.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("ingest: frame %#x declares %d payload bytes (max %d)", hdr[0], n, MaxFramePayload)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return hdr[0], payload, nil
}

// AppendHello encodes a HELLO payload with no source field — the exact
// wire bytes every pre-v3 client sends.
func AppendHello(dst []byte, version uint32, ncores int, id string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ncores))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(id)))
	return append(dst, id...)
}

// AppendHelloSource encodes a HELLO payload carrying a trace-source ID
// (v3+): the server initializes the session's archive header with it, so
// non-default backends (RISC-V E-Trace) survive the network hop and any
// later node handoff. An empty src emits the field-free pre-v3 layout, so
// default-source uploads stay byte-compatible with older servers.
func AppendHelloSource(dst []byte, version uint32, ncores int, id, src string) []byte {
	dst = AppendHello(dst, version, ncores, id)
	if src == "" {
		return dst
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(src)))
	return append(dst, src...)
}

// ParseHello decodes a HELLO payload. src is empty unless the client sent
// the optional v3 source-ID field.
func ParseHello(p []byte) (version uint32, ncores int, id, src string, err error) {
	if len(p) < 10 {
		return 0, 0, "", "", fmt.Errorf("ingest: short HELLO (%d bytes)", len(p))
	}
	version = binary.LittleEndian.Uint32(p[0:4])
	ncores = int(binary.LittleEndian.Uint32(p[4:8]))
	n := int(binary.LittleEndian.Uint16(p[8:10]))
	if len(p) < 10+n {
		return 0, 0, "", "", fmt.Errorf("ingest: HELLO id length %d does not match payload", n)
	}
	id = string(p[10 : 10+n])
	rest := p[10+n:]
	if len(rest) == 0 {
		return version, ncores, id, "", nil
	}
	if len(rest) < 2 {
		return 0, 0, "", "", fmt.Errorf("ingest: HELLO has a torn source field (%d trailing bytes)", len(rest))
	}
	sn := int(binary.LittleEndian.Uint16(rest[0:2]))
	if len(rest) != 2+sn {
		return 0, 0, "", "", fmt.Errorf("ingest: HELLO source length %d does not match payload", sn)
	}
	return version, ncores, id, string(rest[2:]), nil
}

// ValidSessionID reports whether id is acceptable as a session identifier:
// non-empty, bounded, and safe to use as a directory name (letters, digits,
// '.', '_', '-'; must not start with '.', so neither "." nor ".." nor
// hidden-file names pass).
func ValidSessionID(id string) bool {
	if id == "" || len(id) > MaxSessionIDLen || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// AppendSeq encodes the single-u64 payloads (HELLO_ACK, ACK, NACK, FIN,
// FIN_ACK) and the sequence prefix of PROGRAM/CHUNK.
func AppendSeq(dst []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// ParseSeq decodes a payload that begins with a u64 sequence number and
// returns the remainder (the data of PROGRAM/CHUNK frames).
func ParseSeq(p []byte) (seq uint64, rest []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("ingest: short sequenced payload (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8:], nil
}

// AppendBusy encodes a BUSY payload: how long the client should wait
// before redialing, in milliseconds. BUSY is an admission-control verdict,
// not a connection error — the session may well be accepted on retry.
func AppendBusy(dst []byte, retryAfterMs uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, retryAfterMs)
}

// ParseBusy decodes a BUSY payload.
func ParseBusy(p []byte) (retryAfterMs uint32, err error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("ingest: BUSY payload is %d bytes, want 4", len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// AppendHelloAck encodes a HELLO_ACK payload: the protocol version the
// server speaks and the resume sequence (highest contiguous sequence
// durably archived; the client resends from resumeSeq+1).
func AppendHelloAck(dst []byte, version uint32, resumeSeq uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, version)
	return binary.LittleEndian.AppendUint64(dst, resumeSeq)
}

// ParseHelloAck decodes a HELLO_ACK payload.
func ParseHelloAck(p []byte) (version uint32, resumeSeq uint64, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("ingest: HELLO_ACK payload is %d bytes, want 12", len(p))
	}
	return binary.LittleEndian.Uint32(p[0:4]), binary.LittleEndian.Uint64(p[4:12]), nil
}

// MaxRedirectAddrLen bounds a REDIRECT target address.
const MaxRedirectAddrLen = 256

// AppendRedirect encodes a REDIRECT payload: the ingest address (host:port)
// of the node that owns the session. A v3+ client closes this connection
// and redials the owner; the frame is never sent to older clients.
func AppendRedirect(dst []byte, addr string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(addr)))
	return append(dst, addr...)
}

// ParseRedirect decodes a REDIRECT payload.
func ParseRedirect(p []byte) (addr string, err error) {
	if len(p) < 2 {
		return "", fmt.Errorf("ingest: short REDIRECT (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) != 2+n || n == 0 || n > MaxRedirectAddrLen {
		return "", fmt.Errorf("ingest: REDIRECT address length %d does not match payload", n)
	}
	return string(p[2:]), nil
}

// ErrCategoryProtocol is the typed-ERR category for protocol-version
// verdicts: the server needed a v3-only frame (REDIRECT) but the client's
// HELLO version cannot parse it. Clients surface the category instead of
// retrying — redialing the same address with the same version cannot
// succeed.
const ErrCategoryProtocol = "protocol-version"

// ErrCategoryRedirectLoop is the typed category for redirect-hop
// exhaustion: the client followed its redirect bound without reaching the
// session's owner (a ring update racing the dial, or a partitioned fleet
// bouncing the session between stale views). Terminal for the attempt —
// the hop trail is in the message — though unlike a protocol mismatch a
// later dial against a settled ring may succeed.
const ErrCategoryRedirectLoop = "redirect-loop"

// errCategories lists every category SplitErr recognizes.
var errCategories = []string{ErrCategoryProtocol, ErrCategoryRedirectLoop}

// FormatErr renders a typed ERR payload as "category: message". Untyped
// errors keep using plain messages; SplitErr returns an empty category for
// them.
func FormatErr(category, msg string) []byte {
	return []byte(category + ": " + msg)
}

// SplitErr splits an ERR payload into its category and message. Payloads
// without a known category come back with category "" and the full text as
// the message.
func SplitErr(payload []byte) (category, msg string) {
	s := string(payload)
	for _, c := range errCategories {
		if rest, ok := strings.CutPrefix(s, c+": "); ok {
			return c, rest
		}
	}
	return "", s
}
