package ingest

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %#x", i, typ)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

func TestReadFrameEnforcesCap(t *testing.T) {
	// A frame header declaring more than MaxFramePayload must be rejected
	// before any allocation happens.
	hdr := []byte{FrameChunk, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	p := AppendHello(nil, ProtoVersion, 8, "agent-01")
	version, ncores, id, src, err := ParseHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if version != ProtoVersion || ncores != 8 || id != "agent-01" || src != "" {
		t.Fatalf("got version=%d ncores=%d id=%q src=%q", version, ncores, id, src)
	}
	if _, _, _, _, err := ParseHello(p[:5]); err == nil {
		t.Error("short HELLO accepted")
	}
	if _, _, _, _, err := ParseHello(append(p, 'x')); err == nil {
		t.Error("HELLO with trailing bytes accepted")
	}
}

func TestHelloSourceRoundTrip(t *testing.T) {
	// An explicit non-default source travels as the v3 suffix.
	p := AppendHelloSource(nil, ProtoVersion, 4, "agent-02", "riscv-etrace")
	version, ncores, id, src, err := ParseHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if version != ProtoVersion || ncores != 4 || id != "agent-02" || src != "riscv-etrace" {
		t.Fatalf("got version=%d ncores=%d id=%q src=%q", version, ncores, id, src)
	}
	// An empty source omits the suffix entirely, producing a frame that is
	// byte-identical to the pre-v3 layout (wire compatibility with old
	// servers for default-source uploads).
	plain := AppendHello(nil, ProtoVersion, 4, "agent-02")
	withEmpty := AppendHelloSource(nil, ProtoVersion, 4, "agent-02", "")
	if !bytes.Equal(plain, withEmpty) {
		t.Fatalf("empty source changed the wire form: %x vs %x", plain, withEmpty)
	}
	// Truncated suffix must be rejected, not read past.
	if _, _, _, _, err := ParseHello(p[:len(p)-1]); err == nil {
		t.Error("truncated source suffix accepted")
	}
}

func TestRedirectRoundTrip(t *testing.T) {
	p := AppendRedirect(nil, "10.0.0.7:7070")
	addr, err := ParseRedirect(p)
	if err != nil {
		t.Fatal(err)
	}
	if addr != "10.0.0.7:7070" {
		t.Fatalf("got addr %q", addr)
	}
	if _, err := ParseRedirect(p[:1]); err == nil {
		t.Error("short REDIRECT accepted")
	}
	if _, err := ParseRedirect(append(p, 'x')); err == nil {
		t.Error("REDIRECT with trailing bytes accepted")
	}
	if _, err := ParseRedirect(AppendRedirect(nil, "")); err == nil {
		t.Error("empty REDIRECT address accepted")
	}
}

func TestErrCategoryRoundTrip(t *testing.T) {
	p := FormatErr(ErrCategoryProtocol, "need v3")
	cat, msg := SplitErr(p)
	if cat != ErrCategoryProtocol || msg != "need v3" {
		t.Fatalf("got category=%q msg=%q", cat, msg)
	}
	cat, msg = SplitErr([]byte("plain old error text"))
	if cat != "" || msg != "plain old error text" {
		t.Fatalf("uncategorised payload: category=%q msg=%q", cat, msg)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	p := AppendHelloAck(nil, ProtoVersion, 42)
	version, seq, err := ParseHelloAck(p)
	if err != nil {
		t.Fatal(err)
	}
	if version != ProtoVersion || seq != 42 {
		t.Fatalf("got version=%d seq=%d", version, seq)
	}
	if _, _, err := ParseHelloAck(p[:8]); err == nil {
		t.Error("short HELLO_ACK accepted")
	}
}

func TestSeqRoundTrip(t *testing.T) {
	p := AppendSeq(nil, 7)
	p = append(p, "data"...)
	seq, rest, err := ParseSeq(p)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || string(rest) != "data" {
		t.Fatalf("got seq=%d rest=%q", seq, rest)
	}
	if _, _, err := ParseSeq(p[:4]); err == nil {
		t.Error("short sequenced payload accepted")
	}
}

func TestValidSessionID(t *testing.T) {
	good := []string{"a", "agent-01", "h2_run.3", "A-B_c.9", strings.Repeat("x", MaxSessionIDLen)}
	for _, id := range good {
		if !ValidSessionID(id) {
			t.Errorf("ValidSessionID(%q) = false", id)
		}
	}
	bad := []string{"", ".", "..", ".hidden", "a/b", "a\\b", "a b", "a\x00b", "ü",
		strings.Repeat("x", MaxSessionIDLen+1)}
	for _, id := range bad {
		if ValidSessionID(id) {
			t.Errorf("ValidSessionID(%q) = true", id)
		}
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	st := SessionState{Seq: 9, Size: 12345, CRC: 0xDEADBEEF, Sealed: true}
	body := stateBody(st)
	got, err := parseState(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("round trip: %+v vs %+v", got, st)
	}
	for _, raw := range []string{
		"", "garbage", "jportal-ingest-state\nseq: x\nbytes: 20\ncrc: 0\nsealed: false\n",
		"jportal-ingest-state\nseq: 1\nbytes: 2\ncrc: 0\nsealed: false\n", // size < header
	} {
		if _, err := parseState(raw); err == nil {
			t.Errorf("parseState(%q) accepted", raw)
		}
	}
}
