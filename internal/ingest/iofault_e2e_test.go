package ingest_test

// End-to-end upload under injected storage faults: the server's archive
// write path runs behind a seeded iofault injector, the client retries
// through the sheds and suspensions, and the archive must still come out
// byte-identical — graceful degradation, not data loss (DESIGN.md §16).

import (
	"testing"
	"time"

	"jportal/internal/ingest"
	"jportal/internal/ingest/client"
	"jportal/internal/iofault"
)

func TestUploadByteIdenticalUnderDiskFaults(t *testing.T) {
	dataDir := t.TempDir()
	inj := iofault.NewInjector(iofault.Matrix{
		Seed:      23,
		ENOSPC:    0.04,
		WriteErr:  0.04,
		SyncErr:   0.04,
		TornWrite: 0.08,
	}, nil)
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir, IOFault: inj})
	gob := testProgramGob(t)
	stream := buildStream(t, 2, 30)

	p := pushStream(t, client.Options{
		Addr:          addr,
		SessionID:     "faulted",
		MaxChunkBytes: 256,
		MaxAttempts:   50,
		Backoff:       time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		RetryBudget:   -1,
	}, gob, stream)
	defer p.Close()
	assertArchived(t, dataDir, "faulted", gob, stream)

	// The matrix must actually have fired — otherwise this test proves
	// nothing — and every fired fault must have been shed, not poisoned.
	var injected int64
	for _, n := range inj.Counts() {
		injected += n
	}
	if injected == 0 {
		t.Fatal("no storage faults injected; raise the rates or change the seed")
	}
	if srv.Metrics().SessionsQuarantined.Load() != 0 {
		t.Fatal("a storage fault poisoned the session; it should have been shed")
	}
	if srv.Metrics().StorageSheds.Load() == 0 && srv.Metrics().StatePersistErrors.Load() == 0 &&
		srv.Metrics().DiskFullRejections.Load() == 0 {
		t.Fatalf("faults injected (%d) but no shed path recorded", injected)
	}
}

// TestDiskFullGateClearsOnRecovery pins the ENOSPC admission gate: while
// the last write failed with ENOSPC, new sessions get BUSY; once a write
// succeeds again the gate opens.
func TestDiskFullGateClearsOnRecovery(t *testing.T) {
	dataDir := t.TempDir()
	// ENOSPC on (statistically) every few ops: the first session's upload
	// arms and clears the gate repeatedly; it must still complete.
	inj := iofault.NewInjector(iofault.Matrix{Seed: 5, ENOSPC: 0.15}, nil)
	srv, addr := startServer(t, ingest.Config{DataDir: dataDir, IOFault: inj})
	gob := testProgramGob(t)
	stream := buildStream(t, 1, 20)

	p := pushStream(t, client.Options{
		Addr:          addr,
		SessionID:     "gate",
		MaxChunkBytes: 128,
		MaxAttempts:   50,
		Backoff:       time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		RetryBudget:   -1,
	}, gob, stream)
	defer p.Close()
	assertArchived(t, dataDir, "gate", gob, stream)
	if srv.Metrics().EnospcSheds.Load() == 0 && srv.Metrics().DiskFullRejections.Load() == 0 {
		t.Fatal("ENOSPC matrix fired nothing; the gate was never exercised")
	}
	// After the completed upload the last write succeeded, so a fresh
	// session must be admitted (its own creates may still draw faults, but
	// the gate itself is open — BUSY would only come from a new ENOSPC).
	p2 := pushStream(t, client.Options{
		Addr:          addr,
		SessionID:     "after",
		MaxChunkBytes: 128,
		MaxAttempts:   50,
		Backoff:       time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		RetryBudget:   -1,
	}, gob, stream)
	defer p2.Close()
	assertArchived(t, dataDir, "after", gob, stream)
}
