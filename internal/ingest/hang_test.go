package ingest

// White-box tests for the writer-stall paths: testHookArchive lets a test
// wedge a session's writer goroutine mid-frame, the failure mode a dying
// disk produces, which the external test suite cannot provoke.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// hangServer starts a server whose writers block inside the archive hook
// until release is closed.
func hangServer(t *testing.T, cfg Config, release chan struct{}) (*Server, string) {
	t.Helper()
	hook := func(sess *session, m msg) {
		if m.typ == FrameChunk {
			<-release
		}
	}
	testHookArchive.Store(&hook)
	t.Cleanup(func() { testHookArchive.Store(nil) })
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// wedgeOneChunk opens a raw connection, handshakes, and feeds one chunk
// frame into the (blocked) writer.
func wedgeOneChunk(t *testing.T, addr, id string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := WriteFrame(c, FrameHello, AppendHello(nil, ProtoVersion, 2, id)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := ReadFrame(c)
	if err != nil || typ != FrameHelloAck {
		t.Fatalf("handshake: frame %#x, err %v", typ, err)
	}
	// Payload validity does not matter: the hook blocks before validation.
	if err := WriteFrame(c, FrameChunk, append(AppendSeq(nil, 1), "wedged"...)); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShutdownDeadlineWithHungWriter is the regression test for the drain
// fix: a session whose writer never finishes its frame must not block
// Shutdown past the caller's deadline.
func TestShutdownDeadlineWithHungWriter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, addr := hangServer(t, Config{}, release)
	c := wedgeOneChunk(t, addr, "hung")
	time.Sleep(50 * time.Millisecond) // let the writer dequeue and block
	c.Close()

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v with a hung writer, want ~300ms", elapsed)
	}
}

// TestWriterStallPoisonsSession: with the writer watchdog enabled, a
// wedged writer is detected, the session is poisoned, and the attached
// client is told with ERR instead of waiting forever for its ACK.
func TestWriterStallPoisonsSession(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, addr := hangServer(t, Config{StallAfter: 150 * time.Millisecond}, release)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	c := wedgeOneChunk(t, addr, "stalled")

	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		typ, payload, err := ReadFrame(c)
		if err != nil {
			t.Fatalf("waiting for ERR: %v", err)
		}
		if typ == FrameErr {
			if got := string(payload); !strings.Contains(got, "stalled") {
				t.Fatalf("ERR %q does not mention the stall", got)
			}
			break
		}
	}
	if n := srv.Metrics().StallsDetected.Load(); n != 1 {
		t.Fatalf("StallsDetected = %d, want 1", n)
	}
	if n := srv.dog.Stalls(); n != 1 {
		t.Fatalf("supervisor stalls = %d, want 1", n)
	}
}
