package client

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"jportal"
	"jportal/internal/ingest"
	"jportal/internal/streamfmt"
)

// PushStats summarises one archive upload.
type PushStats struct {
	Frames     int    // data frames transmitted (or skipped as resumed)
	Bytes      int64  // payload bytes of those frames
	ResumeSeq  uint64 // server frontier at handshake (non-zero: resumed)
	Reconnects int
	Nacks      int
}

// PushArchive replays the sealed chunked archive in dir to a jportal serve
// instance. The upload is resumable: pushing the same archive under the
// same session id after an interruption (or after ACKs were lost) skips
// everything the server already archived and completes the rest, and the
// server-side archive comes out byte-identical to dir's stream.jpt and
// program.gob.
func PushArchive(ctx context.Context, opts Options, dir string) (PushStats, error) {
	var st PushStats
	programGob, err := os.ReadFile(filepath.Join(dir, "program.gob"))
	if err != nil {
		return st, err
	}
	stream, err := os.ReadFile(filepath.Join(dir, jportal.StreamFileName))
	if err != nil {
		return st, err
	}
	ncores, err := streamfmt.ParseHeader(stream)
	if err != nil {
		return st, fmt.Errorf("ingest client: %s: %w", dir, err)
	}
	if opts.SourceID == "" {
		src, err := jportal.ArchiveSourceID(dir)
		if err != nil {
			return st, err
		}
		opts.SourceID = src
	}

	// Pre-scan the records: the whole stream must be well-formed and end
	// with a seal — pushing an unsealed (still-being-written) archive
	// would leave the server waiting for a seal that never comes.
	records := stream[streamfmt.HeaderLen:]
	sealed := false
	for off := 0; off < len(records); {
		if sealed {
			return st, fmt.Errorf("ingest client: %s: records after the seal", dir)
		}
		n, err := streamfmt.Scan(records[off:])
		if err != nil {
			if errors.Is(err, streamfmt.ErrShort) {
				return st, fmt.Errorf("ingest client: %s has an incomplete record tail (writer still running?)", dir)
			}
			return st, fmt.Errorf("ingest client: %s: %w", dir, err)
		}
		if _, ok := streamfmt.SealCRC(records[off : off+n]); ok {
			sealed = true
		}
		off += n
	}
	if !sealed {
		return st, fmt.Errorf("ingest client: %s is unsealed; finish the collection before pushing", dir)
	}

	p, err := Dial(ctx, opts, ncores)
	if err != nil {
		return st, err
	}
	defer p.Close()
	st.ResumeSeq = p.ResumeSeq()

	send := func(typ byte, data []byte) error {
		if _, err := p.Send(typ, data); err != nil {
			return err
		}
		st.Frames++
		st.Bytes += int64(len(data))
		return nil
	}
	if err := send(ingest.FrameProgram, programGob); err != nil {
		return st, err
	}
	// Batch whole records into chunks of at most MaxChunkBytes. The
	// batching is deterministic for a given archive, so a resumed push
	// reproduces the same frame sequence and the skip-below-frontier logic
	// lines up exactly.
	for off := 0; off < len(records); {
		end := off
		for end < len(records) {
			n, _ := streamfmt.Scan(records[end:]) // pre-validated above
			if end > off && end+n-off > p.opts.MaxChunkBytes {
				break
			}
			end += n
		}
		if err := send(ingest.FrameChunk, records[off:end]); err != nil {
			return st, err
		}
		off = end
	}
	if err := p.Finish(); err != nil {
		return st, err
	}
	st.Reconnects = p.Reconnects()
	st.Nacks = p.Nacks()
	return st, nil
}
