package client

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"jportal/internal/bytecode"
	"jportal/internal/ingest"
	"jportal/internal/meta"
	"jportal/internal/source"
	"jportal/internal/streamfmt"
	"jportal/internal/vm"
)

// EncodeProgram serialises a program exactly as an archive's program.gob
// (same gob stream), so a live push and a local collect of the same run
// produce byte-identical server-side archives.
func EncodeProgram(prog *bytecode.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(prog); err != nil {
		return nil, fmt.Errorf("ingest client: encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// LiveSink streams a run's records to an ingest server as the run
// produces them: it implements jportal.TraceSink and jportal.BlobSink, so
// it plugs straight into jportal.RunWithSink — the networked counterpart
// of CreateStreamArchive. Records are encoded with the same
// streamfmt.Encoder as the local archive writer (including the suppression
// of no-op watermarks and the CRC-carrying seal), so the server-side
// archive is byte-identical to a local one of the same deterministic run.
//
// Records accumulate in a buffer that is cut into CHUNK frames at record
// boundaries; Drain pushes whatever is buffered, mirroring the local
// writer's flush-to-disk. Seal completes the stream and the upload.
type LiveSink struct {
	p        *Pusher
	enc      *streamfmt.Encoder
	buf      []byte
	maxChunk int
	err      error
}

// NewLiveSink dials the server, transmits the program, and opens the
// record stream with the snapshot record.
func NewLiveSink(ctx context.Context, opts Options, prog *bytecode.Program, snap *meta.Snapshot, ncores int) (*LiveSink, error) {
	programGob, err := EncodeProgram(prog)
	if err != nil {
		return nil, err
	}
	p, err := Dial(ctx, opts, ncores)
	if err != nil {
		return nil, err
	}
	s := &LiveSink{p: p, maxChunk: p.opts.MaxChunkBytes}
	if _, err := p.Send(ingest.FrameProgram, programGob); err != nil {
		p.Close()
		return nil, err
	}
	s.enc = streamfmt.NewRawEncoder((*liveWriter)(s), ncores)
	if err := s.enc.Snapshot(snap); err != nil {
		p.Close()
		return nil, err
	}
	return s, nil
}

// liveWriter receives one whole record per Write (the Encoder's contract)
// and cuts the stream into frames at record boundaries.
type liveWriter LiveSink

func (w *liveWriter) Write(rec []byte) (int, error) {
	s := (*LiveSink)(w)
	s.buf = append(s.buf, rec...)
	if len(s.buf) >= s.maxChunk {
		if err := s.flush(); err != nil {
			return 0, err
		}
	}
	return len(rec), nil
}

// flush sends the buffered records as one CHUNK frame.
func (s *LiveSink) flush() error {
	if s.err != nil {
		return s.err
	}
	if len(s.buf) == 0 {
		return nil
	}
	if _, err := s.p.Send(ingest.FrameChunk, s.buf); err != nil {
		s.err = err
		return err
	}
	s.buf = s.buf[:0]
	return nil
}

// AddBlobs streams compiled-method metadata records (jportal.BlobSink).
func (s *LiveSink) AddBlobs(blobs []*meta.CompiledMethod) error {
	if s.err != nil {
		return s.err
	}
	for _, c := range blobs {
		if err := s.enc.Blob(c); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// AddSideband streams scheduler switch records (jportal.TraceSink).
func (s *LiveSink) AddSideband(recs []vm.SwitchRecord) {
	if s.err != nil {
		return
	}
	for i := range recs {
		if err := s.enc.Sideband(recs[i]); err != nil {
			s.err = err
			return
		}
	}
}

// Watermark streams a forward-moving watermark (jportal.TraceSink).
func (s *LiveSink) Watermark(core int, mark uint64) {
	if s.err != nil {
		return
	}
	if err := s.enc.Watermark(core, mark); err != nil {
		s.err = err
	}
}

// Feed streams one trace chunk (jportal.TraceSink).
func (s *LiveSink) Feed(core int, items []source.Item) error {
	if s.err != nil {
		return s.err
	}
	if err := s.enc.Chunk(core, items); err != nil {
		s.err = err
	}
	return s.err
}

// Drain pushes buffered records to the server (jportal.TraceSink).
func (s *LiveSink) Drain() error { return s.flush() }

// Seal ends the stream with the CRC-carrying seal record, waits for the
// server to acknowledge and verify the complete upload, and closes the
// connection.
func (s *LiveSink) Seal() error {
	if s.err == nil {
		if err := s.enc.Seal(); err != nil {
			s.err = err
		}
	}
	if s.err == nil {
		s.err = s.flush()
	}
	if s.err == nil {
		s.err = s.p.Finish()
	}
	s.p.Close()
	return s.err
}

// Pusher exposes the underlying connection's stats (reconnects, NACKs).
func (s *LiveSink) Pusher() *Pusher { return s.p }
