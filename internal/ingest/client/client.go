// Package client is the agent side of jportal's trace-ingest protocol
// (internal/ingest): it pushes the records of a chunked run archive — or a
// live run's streaming export — to a jportal serve instance, surviving
// disconnects, server restarts and backpressure.
//
// Reliability model: every data frame carries a sequence number and stays
// buffered until the server's cumulative ACK covers it. On any connection
// failure the client redials with exponential backoff plus jitter, learns
// the server's acknowledged frontier from HELLO_ACK, drops everything at
// or below it, and retransmits the rest. A NACK (bounded-queue overflow
// under the server's NACK policy, or a sequence gap) triggers the same
// retransmission after a backoff without dropping the connection. Delivery
// is exactly-once on the archive: the server drops duplicate sequences.
// A BUSY handshake answer (the server's admission control refusing the
// session for load reasons) is retried after the server-suggested delay
// plus jitter rather than treated as an error.
//
// Fleet awareness (protocol 3): a REDIRECT handshake answer — the dialed
// process does not own the session — is followed transparently, up to a
// small hop bound, so Options.Addr may name a coordinator or any fleet
// node. Every reconnect starts over from Options.Addr: after a node loss
// the coordinator re-routes the session to the surviving owner, and the
// upload resumes from that node's durable frontier.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"jportal/internal/ingest"
	"jportal/internal/metrics"
	"jportal/internal/source"
)

// Options configures a Pusher.
type Options struct {
	// Addr is the jportal serve address (host:port).
	Addr string
	// Addrs optionally lists several equivalent entry points — typically
	// the fleet's coordinator replicas. The pusher dials one at a time
	// and rotates to the next on any connect failure (including a
	// standby coordinator's BUSY), so a coordinator failover costs one
	// failed attempt, not the upload. When set, Addr defaults to
	// Addrs[0] and is used only for log/error labels.
	Addrs []string
	// SessionID names the upload; the server archives it under this name
	// and resumes it across reconnects. Must satisfy ingest.ValidSessionID.
	SessionID string
	// SourceID names the trace-source backend the records were collected
	// by ("" or source.DefaultID = Intel PT). Sent in HELLO (protocol 3+)
	// so the server stamps the session archive's header with it —
	// non-default archives stay analyzable after the network hop and any
	// fleet handoff.
	SourceID string
	// MaxChunkBytes bounds the record payload of one CHUNK frame
	// (default 64KiB).
	MaxChunkBytes int
	// WindowBytes bounds the unacknowledged payload in flight; Send blocks
	// beyond it, so a slow or NACKing server backpressures the producer
	// (default 1MiB).
	WindowBytes int
	// MaxAttempts is the dial attempt budget of one (re)connect
	// (default 8).
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt with up to
	// 50% added jitter, capped at MaxBackoff (defaults 50ms / 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// RetryBudget bounds the connect-level retries of the whole upload —
	// failed dials, BUSY refusals, REDIRECT hops and reconnects all draw
	// from one pool — so a partitioned fleet cannot turn one pusher into
	// a retry storm. MaxAttempts bounds one reconnect; this bounds their
	// sum. 0 means max(256, 4×MaxAttempts); negative means unlimited.
	// Exhaustion is terminal: the upload fails with a *BudgetError and
	// the client_retry_budget_exhausted counter increments.
	RetryBudget int
	// Dial overrides the transport (tests inject failing connections).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, when set, receives one line per reconnect/backoff event.
	Logf func(format string, args ...any)
}

func (o *Options) fill() error {
	if len(o.Addrs) == 0 && o.Addr != "" {
		o.Addrs = []string{o.Addr}
	}
	if len(o.Addrs) == 0 {
		return errors.New("ingest client: Options.Addr is required")
	}
	for _, a := range o.Addrs {
		if a == "" {
			return errors.New("ingest client: empty address in Options.Addrs")
		}
	}
	if o.Addr == "" {
		o.Addr = o.Addrs[0]
	}
	if !ingest.ValidSessionID(o.SessionID) {
		return fmt.Errorf("ingest client: invalid session id %q", o.SessionID)
	}
	if o.SourceID == source.DefaultID {
		o.SourceID = "" // canonical: the default backend sends no source field
	}
	if o.MaxChunkBytes <= 0 {
		o.MaxChunkBytes = 64 << 10
	}
	if o.WindowBytes <= 0 {
		o.WindowBytes = 1 << 20
	}
	if o.WindowBytes < o.MaxChunkBytes {
		o.WindowBytes = o.MaxChunkBytes
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 4 * o.MaxAttempts
		if o.RetryBudget < 256 {
			o.RetryBudget = 256
		}
	}
	if o.Dial == nil {
		o.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// BusyError reports that the server refused admission for load reasons
// (concurrent-session cap or memory budget) and suggested a retry delay.
// The pusher handles it internally — redialing after RetryAfter plus
// jitter — so callers only see it if every attempt stayed busy.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.RetryAfter)
}

// ServerError is a handshake rejection surfaced as a typed error: an ERR
// frame's payload, or a client-side verdict that carries the same typed
// categories (redirect-hop exhaustion). Category is the machine-readable
// classification (ingest.ErrCategoryProtocol, ingest.ErrCategoryRedirectLoop)
// or "" for free-form errors.
type ServerError struct {
	Category string
	Message  string
}

func (e *ServerError) Error() string {
	if e.Category == "" {
		return fmt.Sprintf("server rejected session: %s", e.Message)
	}
	return fmt.Sprintf("server rejected session (%s): %s", e.Category, e.Message)
}

// Terminal reports whether retrying the same connect can ever succeed.
// Protocol-version mismatches cannot (same address, same protocol), and a
// redirect loop means the fleet's views of the session's owner disagree —
// more hops from the same starting point walk the same loop, so the
// pusher fails fast instead of burning its retry budget.
func (e *ServerError) Terminal() bool {
	switch e.Category {
	case ingest.ErrCategoryProtocol, ingest.ErrCategoryRedirectLoop:
		return true
	}
	return false
}

// BudgetError reports that the upload's connect-level retry budget —
// shared across dial failures, BUSY refusals, REDIRECT hops and
// reconnects (Options.RetryBudget) — ran out. Last is the failure that
// spent the final unit.
type BudgetError struct {
	Budget int
	Last   error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("retry budget exhausted after %d connect-level retries (last: %v)", e.Budget, e.Last)
}

func (e *BudgetError) Unwrap() error { return e.Last }

// redirectError is dialHelloOnce's internal signal that the dialed process
// does not own the session; the dial loop follows Addr.
type redirectError struct {
	Addr string
}

func (e *redirectError) Error() string {
	return fmt.Sprintf("session is served by %s", e.Addr)
}

// maxRedirectHops bounds a single handshake's redirect chain. Two is the
// steady state (coordinator -> owner); the headroom covers a ring update
// racing the dial. Past the bound the connect attempt fails and the
// backoff loop starts over from Options.Addr with a fresher ring.
const maxRedirectHops = 4

// pframe is one unacknowledged data frame.
type pframe struct {
	typ  byte
	seq  uint64
	data []byte
}

// Pusher is a reliable, resumable upload of one session's record stream.
// It is safe for use by a single producer goroutine (Send/Finish/Close);
// acknowledgement handling runs internally.
type Pusher struct {
	opts   Options
	ncores int
	ctx    context.Context

	mu           sync.Mutex
	cond         *sync.Cond
	conn         net.Conn
	gen          int // bumped per successful (re)connect
	connDead     bool
	reconnecting bool
	pending      []pframe
	pendingBytes int
	nextSeq      uint64
	acked        uint64
	finAcked     uint64
	finSent      bool
	needRetx     bool
	fatal        error
	closed       bool

	// Stats, guarded by mu.
	reconnects int
	nacks      int
	redirects  int
	resumeSeq  uint64 // frontier reported by the first HELLO_ACK

	// Retry-budget accounting, guarded by mu. addrIdx walks Options.Addrs;
	// spent counts connect-level retries against Options.RetryBudget.
	addrIdx int
	spent   int
}

// Dial connects to the server, performs the HELLO handshake, and returns a
// pusher whose acknowledged frontier reflects any previous upload of the
// same session id. ctx bounds the whole upload: when it is cancelled the
// pusher fails fast with ctx's error.
func Dial(ctx context.Context, opts Options, ncores int) (*Pusher, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if ncores <= 0 {
		return nil, fmt.Errorf("ingest client: implausible core count %d", ncores)
	}
	p := &Pusher{opts: opts, ncores: ncores, ctx: ctx, nextSeq: 1}
	p.cond = sync.NewCond(&p.mu)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.reconnectLocked(); err != nil {
		return nil, err
	}
	p.resumeSeq = p.acked
	go func() {
		<-ctx.Done()
		p.mu.Lock()
		if p.fatal == nil && !p.closed {
			p.fatal = ctx.Err()
			if p.conn != nil {
				p.conn.Close()
			}
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	return p, nil
}

// ResumeSeq returns the acknowledged sequence the server reported at the
// first handshake — non-zero when this upload resumed an earlier one.
func (p *Pusher) ResumeSeq() uint64 { return p.resumeSeq }

// Reconnects returns how many times the connection was re-established.
func (p *Pusher) Reconnects() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reconnects
}

// Nacks returns how many NACKs the server sent this upload.
func (p *Pusher) Nacks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nacks
}

// Redirects returns how many REDIRECT frames this upload followed —
// non-zero when Options.Addr named a coordinator or a non-owning fleet
// node.
func (p *Pusher) Redirects() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.redirects
}

// Acked returns the server's acknowledged frontier.
func (p *Pusher) Acked() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked
}

// BudgetSpent returns how many connect-level retries the upload has drawn
// from its retry budget so far.
func (p *Pusher) BudgetSpent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spent
}

// spend draws n connect-level retries from the budget, reporting false —
// and counting the exhaustion exactly once — when the budget is gone.
func (p *Pusher) spend(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spent += n
	if p.opts.RetryBudget < 0 || p.spent <= p.opts.RetryBudget {
		return true
	}
	if p.spent-n <= p.opts.RetryBudget { // first crossing
		metrics.Default.Add(metrics.CounterClientRetryBudget, 1)
	}
	return false
}

// rotate advances to the next configured entry-point address.
func (p *Pusher) rotate() {
	p.mu.Lock()
	p.addrIdx = (p.addrIdx + 1) % len(p.opts.Addrs)
	p.mu.Unlock()
}

// entryAddr is the entry point the next connect starts from.
func (p *Pusher) entryAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opts.Addrs[p.addrIdx]
}

// backoffDelay computes the attempt'th retry delay: exponential with up to
// 50% jitter, capped.
func (p *Pusher) backoffDelay(attempt int) time.Duration {
	d := p.opts.Backoff << attempt
	if d > p.opts.MaxBackoff || d <= 0 {
		d = p.opts.MaxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// reconnectLocked (re)establishes the connection and retransmits the
// unacknowledged tail. Called with mu held; releases it while dialing.
// Only one goroutine reconnects at a time; others wait on cond.
func (p *Pusher) reconnectLocked() error {
	for p.reconnecting {
		p.cond.Wait()
	}
	if p.fatal != nil {
		return p.fatal
	}
	if p.conn != nil && !p.connDead {
		return nil
	}
	p.reconnecting = true
	redial := false
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
		p.reconnects++
		redial = true
	}
	p.mu.Unlock()

	var (
		conn      net.Conn
		resumeSeq uint64
		err       error
	)
	budgetDead := redial && !p.spend(1)
	if budgetDead {
		err = &BudgetError{Budget: p.opts.RetryBudget, Last: errors.New("connection lost")}
	}
	for attempt := 0; !budgetDead && attempt < p.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := p.backoffDelay(attempt - 1)
			var busy *BusyError
			if errors.As(err, &busy) && busy.RetryAfter > 0 {
				// The server told us when to come back; add up to 50% jitter
				// so a herd of refused agents does not redial in lockstep.
				delay = busy.RetryAfter + time.Duration(rand.Int63n(int64(busy.RetryAfter)/2+1))
			}
			p.opts.Logf("ingest client: %s: retrying in %v (attempt %d/%d): %v",
				p.opts.Addr, delay, attempt+1, p.opts.MaxAttempts, err)
			select {
			case <-p.ctx.Done():
				err = p.ctx.Err()
				attempt = p.opts.MaxAttempts // exhaust
			case <-time.After(delay):
			}
			if p.ctx.Err() != nil {
				break
			}
		}
		conn, resumeSeq, err = p.dialHello()
		if err == nil {
			break
		}
		var se *ServerError
		if errors.As(err, &se) && se.Terminal() {
			break // terminal: the same dial can never succeed
		}
		var be *BudgetError
		if errors.As(err, &be) {
			break // the whole upload's budget is gone, not just this attempt's
		}
		// The next attempt starts from the next configured entry point (a
		// standby coordinator answering BUSY rotates us toward the leader)
		// and draws one unit from the shared retry budget.
		p.rotate()
		if !p.spend(1) {
			err = &BudgetError{Budget: p.opts.RetryBudget, Last: err}
			break
		}
	}

	p.mu.Lock()
	p.reconnecting = false
	defer p.cond.Broadcast()
	if err != nil {
		if p.fatal == nil {
			p.fatal = fmt.Errorf("ingest client: %s: %w", p.opts.Addr, err)
		}
		return p.fatal
	}
	if p.fatal != nil { // cancelled while dialing
		conn.Close()
		return p.fatal
	}
	p.conn = conn
	p.connDead = false
	p.needRetx = false
	p.finSent = false
	p.gen++
	if resumeSeq > p.acked {
		p.acked = resumeSeq
	}
	p.pruneLocked()
	go p.readAcks(conn, p.gen)
	return p.resendPendingLocked()
}

// dialHello performs one connect: dial the current entry point, exchange
// HELLO/HELLO_ACK, and follow any REDIRECT chain to the session's owning
// node. Each call restarts from the entry point so a re-routed session
// (node loss, rebalance) lands on the current owner, not a cached one.
// Hop exhaustion is a typed terminal ServerError carrying the hop trail;
// every followed hop draws from the shared retry budget.
func (p *Pusher) dialHello() (net.Conn, uint64, error) {
	addr := p.entryAddr()
	trail := addr
	for hop := 0; ; hop++ {
		conn, resumeSeq, err := p.dialHelloOnce(addr)
		var redir *redirectError
		if !errors.As(err, &redir) {
			return conn, resumeSeq, err
		}
		trail += " -> " + redir.Addr
		if hop >= maxRedirectHops {
			return nil, 0, &ServerError{
				Category: ingest.ErrCategoryRedirectLoop,
				Message:  fmt.Sprintf("%d hops without reaching the session owner: %s", hop+1, trail),
			}
		}
		if !p.spend(1) {
			return nil, 0, &BudgetError{Budget: p.opts.RetryBudget, Last: redir}
		}
		p.mu.Lock()
		p.redirects++
		p.mu.Unlock()
		p.opts.Logf("ingest client: %s: redirected to %s", addr, redir.Addr)
		addr = redir.Addr
	}
}

// dialHelloOnce performs one dial + HELLO handshake against one address.
func (p *Pusher) dialHelloOnce(addr string) (net.Conn, uint64, error) {
	conn, err := p.opts.Dial(p.ctx, addr)
	if err != nil {
		return nil, 0, err
	}
	hello := ingest.AppendHelloSource(nil, ingest.ProtoVersion, p.ncores, p.opts.SessionID, p.opts.SourceID)
	if err := ingest.WriteFrame(conn, ingest.FrameHello, hello); err != nil {
		conn.Close()
		return nil, 0, err
	}
	typ, payload, err := ingest.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	switch typ {
	case ingest.FrameHelloAck:
		version, resumeSeq, err := ingest.ParseHelloAck(payload)
		if err != nil {
			conn.Close()
			return nil, 0, err
		}
		if version < ingest.MinProtoVersion || version > ingest.ProtoVersion {
			conn.Close()
			return nil, 0, fmt.Errorf("server speaks protocol %d, client speaks %d..%d",
				version, ingest.MinProtoVersion, ingest.ProtoVersion)
		}
		return conn, resumeSeq, nil
	case ingest.FrameBusy:
		conn.Close()
		ms, perr := ingest.ParseBusy(payload)
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, &BusyError{RetryAfter: time.Duration(ms) * time.Millisecond}
	case ingest.FrameRedirect:
		conn.Close()
		target, perr := ingest.ParseRedirect(payload)
		if perr != nil {
			return nil, 0, perr
		}
		return nil, 0, &redirectError{Addr: target}
	case ingest.FrameErr:
		conn.Close()
		category, msg := ingest.SplitErr(payload)
		return nil, 0, &ServerError{Category: category, Message: msg}
	default:
		conn.Close()
		return nil, 0, fmt.Errorf("unexpected handshake frame %#x", typ)
	}
}

// readAcks consumes server frames for one connection generation.
func (p *Pusher) readAcks(conn net.Conn, gen int) {
	for {
		typ, payload, err := ingest.ReadFrame(conn)
		p.mu.Lock()
		if p.gen != gen || p.closed {
			p.mu.Unlock()
			return
		}
		if err != nil {
			p.connDead = true
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		switch typ {
		case ingest.FrameAck:
			if seq, _, perr := ingest.ParseSeq(payload); perr == nil && seq > p.acked {
				p.acked = seq
				p.pruneLocked()
			}
		case ingest.FrameNack:
			p.nacks++
			p.needRetx = true
			p.finSent = false
		case ingest.FrameFinAck:
			if seq, _, perr := ingest.ParseSeq(payload); perr == nil && seq > p.finAcked {
				p.finAcked = seq
			}
		case ingest.FrameErr:
			if p.fatal == nil {
				p.fatal = fmt.Errorf("ingest client: server error: %s", payload)
			}
			p.connDead = true
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// pruneLocked drops pending frames covered by the acknowledged frontier.
func (p *Pusher) pruneLocked() {
	keep := p.pending[:0]
	bytes := 0
	for _, f := range p.pending {
		if f.seq > p.acked {
			keep = append(keep, f)
			bytes += len(f.data)
		}
	}
	p.pending = keep
	p.pendingBytes = bytes
}

// writeFrameLocked writes one data frame on the current connection,
// marking it dead on failure (the next service pass reconnects).
func (p *Pusher) writeFrameLocked(f pframe) bool {
	if p.conn == nil || p.connDead {
		return false
	}
	payload := ingest.AppendSeq(make([]byte, 0, 8+len(f.data)), f.seq)
	payload = append(payload, f.data...)
	if err := ingest.WriteFrame(p.conn, f.typ, payload); err != nil {
		p.connDead = true
		return false
	}
	return true
}

// resendPendingLocked retransmits every unacknowledged frame in order.
func (p *Pusher) resendPendingLocked() error {
	for _, f := range p.pending {
		if !p.writeFrameLocked(f) {
			return nil // dead again; the next service pass retries
		}
	}
	return nil
}

// service makes one unit of progress while a caller waits: reconnect a
// dead connection, honor a NACK with a backed-off retransmission, or block
// until an acknowledgement (or failure) arrives. Called with mu held.
func (p *Pusher) service() error {
	if p.fatal != nil {
		return p.fatal
	}
	switch {
	case p.conn == nil || p.connDead:
		return p.reconnectLocked()
	case p.needRetx:
		p.needRetx = false
		delay := p.backoffDelay(0)
		p.opts.Logf("ingest client: %s: NACK, retransmitting %d frame(s) in %v",
			p.opts.Addr, len(p.pending), delay)
		p.mu.Unlock()
		select {
		case <-p.ctx.Done():
		case <-time.After(delay):
		}
		p.mu.Lock()
		if p.fatal != nil {
			return p.fatal
		}
		return p.resendPendingLocked()
	default:
		p.cond.Wait()
		return p.fatal
	}
}

// Send transmits one data frame (ingest.FrameProgram or ingest.FrameChunk)
// and returns its sequence number. The payload is copied; Send blocks while
// the in-flight window is full. Frames whose sequence the server has
// already acknowledged (an upload resumed from an earlier push of the same
// archive) are skipped without touching the network.
func (p *Pusher) Send(typ byte, data []byte) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, errors.New("ingest client: Send on closed pusher")
	}
	if p.fatal != nil {
		return 0, p.fatal
	}
	seq := p.nextSeq
	p.nextSeq++
	if seq <= p.acked {
		return seq, nil // the server already has it
	}
	f := pframe{typ: typ, seq: seq, data: append([]byte(nil), data...)}
	p.pending = append(p.pending, f)
	p.pendingBytes += len(f.data)
	if !p.writeFrameLocked(f) {
		if err := p.service(); err != nil {
			return seq, err
		}
	}
	for p.pendingBytes >= p.opts.WindowBytes {
		if err := p.service(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// Finish waits for every sent frame to be acknowledged, then closes the
// upload with FIN/FIN_ACK. After Finish returns nil, the server has
// archived and verified the complete stream.
func (p *Pusher) Finish() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	last := p.nextSeq - 1
	for p.finAcked < last {
		if p.fatal != nil {
			return p.fatal
		}
		if p.acked == last && !p.finSent && p.conn != nil && !p.connDead && !p.needRetx {
			if p.writeFrameLocked(pframe{typ: ingest.FrameFin, seq: last}) {
				p.finSent = true
			}
			continue
		}
		if err := p.service(); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the connection down. Safe after Finish and after errors.
func (p *Pusher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.cond.Broadcast()
	return nil
}
