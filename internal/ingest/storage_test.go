package ingest

// White-box tests of the storage-durability write path (DESIGN.md §16):
// the persist-before-ACK rollback when ingest.state cannot be written, and
// the typed poison after repeated failures. These drive session.archive
// directly with a failing filesystem, which the public Config surface (an
// *iofault.Injector) cannot produce deterministically enough for a
// three-strikes assertion.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"testing"

	"jportal"
	"jportal/internal/iofault"
	"jportal/internal/streamfmt"
)

// failTempFS delegates to the real filesystem but fails CreateTemp — the
// first step of every atomic state write — while armed.
type failTempFS struct {
	iofault.FS
	fail bool
}

func (f *failTempFS) CreateTemp(dir, pattern string) (iofault.File, error) {
	if f.fail {
		return nil, iofault.ErrIO
	}
	return f.FS.CreateTemp(dir, pattern)
}

// watermarkRecord builds one valid watermark record (a minimal chunk
// payload that passes streamfmt.Scan).
func watermarkRecord(core uint32, mark uint64) []byte {
	rec := make([]byte, 13)
	rec[0] = streamfmt.TagWatermark
	binary.LittleEndian.PutUint32(rec[1:], core)
	binary.LittleEndian.PutUint64(rec[5:], mark)
	return rec
}

func TestStatePersistFailureRollsBackThenPoisons(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{DataDir: dataDir}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	srv := &Server{cfg: cfg, sessions: map[string]*session{}, conns: map[net.Conn]struct{}{}, force: make(chan struct{})}

	dir := filepath.Join(dataDir, "s")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	hdr := streamfmt.AppendHeader(nil, 1)
	path := filepath.Join(dir, jportal.StreamFileName)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := iofault.OS.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(int64(len(hdr)), 0); err != nil {
		t.Fatal(err)
	}
	fsys := &failTempFS{FS: iofault.OS}
	sess := &session{
		srv: srv, id: "s", dir: dir, ncores: 1, fsys: fsys, f: f,
		size: int64(len(hdr)), crc: crc32.Update(0, crc32.IEEETable, hdr),
	}
	if err := sess.persistState(); err != nil {
		t.Fatal(err)
	}

	rec := watermarkRecord(0, 100)
	fsys.fail = true
	// The first maxPersistFails-1 failures are shed as storage errors; the
	// frame — bytes and frontier — must be fully rolled back each time so
	// the client's resend of the same sequence replays cleanly.
	for i := 1; i < maxPersistFails; i++ {
		err := sess.archive(msg{typ: FrameChunk, seq: 1, data: rec})
		var storage *storageError
		if !errors.As(err, &storage) {
			t.Fatalf("failure %d: err = %v, want a storage shed", i, err)
		}
		if sess.lastAcked != 0 || sess.size != int64(len(hdr)) {
			t.Fatalf("failure %d: frontier not rolled back: acked=%d size=%d", i, sess.lastAcked, sess.size)
		}
		got, _ := os.ReadFile(path)
		if len(got) != len(hdr) {
			t.Fatalf("failure %d: appended bytes not rolled back: %d bytes on disk", i, len(got))
		}
	}
	// The final consecutive failure crosses the threshold: a typed
	// ErrStatePersist the writer turns into a poison, not another shed.
	err = sess.archive(msg{typ: FrameChunk, seq: 1, data: rec})
	if !errors.Is(err, ErrStatePersist) {
		t.Fatalf("failure %d: err = %v, want ErrStatePersist", maxPersistFails, err)
	}
	if n := srv.metrics.StatePersistErrors.Load(); n != int64(maxPersistFails) {
		t.Fatalf("StatePersistErrors = %d, want %d", n, maxPersistFails)
	}

	// Recovery resets the consecutive-failure count and archives normally.
	fsys.fail = false
	sess.persistFails = 0
	if err := sess.archive(msg{typ: FrameChunk, seq: 1, data: rec}); err != nil {
		t.Fatalf("archive after recovery: %v", err)
	}
	if sess.lastAcked != 1 || sess.size != int64(len(hdr)+len(rec)) {
		t.Fatalf("frontier after recovery: acked=%d size=%d", sess.lastAcked, sess.size)
	}
	st, err := ReadSessionState(dir)
	if err != nil || st.Seq != 1 || st.Size != sess.size {
		t.Fatalf("persisted state after recovery: %+v, %v", st, err)
	}
}

// TestWriterDropsStaleFrames pins the writer-side ordering guard: after a
// storage shed leaves a hole, queued frames ahead of the frontier are
// dropped silently (no poison, no ACK), and duplicates of archived frames
// are re-ACKed idempotently.
func TestWriterDropsStaleFrames(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{DataDir: dataDir}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	srv := &Server{cfg: cfg, sessions: map[string]*session{}, conns: map[net.Conn]struct{}{}, force: make(chan struct{})}
	dir := filepath.Join(dataDir, "s")
	os.MkdirAll(dir, 0o755)
	hdr := streamfmt.AppendHeader(nil, 1)
	path := filepath.Join(dir, jportal.StreamFileName)
	os.WriteFile(path, hdr, 0o644)
	f, err := iofault.OS.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Seek(int64(len(hdr)), 0)
	sess := &session{
		srv: srv, id: "s", dir: dir, ncores: 1, fsys: iofault.OS, f: f,
		size: int64(len(hdr)), crc: crc32.Update(0, crc32.IEEETable, hdr),
	}

	// seq 2 with frontier at 0: ahead of the hole, silently dropped.
	if err := sess.archive(msg{typ: FrameChunk, seq: 2, data: watermarkRecord(0, 100)}); !errors.Is(err, errStaleFrame) {
		t.Fatalf("ahead-of-frontier frame: err = %v, want errStaleFrame", err)
	}
	if sess.size != int64(len(hdr)) {
		t.Fatal("stale frame touched the archive")
	}
	// In-order frame archives.
	if err := sess.archive(msg{typ: FrameChunk, seq: 1, data: watermarkRecord(0, 100)}); err != nil {
		t.Fatal(err)
	}
	// Duplicate of an archived frame: idempotent, no error, no growth.
	size := sess.size
	if err := sess.archive(msg{typ: FrameChunk, seq: 1, data: watermarkRecord(0, 100)}); err != nil {
		t.Fatalf("duplicate frame: %v", err)
	}
	if sess.size != size {
		t.Fatal("duplicate frame extended the archive")
	}
	if n := srv.metrics.Duplicates.Load(); n != 1 {
		t.Fatalf("Duplicates = %d, want 1", n)
	}
}
