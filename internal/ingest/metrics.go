package ingest

import (
	"net/http"
	"sync/atomic"

	"jportal/internal/metrics"
)

// Metrics is the server's observability surface: expvar-style monotonic
// counters plus two live gauges, all safe for concurrent use. The HTTP
// sidecar (Server.Observability) serves them as JSON at /metrics.
type Metrics struct {
	SessionsOpen    atomic.Int64 // gauge: sessions with a connection attached
	SessionsTotal   atomic.Int64 // counter: sessions ever created
	SessionsResumed atomic.Int64 // counter: HELLOs that resumed past sequence 0
	SessionsSealed  atomic.Int64 // counter: sessions whose seal record verified
	SessionsDrained atomic.Int64 // counter: sessions flushed during Shutdown
	ChunksIngested  atomic.Int64 // counter: PROGRAM/CHUNK frames archived
	BytesIngested   atomic.Int64 // counter: payload bytes archived
	Duplicates      atomic.Int64 // counter: frames at or below the acked sequence
	Nacks           atomic.Int64 // counter: frames rejected (queue full / gap)
	Errors          atomic.Int64 // counter: connections ended by an ERR frame

	SessionsQuarantined atomic.Int64 // counter: sessions poisoned by a failed validation
	CorruptRecords      atomic.Int64 // counter: chunks rejected as structurally corrupt
	TornRecords         atomic.Int64 // counter: chunks rejected for ending mid-record

	BusyRejections atomic.Int64 // counter: HELLOs refused by admission control (BUSY/ERR)
	FramesShed     atomic.Int64 // counter: data frames NACKed to stay inside the memory budget
	BreakerTrips   atomic.Int64 // counter: sessions poisoned by the NACK circuit breaker
	StallsDetected atomic.Int64 // counter: sessions poisoned by the writer watchdog
	StateFallbacks atomic.Int64 // counter: torn ingest.state files replaced by a fresh upload

	RedirectsSent    atomic.Int64 // counter: HELLOs for sessions owned by another fleet node (REDIRECT or typed ERR)
	SessionsRestored atomic.Int64 // counter: sessions restored from on-disk ingest.state at first attach

	StorageSheds       atomic.Int64 // counter: frames dropped on a disk-level write failure (shed, not poisoned)
	EnospcSheds        atomic.Int64 // counter: the StorageSheds subset caused by ENOSPC
	StatePersistErrors atomic.Int64 // counter: ingest.state writes that failed (frame rolled back and shed)
	DiskFullRejections atomic.Int64 // counter: HELLOs refused BUSY while the full-disk gate is armed
}

// snapshot returns the counters plus computed gauges as an ordered map,
// merged with the process-wide fault/quarantine registry so one endpoint
// covers both the ingest path and any in-process analysis sessions.
func (s *Server) snapshot() map[string]int64 {
	m := &s.metrics
	out := map[string]int64{
		"sessions_open":        m.SessionsOpen.Load(),
		"sessions_total":       m.SessionsTotal.Load(),
		"sessions_resumed":     m.SessionsResumed.Load(),
		"sessions_sealed":      m.SessionsSealed.Load(),
		"sessions_drained":     m.SessionsDrained.Load(),
		"sessions_quarantined": m.SessionsQuarantined.Load(),
		"chunks_ingested":      m.ChunksIngested.Load(),
		"bytes_ingested":       m.BytesIngested.Load(),
		"duplicates":           m.Duplicates.Load(),
		"nacks":                m.Nacks.Load(),
		"errors":               m.Errors.Load(),
		"records_corrupt":      m.CorruptRecords.Load(),
		"records_torn":         m.TornRecords.Load(),
		"busy_rejections":      m.BusyRejections.Load(),
		"frames_shed":          m.FramesShed.Load(),
		"breaker_trips":        m.BreakerTrips.Load(),
		"writer_stalls":        m.StallsDetected.Load(),
		"state_fallbacks":      m.StateFallbacks.Load(),
		"redirects_sent":       m.RedirectsSent.Load(),
		"sessions_restored":    m.SessionsRestored.Load(),
		"storage_sheds":        m.StorageSheds.Load(),
		"enospc_sheds":         m.EnospcSheds.Load(),
		"state_persist_errors": m.StatePersistErrors.Load(),
		"disk_full_rejections": m.DiskFullRejections.Load(),
		"queue_depth":          s.queueDepth(),
		"queued_bytes":         s.queuedBytes.Load(),
	}
	for k, v := range s.cfg.Registry.Snapshot() {
		out[k] = v
	}
	return out
}

// queueDepth sums the frames waiting in every session's bounded inbound
// queue — the backpressure gauge.
func (s *Server) queueDepth() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var depth int64
	for _, sess := range s.sessions {
		depth += int64(len(sess.queue))
	}
	return depth
}

// Observability returns the HTTP sidecar handler:
//
//	GET /healthz   200 "ok" while serving, 503 "draining" during Shutdown
//	GET /metrics   the counters and gauges as a JSON object
func (s *Server) Observability() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metrics.WriteSortedJSON(w, s.snapshot())
	})
	return mux
}
