package meta

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"jportal/internal/bytecode"
)

// The snapshot wire format supports JPortal's actual deployment model: the
// online phase exports machine-code metadata to disk next to the trace
// files, and the offline phase — possibly on another machine — loads both.
// gob is used (stdlib, self-describing); a version header guards format
// drift.

const snapshotMagic = "JPSNAP1\n"

// snapshotWire is the serializable projection of Snapshot.
type snapshotWire struct {
	TemplateRanges [][]Range
	Stubs          Stubs
	CodeCache      Range
	Compiled       []*CompiledMethod
}

// WriteSnapshot serialises s to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, snapshotMagic); err != nil {
		return err
	}
	wire := snapshotWire{
		TemplateRanges: s.Templates.Ranges,
		Stubs:          s.Stubs,
		CodeCache:      s.CodeCache,
	}
	// Walk the export log, not the Compiled map: export order is
	// deterministic, so the snapshot file is byte-reproducible for a
	// deterministic run (the archive golden tests rely on that). Replaying
	// the log through Export reproduces Compiled exactly.
	wire.Compiled = append(wire.Compiled, s.exportLog...)
	if err := gob.NewEncoder(bw).Encode(&wire); err != nil {
		return fmt.Errorf("meta: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot deserialises a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr) != snapshotMagic {
		return nil, fmt.Errorf("meta: bad snapshot magic %q", hdr)
	}
	var wire snapshotWire
	if err := gob.NewDecoder(br).Decode(&wire); err != nil {
		return nil, fmt.Errorf("meta: decode snapshot: %w", err)
	}
	t := NewTemplateTable()
	for op, ranges := range wire.TemplateRanges {
		if op >= bytecode.NumOpcodes {
			return nil, fmt.Errorf("meta: snapshot has %d opcode templates, binary knows %d",
				len(wire.TemplateRanges), bytecode.NumOpcodes)
		}
		for _, rg := range ranges {
			t.Add(bytecode.Opcode(op), rg)
		}
	}
	s := NewSnapshot(t)
	s.Stubs = wire.Stubs
	s.CodeCache = wire.CodeCache
	for _, c := range wire.Compiled {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("meta: snapshot blob invalid: %w", err)
		}
		s.Export(c)
	}
	return s, nil
}

// WriteBlob serialises a single compiled-method blob. It is the delta
// record of the chunked streaming archive: the online phase exports each
// method's metadata as it is JITed, so the offline consumer can decode
// trace chunks referencing the blob without waiting for the final
// snapshot (paper §3.2's incremental metadata dump).
func WriteBlob(w io.Writer, c *CompiledMethod) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("meta: encode blob: %w", err)
	}
	return nil
}

// ReadBlob deserialises a blob written by WriteBlob and validates it.
func ReadBlob(r io.Reader) (*CompiledMethod, error) {
	var c CompiledMethod
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("meta: decode blob: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("meta: streamed blob invalid: %w", err)
	}
	return &c, nil
}
