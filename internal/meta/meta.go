// Package meta defines the machine-code metadata that JPortal's online
// component collects from the virtual machine and its offline component
// consumes for decoding (paper §3): the interpreter's template address
// ranges, exported JIT code blobs with their debug information, and the
// code-cache boundary used for instruction-pointer filtering (§6).
package meta

import (
	"fmt"
	"sort"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
)

// Address-space layout of the simulated process. The template area and the
// code cache are disjoint so a single range check classifies an IP.
const (
	// TemplateBase is where the interpreter's opcode templates live.
	TemplateBase uint64 = 0x7f40_0000_0000
	// CodeCacheBase is where JIT-compiled code is allocated.
	CodeCacheBase uint64 = 0x7f80_0000_0000
	// CodeCacheLimit bounds the code cache.
	CodeCacheLimit uint64 = 0x7fc0_0000_0000
)

// Range is a half-open native address range [Start, End).
type Range struct {
	Start, End uint64
}

// Contains reports whether addr is in r.
func (r Range) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End }

// TemplateTable records, per opcode, the machine-code address ranges of its
// interpreter template (Figure 2c). A handler may occupy multiple sub-ranges
// when its machine code is non-contiguous (paper §3.1).
type TemplateTable struct {
	// Ranges[op] lists the sub-ranges of opcode op; the first is the
	// template entry (dispatch target).
	Ranges [][]Range

	// flat is a sorted index for address lookup.
	flat []flatRange
}

type flatRange struct {
	Range
	op bytecode.Opcode
}

// NewTemplateTable allocates an empty table covering all opcodes.
func NewTemplateTable() *TemplateTable {
	return &TemplateTable{Ranges: make([][]Range, bytecode.NumOpcodes)}
}

// Add registers a sub-range for op.
func (t *TemplateTable) Add(op bytecode.Opcode, r Range) {
	t.Ranges[op] = append(t.Ranges[op], r)
	t.flat = append(t.flat, flatRange{Range: r, op: op})
	sort.Slice(t.flat, func(i, j int) bool { return t.flat[i].Start < t.flat[j].Start })
}

// Entry returns the dispatch entry address of op's template.
func (t *TemplateTable) Entry(op bytecode.Opcode) uint64 {
	rs := t.Ranges[op]
	if len(rs) == 0 {
		panic(fmt.Sprintf("template table has no range for %s", op))
	}
	return rs[0].Start
}

// Lookup maps a native address to the opcode whose template contains it.
func (t *TemplateTable) Lookup(addr uint64) (bytecode.Opcode, bool) {
	i := sort.Search(len(t.flat), func(i int) bool { return t.flat[i].End > addr })
	if i < len(t.flat) && t.flat[i].Contains(addr) {
		return t.flat[i].op, true
	}
	return 0, false
}

// Frame is one level of an inline chain: the bytecode instruction at PC of
// Method. Debug info attaches a stack of frames to native instructions;
// Frames[0] is the outermost (root, non-inlined) method and the last entry
// is the instruction actually represented (paper §6, "Dealing with Inlined
// Code").
type Frame struct {
	Method bytecode.MethodID
	PC     int32
}

func (f Frame) String() string { return fmt.Sprintf("m%d@%d", f.Method, f.PC) }

// DebugRecord maps one native instruction (by address) back to bytecode.
type DebugRecord struct {
	Addr   uint64
	Frames []Frame
	// Approximate marks records whose mapping was coarsened by JIT
	// optimisation (loop transformation etc.); decoding uses them but
	// accuracy may suffer (paper §7.2).
	Approximate bool
}

// CompiledMethod is an exported JIT code blob plus its metadata. The VM
// exports one of these when a method is compiled, and (again) right before
// its code would be reclaimed by code-cache GC (paper §3.2).
type CompiledMethod struct {
	Root bytecode.MethodID
	Tier int // 1 = C1, 2 = C2
	Code *isa.Blob
	// Debug holds one record per native instruction, address-sorted.
	Debug []DebugRecord
	// Inlined lists methods inlined into this blob (excluding Root).
	Inlined []bytecode.MethodID
}

// EntryAddr returns the blob's entry address.
func (c *CompiledMethod) EntryAddr() uint64 { return c.Code.Base() }

// DebugAt returns the debug record for the native instruction at addr.
func (c *CompiledMethod) DebugAt(addr uint64) (*DebugRecord, bool) {
	i := sort.Search(len(c.Debug), func(i int) bool { return c.Debug[i].Addr >= addr })
	if i < len(c.Debug) && c.Debug[i].Addr == addr {
		return &c.Debug[i], true
	}
	return nil, false
}

// Validate checks that the debug map covers exactly the blob's instructions.
func (c *CompiledMethod) Validate() error {
	if c.Code == nil {
		return fmt.Errorf("compiled m%d: no code blob", c.Root)
	}
	if err := c.Code.Validate(); err != nil {
		return err
	}
	if len(c.Debug) != len(c.Code.Instrs) {
		return fmt.Errorf("compiled m%d: %d debug records for %d instructions",
			c.Root, len(c.Debug), len(c.Code.Instrs))
	}
	for i := range c.Debug {
		if c.Debug[i].Addr != c.Code.Instrs[i].Addr {
			return fmt.Errorf("compiled m%d: debug record %d at %#x but instruction at %#x",
				c.Root, i, c.Debug[i].Addr, c.Code.Instrs[i].Addr)
		}
		if len(c.Debug[i].Frames) == 0 {
			return fmt.Errorf("compiled m%d: debug record %d has no frames", c.Root, i)
		}
	}
	return nil
}

// Stubs are the runtime adapter entry points living in the template area.
// Real HotSpot has i2c/c2i adapters and return/unwind stubs; transfers into
// them show up in traces as TIP targets, and the decoder classifies them to
// track interpreter/compiled mode switches.
type Stubs struct {
	// InterpEntry is the target of an indirect call from compiled code
	// into the interpreter (callee not compiled).
	InterpEntry Range
	// RetEntry is the target of a compiled method's return when the
	// caller is interpreted.
	RetEntry Range
	// Unwind is the target of exceptional unwinding before control
	// reaches the handler.
	Unwind Range
	// ThreadExit is the return target of a thread's bottom frame.
	ThreadExit Range
	// Deopt is the uncommon-trap entry: compiled code that hits an
	// exceptional state deoptimizes through it back to the interpreter.
	Deopt Range
}

// Classify returns which stub addr belongs to: "interp_entry", "ret_entry",
// "unwind", "thread_exit", or "" if none.
func (s *Stubs) Classify(addr uint64) string {
	switch {
	case s.InterpEntry.Contains(addr):
		return "interp_entry"
	case s.RetEntry.Contains(addr):
		return "ret_entry"
	case s.Unwind.Contains(addr):
		return "unwind"
	case s.ThreadExit.Contains(addr):
		return "thread_exit"
	case s.Deopt.Contains(addr):
		return "deopt"
	}
	return ""
}

// Snapshot is everything the offline decoder needs about machine code: it is
// JPortal's "machine-code metadata" deliverable from the online phase.
type Snapshot struct {
	Templates *TemplateTable
	Stubs     Stubs
	// Compiled holds every blob ever exported, including ones later
	// evicted from the code cache, keyed by entry address. Multiple
	// compilations of the same method (tier-up, recompilation after
	// eviction) appear as separate entries.
	Compiled map[uint64]*CompiledMethod
	// CodeCache is the IP filter range covering interpreted and JITed
	// application code (paper §6, "Filtering Out Irrelevant Data").
	CodeCache Range

	sorted []uint64 // sorted entry addresses, lazily rebuilt
	dirty  bool
	// exportLog records every blob passed to Export, in export order
	// (re-exports appear again). Streaming consumers read suffixes of it
	// as metadata deltas.
	exportLog []*CompiledMethod
}

// NewSnapshot creates an empty snapshot with the standard layout.
func NewSnapshot(t *TemplateTable) *Snapshot {
	return &Snapshot{
		Templates: t,
		Compiled:  make(map[uint64]*CompiledMethod),
		CodeCache: Range{Start: TemplateBase, End: CodeCacheLimit},
	}
}

// Export records a compiled method blob.
func (s *Snapshot) Export(c *CompiledMethod) {
	if _, exists := s.Compiled[c.EntryAddr()]; !exists {
		s.dirty = true
	}
	s.Compiled[c.EntryAddr()] = c
	s.exportLog = append(s.exportLog, c)
}

// Clone returns an independent snapshot sharing the immutable pieces: the
// template table, the stubs, and the *CompiledMethod blobs themselves
// (never mutated after export). The clone has its own Compiled map, export
// log and sorted index, so exporting into it never races readers of the
// original — the pipelined session gives each analyzer worker a replica
// and delivers blob records to it in stream order.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{
		Templates: s.Templates,
		Stubs:     s.Stubs,
		Compiled:  make(map[uint64]*CompiledMethod, len(s.Compiled)),
		CodeCache: s.CodeCache,
		exportLog: append([]*CompiledMethod(nil), s.exportLog...),
		dirty:     true,
	}
	for base, cm := range s.Compiled {
		c.Compiled[base] = cm
	}
	return c
}

// ExportedBlobs returns the export log: every blob ever passed to Export,
// in export order. Replaying the log through Export reproduces Compiled
// exactly (later entries overwrite earlier ones at the same address), which
// is how the chunked archive ships metadata incrementally (§3.2).
func (s *Snapshot) ExportedBlobs() []*CompiledMethod { return s.exportLog }

// Seal eagerly rebuilds the sorted address index. BlobFor rebuilds it
// lazily, which mutates the snapshot on first lookup; callers that are
// about to share the snapshot across goroutines (the offline pipeline's
// per-thread fan-out) must Seal first so every subsequent BlobFor is a
// pure read. Sealing an already-clean snapshot is a no-op, so it is cheap
// to call before every parallel stage.
func (s *Snapshot) Seal() {
	if s.dirty || s.sorted == nil {
		s.sorted = s.sorted[:0]
		for base := range s.Compiled {
			s.sorted = append(s.sorted, base)
		}
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
		s.dirty = false
	}
}

// BlobFor returns the compiled method whose code contains addr, or nil.
func (s *Snapshot) BlobFor(addr uint64) *CompiledMethod {
	s.Seal()
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] > addr })
	if i == 0 {
		return nil
	}
	c := s.Compiled[s.sorted[i-1]]
	if c.Code.Contains(addr) {
		return c
	}
	return nil
}

// IsTemplate reports whether addr lies in the interpreter template area.
func (s *Snapshot) IsTemplate(addr uint64) bool {
	return addr >= TemplateBase && addr < CodeCacheBase
}

// InFilter reports whether addr passes the IP filter (i.e. belongs to the
// traced application's interpreted or JITed code).
func (s *Snapshot) InFilter(addr uint64) bool { return s.CodeCache.Contains(addr) }
