package meta

import (
	"bytes"
	"strings"
	"testing"

	"jportal/internal/bytecode"
)

func buildSampleSnapshot() *Snapshot {
	tt := NewTemplateTable()
	for op := 0; op < bytecode.NumOpcodes; op++ {
		start := TemplateBase + uint64(op)*0x200
		tt.Add(bytecode.Opcode(op), Range{Start: start, End: start + 0x100})
	}
	tt.Add(bytecode.IRETURN, Range{Start: TemplateBase + 0x100000, End: TemplateBase + 0x100040})
	s := NewSnapshot(tt)
	s.Stubs = Stubs{
		InterpEntry: Range{Start: TemplateBase + 0x200000, End: TemplateBase + 0x200040},
		RetEntry:    Range{Start: TemplateBase + 0x200100, End: TemplateBase + 0x200140},
		Unwind:      Range{Start: TemplateBase + 0x200200, End: TemplateBase + 0x200240},
		ThreadExit:  Range{Start: TemplateBase + 0x200300, End: TemplateBase + 0x200340},
		Deopt:       Range{Start: TemplateBase + 0x200400, End: TemplateBase + 0x200440},
	}
	s.Export(mkCompiled(CodeCacheBase, 3))
	s.Export(mkCompiled(CodeCacheBase+0x1000, 5))
	return s
}

func TestSnapshotSerializeRoundTrip(t *testing.T) {
	s := buildSampleSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Template lookups agree on a sample of addresses.
	for op := 0; op < bytecode.NumOpcodes; op += 3 {
		addr := TemplateBase + uint64(op)*0x200 + 7
		o1, ok1 := s.Templates.Lookup(addr)
		o2, ok2 := got.Templates.Lookup(addr)
		if ok1 != ok2 || o1 != o2 {
			t.Fatalf("template lookup diverged at %#x", addr)
		}
	}
	if got.Stubs != s.Stubs {
		t.Error("stubs lost")
	}
	if len(got.Compiled) != 2 {
		t.Fatalf("compiled blobs: %d", len(got.Compiled))
	}
	b := got.BlobFor(CodeCacheBase + 0x1000)
	if b == nil || b.Root != 5 {
		t.Errorf("blob lookup after round trip: %+v", b)
	}
	if len(b.Debug) != 2 || b.Debug[1].Frames[0].PC != 1 {
		t.Error("debug records lost")
	}
	if got.CodeCache != s.CodeCache {
		t.Error("code cache range lost")
	}
}

func TestReadSnapshotRejectsBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("NOTASNAP........")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("JPSNAP1\nnot gob")); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestReadSnapshotValidatesBlobs(t *testing.T) {
	s := buildSampleSnapshot()
	// Corrupt a debug record after export, then serialize.
	for _, c := range s.Compiled {
		c.Debug = c.Debug[:1]
		break
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err == nil {
		t.Fatal("invalid blob accepted on read")
	}
}
