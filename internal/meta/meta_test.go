package meta

import (
	"testing"

	"jportal/internal/bytecode"
	"jportal/internal/isa"
)

func TestTemplateTableLookup(t *testing.T) {
	tt := NewTemplateTable()
	tt.Add(bytecode.ICONST, Range{Start: 0x1000, End: 0x1080})
	tt.Add(bytecode.IFEQ, Range{Start: 0x2000, End: 0x2300})
	tt.Add(bytecode.IFEQ, Range{Start: 0x9000, End: 0x9060}) // secondary sub-range

	if tt.Entry(bytecode.ICONST) != 0x1000 {
		t.Error("entry wrong")
	}
	cases := []struct {
		addr uint64
		op   bytecode.Opcode
		ok   bool
	}{
		{0x1000, bytecode.ICONST, true},
		{0x107f, bytecode.ICONST, true},
		{0x1080, 0, false},
		{0x2100, bytecode.IFEQ, true},
		{0x9010, bytecode.IFEQ, true},
		{0x0fff, 0, false},
		{0x5000, 0, false},
	}
	for _, c := range cases {
		op, ok := tt.Lookup(c.addr)
		if ok != c.ok || (ok && op != c.op) {
			t.Errorf("Lookup(%#x) = %v,%v; want %v,%v", c.addr, op, ok, c.op, c.ok)
		}
	}
}

func TestTemplateEntryPanicsWithoutRange(t *testing.T) {
	tt := NewTemplateTable()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tt.Entry(bytecode.NOP)
}

func mkCompiled(base uint64, root bytecode.MethodID) *CompiledMethod {
	a := isa.NewAssembler("m", base)
	a.Emit(isa.Linear, 4, 0, "")
	a.Emit(isa.Ret, 1, 0, "")
	blob := a.Finish()
	debug := []DebugRecord{
		{Addr: base, Frames: []Frame{{Method: root, PC: 0}}},
		{Addr: base + 4, Frames: []Frame{{Method: root, PC: 1}}},
	}
	return &CompiledMethod{Root: root, Tier: 1, Code: blob, Debug: debug}
}

func TestSnapshotBlobFor(t *testing.T) {
	s := NewSnapshot(NewTemplateTable())
	c1 := mkCompiled(CodeCacheBase, 1)
	c2 := mkCompiled(CodeCacheBase+0x100, 2)
	s.Export(c1)
	s.Export(c2)
	if got := s.BlobFor(CodeCacheBase + 2); got != c1 {
		t.Error("BlobFor inside c1 failed")
	}
	if got := s.BlobFor(CodeCacheBase + 0x104); got != c2 {
		t.Error("BlobFor inside c2 failed")
	}
	if s.BlobFor(CodeCacheBase+0x50) != nil {
		t.Error("hole resolved")
	}
	// Re-exporting at the same base replaces.
	c1b := mkCompiled(CodeCacheBase, 1)
	c1b.Tier = 2
	s.Export(c1b)
	if got := s.BlobFor(CodeCacheBase); got.Tier != 2 {
		t.Error("re-export did not replace")
	}
}

func TestCompiledValidate(t *testing.T) {
	c := mkCompiled(CodeCacheBase, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Debug = c.Debug[:1]
	if err := c.Validate(); err == nil {
		t.Error("record count mismatch not caught")
	}
	c = mkCompiled(CodeCacheBase, 1)
	c.Debug[1].Frames = nil
	if err := c.Validate(); err == nil {
		t.Error("empty frames not caught")
	}
	c = mkCompiled(CodeCacheBase, 1)
	c.Debug[1].Addr++
	if err := c.Validate(); err == nil {
		t.Error("misaligned record not caught")
	}
}

func TestDebugAt(t *testing.T) {
	c := mkCompiled(CodeCacheBase, 7)
	rec, ok := c.DebugAt(CodeCacheBase + 4)
	if !ok || rec.Frames[0].PC != 1 {
		t.Errorf("DebugAt: %+v %v", rec, ok)
	}
	if _, ok := c.DebugAt(CodeCacheBase + 2); ok {
		t.Error("mid-instruction DebugAt should miss")
	}
}

func TestStubsClassify(t *testing.T) {
	st := Stubs{
		InterpEntry: Range{Start: 0x100, End: 0x140},
		RetEntry:    Range{Start: 0x200, End: 0x240},
		Unwind:      Range{Start: 0x300, End: 0x340},
		ThreadExit:  Range{Start: 0x400, End: 0x440},
	}
	cases := map[uint64]string{
		0x100: "interp_entry", 0x210: "ret_entry",
		0x33f: "unwind", 0x400: "thread_exit", 0x500: "",
	}
	for addr, want := range cases {
		if got := st.Classify(addr); got != want {
			t.Errorf("Classify(%#x) = %q, want %q", addr, got, want)
		}
	}
}

func TestSnapshotRegionClassification(t *testing.T) {
	s := NewSnapshot(NewTemplateTable())
	if !s.IsTemplate(TemplateBase) || s.IsTemplate(CodeCacheBase) {
		t.Error("IsTemplate boundaries wrong")
	}
	if !s.InFilter(TemplateBase) || !s.InFilter(CodeCacheBase) || s.InFilter(0x1000) {
		t.Error("IP filter boundaries wrong")
	}
}
