package core

import (
	"testing"
	"testing/quick"

	"jportal/internal/bytecode"
	"jportal/internal/cfg"
)

// mkSeg builds a segment from tokens and reconstructs it.
func mkFlow(m *Matcher, toks []Token, gap *GapInfo) *SegmentFlow {
	seg := &Segment{Tokens: toks, GapBefore: gap}
	return m.ReconstructSegment(seg)
}

// loopTrace produces n iterations of the fun@15..18-ish control loop using
// the fig2 program's else-path body as repetitive content, each iteration
// stamped with increasing timestamps.
func repTrace(n int, startTSC uint64) []Token {
	var out []Token
	ts := startTSC
	for i := 0; i < n; i++ {
		for _, tk := range fig2ElseTrace() {
			tk.TSC = ts
			ts += 10
			out = append(out, tk)
		}
	}
	return out
}

func TestTierAbstractions(t *testing.T) {
	seg := &Segment{Tokens: fig2ElseTrace()}
	a1 := seg.Abstraction(1)
	a2 := seg.Abstraction(2)
	// Tier 1: only ireturn. Tier 2: ifeq, ifne, ireturn.
	if len(a1) != 1 || seg.Tokens[a1[0]].Op != bytecode.IRETURN {
		t.Errorf("tier-1: %v", a1)
	}
	if len(a2) != 3 {
		t.Errorf("tier-2: %v", a2)
	}
	// Tier-2 is a superset of tier-1 (Definition 5.2: tier-2 includes
	// tier-1 instructions).
	set2 := map[int32]bool{}
	for _, i := range a2 {
		set2[i] = true
	}
	for _, i := range a1 {
		if !set2[i] {
			t.Errorf("tier-1 token %d missing from tier-2", i)
		}
	}
	// AbsPrefix is monotone and consistent with the index lists.
	for i := 0; i <= len(seg.Tokens); i++ {
		if i > 0 && seg.AbsPrefix(2, i) < seg.AbsPrefix(2, i-1) {
			t.Fatal("AbsPrefix not monotone")
		}
	}
	if int(seg.AbsPrefix(2, len(seg.Tokens))) != len(a2) {
		t.Error("AbsPrefix total wrong")
	}
}

func TestSuffixLemma53(t *testing.T) {
	// Lemma 5.3-flavoured property: for random token sequences, the
	// tier-2 abstraction of a common suffix never exceeds the tier-2
	// common suffix of the abstractions (Lemma 5.4 direction), and
	// concrete-suffix ordering implies abstract-suffix ordering.
	mkTok := func(r byte) Token {
		ops := []bytecode.Opcode{
			bytecode.ILOAD, bytecode.ICONST, bytecode.IADD,
			bytecode.IFEQ, bytecode.GOTO, bytecode.INVOKESTATIC, bytecode.IRETURN,
		}
		return Token{Op: ops[int(r)%len(ops)], Method: bytecode.NoMethod}
	}
	f := func(a, b, c []byte) bool {
		ta := make([]Token, len(a))
		for i, r := range a {
			ta[i] = mkTok(r)
		}
		tb := make([]Token, len(b))
		for i, r := range b {
			tb[i] = mkTok(r)
		}
		tc := make([]Token, len(c))
		for i, r := range c {
			tc[i] = mkTok(r)
		}
		s0 := &Segment{Tokens: ta}
		s1 := &Segment{Tokens: tb}
		s2 := &Segment{Tokens: tc}
		// Concrete common suffixes.
		c1 := suffixKeys(s0.Tokens, len(ta), s1.Tokens, len(tb))
		c2 := suffixKeys(s0.Tokens, len(ta), s2.Tokens, len(tc))
		// Abstract common suffixes (tier 2).
		a1 := suffixAbs(s0, s0.AbsPrefix(2, len(ta)), s1, s1.AbsPrefix(2, len(tb)), 2)
		a2 := suffixAbs(s0, s0.AbsPrefix(2, len(ta)), s2, s2.AbsPrefix(2, len(tc)), 2)
		// Lemma 5.4: abstract suffix >= abstraction of concrete suffix.
		absOfC1 := countControl(ta[len(ta)-c1:])
		if a1 < absOfC1 {
			return false
		}
		// Theorem 5.5 contrapositive: a1 < abstraction(c2-suffix) implies
		// c1 < c2 is impossible... verify via the safe pruning direction:
		if c1 >= c2 && a1 < countControl(ta[len(ta)-c2:]) {
			return false
		}
		_ = a2
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func countControl(toks []Token) int {
	n := 0
	for i := range toks {
		if toks[i].Op.IsControl() {
			n++
		}
	}
	return n
}

func TestSearchCSFindsRepetition(t *testing.T) {
	_, m := fig2Matcher(t)
	// IS: 3 iterations then hole; CS: 6 iterations elsewhere.
	is := mkFlow(m, repTrace(3, 0), nil)
	cs := mkFlow(m, repTrace(6, 10_000), &GapInfo{Start: 360, End: 10_000, LostBytes: 500})
	r := NewRecoverer(m, []*SegmentFlow{is, cs}, DefaultRecoveryConfig())
	cands, tried, _ := r.searchCS(0)
	if tried == 0 || len(cands) == 0 {
		t.Fatalf("no candidates (tried %d)", tried)
	}
	best := cands[0]
	if best.seg != 1 {
		t.Errorf("best candidate in segment %d", best.seg)
	}
	if best.ml3 < len(fig2ElseTrace()) {
		t.Errorf("concrete suffix %d too short", best.ml3)
	}
}

func TestSearchCSNaiveAgreesOnBest(t *testing.T) {
	_, m := fig2Matcher(t)
	is := mkFlow(m, repTrace(3, 0), nil)
	cs := mkFlow(m, repTrace(6, 10_000), nil)
	r := NewRecoverer(m, []*SegmentFlow{is, cs}, DefaultRecoveryConfig())
	cands, _, _ := r.searchCS(0)
	naive, ok := r.searchCSNaive(0)
	if !ok || len(cands) == 0 {
		t.Fatal("searches failed")
	}
	if naive.ml3 != cands[0].ml3 {
		t.Errorf("alg3 best suffix %d, alg4 best %d", naive.ml3, cands[0].ml3)
	}
}

func TestRecoverHoleFillsRepetitiveLoop(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	// Thread: [3 iterations] HOLE(about 4 iterations worth) [3 iterations],
	// with a long separate segment providing CS material.
	pre := mkFlow(m, repTrace(3, 0), nil)
	// Gap duration must imply ~4*12 tokens at the observed rate (10
	// cycles/token): 480 cycles... use 4*iter*10.
	gapDur := uint64(4 * iter * 10)
	post := mkFlow(m, repTrace(3, uint64(3*iter*10)+gapDur), &GapInfo{
		Start: uint64(3 * iter * 10), End: uint64(3*iter*10) + gapDur, LostBytes: 300,
	})
	csMat := mkFlow(m, repTrace(12, 100_000), &GapInfo{Desync: true, Start: 50_000, End: 50_000})
	r := NewRecoverer(m, []*SegmentFlow{pre, post, csMat}, DefaultRecoveryConfig())
	fill := r.RecoverHole(0)
	if fill.Method == FillNone {
		t.Fatalf("hole not filled (cands tried %d)", fill.CandidatesTried)
	}
	if len(fill.Steps) < 2*iter {
		t.Errorf("fill too short: %d steps for ~%d lost", len(fill.Steps), 4*iter)
	}
	for _, s := range fill.Steps {
		if !s.Recovered {
			t.Fatal("fill steps must be marked Recovered")
		}
	}
}

func TestRecoverDisabled(t *testing.T) {
	_, m := fig2Matcher(t)
	pre := mkFlow(m, repTrace(2, 0), nil)
	post := mkFlow(m, repTrace(2, 1000), &GapInfo{Start: 500, End: 1000, LostBytes: 100})
	cfg := DefaultRecoveryConfig()
	cfg.Disable = true
	r := NewRecoverer(m, []*SegmentFlow{pre, post}, cfg)
	if fill := r.RecoverHole(0); fill.Method != FillNone || fill.Steps != nil {
		t.Error("disabled recovery still filled")
	}
}

func TestFallbackWalkConnects(t *testing.T) {
	p, m := fig2Matcher(t)
	fun := p.MethodByName("Test.fun")
	// IS ends at fun@1 (ifeq); next segment starts at fun@15 (iload of
	// the join). No CS material exists, so the ICFG walk must connect.
	pre := mkFlow(m, []Token{
		{Op: bytecode.ILOAD, Method: fun.ID, PC: 0},
		{Op: bytecode.IFEQ, Method: fun.ID, PC: 1, HasDir: true, Taken: false},
	}, nil)
	post := mkFlow(m, []Token{
		{Op: bytecode.ILOAD, Method: fun.ID, PC: 11},
		{Op: bytecode.ICONST, Method: fun.ID, PC: 12},
	}, &GapInfo{Start: 100, End: 200, LostBytes: 40})
	r := NewRecoverer(m, []*SegmentFlow{pre, post}, DefaultRecoveryConfig())
	fill := r.RecoverHole(0)
	if fill.Method != FillWalk {
		t.Fatalf("expected walk fill, got %v (steps %d)", fill.Method, len(fill.Steps))
	}
	// The walk's steps stay inside the method and connect 1 -> 11: the
	// interior is pcs 2..10 along some path.
	for _, s := range fill.Steps {
		if s.Method != fun.ID {
			t.Errorf("walk left the method: %+v", s)
		}
	}
}

func TestChainFillCrossesSegments(t *testing.T) {
	_, m := fig2Matcher(t)
	iter := len(fig2ElseTrace())
	// The hole needs ~8 iterations but each CS segment has only 3: the
	// chained re-anchor must stitch multiple CSes.
	pre := mkFlow(m, repTrace(3, 0), nil)
	gapDur := uint64(8 * iter * 10)
	post := mkFlow(m, repTrace(3, uint64(3*iter*10)+gapDur), &GapInfo{
		Start: uint64(3 * iter * 10), End: uint64(3*iter*10) + gapDur, LostBytes: 900,
	})
	cs1 := mkFlow(m, repTrace(3, 40_000), &GapInfo{Desync: true})
	cs2 := mkFlow(m, repTrace(3, 60_000), &GapInfo{Desync: true})
	r := NewRecoverer(m, []*SegmentFlow{pre, post, cs1, cs2}, DefaultRecoveryConfig())
	fill := r.RecoverHole(0)
	if fill.Method == FillNone || fill.Method == FillWalk {
		t.Fatalf("fill method %v", fill.Method)
	}
	if len(fill.Steps) < 4*iter {
		t.Errorf("chained fill too short: %d", len(fill.Steps))
	}
}

func TestMatchKeySemantics(t *testing.T) {
	a := Token{Op: bytecode.ILOAD, Method: bytecode.NoMethod}
	b := Token{Op: bytecode.ILOAD, Method: bytecode.NoMethod}
	if a.MatchKey() != b.MatchKey() {
		t.Error("same interp tokens differ")
	}
	c := Token{Op: bytecode.IFEQ, Method: bytecode.NoMethod, HasDir: true, Taken: true}
	d := Token{Op: bytecode.IFEQ, Method: bytecode.NoMethod, HasDir: true, Taken: false}
	if c.MatchKey() == d.MatchKey() {
		t.Error("branch direction ignored")
	}
	e := Token{Op: bytecode.ILOAD, Method: 3, PC: 7}
	f := Token{Op: bytecode.ILOAD, Method: 3, PC: 8}
	if e.MatchKey() == f.MatchKey() {
		t.Error("located positions collide")
	}
	if e.MatchKey() == a.MatchKey() {
		t.Error("located vs interp collide")
	}
}

func TestFillTSCInterpolation(t *testing.T) {
	gap := &GapInfo{Start: 1000, End: 2000}
	if fillTSC(gap, 0, 10) != 1000 {
		t.Error("first step TSC")
	}
	if fillTSC(gap, 5, 10) != 1500 {
		t.Error("middle step TSC")
	}
	if fillTSC(nil, 3, 10) != 0 {
		t.Error("nil gap TSC")
	}
}

var _ = cfg.NoNode // keep cfg import if assertions change
