package core

import (
	"jportal/internal/bytecode"
	"jportal/internal/meta"
	"jportal/internal/pt"
	"jportal/internal/ptdecode"
)

// DecodeThread runs the two-level decode for one thread's stitched packet
// stream: the native-level walk (package ptdecode) followed by the
// bytecode-level mapping of §3 — template-range lookup for interpreted
// dispatches (§3.1) and debug-record lookup, through inline frames, for
// JITed ranges (§3.2). The result is the segmented bytecode token stream
// that reconstruction (§4) and recovery (§5) consume.
func DecodeThread(prog *bytecode.Program, snap *meta.Snapshot, items []pt.Item) ([]*Segment, *DecodeThreadStats) {
	dec := ptdecode.New(snap)
	events := dec.Decode(items)
	segs, stats := TokenizeEvents(prog, events)
	stats.NativeDesyncs = dec.Desyncs
	return segs, stats
}

// DecodeThreadStats summarises one thread's decode.
type DecodeThreadStats struct {
	Segments      int
	Tokens        int
	LocatedTokens int
	Gaps          int
	LostBytes     uint64
	NativeDesyncs int
}

// TokenizeEvents lowers native-level decoder events to bytecode tokens,
// splitting segments at gaps and desyncs.
func TokenizeEvents(prog *bytecode.Program, events []ptdecode.Event) ([]*Segment, *DecodeThreadStats) {
	st := &DecodeThreadStats{}
	var segs []*Segment
	cur := &Segment{}
	var pendingGap *GapInfo
	tsc := uint64(0)

	flush := func(gapAfter *GapInfo) {
		if len(cur.Tokens) > 0 {
			cur.GapBefore = pendingGap
			segs = append(segs, cur)
			st.Segments++
			st.Tokens += len(cur.Tokens)
			pendingGap = nil
		} else if pendingGap != nil && gapAfter != nil {
			// Merge adjacent gaps.
			gapAfter.LostBytes += pendingGap.LostBytes
			if pendingGap.Start < gapAfter.Start {
				gapAfter.Start = pendingGap.Start
			}
			gapAfter.Desync = gapAfter.Desync && pendingGap.Desync
		}
		cur = &Segment{}
		pendingGap = gapAfter
	}

	// Pending conditional dispatch awaiting its TNT (interpreter mode
	// pairs TIP(template) + TNT).
	pendingCond := -1

	appendTok := func(t Token) {
		t.TSC = tsc
		cur.Tokens = append(cur.Tokens, t)
	}

	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case ptdecode.EvTime:
			tsc = ev.TSC
		case ptdecode.EvEnable, ptdecode.EvDisable, ptdecode.EvStub:
			pendingCond = -1
		case ptdecode.EvGap:
			pendingCond = -1
			st.Gaps++
			st.LostBytes += ev.LostBytes
			tsc = ev.GapEnd
			flush(&GapInfo{LostBytes: ev.LostBytes, Start: ev.GapStart, End: ev.GapEnd})
		case ptdecode.EvDesync:
			pendingCond = -1
			flush(&GapInfo{Start: tsc, End: tsc, Desync: true})
		case ptdecode.EvTemplate:
			appendTok(Token{Op: ev.Op, Method: bytecode.NoMethod})
			if ev.Op.IsCondBranch() {
				pendingCond = len(cur.Tokens) - 1
			} else {
				pendingCond = -1
			}
		case ptdecode.EvTemplateTNT:
			if pendingCond >= 0 && cur.Tokens[pendingCond].Op == ev.Op {
				cur.Tokens[pendingCond].HasDir = true
				cur.Tokens[pendingCond].Taken = ev.Taken
			} else {
				// A TNT without its dispatch (post-loss FUP anchored the
				// bits mid-template): synthesise the branch token.
				appendTok(Token{Op: ev.Op, Method: bytecode.NoMethod, HasDir: true, Taken: ev.Taken})
			}
			pendingCond = -1
		case ptdecode.EvJITRange:
			pendingCond = -1
			tokenizeRange(prog, ev, appendTok)
		}
	}
	flush(nil)
	for _, s := range segs {
		for i := range s.Tokens {
			if s.Tokens[i].Located() {
				st.LocatedTokens++
			}
		}
	}
	return segs, st
}

// tokenizeRange converts an executed native instruction range into bytecode
// tokens via the blob's debug records, collapsing the several native
// instructions a bytecode lowers to into one token, and resolving inline
// frames to the innermost instruction (§6, "Dealing with Inlined Code").
func tokenizeRange(prog *bytecode.Program, ev *ptdecode.Event, emit func(Token)) {
	blob := ev.Blob
	var lastM bytecode.MethodID = bytecode.NoMethod
	lastPC := int32(-1)
	for i := ev.First; i < ev.Last; i++ {
		rec := &blob.Debug[i]
		inner := rec.Frames[len(rec.Frames)-1]
		if inner.Method == lastM && inner.PC == lastPC {
			continue // same bytecode instruction, subsequent native instr
		}
		lastM, lastPC = inner.Method, inner.PC
		tok := Token{
			Method: inner.Method,
			PC:     inner.PC,
			Approx: rec.Approximate,
		}
		if m := prog.Method(inner.Method); m != nil && int(inner.PC) < len(m.Code) {
			tok.Op = m.Code[inner.PC].Op
		}
		emit(tok)
	}
}
