package core

import (
	"jportal/internal/bytecode"
	"jportal/internal/meta"
	"jportal/internal/source"
)

// DecodeThread runs the two-level decode for one thread's stitched packet
// stream: the native-level walk (the default source's decoder — Intel PT's
// role is played by libipt in the paper) followed by the bytecode-level
// mapping of §3 — template-range lookup for interpreted dispatches (§3.1)
// and debug-record lookup, through inline frames, for JITed ranges (§3.2).
// The result is the segmented bytecode token stream that reconstruction
// (§4) and recovery (§5) consume.
func DecodeThread(prog *bytecode.Program, snap *meta.Snapshot, items []source.Item) ([]*Segment, *DecodeThreadStats) {
	dec := source.Default().NewDecoder(snap)
	events := dec.Decode(items)
	segs, stats := TokenizeEvents(prog, events)
	ds := dec.Stats()
	stats.NativeDesyncs = ds.Desyncs
	stats.MalformedPackets = ds.FaultCount
	stats.SkippedPackets = ds.SkippedPackets
	stats.QuarantinedBytes = ds.SkippedBytes
	return segs, stats
}

// DecodeThreadStats summarises one thread's decode.
type DecodeThreadStats struct {
	Segments      int
	Tokens        int
	LocatedTokens int
	Gaps          int
	LostBytes     uint64
	NativeDesyncs int
	// MalformedPackets counts typed decode faults (graceful degradation:
	// each one cost a skip to the next PSB, not the thread).
	MalformedPackets int
	// SkippedPackets and QuarantinedBytes measure the spans discarded
	// while resynchronizing after malformed packets.
	SkippedPackets   int
	QuarantinedBytes uint64
	// TimeRegressions counts timestamp updates that went backwards within
	// one thread's stitched stream — the per-core clock-skew signature
	// (§7.2 timestamp inconsistency). Diagnostics only: decoding proceeds
	// with the regressed clock exactly as before.
	TimeRegressions int
}

// TokenizeEvents lowers native-level decoder events to bytecode tokens,
// splitting segments at gaps and desyncs.
func TokenizeEvents(prog *bytecode.Program, events []source.Event) ([]*Segment, *DecodeThreadStats) {
	tk := newTokenizer(prog)
	tk.feed(events)
	segs := tk.finish()
	st := tk.st
	return segs, &st
}

// StreamTokenizer is the exported handle over the streaming tokenizer:
// Feed lowers event chunks as they arrive, Take harvests (and forgets)
// the segments completed so far, Finish closes the open segment. Feeding
// chunks produces exactly the segments one TokenizeEvents batch call
// would. The bench harness drives it to measure the tokenizer's steady
// state — one persistent tokenizer, Take discarding output — where the
// token arena keeps allocations at ~O(tokens/slabSize) per chunk.
type StreamTokenizer struct{ t *tokenizer }

// NewStreamTokenizer returns a streaming tokenizer for prog.
func NewStreamTokenizer(prog *bytecode.Program) *StreamTokenizer {
	return &StreamTokenizer{t: newTokenizer(prog)}
}

// Feed lowers one chunk of native-level decoder events.
func (s *StreamTokenizer) Feed(events []source.Event) { s.t.feed(events) }

// Take returns the segments completed so far and forgets them. The slice
// reuses one harvest buffer across calls: it is valid until the next Feed.
func (s *StreamTokenizer) Take() []*Segment { return s.t.take() }

// Finish closes the open segment and returns the remaining segments.
func (s *StreamTokenizer) Finish() []*Segment { return s.t.finish() }

// Stats returns the lowering statistics accumulated so far.
func (s *StreamTokenizer) Stats() DecodeThreadStats { return s.t.st }

// tokenizer is the streaming form of TokenizeEvents: all lowering state —
// the open segment, the pending gap, the pending conditional dispatch, the
// current TSC — lives in the struct, so feeding events in chunks produces
// exactly the segments a single batch call would. Completed segments are
// harvested with take; finish closes the open segment.
type tokenizer struct {
	prog *bytecode.Program
	st   DecodeThreadStats
	segs []*Segment
	cur  *Segment
	// pendingGap is the gap awaiting attachment to the next segment.
	pendingGap *GapInfo
	tsc        uint64
	// pendingCond indexes cur's conditional dispatch awaiting its TNT
	// (interpreter mode pairs TIP(template) + TNT). -1 = none.
	pendingCond int

	// slab is the token arena (DESIGN.md §12): tokens append into one
	// large backing array and segments are carved out of it as capped
	// sub-slices, so the steady state allocates one slab per
	// tokenSlabSize tokens instead of growing a fresh slice per
	// segment. Flushed segments alias retired slabs, which stay alive
	// exactly as long as the flows that reference them — this is an
	// arena, not a pool: slabs are never recycled. segStart is the
	// index in slab where the open segment begins; cur.Tokens is kept
	// as a live capped view slab[segStart:len(slab):len(slab)].
	slab     []Token
	segStart int
	// curLocated counts located tokens in the open segment (maintained
	// by appendTok so flush doesn't rescan the segment).
	curLocated int
	// segSlab is the segment-header arena: headers are carved out of a
	// fixed-capacity block (never append-grown past cap, so issued
	// pointers stay valid) and a fresh block starts when one fills.
	segSlab []Segment
}

// tokenSlabSize is the token-arena block size (≈128KB of tokens) and
// segSlabSize the header-arena block size.
const (
	tokenSlabSize = 4096
	segSlabSize   = 128
)

func newTokenizer(prog *bytecode.Program) *tokenizer {
	t := &tokenizer{prog: prog, pendingCond: -1}
	t.cur = t.newSeg()
	return t
}

// newSeg carves a fresh segment header out of the header arena.
func (t *tokenizer) newSeg() *Segment {
	if len(t.segSlab) == cap(t.segSlab) {
		t.segSlab = make([]Segment, 0, segSlabSize)
	}
	t.segSlab = append(t.segSlab, Segment{})
	return &t.segSlab[len(t.segSlab)-1]
}

// growSlab starts a new token slab holding the open segment's tokens
// plus room for at least need more, leaving flushed segments aliased to
// the retired slab.
func (t *tokenizer) growSlab(need int) {
	open := len(t.slab) - t.segStart
	size := tokenSlabSize
	for size < (open+need)*2 {
		size *= 2
	}
	ns := make([]Token, open, size)
	copy(ns, t.slab[t.segStart:])
	t.slab = ns
	t.segStart = 0
	if open > 0 {
		t.cur.Tokens = t.slab[0:open:open]
	}
}

func (t *tokenizer) flush(gapAfter *GapInfo) {
	if len(t.cur.Tokens) > 0 {
		t.cur.GapBefore = t.pendingGap
		t.segs = append(t.segs, t.cur)
		t.st.Segments++
		t.st.Tokens += len(t.cur.Tokens)
		t.st.LocatedTokens += t.curLocated
		t.pendingGap = nil
		t.cur = t.newSeg()
	} else if t.pendingGap != nil && gapAfter != nil {
		// Merge adjacent gaps.
		gapAfter.LostBytes += t.pendingGap.LostBytes
		if t.pendingGap.Start < gapAfter.Start {
			gapAfter.Start = t.pendingGap.Start
		}
		gapAfter.Desync = gapAfter.Desync && t.pendingGap.Desync
	}
	t.segStart = len(t.slab)
	t.curLocated = 0
	t.pendingGap = gapAfter
}

func (t *tokenizer) appendTok(tok Token) {
	tok.TSC = t.tsc
	if tok.Method != bytecode.NoMethod {
		t.curLocated++
	}
	if len(t.slab) == cap(t.slab) {
		t.growSlab(1)
	}
	t.slab = append(t.slab, tok)
	t.cur.Tokens = t.slab[t.segStart:len(t.slab):len(t.slab)]
}

// feed lowers one chunk of decoder events.
func (t *tokenizer) feed(events []source.Event) {
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case source.EvTime:
			if ev.TSC < t.tsc {
				t.st.TimeRegressions++
			}
			t.tsc = ev.TSC
		case source.EvEnable, source.EvDisable, source.EvStub:
			t.pendingCond = -1
		case source.EvGap:
			t.pendingCond = -1
			t.st.Gaps++
			t.st.LostBytes += ev.LostBytes
			t.tsc = ev.GapEnd
			t.flush(&GapInfo{LostBytes: ev.LostBytes, Start: ev.GapStart, End: ev.GapEnd})
		case source.EvDesync:
			t.pendingCond = -1
			t.flush(&GapInfo{Start: t.tsc, End: t.tsc, Desync: true})
		case source.EvFault:
			// A malformed packet: the decoder is skipping to the next PSB.
			// Split the segment exactly like a desync — the span between
			// here and the resync point is quarantined, not decoded.
			t.pendingCond = -1
			t.flush(&GapInfo{Start: t.tsc, End: t.tsc, Desync: true})
		case source.EvTemplate:
			t.appendTok(Token{Op: ev.Op, Method: bytecode.NoMethod})
			if ev.Op.IsCondBranch() {
				t.pendingCond = len(t.cur.Tokens) - 1
			} else {
				t.pendingCond = -1
			}
		case source.EvTemplateTNT:
			if t.pendingCond >= 0 && t.cur.Tokens[t.pendingCond].Op == ev.Op {
				t.cur.Tokens[t.pendingCond].HasDir = true
				t.cur.Tokens[t.pendingCond].Taken = ev.Taken
			} else {
				// A TNT without its dispatch (post-loss FUP anchored the
				// bits mid-template): synthesise the branch token.
				t.appendTok(Token{Op: ev.Op, Method: bytecode.NoMethod, HasDir: true, Taken: ev.Taken})
			}
			t.pendingCond = -1
		case source.EvJITRange:
			t.pendingCond = -1
			t.tokenizeRange(ev)
		}
	}
}

// take returns the segments completed so far and forgets them. The
// returned slice aliases the tokenizer's reused harvest buffer — it is
// valid only until the next feed, so callers must consume or copy it
// first (the analyzer appends it straight into its pending wave). The
// Segment pointers themselves live in the header arena and stay valid.
func (t *tokenizer) take() []*Segment {
	segs := t.segs
	t.segs = t.segs[:0]
	return segs
}

// finish closes the open segment and returns the remaining completed ones.
func (t *tokenizer) finish() []*Segment {
	t.flush(nil)
	return t.take()
}

// breakSegment force-closes the open segment around a quarantined span:
// after a stage crash the tokens accumulated so far are still sound (they
// were lowered before the crash) but the stream position is not, so the
// next segment starts behind a synthetic desync gap.
func (t *tokenizer) breakSegment() {
	t.pendingCond = -1
	t.flush(&GapInfo{Start: t.tsc, End: t.tsc, Desync: true})
}

// tokenizeRange converts an executed native instruction range into bytecode
// tokens via the blob's debug records, collapsing the several native
// instructions a bytecode lowers to into one token, and resolving inline
// frames to the innermost instruction (§6, "Dealing with Inlined Code").
// It is a tokenizer method (appending directly to the token slab) because
// it runs once per JIT range on the hot decode path — an emit callback
// would cost a closure allocation and an indirect call per token.
func (t *tokenizer) tokenizeRange(ev *source.Event) {
	blob := ev.Blob
	var lastM bytecode.MethodID = bytecode.NoMethod
	lastPC := int32(-1)
	var lastMethod *bytecode.Method
	for i := ev.First; i < ev.Last; i++ {
		if i < 0 || i >= len(blob.Debug) {
			return // stale metadata: fewer debug records than instructions
		}
		rec := &blob.Debug[i]
		if len(rec.Frames) == 0 {
			continue // stale metadata: frameless record
		}
		inner := rec.Frames[len(rec.Frames)-1]
		if inner.Method == lastM && inner.PC == lastPC {
			continue // same bytecode instruction, subsequent native instr
		}
		if inner.Method != lastM {
			lastMethod = t.prog.Method(inner.Method)
		}
		lastM, lastPC = inner.Method, inner.PC
		tok := Token{
			Method: inner.Method,
			PC:     inner.PC,
			Approx: rec.Approximate,
		}
		if lastMethod != nil && int(inner.PC) < len(lastMethod.Code) {
			tok.Op = lastMethod.Code[inner.PC].Op
		}
		t.appendTok(tok)
	}
}
